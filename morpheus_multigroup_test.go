package morpheus

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"morpheus/internal/core"
)

// groupCollector records one group's deliveries at one node and checks the
// two isolation invariants: every delivered cast carries this group's tag,
// and every payload was sent into this group (payloads are marked with the
// group name at the sender).
type groupCollector struct {
	group string
	mu    sync.Mutex
	got   map[string]int
	leaks []string
}

func newGroupCollector(group string) *groupCollector {
	return &groupCollector{group: group, got: make(map[string]int)}
}

func (c *groupCollector) config() GroupConfig {
	return GroupConfig{
		OnCast: func(ev *CastEvent) {
			if ev.Group != c.group {
				c.mu.Lock()
				c.leaks = append(c.leaks, fmt.Sprintf("tag %q on channel of group %q", ev.Group, c.group))
				c.mu.Unlock()
			}
		},
		OnMessage: func(from NodeID, payload []byte) {
			c.mu.Lock()
			defer c.mu.Unlock()
			if !strings.HasPrefix(string(payload), "g="+c.group+";") {
				c.leaks = append(c.leaks, fmt.Sprintf("payload %q delivered in group %q", payload, c.group))
				return
			}
			c.got[string(payload)]++
		},
	}
}

func (c *groupCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *groupCollector) exactlyOnce() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, n := range c.got {
		if n != 1 {
			return fmt.Sprintf("%q delivered %d times", p, n), false
		}
	}
	return "", true
}

func (c *groupCollector) leaked() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.leaks...)
}

// TestMultiGroupStress is the acceptance scenario of the group-hosting
// runtime: one node set (three fixed, one mobile) hosts four groups with
// mixed configurations; traffic flows concurrently in all of them while
// two groups reconfigure plain→Mecho simultaneously; nothing leaks across
// groups (asserted via the group tags and payload markers), nothing is
// lost, and after the dust settles the mobile's per-group transmission
// cost matches each group's deployed stack.
func TestMultiGroupStress(t *testing.T) {
	w := hybridWorld(t, 21)
	members := []NodeID{1, 2, 3, 100}
	kinds := map[NodeID]Kind{1: Fixed, 2: Fixed, 3: Fixed, 100: Mobile}
	groupNames := []string{"alpha", "beta", "gamma", "delta"}

	// alpha and beta adapt (they will reconfigure plain→Mecho concurrently
	// once context disseminates); gamma stays plain; delta starts on Mecho.
	mkGroupCfg := func(name string, col *groupCollector) GroupConfig {
		gc := col.config()
		gc.Members = members
		switch name {
		case "alpha", "beta":
			gc.Policies = []Policy{core.HybridMechoPolicy{}}
		case "delta":
			gc.InitialConfig = core.MechoConfig(1)
			gc.InitialConfigName = core.MechoConfigName(1)
		}
		return gc
	}

	nodes := make(map[NodeID]*Node, len(members))
	groups := make(map[NodeID]map[string]*Group)
	cols := make(map[NodeID]map[string]*groupCollector)
	for _, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: kinds[id], Members: members,
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[id] = n
		groups[id] = make(map[string]*Group)
		cols[id] = make(map[string]*groupCollector)
		for _, gname := range groupNames {
			col := newGroupCollector(gname)
			g, err := n.Join(gname, mkGroupCfg(gname, col))
			if err != nil {
				t.Fatalf("node %d join %s: %v", id, gname, err)
			}
			groups[id][gname] = g
			cols[id][gname] = col
		}
	}
	if got := len(nodes[1].Groups()); got != 5 { // four named + default
		t.Fatalf("node 1 hosts %d groups, want 5", got)
	}

	// Phase 1 — stress: two senders fire into all four groups concurrently
	// while alpha and beta adapt underneath the traffic.
	const perSender = 40
	var wg sync.WaitGroup
	for _, sender := range []NodeID{2, 100} {
		for _, gname := range groupNames {
			wg.Add(1)
			go func(sender NodeID, gname string) {
				defer wg.Done()
				g := groups[sender][gname]
				for i := 0; i < perSender; i++ {
					payload := fmt.Sprintf("g=%s;from=%d;n=%03d", gname, sender, i)
					if err := g.Send([]byte(payload)); err != nil {
						t.Errorf("send %s from %d: %v", gname, sender, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}(sender, gname)
		}
	}
	wg.Wait()

	// Both adaptive groups must have reconfigured to Mecho on every node —
	// independently (each has its own epoch counter).
	for _, gname := range []string{"alpha", "beta"} {
		for _, id := range members {
			g := groups[id][gname]
			eventually(t, 20*time.Second, fmt.Sprintf("node %d group %s deploys mecho", id, gname), func() bool {
				return g.ConfigName() == core.MechoConfigName(1) && g.Epoch() >= 2
			})
		}
	}
	// The static groups must NOT have moved.
	for _, id := range members {
		if got := groups[id]["gamma"].ConfigName(); got != core.PlainConfigName {
			t.Errorf("node %d: gamma config = %q, want plain", id, got)
		}
		if e := groups[id]["gamma"].Epoch(); e != 1 {
			t.Errorf("node %d: gamma epoch = %d, want 1", id, e)
		}
		if got := groups[id]["delta"].ConfigName(); got != core.MechoConfigName(1) {
			t.Errorf("node %d: delta config = %q", id, got)
		}
	}

	// Everything sent must arrive everywhere, exactly once, in its group.
	total := 2 * perSender
	for _, id := range members {
		for _, gname := range groupNames {
			col := cols[id][gname]
			eventually(t, 20*time.Second, fmt.Sprintf("node %d group %s delivers %d", id, gname, total), func() bool {
				return col.count() >= total
			})
			if msg, ok := col.exactlyOnce(); !ok {
				t.Errorf("node %d group %s: %s", id, gname, msg)
			}
		}
	}
	// Zero cross-group leakage, asserted via group tags and markers.
	for _, id := range members {
		for _, gname := range groupNames {
			if leaks := cols[id][gname].leaked(); len(leaks) != 0 {
				t.Errorf("node %d group %s leaked: %v", id, gname, leaks[0])
			}
		}
	}

	// Phase 2 — per-group Figure-3-style cost, post-settle: the mobile pays
	// one data transmission per cast in the Mecho groups and n−1 in the
	// plain group, attributed per group by the group counters.
	const k = 25
	mob := nodes[100]
	for _, gname := range groupNames {
		groups[100][gname].ResetCounters()
		before := cols[1][gname].count()
		for i := 0; i < k; i++ {
			payload := fmt.Sprintf("g=%s;from=%d;phase2=%03d", gname, mob.ID(), i)
			if err := groups[100][gname].Send([]byte(payload)); err != nil {
				t.Fatal(err)
			}
		}
		eventually(t, 10*time.Second, fmt.Sprintf("group %s phase-2 deliveries", gname), func() bool {
			return cols[1][gname].count() >= before+k
		})
		tx := groups[100][gname].Counters().Tx[ClassData].Msgs
		want := uint64(k) // Mecho: one unicast to the relay per cast
		if gname == "gamma" {
			want = uint64(k * (len(members) - 1)) // plain fan-out
		}
		if tx != want {
			t.Errorf("mobile data tx in %s = %d, want %d", gname, tx, want)
		}
	}

	// Leave: withdrawing from one group must not disturb the others.
	if err := groups[100]["gamma"].Leave(); err != nil {
		t.Fatal(err)
	}
	if g := nodes[100].Group("gamma"); g != nil {
		t.Error("gamma still listed after Leave")
	}
	if err := groups[100]["alpha"].Send([]byte("g=alpha;from=100;post-leave")); err != nil {
		t.Errorf("alpha send after gamma leave: %v", err)
	}
}
