// Command morpheus-node runs one live Morpheus participant over real UDP
// sockets — the paper's middleware serving actual network traffic instead
// of the simulated testbed. Start one process per group member with the
// same peer directory:
//
//	morpheus-node -id 1 -peers '1=127.0.0.1:9001,2=127.0.0.1:9002,100=127.0.0.1:9100' -send 10 -expect 20 &
//	morpheus-node -id 2 -peers '1=127.0.0.1:9001,2=127.0.0.1:9002,100=127.0.0.1:9100' -send 10 -expect 20 &
//	morpheus-node -id 100 -kind mobile -adapt -peers '...' -send 10 -expect 20
//
// With -adapt and a mobile member, the group starts on the plain stack
// and live-reconfigures to Mecho once context dissemination reveals the
// hybrid membership — watch for the "config"/"reconfigured" lines.
//
// With -join 'room1,room2' each process additionally hosts the named
// groups on the same node — one UDP endpoint and one control plane serving
// several independent data stacks — and runs the send/receive workload in
// every group.
//
// With -join-via <seed>, the process is a *late joiner*: instead of taking
// part in the bootstrap it enters the already-running groups through the
// named seed member via state transfer, starting gap-free at the current
// delivery frontier:
//
//	morpheus-node -id 7 -join-via 1 -peers '...' -send 5
//
// SIGTERM and SIGINT trigger a graceful departure: the process leaves every
// group (announcing each departure so the survivors recover within one
// stability round), then exits cleanly. -linger keeps the process serving
// after its quotas are met until such a signal arrives.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"morpheus/internal/liverun"
	"morpheus/internal/netio"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's identifier (required, must appear in -peers)")
		kind     = flag.String("kind", "fixed", "device class: fixed | mobile")
		peers    = flag.String("peers", "", "peer directory: '1=127.0.0.1:9001,2=127.0.0.1:9002' (required)")
		groups   = flag.String("mcast", "", "optional multicast groups: 'lan=239.77.7.1:9700'")
		segments = flag.String("segments", "lan", "segment attachments (first is primary)")
		members  = flag.String("members", "", "bootstrap membership (default: all peer ids)")
		adapt    = flag.Bool("adapt", false, "enable the hybrid-Mecho adaptation policy")
		join     = flag.String("join", "", "extra groups to join: 'room1,room2' (workload runs in each)")
		joinVia  = flag.Int("join-via", 0, "enter the running groups late through this seed member")
		linger   = flag.Bool("linger", false, "keep serving after quotas are met until SIGTERM/SIGINT")
		send     = flag.Int("send", 0, "messages to multicast to the group")
		interval = flag.Duration("interval", 20*time.Millisecond, "pause between sends")
		expect   = flag.Int("expect", 0, "messages to receive from other members before exiting")
		wantCfg  = flag.String("expect-config", "", "configuration name to wait for (e.g. 'mecho:relay=1')")
		timeout  = flag.Duration("timeout", 60*time.Second, "overall run deadline")
		verbose  = flag.Bool("v", false, "log middleware diagnostics")
	)
	flag.Parse()

	opts, err := buildOptions(*id, *kind, *peers, *groups, *segments, *members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "morpheus-node:", err)
		os.Exit(2)
	}
	opts.Adapt = *adapt
	opts.JoinGroups = splitList(*join)
	opts.JoinVia = netio.NodeID(*joinVia)
	opts.HandleSignals = true
	opts.Linger = *linger
	opts.SendCount = *send
	opts.SendInterval = *interval
	opts.ExpectRecv = *expect
	opts.ExpectConfig = *wantCfg
	opts.Timeout = *timeout
	opts.Verbose = *verbose

	if err := liverun.Run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "morpheus-node:", err)
		os.Exit(1)
	}
}

// buildOptions parses the stringly flags into liverun options.
func buildOptions(id int, kind, peers, groups, segments, members string) (liverun.Options, error) {
	var opts liverun.Options
	if id == 0 {
		return opts, fmt.Errorf("-id is required")
	}
	if peers == "" {
		return opts, fmt.Errorf("-peers is required")
	}
	opts.ID = netio.NodeID(id)
	switch kind {
	case "fixed":
		opts.Kind = netio.Fixed
	case "mobile":
		opts.Kind = netio.Mobile
	default:
		return opts, fmt.Errorf("-kind %q: want fixed or mobile", kind)
	}
	var err error
	if opts.Peers, err = liverun.ParsePeers(peers); err != nil {
		return opts, err
	}
	if opts.Groups, err = liverun.ParseGroups(groups); err != nil {
		return opts, err
	}
	opts.Segments = splitList(segments)
	if opts.Members, err = liverun.ParseMembers(members); err != nil {
		return opts, err
	}
	return opts, nil
}

// splitList splits a comma-separated list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
