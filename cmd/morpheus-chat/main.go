// Command morpheus-chat runs the paper's validation application: a
// multi-user chat over an adaptive communication stack, on a simulated
// hybrid network of fixed PCs and mobile PDAs.
//
// It simulates all participants in one process. Scripted users exchange
// messages while the Morpheus control plane detects the hybrid context and
// reconfigures the group from the plain fan-out stack to Mecho; the
// transcript and the final per-node transmission counters are printed, so
// the adaptation's effect is directly visible.
//
// Usage:
//
//	morpheus-chat -fixed 2 -mobile 1 -lines 20 -rate 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/chat"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nFixed  = flag.Int("fixed", 2, "number of fixed PCs")
		nMobile = flag.Int("mobile", 1, "number of mobile PDAs")
		lines   = flag.Int("lines", 20, "chat lines per user")
		rate    = flag.Float64("rate", 10, "lines per second per user (the paper paced 10 msg/s)")
		quiet   = flag.Bool("quiet", false, "suppress the transcript, print only the summary")
	)
	flag.Parse()
	if *nFixed < 1 || *nMobile < 0 || *nFixed+*nMobile < 2 {
		fmt.Fprintln(os.Stderr, "morpheus-chat: need at least two participants and one fixed node")
		return 2
	}

	w := morpheus.NewWorld(time.Now().UnixNano()) //lint:wallclock-ok wall-clock entropy seeds the demo world
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})

	var members []morpheus.NodeID
	for i := 1; i <= *nFixed; i++ {
		members = append(members, morpheus.NodeID(i))
	}
	for i := 0; i < *nMobile; i++ {
		members = append(members, morpheus.NodeID(100+i))
	}

	type user struct {
		node   *morpheus.Node
		client *chat.Client
		name   string
	}
	var users []*user
	var transcriptMu sync.Mutex
	for _, id := range members {
		kind, seg, name := morpheus.Fixed, "lan", fmt.Sprintf("pc-%d", id)
		if id >= 100 {
			kind, seg, name = morpheus.Mobile, "wlan", fmt.Sprintf("pda-%d", id-99)
		}
		client := chat.NewClient(name, "lobby", id)
		if !*quiet {
			client.OnMessage(func(m chat.Message) {
				transcriptMu.Lock()
				defer transcriptMu.Unlock()
				fmt.Printf("  [%s] %s\n", m.From, m.Text)
			})
		}
		node, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 50 * time.Millisecond,
			EvalInterval:    100 * time.Millisecond,
			PublishOnChange: true,
			OnMessage:       client.Receive,
			OnReconfigured: func(epoch uint64, cfgName string, took time.Duration) {
				fmt.Printf("-- adaptation: epoch %d deployed %q group-wide in %v\n", epoch, cfgName, took.Round(time.Microsecond))
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "morpheus-chat:", err)
			return 1
		}
		defer func() { _ = node.Close() }()
		client.Bind(node)
		users = append(users, &user{node: node, client: client, name: name})
	}

	fmt.Printf("chat: %d fixed + %d mobile participants; initial stack %q\n",
		*nFixed, *nMobile, users[0].node.ConfigName())

	var wg sync.WaitGroup
	for _, u := range users {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			script := chat.Script{
				Count: *lines,
				Rate:  *rate,
				Line:  func(i int) string { return fmt.Sprintf("%s says hello #%d", u.name, i) },
			}
			if err := script.Run(u.client); err != nil {
				fmt.Fprintln(os.Stderr, "morpheus-chat:", err)
			}
		}()
	}
	wg.Wait()

	// Wait for full delivery everywhere.
	want := *lines * len(users)
	deadline := time.Now().Add(30 * time.Second) //lint:wallclock-ok CLI waits in real time for live delivery
	for time.Now().Before(deadline) {            //lint:wallclock-ok CLI waits in real time for live delivery
		done := true
		for _, u := range users {
			if u.client.Delivered() < want {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}

	fmt.Printf("\nsummary (final stack %q):\n", users[0].node.ConfigName())
	fmt.Printf("  %-8s %-7s %10s %10s %10s\n", "user", "kind", "delivered", "tx-data", "tx-control")
	for _, u := range users {
		c := u.node.VNode().Counters()
		fmt.Printf("  %-8s %-7s %10d %10d %10d\n",
			u.name, u.node.VNode().Kind(),
			u.client.Delivered(),
			c.Tx[appia.ClassData].Msgs, c.Tx[appia.ClassControl].Msgs)
	}
	return 0
}
