// Command morpheus-bench regenerates the paper's evaluation and the
// extension experiments catalogued in DESIGN.md, printing one table per
// experiment.
//
// Usage:
//
//	morpheus-bench -run figure3              # Figure 3 at paper scale (40 000 msgs)
//	morpheus-bench -run figure3 -msgs 2000   # reduced scale
//	morpheus-bench -run all -msgs 2000
//
// Experiments: figure3 (includes relayload and ctloverhead columns),
// reconfig, strategies, energy, errorrecovery, flush, multigroup,
// manygroups, overload, all — plus the seeded sweeps chaos (E12) and
// churn (E12b: chaos with graceful late-join/leave waves, `-run churn
// -churns 2`), which have their own CI jobs and are not part of "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"morpheus/internal/chaos"
	"morpheus/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which  = flag.String("run", "all", "experiment: figure3|reconfig|strategies|energy|errorrecovery|flush|multigroup|manygroups|overload|chaos|churn|all")
		msgs   = flag.Int("msgs", 40000, "messages per Figure 3 run (the paper used 40000)")
		ngroup = flag.Int("groups", 0, "manygroups: how many groups to host (default 256); chaos: extra hosted groups per run (default 0)")
		sizes  = flag.String("sizes", "2,3,6,9", "comma-separated group sizes for figure3/reconfig")
		seed   = flag.Int64("seed", 1, "virtual network seed (chaos/churn: the sweep's first seed)")
		seeds  = flag.Int("seeds", 50, "chaos/churn: how many consecutive seeds to sweep")
		churns = flag.Int("churns", 2, "churn/replay: graceful late-join/leave waves per schedule (replay default 0)")
		replay = flag.Int64("replay", 0, "chaos: replay this single seed and dump its full event trace")
	)
	flag.Parse()

	if *replay != 0 {
		waves := 0
		if flagWasSet("churns") {
			waves = *churns
		}
		return chaosReplay(*replay, waves)
	}

	sz, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "morpheus-bench:", err)
		return 2
	}

	all := *which == "all"
	ok := true
	if all || *which == "figure3" {
		ok = figure3(sz, *msgs, *seed) && ok
	}
	if all || *which == "reconfig" {
		ok = reconfig(sz, *seed) && ok
	}
	if all || *which == "strategies" {
		ok = strategies(*seed) && ok
	}
	if all || *which == "energy" {
		ok = energy(*seed) && ok
	}
	if all || *which == "errorrecovery" {
		ok = errorRecovery(*seed) && ok
	}
	if all || *which == "flush" {
		ok = flush(*seed) && ok
	}
	if all || *which == "multigroup" {
		ok = multigroup(*seed) && ok
	}
	if all || *which == "manygroups" {
		ok = manygroups(*ngroup, *seed) && ok
	}
	if all || *which == "overload" {
		ok = overload(*msgs, *seed) && ok
	}
	if *which == "chaos" { // not part of "all": the sweep has its own CI job
		ok = chaosSweep(*seeds, *seed, *ngroup) && ok
	}
	if *which == "churn" { // membership-lifecycle sweep; also not part of "all"
		ok = churnSweep(*seeds, *seed, *churns) && ok
	}
	if !ok {
		return 1
	}
	return 0
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func table(title string, header string, rows []string) {
	fmt.Printf("\n== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
	_ = w.Flush()
}

func figure3(sizes []int, msgs int, seed int64) bool {
	start := time.Now() //lint:wallclock-ok the bench headline is real elapsed run time
	rows, err := experiment.RunFigure3(experiment.Figure3Config{
		Sizes:    sizes,
		Messages: msgs,
		Timeout:  10 * time.Minute,
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure3:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d\t%d\t%d\t%d\t%d\t%d\t%d",
			r.Nodes, r.Optimized, r.NotOptimized,
			r.OptimizedData, r.OptimizedControl, r.NotOptimizedData, r.RelayData))
	}
	table(
		fmt.Sprintf("Figure 3 — messages sent by the mobile node (%d msgs/run, %v)", msgs, time.Since(start).Round(time.Millisecond)), //lint:wallclock-ok the bench headline is real elapsed run time
		"nodes\toptimized\tnot-optimized\topt-data\topt-control\tbase-data\trelay-data(E2)",
		out,
	)
	return true
}

func reconfig(sizes []int, seed int64) bool {
	rows, err := experiment.RunReconfigLatency(sizes, 60*time.Second, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reconfig:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d\t%v", r.Nodes, r.Latency.Round(time.Microsecond)))
	}
	table("E4 — reconfiguration latency (decision → group-wide deployment)", "nodes\tlatency", out)
	return true
}

func strategies(seed int64) bool {
	rows, err := experiment.RunMulticastStrategies(experiment.StrategyConfig{
		Sizes:    []int{8, 16, 32, 64},
		Messages: 200,
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strategies:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d\t%s\t%d\t%d\t%d\t%.3f",
			r.Nodes, r.Strategy, r.SenderTx, r.MaxNodeTx, r.TotalTx, r.DeliveryRatio))
	}
	table("E5 — multicast strategies at scale (200 msgs)", "nodes\tstrategy\tsender-tx\tmax-node-tx\ttotal-tx\tdelivery", out)
	return true
}

func energy(seed int64) bool {
	rows, err := experiment.RunEnergyLifetime(experiment.EnergyConfig{Nodes: 4, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "energy:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%d", r.Mode, r.CastsBeforeDeath, r.FirstDead, r.ReconfigurationsN))
	}
	table("E6 — battery-aware relay rotation (all-mobile cell)", "mode\tcasts-before-death\tfirst-dead\treconfigs", out)
	return true
}

func errorRecovery(seed int64) bool {
	rows, err := experiment.RunErrorRecovery(experiment.ErrorRecoveryConfig{Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "errorrecovery:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%.3f\t%s\t%.3f\t%d\t%.2f\t%v",
			r.Loss, r.Strategy, r.DeliveryRatio, r.TotalTx, r.TxPerDelivery, r.Elapsed.Round(time.Millisecond)))
	}
	table("E7 — detect-and-retransmit (arq) vs mask (fec) across loss rates", "loss\tstrategy\tdelivery\ttotal-tx\ttx/delivery\telapsed", out)
	return true
}

func flush(seed int64) bool {
	rows, err := experiment.RunFlushAblation(300, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flush:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%d\t%d", r.Mode, r.Sent, r.MinGotAll, r.Lost, r.Reconfigs))
	}
	table("E8 — view-synchronous flush ablation (sends during reconfiguration)", "mode\tsent\tmin-delivered\tlost\treconfigs", out)
	return true
}

// overload is E10: the bounded-memory proof at scale. The -msgs flag is
// interpreted as the TOTAL flood size (split across the three senders),
// so `-run overload -msgs 40000` stresses a paper-scale flood against a
// partitioned peer with the same window-derived bounds as the golden run.
func overload(msgs int, seed int64) bool {
	per := msgs / 3
	if per < 1 {
		per = 1 // never let integer division fall back to the 500-per-sender default
	}
	rows, err := experiment.RunOverload(experiment.OverloadConfig{
		Messages: per,
		Timeout:  30 * time.Minute,
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overload:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d	%d	%d	%d	%d	%d	%d/%d/%d	%d	%d	%s",
			r.Node, r.Sent, r.Rejected, r.Delivered, r.WindowHighWater, r.MailboxHighWater,
			r.NakSentHW, r.NakHistoryHW, r.NakBufferHW, r.NakEvicted, r.Epoch, r.Config))
	}
	table("E10 — bounded-memory overload (flood + mid-flood reconfig + partitioned peer)",
		"node	sent	rejected	delivered	win-hw	mbox-hw	nak-hw s/h/b	evicted	epoch	config", out)
	return true
}

// chaosSweep is E12: sweep n seeded fault schedules on virtual time and
// check every runtime invariant per run. Any violating seed is a complete
// failure artifact: replay it with -replay <seed>.
func chaosSweep(n int, base int64, extraGroups int) bool {
	start := time.Now() //lint:wallclock-ok the bench headline is real elapsed run time
	rows, err := experiment.RunChaos(experiment.ChaosConfig{Seeds: n, Base: base, ExtraGroups: extraGroups})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return false
	}
	failing := 0
	var out []string
	for _, r := range rows {
		status := "ok"
		if len(r.Violations) > 0 {
			failing++
			status = fmt.Sprintf("FAIL(%d)", len(r.Violations))
		}
		out = append(out, fmt.Sprintf("%d\t%d\t%d\t%d\t%d\t%s\t%s",
			r.Seed, r.Events, r.Crashed, r.Delivered, r.Rejected, r.Hash, status))
	}
	table(fmt.Sprintf("E12 — deterministic chaos sweep (%d seeds, %v)", n, time.Since(start).Round(time.Millisecond)), //lint:wallclock-ok the bench headline is real elapsed run time
		"seed\tevents\tcrashed\tdelivered\trejected\thash\tstatus", out)
	if failing > 0 {
		for _, r := range rows {
			for _, v := range r.Violations {
				fmt.Fprintf(os.Stderr, "chaos: seed %d: %s\n", r.Seed, v)
			}
		}
		fmt.Fprintf(os.Stderr, "chaos: %d/%d seeds violated invariants; replay with -replay <seed>\n", failing, n)
		return false
	}
	return true
}

// churnSweep is the membership-lifecycle variant of E12: the same seeded
// fault schedules with `waves` graceful-churn events appended per seed —
// each wave bootstraps a fresh group without one member, folds that member
// in late through the anchor via JoinVia state transfer, floods, and has
// the late joiner leave gracefully mid-run (survivors must drain their
// send windows within a stability round). A violating seed replays with
// `-replay <seed> -churns <waves>`.
func churnSweep(n int, base int64, waves int) bool {
	start := time.Now() //lint:wallclock-ok the bench headline is real elapsed run time
	rows, err := experiment.RunChaos(experiment.ChaosConfig{Seeds: n, Base: base, GracefulChurns: waves})
	if err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		return false
	}
	failing := 0
	var out []string
	for _, r := range rows {
		status := "ok"
		if len(r.Violations) > 0 {
			failing++
			status = fmt.Sprintf("FAIL(%d)", len(r.Violations))
		}
		out = append(out, fmt.Sprintf("%d\t%d\t%d\t%d\t%d\t%s\t%s",
			r.Seed, r.Events, r.Crashed, r.Delivered, r.Rejected, r.Hash, status))
	}
	table(fmt.Sprintf("E12b — graceful-churn sweep (%d seeds, %d waves/seed, %v)", n, waves, time.Since(start).Round(time.Millisecond)), //lint:wallclock-ok the bench headline is real elapsed run time
		"seed\tevents\tcrashed\tdelivered\trejected\thash\tstatus", out)
	if failing > 0 {
		for _, r := range rows {
			for _, v := range r.Violations {
				fmt.Fprintf(os.Stderr, "churn: seed %d: %s\n", r.Seed, v)
			}
		}
		fmt.Fprintf(os.Stderr, "churn: %d/%d seeds violated invariants; replay with -replay <seed> -churns %d\n", failing, n, waves)
		return false
	}
	return true
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// chaosReplay re-executes one seed and dumps its canonical trace — the
// schedule, the injection log, per-node delivery digests, flow-control
// marks and the violation list. Exit status reflects the invariants.
// waves > 0 replays a churn-sweep seed (graceful-churn waves included).
func chaosReplay(seed int64, waves int) int {
	res, err := chaos.Run(seed, chaos.Options{Profile: chaos.Profile{GracefulChurns: waves}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos replay:", err)
		return 2
	}
	fmt.Printf("chaos replay seed=%d hash=%s\n%s", res.Seed, res.Hash, res.Trace)
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "chaos replay: seed %d: %d invariant violations\n", seed, len(res.Violations))
		return 1
	}
	return 0
}

func multigroup(seed int64) bool {
	rows, err := experiment.RunMultiGroup(experiment.MultiGroupConfig{Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "multigroup:", err)
		return false
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%s\t%d\t%d\t%d\t%d\t%d",
			r.Group, r.Config, r.Epoch, r.MobileDataTx, r.SingleRunDataTx, r.Delivered, r.Leaked))
	}
	table("E9 — multi-group hosting (four groups, one node set, two adapting under load)",
		"group\tconfig\tepoch\tmobile-data-tx\tsingle-run-tx\tdelivered\tleaked", out)
	return true
}

// manygroups is E11: the scheduler pool's scale proof — hundreds (or with
// -groups 1000, thousands) of groups on one node set, a quarter of them
// reconfiguring plain→Mecho while the mobile floods every group, with the
// full invariant suite checked per group. The table summarizes per
// configuration class; any invariant violation fails the run.
func manygroups(groups int, seed int64) bool {
	start := time.Now() //lint:wallclock-ok the bench headline is real elapsed run time
	rows, err := experiment.RunManyGroups(experiment.ManyGroupsConfig{Groups: groups, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "manygroups:", err)
		return false
	}
	type agg struct {
		n, fixed, mobile, leaked, winhw int
		acq                             uint64
	}
	byCfg := map[string]*agg{}
	var order []string
	for _, r := range rows {
		a := byCfg[r.Config]
		if a == nil {
			a = &agg{}
			byCfg[r.Config] = a
			order = append(order, r.Config)
		}
		a.n++
		a.fixed += r.DeliveredFixed
		a.mobile += r.DeliveredMobile
		a.leaked += r.Leaked
		if r.WindowHighWater > a.winhw {
			a.winhw = r.WindowHighWater
		}
		a.acq += r.Acquired
	}
	var out []string
	for _, cfg := range order {
		a := byCfg[cfg]
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%d\t%d\t%d\t%d",
			cfg, a.n, a.fixed, a.mobile, a.leaked, a.winhw, a.acq))
	}
	table(fmt.Sprintf("E11 — many-group hosting on the scheduler pool (%d groups, %v)", groups, time.Since(start).Round(time.Millisecond)), //lint:wallclock-ok the bench headline is real elapsed run time
		"config\tgroups\tfixed-delivered\tmobile-delivered\tleaked\twin-hw(max)\tacquired", out)
	return true
}
