package morpheus_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"morpheus"
	"morpheus/internal/vnet"
)

// TestPooledManyGroupStress is the scheduler pool's morpheus-level stress
// proof: three nodes host hundreds of groups through join/flood/leave waves
// on virtual time — the second wave joining while the first is still under
// load, the first leaving while the second floods. It asserts
//
//   - exactly-once, zero-leak delivery in every group at every member,
//   - and bit-identical delivery traces at equal seed across the default
//     pool, a single-worker pool, and dedicated per-group schedulers —
//     the "pooled dispatch does not change the execution" theorem stated
//     through the public Join/Send/Leave surface.
//
// Under -race this doubles as the proof that pool handoffs (park → post →
// enqueue → pop → drain) carry the happens-before edges the serialization
// illusion relies on, at 512-group scale.
func TestPooledManyGroupStress(t *testing.T) {
	groups := 512
	if testing.Short() {
		groups = 96
	}
	const seed = 31
	pooled := runPooledStress(t, seed, groups, 0)
	single := runPooledStress(t, seed, groups, 1)
	dedicated := runPooledStress(t, seed, groups, morpheus.DedicatedSchedulers)
	if pooled != single {
		t.Fatal("equal-seed traces diverged: default pool vs single-worker pool")
	}
	if pooled != dedicated {
		t.Fatal("equal-seed traces diverged: pooled vs dedicated schedulers")
	}
}

// runPooledStress executes one join/flood/leave wave scenario with the
// given scheduler-worker setting and returns the canonical delivery trace.
func runPooledStress(t *testing.T, seed int64, groupsN, workers int) string {
	t.Helper()
	const (
		msgsPerGroup = 2 // per sending node
		sendersN     = 4 // flood actors per node, striding the group space
	)
	clk := morpheus.NewVirtualClock()
	defer clk.Stop()
	w := morpheus.NewWorldWithClock(seed, clk)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	members := []morpheus.NodeID{1, 2, 3}
	type key struct {
		node  morpheus.NodeID
		group string
	}
	var traceMu sync.Mutex
	traces := make(map[key][]string)

	nodes := make(map[morpheus.NodeID]*morpheus.Node, len(members))
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: morpheus.Fixed, Segments: []string{"lan"},
			Members:          members,
			SchedulerWorkers: workers,
			ContextInterval:  40 * time.Millisecond,
			EvalInterval:     50 * time.Millisecond,
			PublishOnChange:  true,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", id, err)
		}
		nodes[id] = nd
	}

	gname := func(i int) string { return fmt.Sprintf("p%03d", i) }
	joined := make(map[morpheus.NodeID]map[string]*morpheus.Group, len(members))
	for _, id := range members {
		joined[id] = make(map[string]*morpheus.Group, groupsN)
	}
	join := func(i int) {
		name := gname(i)
		for _, id := range members {
			k := key{node: id, group: name}
			g, err := nodes[id].Join(name, morpheus.GroupConfig{
				Members: members,
				OnCast: func(ev *morpheus.CastEvent) {
					traceMu.Lock()
					traces[k] = append(traces[k], fmt.Sprintf("%s:%d:%d:%s", ev.Group, ev.Origin, ev.Seq, ev.Msg.Bytes()))
					traceMu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("node %d join %s: %v", id, name, err)
			}
			joined[id][name] = g
		}
	}

	// flood starts sendersN actors per node, each covering a strided slice
	// of groups [lo, hi); returns a join function blocking through the clock.
	flood := func(lo, hi int) func() {
		var dones []chan struct{}
		for _, id := range members {
			id := id
			for a := 0; a < sendersN; a++ {
				a := a
				d := make(chan struct{})
				dones = append(dones, d)
				clk.Go(func() {
					defer close(d)
					for i := 0; i < msgsPerGroup; i++ {
						for gi := lo + a; gi < hi; gi += sendersN {
							name := gname(gi)
							payload := fmt.Sprintf("g=%s;n=%d;i=%d", name, id, i)
							if err := joined[id][name].Send([]byte(payload)); err != nil {
								t.Errorf("send %s from %d: %v", name, id, err)
								return
							}
						}
						clk.Sleep(time.Millisecond)
					}
				})
			}
		}
		return func() {
			for _, d := range dones {
				clk.Wait(d)
			}
		}
	}

	wantPerGroup := len(members) * msgsPerGroup
	waitDelivered := func(lo, hi int) {
		t.Helper()
		deadline := clk.Now().Add(60 * time.Second)
		for clk.Now().Before(deadline) {
			complete := func() bool {
				traceMu.Lock()
				defer traceMu.Unlock()
				for i := lo; i < hi; i++ {
					for _, id := range members {
						if len(traces[key{node: id, group: gname(i)}]) < wantPerGroup {
							return false
						}
					}
				}
				return true
			}()
			if complete {
				return
			}
			clk.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("groups [%d,%d): deliveries incomplete", lo, hi)
	}

	// Wave 1: the first half joins and floods.
	half := groupsN / 2
	for i := 0; i < half; i++ {
		join(i)
	}
	wave1Done := flood(0, half)

	// Wave 2 joins while wave 1 is still flooding: the driver's joins
	// interleave with the sender actors on the virtual timeline.
	for i := half; i < groupsN; i++ {
		join(i)
	}
	wave1Done()
	waitDelivered(0, half)

	// Wave 1 leaves on every node while wave 2 floods underneath.
	wave2Done := flood(half, groupsN)
	for i := 0; i < half; i++ {
		for _, id := range members {
			if err := joined[id][gname(i)].Leave(); err != nil {
				t.Fatalf("node %d leave %s: %v", id, gname(i), err)
			}
		}
	}
	wave2Done()
	waitDelivered(half, groupsN)

	// The pool actually hosted the run (or was genuinely off).
	ps := nodes[1].PoolStats()
	if workers == morpheus.DedicatedSchedulers {
		if ps.Workers != 0 {
			t.Fatalf("dedicated mode reports a pool: %+v", ps)
		}
	} else {
		if ps.Workers == 0 || ps.Batches == 0 || !ps.Deterministic {
			t.Fatalf("pooled virtual run has implausible pool stats: %+v", ps)
		}
	}

	// Exactly-once, zero-leak verification per (node, group).
	traceMu.Lock()
	defer traceMu.Unlock()
	keys := make([]key, 0, len(traces))
	for k := range traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].group < keys[j].group
	})
	if len(keys) != len(members)*groupsN {
		t.Fatalf("observed %d (node,group) traces, want %d", len(keys), len(members)*groupsN)
	}
	var b strings.Builder
	for _, k := range keys {
		entries := traces[k]
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			if !strings.HasPrefix(e, k.group+":") || !strings.Contains(e, "g="+k.group+";") {
				t.Fatalf("node %d group %s: cross-group leak: %q", k.node, k.group, e)
			}
			if seen[e] {
				t.Fatalf("node %d group %s: duplicate delivery: %q", k.node, k.group, e)
			}
			seen[e] = true
		}
		if len(entries) != wantPerGroup {
			t.Fatalf("node %d group %s: delivered %d, want %d", k.node, k.group, len(entries), wantPerGroup)
		}
		fmt.Fprintf(&b, "node=%d group=%s\n%s\n", k.node, k.group, strings.Join(entries, "\n"))
	}
	return b.String()
}
