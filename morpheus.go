// Package morpheus is a Go reproduction of the Morpheus middleware
// framework from "Context Adaptation of the Communication Stack" (Mocito,
// Rosa, Almeida, Miranda, Rodrigues, Lopes — DI/FCUL TR-05-5, 2005).
//
// Morpheus supports communication protocols that adapt at run time to the
// *distributed* execution context. It combines:
//
//   - a protocol composition and execution kernel in the style of Appia
//     (internal/appia) with XML-described, runtime-instantiable channels
//     (internal/appia/appiaxml);
//   - Cocaditem, a context capture and dissemination sub-system
//     (internal/cocaditem);
//   - Core, a control and reconfiguration sub-system whose coordinator
//     applies global adaptation policies and redeploys protocol stacks
//     through view-synchronous quiescence (internal/core, internal/stack);
//   - adaptive protocols, notably the Mecho best-effort multicast
//     (internal/mecho) that relays mobile traffic through fixed nodes.
//
// This package is the façade: Start assembles a full Morpheus node — data
// channel, control channel, context retrievers, policies — on any network
// substrate implementing netio.Endpoint: the virtual testbed
// (internal/vnet), the in-process loopback (internal/netio/loopnet), or
// real UDP sockets (internal/netio/udpnet). Config.Endpoint selects the
// substrate; the World/ID/Kind/Segments fields remain as the vnet
// convenience path the experiments use.
package morpheus

import (
	"errors"
	"fmt"

	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/cocaditem"
	"morpheus/internal/core"
	"morpheus/internal/group"
	"morpheus/internal/netio"
	"morpheus/internal/stack"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// Re-exported fundamental types, so applications rarely need the internal
// import paths.
type (
	// NodeID identifies a participant.
	NodeID = appia.NodeID
	// View is an agreed group membership epoch.
	View = group.View
	// Sample is one context observation.
	Sample = cocaditem.Sample
	// Policy decides when and how to adapt.
	Policy = core.Policy
	// Decision is a policy verdict.
	Decision = core.Decision
	// PolicyInput is what policies evaluate.
	PolicyInput = core.PolicyInput
	// Document is an XML channel description.
	Document = appiaxml.Document
	// World is the simulated network.
	World = vnet.World
	// Endpoint is a node's attachment to any network substrate.
	Endpoint = netio.Endpoint
	// Network is a substrate's endpoint factory.
	Network = netio.Network
	// Kind classifies devices as fixed or mobile.
	Kind = netio.Kind
)

// Device kinds.
const (
	Fixed  = netio.Fixed
	Mobile = netio.Mobile
)

// Message delivery classes (transmission accounting).
const (
	ClassData    = appia.ClassData
	ClassControl = appia.ClassControl
)

// NewWorld creates a simulated network with a deterministic seed.
func NewWorld(seed int64) *World { return vnet.NewWorld(seed) }

// Config assembles one Morpheus node.
type Config struct {
	// Endpoint is the node's network attachment on any netio substrate
	// (udpnet for live runs, loopnet for tests, a pre-built vnet node).
	// When set it wins: World, ID, Kind, Segments and Energy are ignored
	// and identity is read from the endpoint.
	Endpoint Endpoint
	// World is the virtual network the node lives in — the vnet
	// convenience path: Start attaches the endpoint itself from ID, Kind,
	// Segments and Energy. Ignored when Endpoint is set.
	World *World
	// ID is the node's identifier; the lowest ID in the control group is
	// the adaptation coordinator.
	ID NodeID
	// Kind is the device class (Fixed or Mobile).
	Kind Kind
	// Segments attaches the node to network segments; the first is
	// primary. Defaults to ["lan"] for fixed and ["wlan"] for mobile.
	Segments []string
	// Energy, when non-nil, meters the node's battery.
	Energy *netio.EnergyConfig
	// Members is the bootstrap membership of both the control group and
	// the initial data channel.
	Members []NodeID
	// InitialConfig is the first data stack (default core.PlainConfig).
	InitialConfig *Document
	// InitialConfigName names it (default "plain").
	InitialConfigName string
	// Policies drive adaptation; leave empty for a non-adaptive node.
	Policies []Policy
	// Retrievers adds context sources beyond the built-in battery and
	// device-class retrievers.
	Retrievers []cocaditem.Retriever
	// ContextInterval is the Cocaditem sampling period (default 100ms).
	ContextInterval time.Duration
	// PublishOnChange reduces context traffic to changes plus keepalives.
	PublishOnChange bool
	// EvalInterval is the Core policy evaluation period (default 200ms).
	EvalInterval time.Duration
	// OnMessage receives application payloads delivered by the data
	// channel (on the node's scheduler goroutine: return quickly).
	OnMessage func(from NodeID, payload []byte)
	// OnViewChange observes data channel views.
	OnViewChange func(v View)
	// OnReconfigured observes completed reconfigurations (coordinator
	// only).
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
	// QuiesceTimeout bounds reconfiguration flushes (default 5s).
	QuiesceTimeout time.Duration
	// Heartbeat configures the control group failure detector period.
	Heartbeat time.Duration
	// SuspectAfter is the control group failure detection threshold.
	SuspectAfter time.Duration
	// NackDelay tunes the reliable layer's retransmission timer.
	NackDelay time.Duration
	// StableInterval tunes the stability gossip period.
	StableInterval time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Node is a running Morpheus participant.
type Node struct {
	cfg      Config
	endpoint Endpoint
	sched    *appia.Scheduler // data-plane scheduler (reconfigurable stacks)
	ctlSched *appia.Scheduler // control-plane scheduler (heartbeats, adaptation)
	manager  *stack.Manager
	ctl      *appia.Channel
	ctx      *cocaditem.Session
	coreSes  *core.Session
}

// ErrNoMembers reports a Start without bootstrap membership.
var ErrNoMembers = errors.New("morpheus: Config.Members must not be empty")

// ControlPort is the vnet port of the (never reconfigured) control channel.
const ControlPort = "ctl"

// Start builds, deploys and starts a node.
func Start(cfg Config) (*Node, error) {
	if len(cfg.Members) == 0 {
		return nil, ErrNoMembers
	}
	logf := netio.Logf(cfg.Logf).Or()
	ep := cfg.Endpoint
	if ep == nil {
		// vnet convenience path: attach the endpoint ourselves.
		if cfg.World == nil {
			return nil, errors.New("morpheus: Config.Endpoint or Config.World is required")
		}
		segments := cfg.Segments
		if len(segments) == 0 {
			if cfg.Kind == Mobile {
				segments = []string{"wlan"}
			} else {
				segments = []string{"lan"}
			}
		}
		var err error
		ep, err = cfg.World.Attach(netio.EndpointConfig{
			ID:       cfg.ID,
			Kind:     cfg.Kind,
			Segments: segments,
			Energy:   cfg.Energy,
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Identity lives on the endpoint.
		cfg.ID = ep.ID()
		cfg.Kind = ep.Kind()
	}

	stack.RegisterAllWireEvents(nil)
	cocaditem.RegisterWireEvents(nil)
	core.RegisterWireEvents(nil)

	// The data and control planes get separate schedulers: a data-channel
	// mailbox backlog (a bulk transfer, a benchmark flood) must not delay
	// heartbeats or failure-detector timers, or the group would evict
	// perfectly healthy-but-busy members. The two stacks share no sessions,
	// so the Appia rule that session-sharing channels share a scheduler is
	// respected.
	sched := appia.NewScheduler()
	ctlSched := appia.NewScheduler()
	n := &Node{cfg: cfg, endpoint: ep, sched: sched, ctlSched: ctlSched}

	n.manager = stack.NewManager(stack.ManagerConfig{
		Node:           ep,
		Self:           cfg.ID,
		Scheduler:      sched,
		QuiesceTimeout: cfg.QuiesceTimeout,
		OnDeliver: func(ev *group.CastEvent) {
			if cfg.OnMessage != nil {
				cfg.OnMessage(ev.Origin, ev.Msg.Bytes())
			}
		},
		OnViewChange: cfg.OnViewChange,
		Logf:         logf,
	})

	initialDoc := cfg.InitialConfig
	initialName := cfg.InitialConfigName
	if initialDoc == nil {
		initialDoc = core.PlainConfig()
		initialName = core.PlainConfigName
	}
	if initialName == "" {
		initialName = "custom"
	}
	if err := n.manager.Deploy(initialDoc, initialName, 1, cfg.Members); err != nil {
		n.teardownEarly()
		return nil, fmt.Errorf("morpheus: deploy initial config: %w", err)
	}

	// Control channel: static composition, never reconfigured (§3.2);
	// Cocaditem and Core share it.
	retrievers := []cocaditem.Retriever{
		cocaditem.BatteryRetriever(ep),
		cocaditem.DeviceClassRetriever(ep),
	}
	retrievers = append(retrievers, cfg.Retrievers...)

	ctlLayers := []appia.Layer{
		transport.NewPTPLayer(transport.Config{Node: ep, Port: ControlPort, Logf: logf}),
		group.NewFanoutLayer(group.FanoutConfig{Self: cfg.ID, InitialMembers: cfg.Members}),
		group.NewNakLayer(group.NakConfig{
			Self:           cfg.ID,
			InitialMembers: cfg.Members,
			NackDelay:      cfg.NackDelay,
			StableInterval: cfg.StableInterval,
		}),
		group.NewGMSLayer(group.GMSConfig{
			Self:              cfg.ID,
			InitialMembers:    cfg.Members,
			EnableFD:          true,
			HeartbeatInterval: cfg.Heartbeat,
			SuspectAfter:      cfg.SuspectAfter,
		}),
		cocaditem.NewLayer(cocaditem.Config{
			Self:            cfg.ID,
			Interval:        cfg.ContextInterval,
			Retrievers:      retrievers,
			PublishOnChange: cfg.PublishOnChange,
		}),
		core.NewLayer(core.Config{
			Self:           cfg.ID,
			Manager:        n.manager,
			Policies:       cfg.Policies,
			EvalInterval:   cfg.EvalInterval,
			OnReconfigured: cfg.OnReconfigured,
			Logf:           logf,
		}),
	}
	qos, err := appia.NewQoS("control", ctlLayers...)
	if err != nil {
		n.teardownEarly()
		return nil, err
	}
	n.ctl = qos.CreateChannel("ctl", ctlSched)
	if err := n.ctl.Start(); err != nil {
		n.teardownEarly()
		return nil, err
	}
	if !n.ctl.WaitReady(5 * time.Second) {
		n.teardownEarly()
		return nil, errors.New("morpheus: control channel never became ready")
	}
	if s, ok := n.ctl.SessionFor("cocaditem").(*cocaditem.Session); ok {
		n.ctx = s
	}
	if s, ok := n.ctl.SessionFor("core").(*core.Session); ok {
		n.coreSes = s
	}
	return n, nil
}

// teardownEarly releases partially-started resources.
func (n *Node) teardownEarly() {
	if n.manager != nil {
		_ = n.manager.Close()
	}
	n.ctlSched.Close()
	n.sched.Close()
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Endpoint exposes the node's network attachment (identity, traffic
// counters) on whatever substrate it runs.
func (n *Node) Endpoint() Endpoint { return n.endpoint }

// VNode exposes the virtual network attachment (counters, battery, crash
// injection) when the node runs on the vnet convenience path; it returns
// nil for nodes started on another substrate via Config.Endpoint.
func (n *Node) VNode() *vnet.Node {
	vn, _ := n.endpoint.(*vnet.Node)
	return vn
}

// Send multicasts an application payload to the group; during
// reconfigurations it is buffered transparently.
func (n *Node) Send(payload []byte) error { return n.manager.Send(payload) }

// Context exposes the node's Cocaditem store (Latest, Snapshot, Subscribe).
func (n *Node) Context() *cocaditem.Session { return n.ctx }

// Manager exposes the stack manager (current epoch, configuration name).
func (n *Node) Manager() *stack.Manager { return n.manager }

// ConfigName returns the currently deployed data configuration.
func (n *Node) ConfigName() string { return n.manager.ConfigName() }

// Epoch returns the current configuration epoch.
func (n *Node) Epoch() uint64 { return n.manager.Epoch() }

// Close stops the node: control channel, data channel, scheduler.
func (n *Node) Close() error {
	var firstErr error
	if n.ctl != nil {
		if err := n.ctl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := n.manager.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	n.ctlSched.Close()
	n.sched.Close()
	return firstErr
}
