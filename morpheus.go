// Package morpheus is a Go reproduction of the Morpheus middleware
// framework from "Context Adaptation of the Communication Stack" (Mocito,
// Rosa, Almeida, Miranda, Rodrigues, Lopes — DI/FCUL TR-05-5, 2005).
//
// Morpheus supports communication protocols that adapt at run time to the
// *distributed* execution context. It combines:
//
//   - a protocol composition and execution kernel in the style of Appia
//     (internal/appia) with XML-described, runtime-instantiable channels
//     (internal/appia/appiaxml);
//   - Cocaditem, a context capture and dissemination sub-system
//     (internal/cocaditem);
//   - Core, a control and reconfiguration sub-system whose coordinator
//     applies global adaptation policies and redeploys protocol stacks
//     through view-synchronous quiescence (internal/core, internal/stack);
//   - adaptive protocols, notably the Mecho best-effort multicast
//     (internal/mecho) that relays mobile traffic through fixed nodes.
//
// This package is the façade, and a Node is a *group-hosting runtime*: one
// process participates in any number of concurrently hosted groups, each
// with its own membership, protocol stack, configuration epoch and
// adaptation policies, while sharing a single network endpoint, context
// sensor plane, control scheduler and failure detector. Start assembles
// the shared control plane plus a default group from Config.Members;
// Node.Join adds further groups at run time, each returning a Group handle
// (Send / Leave / per-group traffic counters). Any substrate implementing
// netio.Endpoint works: the virtual testbed (internal/vnet), the
// in-process loopback (internal/netio/loopnet), or real UDP sockets
// (internal/netio/udpnet). Config.Endpoint selects the substrate; the
// World/ID/Kind/Segments fields remain as the vnet convenience path the
// experiments use.
package morpheus

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/clock"
	"morpheus/internal/cocaditem"
	"morpheus/internal/core"
	"morpheus/internal/group"
	"morpheus/internal/netio"
	"morpheus/internal/stack"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// Re-exported fundamental types, so applications rarely need the internal
// import paths.
type (
	// NodeID identifies a participant.
	NodeID = appia.NodeID
	// View is an agreed group membership epoch.
	View = group.View
	// CastEvent is a delivered group multicast (origin, sequence number,
	// group tag, payload).
	CastEvent = group.CastEvent
	// Sample is one context observation.
	Sample = cocaditem.Sample
	// Policy decides when and how to adapt.
	Policy = core.Policy
	// Decision is a policy verdict.
	Decision = core.Decision
	// PolicyInput is what policies evaluate.
	PolicyInput = core.PolicyInput
	// Document is an XML channel description.
	Document = appiaxml.Document
	// World is the simulated network.
	World = vnet.World
	// Endpoint is a node's attachment to any network substrate.
	Endpoint = netio.Endpoint
	// Network is a substrate's endpoint factory.
	Network = netio.Network
	// Kind classifies devices as fixed or mobile.
	Kind = netio.Kind
	// Counters is a snapshot of class-keyed traffic counts.
	Counters = netio.Counters
	// Clock is a node's time plane (internal/clock): the wall clock for
	// live runs, or a deterministic virtual clock for bit-reproducible
	// experiments.
	Clock = clock.Clock
	// VirtualClock is the deterministic discrete-event clock.
	VirtualClock = clock.Virtual
	// FlowStats is a group's flow-control observability snapshot: send
	// window credits, scheduler mailbox depth marks, reliable-layer
	// retention high-water marks.
	FlowStats = stack.FlowStats
)

// DefaultSendWindow is the send-window capacity used when SendWindow is 0.
const DefaultSendWindow = stack.DefaultSendWindow

// WallClock returns the process-wide wall clock.
func WallClock() Clock { return clock.Wall() }

// NewVirtualClock returns a deterministic virtual clock; see clock.Virtual
// for the actor discipline it imposes. Pair it with NewWorldWithClock and
// stop it once the run's results are harvested.
func NewVirtualClock() *VirtualClock { return clock.NewVirtual() }

// NewWorldWithClock creates a simulated network on an explicit time plane;
// nodes started on it inherit the clock.
func NewWorldWithClock(seed int64, clk Clock) *World {
	return vnet.NewWorldWithClock(seed, clk)
}

// Device kinds.
const (
	Fixed  = netio.Fixed
	Mobile = netio.Mobile
)

// Message delivery classes (transmission accounting).
const (
	ClassData    = appia.ClassData
	ClassControl = appia.ClassControl
)

// DefaultGroup is the name of the group Start joins implicitly from
// Config.Members; Node.Send and friends operate on it.
const DefaultGroup = core.DefaultGroup

// NewWorld creates a simulated network with a deterministic seed.
func NewWorld(seed int64) *World { return vnet.NewWorld(seed) }

// Config assembles one Morpheus node.
type Config struct {
	// Endpoint is the node's network attachment on any netio substrate
	// (udpnet for live runs, loopnet for tests, a pre-built vnet node).
	// When set it wins: World, ID, Kind, Segments and Energy are ignored
	// and identity is read from the endpoint.
	Endpoint Endpoint
	// World is the virtual network the node lives in — the vnet
	// convenience path: Start attaches the endpoint itself from ID, Kind,
	// Segments and Energy. Ignored when Endpoint is set.
	World *World
	// ID is the node's identifier; the lowest ID in the control group is
	// the adaptation coordinator.
	ID NodeID
	// Kind is the device class (Fixed or Mobile).
	Kind Kind
	// Segments attaches the node to network segments; the first is
	// primary. Defaults to ["lan"] for fixed and ["wlan"] for mobile.
	Segments []string
	// Energy, when non-nil, meters the node's battery.
	Energy *netio.EnergyConfig
	// Clock is the node's time plane: every timer-driven layer (scheduler
	// timeouts, heartbeats and failure detection, NAK keepalives, context
	// sampling, policy ticks) runs on it. Nil defaults to the endpoint's
	// clock when the substrate has one (a vnet world built with
	// NewWorldWithClock — so nodes on a virtual-clock world virtualize
	// automatically), and to the wall clock otherwise.
	Clock Clock
	// Members is the bootstrap membership of the control group and of the
	// default data group.
	Members []NodeID
	// NoDefaultGroup starts the node without the implicit default group: a
	// pure control-plane bootstrap for processes that enter every group
	// late via JoinVia (typically with Members of just the node itself, the
	// singleton control group a control-plane JoinVia then grows out of).
	NoDefaultGroup bool
	// InitialConfig is the default group's first data stack (default
	// core.PlainConfig).
	InitialConfig *Document
	// InitialConfigName names it (default "plain").
	InitialConfigName string
	// Policies drive the default group's adaptation; leave empty for a
	// non-adaptive node.
	Policies []Policy
	// Retrievers adds context sources beyond the built-in battery and
	// device-class retrievers.
	Retrievers []cocaditem.Retriever
	// ContextInterval is the Cocaditem sampling period (default 100ms).
	ContextInterval time.Duration
	// PublishOnChange reduces context traffic to changes plus keepalives.
	PublishOnChange bool
	// EvalInterval is the Core policy evaluation period (default 200ms).
	EvalInterval time.Duration
	// OnMessage receives application payloads delivered by the default
	// group (on the group's scheduler goroutine: return quickly).
	OnMessage func(from NodeID, payload []byte)
	// OnViewChange observes default group views.
	OnViewChange func(v View)
	// OnReconfigured observes completed default-group reconfigurations
	// (coordinator only).
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
	// QuiesceTimeout bounds reconfiguration flushes (default 5s).
	QuiesceTimeout time.Duration
	// Heartbeat configures the control group failure detector period.
	Heartbeat time.Duration
	// SuspectAfter is the control group failure detection threshold.
	SuspectAfter time.Duration
	// NackDelay tunes the control channel's retransmission timer.
	NackDelay time.Duration
	// StableInterval tunes the control channel's stability gossip period.
	// Negative values are rejected by Start: disabling stability gossip
	// would let the control channel's retransmission buffers grow without
	// bound (see group.NakConfig.UnboundedBuffers for the test-only
	// escape hatch at the layer level).
	StableInterval time.Duration
	// SendWindow is the default group's send window: the maximum
	// application casts in flight before Send blocks (TrySend returns
	// ErrWindowFull). 0 means DefaultSendWindow; negative disables
	// windowing. See GroupConfig.SendWindow.
	SendWindow int
	// SendWindowBytes is the default group's byte-denominated send
	// window. See GroupConfig.SendWindowBytes. 0 disables it.
	SendWindowBytes int
	// SchedulerWorkers sizes the node's shared scheduler pool: the fixed
	// set of worker goroutines that execute every hosted group's protocol
	// stack (the control plane keeps its own dedicated scheduler, so
	// heartbeats and adaptation never queue behind data traffic). Group
	// count and worker count are decoupled — a node hosting 1,000 groups
	// runs the same few goroutines as one hosting 10, and idle groups cost
	// nothing. 0 means GOMAXPROCS, overridable by the MORPHEUS_POOL
	// environment variable ("dedicated" or a worker count — the CI
	// determinism matrix uses it); DedicatedSchedulers (-1) restores the
	// scheduler-goroutine-per-group model. Under a virtual clock the pool
	// dispatches deterministically, so experiment results are identical at
	// every setting.
	SchedulerWorkers int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// GroupConfig describes one hosted group to Join.
type GroupConfig struct {
	// Members is the group's bootstrap membership; every member must join
	// the group under the same name with the same list. Empty means the
	// node's control-group membership.
	Members []NodeID
	// InitialConfig is the group's first stack (default core.PlainConfig).
	// All members must join with the same initial configuration.
	InitialConfig *Document
	// InitialConfigName names it (default "plain").
	InitialConfigName string
	// Policies drive this group's adaptation, evaluated independently of
	// every other group's; empty means a non-adaptive group.
	Policies []Policy
	// QuiesceTimeout bounds this group's reconfiguration flushes
	// (default 5s).
	QuiesceTimeout time.Duration
	// OnMessage receives payloads delivered in this group (on the group's
	// scheduler goroutine: return quickly).
	OnMessage func(from NodeID, payload []byte)
	// OnCast, when set, receives the full delivered cast event (origin,
	// sequence number, group tag) in addition to OnMessage.
	OnCast func(ev *CastEvent)
	// OnViewChange observes the group's data-channel views.
	OnViewChange func(v View)
	// OnReconfigured observes completed reconfigurations of this group
	// (group coordinator only).
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
	// SendWindow bounds this group's in-flight application casts: a
	// credit is consumed by each accepted Send and released once the
	// reliable layer's stability gossip confirms every member delivered
	// the cast, which in turn bounds the scheduler mailbox, the NAK
	// retransmission buffers and the reconfiguration resubmit buffer (the
	// bounded-memory runtime). When the window is full, Send blocks
	// through the group's clock, SendContext honours its context, and
	// TrySend returns ErrWindowFull. 0 means DefaultSendWindow; negative
	// disables windowing (unbounded retention, the pre-flow-control
	// behavior). Configurations without the reliable NAK layer (pure FEC)
	// send unwindowed regardless.
	SendWindow int
	// SendWindowBytes supplements SendWindow with byte-accurate
	// backpressure: each accepted Send also charges its payload length
	// (clamped to the window) against a byte-denominated credit window,
	// released on the same stability watermark as the message credit, so
	// a few large casts exert the same pressure as many small ones and
	// retained bytes — not just retained messages — stay bounded. 0
	// disables the byte window (message credits alone govern).
	SendWindowBytes int
}

// Node is a running Morpheus participant: the shared control plane of a
// group-hosting runtime.
type Node struct {
	cfg      Config
	endpoint Endpoint
	pool     *appia.Pool      // shared executor for every group's stack (nil in dedicated mode)
	ctlSched *appia.Scheduler // control-plane scheduler (heartbeats, adaptation)
	ctl      *appia.Channel
	ctx      *cocaditem.Session
	coreSes  *core.Session

	mu      sync.Mutex
	groups  map[string]*Group
	closed  bool
	ctlView View // latest control-group view (updated on the ctl scheduler)
}

// Group is one hosted group on a Node: an independent protocol stack,
// membership, epoch counter and adaptation pipeline sharing the node's
// endpoint and control plane.
type Group struct {
	name    string
	node    *Node
	cfg     GroupConfig
	ep      *groupEndpoint
	sched   *appia.Scheduler
	manager *stack.Manager
}

// Facade errors.
var (
	// ErrNoMembers reports a Start without bootstrap membership.
	ErrNoMembers = errors.New("morpheus: Config.Members must not be empty")
	// ErrBadGroupName reports a Join with an empty or unusable group name.
	ErrBadGroupName = errors.New("morpheus: group name must be non-empty and free of '/' and '@'")
	// ErrGroupExists reports a Join of an already hosted group.
	ErrGroupExists = errors.New("morpheus: group already joined")
	// ErrNodeClosed reports an operation on a closed node.
	ErrNodeClosed = errors.New("morpheus: node closed")
	// ErrNoGroup reports an operation on a group the node does not host.
	ErrNoGroup = errors.New("morpheus: group not joined")
	// ErrGroupClosed reports a send on a group that was left or whose
	// node closed: the payload was NOT accepted. Sends racing Leave/Close
	// return it deterministically (they never buffer into a dead group).
	ErrGroupClosed = stack.ErrGroupClosed
	// ErrWindowFull is TrySend's backpressure signal: the group's send
	// window has no free credit (or the group scheduler's mailbox is
	// saturated).
	ErrWindowFull = stack.ErrWindowFull
)

// ControlPort is the substrate port of the (never reconfigured) control
// channel.
const ControlPort = "ctl"

// DedicatedSchedulers, as Config.SchedulerWorkers, gives every hosted
// group its own scheduler goroutine instead of the shared worker pool.
const DedicatedSchedulers = -1

// PoolStats is a snapshot of the node scheduler pool's dispatch counters.
type PoolStats = appia.PoolStats

// resolveWorkers maps Config.SchedulerWorkers (and the MORPHEUS_POOL
// environment override used by the CI determinism matrix) to a pool size,
// or DedicatedSchedulers.
func resolveWorkers(n int) int {
	if n != 0 {
		return n
	}
	switch v := os.Getenv("MORPHEUS_POOL"); v {
	case "", "0":
		return 0 // NewPool defaults to GOMAXPROCS
	case "dedicated":
		return DedicatedSchedulers
	default:
		if k, err := strconv.Atoi(v); err == nil && k > 0 {
			return k
		}
		return 0
	}
}

// Start builds, deploys and starts a node: the shared control plane plus
// the default group.
func Start(cfg Config) (*Node, error) {
	if len(cfg.Members) == 0 {
		return nil, ErrNoMembers
	}
	if cfg.StableInterval < 0 {
		// A negative interval silently disables the only mechanism that
		// bounds control-channel retransmission buffers; reject it instead
		// of leaking by default (group.NakConfig.UnboundedBuffers is the
		// layer-level opt-in for short-lived test channels).
		return nil, fmt.Errorf("morpheus: %w", group.ErrUnboundedNak)
	}
	logf := netio.Logf(cfg.Logf).Or()
	ep := cfg.Endpoint
	if ep == nil {
		// vnet convenience path: attach the endpoint ourselves.
		if cfg.World == nil {
			return nil, errors.New("morpheus: Config.Endpoint or Config.World is required")
		}
		segments := cfg.Segments
		if len(segments) == 0 {
			if cfg.Kind == Mobile {
				segments = []string{"wlan"}
			} else {
				segments = []string{"lan"}
			}
		}
		var err error
		ep, err = cfg.World.Attach(netio.EndpointConfig{
			ID:       cfg.ID,
			Kind:     cfg.Kind,
			Segments: segments,
			Energy:   cfg.Energy,
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Identity lives on the endpoint.
		cfg.ID = ep.ID()
		cfg.Kind = ep.Kind()
	}
	if cfg.Clock == nil {
		// Inherit the substrate's time plane: a vnet world built on a
		// virtual clock virtualizes the whole node.
		if c, ok := ep.(interface{ Clock() clock.Clock }); ok {
			cfg.Clock = c.Clock()
		}
	}
	cfg.Clock = clock.Or(cfg.Clock)

	stack.RegisterAllWireEvents(nil)
	cocaditem.RegisterWireEvents(nil)
	core.RegisterWireEvents(nil)

	n := &Node{
		cfg:      cfg,
		endpoint: ep,
		ctlSched: appia.NewSchedulerWithClock(cfg.Clock),
		groups:   make(map[string]*Group),
	}
	if w := resolveWorkers(cfg.SchedulerWorkers); w != DedicatedSchedulers {
		n.pool = appia.NewPool(w, cfg.Clock)
	}

	// The default group rides on Config for backwards compatibility: a
	// single-group node keeps the original Start(Members, Policies,
	// OnMessage) shape. Late-joining processes opt out via NoDefaultGroup
	// and enter their groups through JoinVia instead.
	var coreGroups []core.GroupRuntime
	if !cfg.NoDefaultGroup {
		g, err := n.buildGroup(DefaultGroup, GroupConfig{
			Members:           cfg.Members,
			InitialConfig:     cfg.InitialConfig,
			InitialConfigName: cfg.InitialConfigName,
			Policies:          cfg.Policies,
			QuiesceTimeout:    cfg.QuiesceTimeout,
			OnMessage:         cfg.OnMessage,
			OnViewChange:      cfg.OnViewChange,
			OnReconfigured:    cfg.OnReconfigured,
			SendWindow:        cfg.SendWindow,
			SendWindowBytes:   cfg.SendWindowBytes,
		})
		if err != nil {
			n.ctlSched.Close()
			if n.pool != nil {
				n.pool.Close()
			}
			return nil, fmt.Errorf("morpheus: deploy initial config: %w", err)
		}
		n.groups[DefaultGroup] = g
		coreGroups = []core.GroupRuntime{g.runtime()}
	}

	// Control channel: static composition, never reconfigured (§3.2);
	// Cocaditem and Core share it. Every hosted group hangs off this one
	// channel: one membership service, one failure detector, one context
	// plane, N policy evaluators.
	retrievers := []cocaditem.Retriever{
		cocaditem.BatteryRetriever(ep),
		cocaditem.DeviceClassRetriever(ep),
	}
	retrievers = append(retrievers, cfg.Retrievers...)

	ctlLayers := []appia.Layer{
		transport.NewPTPLayer(transport.Config{Node: ep, Port: ControlPort, Logf: logf}),
		group.NewFanoutLayer(group.FanoutConfig{Self: cfg.ID, InitialMembers: cfg.Members}),
		group.NewNakLayer(group.NakConfig{
			Self:           cfg.ID,
			InitialMembers: cfg.Members,
			NackDelay:      cfg.NackDelay,
			StableInterval: cfg.StableInterval,
		}),
		group.NewGMSLayer(group.GMSConfig{
			Self:              cfg.ID,
			InitialMembers:    cfg.Members,
			EnableFD:          true,
			HeartbeatInterval: cfg.Heartbeat,
			SuspectAfter:      cfg.SuspectAfter,
			Clock:             cfg.Clock,
			OnView:            n.onCtlView,
		}),
		cocaditem.NewLayer(cocaditem.Config{
			Self:            cfg.ID,
			Interval:        cfg.ContextInterval,
			Retrievers:      retrievers,
			PublishOnChange: cfg.PublishOnChange,
			Clock:           cfg.Clock,
		}),
		core.NewLayer(core.Config{
			Self:         cfg.ID,
			Groups:       coreGroups,
			EvalInterval: cfg.EvalInterval,
			Clock:        cfg.Clock,
			Logf:         logf,
		}),
	}
	qos, err := appia.NewQoS("control", ctlLayers...)
	if err != nil {
		n.teardownEarly()
		return nil, err
	}
	n.ctl = qos.CreateChannel("ctl", n.ctlSched)
	if err := n.ctl.Start(); err != nil {
		n.teardownEarly()
		return nil, err
	}
	if !n.ctl.WaitReady(5 * time.Second) {
		n.teardownEarly()
		return nil, errors.New("morpheus: control channel never became ready")
	}
	if s, ok := n.ctl.SessionFor("cocaditem").(*cocaditem.Session); ok {
		n.ctx = s
	}
	if s, ok := n.ctl.SessionFor("core").(*core.Session); ok {
		n.coreSes = s
	}
	return n, nil
}

// teardownEarly releases partially-started resources.
func (n *Node) teardownEarly() {
	for _, g := range n.groups {
		if g != nil {
			g.teardown()
		}
	}
	n.ctlSched.Close()
	if n.pool != nil {
		n.pool.Close()
	}
}

// buildGroup constructs and deploys one hosted group: its own scheduler
// (so one group's backlog never delays another's, nor the control plane),
// its own stack manager in the group's port namespace, and a per-group
// transmission-accounting view of the shared endpoint.
func (n *Node) buildGroup(name string, gc GroupConfig) (*Group, error) {
	members := gc.Members
	if len(members) == 0 {
		members = n.cfg.Members
	}
	// Normalized once here: the group's effective view, its coordinator
	// election and the protocol layers all assume a sorted, deduplicated
	// membership.
	members = group.NormalizeMembers(append([]NodeID(nil), members...))
	gc.Members = members
	initialDoc := gc.InitialConfig
	initialName := gc.InitialConfigName
	if initialDoc == nil {
		initialDoc = core.PlainConfig()
		initialName = core.PlainConfigName
	}
	if initialName == "" {
		initialName = "custom"
	}
	return n.buildGroupAt(name, gc, initialDoc, initialName, 1, members)
}

// buildGroupAt is buildGroup with the deployment pinned: the stack comes up
// running configuration doc at the given epoch with deployMembers as its
// bootstrap view. The two member lists differ only for a late joiner, which
// deploys a singleton view of itself (gc.Members carries the full configured
// membership it is about to be admitted into) and lets the join protocol
// grow the view instead of colliding with the survivors' sequence spaces.
func (n *Node) buildGroupAt(name string, gc GroupConfig, doc *Document, configName string, epoch uint64, deployMembers []NodeID) (*Group, error) {
	if name == "" || strings.ContainsAny(name, "/@") {
		return nil, ErrBadGroupName
	}
	logf := netio.Logf(n.cfg.Logf).Or()
	g := &Group{
		name: name,
		node: n,
		ep:   &groupEndpoint{Endpoint: n.endpoint},
	}
	if n.pool != nil {
		g.sched = n.pool.NewScheduler()
	} else {
		g.sched = appia.NewSchedulerWithClock(n.cfg.Clock)
	}
	g.manager = stack.NewManager(stack.ManagerConfig{
		Node:            g.ep,
		Self:            n.cfg.ID,
		Group:           name,
		Scheduler:       g.sched,
		QuiesceTimeout:  gc.QuiesceTimeout,
		SendWindow:      gc.SendWindow,
		SendWindowBytes: gc.SendWindowBytes,
		Clock:           n.cfg.Clock,
		OnDeliver: func(ev *group.CastEvent) {
			if gc.OnCast != nil {
				gc.OnCast(ev)
			}
			if gc.OnMessage != nil {
				gc.OnMessage(ev.Origin, ev.Msg.Bytes())
			}
		},
		OnViewChange: gc.OnViewChange,
		Logf:         logf,
	})
	if win := g.manager.Window(); win != nil {
		// Bounded-mailbox mode rides along with the send window: external
		// ingress (this group's sends) is gated once the mailbox holds
		// several windows' worth of hops, while intra-stack and network
		// insertions stay non-blocking.
		high, low := stack.MailboxBounds(win.Capacity())
		g.sched.SetMailboxBounds(high, low)
	}
	g.cfg = gc
	if err := g.manager.Deploy(doc, configName, epoch, deployMembers); err != nil {
		g.teardown()
		return nil, err
	}
	return g, nil
}

// Join adds the node to a named group: deploys the group's initial stack
// and registers it with the control plane so its policies evaluate (and
// its reconfigurations run) independently of every other hosted group.
// Every member of the group must Join it under the same name with the same
// bootstrap membership and initial configuration, exactly as with
// Config.Members at Start.
func (n *Node) Join(name string, gc GroupConfig) (*Group, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNodeClosed
	}
	if _, dup := n.groups[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGroupExists, name)
	}
	// Reserve the name while the stack deploys outside the lock.
	n.groups[name] = nil
	n.mu.Unlock()

	g, err := n.buildGroup(name, gc)
	if err == nil {
		if rerr := n.coreSes.Register(g.runtime()); rerr != nil {
			g.teardown()
			g, err = nil, rerr
		}
	}
	n.mu.Lock()
	// Re-check closed: a Close that ran while the stack was deploying has
	// already torn down (and replaced) the group map, so this group must
	// not be installed — it would leak its scheduler and keep its ports
	// bound on a dead node.
	if err == nil && n.closed {
		err = ErrNodeClosed
	}
	if err != nil {
		delete(n.groups, name)
		n.mu.Unlock()
		if g != nil {
			n.coreSes.Unregister(name)
			g.teardown()
		}
		return nil, err
	}
	n.groups[name] = g
	n.mu.Unlock()
	return g, nil
}

// JoinVia enters a *running* group late, through one seed member, instead of
// taking part in its bootstrap. The joiner is first admitted to the control
// group (via the seed, if it is not already a control member), announces
// itself to the group's configured membership, fetches the group's current
// deployment (configuration, epoch, members) from the seed, deploys a
// matching stack as a singleton, and asks the group's coordinator for
// admission. Admission arrives as a state transfer: the current view plus
// the delivered-vector frontier, so the joiner starts gap-free at the
// frontier with no history replay. gc.Members and gc.InitialConfig are
// ignored — the running group dictates both.
func (n *Node) JoinVia(name string, seed NodeID, gc GroupConfig) (*Group, error) {
	if seed == appia.NoNode || seed == n.cfg.ID {
		return nil, fmt.Errorf("morpheus: join of %q needs a seed other than self", name)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNodeClosed
	}
	if _, dup := n.groups[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGroupExists, name)
	}
	// Reserve the name while the join runs outside the lock.
	n.groups[name] = nil
	n.mu.Unlock()

	g, err := n.joinVia(name, seed, gc)
	n.mu.Lock()
	if err == nil && n.closed {
		err = ErrNodeClosed
	}
	if err != nil {
		delete(n.groups, name)
		n.mu.Unlock()
		if g != nil {
			n.coreSes.Unregister(name)
			g.teardown()
		}
		return nil, err
	}
	n.groups[name] = g
	n.mu.Unlock()
	return g, nil
}

// joinVia runs the late-join protocol for JoinVia (the name is already
// reserved). On success the returned group is registered with the control
// plane; on failure the join announcement has been retracted.
func (n *Node) joinVia(name string, seed NodeID, gc GroupConfig) (*Group, error) {
	if name == "" || strings.ContainsAny(name, "/@") {
		return nil, ErrBadGroupName
	}
	clk := n.cfg.Clock
	step := gc.QuiesceTimeout
	if step <= 0 {
		step = 5 * time.Second
	}

	// 1. Control-plane admission. Group membership is slaved to the control
	// group (a data view never admits a node the control plane cannot see),
	// so the joiner must be control-live before any survivor counts it.
	if v := n.CtlView(); !v.Contains(n.cfg.ID) || !v.Contains(seed) {
		if err := n.ctl.Insert(&group.JoinVia{Seed: seed}, appia.Down); err != nil {
			return nil, err
		}
		if !n.waitCtl(step, func(v View) bool {
			return v.Contains(n.cfg.ID) && v.Contains(seed)
		}) {
			return nil, fmt.Errorf("morpheus: control-group admission via %d timed out", seed)
		}
	}

	// 2. Announce the join BEFORE requesting data admission, so no survivor
	// can hold a data view containing us while its configured membership
	// does not — the control plane's membership repair would evict us right
	// back out.
	if err := n.coreSes.AnnounceJoin(name, n.cfg.ID); err != nil {
		return nil, err
	}
	retract := func() { _ = n.coreSes.AnnounceLeave(name, n.cfg.ID) }

	// 3. Discover the deployment and request admission; a reconfiguration
	// racing the join moves the group's port namespace to a new epoch, so an
	// admission timeout re-fetches the deployment and retries there.
	deadline := clk.Now().Add(3 * step)
	for {
		info, ok := n.fetchGroupInfo(seed, name, step)
		if !ok {
			retract()
			return nil, fmt.Errorf("morpheus: no deployment info for group %q from seed %d", name, seed)
		}
		g, admitted, err := n.joinEpoch(name, seed, gc, info, step)
		if err != nil {
			retract()
			return nil, err
		}
		if admitted {
			return g, nil
		}
		g.teardown()
		if clk.Now().After(deadline) {
			retract()
			return nil, fmt.Errorf("morpheus: admission to group %q via %d timed out", name, seed)
		}
	}
}

// joinEpoch deploys the discovered configuration as a singleton and waits for
// the group to install a view admitting this node. admitted=false with a nil
// error means the attempt timed out (likely an epoch race) and the caller
// owns the returned group's teardown.
func (n *Node) joinEpoch(name string, seed NodeID, gc GroupConfig, info core.GroupInfo, step time.Duration) (g *Group, admitted bool, err error) {
	doc, err := appiaxml.ParseString(info.XML)
	if err != nil {
		return nil, false, fmt.Errorf("morpheus: group %q deployment info: %w", name, err)
	}
	full := group.NormalizeMembers(append(append([]NodeID(nil), info.Members...), n.cfg.ID))
	gc.Members = full
	gc.InitialConfig = nil
	gc.InitialConfigName = ""
	g, err = n.buildGroupAt(name, gc, doc, info.ConfigName, info.Epoch, []NodeID{n.cfg.ID})
	if err != nil {
		return nil, false, err
	}
	// Register the runtime with the control plane BEFORE requesting data
	// admission: from the instant the gms can install a view containing this
	// node, a racing reconfiguration (membership repair after a real crash, a
	// policy flip) must be able to reach this node's stack — an unregistered
	// group drops the Prepare, stranding the joiner on a dead epoch while the
	// survivors move on.
	if rerr := n.coreSes.Register(g.runtime()); rerr != nil {
		g.teardown()
		return nil, false, rerr
	}
	// The data-plane seed must be a current data member; fall back to the
	// group's coordinator when the control seed does not host this group.
	dataSeed := seed
	if !info.Contains(seed) && len(info.Members) > 0 {
		dataSeed = info.Members[0]
	}
	if err := g.manager.Channel().Insert(&group.JoinVia{Seed: dataSeed}, appia.Down); err != nil {
		n.coreSes.Unregister(name)
		g.teardown()
		return nil, false, err
	}
	clk := n.cfg.Clock
	deadline := clk.Now().Add(step)
	for {
		// The deploy-time view is the singleton {self}; the admission view
		// delivered by the state transfer is the first with anyone else in it
		// (a racing reconfiguration that already lists us deploys the same
		// multi-member view directly).
		if vm := g.manager.ViewMembers(); len(vm) > 1 {
			return g, true, nil
		}
		if clk.Now().After(deadline) {
			n.coreSes.Unregister(name)
			return g, false, nil
		}
		clk.Sleep(20 * time.Millisecond)
	}
}

// fetchGroupInfo polls the seed for the group's current deployment record.
func (n *Node) fetchGroupInfo(seed NodeID, name string, step time.Duration) (core.GroupInfo, bool) {
	n.coreSes.ForgetGroupInfo(name)
	clk := n.cfg.Clock
	deadline := clk.Now().Add(step)
	for {
		_ = n.coreSes.RequestGroupInfo(seed, name)
		clk.Sleep(50 * time.Millisecond)
		if info, ok := n.coreSes.LastGroupInfo(name); ok {
			return info, true
		}
		if clk.Now().After(deadline) {
			return core.GroupInfo{}, false
		}
	}
}

// onCtlView records each installed control-group view (called on the control
// scheduler).
func (n *Node) onCtlView(v View) {
	n.mu.Lock()
	n.ctlView = v
	n.mu.Unlock()
}

// CtlView returns the latest installed control-group view.
func (n *Node) CtlView() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ctlView.Clone()
}

// waitCtl polls the control view until pred holds or timeout elapses.
func (n *Node) waitCtl(timeout time.Duration, pred func(View) bool) bool {
	clk := n.cfg.Clock
	deadline := clk.Now().Add(timeout)
	for {
		if pred(n.CtlView()) {
			return true
		}
		if clk.Now().After(deadline) {
			return false
		}
		clk.Sleep(20 * time.Millisecond)
	}
}

// Group returns the named hosted group, or nil.
func (n *Node) Group(name string) *Group {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.groups[name]
}

// Groups returns the hosted groups (excluding any mid-Join reservations),
// sorted by name so callers iterate them in a deterministic order.
func (n *Node) Groups() []*Group {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		if g != nil {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Clock returns the node's time plane.
func (n *Node) Clock() Clock { return n.cfg.Clock }

// Endpoint exposes the node's network attachment (identity, traffic
// counters) on whatever substrate it runs.
func (n *Node) Endpoint() Endpoint { return n.endpoint }

// PoolStats snapshots the node scheduler pool's dispatch counters (worker
// batches, wake-ups, steals). The zero value is returned in dedicated mode
// (Config.SchedulerWorkers == DedicatedSchedulers).
func (n *Node) PoolStats() PoolStats {
	if n.pool == nil {
		return PoolStats{}
	}
	return n.pool.Stats()
}

// VNode exposes the virtual network attachment (counters, battery, crash
// injection) when the node runs on the vnet convenience path; it returns
// nil for nodes started on another substrate via Config.Endpoint.
func (n *Node) VNode() *vnet.Node {
	vn, _ := n.endpoint.(*vnet.Node)
	return vn
}

// defaultGroup returns the default group, or nil after it was left.
func (n *Node) defaultGroup() *Group { return n.Group(DefaultGroup) }

// Send multicasts an application payload to the default group; during
// reconfigurations it is buffered transparently. On a closed node it
// returns ErrGroupClosed (deterministically — never a silent accept).
func (n *Node) Send(payload []byte) error {
	g := n.defaultGroup()
	if g == nil {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return ErrGroupClosed
		}
		return fmt.Errorf("%w: %q", ErrNoGroup, DefaultGroup)
	}
	return g.Send(payload)
}

// Context exposes the node's Cocaditem store (Latest, Snapshot, Subscribe).
func (n *Node) Context() *cocaditem.Session { return n.ctx }

// Core exposes the node's control-plane session (group registry,
// per-group deployment state).
func (n *Node) Core() *core.Session { return n.coreSes }

// Manager exposes the default group's stack manager.
func (n *Node) Manager() *stack.Manager {
	g := n.defaultGroup()
	if g == nil {
		return nil
	}
	return g.manager
}

// ConfigName returns the default group's deployed configuration.
func (n *Node) ConfigName() string {
	g := n.defaultGroup()
	if g == nil {
		return ""
	}
	return g.ConfigName()
}

// Epoch returns the default group's configuration epoch.
func (n *Node) Epoch() uint64 {
	g := n.defaultGroup()
	if g == nil {
		return 0
	}
	return g.Epoch()
}

// Close stops the node: control channel, then every hosted group.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	groups := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		if g != nil {
			groups = append(groups, g)
		}
	}
	// Tear down in name order: group teardown posts events, and under the
	// virtual clock a map-ordered shutdown would be the run's only
	// schedule nondeterminism.
	sort.Slice(groups, func(i, j int) bool { return groups[i].name < groups[j].name })
	n.groups = make(map[string]*Group)
	n.mu.Unlock()

	var firstErr error
	if n.ctl != nil {
		if err := n.ctl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, g := range groups {
		if err := g.teardown(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.ctlSched.Close()
	if n.pool != nil {
		// Last: every group scheduler has fully drained by now, so the
		// workers are idle.
		n.pool.Close()
	}
	return firstErr
}

// --- Group ------------------------------------------------------------------

// runtime describes the group to the control plane.
func (g *Group) runtime() core.GroupRuntime {
	return core.GroupRuntime{
		Group:          g.name,
		Manager:        g.manager,
		Policies:       g.cfg.Policies,
		Members:        g.cfg.Members,
		OnReconfigured: g.cfg.OnReconfigured,
	}
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Send multicasts an application payload to this group; during the group's
// reconfigurations it is buffered transparently. With the send window
// enabled (the default) it blocks, through the group's clock, while the
// window is full — so it must not be called from the group's own delivery
// callbacks (use TrySend there). After Leave or node Close it returns
// ErrGroupClosed.
func (g *Group) Send(payload []byte) error { return g.manager.Send(payload) }

// SendContext is Send bounded by ctx: a send blocked on the window
// returns ctx.Err() once the context is done. (A context deadline is wall
// time — prefer Send or TrySend under a virtual clock.)
func (g *Group) SendContext(ctx context.Context, payload []byte) error {
	return g.manager.SendContext(ctx, payload)
}

// TrySend is the non-blocking Send: it returns ErrWindowFull instead of
// waiting when the group's send window is exhausted or its scheduler
// mailbox is saturated, and ErrGroupClosed after Leave or node Close.
func (g *Group) TrySend(payload []byte) error { return g.manager.TrySend(payload) }

// FlowStats snapshots the group's flow-control state: send-window credit
// counters, scheduler mailbox depth marks, and the reliable layer's
// retention high-water marks (aggregated across configuration epochs).
func (g *Group) FlowStats() FlowStats { return g.manager.FlowStats() }

// Manager exposes the group's stack manager (epoch, configuration name).
func (g *Group) Manager() *stack.Manager { return g.manager }

// ConfigName returns the group's deployed configuration.
func (g *Group) ConfigName() string { return g.manager.ConfigName() }

// Epoch returns the group's configuration epoch.
func (g *Group) Epoch() uint64 { return g.manager.Epoch() }

// Counters snapshots the group's share of the endpoint's transmissions:
// what this group's stack put on the wire, keyed by class. (Receptions are
// accounted on the shared endpoint only — the per-group view counts cost,
// which is what the paper's Figure 3 measures.)
func (g *Group) Counters() Counters { return g.ep.counters.Snapshot() }

// ResetCounters zeroes the group's transmission counters (between
// experiment phases).
func (g *Group) ResetCounters() { g.ep.counters.Reset() }

// Leave withdraws the node from the group: adaptation stops, the stack is
// torn down, the group's ports unbind. The departure is announced through
// the control plane first, so the survivors install a view excluding this
// node within one stability round — releasing any casts, window credits and
// byte budget held against it — instead of waiting for failure-detector
// eviction. A rejoin under the same name goes through JoinVia.
func (g *Group) Leave() error {
	n := g.node
	n.mu.Lock()
	if n.groups[g.name] != g {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoGroup, g.name)
	}
	delete(n.groups, g.name)
	n.mu.Unlock()
	if n.coreSes != nil {
		n.coreSes.Unregister(g.name)
		// Announced while the leaver's stack is still up: the reliable cast
		// needs its origin alive long enough to reach stability on the
		// control channel, which outlives this group's teardown.
		if err := n.coreSes.AnnounceLeave(g.name, n.cfg.ID); err != nil && n.cfg.Logf != nil {
			n.cfg.Logf("morpheus: leave announcement for %q: %v", g.name, err)
		}
	}
	return g.teardown()
}

// teardown releases the group's resources.
func (g *Group) teardown() error {
	err := g.manager.Close()
	g.sched.Close()
	return err
}

// groupEndpoint is a per-group view of the shared endpoint: sends delegate
// to the substrate and are additionally accounted per group, so a node
// hosting many groups can attribute its radio cost — the quantity Figure 3
// measures — to each one. Self-sends are not accounted, mirroring the
// substrate contract (they never touch the NIC).
type groupEndpoint struct {
	netio.Endpoint
	counters netio.CounterSet
}

// Send implements netio.Endpoint.
func (g *groupEndpoint) Send(dst NodeID, port, class string, payload []byte) error {
	err := g.Endpoint.Send(dst, port, class, payload)
	if err == nil && dst != g.Endpoint.ID() {
		g.counters.AddTx(class, len(payload))
	}
	return err
}

// Multicast implements netio.Endpoint. Unlike Send, there is no self-send
// exemption to mirror: the netio contract (pinned by the conformance
// suite on vnet, loopnet and udpnet alike) counts a native multicast as
// exactly one transmission regardless of the receiver set and never
// delivers it back to the sender, so the unconditional accounting here
// matches the substrate one-for-one — TestGroupEndpointAccountingParity
// asserts the equality on all three backends.
func (g *groupEndpoint) Multicast(segment, port, class string, payload []byte) error {
	err := g.Endpoint.Multicast(segment, port, class, payload)
	if err == nil {
		g.counters.AddTx(class, len(payload))
	}
	return err
}
