GO ?= go

.PHONY: check build vet test race bench bench-json golden chaos chaos-scale chaos-churn soak lint

# check is the CI entry point: vet, build, full test suite, bench smoke run.
check: vet build test bench

# lint is the repo's static-analysis gate: a gofmt check, go vet, and the
# in-tree analyzer suite (tools/morpheuslint — wallclock, mapiter,
# borrowedbuf, goactor; see DESIGN.md "Static analysis") over both wire
# planes. The tree must be lint-clean: every legitimate wall-only site
# carries a justified //lint:<analyzer>-ok directive, and the linter
# rejects empty, unknown, and unused directives.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -tags morpheus_portable ./...
	$(GO) run ./tools/morpheuslint ./...
	$(GO) run ./tools/morpheuslint -tags morpheus_portable ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector in short mode (socket-bound
# udpnet tests skip themselves under -short, keeping the job reliable).
race:
	$(GO) test -race -short ./...

# golden replays the virtualized experiments (figure3, E5, E6, E9, E10)
# three times each and checks the counter-matrix hashes against the pins in
# internal/experiment/testdata/golden.json. Regenerate pins after an
# intentional behavior change with:
#   go test ./internal/experiment -run TestGoldenReplay -update-golden
golden:
	$(GO) test ./internal/experiment -run TestGoldenReplay -count=1 -v

# chaos sweeps 1000 seeded fault schedules (E12) on virtual time and checks
# the full invariant suite per run — ~50 s wall. A failing seed is a
# complete failure artifact; reproduce it with:
#   go run ./cmd/morpheus-bench -replay <seed>
chaos:
	$(GO) run ./cmd/morpheus-bench -run chaos -seeds 1000 -seed 1

# chaos-scale is the scheduler-pool population smoke: the same fault
# schedules while every node additionally hosts 1000 quiet groups on the
# shared worker pool. Invariants must hold exactly as without them, and
# crash-stops exercise pooled teardown at population scale.
chaos-scale:
	$(GO) run ./cmd/morpheus-bench -run chaos -seeds 50 -seed 2001 -groups 1000

# chaos-churn is the membership-lifecycle sweep (E12b): the same seeded
# fault schedules with two graceful-churn waves appended per seed — a fresh
# group bootstrapped without one member, that member folded in late via
# JoinVia state transfer, flooded, and departed gracefully mid-run (the
# survivors must drain their send windows within a stability round).
# Reproduce a failing seed with:
#   go run ./cmd/morpheus-bench -replay <seed> -churns 2
chaos-churn:
	$(GO) run ./cmd/morpheus-bench -run churn -seeds 300 -seed 1 -churns 2

# soak exercises the real-socket wire plane end to end: the live demo (UDP
# on localhost, batched coalescer + vectored syscalls on by default) runs
# repeatedly. Each round covers the full membership lifecycle across four
# OS processes — the bootstrap trio runs reliable multicast in two groups
# plus a live plain->mecho reconfiguration, a fourth process then joins the
# *running* group late through a seed member (-join-via semantics: state
# transfer, gap-free start at the frontier), and one member is SIGTERMed
# mid-run so its graceful leave must converge the survivors' views well
# under the failure-detection threshold. IP-multicast is not required (the
# demo is unicast on 127.0.0.1); rounds with `make soak SOAK_ROUNDS=20`.
SOAK_ROUNDS ?= 5
soak:
	@i=1; while [ $$i -le $(SOAK_ROUNDS) ]; do \
		echo "soak: round $$i/$(SOAK_ROUNDS)"; \
		$(GO) run ./examples/live || exit 1; \
		i=$$((i+1)); \
	done

# bench runs every benchmark once as a smoke test (catches bit-rot without
# paying for stable numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json runs the benchmarks for real and records them as JSON.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s ./... | tee /tmp/bench_out.txt
	$(GO) run ./tools/benchjson -after /tmp/bench_out.txt > BENCH_local.json
	@echo wrote BENCH_local.json
