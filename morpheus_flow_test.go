package morpheus

// Flow-control plane tests: the per-group send window (blocking /
// context / non-blocking senders), deterministic ErrGroupClosed on sends
// racing teardown, exact credit accounting across reconfigurations, the
// unbounded-NAK configuration guard, and the groupEndpoint accounting
// parity with the substrate contract.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/core"
	"morpheus/internal/group"
	"morpheus/internal/netio"
	"morpheus/internal/netio/loopnet"
	"morpheus/internal/netio/udpnet"
	"morpheus/internal/vnet"
)

// startTrio boots a three-node group on a fresh world with the given send
// window.
func startTrio(t *testing.T, seed int64, window int, onMsg func(from NodeID, payload []byte)) []*Node {
	t.Helper()
	w := hybridWorld(t, seed)
	members := []NodeID{1, 2, 3}
	var nodes []*Node
	for _, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: Fixed, Members: members,
			SendWindow: window,
			OnMessage:  onMsg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	return nodes
}

// TestTrySendBackpressure fills a tiny window against an idle group and
// asserts the non-blocking mode reports ErrWindowFull instead of waiting,
// then drains and sends again.
func TestTrySendBackpressure(t *testing.T) {
	nodes := startTrio(t, 41, 4, nil)
	g := nodes[0].Group(DefaultGroup)
	// Burst past the window: with stability gossip running the credits
	// drain, so only the instantaneous rejection is asserted, not a count.
	sawFull := false
	for i := 0; i < 64 && !sawFull; i++ {
		err := g.TrySend([]byte(fmt.Sprintf("burst-%d", i)))
		if errors.Is(err, ErrWindowFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("64 un-paced TrySends through a 4-credit window never saw ErrWindowFull")
	}
	// Backpressure is transient: stability returns the credits.
	eventually(t, 10*time.Second, "window drains", func() bool {
		return g.FlowStats().Window.InUse == 0
	})
	if err := g.TrySend([]byte("after-drain")); err != nil {
		t.Fatal(err)
	}
	st := g.FlowStats().Window
	if st.Rejected == 0 || st.HighWater != 4 || st.Capacity != 4 {
		t.Fatalf("window stats = %+v", st)
	}
}

// TestSendContextUnblocks: a context-bounded send parked on a full window
// returns the context's error instead of blocking forever.
func TestSendContextUnblocks(t *testing.T) {
	nodes := startTrio(t, 42, 2, nil)
	g := nodes[0].Group(DefaultGroup)
	// Saturate. (Credits trickle back via stability, hence TrySend in a
	// loop rather than exactly-capacity sends.)
	for i := 0; i < 2; i++ {
		if err := g.Send([]byte(fmt.Sprintf("fill-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := g.SendContext(ctx, []byte("bounded"))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or DeadlineExceeded", err)
	}
	// And an unconstrained context send succeeds once credits return.
	eventually(t, 10*time.Second, "credits return", func() bool {
		return g.FlowStats().Window.InUse < 2
	})
	if err := g.SendContext(context.Background(), []byte("after")); err != nil {
		t.Fatal(err)
	}
}

// TestByteWindowBackpressure pins the byte-denominated send window end
// to end: with the message window off and SendWindowBytes tiny, large
// casts exhaust the byte budget and TrySend reports ErrWindowFull; the
// same stability watermark that frees message credits returns the bytes,
// and at quiescence every acquired byte has been released.
func TestByteWindowBackpressure(t *testing.T) {
	w := hybridWorld(t, 46)
	members := []NodeID{1, 2, 3}
	var nodes []*Node
	for _, id := range members {
		n, err := Start(Config{
			World: w, ID: id, Kind: Fixed, Members: members,
			SendWindowBytes: 256,
			SendWindow:      -1, // message window off: bytes alone gate
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes = append(nodes, n)
	}
	g := nodes[0].Group(DefaultGroup)

	// 100-byte casts against a 256-byte budget: the third unstable cast
	// cannot fit, so an un-paced burst must hit ErrWindowFull.
	payload := make([]byte, 100)
	sawFull := false
	for i := 0; i < 64 && !sawFull; i++ {
		err := g.TrySend(payload)
		if errors.Is(err, ErrWindowFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("64 un-paced 100-byte TrySends through a 256-byte window never saw ErrWindowFull")
	}
	// Stability returns the bytes, exactly as many as were taken.
	eventually(t, 10*time.Second, "byte window drains", func() bool {
		return g.FlowStats().WindowBytes.InUse == 0
	})
	if err := g.TrySend(payload); err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, "final cast's bytes return", func() bool {
		return g.FlowStats().WindowBytes.InUse == 0
	})
	st := g.FlowStats()
	if st.WindowBytes.Rejected == 0 || st.WindowBytes.Capacity != 256 {
		t.Fatalf("byte window stats = %+v", st.WindowBytes)
	}
	if st.WindowBytes.HighWater > 256 {
		t.Fatalf("byte high water %d exceeds capacity 256", st.WindowBytes.HighWater)
	}
	if st.WindowBytes.Acquired != st.WindowBytes.Released {
		t.Fatalf("byte credit accounting: acquired %d != released %d", st.WindowBytes.Acquired, st.WindowBytes.Released)
	}
	// The message window stayed disabled: byte gating must not have
	// manufactured message credits.
	if st.Window.Capacity != 0 || st.Window.Acquired != 0 {
		t.Fatalf("message window was engaged: %+v", st.Window)
	}
}

// TestSendAfterLeaveAndClose is the satellite regression: sends after
// Leave or node Close return ErrGroupClosed deterministically, and sends
// RACING the teardown either complete or return ErrGroupClosed — they are
// never silently buffered into a dead group.
func TestSendAfterLeaveAndClose(t *testing.T) {
	nodes := startTrio(t, 43, 0, nil)

	// Extra group to exercise Leave separately from node Close.
	var aux []*Group
	for _, n := range nodes {
		g, err := n.Join("aux", GroupConfig{Members: []NodeID{1, 2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		aux = append(aux, g)
	}

	// Race senders against Leave on node 0.
	var wg sync.WaitGroup
	var badErr atomic.Value
	start := make(chan struct{})
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				err := aux[0].Send([]byte(fmt.Sprintf("race-%d-%d", s, i)))
				if err == nil {
					continue
				}
				if errors.Is(err, ErrGroupClosed) {
					return // deterministic teardown signal
				}
				badErr.Store(fmt.Errorf("sender %d: %w", s, err))
				return
			}
		}(s)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := aux[0].Leave(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err, ok := badErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}

	// Post-Leave: deterministic sentinel on every mode.
	if err := aux[0].Send([]byte("x")); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("Send after Leave = %v, want ErrGroupClosed", err)
	}
	if err := aux[0].TrySend([]byte("x")); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("TrySend after Leave = %v, want ErrGroupClosed", err)
	}
	if err := aux[0].SendContext(context.Background(), []byte("x")); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("SendContext after Leave = %v, want ErrGroupClosed", err)
	}

	// Node Close: default group handle and Node.Send agree.
	def := nodes[0].Group(DefaultGroup)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := def.Send([]byte("x")); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("Group.Send after Close = %v, want ErrGroupClosed", err)
	}
	if err := nodes[0].Send([]byte("x")); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("Node.Send after Close = %v, want ErrGroupClosed", err)
	}
}

// TestWindowCreditAccountingAcrossReconfig floods while the group
// reconfigures plain→Mecho and asserts no credit is lost or
// double-released: at quiescence every acquire has exactly one release
// and the window is empty. Runs under -race in short mode.
func TestWindowCreditAccountingAcrossReconfig(t *testing.T) {
	w := hybridWorld(t, 44)
	members := []NodeID{1, 2, 10}
	kinds := map[NodeID]Kind{1: Fixed, 2: Fixed, 10: Mobile}
	var delivered atomic.Int64
	nodes := make(map[NodeID]*Node)
	for _, id := range members {
		id := id
		n, err := Start(Config{
			World: w, ID: id, Kind: kinds[id], Members: members,
			Policies:        []Policy{core.HybridMechoPolicy{}},
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    40 * time.Millisecond,
			PublishOnChange: true,
			SendWindow:      16,
			OnMessage: func(from NodeID, payload []byte) {
				if id == 1 {
					delivered.Add(1)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[id] = n
	}
	const msgs = 120
	mob := nodes[10].Group(DefaultGroup)
	for i := 0; i < msgs; i++ {
		if err := mob.Send([]byte(fmt.Sprintf("flood-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, 30*time.Second, "reconfigured to mecho under load", func() bool {
		return nodes[10].ConfigName() == core.MechoConfigName(1)
	})
	eventually(t, 30*time.Second, "observer delivers the flood", func() bool {
		return delivered.Load() >= msgs
	})
	eventually(t, 30*time.Second, "credits all return", func() bool {
		st := mob.FlowStats()
		return st.Window.InUse == 0 && st.BufferedSends == 0
	})
	st := mob.FlowStats().Window
	if st.Acquired != uint64(msgs) {
		t.Errorf("acquired %d credits for %d sends", st.Acquired, msgs)
	}
	if st.Acquired != st.Released {
		t.Errorf("credit accounting across reconfiguration: acquired %d != released %d", st.Acquired, st.Released)
	}
	if st.HighWater > 16 {
		t.Errorf("window high water %d exceeds capacity 16", st.HighWater)
	}
	if ev := mob.FlowStats().Nak.Evicted; ev != 0 {
		t.Errorf("%d retention-cap evictions under windowed load", ev)
	}
}

// TestUnboundedNakConfigRejected is the satellite guard: a negative
// StableInterval (stability gossip off — the only bound on retransmission
// buffers) is rejected at the facade and at the XML layer factory unless
// the explicit UnboundedBuffers opt-in is set.
func TestUnboundedNakConfigRejected(t *testing.T) {
	w := hybridWorld(t, 45)
	_, err := Start(Config{
		World: w, ID: 1, Kind: Fixed, Members: []NodeID{1},
		StableInterval: -1,
	})
	if !errors.Is(err, group.ErrUnboundedNak) {
		t.Fatalf("Start with negative StableInterval = %v, want ErrUnboundedNak", err)
	}

	cfg := group.NakConfig{Self: 1, StableInterval: -1}
	if err := cfg.Validate(); !errors.Is(err, group.ErrUnboundedNak) {
		t.Fatalf("Validate = %v, want ErrUnboundedNak", err)
	}
	cfg.UnboundedBuffers = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("explicit opt-in rejected: %v", err)
	}

	// XML path: a document pinning stable-interval negative fails to
	// deploy without the opt-in and deploys with it.
	doc := core.PlainConfig()
	for i := range doc.Channels[0].Sessions {
		if doc.Channels[0].Sessions[i].Layer == "group.nak" {
			doc.Channels[0].Sessions[i].Params = append(doc.Channels[0].Sessions[i].Params,
				appiaxml.ParamSpec{Name: "stable-interval", Value: "-1s"})
		}
	}
	if _, err := Start(Config{
		World: w, ID: 2, Kind: Fixed, Members: []NodeID{2},
		InitialConfig: doc, InitialConfigName: "leaky",
	}); !errors.Is(err, group.ErrUnboundedNak) {
		t.Fatalf("deploy of gossip-less config = %v, want ErrUnboundedNak", err)
	}
}

// TestGroupEndpointAccountingParity is the multicast-accounting satellite:
// the per-group transmission counters must mirror the substrate contract
// exactly on every backend — self-sends uncounted, multicast one
// unconditional transmission, unicast counted per send.
func TestGroupEndpointAccountingParity(t *testing.T) {
	backends := map[string]func(t *testing.T) (a, b netio.Endpoint){
		"vnet": func(t *testing.T) (netio.Endpoint, netio.Endpoint) {
			w := vnet.NewWorld(7)
			t.Cleanup(func() { _ = w.Close() })
			w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
			a, err := w.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Fatal(err)
			}
			b, err := w.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		},
		"loopnet": func(t *testing.T) (netio.Endpoint, netio.Endpoint) {
			nw := loopnet.New()
			t.Cleanup(func() { _ = nw.Close() })
			a, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Fatal(err)
			}
			b, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		},
	}
	if !testing.Short() {
		backends["udpnet"] = func(t *testing.T) (netio.Endpoint, netio.Endpoint) {
			nw, err := udpnet.New(udpnet.Config{
				Peers:  map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"},
				Groups: map[string]string{"lan": "239.77.9.9:9709"},
			})
			if err != nil {
				t.Skipf("udpnet unavailable: %v", err)
			}
			t.Cleanup(func() { _ = nw.Close() })
			a, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Skipf("udpnet attach: %v", err)
			}
			b, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				t.Skipf("udpnet attach: %v", err)
			}
			return a, b
		}
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			raw, _ := mk(t)
			gep := &groupEndpoint{Endpoint: raw}
			payload := []byte("parity")
			compare := func(stage string, wantMsgs uint64) {
				t.Helper()
				sub := raw.Counters().Tx[ClassData]
				grp := gep.counters.Snapshot().Tx[ClassData]
				if sub.Msgs != wantMsgs || sub.Bytes != wantMsgs*uint64(len(payload)) {
					t.Errorf("%s: substrate tx = %+v, want %d msgs", stage, sub, wantMsgs)
				}
				if grp.Msgs != sub.Msgs || grp.Bytes != sub.Bytes {
					t.Errorf("%s: group accounting diverges from substrate: group %+v vs substrate %+v", stage, grp, sub)
				}
			}

			// Self-send: neither the substrate nor the group view counts
			// (it never touches the NIC).
			if err := gep.Send(raw.ID(), "p", ClassData, payload); err != nil {
				t.Fatal(err)
			}
			// Peer unicast: both count one.
			if err := gep.Send(2, "p", ClassData, payload); err != nil {
				t.Fatal(err)
			}
			compare("self+unicast", 1)

			// Native multicast: both count exactly one transmission,
			// regardless of how many endpoints receive it.
			if err := gep.Multicast("lan", "p", ClassData, payload); err != nil {
				// A sandbox without a multicast route can fail the write;
				// the substrate counts the keyed-up transmission while the
				// per-group view does not count errored sends — that
				// error-path divergence is documented, not asserted.
				t.Logf("multicast unavailable here (%v); parity asserted for self+unicast only", err)
				return
			}
			compare("multicast", 2)
		})
	}
}
