package morpheus_test

// Benchmarks regenerating the paper's evaluation, one per table/figure (see
// DESIGN.md's experiment index). Each benchmark iteration is a complete
// scenario run at reduced scale; custom metrics carry the quantities the
// paper plots (message counts, latencies, ratios). Paper-scale runs:
//
//	go run ./cmd/morpheus-bench -run figure3            (40 000 msgs)
//	go test -bench=. -benchmem                          (reduced scale)

import (
	"strconv"
	"testing"
	"time"

	"morpheus"
	"morpheus/internal/experiment"
	"morpheus/internal/netio"
	"morpheus/internal/netio/loopnet"
)

// benchMessages is the per-run message count for benchmark iterations; the
// paper used 40 000, which cmd/morpheus-bench reproduces.
const benchMessages = 500

// BenchmarkFigure3Mobile regenerates Figure 3: messages transmitted by the
// mobile device, optimized (Mecho) vs not optimized (plain fan-out), per
// group size.
func BenchmarkFigure3Mobile(b *testing.B) {
	for _, n := range []int{2, 3, 6, 9} {
		b.Run(sizeName(n), func(b *testing.B) {
			var opt, notOpt float64
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunFigure3(experiment.Figure3Config{
					Sizes:    []int{n},
					Messages: benchMessages,
					Timeout:  2 * time.Minute,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				opt = float64(rows[0].Optimized)
				notOpt = float64(rows[0].NotOptimized)
			}
			b.ReportMetric(opt, "optimized-msgs")
			b.ReportMetric(notOpt, "notoptimized-msgs")
		})
	}
}

// BenchmarkFixedRelayLoad is E2: the data traffic absorbed by the fixed
// relay in the optimized configuration (the paper's footnote: the mobile's
// savings come "at the expense of an increase in the number of messages of
// the fixed node").
func BenchmarkFixedRelayLoad(b *testing.B) {
	for _, n := range []int{3, 6, 9} {
		b.Run(sizeName(n), func(b *testing.B) {
			var relay float64
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunFigure3(experiment.Figure3Config{
					Sizes:    []int{n},
					Messages: benchMessages,
					Timeout:  2 * time.Minute,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				relay = float64(rows[0].RelayData)
			}
			b.ReportMetric(relay, "relay-data-msgs")
		})
	}
}

// BenchmarkControlOverhead is E3: the adaptive version's control traffic at
// the mobile device (paper footnote 1: "a small increase in the traffic due
// to the need of exchanging more control information").
func BenchmarkControlOverhead(b *testing.B) {
	var data, control float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFigure3(experiment.Figure3Config{
			Sizes:    []int{6},
			Messages: benchMessages,
			Timeout:  2 * time.Minute,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		data = float64(rows[0].OptimizedData)
		control = float64(rows[0].OptimizedControl)
	}
	b.ReportMetric(data, "data-msgs")
	b.ReportMetric(control, "control-msgs")
}

// BenchmarkReconfigLatency is E4: decision-to-deployment latency of the
// §3.3 reconfiguration procedure.
func BenchmarkReconfigLatency(b *testing.B) {
	for _, n := range []int{2, 4, 6, 9} {
		b.Run(sizeName(n), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunReconfigLatency([]int{n}, time.Minute, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				lat = float64(rows[0].Latency.Microseconds())
			}
			b.ReportMetric(lat, "µs/reconfig")
		})
	}
}

// BenchmarkMulticastStrategies is E5: per-node load of fan-out vs native
// multicast vs epidemic dissemination.
func BenchmarkMulticastStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunMulticastStrategies(experiment.StrategyConfig{
			Sizes:    []int{16},
			Messages: 100,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.MaxNodeTx), r.Strategy+"-max-node-tx")
		}
	}
}

// BenchmarkEnergyLifetime is E6: casts sustained before the first battery
// death, static relay vs battery-aware rotation.
func BenchmarkEnergyLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunEnergyLifetime(experiment.EnergyConfig{
			Nodes:    4,
			Capacity: 0.25,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.CastsBeforeDeath), r.Mode+"-casts")
		}
	}
}

// BenchmarkErrorRecovery is E7: ARQ vs FEC across loss rates — traffic per
// delivered payload and coverage.
func BenchmarkErrorRecovery(b *testing.B) {
	for _, p := range []float64{0.01, 0.10} {
		b.Run(lossName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunErrorRecovery(experiment.ErrorRecoveryConfig{
					LossRates: []float64{p},
					Nodes:     4,
					Messages:  200,
					Seed:      int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					b.ReportMetric(r.TxPerDelivery, r.Strategy+"-tx/delivery")
					b.ReportMetric(r.DeliveryRatio, r.Strategy+"-delivery")
				}
			}
		})
	}
}

// BenchmarkMultiGroupHosting is E9: a node hosting four groups at once
// (two adapting under load) — per-group transmission cost of the mobile,
// which must match the dedicated single-group runs.
func BenchmarkMultiGroupHosting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunMultiGroup(experiment.MultiGroupConfig{
			StressMessages: 30,
			Messages:       100,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.MobileDataTx), r.Group+"-data-tx")
			b.ReportMetric(float64(r.Leaked), r.Group+"-leaked")
		}
	}
}

// BenchmarkFlushAblation is E8: message continuity across reconfiguration
// with and without the view-synchronous flush.
func BenchmarkFlushAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFlushAblation(150, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Lost), r.Mode+"-lost-msgs")
		}
	}
}

// BenchmarkSendWindow measures the Group.Send hot path with the
// credit-based send window enabled (the default) against the unbounded
// fire-and-forget baseline (SendWindow: -1). The bounded path must stay
// within ~10% of the baseline: its steady-state cost is one mutex round
// trip per send plus the stability-driven release bookkeeping, with
// blocking only when the sender genuinely outruns the stack.
func BenchmarkSendWindow(b *testing.B) {
	for _, mode := range []struct {
		name   string
		window int
	}{
		{"windowed", 0},   // DefaultSendWindow
		{"unbounded", -1}, // pre-flow-control behavior
	} {
		b.Run(mode.name, func(b *testing.B) {
			nw := loopnet.New()
			defer nw.Close()
			ep, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
			if err != nil {
				b.Fatal(err)
			}
			nd, err := morpheus.Start(morpheus.Config{
				Endpoint:   ep,
				Members:    []morpheus.NodeID{1},
				SendWindow: mode.window,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer nd.Close()
			payload := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nd.Send(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}

// BenchmarkGroupHosting is the scheduler pool's per-group overhead proof:
// one node hosts `groups` single-member groups while each op sends one
// message round-robin across a fixed 16-group active set. Flat per-group
// hosting overhead means the hosted=1024 ns/op (and allocs/op) stay within
// 2x of hosted=16 — an idle hosted group must cost nothing per op, because
// it is simply absent from every run queue. The dedicated/pooled variants
// A/B the shared worker pool against one goroutine per group (pair with
// benchjson -variants "dedicated,pooled"); the all-active scaling sweep
// lives at the scheduler layer in BenchmarkSchedulerPool.
func BenchmarkGroupHosting(b *testing.B) {
	const active = 16
	for _, groups := range []int{16, 1024} {
		b.Run("hosted="+strconv.Itoa(groups), func(b *testing.B) {
			for _, mode := range []struct {
				name    string
				workers int
			}{
				{"dedicated", morpheus.DedicatedSchedulers},
				{"pooled", 0},
			} {
				b.Run(mode.name, func(b *testing.B) {
					nw := loopnet.New()
					defer nw.Close()
					ep, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
					if err != nil {
						b.Fatal(err)
					}
					nd, err := morpheus.Start(morpheus.Config{
						Endpoint:         ep,
						Members:          []morpheus.NodeID{1},
						SchedulerWorkers: mode.workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer nd.Close()
					gs := make([]*morpheus.Group, groups)
					for i := range gs {
						gs[i], err = nd.Join("h"+strconv.Itoa(i), morpheus.GroupConfig{Members: []morpheus.NodeID{1}})
						if err != nil {
							b.Fatal(err)
						}
					}
					payload := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := gs[i%active].Send(payload); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
				})
			}
		})
	}
}

func sizeName(n int) string {
	return "n=" + strconv.Itoa(n)
}

func lossName(p float64) string {
	if p < 0.05 {
		return "loss=1pct"
	}
	return "loss=10pct"
}
