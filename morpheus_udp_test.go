package morpheus_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus"
	"morpheus/internal/core"
	"morpheus/internal/netio"
	"morpheus/internal/netio/udpnet"
)

// TestMorpheusOverUDP runs the full middleware — control channel, context
// dissemination, adaptation, reconfiguration — on real UDP sockets: three
// endpoints on 127.0.0.1 (one mobile), reliable multicasts flowing, and
// the hybrid-Mecho policy redeploying the data stack live. It is the
// in-process twin of the examples/live multi-process demo.
func TestMorpheusOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	members := []morpheus.NodeID{1, 2, 100}
	peers := map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0", 100: "127.0.0.1:0"}
	nw, err := udpnet.New(udpnet.Config{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	type recv struct {
		mu  sync.Mutex
		got map[string]int
	}
	counts := make(map[morpheus.NodeID]*recv)
	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		kind := netio.Fixed
		if id == 100 {
			kind = netio.Mobile
		}
		ep, err := nw.Attach(netio.EndpointConfig{ID: id, Kind: kind, Segments: []string{"lan"}})
		if err != nil {
			t.Fatalf("attach %d: %v", id, err)
		}
		rc := &recv{got: make(map[string]int)}
		counts[id] = rc
		nd, err := morpheus.Start(morpheus.Config{
			Endpoint:        ep,
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 50 * time.Millisecond,
			EvalInterval:    60 * time.Millisecond,
			PublishOnChange: true,
			Heartbeat:       100 * time.Millisecond,
			SuspectAfter:    5 * time.Second,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				rc.mu.Lock()
				rc.got[string(payload)]++
				rc.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("start %d: %v", id, err)
		}
		if nd.ID() != id || nd.Endpoint() != ep {
			t.Fatalf("node %d: identity not read from endpoint", id)
		}
		if nd.VNode() != nil {
			t.Fatalf("node %d: VNode non-nil on a udpnet substrate", id)
		}
		nodes = append(nodes, nd)
	}

	// The group is hybrid (two fixed, one mobile): the policy must
	// redeploy everyone from plain to Mecho over the real sockets.
	wantCfg := core.MechoConfigName(1)
	waitUntil(t, 60*time.Second, "mecho deployed everywhere", func() bool {
		for _, nd := range nodes {
			if nd.ConfigName() != wantCfg {
				return false
			}
		}
		return true
	})

	// Reliable multicast from every member, including across whatever
	// reconfiguration tail is still settling.
	const msgs = 5
	payloads := make([]string, 0, len(nodes)*msgs)
	for _, nd := range nodes {
		for i := 0; i < msgs; i++ {
			p := string(rune('a'+int(nd.ID()%26))) + "-payload-" + time.Now().Format("150405") + "-" + string(rune('0'+i))
			payloads = append(payloads, p)
			if err := nd.Send([]byte(p)); err != nil {
				t.Fatalf("send from %d: %v", nd.ID(), err)
			}
		}
	}
	waitUntil(t, 60*time.Second, "all payloads delivered everywhere", func() bool {
		for _, rc := range counts {
			rc.mu.Lock()
			ok := true
			for _, p := range payloads {
				if rc.got[p] == 0 {
					ok = false
					break
				}
			}
			rc.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})

	// Exactly-once: the reliable suite must not duplicate deliveries.
	for id, rc := range counts {
		rc.mu.Lock()
		for _, p := range payloads {
			if n := rc.got[p]; n != 1 {
				t.Errorf("node %d delivered %q %d times", id, p, n)
			}
		}
		rc.mu.Unlock()
	}

	// The mobile's radio did real, accounted work over UDP.
	var mobile *morpheus.Node
	for _, nd := range nodes {
		if nd.ID() == 100 {
			mobile = nd
		}
	}
	if tx := mobile.Endpoint().Counters().TotalTx(); tx == 0 {
		t.Error("mobile endpoint counted no transmissions")
	}
}

// TestMultiGroupOverUDP proves the group-hosting runtime on real sockets:
// three endpoints on 127.0.0.1 each join two extra groups over one UDP
// endpoint and one control plane, exchange reliable multicasts in every
// group, and nothing crosses group boundaries.
func TestMultiGroupOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	members := []morpheus.NodeID{1, 2, 3}
	peers := map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0", 3: "127.0.0.1:0"}
	nw, err := udpnet.New(udpnet.Config{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	groupNames := []string{"rooms-a", "rooms-b"}
	type tally struct {
		mu  sync.Mutex
		got map[string]map[string]int // group -> payload -> count
	}
	counts := make(map[morpheus.NodeID]*tally)
	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		ep, err := nw.Attach(netio.EndpointConfig{ID: id, Kind: netio.Fixed, Segments: []string{"lan"}})
		if err != nil {
			t.Fatalf("attach %d: %v", id, err)
		}
		tl := &tally{got: make(map[string]map[string]int)}
		for _, gname := range groupNames {
			tl.got[gname] = make(map[string]int)
		}
		counts[id] = tl
		nd, err := morpheus.Start(morpheus.Config{
			Endpoint:     ep,
			Members:      members,
			Heartbeat:    100 * time.Millisecond,
			SuspectAfter: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("start %d: %v", id, err)
		}
		for _, gname := range groupNames {
			gname := gname
			_, err := nd.Join(gname, morpheus.GroupConfig{
				Members: members,
				OnCast: func(ev *morpheus.CastEvent) {
					if ev.Group != gname {
						t.Errorf("node %d: event tagged %q delivered in %q", id, ev.Group, gname)
						return
					}
					tl.mu.Lock()
					tl.got[gname][string(ev.Msg.Bytes())]++
					tl.mu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("node %d join %s: %v", id, gname, err)
			}
		}
		nodes = append(nodes, nd)
	}

	const msgs = 5
	want := make(map[string][]string)
	for _, nd := range nodes {
		for _, gname := range groupNames {
			for i := 0; i < msgs; i++ {
				p := fmt.Sprintf("%s|from=%d|%d", gname, nd.ID(), i)
				want[gname] = append(want[gname], p)
				if err := nd.Group(gname).Send([]byte(p)); err != nil {
					t.Fatalf("send %s from %d: %v", gname, nd.ID(), err)
				}
			}
		}
	}
	waitUntil(t, 60*time.Second, "all group payloads delivered everywhere", func() bool {
		for _, tl := range counts {
			tl.mu.Lock()
			ok := true
			for _, gname := range groupNames {
				for _, p := range want[gname] {
					if tl.got[gname][p] == 0 {
						ok = false
						break
					}
				}
			}
			tl.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})
	// Exactly once, and only in the right group.
	for id, tl := range counts {
		tl.mu.Lock()
		for _, gname := range groupNames {
			if extra := len(tl.got[gname]) - len(want[gname]); extra != 0 {
				t.Errorf("node %d group %s holds %d unexpected payloads", id, gname, extra)
			}
			for _, p := range want[gname] {
				if n := tl.got[gname][p]; n != 1 {
					t.Errorf("node %d group %s delivered %q %d times", id, gname, p, n)
				}
			}
		}
		tl.mu.Unlock()
	}
}

// waitUntil polls cond until true or the deadline.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
