// Package mecho implements the paper's adaptive best-effort multicast
// (§3.4, "Multicast Echo"). In hybrid scenarios — mobile nodes in range of
// a base station plus hosts on the fixed infrastructure — a mobile node
// sends a single point-to-point message to a selected fixed relay, which
// echoes it to the remaining participants. This shifts fan-out cost from
// the battery- and bandwidth-constrained mobile device onto the fixed node,
// which is exactly the effect Figure 3 measures.
//
// Mecho is "designed in a modular manner and, according to its operational
// mode (wired or wireless node), it is implemented by a different
// algorithm": NewLayer selects the algorithm from Config.Mode.
package mecho

import (
	"fmt"

	"morpheus/internal/appia"
	"morpheus/internal/group"
)

// Mode selects the per-device algorithm.
type Mode int

// Operational modes.
const (
	// Wireless: multicast = one unicast to the relay.
	Wireless Mode = iota + 1
	// Wired: act as a relay, echoing wireless traffic to everyone else;
	// own multicasts fan out point-to-point.
	Wired
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Wireless:
		return "wireless"
	case Wired:
		return "wired"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures a Mecho layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Mode is the operational algorithm (Wireless or Wired).
	Mode Mode
	// Relay is the fixed node that echoes for the wireless nodes. Chosen
	// by the Core policy from context information (device classes,
	// battery, bandwidth) and shipped in the configuration.
	Relay appia.NodeID
	// InitialMembers seeds the echo destination set until the first view.
	InitialMembers []appia.NodeID
}

// header flags distinguishing relay traffic.
const (
	flagDirect  = 0 // normal copy, deliver locally
	flagRelayMe = 1 // wireless → relay: echo this to the others for me
)

// Layer is the Mecho best-effort multicast bottom. Place it directly above
// transport.ptp, in place of group.fanout.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a Mecho layer in the configured mode.
func NewLayer(cfg Config) (*Layer, error) {
	switch cfg.Mode {
	case Wireless, Wired:
	default:
		return nil, fmt.Errorf("mecho: invalid mode %d", int(cfg.Mode))
	}
	if cfg.Relay == appia.NoNode {
		return nil, fmt.Errorf("mecho: a relay must be configured")
	}
	cfg.InitialMembers = group.NormalizeMembers(append([]appia.NodeID(nil), cfg.InitialMembers...))
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "mecho",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.TIface[appia.Sendable](),
					appia.T[*group.ViewInstall](),
				},
				Provides: []appia.EventType{appia.TIface[appia.Sendable]()},
			},
		},
		cfg: cfg,
	}, nil
}

// MustLayer is NewLayer that panics on configuration errors; for use in
// tests and static compositions.
func MustLayer(cfg Config) *Layer {
	l, err := NewLayer(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	return &session{cfg: l.cfg, members: l.cfg.InitialMembers}
}

type session struct {
	cfg     Config
	members []appia.NodeID
}

var _ appia.Session = (*session)(nil)

// Handle implements appia.Session.
func (s *session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *group.ViewInstall:
		if e.Dir() == appia.Down {
			s.members = e.View.Members
			return
		}
		ch.Forward(ev)
	case appia.Sendable:
		s.handleSendable(ch, e)
	default:
		ch.Forward(ev)
	}
}

func (s *session) handleSendable(ch *appia.Channel, e appia.Sendable) {
	sb := e.SendableBase()
	if sb.Dir() == appia.Down {
		if sb.Dest != appia.NoNode {
			// Addressed traffic (NACK repairs, flush reports) is not
			// Mecho's business — but it must carry a header so the
			// receiving Mecho session pops symmetrically.
			sb.EnsureMsg().PushUvarint(flagDirect)
			ch.Forward(e)
			return
		}
		s.spread(ch, e)
		return
	}
	s.receive(ch, e)
}

// spread implements the mode-specific downward multicast.
func (s *session) spread(ch *appia.Channel, e appia.Sendable) {
	sess := appia.Session(s)
	if s.cfg.Mode == Wireless && s.cfg.Relay != s.cfg.Self {
		// One message to the relay; it echoes to everybody else.
		cp := appia.CloneSendable(e)
		cb := cp.SendableBase()
		cb.EnsureMsg().PushUvarint(flagRelayMe)
		cb.Dest = s.cfg.Relay
		_ = ch.SendFrom(sess, cp, appia.Down)
		return
	}
	// Wired mode (or the relay itself): plain point-to-point fan-out.
	for _, m := range s.members {
		if m == s.cfg.Self {
			continue
		}
		cp := appia.CloneSendable(e)
		cb := cp.SendableBase()
		cb.EnsureMsg().PushUvarint(flagDirect)
		cb.Dest = m
		_ = ch.SendFrom(sess, cp, appia.Down)
	}
}

// receive pops the Mecho header and, on the relay, echoes flagged traffic
// to the remaining participants.
func (s *session) receive(ch *appia.Channel, e appia.Sendable) {
	sb := e.SendableBase()
	m := sb.EnsureMsg()
	flag, err := m.PopUvarint()
	if err != nil {
		return // not Mecho-framed: drop (stale traffic from another config)
	}
	if flag != flagRelayMe {
		ch.Forward(e)
		return
	}
	// We are the relay for this message: echo to everyone except the
	// originator and ourselves, then deliver locally.
	origin := sb.Source
	sess := appia.Session(s)
	for _, mbr := range s.members {
		if mbr == s.cfg.Self || mbr == origin {
			continue
		}
		cp := appia.CloneSendable(e)
		cb := cp.SendableBase()
		cb.EnsureMsg().PushUvarint(flagDirect)
		cb.Dest = mbr
		cb.Class = sb.Class
		_ = ch.SendFrom(sess, cp, appia.Down)
	}
	ch.Forward(e)
}
