package mecho

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/group"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// hybrid builds 1 mobile (id 10) + nFixed fixed nodes (ids 1..nFixed) with
// the Mecho stack: ptp → mecho → nak → gms. The relay is node 1.
type hybridNode struct {
	id    appia.NodeID
	node  *vnet.Node
	sched *appia.Scheduler
	ch    *appia.Channel

	mu        sync.Mutex
	delivered []string
}

func (h *hybridNode) deliveredList() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := make([]string, len(h.delivered))
	copy(cp, h.delivered)
	return cp
}

func buildHybrid(t *testing.T, nFixed int) (mobile *hybridNode, fixed []*hybridNode) {
	t.Helper()
	w := vnet.NewWorld(1)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	group.RegisterWireEvents(nil)

	const mobileID appia.NodeID = 10
	members := []appia.NodeID{mobileID}
	for i := 1; i <= nFixed; i++ {
		members = append(members, appia.NodeID(i))
	}
	members = group.NormalizeMembers(members)

	mk := func(id appia.NodeID, kind vnet.Kind, seg string, mode Mode) *hybridNode {
		vn, err := w.AddNode(id, kind, seg)
		if err != nil {
			t.Fatal(err)
		}
		h := &hybridNode{id: id, node: vn, sched: appia.NewScheduler()}
		t.Cleanup(h.sched.Close)
		q, err := appia.NewQoS("mecho-test",
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "d", Logf: t.Logf}),
			MustLayer(Config{Self: id, Mode: mode, Relay: 1, InitialMembers: members}),
			group.NewNakLayer(group.NakConfig{Self: id, InitialMembers: members, NackDelay: 10 * time.Millisecond, StableInterval: 50 * time.Millisecond}),
			group.NewGMSLayer(group.GMSConfig{Self: id, InitialMembers: members}),
		)
		if err != nil {
			t.Fatal(err)
		}
		h.ch = q.CreateChannel("data", h.sched, appia.WithDeliver(func(ev appia.Event) {
			if c, ok := ev.(*group.CastEvent); ok {
				h.mu.Lock()
				h.delivered = append(h.delivered, string(c.Msg.Bytes()))
				h.mu.Unlock()
			}
		}))
		if err := h.ch.Start(); err != nil {
			t.Fatal(err)
		}
		return h
	}

	mobile = mk(mobileID, vnet.Mobile, "wlan", Wireless)
	for i := 1; i <= nFixed; i++ {
		fixed = append(fixed, mk(appia.NodeID(i), vnet.Fixed, "lan", Wired))
	}
	for _, h := range append([]*hybridNode{mobile}, fixed...) {
		if !h.ch.WaitReady(2 * time.Second) {
			t.Fatal("stack never ready")
		}
	}
	return mobile, fixed
}

func cast(t *testing.T, h *hybridNode, payload string) {
	t.Helper()
	ev := &group.CastEvent{}
	ev.Msg = appia.NewMessage([]byte(payload))
	if err := h.ch.Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
}

func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestMobileSendsSingleUnicastPerCast(t *testing.T) {
	mobile, fixed := buildHybrid(t, 3)
	mobile.node.ResetCounters()

	const k = 20
	for i := 0; i < k; i++ {
		cast(t, mobile, fmt.Sprintf("m%02d", i))
	}
	for _, h := range append(fixed, mobile) {
		h := h
		eventually(t, 5*time.Second, fmt.Sprintf("node %d delivers %d", h.id, k), func() bool {
			return len(h.deliveredList()) == k
		})
	}
	c := mobile.node.Counters()
	if got := c.Tx[appia.ClassData].Msgs; got != k {
		t.Fatalf("mobile sent %d data messages for %d casts; Mecho must send exactly one each", got, k)
	}
}

func TestRelayEchoesToOthers(t *testing.T) {
	mobile, fixed := buildHybrid(t, 3)
	relay := fixed[0] // node 1
	relay.node.ResetCounters()

	cast(t, mobile, "hello")
	for _, h := range fixed {
		h := h
		eventually(t, 3*time.Second, fmt.Sprintf("fixed %d delivers", h.id), func() bool {
			return len(h.deliveredList()) == 1
		})
	}
	// The relay echoed to the two other fixed nodes (not back to the
	// mobile, not to itself).
	c := relay.node.Counters()
	if got := c.Tx[appia.ClassData].Msgs; got != 2 {
		t.Fatalf("relay transmitted %d data messages, want 2 echoes", got)
	}
}

func TestWiredNodeFansOut(t *testing.T) {
	mobile, fixed := buildHybrid(t, 3)
	sender := fixed[1] // wired non-relay
	sender.node.ResetCounters()

	cast(t, sender, "from-wired")
	for _, h := range append(fixed, mobile) {
		h := h
		eventually(t, 3*time.Second, "all deliver wired cast", func() bool {
			return len(h.deliveredList()) == 1
		})
	}
	// Wired mode fans out point-to-point: 3 peers.
	c := sender.node.Counters()
	if got := c.Tx[appia.ClassData].Msgs; got != 3 {
		t.Fatalf("wired sender transmitted %d data messages, want 3", got)
	}
}

func TestMechoReliabilityUnderWlanLoss(t *testing.T) {
	w := vnet.NewWorld(5)
	t.Cleanup(func() { _ = w.Close() })
	// Build manually to set wlan loss.
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true, Loss: 0.2})
	group.RegisterWireEvents(nil)
	members := []appia.NodeID{1, 2, 10}

	mk := func(id appia.NodeID, kind vnet.Kind, seg string, mode Mode) *hybridNode {
		vn, err := w.AddNode(id, kind, seg)
		if err != nil {
			t.Fatal(err)
		}
		h := &hybridNode{id: id, node: vn, sched: appia.NewScheduler()}
		t.Cleanup(h.sched.Close)
		q, err := appia.NewQoS("q",
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "d", Logf: t.Logf}),
			MustLayer(Config{Self: id, Mode: mode, Relay: 1, InitialMembers: members}),
			group.NewNakLayer(group.NakConfig{Self: id, InitialMembers: members, NackDelay: 10 * time.Millisecond, StableInterval: 40 * time.Millisecond}),
			group.NewGMSLayer(group.GMSConfig{Self: id, InitialMembers: members}),
		)
		if err != nil {
			t.Fatal(err)
		}
		h.ch = q.CreateChannel("data", h.sched, appia.WithDeliver(func(ev appia.Event) {
			if c, ok := ev.(*group.CastEvent); ok {
				h.mu.Lock()
				h.delivered = append(h.delivered, string(c.Msg.Bytes()))
				h.mu.Unlock()
			}
		}))
		if err := h.ch.Start(); err != nil {
			t.Fatal(err)
		}
		return h
	}
	mobile := mk(10, vnet.Mobile, "wlan", Wireless)
	f1 := mk(1, vnet.Fixed, "lan", Wired)
	f2 := mk(2, vnet.Fixed, "lan", Wired)
	for _, h := range []*hybridNode{mobile, f1, f2} {
		if !h.ch.WaitReady(2 * time.Second) {
			t.Fatal("not ready")
		}
	}

	const k = 30
	for i := 0; i < k; i++ {
		cast(t, mobile, fmt.Sprintf("l%02d", i))
	}
	for _, h := range []*hybridNode{mobile, f1, f2} {
		h := h
		eventually(t, 10*time.Second, fmt.Sprintf("node %d recovers all via relay", h.id), func() bool {
			return len(h.deliveredList()) == k
		})
	}
}

func TestNewLayerValidation(t *testing.T) {
	if _, err := NewLayer(Config{Self: 1, Mode: Wireless}); err == nil {
		t.Fatal("missing relay accepted")
	}
	if _, err := NewLayer(Config{Self: 1, Relay: 2}); err == nil {
		t.Fatal("missing mode accepted")
	}
	if _, err := NewLayer(Config{Self: 1, Mode: Wired, Relay: 2}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Wireless.String() != "wireless" || Wired.String() != "wired" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still format")
	}
}
