package appia

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkSchedulerPool measures per-task dispatch cost while hosting
// `groups` schedulers, dedicated (one goroutine each) vs pooled (shared
// GOMAXPROCS workers). "loaded" drives every group round-robin; "idle"
// hosts the full population but drives only 8 of them — the pool's flat
// per-group overhead claim is that the idle population costs nothing (it
// is simply absent from every run queue). Pair the variants with
//
//	go run ./tools/benchjson -variants "dedicated,pooled"
func BenchmarkSchedulerPool(b *testing.B) {
	for _, groups := range []int{1, 16, 256, 1024} {
		loads := []string{"loaded"}
		if groups > 8 {
			loads = append(loads, "idle")
		}
		for _, load := range loads {
			active := groups
			if load == "idle" {
				active = 8
			}
			b.Run(fmt.Sprintf("groups=%d,%s", groups, load), func(b *testing.B) {
				b.Run("dedicated", func(b *testing.B) { benchSchedulerPool(b, groups, active, false) })
				b.Run("pooled", func(b *testing.B) { benchSchedulerPool(b, groups, active, true) })
			})
		}
	}
}

func benchSchedulerPool(b *testing.B, groups, active int, pooled bool) {
	var pool *Pool
	if pooled {
		pool = NewPool(0, nil)
		defer pool.Close()
	}
	scheds := make([]*Scheduler, groups)
	for i := range scheds {
		if pooled {
			scheds[i] = pool.NewScheduler()
		} else {
			scheds[i] = NewScheduler()
		}
		scheds[i].Start()
	}
	defer func() {
		for _, s := range scheds {
			s.Close()
		}
	}()

	var done atomic.Int64
	fn := func() { done.Add(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scheds[i%active].Do(fn); err != nil {
			b.Fatal(err)
		}
	}
	for done.Load() != int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()

	if pooled {
		st := pool.Stats()
		if st.Enqueues == 0 || st.Batches == 0 {
			b.Fatalf("pool never dispatched: %+v", st)
		}
		if st.Stolen < st.Steals {
			b.Fatalf("steal accounting: %d steal ops migrated only %d schedulers", st.Steals, st.Stolen)
		}
		if st.Deterministic {
			b.Fatalf("wall-clock pool reports deterministic mode: %+v", st)
		}
		b.ReportMetric(float64(st.Steals)/float64(b.N), "steals/op")
		b.ReportMetric(float64(st.Batches)/float64(b.N), "batches/op")
	}
}
