package appia

import (
	"sync"
	"testing"
	"time"
)

// Test events forming a small hierarchy.
type baseEv struct{ SendableEvent }

type derivedEv struct {
	baseEv
	N int
}

type unrelatedEv struct{ EventBase }

// recLayer records every event its session sees and forwards it.
type recLayer struct {
	BaseLayer
	mu   sync.Mutex
	seen []string
	hold func(ev Event) bool // when non-nil and true, consume
}

func newRecLayer(name string, accepts ...EventType) *recLayer {
	return &recLayer{BaseLayer: BaseLayer{
		LayerName: name,
		LayerSpec: LayerSpec{Accepts: accepts},
	}}
}

func (l *recLayer) record(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen = append(l.seen, l.LayerName)
}

func (l *recLayer) events() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := make([]string, len(l.seen))
	copy(cp, l.seen)
	return cp
}

func (l *recLayer) NewSession() Session {
	return SessionFunc(func(ch *Channel, ev Event) {
		l.record(ev)
		if l.hold != nil && l.hold(ev) {
			return
		}
		ch.Forward(ev)
	})
}

func TestEventTypeMatching(t *testing.T) {
	base := T[*baseEv]()
	derived := T[*derivedEv]()
	sendable := T[*SendableEvent]()
	other := T[*unrelatedEv]()

	cases := []struct {
		name     string
		accept   EventType
		concrete EventType
		want     bool
	}{
		{"exact", base, base, true},
		{"derived matches base", base, derived, true},
		{"base does not match derived", derived, base, false},
		{"derived matches sendable root", sendable, derived, true},
		{"unrelated does not match sendable", sendable, other, false},
		{"interface Sendable matches derived", TIface[Sendable](), derived, true},
		{"interface Sendable does not match unrelated", TIface[Sendable](), other, false},
	}
	for _, tc := range cases {
		if got := tc.accept.Matches(tc.concrete); got != tc.want {
			t.Errorf("%s: Matches = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestQoSValidation(t *testing.T) {
	provider := newRecLayer("provider")
	provider.LayerSpec.Provides = []EventType{T[*baseEv]()}
	consumer := newRecLayer("consumer")
	consumer.LayerSpec.Requires = []EventType{T[*baseEv]()}

	if _, err := NewQoS("ok", provider, consumer); err != nil {
		t.Fatalf("valid QoS rejected: %v", err)
	}
	if _, err := NewQoS("bad", consumer); err == nil {
		t.Fatal("QoS with unprovided requirement accepted")
	}
	if _, err := NewQoS("empty"); err == nil {
		t.Fatal("empty QoS accepted")
	}
}

func TestChannelRoutesOnlyToAcceptingLayers(t *testing.T) {
	bottom := newRecLayer("bottom", T[*baseEv]())
	middle := newRecLayer("middle") // accepts nothing
	top := newRecLayer("top", T[*baseEv]())

	q, err := NewQoS("q", bottom, middle, top)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()

	var delivered []Event
	var mu sync.Mutex
	ch := q.CreateChannel("c", sched, WithDeliver(func(ev Event) {
		mu.Lock()
		delivered = append(delivered, ev)
		mu.Unlock()
	}))
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}

	if err := ch.Insert(&baseEv{}, Up); err != nil {
		t.Fatal(err)
	}
	sched.Flush()

	// ChannelInit visits everyone; baseEv visits only bottom and top.
	wantBottom := []string{"bottom", "bottom"} // init + event
	if got := bottom.events(); len(got) != len(wantBottom) {
		t.Fatalf("bottom saw %v", got)
	}
	if got := middle.events(); len(got) != 1 { // init only
		t.Fatalf("middle saw %v, want only ChannelInit", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 1 {
		t.Fatalf("app delivered %d events, want 1", len(delivered))
	}
}

func TestChannelDownTraversalOrder(t *testing.T) {
	var order []string
	var mu sync.Mutex
	mk := func(name string) Layer {
		return layerFunc{name: name, accepts: []EventType{T[*baseEv]()}, fn: func(ch *Channel, ev Event) {
			if _, ok := ev.(*baseEv); ok {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
			ch.Forward(ev)
		}}
	}
	q, err := NewQoS("q", mk("l0"), mk("l1"), mk("l2"))
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Insert(&baseEv{}, Down); err != nil {
		t.Fatal(err)
	}
	sched.Flush()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"l2", "l1", "l0"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("down order = %v, want %v", order, want)
	}
}

// layerFunc is a minimal Layer for tests.
type layerFunc struct {
	name    string
	accepts []EventType
	fn      func(ch *Channel, ev Event)
}

func (l layerFunc) Name() string { return l.name }
func (l layerFunc) Spec() LayerSpec {
	return LayerSpec{Accepts: l.accepts}
}
func (l layerFunc) NewSession() Session { return SessionFunc(l.fn) }

func TestSendFromStartsAdjacent(t *testing.T) {
	var mu sync.Mutex
	var order []string
	rec := func(name string) func(ch *Channel, ev Event) {
		return func(ch *Channel, ev Event) {
			if _, ok := ev.(*baseEv); ok {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
			ch.Forward(ev)
		}
	}
	l0 := layerFunc{name: "l0", accepts: []EventType{T[*baseEv]()}, fn: rec("l0")}
	l2 := layerFunc{name: "l2", accepts: []EventType{T[*baseEv]()}, fn: rec("l2")}

	// l1 emits a baseEv downward when it sees ChannelInit.
	var l1sess Session
	l1 := layerFunc{name: "l1", accepts: []EventType{T[*baseEv]()}, fn: func(ch *Channel, ev Event) {
		if _, ok := ev.(*ChannelInit); ok {
			if err := ch.SendFrom(l1sess, &baseEv{}, Down); err != nil {
				t.Errorf("SendFrom: %v", err)
			}
		}
		ch.Forward(ev)
	}}

	q, err := NewQoS("q", l0, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	l1sess = ch.sessions[1]
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	sched.Flush()

	mu.Lock()
	defer mu.Unlock()
	// The event must visit only l0 (below l1), never l2 or l1 itself.
	if len(order) != 1 || order[0] != "l0" {
		t.Fatalf("order = %v, want [l0]", order)
	}
}

func TestBounceRevisitsPath(t *testing.T) {
	var mu sync.Mutex
	var order []string
	passthru := func(name string) func(ch *Channel, ev Event) {
		return func(ch *Channel, ev Event) {
			if _, ok := ev.(*baseEv); ok {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
			ch.Forward(ev)
		}
	}
	l0 := layerFunc{name: "l0", accepts: []EventType{T[*baseEv]()}, fn: passthru("l0")}
	l1 := layerFunc{name: "l1", accepts: []EventType{T[*baseEv]()}, fn: passthru("l1")}
	// Top layer bounces the event back down once.
	bounced := false
	l2 := layerFunc{name: "l2", accepts: []EventType{T[*baseEv]()}, fn: func(ch *Channel, ev Event) {
		if _, ok := ev.(*baseEv); ok {
			mu.Lock()
			order = append(order, "l2")
			mu.Unlock()
			if !bounced {
				bounced = true
				ch.Bounce(ev)
				return
			}
		}
		ch.Forward(ev)
	}}

	q, err := NewQoS("q", l0, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Insert(&baseEv{}, Up); err != nil {
		t.Fatal(err)
	}
	sched.Flush()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"l0", "l1", "l2", "l1", "l0"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSharedSessionAcrossChannels(t *testing.T) {
	counts := make(map[*Channel]int)
	var mu sync.Mutex
	shared := SessionFunc(func(ch *Channel, ev Event) {
		if _, ok := ev.(*baseEv); ok {
			mu.Lock()
			counts[ch]++
			mu.Unlock()
		}
		ch.Forward(ev)
	})
	l := layerFunc{name: "shared", accepts: []EventType{T[*baseEv]()}, fn: nil}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch1 := q.CreateChannel("a", sched, WithSharedSession("shared", shared))
	ch2 := q.CreateChannel("b", sched, WithSharedSession("shared", shared))
	if ch1.SessionFor("shared") == nil || !sameSession(ch1.SessionFor("shared"), ch2.SessionFor("shared")) {
		t.Fatal("sessions not shared")
	}
	if err := ch1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ch2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ch1.Insert(&baseEv{}, Up); err != nil {
		t.Fatal(err)
	}
	if err := ch2.Insert(&baseEv{}, Up); err != nil {
		t.Fatal(err)
	}
	sched.Flush()
	mu.Lock()
	defer mu.Unlock()
	if counts[ch1] != 1 || counts[ch2] != 1 {
		t.Fatalf("shared session counts = %v", counts)
	}
}

func TestChannelCloseDeliversCloseTopDown(t *testing.T) {
	var mu sync.Mutex
	var closes []string
	mk := func(name string) Layer {
		return layerFunc{name: name, fn: func(ch *Channel, ev Event) {
			if _, ok := ev.(*ChannelClose); ok {
				mu.Lock()
				closes = append(closes, name)
				mu.Unlock()
			}
			ch.Forward(ev)
		}}
	}
	q, err := NewQoS("q", mk("l0"), mk("l1"))
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	sched.Flush()
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(closes) != 2 || closes[0] != "l1" || closes[1] != "l0" {
		t.Fatalf("close order = %v, want [l1 l0]", closes)
	}
	if err := ch.Insert(&baseEv{}, Up); err == nil {
		t.Fatal("Insert after Close succeeded")
	}
}

func TestChannelCloseWhenBottomConsumes(t *testing.T) {
	// A bottom layer that consumes ChannelClose must still complete
	// teardown.
	bottom := layerFunc{name: "b", fn: func(ch *Channel, ev Event) {
		// consume everything
	}}
	q, err := NewQoS("q", bottom)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ch.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung when bottom layer consumed ChannelClose")
	}
}

func TestDeliverAfterFiresOnSchedulerGoroutine(t *testing.T) {
	fired := make(chan Event, 1)
	sess := SessionFunc(func(ch *Channel, ev Event) {
		if _, ok := ev.(*baseEv); !ok {
			return // ignore lifecycle events
		}
		select {
		case fired <- ev:
		default:
		}
	})
	l := layerFunc{name: "t", fn: nil}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched, WithSharedSession("t", sess))
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	ch.DeliverAfter(5*time.Millisecond, sess, &baseEv{})
	select {
	case ev := <-fired:
		if _, ok := ev.(*baseEv); !ok {
			t.Fatalf("timer delivered %T", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestSchedulerEveryCancel(t *testing.T) {
	sched := NewScheduler()
	sched.Start()
	defer sched.Close()
	var mu sync.Mutex
	n := 0
	cancel := sched.Every(2*time.Millisecond, func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	time.Sleep(20 * time.Millisecond)
	cancel()
	mu.Lock()
	after := n
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n > after+1 { // allow one in-flight tick
		t.Fatalf("ticks after cancel: %d -> %d", after, n)
	}
	if after == 0 {
		t.Fatal("periodic timer never fired")
	}
}

func TestEventKindRegistry(t *testing.T) {
	r := NewEventKindRegistry()
	r.Register("test.base", func() Sendable { return &baseEv{} })
	// Idempotent re-registration.
	r.Register("test.base", func() Sendable { return &baseEv{} })

	ev, err := r.New("test.base")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ev.(*baseEv); !ok {
		t.Fatalf("New returned %T", ev)
	}
	kind, err := r.KindOf(&baseEv{})
	if err != nil || kind != "test.base" {
		t.Fatalf("KindOf = %q, %v", kind, err)
	}
	if _, err := r.New("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := r.KindOf(&derivedEv{}); err == nil {
		t.Fatal("unregistered type accepted")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.Register("test.base", func() Sendable { return &derivedEv{} })
}
