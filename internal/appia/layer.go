package appia

// LayerSpec declares the event interface of a layer, mirroring Appia's
// provide/require/accept declarations. The kernel uses Accepts to compute,
// for each concrete event type, the exact set of sessions it must visit,
// and Provides/Requires to validate a QoS at composition time.
type LayerSpec struct {
	// Provides lists event types this layer may create.
	Provides []EventType
	// Requires lists event types that must be provided by some other layer
	// in any QoS this layer participates in.
	Requires []EventType
	// Accepts lists event types this layer's sessions want to handle.
	// Matching follows EventType.Matches (exact, interface, or embedding).
	Accepts []EventType
}

// Layer is a protocol factory: a stateless description of one micro
// protocol. The per-channel state lives in the Session values it creates.
type Layer interface {
	// Name returns the registry name of the protocol (for example
	// "group.nakfifo"). It is used in XML configurations and diagnostics.
	Name() string
	// Spec declares the event types the layer provides, requires and
	// accepts.
	Spec() LayerSpec
	// NewSession creates a fresh session holding the runtime state of the
	// protocol for one channel (or a set of coordinated channels, when the
	// session is shared).
	NewSession() Session
}

// Session holds the runtime state of one protocol instance. Handle is
// invoked on the stack's scheduler goroutine for every event routed to the
// session; implementations therefore need no internal locking as long as
// all their state is touched only from Handle.
//
// A session decides the fate of every event it receives: it may forward it
// (ch.Forward), consume it (do nothing), redirect it, or create new events
// (ch.SendFrom / ch.Forward on fresh events).
type Session interface {
	Handle(ch *Channel, ev Event)
}

// SessionFunc adapts a function to the Session interface; useful in tests.
type SessionFunc func(ch *Channel, ev Event)

// Handle implements Session.
func (f SessionFunc) Handle(ch *Channel, ev Event) { f(ch, ev) }

// BaseLayer provides Name and Spec storage for simple layer declarations.
// Protocol packages typically define their layer as
//
//	type myLayer struct{ appia.BaseLayer; cfg Config }
//
// and fill in BaseLayer in the constructor.
type BaseLayer struct {
	LayerName string
	LayerSpec LayerSpec
}

// Name implements Layer.
func (b *BaseLayer) Name() string { return b.LayerName }

// Spec implements Layer.
func (b *BaseLayer) Spec() LayerSpec { return b.LayerSpec }
