package appia

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// Channel errors.
var (
	ErrChannelClosed  = errors.New("appia: channel closed")
	ErrUnknownSession = errors.New("appia: session does not belong to channel")
)

// ChannelState tracks the lifecycle of a channel.
type ChannelState int

// Channel lifecycle states.
const (
	ChannelNew ChannelState = iota + 1
	ChannelStarted
	ChannelClosed
)

// DeliverFunc receives events that complete the upward traversal of the
// stack without being consumed; it is the application's upcall.
type DeliverFunc func(ev Event)

// Channel is an instantiation of a QoS: an ordered stack of sessions
// (bottom = index 0) plus the routing tables that steer each event type to
// exactly the sessions that accept it.
//
// All session code runs on the channel's scheduler goroutine. Insert (and
// the lifecycle methods) may be called from any goroutine; Forward,
// SendFrom, DeliverAfter and similar must only be called from session code.
type Channel struct {
	name     string
	qos      *QoS
	sched    *Scheduler
	sessions []Session
	byName   map[string]int // layer name -> index of first occurrence
	deliver  DeliverFunc

	// routes caches, per concrete event type, the ascending list of session
	// indices that accept it. lastType/lastRoute short-circuit the map for
	// runs of same-typed events, the common case on the data path. Only
	// touched on the scheduler goroutine.
	routes    map[reflect.Type][]int
	lastType  reflect.Type
	lastRoute []int

	mu     sync.Mutex   // guards state transitions and ready/closed closing
	state  atomic.Int32 // ChannelState; read lock-free on the Insert hot path
	ready  chan struct{}
	closed chan struct{}
}

// ChannelOption customises channel construction.
type ChannelOption func(*channelConfig)

type channelConfig struct {
	sessions map[string]Session
	deliver  DeliverFunc
}

// WithSharedSession installs an existing session for the (first) layer with
// the given name instead of creating a fresh one. This is how two channels
// share protocol state, for example a common transport endpoint or a causal
// order scope spanning several channels.
func WithSharedSession(layerName string, s Session) ChannelOption {
	return func(c *channelConfig) { c.sessions[layerName] = s }
}

// WithDeliver sets the application upcall for events that complete the
// upward traversal.
func WithDeliver(fn DeliverFunc) ChannelOption {
	return func(c *channelConfig) { c.deliver = fn }
}

// CreateChannel instantiates the QoS on the given scheduler. Sessions are
// created bottom-up with Layer.NewSession unless overridden by
// WithSharedSession.
func (q *QoS) CreateChannel(name string, sched *Scheduler, opts ...ChannelOption) *Channel {
	cfg := channelConfig{sessions: make(map[string]Session)}
	for _, o := range opts {
		o(&cfg)
	}
	ch := &Channel{
		name:    name,
		qos:     q,
		sched:   sched,
		byName:  make(map[string]int, len(q.layers)),
		deliver: cfg.deliver,
		routes:  make(map[reflect.Type][]int),
		ready:   make(chan struct{}),
		closed:  make(chan struct{}),
	}
	ch.state.Store(int32(ChannelNew))
	ch.sessions = make([]Session, len(q.layers))
	for i, l := range q.layers {
		if _, dup := ch.byName[l.Name()]; !dup {
			ch.byName[l.Name()] = i
		}
		if s, ok := cfg.sessions[l.Name()]; ok {
			ch.sessions[i] = s
			continue
		}
		ch.sessions[i] = l.NewSession()
	}
	return ch
}

// Name returns the channel name.
func (ch *Channel) Name() string { return ch.name }

// QoS returns the QoS the channel instantiates.
func (ch *Channel) QoS() *QoS { return ch.qos }

// Scheduler returns the scheduler executing this channel.
func (ch *Channel) Scheduler() *Scheduler { return ch.sched }

// State returns the current lifecycle state.
func (ch *Channel) State() ChannelState {
	return ChannelState(ch.state.Load())
}

// SessionFor returns the session instantiated for the (first) layer with
// the given name, or nil. Callers must respect the threading rule: session
// state may only be touched from scheduler-run code unless the session
// documents otherwise.
func (ch *Channel) SessionFor(layerName string) Session {
	i, ok := ch.byName[layerName]
	if !ok {
		return nil
	}
	return ch.sessions[i]
}

// Start injects ChannelInit, which visits every session bottom-up. It is
// idempotent.
func (ch *Channel) Start() error {
	ch.mu.Lock()
	if ChannelState(ch.state.Load()) != ChannelNew {
		ch.mu.Unlock()
		return nil
	}
	ch.state.Store(int32(ChannelStarted))
	ch.mu.Unlock()
	ch.sched.Start()
	init := &ChannelInit{}
	return ch.Insert(init, Up)
}

// Close injects ChannelClose, which visits every session top-down, then
// marks the channel closed. It returns once the close event has been fully
// processed. Calling Close from session code would deadlock; use
// CloseAsync there. The wait goes through the scheduler's clock, so on a
// virtual clock the caller releases the run token while the teardown
// cascade executes.
func (ch *Channel) Close() error {
	if err := ch.CloseAsync(); err != nil {
		return err
	}
	ch.sched.Clock().Wait(ch.closed)
	return nil
}

// CloseAsync starts channel teardown without waiting for it to finish.
func (ch *Channel) CloseAsync() error {
	ch.mu.Lock()
	if ChannelState(ch.state.Load()) == ChannelClosed {
		ch.mu.Unlock()
		return nil
	}
	st := ChannelState(ch.state.Load())
	ch.state.Store(int32(ChannelClosed))
	ch.mu.Unlock()
	if st == ChannelNew { // never started: nothing to deliver
		close(ch.closed)
		return nil
	}
	ev := &ChannelClose{}
	b := ev.base()
	b.channel = ch
	b.dir = Down
	b.inited = true
	b.route = ch.fullRoute()
	b.cursor = len(b.route) - 1
	if err := ch.sched.post(task{ch: ch, ev: ev}); err != nil {
		close(ch.closed)
		return nil
	}
	// Sentinel task: runs after the close event has fully propagated
	// (teardown hops are re-queued ahead of it in FIFO order only if
	// sessions forward synchronously; to be robust we close from step()
	// when the route is exhausted instead).
	return nil
}

// Closed returns a channel that is closed once teardown completes.
func (ch *Channel) Closed() <-chan struct{} { return ch.closed }

// Ready returns a channel that is closed once ChannelInit has visited every
// session, i.e. all layers have acquired their external resources (network
// port bindings in particular). Sessions must forward lifecycle events for
// this to ever fire. Must not be waited on from the scheduler goroutine.
func (ch *Channel) Ready() <-chan struct{} { return ch.ready }

// WaitReady blocks until the channel is operational or the timeout elapses;
// it reports whether readiness was reached. The wait goes through the
// scheduler's clock (on a virtual clock the timeout is virtual time and the
// caller's run token is released meanwhile).
func (ch *Channel) WaitReady(timeout time.Duration) bool {
	return ch.sched.Clock().WaitTimeout(ch.ready, timeout)
}

// Insert routes an event through the whole stack from the outside: from
// below going Up (network ingress) or from above going Down (application
// egress). Safe to call from any goroutine.
func (ch *Channel) Insert(ev Event, dir Direction) error {
	if ch.State() == ChannelClosed {
		return ErrChannelClosed
	}
	b := ev.base()
	if b.inited {
		return fmt.Errorf("appia: event %T reinserted", ev)
	}
	b.channel = ch
	b.dir = dir
	b.inited = true
	b.route = nil // computed on the scheduler goroutine
	b.cursor = -1
	return ch.sched.post(task{ch: ch, ev: ev})
}

// SendFrom inserts a new event into the flow starting at the session
// adjacent to "from" in direction dir, exactly as if "from" had produced it
// while handling traffic. Must be called from session code (the scheduler
// goroutine); the event starts travelling immediately after the current
// task.
func (ch *Channel) SendFrom(from Session, ev Event, dir Direction) error {
	idx, err := ch.indexOf(from)
	if err != nil {
		return err
	}
	b := ev.base()
	b.channel = ch
	b.dir = dir
	b.inited = true
	b.route = ch.routeFor(ev)
	b.cursor = ch.startCursor(b.route, idx, dir)
	return ch.sched.post(task{ch: ch, ev: ev})
}

// Forward passes an event on to the next accepting session in its current
// direction. Must be called from session code, for the event currently
// being handled.
func (ch *Channel) Forward(ev Event) {
	b := ev.base()
	if b.channel != ch || !b.inited {
		panic(fmt.Sprintf("appia: Forward of foreign event %T on channel %q", ev, ch.name))
	}
	_ = ch.sched.post(task{ch: ch, ev: ev})
}

// Bounce reverses the event's direction and forwards it, so it revisits the
// sessions it already traversed, starting with the one just before the
// current session in the new direction.
func (ch *Channel) Bounce(ev Event) {
	b := ev.base()
	b.dir = b.dir.Invert()
	if b.dir == Down {
		b.cursor -= 2
	} else {
		b.cursor += 2
	}
	ch.Forward(ev)
}

// DeliverAfter delivers ev directly to session s after d, bypassing
// routing. It is the timer primitive protocol sessions use for
// retransmission deadlines, heartbeats and the like. The returned cancel
// function stops the timer.
func (ch *Channel) DeliverAfter(d time.Duration, s Session, ev Event) (cancel func()) {
	b := ev.base()
	b.channel = ch
	b.dir = Up
	b.inited = true
	return ch.sched.After(d, func() {
		if ch.State() == ChannelClosed {
			return
		}
		s.Handle(ch, ev)
	})
}

// DeliverEvery delivers fresh events produced by mk directly to session s
// every d until cancelled or the channel closes.
func (ch *Channel) DeliverEvery(d time.Duration, s Session, mk func() Event) (cancel func()) {
	return ch.sched.Every(d, func() {
		if ch.State() == ChannelClosed {
			return
		}
		ev := mk()
		b := ev.base()
		b.channel = ch
		b.dir = Up
		b.inited = true
		s.Handle(ch, ev)
	})
}

// indexOf locates a session in the stack.
func (ch *Channel) indexOf(s Session) (int, error) {
	for i, cand := range ch.sessions {
		if sameSession(cand, s) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %T on channel %q", ErrUnknownSession, s, ch.name)
}

// sameSession compares session identity without panicking on
// non-comparable dynamic types (such as SessionFunc).
func sameSession(a, b Session) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// fullRoute returns indices of every session.
func (ch *Channel) fullRoute() []int {
	r := make([]int, len(ch.sessions))
	for i := range r {
		r[i] = i
	}
	return r
}

// routeFor returns (computing and caching on first use) the ascending list
// of session indices whose layers accept the event's concrete type.
// Lifecycle events visit everyone.
func (ch *Channel) routeFor(ev Event) []int {
	t := reflect.TypeOf(ev)
	if t == ch.lastType {
		return ch.lastRoute
	}
	if r, ok := ch.routes[t]; ok {
		ch.lastType, ch.lastRoute = t, r
		return r
	}
	var r []int
	switch ev.(type) {
	case *ChannelInit, *ChannelClose, *Debug:
		r = ch.fullRoute()
	default:
		et := TypeOf(ev)
		for i, l := range ch.qos.layers {
			for _, acc := range l.Spec().Accepts {
				if acc.Matches(et) {
					r = append(r, i)
					break
				}
			}
		}
	}
	ch.routes[t] = r
	ch.lastType, ch.lastRoute = t, r
	return r
}

// startCursor computes the initial cursor for an event created by the
// session at stack index idx, travelling in dir: the nearest route position
// strictly beyond idx.
func (ch *Channel) startCursor(route []int, idx int, dir Direction) int {
	if dir == Up {
		for pos, si := range route {
			if si > idx {
				return pos
			}
		}
		return len(route) // off the top: app delivery
	}
	for pos := len(route) - 1; pos >= 0; pos-- {
		if route[pos] < idx {
			return pos
		}
	}
	return -1 // off the bottom: dropped
}

// step performs one routing hop: deliver the event to the session at its
// cursor and advance. Runs on the scheduler goroutine only.
func (ch *Channel) step(ev Event) {
	b := ev.base()
	if b.route == nil {
		// Externally inserted: initialise the route now, on the scheduler
		// goroutine, so the cache needs no locking.
		b.route = ch.routeFor(ev)
		if b.dir == Up {
			b.cursor = 0
		} else {
			b.cursor = len(b.route) - 1
		}
	}

	// Exhausted route?
	if b.dir == Up && b.cursor >= len(b.route) {
		ch.deliverUp(ev)
		return
	}
	if b.dir == Down && b.cursor < 0 {
		ch.finishDown(ev)
		return
	}

	sess := ch.sessions[b.route[b.cursor]]
	if b.dir == Up {
		b.cursor++
	} else {
		b.cursor--
	}
	sess.Handle(ch, ev)

	// Route end bookkeeping for events the last session forwarded: Forward
	// re-posts the event, so the checks above fire on the next step. But a
	// ChannelClose that was consumed by the last session would leave the
	// channel open; handle completion when the cursor has just run off.
	if cc, ok := ev.(*ChannelClose); ok {
		if cc.base().cursor < 0 {
			ch.markClosed()
		}
	}
}

// deliverUp hands an event that ran off the top of the stack to the
// application.
func (ch *Channel) deliverUp(ev Event) {
	if _, ok := ev.(*ChannelInit); ok {
		// Init has visited every session: the channel is operational.
		ch.mu.Lock()
		select {
		case <-ch.ready:
		default:
			close(ch.ready)
		}
		ch.mu.Unlock()
		return
	}
	if ch.deliver != nil {
		ch.deliver(ev)
	}
}

// finishDown handles an event that ran off the bottom of the stack. Data
// events are simply dropped (the bottom layer should have consumed them);
// a completed ChannelClose finishes teardown.
func (ch *Channel) finishDown(ev Event) {
	if _, ok := ev.(*ChannelClose); ok {
		ch.markClosed()
	}
}

// markClosed completes teardown exactly once.
func (ch *Channel) markClosed() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	select {
	case <-ch.closed:
	default:
		close(ch.closed)
	}
}
