package appia

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMessageZeroValue(t *testing.T) {
	var m Message
	if m.Len() != 0 {
		t.Fatalf("zero message Len = %d, want 0", m.Len())
	}
	m.PushUint32(7)
	v, err := m.PopUint32()
	if err != nil || v != 7 {
		t.Fatalf("PopUint32 = %d, %v; want 7, nil", v, err)
	}
}

func TestMessagePushPopOrder(t *testing.T) {
	m := NewMessage([]byte("payload"))
	m.PushString("inner")
	m.PushUint32(42)
	m.PushString("outer")

	s, err := m.PopString()
	if err != nil || s != "outer" {
		t.Fatalf("pop outer = %q, %v", s, err)
	}
	u, err := m.PopUint32()
	if err != nil || u != 42 {
		t.Fatalf("pop uint = %d, %v", u, err)
	}
	s, err = m.PopString()
	if err != nil || s != "inner" {
		t.Fatalf("pop inner = %q, %v", s, err)
	}
	if got := string(m.Bytes()); got != "payload" {
		t.Fatalf("payload = %q, want %q", got, "payload")
	}
}

func TestMessageUnderflow(t *testing.T) {
	var m Message
	if _, err := m.PopUint32(); !errors.Is(err, ErrMsgUnderflow) {
		t.Fatalf("PopUint32 on empty = %v, want ErrMsgUnderflow", err)
	}
	if _, err := m.PopBytes(); err == nil {
		t.Fatal("PopBytes on empty succeeded")
	}
}

func TestMessageCorruptLength(t *testing.T) {
	var m Message
	m.PushUvarint(1000) // claims a 1000-byte segment that is not there
	if _, err := m.PopBytes(); !errors.Is(err, ErrMsgCorrupt) {
		t.Fatalf("PopBytes = %v, want ErrMsgCorrupt", err)
	}
}

func TestMessageClone(t *testing.T) {
	m := NewMessage([]byte("base"))
	m.PushString("hdr")
	c := m.Clone()
	// Mutating the clone must not disturb the original.
	if _, err := c.PopString(); err != nil {
		t.Fatal(err)
	}
	c.PushString("other")
	s, err := m.PopString()
	if err != nil || s != "hdr" {
		t.Fatalf("original header after clone mutation = %q, %v", s, err)
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	m := NewMessage([]byte{1, 2, 3})
	m.PushUint64(1 << 40)
	m.PushBool(true)
	wire := append([]byte(nil), m.Bytes()...)

	r := FromWire(wire)
	b, err := r.PopBool()
	if err != nil || !b {
		t.Fatalf("bool = %v, %v", b, err)
	}
	u, err := r.PopUint64()
	if err != nil || u != 1<<40 {
		t.Fatalf("uint64 = %d, %v", u, err)
	}
	if !bytes.Equal(r.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("payload = %v", r.Bytes())
	}
}

func TestMessageUvarintSlice(t *testing.T) {
	var m Message
	in := []uint64{0, 1, 127, 128, 1 << 62}
	m.PushUvarintSlice(in)
	out, err := m.PopUvarintSlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestMessageUvarintSliceCorrupt(t *testing.T) {
	var m Message
	m.PushUvarint(1 << 30) // absurd count
	if _, err := m.PopUvarintSlice(); !errors.Is(err, ErrMsgCorrupt) {
		t.Fatalf("err = %v, want ErrMsgCorrupt", err)
	}
}

// Property: any sequence of pushes pops back in reverse order with the same
// values, leaving the payload intact.
func TestMessagePushPopProperty(t *testing.T) {
	f := func(payload []byte, strs []string, nums []uint64, signed []int64) bool {
		m := NewMessage(payload)
		for _, s := range strs {
			m.PushString(s)
		}
		for _, n := range nums {
			m.PushUvarint(n)
		}
		for _, v := range signed {
			m.PushVarint(v)
		}
		for i := len(signed) - 1; i >= 0; i-- {
			v, err := m.PopVarint()
			if err != nil || v != signed[i] {
				return false
			}
		}
		for i := len(nums) - 1; i >= 0; i-- {
			n, err := m.PopUvarint()
			if err != nil || n != nums[i] {
				return false
			}
		}
		for i := len(strs) - 1; i >= 0; i-- {
			s, err := m.PopString()
			if err != nil || s != strs[i] {
				return false
			}
		}
		return bytes.Equal(m.Bytes(), payload) || (len(payload) == 0 && m.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the wire form of a message survives a marshal/unmarshal cycle.
func TestMessageWireProperty(t *testing.T) {
	f := func(payload []byte, hdrs [][]byte) bool {
		m := NewMessage(payload)
		for _, h := range hdrs {
			m.PushBytes(h)
		}
		r := FromWire(append([]byte(nil), m.Bytes()...))
		for i := len(hdrs) - 1; i >= 0; i-- {
			h, err := r.PopBytes()
			if err != nil || !bytes.Equal(h, hdrs[i]) {
				return false
			}
		}
		return bytes.Equal(r.Bytes(), payload) || (len(payload) == 0 && r.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMessagePushPop(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewMessage(payload)
		m.PushUint32(uint32(i))
		m.PushUvarint(uint64(i))
		m.PushString("hdr")
		if _, err := m.PopString(); err != nil {
			b.Fatal(err)
		}
		if _, err := m.PopUvarint(); err != nil {
			b.Fatal(err)
		}
		if _, err := m.PopUint32(); err != nil {
			b.Fatal(err)
		}
		m.Release() // recycle so the pooled steady state is measured
	}
}
