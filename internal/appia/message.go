package appia

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is a byte buffer with a header stack, in the style of the Appia
// (and x-kernel) message abstraction. Layers push headers on the way down
// and pop them, in reverse order, on the way up. Pushes prepend, so the
// wire layout is exactly headers-outermost-first followed by the payload.
//
// Storage is a reference-counted buffer shared copy-on-write between a
// message and its clones: Clone is O(1), pops only advance the clone's own
// read offset, and the first push on a shared buffer copies it out. Retired
// messages may call Release to recycle both the struct and the buffer
// through internal sync.Pools; Release is optional (the GC reclaims
// unreleased messages) but keeps the fan-out hot path allocation-free.
//
// The zero value is an empty message ready for use.
type Message struct {
	sb  *msgBuf // backing store; nil means the message is empty
	off int     // start of the valid region in sb.data; pushes decrease off
}

// Message errors.
var (
	ErrMsgUnderflow = errors.New("appia: message pop underflows")
	ErrMsgCorrupt   = errors.New("appia: message header corrupt")
)

// headroom is the initial front slack reserved for header pushes.
const headroom = 64

// Pooled-buffer size classes: fresh buffers start at minBufCap and buffers
// larger than maxPooledCap are left to the GC rather than pinned in the pool.
const (
	minBufCap    = 2048
	maxPooledCap = 64 << 10
)

// msgBuf is a reference-counted backing store. refs counts the messages
// sharing data; the valid region of the last owner ends at len(data).
type msgBuf struct {
	data []byte
	refs atomic.Int32
}

var (
	msgPool = sync.Pool{New: func() any { return new(Message) }}
	bufPool = sync.Pool{New: func() any {
		return &msgBuf{data: make([]byte, 0, minBufCap)}
	}}
)

// getBuf returns an exclusively-owned buffer with len(data) == n.
func getBuf(n int) *msgBuf {
	sb := bufPool.Get().(*msgBuf)
	sb.refs.Store(1)
	if cap(sb.data) >= n {
		sb.data = sb.data[:n]
		return sb
	}
	c := minBufCap
	for c < n {
		c <<= 1
	}
	sb.data = make([]byte, n, c)
	return sb
}

// unref drops one reference and recycles the buffer when the last goes.
func unref(sb *msgBuf) {
	if sb.refs.Add(-1) != 0 {
		return
	}
	if cap(sb.data) > maxPooledCap {
		return
	}
	sb.data = sb.data[:0]
	bufPool.Put(sb)
}

// NewMessage returns a message whose payload is a copy of p.
func NewMessage(p []byte) *Message {
	m := msgPool.Get().(*Message)
	m.sb, m.off = nil, 0
	if len(p) > 0 {
		m.sb = getBuf(headroom + len(p))
		m.off = headroom
		copy(m.sb.data[m.off:], p)
	}
	return m
}

// FromWire builds a message directly from bytes received from the network.
// The slice is copied.
func FromWire(p []byte) *Message {
	return NewMessage(p)
}

// Len returns the current total length (headers plus payload).
func (m *Message) Len() int {
	if m.sb == nil {
		return 0
	}
	return len(m.sb.data) - m.off
}

// Bytes returns the wire representation of the message. The returned slice
// aliases the internal buffer; callers that retain it across further pushes
// (on this message or, after Clone, on the last sibling sharing the buffer)
// must copy it.
func (m *Message) Bytes() []byte {
	if m.sb == nil {
		return nil
	}
	return m.sb.data[m.off:]
}

// Clone returns a logically independent copy of the message in O(1): the
// backing buffer is shared and its reference count bumped. Later pops on
// either message are private, and the first push on either side copies the
// buffer out first, so clones never observe each other's mutations. Layers
// that fan one event out into several (for example, a point-to-point
// fan-out of a multicast) clone the message for each copy.
func (m *Message) Clone() *Message {
	c := msgPool.Get().(*Message)
	c.sb, c.off = m.sb, m.off
	if m.sb != nil {
		m.sb.refs.Add(1)
	}
	return c
}

// Release retires the message, recycling its struct — and, once the last
// clone sharing it is released, its buffer — through internal pools. It is
// optional, but hot paths that call it run allocation-free. The message
// must not be used after Release, and — unlike letting the GC reclaim it —
// any slice previously returned by Bytes, PopBytes or pop aliases a buffer
// that may now be handed to an unrelated message: callers must not Release
// while such aliases are still live.
func (m *Message) Release() {
	if m == nil {
		return
	}
	if sb := m.sb; sb != nil {
		m.sb = nil
		unref(sb)
	}
	m.off = 0
	msgPool.Put(m)
}

// reserve guarantees the message exclusively owns its buffer with at least
// n bytes of front slack, copying out of a shared buffer if needed.
func (m *Message) reserve(n int) {
	if sb := m.sb; sb != nil && m.off >= n && sb.refs.Load() == 1 {
		return
	}
	front := n
	if front < headroom {
		front = headroom
	}
	old := m.sb
	ln := m.Len()
	nsb := getBuf(front + ln)
	if old != nil {
		copy(nsb.data[front:], old.data[m.off:])
		unref(old)
	}
	m.sb = nsb
	m.off = front
}

// push prepends raw bytes.
func (m *Message) push(p []byte) {
	m.reserve(len(p))
	m.off -= len(p)
	copy(m.sb.data[m.off:], p)
}

// pop removes and returns the first n raw bytes.
func (m *Message) pop(n int) ([]byte, error) {
	if m.Len() < n {
		return nil, ErrMsgUnderflow
	}
	if n == 0 {
		return nil, nil
	}
	p := m.sb.data[m.off : m.off+n]
	m.off += n
	return p, nil
}

// PushBytes prepends a length-prefixed byte segment.
func (m *Message) PushBytes(p []byte) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p)))
	m.push(p)
	m.push(hdr[:n])
}

// PopBytes removes and returns the topmost length-prefixed byte segment.
// The returned slice aliases the internal buffer.
func (m *Message) PopBytes() ([]byte, error) {
	ln, err := m.PopUvarint()
	if err != nil {
		return nil, err
	}
	if ln > uint64(m.Len()) {
		return nil, fmt.Errorf("%w: segment length %d exceeds %d remaining", ErrMsgCorrupt, ln, m.Len())
	}
	return m.pop(int(ln))
}

// PushString prepends a string header.
func (m *Message) PushString(s string) { m.PushBytes([]byte(s)) }

// PopString removes and returns the topmost string header.
func (m *Message) PopString() (string, error) {
	b, err := m.PopBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// PushUvarint prepends an unsigned varint header.
func (m *Message) PushUvarint(v uint64) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], v)
	m.push(hdr[:n])
}

// PopUvarint removes and returns the topmost unsigned varint header.
func (m *Message) PopUvarint() (uint64, error) {
	v, n := binary.Uvarint(m.Bytes())
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrMsgCorrupt)
	}
	m.off += n
	return v, nil
}

// PushVarint prepends a signed varint header.
func (m *Message) PushVarint(v int64) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutVarint(hdr[:], v)
	m.push(hdr[:n])
}

// PopVarint removes and returns the topmost signed varint header.
func (m *Message) PopVarint() (int64, error) {
	v, n := binary.Varint(m.Bytes())
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrMsgCorrupt)
	}
	m.off += n
	return v, nil
}

// PushUint32 prepends a fixed-width 32-bit header.
func (m *Message) PushUint32(v uint32) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], v)
	m.push(hdr[:])
}

// PopUint32 removes and returns the topmost fixed-width 32-bit header.
func (m *Message) PopUint32() (uint32, error) {
	p, err := m.pop(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(p), nil
}

// PushUint64 prepends a fixed-width 64-bit header.
func (m *Message) PushUint64(v uint64) {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], v)
	m.push(hdr[:])
}

// PopUint64 removes and returns the topmost fixed-width 64-bit header.
func (m *Message) PopUint64() (uint64, error) {
	p, err := m.pop(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(p), nil
}

// PushBool prepends a boolean header.
func (m *Message) PushBool(v bool) {
	if v {
		m.push([]byte{1})
	} else {
		m.push([]byte{0})
	}
}

// PopBool removes and returns the topmost boolean header.
func (m *Message) PopBool() (bool, error) {
	p, err := m.pop(1)
	if err != nil {
		return false, err
	}
	return p[0] != 0, nil
}

// PushUvarintSlice prepends a counted slice of uvarints (count outermost).
func (m *Message) PushUvarintSlice(vs []uint64) {
	for i := len(vs) - 1; i >= 0; i-- {
		m.PushUvarint(vs[i])
	}
	m.PushUvarint(uint64(len(vs)))
}

// PopUvarintSlice removes and returns a counted slice of uvarints.
func (m *Message) PopUvarintSlice() ([]uint64, error) {
	n, err := m.PopUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(m.Len()) { // each uvarint takes at least one byte
		return nil, fmt.Errorf("%w: slice count %d exceeds remaining bytes", ErrMsgCorrupt, n)
	}
	vs := make([]uint64, n)
	for i := range vs {
		if vs[i], err = m.PopUvarint(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
