package appia

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message is a byte buffer with a header stack, in the style of the Appia
// (and x-kernel) message abstraction. Layers push headers on the way down
// and pop them, in reverse order, on the way up. Pushes prepend, so the
// wire layout is exactly headers-outermost-first followed by the payload.
//
// The zero value is an empty message ready for use.
type Message struct {
	buf []byte // storage; valid region is buf[off:]
	off int    // start of valid region; pushes decrease off
}

// Message errors.
var (
	ErrMsgUnderflow = errors.New("appia: message pop underflows")
	ErrMsgCorrupt   = errors.New("appia: message header corrupt")
)

// headroom is the initial front slack reserved for header pushes.
const headroom = 64

// NewMessage returns a message whose payload is a copy of p.
func NewMessage(p []byte) *Message {
	m := &Message{}
	if len(p) > 0 {
		m.buf = make([]byte, headroom+len(p))
		m.off = headroom
		copy(m.buf[m.off:], p)
	}
	return m
}

// FromWire builds a message directly from bytes received from the network.
// The slice is copied.
func FromWire(p []byte) *Message {
	return NewMessage(p)
}

// Len returns the current total length (headers plus payload).
func (m *Message) Len() int { return len(m.buf) - m.off }

// Bytes returns the wire representation of the message. The returned slice
// aliases the internal buffer; callers that retain it across further pushes
// must copy it.
func (m *Message) Bytes() []byte { return m.buf[m.off:] }

// Clone returns a deep copy of the message. Layers that fan one event out
// into several (for example, a point-to-point fan-out of a multicast) must
// clone the message for each copy so that later pops do not interfere.
func (m *Message) Clone() *Message {
	c := &Message{
		buf: make([]byte, len(m.buf)-m.off+headroom),
		off: headroom,
	}
	copy(c.buf[c.off:], m.buf[m.off:])
	return c
}

// grow ensures at least n bytes of front slack.
func (m *Message) grow(n int) {
	if m.off >= n {
		return
	}
	extra := n
	if extra < headroom {
		extra = headroom
	}
	nb := make([]byte, extra+len(m.buf))
	copy(nb[extra:], m.buf)
	m.buf = nb
	m.off += extra
}

// push prepends raw bytes.
func (m *Message) push(p []byte) {
	m.grow(len(p))
	m.off -= len(p)
	copy(m.buf[m.off:], p)
}

// pop removes and returns the first n raw bytes.
func (m *Message) pop(n int) ([]byte, error) {
	if m.Len() < n {
		return nil, ErrMsgUnderflow
	}
	p := m.buf[m.off : m.off+n]
	m.off += n
	return p, nil
}

// PushBytes prepends a length-prefixed byte segment.
func (m *Message) PushBytes(p []byte) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p)))
	m.push(p)
	m.push(hdr[:n])
}

// PopBytes removes and returns the topmost length-prefixed byte segment.
// The returned slice aliases the internal buffer.
func (m *Message) PopBytes() ([]byte, error) {
	ln, err := m.PopUvarint()
	if err != nil {
		return nil, err
	}
	if ln > uint64(m.Len()) {
		return nil, fmt.Errorf("%w: segment length %d exceeds %d remaining", ErrMsgCorrupt, ln, m.Len())
	}
	return m.pop(int(ln))
}

// PushString prepends a string header.
func (m *Message) PushString(s string) { m.PushBytes([]byte(s)) }

// PopString removes and returns the topmost string header.
func (m *Message) PopString() (string, error) {
	b, err := m.PopBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// PushUvarint prepends an unsigned varint header.
func (m *Message) PushUvarint(v uint64) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], v)
	m.push(hdr[:n])
}

// PopUvarint removes and returns the topmost unsigned varint header.
func (m *Message) PopUvarint() (uint64, error) {
	v, n := binary.Uvarint(m.buf[m.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrMsgCorrupt)
	}
	m.off += n
	return v, nil
}

// PushVarint prepends a signed varint header.
func (m *Message) PushVarint(v int64) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutVarint(hdr[:], v)
	m.push(hdr[:n])
}

// PopVarint removes and returns the topmost signed varint header.
func (m *Message) PopVarint() (int64, error) {
	v, n := binary.Varint(m.buf[m.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrMsgCorrupt)
	}
	m.off += n
	return v, nil
}

// PushUint32 prepends a fixed-width 32-bit header.
func (m *Message) PushUint32(v uint32) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], v)
	m.push(hdr[:])
}

// PopUint32 removes and returns the topmost fixed-width 32-bit header.
func (m *Message) PopUint32() (uint32, error) {
	p, err := m.pop(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(p), nil
}

// PushUint64 prepends a fixed-width 64-bit header.
func (m *Message) PushUint64(v uint64) {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], v)
	m.push(hdr[:])
}

// PopUint64 removes and returns the topmost fixed-width 64-bit header.
func (m *Message) PopUint64() (uint64, error) {
	p, err := m.pop(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(p), nil
}

// PushBool prepends a boolean header.
func (m *Message) PushBool(v bool) {
	if v {
		m.push([]byte{1})
	} else {
		m.push([]byte{0})
	}
}

// PopBool removes and returns the topmost boolean header.
func (m *Message) PopBool() (bool, error) {
	p, err := m.pop(1)
	if err != nil {
		return false, err
	}
	return p[0] != 0, nil
}

// PushUvarintSlice prepends a counted slice of uvarints (count outermost).
func (m *Message) PushUvarintSlice(vs []uint64) {
	for i := len(vs) - 1; i >= 0; i-- {
		m.PushUvarint(vs[i])
	}
	m.PushUvarint(uint64(len(vs)))
}

// PopUvarintSlice removes and returns a counted slice of uvarints.
func (m *Message) PopUvarintSlice() ([]uint64, error) {
	n, err := m.PopUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(m.Len()) { // each uvarint takes at least one byte
		return nil, fmt.Errorf("%w: slice count %d exceeds remaining bytes", ErrMsgCorrupt, n)
	}
	vs := make([]uint64, n)
	for i := range vs {
		if vs[i], err = m.PopUvarint(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
