package appia

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morpheus/internal/clock"
)

// The pooled-mode conformance suite: every behavioral contract the
// dedicated scheduler pins — exactly-once per-producer FIFO processing,
// mailbox-bounds hysteresis, Flush, the close race, timer cancellation —
// must hold unchanged when the scheduler executes on a shared Pool, plus
// the pool-only contracts (stealing, per-group stats, virtual-time trace
// identity across worker counts).

// newTestPool builds a wall-clock pool torn down with the test.
func newTestPool(t testing.TB, workers int) *Pool {
	t.Helper()
	p := NewPool(workers, nil)
	t.Cleanup(p.Close)
	return p
}

// TestPooledConcurrentInsertStress is TestSchedulerConcurrentInsertStress
// on a pooled scheduler: many producers, exactly-once, per-producer order.
func TestPooledConcurrentInsertStress(t *testing.T) {
	const producers = 8
	const perProducer = 500

	type stressEv struct {
		EventBase
		producer int
		seq      int
	}
	var mu sync.Mutex
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var total atomic.Int64

	l := layerFunc{name: "sink", accepts: []EventType{T[*stressEv]()}, fn: func(ch *Channel, ev Event) {
		e, ok := ev.(*stressEv)
		if !ok {
			ch.Forward(ev)
			return
		}
		mu.Lock()
		if e.seq != lastSeen[e.producer]+1 {
			t.Errorf("producer %d: seq %d after %d", e.producer, e.seq, lastSeen[e.producer])
		}
		lastSeen[e.producer] = e.seq
		mu.Unlock()
		total.Add(1)
	}}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	pool := newTestPool(t, 4)
	sched := pool.NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := ch.Insert(&stressEv{producer: p, seq: i}, Up); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sched.Flush()
	if got := total.Load(); got != producers*perProducer {
		t.Fatalf("processed %d events, want %d", got, producers*perProducer)
	}
	if st := pool.Stats(); st.Enqueues == 0 || st.Batches == 0 {
		t.Fatalf("pool never dispatched: %+v", st)
	}
}

// TestPooledMailboxBoundsHysteresis pins SetMailboxBounds/AdmitExternal on
// a pooled scheduler: the gate arms at the high watermark, holds while the
// drain is above low, and reopens (channel closed, then nil) after a drain.
func TestPooledMailboxBoundsHysteresis(t *testing.T) {
	pool := newTestPool(t, 2)
	sched := pool.NewScheduler()
	defer sched.Close()
	sched.SetMailboxBounds(8, 2)

	block := make(chan struct{})
	running := make(chan struct{})
	if err := sched.Do(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	if gate := sched.AdmitExternal(); gate != nil {
		t.Fatal("gate armed below the high watermark")
	}
	for i := 0; i < 8; i++ {
		if err := sched.Do(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	gate := sched.AdmitExternal()
	if gate == nil {
		t.Fatal("gate not armed at the high watermark")
	}
	select {
	case <-gate:
		t.Fatal("gate released while the mailbox is saturated")
	default:
	}
	close(block)
	select {
	case <-gate:
	case <-time.After(5 * time.Second):
		t.Fatal("gate never released after the drain")
	}
	sched.Flush()
	if gate := sched.AdmitExternal(); gate != nil {
		t.Fatal("gate still armed after a full drain")
	}
}

// TestPooledFlushAndClose pins Flush ordering and the Close contract
// (drains queued work, rejects later posts, is idempotent and safe to race
// with producers) in pooled mode.
func TestPooledFlushAndClose(t *testing.T) {
	pool := newTestPool(t, 2)
	sched := pool.NewScheduler()

	var order []int
	var mu sync.Mutex
	for i := 0; i < 100; i++ {
		i := i
		if err := sched.Do(func() { mu.Lock(); order = append(order, i); mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	sched.Flush()
	mu.Lock()
	if len(order) != 100 || order[0] != 0 || order[99] != 99 {
		t.Fatalf("flush did not wait for all posts: %d done", len(order))
	}
	mu.Unlock()

	var done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := sched.Do(func() { done.Add(1) }); err != nil {
					return // closed mid-race: fine
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	sched.Close()
	close(stop)
	wg.Wait()
	n := done.Load()
	if err := sched.Do(func() {}); err != ErrSchedulerClosed {
		t.Fatalf("post after Close: %v", err)
	}
	sched.Close() // idempotent
	if done.Load() != n {
		t.Fatal("work ran after Close returned")
	}
}

// TestPooledCloseDetachesQueuedScheduler exercises the detach path: with a
// single worker wedged on another scheduler, Close of a queued-but-unowned
// scheduler must drain it inline rather than wait for a worker.
func TestPooledCloseDetachesQueuedScheduler(t *testing.T) {
	pool := newTestPool(t, 1)
	hog := pool.NewScheduler()
	victim := pool.NewScheduler()
	defer hog.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	if err := hog.Do(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running // the only worker is now wedged on hog

	var ran atomic.Bool
	if err := victim.Do(func() { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { victim.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a wedged pool")
	}
	if !ran.Load() {
		t.Fatal("queued work was dropped by Close")
	}
	close(block)
}

// TestPooledTimerStormUnderClose is TestTimerStormUnderClose, pooled.
func TestPooledTimerStormUnderClose(t *testing.T) {
	pool := newTestPool(t, 2)
	sched := pool.NewScheduler()
	var fired atomic.Int64
	for i := 0; i < 200; i++ {
		d := time.Duration(i%10+1) * time.Millisecond
		sched.After(d, func() { fired.Add(1) })
	}
	time.Sleep(5 * time.Millisecond)
	sched.Close()
	n := fired.Load()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != n {
		t.Fatal("timers fired after Close")
	}
}

// TestPoolStealCounters wedges one worker and proves the other steals the
// wedged worker's backlog: the work completes while the victim worker is
// still blocked, and the pool's steal counters record the migration.
func TestPoolStealCounters(t *testing.T) {
	pool := newTestPool(t, 2)
	// Round-robin affinity: even scheduler indices land on worker 0.
	var scheds []*Scheduler
	for i := 0; i < 8; i++ {
		s := pool.NewScheduler()
		defer s.Close()
		scheds = append(scheds, s)
	}
	block := make(chan struct{})
	running := make(chan struct{})
	if err := scheds[0].Do(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running // worker 0 wedged on scheds[0]

	var wg sync.WaitGroup
	for _, i := range []int{2, 4, 6} { // worker 0 affinity
		wg.Add(1)
		if err := scheds[i].Do(wg.Done); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done: // stolen and run while worker 0 is still wedged
	case <-time.After(5 * time.Second):
		t.Fatal("backlog never stolen from the wedged worker")
	}
	st := pool.Stats()
	if st.Steals == 0 || st.Stolen == 0 {
		t.Fatalf("no steals recorded: %+v", st)
	}
	if st.Deterministic {
		t.Fatal("wall-clock pool reported deterministic mode")
	}
	close(block)
}

// TestPooledPerGroupMailboxStats pins the satellite fix: MailboxDepth and
// MailboxHighWater are per-scheduler (per-group) properties, unaffected by
// which worker drains the scheduler or by a steal migrating it — never
// aggregated per worker.
func TestPooledPerGroupMailboxStats(t *testing.T) {
	pool := newTestPool(t, 2)
	a := pool.NewScheduler()
	b := pool.NewScheduler()
	defer a.Close()
	defer b.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	if err := a.Do(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	for i := 0; i < 10; i++ {
		if err := a.Do(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Do(func() {}); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	if hw := b.MailboxHighWater(); hw > 2 {
		t.Fatalf("b's high-water mark %d includes a's backlog", hw)
	}
	if d := a.MailboxDepth(); d < 10 {
		t.Fatalf("a's depth %d lost queued work", d)
	}
	close(block)
	a.Flush()
	if hw := a.MailboxHighWater(); hw < 10 {
		t.Fatalf("a's high-water mark %d below its own backlog", hw)
	}
	if d := a.MailboxDepth(); d != 0 {
		t.Fatalf("a's depth %d after drain", d)
	}
}

// poolTrace runs one deterministic multi-scheduler workload on a virtual
// clock and returns the execution trace: timer-seeded Do-chains hopping
// between 8 schedulers. The trace must be a pure function of the workload —
// independent of executor shape (dedicated goroutines, pool of 1, pool
// of 4) and of GOMAXPROCS.
func poolTrace(t *testing.T, workers int, dedicated bool) []string {
	t.Helper()
	clk := clock.NewVirtual()
	defer clk.Stop()
	var pool *Pool
	if !dedicated {
		pool = NewPool(workers, clk)
		defer pool.Close()
	}
	const K = 8
	scheds := make([]*Scheduler, K)
	for i := range scheds {
		if dedicated {
			scheds[i] = NewSchedulerWithClock(clk)
			scheds[i].Start()
		} else {
			scheds[i] = pool.NewScheduler()
		}
		defer scheds[i].Close()
	}
	var mu sync.Mutex
	var trace []string
	var hop func(i, step int) func()
	hop = func(i, step int) func() {
		return func() {
			mu.Lock()
			trace = append(trace, fmt.Sprintf("%d:%d", i, step))
			mu.Unlock()
			if step < 40 {
				next := (i + 1) % K
				_ = scheds[next].Do(hop(next, step+1))
			}
		}
	}
	for i := range scheds {
		i := i
		scheds[i].After(time.Duration(i%3+1)*time.Millisecond, hop(i, 0))
	}
	clk.Sleep(time.Second) // run the cascade to quiescence
	mu.Lock()
	defer mu.Unlock()
	if len(trace) != K*41 {
		t.Fatalf("trace has %d hops, want %d", len(trace), K*41)
	}
	return append([]string(nil), trace...)
}

// TestPooledVirtualTraceIdentity is the determinism theorem as a test: on a
// virtual clock the execution trace is byte-identical across dedicated
// mode and every pool size, because dispatch order reduces to the clock's
// FIFO token-grant order in all of them.
func TestPooledVirtualTraceIdentity(t *testing.T) {
	ref := poolTrace(t, 0, true)
	for _, workers := range []int{1, 4} {
		got := poolTrace(t, workers, false)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("pool(%d) trace diverges at hop %d: %s != %s", workers, i, got[i], ref[i])
			}
		}
	}
	st := func() PoolStats {
		clk := clock.NewVirtual()
		defer clk.Stop()
		p := NewPool(3, clk)
		defer p.Close()
		return p.Stats()
	}()
	if !st.Deterministic {
		t.Fatal("virtual-clock pool did not report deterministic mode")
	}
}
