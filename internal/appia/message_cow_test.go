package appia

import (
	"bytes"
	"testing"
)

// TestMessageCloneCopyOnWrite is the fan-out correctness property: a clone
// popped after the original pushes must still read the original bytes, and
// vice versa — the shared buffer is copied out before any mutation.
func TestMessageCloneCopyOnWrite(t *testing.T) {
	payload := []byte("payload-bytes")
	m := NewMessage(payload)
	m.PushString("seq=7")

	c := m.Clone()

	// The original mutates after the clone was taken.
	m.PushString("outer-header")
	m.PushUint32(0xdeadbeef)

	// The clone must be unaffected.
	if got, err := c.PopString(); err != nil || got != "seq=7" {
		t.Fatalf("clone header = %q, %v; want %q", got, err, "seq=7")
	}
	if !bytes.Equal(c.Bytes(), payload) {
		t.Fatalf("clone payload = %q, want %q", c.Bytes(), payload)
	}

	// And the original must still carry everything it pushed.
	if v, err := m.PopUint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("original uint32 = %x, %v", v, err)
	}
	for _, want := range []string{"outer-header", "seq=7"} {
		if got, err := m.PopString(); err != nil || got != want {
			t.Fatalf("original header = %q, %v; want %q", got, err, want)
		}
	}
	if !bytes.Equal(m.Bytes(), payload) {
		t.Fatalf("original payload = %q, want %q", m.Bytes(), payload)
	}
	c.Release()
	m.Release()
}

// TestMessageClonePushDoesNotCorruptSibling drives the other direction: the
// clone pushes first, while the original keeps reading the shared buffer.
func TestMessageClonePushDoesNotCorruptSibling(t *testing.T) {
	m := NewMessage([]byte("shared"))
	m.PushUvarint(99)
	c := m.Clone()
	c.PushString("clone-only")

	if v, err := m.PopUvarint(); err != nil || v != 99 {
		t.Fatalf("original uvarint = %d, %v; want 99", v, err)
	}
	if !bytes.Equal(m.Bytes(), []byte("shared")) {
		t.Fatalf("original payload = %q", m.Bytes())
	}
	if got, err := c.PopString(); err != nil || got != "clone-only" {
		t.Fatalf("clone header = %q, %v", got, err)
	}
	if v, err := c.PopUvarint(); err != nil || v != 99 {
		t.Fatalf("clone uvarint = %d, %v; want 99", v, err)
	}
	c.Release()
	m.Release()
}

// TestMessageCloneZeroAlloc asserts the read-only fan-out path never
// allocates: cloning shares the buffer and releasing recycles the struct.
func TestMessageCloneZeroAlloc(t *testing.T) {
	m := NewMessage(make([]byte, 512))
	m.PushString("hdr")
	defer m.Release()
	// Warm the pools.
	for i := 0; i < 8; i++ {
		m.Clone().Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		c := m.Clone()
		if c.Len() != m.Len() {
			t.Fatal("length mismatch")
		}
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("read-only Clone allocates %.1f times per op, want 0", allocs)
	}
}

// TestMessagePushPopZeroAlloc asserts a steady-state header round trip on an
// exclusively-owned message never allocates once the buffer exists.
func TestMessagePushPopZeroAlloc(t *testing.T) {
	m := NewMessage(make([]byte, 256))
	defer m.Release()
	hdr := []byte("retransmit-header")
	allocs := testing.AllocsPerRun(200, func() {
		m.PushUvarint(7)
		m.PushBytes(hdr)
		if _, err := m.PopBytes(); err != nil {
			t.Fatal(err)
		}
		if v, err := m.PopUvarint(); err != nil || v != 7 {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop round trip allocates %.1f times per op, want 0", allocs)
	}
}

// TestMessageLifecycleZeroAlloc asserts the full create/use/release cycle is
// allocation-free once the pools are warm — the per-frame path of the
// transport layer.
func TestMessageLifecycleZeroAlloc(t *testing.T) {
	payload := make([]byte, 128)
	// Warm the pools.
	for i := 0; i < 8; i++ {
		NewMessage(payload).Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		m := NewMessage(payload)
		m.PushUvarint(42)
		if _, err := m.PopUvarint(); err != nil {
			t.Fatal(err)
		}
		m.Release()
	})
	if allocs != 0 {
		t.Fatalf("message lifecycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestMessageReleaseLastOwnerKeepsData ensures releasing one sibling does
// not disturb the survivor sharing the buffer.
func TestMessageReleaseLastOwnerKeepsData(t *testing.T) {
	m := NewMessage([]byte("keepme"))
	c := m.Clone()
	m.Release()
	if !bytes.Equal(c.Bytes(), []byte("keepme")) {
		t.Fatalf("survivor reads %q after sibling release", c.Bytes())
	}
	c.Release()
}
