package appia

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// EventKindRegistry maps wire names to event factories so a receiving
// transport can reconstruct the concrete event type that was sent. The
// registry is safe for concurrent use; protocol packages register their
// wire events from constructors (never from init functions).
type EventKindRegistry struct {
	mu      sync.RWMutex
	byName  map[string]func() Sendable
	byType  map[reflect.Type]string
	missing func(kind string) // diagnostics hook for unknown kinds
}

// NewEventKindRegistry returns an empty registry.
func NewEventKindRegistry() *EventKindRegistry {
	return &EventKindRegistry{
		byName: make(map[string]func() Sendable),
		byType: make(map[reflect.Type]string),
	}
}

// _defaultRegistry is the process-wide registry used by DefaultRegistry.
// Protocol packages register into it through RegisterEventKind, which is
// idempotent, so simulated nodes in one process can share it.
var _defaultRegistry = NewEventKindRegistry()

// DefaultRegistry returns the process-wide event kind registry.
func DefaultRegistry() *EventKindRegistry { return _defaultRegistry }

// Register adds a kind. The factory must return a fresh event whose
// concrete type is always the same. Registering the same name twice with
// the same concrete type is a no-op; with a different type it panics, since
// that is a programming error that would corrupt the wire protocol.
func (r *EventKindRegistry) Register(name string, factory func() Sendable) {
	t := reflect.TypeOf(factory())
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if reflect.TypeOf(prev()) != t {
			panic(fmt.Sprintf("appia: event kind %q registered with conflicting types", name))
		}
		return
	}
	r.byName[name] = factory
	r.byType[t] = name
}

// RegisterEventKind registers into the default registry.
func RegisterEventKind(name string, factory func() Sendable) {
	_defaultRegistry.Register(name, factory)
}

// KindOf returns the wire name of the event's concrete type.
func (r *EventKindRegistry) KindOf(ev Sendable) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, ok := r.byType[reflect.TypeOf(ev)]
	if !ok {
		return "", fmt.Errorf("appia: event type %T not registered", ev)
	}
	return name, nil
}

// New constructs a fresh event of the named kind.
func (r *EventKindRegistry) New(kind string) (Sendable, error) {
	r.mu.RLock()
	f, ok := r.byName[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("appia: unknown event kind %q", kind)
	}
	return f(), nil
}

// Kinds returns the registered kind names in sorted order.
func (r *EventKindRegistry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for k := range r.byName {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
