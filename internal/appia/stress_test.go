package appia

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerConcurrentInsertStress pounds a channel from many producer
// goroutines; every event must be processed exactly once and in a
// consistent per-producer order.
func TestSchedulerConcurrentInsertStress(t *testing.T) {
	const producers = 8
	const perProducer = 500

	type stressEv struct {
		EventBase
		producer int
		seq      int
	}
	var mu sync.Mutex
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var total atomic.Int64

	l := layerFunc{name: "sink", accepts: []EventType{T[*stressEv]()}, fn: func(ch *Channel, ev Event) {
		e, ok := ev.(*stressEv)
		if !ok {
			ch.Forward(ev)
			return
		}
		mu.Lock()
		if e.seq != lastSeen[e.producer]+1 {
			t.Errorf("producer %d: seq %d after %d", e.producer, e.seq, lastSeen[e.producer])
		}
		lastSeen[e.producer] = e.seq
		mu.Unlock()
		total.Add(1)
	}}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := ch.Insert(&stressEv{producer: p, seq: i}, Up); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sched.Flush()
	if got := total.Load(); got != producers*perProducer {
		t.Fatalf("processed %d events, want %d", got, producers*perProducer)
	}
}

// TestTimerStormUnderClose arms many timers and closes the scheduler; no
// panic, no goroutine leak (the -race runner catches misuse).
func TestTimerStormUnderClose(t *testing.T) {
	sched := NewScheduler()
	sched.Start()
	var fired atomic.Int64
	for i := 0; i < 200; i++ {
		d := time.Duration(i%10+1) * time.Millisecond
		sched.After(d, func() { fired.Add(1) })
	}
	time.Sleep(5 * time.Millisecond)
	sched.Close()
	n := fired.Load()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != n {
		t.Fatal("timers fired after Close")
	}
}

// TestRouteCacheConsistency exercises many event types through the same
// channel to populate the route cache from the scheduler goroutine.
func TestRouteCacheConsistency(t *testing.T) {
	type evA struct{ EventBase }
	type evB struct{ SendableEvent }
	type evC struct{ baseEv }

	var got atomic.Int64
	l := layerFunc{name: "l", accepts: []EventType{TIface[Sendable]()}, fn: func(ch *Channel, ev Event) {
		if _, ok := ev.(*ChannelInit); ok {
			ch.Forward(ev) // lifecycle events visit everyone; don't count
			return
		}
		got.Add(1)
	}}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := ch.Insert(&evA{}, Up); err != nil { // not Sendable: bypasses the layer
			t.Fatal(err)
		}
		if err := ch.Insert(&evB{}, Up); err != nil {
			t.Fatal(err)
		}
		if err := ch.Insert(&evC{}, Up); err != nil {
			t.Fatal(err)
		}
	}
	sched.Flush()
	if got.Load() != 100 { // evB and evC are Sendable; evA is not
		t.Fatalf("layer saw %d events, want 100", got.Load())
	}
}

// TestDeepBacklogDrainsLinearly regression-tests the scheduler's
// amortised-O(1) deque: a producer enqueues a deep backlog before the
// consumer runs; draining must take linear, not quadratic, time (the
// quadratic head-copy variant took minutes at this depth).
func TestDeepBacklogDrainsLinearly(t *testing.T) {
	const depth = 200_000
	var processed atomic.Int64
	l := layerFunc{name: "sink", accepts: []EventType{T[*baseEv]()}, fn: func(ch *Channel, ev Event) {
		processed.Add(1)
	}}
	q, err := NewQoS("q", l)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < depth; i++ {
		if err := ch.Insert(&baseEv{}, Up); err != nil {
			t.Fatal(err)
		}
	}
	sched.Flush()
	if got := processed.Load(); got != depth+1 { // +1 for ChannelInit
		t.Fatalf("processed %d, want %d", got, depth+1)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("draining %d events took %v; the deque has gone quadratic", depth, took)
	}
}

// BenchmarkChannelHopThroughput measures raw event hops per second through
// a full channel (event allocation, routing, dispatch); the mailbox alone
// is measured by BenchmarkSchedulerThroughput.
func BenchmarkChannelHopThroughput(b *testing.B) {
	var processed atomic.Int64
	l := layerFunc{name: "sink", accepts: []EventType{T[*baseEv]()}, fn: func(ch *Channel, ev Event) {
		processed.Add(1)
	}}
	q, err := NewQoS("q", l)
	if err != nil {
		b.Fatal(err)
	}
	sched := NewScheduler()
	defer sched.Close()
	ch := q.CreateChannel("c", sched)
	if err := ch.Start(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Insert(&baseEv{}, Up); err != nil {
			b.Fatal(err)
		}
	}
	sched.Flush()
}

// TestMessageGrowthReallocations pushes far beyond the initial headroom.
func TestMessageGrowthReallocations(t *testing.T) {
	m := NewMessage(make([]byte, 10))
	for i := 0; i < 1000; i++ {
		m.PushUint64(uint64(i))
	}
	for i := 999; i >= 0; i-- {
		v, err := m.PopUint64()
		if err != nil || v != uint64(i) {
			t.Fatalf("pop %d: %d, %v", i, v, err)
		}
	}
	if m.Len() != 10 {
		t.Fatalf("payload length after storm = %d", m.Len())
	}
}
