// Package appia implements a protocol composition and execution kernel
// modelled after the Appia system (Miranda, Pinto, Rodrigues, ICDCS 2001).
//
// Protocols are written as Layers that declare which event types they
// accept, require and provide. A QoS is an ordered composition of layers;
// instantiating a QoS yields a Channel whose per-layer state lives in
// Sessions. Events flow up and down the channel, visiting exactly the
// sessions whose layers accept their type. All sessions of a stack execute
// on a single scheduler goroutine, so protocol code needs no locking.
package appia

import (
	"fmt"
	"reflect"
)

// Direction is the direction an event travels through a channel.
type Direction int

// Directions of event flow. Up moves from the network towards the
// application; Down moves from the application towards the network.
const (
	Up Direction = iota + 1
	Down
)

// Invert returns the opposite direction.
func (d Direction) Invert() Direction {
	if d == Up {
		return Down
	}
	return Up
}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Event is the unit of communication between layers. Concrete events are
// pointers to structs that embed EventBase (directly or transitively).
// Embedding establishes an "is-a" hierarchy used for routing: a layer that
// accepts *SendableEvent also receives every event whose struct embeds
// SendableEvent.
type Event interface {
	base() *EventBase
}

// EventBase carries the kernel bookkeeping shared by all events. Embed it
// (by value) as the first field of a concrete event struct.
type EventBase struct {
	dir     Direction
	channel *Channel
	route   []int // session indices (bottom..top) that accept this event
	cursor  int   // position within route of the next session to visit
	inited  bool
}

func (b *EventBase) base() *EventBase { return b }

// Dir reports the direction the event is travelling.
func (b *EventBase) Dir() Direction { return b.dir }

// SetDir changes the direction of travel. Typically used by layers that
// bounce an event back (for example, a loopback of a locally multicast
// message).
func (b *EventBase) SetDir(d Direction) { b.dir = d }

// Channel returns the channel the event is flowing through, or nil if the
// event has not been inserted yet.
func (b *EventBase) Channel() *Channel { return b.channel }

// EventType identifies a type of event for routing declarations. It is the
// reflect.Type of the concrete pointer-to-struct event (or of an interface
// that events may implement).
type EventType struct {
	t reflect.Type
}

// T returns the EventType for the concrete event type E.
// Use as appia.T[*MyEvent]().
func T[E Event]() EventType {
	return EventType{t: reflect.TypeOf((*E)(nil)).Elem()}
}

// TIface returns the EventType of an interface type I; a layer accepting it
// receives every event whose concrete type implements I.
// Use as appia.TIface[MyInterface]().
func TIface[I any]() EventType {
	return EventType{t: reflect.TypeOf((*I)(nil)).Elem()}
}

// TypeOf returns the EventType of a live event value.
func TypeOf(ev Event) EventType {
	return EventType{t: reflect.TypeOf(ev)}
}

// String implements fmt.Stringer.
func (et EventType) String() string {
	if et.t == nil {
		return "EventType(nil)"
	}
	return et.t.String()
}

// Matches reports whether a concrete event of type "concrete" should be
// routed to a layer accepting this EventType. It holds when the types are
// identical, when concrete implements the accepted interface type, or when
// the struct behind concrete (transitively) embeds the struct behind the
// accepted type.
func (et EventType) Matches(concrete EventType) bool {
	a, c := et.t, concrete.t
	if a == nil || c == nil {
		return false
	}
	if a == c {
		return true
	}
	if a.Kind() == reflect.Interface {
		return c.Implements(a)
	}
	// Both are expected to be pointer-to-struct event types.
	if a.Kind() != reflect.Ptr || c.Kind() != reflect.Ptr {
		return false
	}
	return embedsStruct(c.Elem(), a.Elem())
}

// embedsStruct reports whether struct type outer embeds (transitively,
// through anonymous fields) struct type inner.
func embedsStruct(outer, inner reflect.Type) bool {
	if outer.Kind() != reflect.Struct || inner.Kind() != reflect.Struct {
		return false
	}
	for i := 0; i < outer.NumField(); i++ {
		f := outer.Field(i)
		if !f.Anonymous {
			continue
		}
		ft := f.Type
		if ft.Kind() == reflect.Ptr {
			ft = ft.Elem()
		}
		if ft == inner {
			return true
		}
		if ft.Kind() == reflect.Struct && embedsStruct(ft, inner) {
			return true
		}
	}
	return false
}

// ChannelInit is delivered to every session, bottom-up, when a channel
// starts. Sessions use it to capture the channel reference, arm timers and
// open network endpoints.
type ChannelInit struct {
	EventBase
}

// ChannelClose is delivered to every session, top-down, when a channel is
// being torn down. Sessions must release external resources.
type ChannelClose struct {
	EventBase
}

// Debug events can be injected to trace the route computation; they visit
// every session.
type Debug struct {
	EventBase
	Note string
}
