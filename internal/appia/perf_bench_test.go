package appia

import (
	"testing"
)

// BenchmarkSchedulerThroughput measures how fast the scheduler goroutine
// drains a full mailbox — the dequeue-and-dispatch path the double-buffered
// batch swap optimises. Each round preloads a backlog with the clock
// stopped, then times Start-to-drained.
func BenchmarkSchedulerThroughput(b *testing.B) {
	var n int // touched only on the scheduler goroutine
	fn := func() { n++ }
	const backlog = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := backlog
		if left := b.N - done; k > left {
			k = left
		}
		b.StopTimer()
		s := NewScheduler()
		for j := 0; j < k; j++ {
			if err := s.Do(fn); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		s.Start()
		s.Flush()
		b.StopTimer()
		s.Close()
		b.StartTimer()
		done += k
	}
	b.StopTimer()
	if n != b.N {
		b.Fatalf("ran %d tasks, want %d", n, b.N)
	}
}

// BenchmarkMessageClone measures N-way fan-out cloning of a message that the
// clones only ever read — the exact shape of FanoutLayer.spread and the NAK
// layer's retransmission store. With copy-on-write buffers a read-only clone
// is O(1) and allocation-free.
func BenchmarkMessageClone(b *testing.B) {
	payload := make([]byte, 1024)
	m := NewMessage(payload)
	m.PushUvarint(42)
	m.PushString("hdr")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		if c.Len() != m.Len() {
			b.Fatal("clone length mismatch")
		}
		c.Release()
	}
}
