package appia

import (
	"fmt"
	"reflect"
)

// NodeID identifies a node of the distributed system. In the virtual
// network it doubles as the address; a real deployment would map it to a
// host:port pair.
type NodeID int32

// NoNode is the zero NodeID, used for "unaddressed" (group-wide) traffic.
const NoNode NodeID = 0

// SendableEvent is the root of all events that cross the network. Layers
// push protocol headers onto Msg on the way down and pop them on the way
// up; the struct fields below are kernel-local metadata and never travel on
// the wire except where the transport explicitly encodes them.
//
// Concrete wire events embed SendableEvent and register a factory with
// RegisterEventKind so receivers can reconstruct them by kind name.
type SendableEvent struct {
	EventBase
	// Msg is the header stack plus payload.
	Msg *Message
	// Source is the originating node. Filled by the sender's transport on
	// the way down and by the receiver's transport on the way up.
	Source NodeID
	// Dest is the destination node for point-to-point traffic, or NoNode
	// for group traffic (the bottom layers decide how to spread it).
	Dest NodeID
	// Class tags the event for accounting: "data" or "control". The
	// virtual network counts transmissions per class, which is how the
	// paper's Figure 3 separates payload from adaptation overhead.
	Class string
}

// EnsureMsg lazily allocates the message.
func (e *SendableEvent) EnsureMsg() *Message {
	if e.Msg == nil {
		e.Msg = &Message{}
	}
	return e.Msg
}

// Sendable is implemented by every event embedding SendableEvent; it gives
// layers typed access to the shared wire metadata without knowing the
// concrete event type.
type Sendable interface {
	Event
	SendableBase() *SendableEvent
}

// SendableBase implements Sendable.
func (e *SendableEvent) SendableBase() *SendableEvent { return e }

var _ Sendable = (*SendableEvent)(nil)

// Classes used for transmission accounting.
const (
	ClassData    = "data"
	ClassControl = "control"
)

// CloneSendable returns a fresh event of the same concrete type with a deep
// copy of the message and the wire metadata. Struct fields outside
// SendableEvent are NOT copied: by convention all state that must survive
// the network lives in pushed message headers, so a clone made below the
// layers that pushed those headers is complete. Fan-out layers use this to
// turn one logical multicast into per-destination copies.
func CloneSendable(e Sendable) Sendable {
	t := reflect.TypeOf(e).Elem()
	cp, ok := reflect.New(t).Interface().(Sendable)
	if !ok {
		// Unreachable: e's type implements Sendable by construction.
		panic(fmt.Sprintf("appia: %v does not implement Sendable", t))
	}
	src := e.SendableBase()
	dst := cp.SendableBase()
	if src.Msg != nil {
		dst.Msg = src.Msg.Clone()
	}
	dst.Source = src.Source
	dst.Dest = src.Dest
	dst.Class = src.Class
	return cp
}
