package appia

import (
	"errors"
	"fmt"
)

// QoS errors.
var (
	ErrEmptyQoS   = errors.New("appia: QoS must contain at least one layer")
	ErrUnprovided = errors.New("appia: required event type not provided by any layer")
)

// QoS is an ordered composition of layers (bottom first) that together
// offer a given quality of service. Instantiating a QoS produces a Channel.
type QoS struct {
	name   string
	layers []Layer
}

// kernelProvided lists event types the kernel itself injects, which layers
// may therefore require without any layer providing them.
func kernelProvided() []EventType {
	return []EventType{T[*ChannelInit](), T[*ChannelClose]()}
}

// NewQoS composes layers (bottom first) into a QoS, validating that every
// event type some layer requires is provided by another layer or by the
// kernel.
func NewQoS(name string, layers ...Layer) (*QoS, error) {
	if len(layers) == 0 {
		return nil, ErrEmptyQoS
	}
	provided := kernelProvided()
	for _, l := range layers {
		provided = append(provided, l.Spec().Provides...)
	}
	for _, l := range layers {
		for _, req := range l.Spec().Requires {
			if !anyProvides(provided, req) {
				return nil, fmt.Errorf("%w: layer %q requires %v (QoS %q)",
					ErrUnprovided, l.Name(), req, name)
			}
		}
	}
	cp := make([]Layer, len(layers))
	copy(cp, layers)
	return &QoS{name: name, layers: cp}, nil
}

// anyProvides reports whether some provided type satisfies the requirement:
// the required type must match at least one provided concrete type, or a
// provided type must equal it.
func anyProvides(provided []EventType, req EventType) bool {
	for _, p := range provided {
		if p == req || req.Matches(p) || p.Matches(req) {
			return true
		}
	}
	return false
}

// Name returns the QoS name.
func (q *QoS) Name() string { return q.name }

// Layers returns the composed layers, bottom first. The returned slice is a
// copy.
func (q *QoS) Layers() []Layer {
	cp := make([]Layer, len(q.layers))
	copy(cp, q.layers)
	return cp
}

// NumLayers returns the number of layers in the composition.
func (q *QoS) NumLayers() int { return len(q.layers) }

// LayerIndex returns the index (bottom = 0) of the first layer with the
// given name, or -1.
func (q *QoS) LayerIndex(name string) int {
	for i, l := range q.layers {
		if l.Name() == name {
			return i
		}
	}
	return -1
}
