package appia

import (
	"runtime"
	"sync"

	"morpheus/internal/clock"
)

// Pool is a shared work-stealing executor for many schedulers: a fixed set
// of worker goroutines own per-worker run queues of *runnable schedulers*
// (schedulers whose mailbox went non-empty) and steal from each other when
// their own queue runs dry. It replaces the 1-goroutine-per-group model for
// nodes hosting many groups: goroutine count, stack memory and wake-up cost
// become O(workers) instead of O(groups), while an idle group costs nothing
// at all — it simply is not in any queue.
//
// Serialization illusion. A scheduler is owned by at most one worker at a
// time, and ownership changes hands only at mailbox-drain boundaries: a
// worker that pops a scheduler runs Scheduler.drain to completion (mailbox
// empty, scheduler parked) before the scheduler can be enqueued again.
// Layer code therefore observes exactly the single-goroutine execution
// model of dedicated mode — the memory-ordering handoff between successive
// owning workers is carried by the chain
//
//	park (s.mu) -> post (s.mu) -> enqueue (pool.mu) -> pop (pool.mu) -> drain (s.mu)
//
// so even the scheduler fields only ever touched by "the scheduler
// goroutine" (token state, route caches, batch buffers) need no new locks.
//
// Determinism. Under a *clock.Virtual the pool degrades to strictly
// sequential dispatch: per-worker queues and stealing are disabled in favor
// of one global FIFO, and each wake-up atomically (under pool.mu) enqueues
// the scheduler for the clock's run token AND appends it to that FIFO — so
// pop order equals token-grant order equals poster order, which is exactly
// the dedicated-mode execution. Worker count does not change the schedule:
// whichever worker pops a scheduler still blocks on that scheduler's token
// grant, and grants are issued one at a time in FIFO order. Golden hashes
// are therefore byte-identical across pool sizes and versus dedicated mode.
type Pool struct {
	clk  clock.Clock
	vclk *clock.Virtual

	mu     sync.Mutex
	cond   *sync.Cond // idle workers wait here
	local  [][]*Scheduler
	fifo   []*Scheduler // virtual mode: the single global run queue
	idle   int
	closed bool
	next   int // round-robin affinity cursor for new schedulers

	// Counters, guarded by mu.
	enqueues uint64
	batches  uint64
	steals   uint64
	stolen   uint64
	parks    uint64

	wg sync.WaitGroup
}

// PoolStats is a snapshot of a pool's dispatch counters.
type PoolStats struct {
	Workers  int
	Enqueues uint64 // scheduler wake-ups queued for dispatch
	Batches  uint64 // drain sessions executed by workers
	Steals   uint64 // steal operations (an idle worker raiding a victim queue)
	Stolen   uint64 // schedulers migrated between workers by steals
	Parks    uint64 // times a worker went idle
	// Deterministic reports virtual-clock mode: one global FIFO, no
	// stealing, dispatch serialized by the clock's run token.
	Deterministic bool
}

// NewPool starts a pool of workers executing schedulers driven by clk (nil
// means the wall clock). workers <= 0 defaults to GOMAXPROCS.
func NewPool(workers int, clk clock.Clock) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		clk:   clock.Or(clk),
		local: make([][]*Scheduler, workers),
	}
	p.vclk, _ = p.clk.(*clock.Virtual)
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Clock returns the clock driving the pool's schedulers.
func (p *Pool) Clock() clock.Clock { return p.clk }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.local) }

// NewScheduler returns a scheduler executed by this pool. It shares the
// whole Scheduler API with dedicated schedulers (Start is a no-op — the
// workers already run); Close drains and detaches it without stopping the
// pool.
func (p *Pool) NewScheduler() *Scheduler {
	s := NewSchedulerWithClock(p.clk)
	s.pool = p
	p.mu.Lock()
	s.affinity = p.next
	p.next = (p.next + 1) % len(p.local)
	p.mu.Unlock()
	return s
}

// Stats snapshots the pool's dispatch counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:       len(p.local),
		Enqueues:      p.enqueues,
		Batches:       p.batches,
		Steals:        p.steals,
		Stolen:        p.stolen,
		Parks:         p.parks,
		Deterministic: p.vclk != nil,
	}
}

// Close stops the workers after the queued schedulers drain. Schedulers
// must be Closed before their pool: a wake-up that reaches a closed pool is
// executed on a fallback goroutine so no mailbox is ever stranded, but that
// path forfeits pooling.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// enqueue hands a runnable scheduler to the pool. Called by Scheduler.post
// exactly once per park/wake cycle (the waiting flag), while still holding
// s.mu — the s.mu -> pool.mu order makes queued wake-ups visible to
// Scheduler.Close's detach.
func (p *Pool) enqueue(s *Scheduler) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// Teardown stragglers (e.g. a late timer): preserve liveness on a
		// dedicated goroutine.
		if p.vclk != nil {
			p.vclk.EnqueueRunnable(s.grant)
		}
		go s.drain()
		return
	}
	p.enqueues++
	if p.vclk != nil {
		// The token enqueue and the FIFO append are atomic under pool.mu:
		// the clock grants tokens in exactly the order workers pop, so a
		// worker never sits on a granted scheduler while an earlier grant
		// waits for a worker.
		p.vclk.EnqueueRunnable(s.grant)
		p.fifo = append(p.fifo, s)
	} else {
		w := s.affinity
		p.local[w] = append(p.local[w], s)
	}
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// detach removes s from whichever run queue holds it, reporting whether it
// was found. Called by Scheduler.Close after closed is set: a hit means no
// worker will ever own s again, so the closer may drain it inline; a miss
// means a worker owns it right now (posts are enqueued under s.mu, so a
// wake-up that predates Close is already visible here).
func (p *Pool) detach(s *Scheduler) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.vclk != nil {
		return removeSched(&p.fifo, s)
	}
	for i := range p.local {
		if removeSched(&p.local[i], s) {
			return true
		}
	}
	return false
}

// removeSched deletes the first occurrence of s from q, preserving order.
func removeSched(q *[]*Scheduler, s *Scheduler) bool {
	for i, e := range *q {
		if e == s {
			n := copy((*q)[i:], (*q)[i+1:])
			(*q)[i+n] = nil
			*q = (*q)[:i+n]
			return true
		}
	}
	return false
}

// worker is one pool executor loop.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		s := p.takeLocked(id)
		if s == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.parks++
			p.idle++
			p.cond.Wait()
			p.idle--
			continue
		}
		p.batches++
		p.mu.Unlock()
		s.drain()
		p.mu.Lock()
	}
}

// takeLocked pops the next runnable scheduler for worker id: virtual mode
// pops the global FIFO; wall mode pops the local queue, then steals.
func (p *Pool) takeLocked(id int) *Scheduler {
	if p.vclk != nil {
		if len(p.fifo) == 0 {
			return nil
		}
		s := p.fifo[0]
		n := copy(p.fifo, p.fifo[1:])
		p.fifo[n] = nil
		p.fifo = p.fifo[:n]
		return s
	}
	if q := p.local[id]; len(q) > 0 {
		s := q[0]
		n := copy(q, q[1:])
		q[n] = nil
		p.local[id] = q[:n]
		return s
	}
	// Steal: scan the other workers round-robin and take the older half of
	// the first non-empty queue (oldest first keeps rough FIFO fairness;
	// half amortizes pool.mu traffic when one worker is the hot producer).
	// Migrated schedulers re-home their affinity so future wake-ups land on
	// the thief — the group has demonstrably no cache residence with its
	// old worker if its queue got this stale.
	n := len(p.local)
	for off := 1; off < n; off++ {
		v := (id + off) % n
		vq := p.local[v]
		if len(vq) == 0 {
			continue
		}
		take := (len(vq) + 1) / 2
		s := vq[0]
		s.affinity = id
		for _, m := range vq[1:take] {
			m.affinity = id
		}
		p.local[id] = append(p.local[id], vq[1:take]...)
		rest := copy(vq, vq[take:])
		for i := rest; i < len(vq); i++ {
			vq[i] = nil
		}
		p.local[v] = vq[:rest]
		p.steals++
		p.stolen += uint64(take)
		return s
	}
	return nil
}
