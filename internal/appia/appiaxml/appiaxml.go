// Package appiaxml reproduces the AppiaXML extension the paper developed
// for Morpheus (§3.1, [16]): communication channels are described in XML
// and can be instantiated — or re-instantiated — at run time. The Core
// sub-system ships these descriptions to each node during reconfiguration,
// and the local module rebuilds the protocol stack from them.
package appiaxml

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// Errors returned by the builder.
var (
	ErrUnknownLayer  = errors.New("appiaxml: unknown layer")
	ErrNoChannel     = errors.New("appiaxml: channel not found in document")
	ErrMissingParam  = errors.New("appiaxml: missing required parameter")
	ErrInvalidParam  = errors.New("appiaxml: invalid parameter value")
	ErrDuplicateName = errors.New("appiaxml: duplicate layer registration")
)

// Document is the root of a channel description.
type Document struct {
	XMLName  xml.Name      `xml:"appia"`
	Channels []ChannelSpec `xml:"channel"`
}

// ChannelSpec describes one channel: an ordered stack of sessions, bottom
// first.
type ChannelSpec struct {
	Name     string        `xml:"name,attr"`
	QoS      string        `xml:"qos,attr"`
	Sessions []SessionSpec `xml:"session"`
}

// SessionSpec describes one layer instantiation.
type SessionSpec struct {
	// Layer is the registered protocol name, e.g. "group.nak".
	Layer string `xml:"layer,attr"`
	// Sharing is "private" (default) or "global": global sessions are
	// looked up by SharedName in the session cache, so several channels
	// (or successive configuration epochs) reuse the same state.
	Sharing string `xml:"sharing,attr"`
	// SharedName identifies a global session in the cache.
	SharedName string `xml:"name,attr"`
	// Params configure the layer factory.
	Params []ParamSpec `xml:"param"`
}

// ParamSpec is one key/value layer parameter.
type ParamSpec struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// Parse reads a document.
func Parse(r io.Reader) (*Document, error) {
	var d Document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("appiaxml: %w", err)
	}
	return &d, nil
}

// ParseString reads a document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// Marshal renders the document as XML text.
func (d *Document) Marshal() (string, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("appiaxml: %w", err)
	}
	return string(out), nil
}

// Channel returns the named channel spec.
func (d *Document) Channel(name string) (ChannelSpec, error) {
	for _, c := range d.Channels {
		if c.Name == name {
			return c, nil
		}
	}
	return ChannelSpec{}, fmt.Errorf("%w: %q", ErrNoChannel, name)
}

// Params gives typed access to a session's parameters.
type Params map[string]string

// paramsOf flattens the spec list.
func paramsOf(specs []ParamSpec) Params {
	p := make(Params, len(specs))
	for _, s := range specs {
		p[s.Name] = strings.TrimSpace(s.Value)
	}
	return p
}

// Get returns a string parameter and whether it was present.
func (p Params) Get(name string) (string, bool) {
	v, ok := p[name]
	return v, ok
}

// Str returns a string parameter or the fallback.
func (p Params) Str(name, fallback string) string {
	if v, ok := p[name]; ok {
		return v
	}
	return fallback
}

// Int returns an integer parameter or the fallback.
func (p Params) Int(name string, fallback int) (int, error) {
	v, ok := p[name]
	if !ok {
		return fallback, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q", ErrInvalidParam, name, v)
	}
	return n, nil
}

// Bool returns a boolean parameter or the fallback.
func (p Params) Bool(name string, fallback bool) (bool, error) {
	v, ok := p[name]
	if !ok {
		return fallback, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%w: %s=%q", ErrInvalidParam, name, v)
	}
	return b, nil
}

// Duration returns a duration parameter ("30ms") or the fallback.
func (p Params) Duration(name string, fallback time.Duration) (time.Duration, error) {
	v, ok := p[name]
	if !ok {
		return fallback, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q", ErrInvalidParam, name, v)
	}
	return d, nil
}

// NodeID returns a node identifier parameter or the fallback.
func (p Params) NodeID(name string, fallback appia.NodeID) (appia.NodeID, error) {
	v, ok := p[name]
	if !ok {
		return fallback, nil
	}
	n, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q", ErrInvalidParam, name, v)
	}
	return appia.NodeID(n), nil
}

// NodeIDs returns a comma-separated node list parameter.
func (p Params) NodeIDs(name string) ([]appia.NodeID, error) {
	v, ok := p[name]
	if !ok || v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	out := make([]appia.NodeID, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: %s=%q", ErrInvalidParam, name, v)
		}
		out = append(out, appia.NodeID(n))
	}
	return out, nil
}

// FormatNodeIDs renders a node list as a parameter value.
func FormatNodeIDs(ids []appia.NodeID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(int64(id), 10)
	}
	return strings.Join(parts, ",")
}

// Env is the local context a layer factory may draw on: the node's network
// attachment (any netio substrate), identity, current group membership and
// channel port. Group names the hosted group the channel belongs to on a
// multi-group node (empty on single-group deployments); layers use it to
// tag delivered events so cross-group isolation is observable.
type Env struct {
	Node      netio.Endpoint
	Self      appia.NodeID
	Group     string
	Members   []appia.NodeID
	Port      string
	Registry  *appia.EventKindRegistry
	Scheduler *appia.Scheduler
	Shared    *SessionCache
	Deliver   appia.DeliverFunc
	Logf      func(format string, args ...any)
	// Clock is the node's time plane, handed to layers that read the
	// current time directly (the scheduler's timers have their own copy).
	// Nil means wall clock.
	Clock clock.Clock
	// Window, when non-nil, is the group's send-window credit sink: the
	// reliable layer returns one credit per windowed cast as stability
	// gossip confirms group-wide delivery. Nil means windowing is off for
	// this channel.
	Window CreditReleaser
	// SendWindow is the window's credit capacity (0 when windowing is
	// off); factories derive retention caps from it.
	SendWindow int
	// BytesWindow, when non-nil, is the byte-denominated credit sink: the
	// reliable layer returns a windowed cast's WindowBytes credits on the
	// same stability watermark that returns its message credit. Nil means
	// byte windowing is off for this channel.
	BytesWindow CreditReleaser
	// SendWindowBytes is the byte window's credit capacity (0 when byte
	// windowing is off).
	SendWindowBytes int
}

// CreditReleaser mirrors group.CreditReleaser without the import: the sink
// send-window credits are released to.
type CreditReleaser interface {
	Release(n int)
}

// LayerFactory builds a layer instance from parameters and the local
// environment.
type LayerFactory func(p Params, env *Env) (appia.Layer, error)

// LayerRegistry maps protocol names to factories.
type LayerRegistry struct {
	mu sync.RWMutex
	m  map[string]LayerFactory
}

// NewLayerRegistry returns an empty registry.
func NewLayerRegistry() *LayerRegistry {
	return &LayerRegistry{m: make(map[string]LayerFactory)}
}

// Register adds a factory; duplicate names are rejected.
func (r *LayerRegistry) Register(name string, f LayerFactory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	r.m[name] = f
	return nil
}

// MustRegister is Register that panics, for static wiring code.
func (r *LayerRegistry) MustRegister(name string, f LayerFactory) {
	if err := r.Register(name, f); err != nil {
		panic(err)
	}
}

// New builds a layer by name.
func (r *LayerRegistry) New(name string, p Params, env *Env) (appia.Layer, error) {
	r.mu.RLock()
	f, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLayer, name)
	}
	return f(p, env)
}

// Names returns the registered layer names, sorted.
func (r *LayerRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SessionCache holds globally shared sessions across channel builds.
type SessionCache struct {
	mu sync.Mutex
	m  map[string]appia.Session
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{m: make(map[string]appia.Session)}
}

// Get returns a cached session.
func (c *SessionCache) Get(name string) (appia.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[name]
	return s, ok
}

// Put stores a session.
func (c *SessionCache) Put(name string, s appia.Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] = s
}

// Drop removes a session (when its last channel is torn down for good).
func (c *SessionCache) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, name)
}

// BuildChannel instantiates a channel from its XML spec: layers are created
// bottom-up through the registry, composed into a QoS, and the channel is
// created on env.Scheduler with env.Deliver as the application upcall.
// Sessions marked sharing="global" are satisfied from (and stored into)
// env.Shared.
func BuildChannel(spec ChannelSpec, reg *LayerRegistry, env *Env) (*appia.Channel, error) {
	if len(spec.Sessions) == 0 {
		return nil, fmt.Errorf("appiaxml: channel %q has no sessions", spec.Name)
	}
	layers := make([]appia.Layer, 0, len(spec.Sessions))
	type sharing struct {
		layerName  string
		sharedName string
	}
	var shared []sharing
	for _, ss := range spec.Sessions {
		l, err := reg.New(ss.Layer, paramsOf(ss.Params), env)
		if err != nil {
			return nil, fmt.Errorf("channel %q: %w", spec.Name, err)
		}
		layers = append(layers, l)
		if ss.Sharing == "global" {
			name := ss.SharedName
			if name == "" {
				name = ss.Layer
			}
			shared = append(shared, sharing{layerName: l.Name(), sharedName: name})
		}
	}
	qosName := spec.QoS
	if qosName == "" {
		qosName = spec.Name
	}
	qos, err := appia.NewQoS(qosName, layers...)
	if err != nil {
		return nil, fmt.Errorf("channel %q: %w", spec.Name, err)
	}
	opts := []appia.ChannelOption{}
	if env.Deliver != nil {
		opts = append(opts, appia.WithDeliver(env.Deliver))
	}
	if env.Shared != nil {
		for _, sh := range shared {
			if sess, ok := env.Shared.Get(sh.sharedName); ok {
				opts = append(opts, appia.WithSharedSession(sh.layerName, sess))
			}
		}
	}
	ch := qos.CreateChannel(spec.Name, env.Scheduler, opts...)
	if env.Shared != nil {
		for _, sh := range shared {
			if _, ok := env.Shared.Get(sh.sharedName); !ok {
				env.Shared.Put(sh.sharedName, ch.SessionFor(sh.layerName))
			}
		}
	}
	return ch, nil
}
