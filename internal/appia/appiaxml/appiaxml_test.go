package appiaxml

import (
	"errors"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
)

const sampleXML = `
<appia>
  <channel name="data" qos="demo">
    <session layer="test.bottom" sharing="global" name="shared-bottom"/>
    <session layer="test.top">
      <param name="label">hello</param>
      <param name="count">3</param>
      <param name="delay">15ms</param>
      <param name="flag">true</param>
      <param name="peer">7</param>
      <param name="peers">1, 2, 3</param>
    </session>
  </channel>
  <channel name="other">
    <session layer="test.bottom"/>
  </channel>
</appia>`

func TestParseDocument(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Channels) != 2 {
		t.Fatalf("channels = %d", len(d.Channels))
	}
	c, err := d.Channel("data")
	if err != nil {
		t.Fatal(err)
	}
	if c.QoS != "demo" || len(c.Sessions) != 2 {
		t.Fatalf("spec = %+v", c)
	}
	if c.Sessions[0].Sharing != "global" || c.Sessions[0].SharedName != "shared-bottom" {
		t.Fatalf("sharing spec = %+v", c.Sessions[0])
	}
	if _, err := d.Channel("missing"); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Channels) != 2 || d2.Channels[0].Sessions[1].Params[0].Value != "hello" {
		t.Fatalf("roundtrip lost data: %+v", d2)
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := ParseString("<appia"); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestParamsTyped(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := d.Channel("data")
	if err != nil {
		t.Fatal(err)
	}
	p := paramsOf(spec.Sessions[1].Params)

	if got := p.Str("label", "x"); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := p.Str("nope", "fallback"); got != "fallback" {
		t.Fatalf("Str fallback = %q", got)
	}
	if n, err := p.Int("count", 0); err != nil || n != 3 {
		t.Fatalf("Int = %d, %v", n, err)
	}
	if n, err := p.Int("nope", 9); err != nil || n != 9 {
		t.Fatalf("Int fallback = %d, %v", n, err)
	}
	if d, err := p.Duration("delay", 0); err != nil || d != 15*time.Millisecond {
		t.Fatalf("Duration = %v, %v", d, err)
	}
	if b, err := p.Bool("flag", false); err != nil || !b {
		t.Fatalf("Bool = %v, %v", b, err)
	}
	if id, err := p.NodeID("peer", 0); err != nil || id != 7 {
		t.Fatalf("NodeID = %d, %v", id, err)
	}
	ids, err := p.NodeIDs("peers")
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("NodeIDs = %v, %v", ids, err)
	}
	if _, err := p.Int("label", 0); !errors.Is(err, ErrInvalidParam) {
		t.Fatal("bad int accepted")
	}
}

func TestFormatNodeIDs(t *testing.T) {
	if got := FormatNodeIDs([]appia.NodeID{1, 2, 30}); got != "1,2,30" {
		t.Fatalf("FormatNodeIDs = %q", got)
	}
}

// testLayer is a minimal layer for builder tests.
type testLayer struct {
	appia.BaseLayer
	label string
}

func (l *testLayer) NewSession() appia.Session {
	return appia.SessionFunc(func(ch *appia.Channel, ev appia.Event) {
		ch.Forward(ev)
	})
}

func testRegistry(t *testing.T) *LayerRegistry {
	t.Helper()
	reg := NewLayerRegistry()
	mk := func(name string) LayerFactory {
		return func(p Params, env *Env) (appia.Layer, error) {
			return &testLayer{
				BaseLayer: appia.BaseLayer{LayerName: name},
				label:     p.Str("label", ""),
			}, nil
		}
	}
	reg.MustRegister("test.bottom", mk("test.bottom"))
	reg.MustRegister("test.top", mk("test.top"))
	return reg
}

func TestRegistryDuplicate(t *testing.T) {
	reg := testRegistry(t)
	if err := reg.Register("test.bottom", nil); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "test.bottom" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryUnknown(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.New("nope", nil, &Env{}); !errors.Is(err, ErrUnknownLayer) {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildChannel(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := d.Channel("data")
	if err != nil {
		t.Fatal(err)
	}
	sched := appia.NewScheduler()
	defer sched.Close()
	cache := NewSessionCache()

	var mu sync.Mutex
	var delivered int
	env := &Env{
		Scheduler: sched,
		Shared:    cache,
		Deliver: func(ev appia.Event) {
			mu.Lock()
			delivered++
			mu.Unlock()
		},
	}
	ch, err := BuildChannel(spec, testRegistry(t), env)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Name() != "data" || ch.QoS().Name() != "demo" {
		t.Fatalf("channel = %q qos = %q", ch.Name(), ch.QoS().Name())
	}
	// The global session must be cached and reused by a second build.
	if _, ok := cache.Get("shared-bottom"); !ok {
		t.Fatal("shared session not cached")
	}
	ch2, err := BuildChannel(spec, testRegistry(t), env)
	if err != nil {
		t.Fatal(err)
	}
	s1 := ch.SessionFor("test.bottom")
	s2 := ch2.SessionFor("test.bottom")
	if s1 == nil || s2 == nil {
		t.Fatal("sessions missing")
	}
	// SessionFunc values are not comparable with ==; identity through the
	// cache is what we assert.
	cached, _ := cache.Get("shared-bottom")
	_ = cached

	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	if !ch.WaitReady(2 * time.Second) {
		t.Fatal("channel not ready")
	}
	_ = ch.Close()
	_ = ch2.Close()
}

func TestBuildChannelErrors(t *testing.T) {
	reg := testRegistry(t)
	sched := appia.NewScheduler()
	defer sched.Close()
	env := &Env{Scheduler: sched}

	if _, err := BuildChannel(ChannelSpec{Name: "x"}, reg, env); err == nil {
		t.Fatal("empty channel built")
	}
	bad := ChannelSpec{Name: "x", Sessions: []SessionSpec{{Layer: "missing"}}}
	if _, err := BuildChannel(bad, reg, env); !errors.Is(err, ErrUnknownLayer) {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionCache(t *testing.T) {
	c := NewSessionCache()
	s := appia.SessionFunc(func(ch *appia.Channel, ev appia.Event) {})
	c.Put("a", s)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("miss after put")
	}
	c.Drop("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit after drop")
	}
}
