package appia

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/clock"
)

// ErrSchedulerClosed is returned by insertions into a stopped scheduler.
var ErrSchedulerClosed = errors.New("appia: scheduler closed")

// task is one unit of scheduler work: either a routed event hop, a direct
// delivery to a session, or a plain function (timer callbacks).
type task struct {
	ch     *Channel
	ev     Event
	direct Session // when non-nil, deliver ev straight to this session
	fn     func()  // when non-nil, just run it
}

// Scheduler executes all the sessions of one protocol stack on a single
// goroutine, in the style of the Appia event scheduler. Channels that share
// sessions must share the scheduler; in this codebase every simulated node
// owns exactly one scheduler for all its channels.
//
// The mailbox itself never blocks an insertion — that is essential, because
// the scheduler goroutine re-queues events while forwarding them, and a
// blocking intra-stack insertion would deadlock the stack against itself.
// What CAN be bounded is external ingress: SetMailboxBounds arms a
// high/low-watermark admission gate that external producers (group sends,
// via the stack manager) consult before posting, while sessions, timers and
// network ingress keep posting freely. The hysteresis bounds the mailbox to
// roughly high + (intra-stack amplification of the admitted work) without
// ever violating the no-deadlock invariant.
//
// A scheduler belongs to a Clock (wall by default). Timers (After/Every)
// are armed on it, and when the clock is a deterministic *clock.Virtual the
// scheduler additionally participates in the clock's run-token regime: a
// parked scheduler that receives work is queued for the token by the
// poster (so the queue order is a function of the serialized execution),
// dispatches batches only while holding it, and releases it when it parks
// again — which is the "all schedulers parked" half of the virtual clock's
// time-advance rule.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task // producer-side buffer; run() swaps it out wholesale
	waiting bool   // the scheduler goroutine is parked in cond.Wait
	closed  bool

	wg      sync.WaitGroup
	started bool

	clk  clock.Clock
	vclk *clock.Virtual // non-nil when clk is the deterministic clock

	// Virtual-clock token state. grant receives the token; closing unhooks
	// the goroutine from the token regime at Close so teardown cannot
	// deadlock on a token the closer itself holds. tokenHeld is only
	// touched by the scheduler goroutine.
	grant     chan struct{}
	closing   chan struct{}
	tokenHeld bool

	// Pooled mode. When pool is non-nil the scheduler has no goroutine of
	// its own: posts enqueue it on the pool, whose workers run drain() while
	// owning it exclusively (see Pool). affinity is the preferred worker,
	// guarded by pool.mu; spare is the recycled batch buffer, touched only
	// by the owning worker; drained (closed once, via drainOnce) lets Close
	// wait for the final drain without a goroutine to join.
	pool      *Pool
	affinity  int
	spare     []task
	drained   chan struct{}
	drainOnce sync.Once

	timerMu sync.Mutex
	timers  map[*schedTimer]struct{}

	// Bounded-mailbox admission state. depth counts queued-but-undispatched
	// tasks (producer queue plus the in-flight batch); hwDepth is its
	// monotone high-water mark. admitGate is non-nil while the mailbox is
	// saturated (depth reached boundHigh) and is closed — waking external
	// producers — once a drain brings depth back to boundLow. boundHigh == 0
	// means unbounded (the default). All but the atomics are guarded by mu.
	boundHigh int
	boundLow  int
	admitGate chan struct{}
	depth     atomic.Int64
	hwDepth   atomic.Int64
}

// schedTimer tracks one outstanding After timer for cancellation at Close.
type schedTimer struct{ t clock.Timer }

// NewScheduler returns a wall-clock scheduler; call Start before inserting
// events.
func NewScheduler() *Scheduler { return NewSchedulerWithClock(nil) }

// NewSchedulerWithClock returns a scheduler driven by clk (nil means the
// wall clock).
func NewSchedulerWithClock(clk clock.Clock) *Scheduler {
	s := &Scheduler{
		clk:     clock.Or(clk),
		timers:  make(map[*schedTimer]struct{}),
		grant:   make(chan struct{}, 1),
		closing: make(chan struct{}),
		drained: make(chan struct{}),
		// A scheduler is born parked: the first post must behave like a
		// wake-up (in particular it must queue the scheduler for a virtual
		// clock's run token), even when it lands before run() first parks.
		waiting: true,
	}
	s.vclk, _ = s.clk.(*clock.Virtual)
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Clock returns the clock driving this scheduler's timers.
func (s *Scheduler) Clock() clock.Clock { return s.clk }

// Start launches the scheduler goroutine. It is a no-op if already started,
// and for a pooled scheduler (whose executors — the pool workers — already
// run; posts work from construction).
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	if s.pool != nil {
		return
	}
	s.wg.Add(1)
	go s.run() //lint:goactor-ok this goroutine IS the scheduler actor; run() holds and releases the virtual clock's run token
}

// Close stops the scheduler after draining already-queued work, cancels
// outstanding timers, and waits for the goroutine to exit. It is safe to
// call more than once, but must not be called from the scheduler goroutine
// itself. Under a virtual clock the final drain runs outside the token
// regime (the closer may itself hold the token): the channel teardown
// ordering is unaffected because Channel.Close completes before schedulers
// are closed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.pool != nil {
			<-s.drained
			return
		}
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	if s.admitGate != nil {
		// Never strand an external producer on admission to a dead mailbox.
		close(s.admitGate)
		s.admitGate = nil
	}
	// Pooled: waiting==true means parked — not owned by any worker and not
	// in any pool queue (enqueue happens only on the post that clears
	// waiting, and closed now blocks further posts) — so there is nothing
	// left to drain. Otherwise a worker owns it or will pop it, and its
	// park-on-closed signals drained.
	parked := s.waiting
	s.mu.Unlock()
	close(s.closing)

	s.timerMu.Lock()
	for t := range s.timers {
		t.t.Stop()
	}
	s.timers = make(map[*schedTimer]struct{})
	s.timerMu.Unlock()

	if s.vclk != nil {
		// Reclaim a token grant no executor will collect anymore: pending
		// in the clock's run queue, already granted, or never issued — all
		// three are handled by CancelRunnable. A pooled worker mid-drain
		// skips token acquisition once closed, exactly like the dedicated
		// goroutine's final drain.
		s.vclk.CancelRunnable(s.grant)
	}
	if s.pool != nil {
		switch {
		case parked:
			s.signalDrained()
		case s.pool.detach(s):
			// Still queued, owned by no worker: drain the residue inline on
			// the closer's goroutine. This cannot wait for a pool worker —
			// under a virtual clock the closer may hold the run token the
			// workers are queued behind — and it cannot race an owner: the
			// detach under pool.mu removed the only pending claim.
			s.drain()
		}
		// Otherwise a worker owns the scheduler right now; its park-on-
		// closed signals drained (token acquisition is skipped once closed,
		// so it cannot block on a token the closer holds).
		<-s.drained
		return
	}
	s.wg.Wait()
}

// signalDrained marks the pooled scheduler fully drained (idempotent).
func (s *Scheduler) signalDrained() {
	s.drainOnce.Do(func() { close(s.drained) })
}

// post enqueues a task. Returns ErrSchedulerClosed after Close.
func (s *Scheduler) post(t task) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	s.queue = append(s.queue, t)
	d := s.depth.Add(1)
	if d > s.hwDepth.Load() {
		// Only posts raise the depth and posts hold mu, so a plain store
		// cannot lose a concurrent maximum.
		s.hwDepth.Store(d)
	}
	if s.boundHigh > 0 && s.admitGate == nil && d >= int64(s.boundHigh) {
		s.admitGate = make(chan struct{})
	}
	// Signal only when the scheduler goroutine is actually parked: while it
	// is draining a batch, posts just append. The waiting flag is only ever
	// set under mu immediately before cond.Wait (or, pooled, at a worker's
	// park), so a true value here means the executor is asleep and the
	// wake-up cannot be lost.
	wake := s.waiting
	s.waiting = false
	if s.pool != nil {
		// Hand the scheduler to the pool while still holding mu (lock order
		// s.mu -> pool.mu): once Close observes closed under mu, every
		// wake-up is either already in a pool queue — where Close's detach
		// can find it — or owned by a worker. In virtual mode the pool also
		// orders the token enqueue, atomically with the queue append.
		if wake {
			s.pool.enqueue(s)
		}
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if wake {
		if s.vclk != nil {
			// Queue the scheduler for the run token here, on the poster's
			// goroutine: posters are serialized by the token regime, so the
			// runnable order — and therefore the whole execution — is
			// deterministic. Exactly one enqueue per park/wake cycle (the
			// waiting flag was cleared above).
			s.vclk.EnqueueRunnable(s.grant)
		}
		s.cond.Signal()
	}
	return nil
}

// Do runs fn on the scheduler goroutine. It is the bridge for application
// and network code that must touch session state safely.
func (s *Scheduler) Do(fn func()) error {
	return s.post(task{fn: fn})
}

// After runs fn on the scheduler goroutine after d (per the scheduler's
// clock). The returned cancel function stops the timer if it has not fired.
func (s *Scheduler) After(d time.Duration, fn func()) (cancel func()) {
	st := &schedTimer{}
	st.t = s.clk.AfterFunc(d, func() {
		s.timerMu.Lock()
		delete(s.timers, st)
		s.timerMu.Unlock()
		_ = s.Do(fn) // a closed scheduler drops late timers by design
	})
	s.timerMu.Lock()
	s.timers[st] = struct{}{}
	s.timerMu.Unlock()
	return func() {
		st.t.Stop()
		s.timerMu.Lock()
		delete(s.timers, st)
		s.timerMu.Unlock()
	}
}

// Every runs fn on the scheduler goroutine every d until the returned
// cancel function is called or the scheduler closes.
func (s *Scheduler) Every(d time.Duration, fn func()) (cancel func()) {
	var (
		mu       sync.Mutex
		stopped  bool
		stopCurr func()
	)
	var arm func()
	arm = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		stopCurr = s.After(d, func() {
			fn()
			arm()
		})
	}
	arm()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if stopCurr != nil {
			stopCurr()
		}
	}
}

// Flush blocks until every task queued before the call has been processed.
// It is intended for tests and for orderly shutdown sequencing; calling it
// from the scheduler goroutine would deadlock and is therefore forbidden.
func (s *Scheduler) Flush() {
	done := make(chan struct{})
	if err := s.Do(func() { close(done) }); err != nil {
		return // closed: queue already drained
	}
	s.clk.Wait(done)
}

// run is the scheduler loop: a double-buffered batch dequeue. Instead of a
// lock round trip per task, the whole pending queue is swapped out under one
// acquisition and the batch is dispatched lock-free; the drained batch slice
// becomes the producers' next queue buffer, so steady state recycles two
// slices with no allocation.
func (s *Scheduler) run() {
	defer s.wg.Done()
	defer s.releaseToken()
	var batch []task
	for {
		s.mu.Lock()
		if s.admitGate != nil && s.depth.Load() <= int64(s.boundLow) {
			// Drained below the low watermark: readmit external producers.
			close(s.admitGate)
			s.admitGate = nil
		}
		for len(s.queue) == 0 && !s.closed {
			s.waiting = true
			if s.vclk != nil && s.tokenHeld {
				// Release the run token before parking, outside mu (lock
				// order: never hold s.mu across clock calls that can
				// block). Re-check the park condition afterwards: a post
				// may have landed in the window.
				s.mu.Unlock()
				s.releaseToken()
				s.mu.Lock()
				if len(s.queue) > 0 || s.closed {
					break
				}
			}
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // closed and fully drained
			s.mu.Unlock()
			return
		}
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			// Serialize with every other actor of a virtual clock. A
			// closing scheduler skips this: its remaining work is teardown
			// debris, and the closer may be holding the token.
			s.acquireToken()
		}
		s.mu.Lock()
		batch, s.queue = s.queue, batch[:0]
		s.mu.Unlock()

		for i := range batch {
			s.dispatch(batch[i])
		}
		s.depth.Add(int64(-len(batch)))
		clear(batch) // release the events for the GC in one bulk write
	}
}

// drain is the pooled-mode counterpart of run: the owning pool worker (or,
// during Close, the closer) drains the mailbox to empty and parks the
// scheduler. Ownership is exclusive from pop to park, so the loop body is
// the same double-buffered batch dequeue as run — including holding the
// virtual clock's run token across batches — with one difference at the
// park: releasing the token, re-setting waiting and (when closed)
// signalling the final drain happen under a single mu hold, so the next
// post observes a fully-parked scheduler and re-enqueues it exactly once.
func (s *Scheduler) drain() {
	var batch []task
	for {
		s.mu.Lock()
		if batch != nil {
			s.spare = batch[:0]
			batch = nil
		}
		if s.admitGate != nil && s.depth.Load() <= int64(s.boundLow) {
			close(s.admitGate)
			s.admitGate = nil
		}
		if len(s.queue) == 0 {
			s.releaseToken()
			s.waiting = true
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.signalDrained()
			}
			return
		}
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.acquireToken()
		}
		s.mu.Lock()
		batch = s.queue
		if s.spare != nil {
			s.queue = s.spare[:0]
			s.spare = nil
		} else {
			s.queue = nil
		}
		s.mu.Unlock()

		for i := range batch {
			s.dispatch(batch[i])
		}
		s.depth.Add(int64(-len(batch)))
		clear(batch)
	}
}

// SetMailboxBounds enables bounded-mailbox mode: once the mailbox depth
// reaches high, AdmitExternal gates external producers until a drain
// brings it back to low (hysteresis, so admission does not thrash at the
// boundary). Passing high <= 0 disables the bound. Intra-stack insertions
// are never gated — see the type comment for why.
func (s *Scheduler) SetMailboxBounds(high, low int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if high <= 0 {
		s.boundHigh, s.boundLow = 0, 0
		if s.admitGate != nil {
			close(s.admitGate)
			s.admitGate = nil
		}
		return
	}
	if low < 0 {
		low = 0
	}
	if low >= high {
		low = high - 1
	}
	s.boundHigh, s.boundLow = high, low
}

// AdmitExternal reports whether external work may enter the mailbox: nil
// means go ahead; a non-nil channel means the mailbox is saturated, and
// the channel is closed when it drains below the low watermark (wait on
// it through the scheduler's clock, then re-check). Admission is
// advisory — an external producer that posts anyway is only ever delayed,
// never rejected — so the depth bound is soft by the number of concurrent
// producers.
func (s *Scheduler) AdmitExternal() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.admitGate == nil {
		return nil
	}
	return s.admitGate
}

// MailboxDepth returns the number of queued-but-undispatched tasks.
func (s *Scheduler) MailboxDepth() int { return int(s.depth.Load()) }

// MailboxHighWater returns the maximum mailbox depth ever observed.
func (s *Scheduler) MailboxHighWater() int { return int(s.hwDepth.Load()) }

// acquireToken blocks until this scheduler holds the virtual clock's run
// token (no-op on wall clocks or when already held).
func (s *Scheduler) acquireToken() {
	if s.vclk == nil || s.tokenHeld {
		return
	}
	select {
	case <-s.grant:
		s.tokenHeld = true
	case <-s.vclk.Done():
		// Clock stopped: run unmanaged.
	case <-s.closing:
		// Close() reclaims the pending grant via CancelRunnable.
	}
}

// releaseToken returns the run token if held.
func (s *Scheduler) releaseToken() {
	if s.vclk == nil || !s.tokenHeld {
		return
	}
	s.tokenHeld = false
	s.vclk.Release()
}

// dispatch executes one task.
func (s *Scheduler) dispatch(t task) {
	switch {
	case t.fn != nil:
		t.fn()
	case t.direct != nil:
		t.direct.Handle(t.ch, t.ev)
	case t.ch != nil:
		t.ch.step(t.ev)
	}
}
