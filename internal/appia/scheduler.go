package appia

import (
	"errors"
	"sync"
	"time"
)

// ErrSchedulerClosed is returned by insertions into a stopped scheduler.
var ErrSchedulerClosed = errors.New("appia: scheduler closed")

// task is one unit of scheduler work: either a routed event hop, a direct
// delivery to a session, or a plain function (timer callbacks).
type task struct {
	ch     *Channel
	ev     Event
	direct Session // when non-nil, deliver ev straight to this session
	fn     func()  // when non-nil, just run it
}

// Scheduler executes all the sessions of one protocol stack on a single
// goroutine, in the style of the Appia event scheduler. Channels that share
// sessions must share the scheduler; in this codebase every simulated node
// owns exactly one scheduler for all its channels.
//
// The mailbox is unbounded: insertions never block, which is essential
// because the scheduler goroutine itself re-queues events while forwarding
// them.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task // producer-side buffer; run() swaps it out wholesale
	waiting bool   // the scheduler goroutine is parked in cond.Wait
	closed  bool

	wg      sync.WaitGroup
	started bool

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}
}

// NewScheduler returns a scheduler; call Start before inserting events.
func NewScheduler() *Scheduler {
	s := &Scheduler{timers: make(map[*time.Timer]struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start launches the scheduler goroutine. It is a no-op if already started.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.wg.Add(1)
	go s.run()
}

// Close stops the scheduler after draining already-queued work, cancels
// outstanding timers, and waits for the goroutine to exit. It is safe to
// call more than once, but must not be called from the scheduler goroutine
// itself.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	s.timerMu.Lock()
	for t := range s.timers {
		t.Stop()
	}
	s.timers = make(map[*time.Timer]struct{})
	s.timerMu.Unlock()

	s.wg.Wait()
}

// post enqueues a task. Returns ErrSchedulerClosed after Close.
func (s *Scheduler) post(t task) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	s.queue = append(s.queue, t)
	// Signal only when the scheduler goroutine is actually parked: while it
	// is draining a batch, posts just append. The waiting flag is only ever
	// set under mu immediately before cond.Wait, so a true value here means
	// the goroutine is (or is about to be, atomically with unlocking mu)
	// asleep and the signal cannot be lost.
	wake := s.waiting
	s.waiting = false
	s.mu.Unlock()
	if wake {
		s.cond.Signal()
	}
	return nil
}

// Do runs fn on the scheduler goroutine. It is the bridge for application
// and network code that must touch session state safely.
func (s *Scheduler) Do(fn func()) error {
	return s.post(task{fn: fn})
}

// After runs fn on the scheduler goroutine after d. The returned cancel
// function stops the timer if it has not fired.
func (s *Scheduler) After(d time.Duration, fn func()) (cancel func()) {
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		s.timerMu.Lock()
		delete(s.timers, t)
		s.timerMu.Unlock()
		_ = s.Do(fn) // a closed scheduler drops late timers by design
	})
	s.timerMu.Lock()
	s.timers[t] = struct{}{}
	s.timerMu.Unlock()
	return func() {
		t.Stop()
		s.timerMu.Lock()
		delete(s.timers, t)
		s.timerMu.Unlock()
	}
}

// Every runs fn on the scheduler goroutine every d until the returned
// cancel function is called or the scheduler closes.
func (s *Scheduler) Every(d time.Duration, fn func()) (cancel func()) {
	var (
		mu       sync.Mutex
		stopped  bool
		stopCurr func()
	)
	var arm func()
	arm = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		stopCurr = s.After(d, func() {
			fn()
			arm()
		})
	}
	arm()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if stopCurr != nil {
			stopCurr()
		}
	}
}

// Flush blocks until every task queued before the call has been processed.
// It is intended for tests and for orderly shutdown sequencing; calling it
// from the scheduler goroutine would deadlock and is therefore forbidden.
func (s *Scheduler) Flush() {
	done := make(chan struct{})
	if err := s.Do(func() { close(done) }); err != nil {
		return // closed: queue already drained
	}
	<-done
}

// run is the scheduler loop: a double-buffered batch dequeue. Instead of a
// lock round trip per task, the whole pending queue is swapped out under one
// acquisition and the batch is dispatched lock-free; the drained batch slice
// becomes the producers' next queue buffer, so steady state recycles two
// slices with no allocation.
func (s *Scheduler) run() {
	defer s.wg.Done()
	var batch []task
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.waiting = true
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // closed and fully drained
			s.mu.Unlock()
			return
		}
		batch, s.queue = s.queue, batch[:0]
		s.mu.Unlock()

		for i := range batch {
			s.dispatch(batch[i])
		}
		clear(batch) // release the events for the GC in one bulk write
	}
}

// dispatch executes one task.
func (s *Scheduler) dispatch(t task) {
	switch {
	case t.fn != nil:
		t.fn()
	case t.direct != nil:
		t.direct.Handle(t.ch, t.ev)
	case t.ch != nil:
		t.ch.step(t.ev)
	}
}
