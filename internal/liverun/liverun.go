// Package liverun drives one live Morpheus participant over real UDP
// sockets: it builds a udpnet substrate from a static peer directory,
// attaches the endpoint, starts the full middleware (control channel,
// context dissemination, adaptation policies) and runs a simple
// send/receive workload, reporting progress as parseable lines on an
// io.Writer. It is the engine behind cmd/morpheus-node and the
// examples/live multi-process demo.
//
// Output lines (one event per line, stable prefixes for scripting):
//
//	ready id=<id> addr=<udp addr> config=<name>
//	joined id=<id> group=<name> config=<cfg>
//	recv id=<id> group=<name> from=<src> payload=<text>
//	view id=<id> members=<comma list>
//	config id=<id> epoch=<n> name=<config>
//	reconfigured id=<id> epoch=<n> config=<name> took=<duration>
//	done id=<id> sent=<n> received=<n> config=<name> tx=<msgs>
//	signal id=<id> sig=<name>
//	left id=<id> group=<name>
//
// With Options.JoinGroups set, the process additionally joins the named
// groups on the same node (the multi-group runtime: one endpoint, one
// control plane, N data stacks) and runs the send/receive workload in each
// of them too.
//
// With Options.JoinVia set, the process is a *late joiner*: it enters the
// already-running groups through one seed member via state transfer,
// starting gap-free at the current delivery frontier. With
// Options.HandleSignals, SIGTERM/SIGINT triggers a graceful departure
// (Leave every group, announce it, close) instead of an abrupt exit.
package liverun

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"morpheus"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/core"
	"morpheus/internal/netio"
	"morpheus/internal/netio/udpnet"
)

// Options configures one live participant.
type Options struct {
	// ID is this process's node identifier (must appear in Peers).
	ID netio.NodeID
	// Kind is the device class; a Mobile member makes the group hybrid,
	// which is what triggers the Mecho adaptation under Adapt.
	Kind netio.Kind
	// Peers maps every participant to its UDP address.
	Peers map[netio.NodeID]string
	// Groups maps segment names to IP multicast group addresses
	// (optional; the plain stack needs none).
	Groups map[string]string
	// Segments lists segment attachments (default ["lan"]).
	Segments []string
	// Members is the bootstrap membership (default: all peer IDs).
	Members []netio.NodeID
	// Adapt enables the paper's hybrid-Mecho adaptation policy (default
	// group only; extra groups stay on their static plain stack).
	Adapt bool
	// JoinGroups names additional groups to join beyond the default one;
	// every member must list the same names. The send/receive workload
	// runs in each group independently.
	JoinGroups []string
	// JoinVia, when nonzero, makes this process a late joiner: it boots a
	// singleton control plane with no groups, is admitted to the control
	// group through the named seed member, and then enters the default
	// group — and every JoinGroups entry — via the seed's state transfer,
	// starting gap-free at the group's current delivery frontier. The seed
	// group must already be running. Members is ignored in this mode.
	JoinVia netio.NodeID
	// HandleSignals traps SIGTERM/SIGINT: on the first signal the process
	// leaves every group gracefully (announcing each departure so the
	// survivors release flow-control state within one stability round),
	// closes the node and returns nil. A second signal kills the process
	// the hard way via the default disposition.
	HandleSignals bool
	// Linger keeps the process alive after its quotas are met: instead of
	// returning right after the "done" line it keeps serving the group
	// (delivering, acknowledging, relaying) until a trapped signal asks it
	// to leave, or Timeout expires. Requires HandleSignals.
	Linger bool
	// SendCount messages are multicast to each group ("<id> says hello <i>").
	SendCount int
	// SendInterval paces the sends (default 20ms).
	SendInterval time.Duration
	// ExpectRecv is how many messages from other members to wait for in
	// each group before declaring success.
	ExpectRecv int
	// ExpectConfig, when non-empty, additionally requires the deployed
	// configuration to reach this name (e.g. "mecho:relay=1") — the
	// observable proof a live reconfiguration completed.
	ExpectConfig string
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// Verbose also logs middleware diagnostics to the writer.
	Verbose bool
}

func (o *Options) defaults() error {
	if _, ok := o.Peers[o.ID]; !ok {
		return fmt.Errorf("liverun: own id %d not in peer directory", o.ID)
	}
	if o.Kind == 0 {
		o.Kind = netio.Fixed
	}
	if len(o.Segments) == 0 {
		o.Segments = []string{"lan"}
	}
	if len(o.Members) == 0 {
		for id := range o.Peers {
			o.Members = append(o.Members, id)
		}
		sort.Slice(o.Members, func(i, j int) bool { return o.Members[i] < o.Members[j] })
	}
	if o.SendInterval <= 0 {
		o.SendInterval = 20 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.JoinVia != 0 {
		if _, ok := o.Peers[o.JoinVia]; !ok {
			return fmt.Errorf("liverun: join seed %d not in peer directory", o.JoinVia)
		}
		if o.JoinVia == o.ID {
			return fmt.Errorf("liverun: cannot join via self")
		}
	}
	if o.Linger {
		// Lingering has no exit path without a signal to leave on.
		o.HandleSignals = true
	}
	return nil
}

// FormatMembers renders a member list for the view output line.
func FormatMembers(ms []netio.NodeID) string {
	return appiaxml.FormatNodeIDs(ms)
}

// Run executes the workload and blocks until success or timeout. The
// returned error is nil exactly when every expectation was met.
func Run(opts Options, out io.Writer) error {
	if err := opts.defaults(); err != nil {
		return err
	}
	var outMu sync.Mutex
	emit := func(format string, args ...any) {
		outMu.Lock()
		fmt.Fprintf(out, format+"\n", args...)
		outMu.Unlock()
	}

	nw, err := udpnet.New(udpnet.Config{Peers: opts.Peers, Groups: opts.Groups})
	if err != nil {
		return err
	}
	defer nw.Close()
	ep, err := nw.Attach(netio.EndpointConfig{ID: opts.ID, Kind: opts.Kind, Segments: opts.Segments})
	if err != nil {
		return err
	}

	var recvMu sync.Mutex
	received := make(map[string]int) // per-group deliveries from other members
	recvCond := sync.NewCond(&recvMu)
	countRecv := func(gname string, from morpheus.NodeID, payload []byte) {
		emit("recv id=%d group=%s from=%d payload=%s", opts.ID, gname, from, payload)
		if from == opts.ID {
			return // local echo of one's own cast: not network delivery
		}
		recvMu.Lock()
		received[gname]++
		recvMu.Unlock()
		recvCond.Broadcast()
	}

	var policies []morpheus.Policy
	if opts.Adapt {
		policies = []morpheus.Policy{core.HybridMechoPolicy{}}
	}
	var logf func(string, ...any)
	if opts.Verbose {
		logf = func(format string, args ...any) { emit("log id=%d "+format, append([]any{opts.ID}, args...)...) }
	}
	onView := func(v morpheus.View) {
		emit("view id=%d members=%s", opts.ID, FormatMembers(v.Members))
	}
	cfg := morpheus.Config{
		Endpoint:        ep,
		Members:         opts.Members,
		Policies:        policies,
		ContextInterval: 100 * time.Millisecond,
		EvalInterval:    150 * time.Millisecond,
		PublishOnChange: true,
		// Live processes start with real skew: a generous failure
		// detector keeps the group from evicting a peer that is still
		// binding its sockets.
		Heartbeat:    200 * time.Millisecond,
		SuspectAfter: 5 * time.Second,
		OnMessage: func(from morpheus.NodeID, payload []byte) {
			countRecv(morpheus.DefaultGroup, from, payload)
		},
		OnViewChange: onView,
		OnReconfigured: func(epoch uint64, name string, took time.Duration) {
			emit("reconfigured id=%d epoch=%d config=%s took=%s", opts.ID, epoch, name, took.Round(time.Millisecond))
		},
		Logf: logf,
	}
	if opts.JoinVia != 0 {
		// Late joiner: a singleton control plane with no hosted groups; the
		// groups are entered below through the seed's state transfer.
		cfg.Members = []netio.NodeID{opts.ID}
		cfg.NoDefaultGroup = true
	}
	node, err := morpheus.Start(cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	emit("ready id=%d addr=%s config=%s", opts.ID, opts.Peers[opts.ID], node.ConfigName())

	// Graceful departure on SIGTERM/SIGINT: leave every group (announcing
	// each departure through the control plane so the survivors' views —
	// and the flow-control credits held against this node — recover within
	// one stability round), give the announcements a beat to stabilize,
	// then close.
	var stopped atomic.Bool
	stopCh := make(chan struct{})
	if opts.HandleSignals {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(sigCh)
		go func() {
			sig, ok := <-sigCh
			if !ok {
				return
			}
			signal.Stop(sigCh) // a second signal takes the default (hard) path
			emit("signal id=%d sig=%s", opts.ID, sig)
			stopped.Store(true)
			close(stopCh)
			recvCond.Broadcast()
		}()
	}
	leaveAll := func() {
		for _, g := range node.Groups() {
			gname := g.Name()
			if err := g.Leave(); err != nil {
				emit("left id=%d group=%s err=%v", opts.ID, gname, err)
				continue
			}
			emit("left id=%d group=%s", opts.ID, gname)
		}
		// The leave announcements are reliable casts on the control
		// channel; keep it alive long enough for them to reach everyone.
		time.Sleep(300 * time.Millisecond) //lint:wallclock-ok keeps the live process up while leave casts drain on real sockets
	}
	gracefulExit := func(sent, got int) error {
		leaveAll()
		emit("done id=%d sent=%d received=%d config=%s groups=%d tx=%d",
			opts.ID, sent, got, node.ConfigName(), 1+len(opts.JoinGroups), ep.Counters().TotalTx())
		return nil
	}

	// The group plane: the bootstrap path hosts the default group from
	// Start and joins the extras; a late joiner enters every one of them
	// through the seed instead.
	var sendGroups []*morpheus.Group
	if opts.JoinVia != 0 {
		g, err := node.JoinVia(morpheus.DefaultGroup, opts.JoinVia, morpheus.GroupConfig{
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				countRecv(morpheus.DefaultGroup, from, payload)
			},
			OnViewChange: onView,
		})
		if err != nil {
			return fmt.Errorf("liverun: join %q via %d: %w", morpheus.DefaultGroup, opts.JoinVia, err)
		}
		emit("joined id=%d group=%s config=%s", opts.ID, morpheus.DefaultGroup, g.ConfigName())
		sendGroups = append(sendGroups, g)
	} else {
		sendGroups = append(sendGroups, node.Group(morpheus.DefaultGroup))
	}
	for _, gname := range opts.JoinGroups {
		gname := gname
		gc := morpheus.GroupConfig{
			Members: opts.Members,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				countRecv(gname, from, payload)
			},
		}
		var g *morpheus.Group
		var jerr error
		if opts.JoinVia != 0 {
			g, jerr = node.JoinVia(gname, opts.JoinVia, gc)
		} else {
			g, jerr = node.Join(gname, gc)
		}
		if jerr != nil {
			return fmt.Errorf("liverun: join %q: %w", gname, jerr)
		}
		emit("joined id=%d group=%s config=%s", opts.ID, gname, g.ConfigName())
		sendGroups = append(sendGroups, g)
	}

	deadline := time.Now().Add(opts.Timeout) //lint:wallclock-ok wall deadline for a live multi-process run

	// Report configuration changes (every member deploys, not just the
	// coordinator that emits "reconfigured").
	cfgDone := make(chan struct{})
	defer close(cfgDone)
	go func() {
		last := node.ConfigName()
		tick := time.NewTicker(50 * time.Millisecond) //lint:wallclock-ok polls live processes for config convergence in real time
		defer tick.Stop()
		for {
			select {
			case <-cfgDone:
				return
			case <-tick.C:
				// An empty name is the window where no default group is
				// hosted (late joiner before admission, after leaving).
				if name := node.ConfigName(); name != last && name != "" {
					last = name
					emit("config id=%d epoch=%d name=%s", opts.ID, node.Epoch(), name)
				}
			}
		}
	}()

	// Give every process a beat to come up before the first send; the NAK
	// layer repairs anything a slow starter misses anyway.
	time.Sleep(300 * time.Millisecond) //lint:wallclock-ok real startup grace for live processes

	countGot := func() int {
		recvMu.Lock()
		defer recvMu.Unlock()
		n := 0
		for _, c := range received {
			n += c
		}
		return n
	}

	sent := 0
	for i := 0; i < opts.SendCount; i++ {
		if stopped.Load() {
			return gracefulExit(sent, countGot())
		}
		for _, g := range sendGroups {
			if err := g.Send(fmt.Appendf(nil, "%d says hello %s %d", opts.ID, g.Name(), i)); err != nil {
				return fmt.Errorf("liverun: send %d in %q: %w", i, g.Name(), err)
			}
			sent++
		}
		time.Sleep(opts.SendInterval) //lint:wallclock-ok paces live sends on real sockets
	}

	// Wait for the receive quota in every group.
	quotaMet := func() (string, bool) {
		for _, g := range sendGroups {
			if received[g.Name()] < opts.ExpectRecv {
				return g.Name(), false
			}
		}
		return "", true
	}
	got := 0
	recvMu.Lock()
	for {
		lagging, ok := quotaMet()
		if ok {
			break
		}
		if stopped.Load() {
			recvMu.Unlock()
			return gracefulExit(sent, countGot())
		}
		if time.Now().After(deadline) { //lint:wallclock-ok wall-deadline check for the live run
			gotLagging := received[lagging]
			recvMu.Unlock()
			return fmt.Errorf("liverun: timeout with %d/%d messages received in group %q",
				gotLagging, opts.ExpectRecv, lagging)
		}
		waitCondTimeout(recvCond, 100*time.Millisecond)
	}
	for _, n := range received {
		got += n
	}
	recvMu.Unlock()

	// Wait for the expected configuration (proof the group survived a
	// live reconfiguration).
	for opts.ExpectConfig != "" && node.ConfigName() != opts.ExpectConfig {
		if stopped.Load() {
			return gracefulExit(sent, countGot())
		}
		if time.Now().After(deadline) { //lint:wallclock-ok wall-deadline check for the live run
			return fmt.Errorf("liverun: timeout with config %q, want %q", node.ConfigName(), opts.ExpectConfig)
		}
		time.Sleep(50 * time.Millisecond) //lint:wallclock-ok real-time polling backoff
	}

	emit("done id=%d sent=%d received=%d config=%s groups=%d tx=%d",
		opts.ID, sent, got, node.ConfigName(), 1+len(opts.JoinGroups), ep.Counters().TotalTx())

	// Linger: keep serving the groups (delivering, acknowledging,
	// relaying) until a signal asks for a graceful departure.
	if opts.Linger {
		select {
		case <-stopCh:
			leaveAll()
			return nil
		case <-time.After(time.Until(deadline)): //lint:wallclock-ok linger timeout waiting on a real departure signal
			return fmt.Errorf("liverun: linger timeout with no departure signal")
		}
	}
	return nil
}

// waitCondTimeout waits on c for at most d; c's lock must be held.
func waitCondTimeout(c *sync.Cond, d time.Duration) {
	t := time.AfterFunc(d, c.Broadcast) //lint:wallclock-ok wall timeout for a Cond wait during live teardown
	c.Wait()
	t.Stop()
}

// ParsePeers parses a "1=127.0.0.1:9001,2=127.0.0.1:9002" directory.
func ParsePeers(s string) (map[netio.NodeID]string, error) {
	peers := make(map[netio.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("liverun: peer %q: want id=host:port", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("liverun: peer id %q: %w", id, err)
		}
		peers[netio.NodeID(n)] = strings.TrimSpace(addr)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("liverun: empty peer directory %q", s)
	}
	return peers, nil
}

// ParseGroups parses a "lan=239.77.7.1:9700" segment-to-group map.
func ParseGroups(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	groups := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		seg, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("liverun: group %q: want segment=group:port", part)
		}
		groups[strings.TrimSpace(seg)] = strings.TrimSpace(addr)
	}
	return groups, nil
}

// ParseMembers parses a "1,2,100" member list.
func ParseMembers(s string) ([]netio.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ms []netio.NodeID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("liverun: member %q: %w", part, err)
		}
		ms = append(ms, netio.NodeID(n))
	}
	return ms, nil
}
