package stack

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/group"
	"morpheus/internal/vnet"
)

// plainDoc composes the standard reliable stack (mirrors core.PlainConfig,
// duplicated here to avoid an import cycle in tests).
func plainDoc() *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: "data",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "group.fanout"},
			{Layer: "group.nak"},
			{Layer: "group.gms"},
		},
	}}}
}

func mechoDoc(relay appia.NodeID) *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: "data",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "mecho", Params: []appiaxml.ParamSpec{
				{Name: "relay", Value: fmt.Sprintf("%d", relay)},
			}},
			{Layer: "group.nak"},
			{Layer: "group.gms"},
		},
	}}}
}

type mgrNode struct {
	id        appia.NodeID
	vn        *vnet.Node
	sched     *appia.Scheduler
	mgr       *Manager
	mu        sync.Mutex
	delivered []string
}

func (m *mgrNode) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.delivered)
}

func buildManagers(t *testing.T, n int) []*mgrNode {
	t.Helper()
	w := vnet.NewWorld(12)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	RegisterAllWireEvents(nil)

	members := make([]appia.NodeID, n)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	var nodes []*mgrNode
	for _, id := range members {
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		m := &mgrNode{id: id, vn: vn, sched: appia.NewScheduler()}
		t.Cleanup(m.sched.Close)
		m.mgr = NewManager(ManagerConfig{
			Node: vn, Self: id, Scheduler: m.sched,
			OnDeliver: func(ev *group.CastEvent) {
				m.mu.Lock()
				m.delivered = append(m.delivered, string(ev.Msg.Bytes()))
				m.mu.Unlock()
			},
			Logf: func(string, ...any) {},
		})
		if err := m.mgr.Deploy(plainDoc(), "plain", 1, members); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = m.mgr.Close() })
		nodes = append(nodes, m)
	}
	return nodes
}

func TestManagerDeployAndSend(t *testing.T) {
	nodes := buildManagers(t, 3)
	if nodes[0].mgr.Epoch() != 1 || nodes[0].mgr.ConfigName() != "plain" {
		t.Fatalf("epoch=%d config=%q", nodes[0].mgr.Epoch(), nodes[0].mgr.ConfigName())
	}
	if err := nodes[0].mgr.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, m := range nodes {
			if m.count() < 1 {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatal("message never delivered everywhere")
}

func TestManagerSendBeforeDeploy(t *testing.T) {
	w := vnet.NewWorld(1)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	vn, err := w.AddNode(1, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	sched := appia.NewScheduler()
	t.Cleanup(sched.Close)
	m := NewManager(ManagerConfig{Node: vn, Self: 1, Scheduler: sched, Logf: func(string, ...any) {}})
	if err := m.Send([]byte("x")); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("err = %v", err)
	}
}

// TestManagerReconfigure exercises the full §3.3 procedure across three
// nodes, with traffic before, during and after.
func TestManagerReconfigure(t *testing.T) {
	nodes := buildManagers(t, 3)
	if err := nodes[1].mgr.Send([]byte("pre")); err != nil {
		t.Fatal(err)
	}

	// All nodes reconfigure concurrently (as Core would make them).
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	members := []appia.NodeID{1, 2, 3}
	for i, m := range nodes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = m.mgr.Reconfigure(mechoDoc(1), "mecho", 2, members)
		}()
	}
	// Send during the reconfiguration window: must be buffered, not lost.
	if err := nodes[0].mgr.Send([]byte("during")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d reconfigure: %v", i+1, err)
		}
	}
	for _, m := range nodes {
		if m.mgr.Epoch() != 2 || m.mgr.ConfigName() != "mecho" {
			t.Fatalf("node %d: epoch=%d config=%q", m.id, m.mgr.Epoch(), m.mgr.ConfigName())
		}
	}
	if err := nodes[2].mgr.Send([]byte("post")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, m := range nodes {
			if m.count() < 3 { // pre + during + post
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	for _, m := range nodes {
		t.Logf("node %d delivered %v", m.id, m.delivered)
	}
	t.Fatal("messages lost across reconfiguration")
}

func TestManagerStaleEpochRejected(t *testing.T) {
	nodes := buildManagers(t, 2)
	err := nodes[0].mgr.Reconfigure(plainDoc(), "plain", 1, []appia.NodeID{1, 2})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v", err)
	}
}

func TestStandardRegistryNames(t *testing.T) {
	reg := NewStandardRegistry()
	want := []string{
		"epidemic", "fec", "group.causal", "group.fanout", "group.gms",
		"group.nak", "group.total", "mecho", "transport.nativemcast", "transport.ptp",
	}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestMechoModeResolution(t *testing.T) {
	w := vnet.NewWorld(2)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	fixedN, err := w.AddNode(1, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	mobileN, err := w.AddNode(2, vnet.Mobile, "wlan")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		mode  string
		self  appia.NodeID
		node  *vnet.Node
		relay appia.NodeID
		want  string
		bad   bool
	}{
		{mode: "wireless", self: 2, node: mobileN, relay: 1, want: "wireless"},
		{mode: "wired", self: 1, node: fixedN, relay: 1, want: "wired"},
		{mode: "auto", self: 1, node: fixedN, relay: 1, want: "wired"},     // the relay echoes
		{mode: "auto", self: 2, node: mobileN, relay: 1, want: "wireless"}, // mobile non-relay
		{mode: "auto", self: 1, node: fixedN, relay: 9, want: "wired"},     // fixed non-relay
		{mode: "bogus", self: 1, node: fixedN, relay: 1, bad: true},
	}
	for _, tc := range cases {
		env := &appiaxml.Env{Self: tc.self, Node: tc.node}
		got, err := resolveMechoMode(tc.mode, env, tc.relay)
		if tc.bad {
			if err == nil {
				t.Fatalf("mode %q accepted", tc.mode)
			}
			continue
		}
		if err != nil {
			t.Fatalf("mode %q: %v", tc.mode, err)
		}
		if got.String() != tc.want {
			t.Fatalf("mode %q self %d: got %v want %v", tc.mode, tc.self, got, tc.want)
		}
	}
}
