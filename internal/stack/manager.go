package stack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/group"
	"morpheus/internal/netio"
)

// Manager errors.
var (
	ErrNotDeployed = errors.New("stack: no configuration deployed")
	ErrStaleEpoch  = errors.New("stack: stale configuration epoch")
)

// ManagerConfig configures a StackManager.
type ManagerConfig struct {
	// Node is the local network attachment (any netio substrate).
	Node netio.Endpoint
	// Self is this node's identifier.
	Self appia.NodeID
	// Scheduler runs all of the node's channels.
	Scheduler *appia.Scheduler
	// Registry resolves layer names; nil means NewStandardRegistry().
	Registry *appiaxml.LayerRegistry
	// Events resolves wire event kinds; nil means the process default.
	Events *appia.EventKindRegistry
	// ChannelName is the data channel name in documents (default "data").
	ChannelName string
	// BasePort prefixes the per-epoch vnet port (default "data").
	BasePort string
	// QuiesceTimeout bounds the wait for view-synchronous quiescence
	// before a reconfiguration force-closes the old channel.
	QuiesceTimeout time.Duration
	// OnDeliver receives application casts from whatever channel is
	// currently deployed. Called on the scheduler goroutine.
	OnDeliver func(ev *group.CastEvent)
	// OnViewChange, when set, observes data-channel views.
	OnViewChange func(v group.View)
	// Logf receives diagnostics; nil discards them (library code never
	// writes to the global logger).
	Logf netio.Logf
}

func (c *ManagerConfig) channelName() string {
	if c.ChannelName == "" {
		return "data"
	}
	return c.ChannelName
}

func (c *ManagerConfig) basePort() string {
	if c.BasePort == "" {
		return "data"
	}
	return c.BasePort
}

func (c *ManagerConfig) quiesceTimeout() time.Duration {
	if c.QuiesceTimeout <= 0 {
		return defaultQuiesceTimeout
	}
	return c.QuiesceTimeout
}

func (c *ManagerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Manager is the Core sub-system's local module: it owns the node's data
// channel, deploys XML-described configurations, and performs the §3.3
// reconfiguration procedure — quiesce via view synchrony, tear down,
// rebuild from XML, resume buffered traffic on the new stack.
type Manager struct {
	cfg   ManagerConfig
	reg   *appiaxml.LayerRegistry
	state struct {
		sync.Mutex
		ch         *appia.Channel
		epoch      uint64
		configName string
		members    []appia.NodeID
		buffered   [][]byte // payloads held during reconfiguration
		quiesced   chan struct{}
		// quiescentSeen remembers that the current channel already
		// reported quiescence; the flush can complete before this node's
		// Core even learns a reconfiguration is underway (control and
		// data channels are not mutually ordered), so the signal must be
		// level- rather than edge-triggered.
		quiescentSeen bool
		reconfig      bool
	}
}

// NewManager returns a manager with nothing deployed yet. The standard
// wire event kinds are registered in cfg.Events (or the process default)
// so a freshly constructed manager can always decode its own traffic.
func NewManager(cfg ManagerConfig) *Manager {
	reg := cfg.Registry
	if reg == nil {
		reg = NewStandardRegistry()
	}
	RegisterAllWireEvents(cfg.Events)
	return &Manager{cfg: cfg, reg: reg}
}

// Epoch returns the current configuration epoch.
func (m *Manager) Epoch() uint64 {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.epoch
}

// ConfigName returns the name of the deployed configuration.
func (m *Manager) ConfigName() string {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.configName
}

// Channel returns the live data channel (nil before the first Deploy).
func (m *Manager) Channel() *appia.Channel {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.ch
}

// Deploy builds and starts the data channel from the document, replacing
// nothing — it is the initial deployment. Epoch starts at 1 unless the
// caller passes a later one.
func (m *Manager) Deploy(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	ch, err := m.build(doc, epoch, members)
	if err != nil {
		return err
	}
	if err := ch.Start(); err != nil {
		return err
	}
	if !ch.WaitReady(m.cfg.quiesceTimeout()) {
		return fmt.Errorf("stack: channel for epoch %d never became ready", epoch)
	}
	m.state.Lock()
	m.state.ch = ch
	m.state.epoch = epoch
	m.state.configName = configName
	m.state.members = append([]appia.NodeID(nil), members...)
	m.state.Unlock()
	return nil
}

// build instantiates the channel for an epoch.
func (m *Manager) build(doc *appiaxml.Document, epoch uint64, members []appia.NodeID) (*appia.Channel, error) {
	spec, err := doc.Channel(m.cfg.channelName())
	if err != nil {
		return nil, err
	}
	env := &appiaxml.Env{
		Node:      m.cfg.Node,
		Self:      m.cfg.Self,
		Members:   group.NormalizeMembers(append([]appia.NodeID(nil), members...)),
		Port:      fmt.Sprintf("%s@%d", m.cfg.basePort(), epoch),
		Registry:  m.cfg.Events,
		Scheduler: m.cfg.Scheduler,
		Deliver:   m.deliver,
		Logf:      m.cfg.logf,
	}
	return appiaxml.BuildChannel(spec, m.reg, env)
}

// deliver fans channel upcalls out to the application and the manager's
// own lifecycle tracking.
func (m *Manager) deliver(ev appia.Event) {
	switch e := ev.(type) {
	case *group.Quiescent:
		m.state.Lock()
		m.state.quiescentSeen = true
		q := m.state.quiesced
		m.state.Unlock()
		if q != nil {
			select {
			case <-q:
			default:
				close(q)
			}
		}
	case *group.ViewInstall:
		if m.cfg.OnViewChange != nil {
			m.cfg.OnViewChange(e.View)
		}
	case *group.BlockOk:
		// informational only
	case group.Caster:
		cb := e.CastBase()
		if m.cfg.OnDeliver != nil {
			m.cfg.OnDeliver(cb)
		}
	}
}

// Send multicasts an application payload on the data channel. During a
// reconfiguration the payload is buffered and re-submitted on the new
// stack, so the application keeps its fire-and-forget interface (the
// paper's goal of adaptation "transparent to the application").
func (m *Manager) Send(payload []byte) error {
	m.state.Lock()
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	if m.state.reconfig {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		m.state.buffered = append(m.state.buffered, cp)
		m.state.Unlock()
		return nil
	}
	ch := m.state.ch
	m.state.Unlock()

	ev := &group.CastEvent{}
	ev.Msg = appia.NewMessage(payload)
	err := ch.Insert(ev, appia.Down)
	if errors.Is(err, appia.ErrChannelClosed) {
		// Raced with a reconfiguration: buffer instead.
		m.state.Lock()
		cp := make([]byte, len(payload))
		copy(cp, payload)
		m.state.buffered = append(m.state.buffered, cp)
		m.state.Unlock()
		return nil
	}
	return err
}

// Reconfigure performs the full §3.3 procedure synchronously:
//
//  1. stop accepting new sends (buffer them),
//  2. trigger a holding view change on the data channel — the
//     view-synchronous flush leaves every member with the same delivered
//     set and the channel quiescent,
//  3. tear the old channel down,
//  4. build and start the new configuration (fresh epoch port),
//  5. release buffered sends on the new stack.
//
// It must be called from a non-scheduler goroutine (Core spawns one per
// reconfiguration).
func (m *Manager) Reconfigure(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	m.state.Lock()
	if epoch <= m.state.epoch {
		m.state.Unlock()
		return fmt.Errorf("%w: %d <= %d", ErrStaleEpoch, epoch, m.state.epoch)
	}
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	old := m.state.ch
	m.state.reconfig = true
	q := make(chan struct{})
	m.state.quiesced = q
	already := m.state.quiescentSeen
	m.state.Unlock()

	// Quiesce: every node injects the trigger, scoped to the membership
	// Core knows to be alive, so the flush makes progress even if the
	// data channel's own coordinator died. The channel may already be
	// quiescent if another node's flush outran this node's Prepare.
	if !already {
		trigger := &group.TriggerFlush{Hold: true, Members: append([]appia.NodeID(nil), members...)}
		if err := old.Insert(trigger, appia.Down); err != nil && !errors.Is(err, appia.ErrChannelClosed) {
			m.cfg.logf("stack[%d]: trigger flush: %v", m.cfg.Self, err)
		}
		select {
		case <-q:
		case <-time.After(m.cfg.quiesceTimeout()):
			m.cfg.logf("stack[%d]: quiescence timeout at epoch %d; force-closing", m.cfg.Self, epoch)
		}
	}
	if err := old.Close(); err != nil {
		m.cfg.logf("stack[%d]: close old channel: %v", m.cfg.Self, err)
	}

	ch, err := m.build(doc, epoch, members)
	if err != nil {
		m.finishReconfig(nil, "", 0, nil)
		return err
	}
	if err := ch.Start(); err != nil {
		m.finishReconfig(nil, "", 0, nil)
		return err
	}
	ch.WaitReady(m.cfg.quiesceTimeout())
	m.finishReconfig(ch, configName, epoch, members)
	return nil
}

// finishReconfig installs the new channel and flushes buffered sends.
func (m *Manager) finishReconfig(ch *appia.Channel, configName string, epoch uint64, members []appia.NodeID) {
	m.state.Lock()
	if ch != nil {
		m.state.ch = ch
		m.state.configName = configName
		m.state.epoch = epoch
		m.state.members = append([]appia.NodeID(nil), members...)
	}
	m.state.reconfig = false
	m.state.quiesced = nil
	m.state.quiescentSeen = false // fresh channel, fresh lifecycle
	buffered := m.state.buffered
	m.state.buffered = nil
	m.state.Unlock()

	if ch == nil {
		return
	}
	for _, p := range buffered {
		ev := &group.CastEvent{}
		ev.Msg = appia.NewMessage(p)
		if err := ch.Insert(ev, appia.Down); err != nil {
			m.cfg.logf("stack[%d]: resubmit buffered send: %v", m.cfg.Self, err)
		}
	}
}

// Close tears down the current channel.
func (m *Manager) Close() error {
	m.state.Lock()
	ch := m.state.ch
	m.state.ch = nil
	m.state.Unlock()
	if ch == nil {
		return nil
	}
	return ch.Close()
}
