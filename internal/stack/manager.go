package stack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/clock"
	"morpheus/internal/group"
	"morpheus/internal/netio"
)

// Manager errors.
var (
	ErrNotDeployed = errors.New("stack: no configuration deployed")
	ErrStaleEpoch  = errors.New("stack: stale configuration epoch")
	ErrClosed      = errors.New("stack: manager closed")
)

// ManagerConfig configures a StackManager.
type ManagerConfig struct {
	// Node is the local network attachment (any netio substrate).
	Node netio.Endpoint
	// Self is this node's identifier.
	Self appia.NodeID
	// Group names the hosted group this manager serves. When set, the
	// per-epoch port is namespaced as "<group>/<base>@<epoch>", extending
	// the epoch isolation the port scheme already provides to group
	// isolation: a node hosting many groups gives each one a disjoint port
	// space, so frames can never cross groups even when two groups sit at
	// the same epoch. Delivered casts are stamped with the group name.
	// Empty means a single-group node (legacy "<base>@<epoch>" ports).
	Group string
	// Scheduler runs all of the node's channels.
	Scheduler *appia.Scheduler
	// Registry resolves layer names; nil means NewStandardRegistry().
	Registry *appiaxml.LayerRegistry
	// Events resolves wire event kinds; nil means the process default.
	Events *appia.EventKindRegistry
	// ChannelName is the data channel name in documents (default "data").
	ChannelName string
	// BasePort prefixes the per-epoch vnet port (default "data").
	BasePort string
	// QuiesceTimeout bounds the wait for view-synchronous quiescence
	// before a reconfiguration force-closes the old channel.
	QuiesceTimeout time.Duration
	// Clock times the quiescence wait. Nil means wall clock; it must be
	// the scheduler's clock so reconfigurations stay on one timeline.
	Clock clock.Clock
	// OnDeliver receives application casts from whatever channel is
	// currently deployed. Called on the scheduler goroutine.
	OnDeliver func(ev *group.CastEvent)
	// OnViewChange, when set, observes data-channel views.
	OnViewChange func(v group.View)
	// Logf receives diagnostics; nil discards them (library code never
	// writes to the global logger).
	Logf netio.Logf
}

func (c *ManagerConfig) channelName() string {
	if c.ChannelName == "" {
		return "data"
	}
	return c.ChannelName
}

func (c *ManagerConfig) basePort() string {
	if c.BasePort == "" {
		return "data"
	}
	return c.BasePort
}

// portFor computes the substrate port for one configuration epoch,
// namespaced by group when the manager serves one of many hosted groups.
func (c *ManagerConfig) portFor(epoch uint64) string {
	if c.Group == "" {
		return fmt.Sprintf("%s@%d", c.basePort(), epoch)
	}
	return fmt.Sprintf("%s/%s@%d", c.Group, c.basePort(), epoch)
}

func (c *ManagerConfig) clock() clock.Clock { return clock.Or(c.Clock) }

func (c *ManagerConfig) quiesceTimeout() time.Duration {
	if c.QuiesceTimeout <= 0 {
		return defaultQuiesceTimeout
	}
	return c.QuiesceTimeout
}

func (c *ManagerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Manager is the Core sub-system's local module: it owns the node's data
// channel, deploys XML-described configurations, and performs the §3.3
// reconfiguration procedure — quiesce via view synchrony, tear down,
// rebuild from XML, resume buffered traffic on the new stack.
type Manager struct {
	cfg   ManagerConfig
	reg   *appiaxml.LayerRegistry
	state struct {
		sync.Mutex
		ch         *appia.Channel
		epoch      uint64
		configName string
		members    []appia.NodeID
		buffered   [][]byte // payloads held during reconfiguration
		quiesced   chan struct{}
		// quiescentSeen remembers that the current channel already
		// reported quiescence; the flush can complete before this node's
		// Core even learns a reconfiguration is underway (control and
		// data channels are not mutually ordered), so the signal must be
		// level- rather than edge-triggered.
		quiescentSeen bool
		reconfig      bool
		// closed marks the manager permanently torn down; a reconfiguration
		// that completes after Close must discard its freshly built channel
		// instead of installing it (which would re-bind the group's ports
		// on a supposedly-left group).
		closed bool
	}
}

// NewManager returns a manager with nothing deployed yet. The standard
// wire event kinds are registered in cfg.Events (or the process default)
// so a freshly constructed manager can always decode its own traffic.
func NewManager(cfg ManagerConfig) *Manager {
	reg := cfg.Registry
	if reg == nil {
		reg = NewStandardRegistry()
	}
	RegisterAllWireEvents(cfg.Events)
	return &Manager{cfg: cfg, reg: reg}
}

// Epoch returns the current configuration epoch.
func (m *Manager) Epoch() uint64 {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.epoch
}

// ConfigName returns the name of the deployed configuration.
func (m *Manager) ConfigName() string {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.configName
}

// Group returns the hosted group this manager serves ("" on single-group
// nodes).
func (m *Manager) Group() string { return m.cfg.Group }

// Members returns the membership of the deployed configuration.
func (m *Manager) Members() []appia.NodeID {
	m.state.Lock()
	defer m.state.Unlock()
	return append([]appia.NodeID(nil), m.state.members...)
}

// Channel returns the live data channel (nil before the first Deploy).
func (m *Manager) Channel() *appia.Channel {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.ch
}

// Deploy builds and starts the data channel from the document, replacing
// nothing — it is the initial deployment. Epoch starts at 1 unless the
// caller passes a later one.
func (m *Manager) Deploy(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	ch, err := m.build(doc, epoch, members)
	if err != nil {
		return err
	}
	if err := ch.Start(); err != nil {
		return err
	}
	if !ch.WaitReady(m.cfg.quiesceTimeout()) {
		return fmt.Errorf("stack: channel for epoch %d never became ready", epoch)
	}
	m.state.Lock()
	if m.state.closed {
		m.state.Unlock()
		_ = ch.Close()
		return ErrClosed
	}
	m.state.ch = ch
	m.state.epoch = epoch
	m.state.configName = configName
	m.state.members = append([]appia.NodeID(nil), members...)
	m.state.Unlock()
	return nil
}

// build instantiates the channel for an epoch.
func (m *Manager) build(doc *appiaxml.Document, epoch uint64, members []appia.NodeID) (*appia.Channel, error) {
	spec, err := doc.Channel(m.cfg.channelName())
	if err != nil {
		return nil, err
	}
	env := &appiaxml.Env{
		Node:      m.cfg.Node,
		Self:      m.cfg.Self,
		Group:     m.cfg.Group,
		Members:   group.NormalizeMembers(append([]appia.NodeID(nil), members...)),
		Port:      m.cfg.portFor(epoch),
		Registry:  m.cfg.Events,
		Scheduler: m.cfg.Scheduler,
		Deliver:   m.deliver,
		Logf:      m.cfg.logf,
		Clock:     m.cfg.clock(),
	}
	return appiaxml.BuildChannel(spec, m.reg, env)
}

// deliver fans channel upcalls out to the application and the manager's
// own lifecycle tracking.
func (m *Manager) deliver(ev appia.Event) {
	switch e := ev.(type) {
	case *group.Quiescent:
		m.state.Lock()
		m.state.quiescentSeen = true
		q := m.state.quiesced
		m.state.Unlock()
		if q != nil {
			select {
			case <-q:
			default:
				close(q)
			}
		}
	case *group.ViewInstall:
		if m.cfg.OnViewChange != nil {
			m.cfg.OnViewChange(e.View)
		}
	case *group.BlockOk:
		// informational only
	case group.Caster:
		cb := e.CastBase()
		// Stamp the group tag here as well as in the reliable layer: some
		// configurations (FEC) deliver casts without passing group.nak.
		cb.Group = m.cfg.Group
		if m.cfg.OnDeliver != nil {
			m.cfg.OnDeliver(cb)
		}
	}
}

// Send multicasts an application payload on the data channel. During a
// reconfiguration the payload is buffered and re-submitted on the new
// stack, so the application keeps its fire-and-forget interface (the
// paper's goal of adaptation "transparent to the application").
func (m *Manager) Send(payload []byte) error {
	m.state.Lock()
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	if m.state.reconfig {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		m.state.buffered = append(m.state.buffered, cp)
		m.state.Unlock()
		return nil
	}
	ch := m.state.ch
	m.state.Unlock()

	ev := &group.CastEvent{}
	ev.Msg = appia.NewMessage(payload)
	err := ch.Insert(ev, appia.Down)
	if errors.Is(err, appia.ErrChannelClosed) {
		// Raced with a reconfiguration: buffer instead.
		m.state.Lock()
		cp := make([]byte, len(payload))
		copy(cp, payload)
		m.state.buffered = append(m.state.buffered, cp)
		m.state.Unlock()
		return nil
	}
	return err
}

// Reconfigure performs the full §3.3 procedure synchronously:
//
//  1. stop accepting new sends (buffer them),
//  2. trigger a holding view change on the data channel — the
//     view-synchronous flush leaves every member with the same delivered
//     set and the channel quiescent,
//  3. tear the old channel down,
//  4. build and start the new configuration (fresh epoch port),
//  5. release buffered sends on the new stack.
//
// It must be called from a non-scheduler goroutine (Core spawns one per
// reconfiguration).
func (m *Manager) Reconfigure(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	m.state.Lock()
	if epoch <= m.state.epoch {
		m.state.Unlock()
		return fmt.Errorf("%w: %d <= %d", ErrStaleEpoch, epoch, m.state.epoch)
	}
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	old := m.state.ch
	m.state.reconfig = true
	q := make(chan struct{})
	m.state.quiesced = q
	already := m.state.quiescentSeen
	m.state.Unlock()

	// Quiesce: every node injects the trigger, scoped to the membership
	// Core knows to be alive, so the flush makes progress even if the
	// data channel's own coordinator died. The channel may already be
	// quiescent if another node's flush outran this node's Prepare.
	if !already {
		trigger := &group.TriggerFlush{Hold: true, Members: append([]appia.NodeID(nil), members...)}
		if err := old.Insert(trigger, appia.Down); err != nil && !errors.Is(err, appia.ErrChannelClosed) {
			m.cfg.logf("stack[%d]: trigger flush: %v", m.cfg.Self, err)
		}
		if !m.cfg.clock().WaitTimeout(q, m.cfg.quiesceTimeout()) {
			m.cfg.logf("stack[%d]: quiescence timeout at epoch %d; force-closing", m.cfg.Self, epoch)
		}
	}
	if err := old.Close(); err != nil {
		m.cfg.logf("stack[%d]: close old channel: %v", m.cfg.Self, err)
	}
	// Rescue casts the old channel's GMS was still holding: a send that
	// raced a *remotely initiated* flush lands in the GMS pending buffer
	// (blocked) before this node's Core has even set the manager to
	// buffering mode, and would otherwise die with the channel. They never
	// reached the reliable layer, so resubmitting them on the new stack is
	// lossless and duplicate-free. Prepended: they predate everything
	// buffered after the Prepare arrived.
	if rescued := pendingPayloads(old); len(rescued) > 0 {
		m.state.Lock()
		m.state.buffered = append(rescued, m.state.buffered...)
		m.state.Unlock()
	}

	ch, err := m.build(doc, epoch, members)
	if err != nil {
		m.finishReconfig(nil, "", epoch, nil)
		return err
	}
	if err := ch.Start(); err != nil {
		m.finishReconfig(nil, "", epoch, nil)
		return err
	}
	ch.WaitReady(m.cfg.quiesceTimeout())
	m.finishReconfig(ch, configName, epoch, members)
	return nil
}

// finishReconfig installs the new channel and flushes buffered sends.
func (m *Manager) finishReconfig(ch *appia.Channel, configName string, epoch uint64, members []appia.NodeID) {
	m.state.Lock()
	if m.state.closed {
		// Raced with Close: the group is gone — do not install (that would
		// re-bind its ports); discard the freshly built channel instead.
		m.state.reconfig = false
		m.state.quiesced = nil
		m.state.buffered = nil
		m.state.Unlock()
		if ch != nil {
			_ = ch.Close()
		}
		return
	}
	if ch == nil {
		// Rebuild failed with the old channel already gone. Keep the
		// buffered sends (including any rescued GMS-pending casts) for the
		// next epoch's attempt rather than dropping them silently, and
		// remember the channel is trivially quiescent so that attempt does
		// not stall on a flush of a closed channel.
		held := len(m.state.buffered)
		m.state.reconfig = false
		m.state.quiesced = nil
		m.state.quiescentSeen = true
		m.state.Unlock()
		m.cfg.logf("stack[%d]: epoch %d rebuild failed; holding %d buffered sends for the next deployment",
			m.cfg.Self, epoch, held)
		return
	}
	m.state.ch = ch
	m.state.configName = configName
	m.state.epoch = epoch
	m.state.members = append([]appia.NodeID(nil), members...)
	m.state.reconfig = false
	m.state.quiesced = nil
	m.state.quiescentSeen = false // fresh channel, fresh lifecycle
	buffered := m.state.buffered
	m.state.buffered = nil
	m.state.Unlock()

	for _, p := range buffered {
		ev := &group.CastEvent{}
		ev.Msg = appia.NewMessage(p)
		if err := ch.Insert(ev, appia.Down); err != nil {
			m.cfg.logf("stack[%d]: resubmit buffered send: %v", m.cfg.Self, err)
		}
	}
}

// pendingPayloads extracts application casts stranded in a closed
// channel's GMS pending buffer. Only pure CastEvents are rescued: control
// subtypes (ordering batches, flush traffic) are stale the moment the
// epoch changes and are regenerated by the new stack. Reading the session
// is safe here because Close has completed — the closed-channel handoff
// orders this read after the scheduler's last touch.
func pendingPayloads(ch *appia.Channel) [][]byte {
	type pender interface{ Pending() []appia.Event }
	gs, ok := ch.SessionFor("group.gms").(pender)
	if !ok {
		return nil
	}
	var out [][]byte
	for _, ev := range gs.Pending() {
		ce, ok := ev.(*group.CastEvent)
		if !ok || ce.Dest != appia.NoNode || ce.Msg == nil {
			continue
		}
		out = append(out, append([]byte(nil), ce.Msg.Bytes()...))
	}
	return out
}

// Close tears down the current channel and marks the manager closed: an
// in-flight reconfiguration that completes afterwards discards its new
// channel instead of installing it.
func (m *Manager) Close() error {
	m.state.Lock()
	ch := m.state.ch
	m.state.ch = nil
	m.state.closed = true
	m.state.Unlock()
	if ch == nil {
		return nil
	}
	return ch.Close()
}
