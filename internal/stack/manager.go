package stack

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/clock"
	"morpheus/internal/flowctl"
	"morpheus/internal/group"
	"morpheus/internal/netio"
)

// Manager errors.
var (
	ErrNotDeployed = errors.New("stack: no configuration deployed")
	ErrStaleEpoch  = errors.New("stack: stale configuration epoch")
	ErrClosed      = errors.New("stack: manager closed")
	// ErrGroupClosed reports a send on a group that has been left or whose
	// node has closed. Unlike a reconfiguration race (which buffers
	// transparently), this is final: the payload was NOT accepted.
	ErrGroupClosed = errors.New("stack: group closed")
	// ErrWindowFull is the non-blocking send's backpressure signal.
	ErrWindowFull = flowctl.ErrWindowFull
)

// DefaultSendWindow is the per-group send-window capacity used when
// ManagerConfig.SendWindow is zero. It is a small multiple of the
// standard configurations' delivery-driven stability period (stable-every
// 64), so under sustained load credits return in batches well before the
// window drains.
const DefaultSendWindow = 256

// ManagerConfig configures a StackManager.
type ManagerConfig struct {
	// Node is the local network attachment (any netio substrate).
	Node netio.Endpoint
	// Self is this node's identifier.
	Self appia.NodeID
	// Group names the hosted group this manager serves. When set, the
	// per-epoch port is namespaced as "<group>/<base>@<epoch>", extending
	// the epoch isolation the port scheme already provides to group
	// isolation: a node hosting many groups gives each one a disjoint port
	// space, so frames can never cross groups even when two groups sit at
	// the same epoch. Delivered casts are stamped with the group name.
	// Empty means a single-group node (legacy "<base>@<epoch>" ports).
	Group string
	// Scheduler runs all of the node's channels.
	Scheduler *appia.Scheduler
	// Registry resolves layer names; nil means NewStandardRegistry().
	Registry *appiaxml.LayerRegistry
	// Events resolves wire event kinds; nil means the process default.
	Events *appia.EventKindRegistry
	// ChannelName is the data channel name in documents (default "data").
	ChannelName string
	// BasePort prefixes the per-epoch vnet port (default "data").
	BasePort string
	// QuiesceTimeout bounds the wait for view-synchronous quiescence
	// before a reconfiguration force-closes the old channel.
	QuiesceTimeout time.Duration
	// Clock times the quiescence wait. Nil means wall clock; it must be
	// the scheduler's clock so reconfigurations stay on one timeline.
	Clock clock.Clock
	// OnDeliver receives application casts from whatever channel is
	// currently deployed. Called on the scheduler goroutine.
	OnDeliver func(ev *group.CastEvent)
	// OnViewChange, when set, observes data-channel views.
	OnViewChange func(v group.View)
	// SendWindow is the per-group send window: the maximum application
	// casts in flight (credit consumed at Send, released when stability
	// gossip confirms group-wide delivery). 0 means DefaultSendWindow;
	// negative disables windowing (the pre-flow-control fire-and-forget
	// behavior — unbounded retention under overload). The window applies
	// to configurations carrying the reliable NAK layer; stacks without a
	// stability plane (e.g. pure FEC) send unwindowed.
	SendWindow int
	// SendWindowBytes is the byte-denominated companion to SendWindow: a
	// second credit window charging each accepted payload its byte cost
	// (priced by SendCost, clamped to the window capacity), released on
	// the same stability watermark as the message credit. It bounds
	// retained *bytes* where SendWindow bounds retained *messages*, so a
	// few huge casts exert the same backpressure as many small ones. 0
	// disables byte windowing; the byte window supplements the message
	// window, never replaces it.
	SendWindowBytes int
	// SendCost prices payloads against the byte window; nil charges one
	// credit per payload byte.
	SendCost *flowctl.CostModel
	// Logf receives diagnostics; nil discards them (library code never
	// writes to the global logger).
	Logf netio.Logf
}

func (c *ManagerConfig) sendWindow() int {
	if c.SendWindow == 0 {
		return DefaultSendWindow
	}
	if c.SendWindow < 0 {
		return 0
	}
	return c.SendWindow
}

func (c *ManagerConfig) sendWindowBytes() int {
	if c.SendWindowBytes <= 0 {
		return 0
	}
	return c.SendWindowBytes
}

func (c *ManagerConfig) channelName() string {
	if c.ChannelName == "" {
		return "data"
	}
	return c.ChannelName
}

func (c *ManagerConfig) basePort() string {
	if c.BasePort == "" {
		return "data"
	}
	return c.BasePort
}

// portFor computes the substrate port for one configuration epoch,
// namespaced by group when the manager serves one of many hosted groups.
func (c *ManagerConfig) portFor(epoch uint64) string {
	if c.Group == "" {
		return fmt.Sprintf("%s@%d", c.basePort(), epoch)
	}
	return fmt.Sprintf("%s/%s@%d", c.Group, c.basePort(), epoch)
}

func (c *ManagerConfig) clock() clock.Clock { return clock.Or(c.Clock) }

func (c *ManagerConfig) quiesceTimeout() time.Duration {
	if c.QuiesceTimeout <= 0 {
		return defaultQuiesceTimeout
	}
	return c.QuiesceTimeout
}

func (c *ManagerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Manager is the Core sub-system's local module: it owns the node's data
// channel, deploys XML-described configurations, and performs the §3.3
// reconfiguration procedure — quiesce via view synchrony, tear down,
// rebuild from XML, resume buffered traffic on the new stack.
type Manager struct {
	cfg ManagerConfig
	reg *appiaxml.LayerRegistry
	// win is the group's send window (nil when windowing is disabled).
	// Credits: one per accepted application payload, held across
	// reconfiguration buffering and released by the reliable layer on
	// stability (or by the resubmit path when the payload lands on an
	// unwindowed stack).
	win *flowctl.Window
	// winB is the byte-denominated send window (nil when disabled): a
	// payload charges its byte cost on acceptance and the reliable layer
	// releases it on the same watermark as the message credit. Acquisition
	// order is fixed — message credit, then byte credits — so two
	// concurrent senders can never deadlock across the pair.
	winB  *flowctl.Window
	state struct {
		sync.Mutex
		ch         *appia.Channel
		epoch      uint64
		configName string
		members    []appia.NodeID
		// viewMembers is the membership of the data channel's most recent
		// *installed view* within the current epoch — distinct from members,
		// the epoch's deploy-time bootstrap list. Mid-epoch view changes
		// (failure evictions, late-join admissions, leave announcements)
		// land here without disturbing the deploy list the repair and
		// redeploy paths reason about. Nil until the first install.
		viewMembers []appia.NodeID
		// doc is the deployed configuration document, retained so the
		// control plane can redeploy the same configuration with a
		// narrowed membership after a member death (membership repair).
		doc      *appiaxml.Document
		buffered []heldSend // payloads held during reconfiguration
		// windowed records whether the deployed channel contains a
		// credit-releasing reliable layer; sends on unwindowed stacks
		// return their credit at insert.
		windowed bool
		// nakBase accumulates retention high-water marks of torn-down
		// epochs; FlowStats merges it with the live channel's marks.
		// nakMerged remembers the last channel folded in, so a Close
		// racing a Reconfigure cannot double-count the same epoch's
		// Evicted tally.
		nakBase   group.NakStats
		nakMerged *appia.Channel
		quiesced  chan struct{}
		// quiescentSeen remembers that the current channel already
		// reported quiescence; the flush can complete before this node's
		// Core even learns a reconfiguration is underway (control and
		// data channels are not mutually ordered), so the signal must be
		// level- rather than edge-triggered.
		quiescentSeen bool
		reconfig      bool
		// closed marks the manager permanently torn down; a reconfiguration
		// that completes after Close must discard its freshly built channel
		// instead of installing it (which would re-bind the group's ports
		// on a supposedly-left group).
		closed bool
	}
}

// heldSend is one payload buffered across a reconfiguration; credit
// records whether it holds a send-window credit, bytes how many
// byte-window credits ride along.
type heldSend struct {
	payload []byte
	credit  bool
	bytes   int
}

// NewManager returns a manager with nothing deployed yet. The standard
// wire event kinds are registered in cfg.Events (or the process default)
// so a freshly constructed manager can always decode its own traffic.
func NewManager(cfg ManagerConfig) *Manager {
	reg := cfg.Registry
	if reg == nil {
		reg = NewStandardRegistry()
	}
	RegisterAllWireEvents(cfg.Events)
	return &Manager{
		cfg:  cfg,
		reg:  reg,
		win:  flowctl.New(cfg.sendWindow(), cfg.clock()),
		winB: flowctl.New(cfg.sendWindowBytes(), cfg.clock()),
	}
}

// Window exposes the group's send window (nil when disabled).
func (m *Manager) Window() *flowctl.Window { return m.win }

// WindowBytes exposes the group's byte-denominated send window (nil when
// disabled).
func (m *Manager) WindowBytes() *flowctl.Window { return m.winB }

// Epoch returns the current configuration epoch.
func (m *Manager) Epoch() uint64 {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.epoch
}

// ConfigName returns the name of the deployed configuration.
func (m *Manager) ConfigName() string {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.configName
}

// Group returns the hosted group this manager serves ("" on single-group
// nodes).
func (m *Manager) Group() string { return m.cfg.Group }

// Members returns the membership of the deployed configuration.
func (m *Manager) Members() []appia.NodeID {
	m.state.Lock()
	defer m.state.Unlock()
	return append([]appia.NodeID(nil), m.state.members...)
}

// ViewMembers returns the membership of the data channel's most recently
// installed view — the live set, which mid-epoch view changes (evictions,
// late-join admissions, leaves) update while Members keeps reporting the
// epoch's deploy-time bootstrap list. Falls back to Members before the
// first install of an epoch.
func (m *Manager) ViewMembers() []appia.NodeID {
	m.state.Lock()
	defer m.state.Unlock()
	if m.state.viewMembers == nil {
		return append([]appia.NodeID(nil), m.state.members...)
	}
	return append([]appia.NodeID(nil), m.state.viewMembers...)
}

// Channel returns the live data channel (nil before the first Deploy).
func (m *Manager) Channel() *appia.Channel {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.ch
}

// Deploy builds and starts the data channel from the document, replacing
// nothing — it is the initial deployment. Epoch starts at 1 unless the
// caller passes a later one.
func (m *Manager) Deploy(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	ch, err := m.build(doc, epoch, members)
	if err != nil {
		return err
	}
	if err := ch.Start(); err != nil {
		return err
	}
	if !ch.WaitReady(m.cfg.quiesceTimeout()) {
		return fmt.Errorf("stack: channel for epoch %d never became ready", epoch)
	}
	m.state.Lock()
	if m.state.closed {
		m.state.Unlock()
		_ = ch.Close()
		return ErrClosed
	}
	m.state.ch = ch
	m.state.epoch = epoch
	m.state.configName = configName
	m.state.members = append([]appia.NodeID(nil), members...)
	m.state.viewMembers = nil // fresh epoch: live set = deploy list until a view installs
	m.state.doc = doc
	m.state.windowed = m.channelWindowed(ch)
	m.state.Unlock()
	return nil
}

// channelWindowed reports whether a channel contains the credit-releasing
// reliable layer (and windowing is on at all).
func (m *Manager) channelWindowed(ch *appia.Channel) bool {
	return (m.win != nil || m.winB != nil) && ch.SessionFor("group.nak") != nil
}

// CurrentDocument returns the deployed configuration document (nil before
// the first Deploy). The control plane uses it for membership-repair
// redeployments of the same configuration.
func (m *Manager) CurrentDocument() *appiaxml.Document {
	m.state.Lock()
	defer m.state.Unlock()
	return m.state.doc
}

// build instantiates the channel for an epoch.
func (m *Manager) build(doc *appiaxml.Document, epoch uint64, members []appia.NodeID) (*appia.Channel, error) {
	spec, err := doc.Channel(m.cfg.channelName())
	if err != nil {
		return nil, err
	}
	env := &appiaxml.Env{
		Node:      m.cfg.Node,
		Self:      m.cfg.Self,
		Group:     m.cfg.Group,
		Members:   group.NormalizeMembers(append([]appia.NodeID(nil), members...)),
		Port:      m.cfg.portFor(epoch),
		Registry:  m.cfg.Events,
		Scheduler: m.cfg.Scheduler,
		Deliver:   m.deliver,
		Logf:      m.cfg.logf,
		Clock:     m.cfg.clock(),
	}
	if m.win != nil {
		env.Window = m.win
		env.SendWindow = m.win.Capacity()
	}
	if m.winB != nil {
		env.BytesWindow = m.winB
		env.SendWindowBytes = m.winB.Capacity()
	}
	return appiaxml.BuildChannel(spec, m.reg, env)
}

// deliver fans channel upcalls out to the application and the manager's
// own lifecycle tracking.
func (m *Manager) deliver(ev appia.Event) {
	switch e := ev.(type) {
	case *group.Quiescent:
		m.state.Lock()
		m.state.quiescentSeen = true
		q := m.state.quiesced
		m.state.Unlock()
		if q != nil {
			select {
			case <-q:
			default:
				close(q)
			}
		}
	case *group.ViewInstall:
		m.state.Lock()
		m.state.viewMembers = append([]appia.NodeID(nil), e.View.Members...)
		m.state.Unlock()
		if m.cfg.OnViewChange != nil {
			m.cfg.OnViewChange(e.View)
		}
	case *group.BlockOk:
		// informational only
	case group.Caster:
		cb := e.CastBase()
		// Stamp the group tag here as well as in the reliable layer: some
		// configurations (FEC) deliver casts without passing group.nak.
		cb.Group = m.cfg.Group
		if m.cfg.OnDeliver != nil {
			m.cfg.OnDeliver(cb)
		}
	}
}

// sendMode selects how submit waits for a send-window credit.
type sendMode int

const (
	sendBlock sendMode = iota
	sendTry
	sendCtx
)

// Send multicasts an application payload on the data channel. During a
// reconfiguration the payload is buffered and re-submitted on the new
// stack, so the application keeps its transparent-adaptation interface.
// With windowing enabled Send blocks (through the group's clock) while
// the send window is full or the scheduler mailbox is saturated; it must
// therefore not be called from the group's own scheduler goroutine
// (delivery callbacks) — use TrySend there. After Close or a group Leave
// it returns ErrGroupClosed.
func (m *Manager) Send(payload []byte) error {
	return m.submit(payload, sendBlock, nil)
}

// SendContext is Send bounded by ctx: a blocked send returns ctx.Err()
// once the context is done. (Under a virtual clock a context deadline is
// wall time; prefer Send or TrySend in deterministic runs.)
func (m *Manager) SendContext(ctx context.Context, payload []byte) error {
	return m.submit(payload, sendCtx, ctx)
}

// TrySend is the non-blocking Send: it returns ErrWindowFull instead of
// waiting when the send window is exhausted or the mailbox is saturated.
func (m *Manager) TrySend(payload []byte) error {
	return m.submit(payload, sendTry, nil)
}

func (m *Manager) submit(payload []byte, mode sendMode, ctx context.Context) error {
	m.state.Lock()
	if m.state.closed {
		m.state.Unlock()
		return ErrGroupClosed
	}
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	m.state.Unlock()

	// 1. Send-window credit. The credit is held until the reliable layer
	// confirms group-wide delivery (or the payload provably dies with its
	// group), bounding total in-flight retention.
	var err error
	switch mode {
	case sendTry:
		err = m.win.TryAcquire()
	case sendCtx:
		err = m.win.AcquireContext(ctx)
	default:
		err = m.win.Acquire()
	}
	if err != nil {
		if errors.Is(err, flowctl.ErrWindowClosed) {
			return ErrGroupClosed
		}
		return err // ErrWindowFull or the context's error
	}
	credit := m.win != nil

	// Byte credits, acquired strictly after the message credit (the fixed
	// order rules out deadlock between the two windows). The clamped cost
	// is remembered so acquire and release always move the same amount.
	cost := 0
	if m.winB != nil {
		cost = m.winB.Clamp(m.cfg.SendCost.Cost("data", len(payload)))
		switch mode {
		case sendTry:
			err = m.winB.TryAcquireN(cost)
		case sendCtx:
			err = m.winB.AcquireContextN(ctx, cost)
		default:
			err = m.winB.AcquireN(cost)
		}
		if err != nil {
			if credit {
				m.win.Release(1)
			}
			if errors.Is(err, flowctl.ErrWindowClosed) {
				return ErrGroupClosed
			}
			return err
		}
	}
	release := func() {
		if credit {
			m.win.Release(1)
		}
		if cost > 0 {
			m.winB.Release(cost)
		}
	}

	// 2. Mailbox admission: the bounded-mailbox gate asserts exactly this
	// external-ingress path; intra-stack and network insertions stay
	// non-blocking (see appia.Scheduler.SetMailboxBounds).
	for {
		gate := m.cfg.Scheduler.AdmitExternal()
		if gate == nil {
			break
		}
		if mode == sendTry {
			release()
			return ErrWindowFull
		}
		if mode == sendCtx && ctx != nil {
			// SendContext's contract holds at this gate too.
			if err := ctx.Err(); err != nil {
				release()
				return err
			}
			flowctl.WaitGate(m.cfg.clock(), gate, ctx)
			continue
		}
		m.cfg.clock().Wait(gate)
	}

	// 3. Insert, handling the teardown/reconfiguration races.
	var prev *appia.Channel
	for {
		m.state.Lock()
		if m.state.closed {
			m.state.Unlock()
			release()
			return ErrGroupClosed
		}
		if m.state.ch == nil {
			m.state.Unlock()
			release()
			return ErrNotDeployed
		}
		if m.state.reconfig || m.state.ch == prev {
			// Reconfiguring (or the channel closed under us without the
			// state advancing yet): buffer for resubmission on the new
			// stack. The credit rides along with the buffered payload.
			cp := make([]byte, len(payload))
			copy(cp, payload)
			m.state.buffered = append(m.state.buffered, heldSend{payload: cp, credit: credit, bytes: cost})
			m.state.Unlock()
			return nil
		}
		ch := m.state.ch
		windowed := m.state.windowed
		m.state.Unlock()

		ev := &group.CastEvent{}
		ev.Msg = appia.NewMessage(payload)
		ev.Windowed = (credit || cost > 0) && windowed
		if ev.Windowed {
			ev.WindowBytes = cost
		}
		err := ch.Insert(ev, appia.Down)
		if errors.Is(err, appia.ErrChannelClosed) {
			// Raced a teardown: loop to learn whether this was a
			// reconfiguration (buffer) or a close (ErrGroupClosed).
			prev = ch
			continue
		}
		if err != nil {
			release()
			return err
		}
		if (credit || cost > 0) && !windowed {
			// No stability plane on this stack to return the credits: the
			// send is fire-and-forget, so the credits come straight back.
			release()
		}
		return nil
	}
}

// Reconfigure performs the full §3.3 procedure synchronously:
//
//  1. stop accepting new sends (buffer them),
//  2. trigger a holding view change on the data channel — the
//     view-synchronous flush leaves every member with the same delivered
//     set and the channel quiescent,
//  3. tear the old channel down,
//  4. build and start the new configuration (fresh epoch port),
//  5. release buffered sends on the new stack.
//
// It must be called from a non-scheduler goroutine (Core spawns one per
// reconfiguration).
func (m *Manager) Reconfigure(doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) error {
	m.state.Lock()
	if epoch <= m.state.epoch {
		m.state.Unlock()
		return fmt.Errorf("%w: %d <= %d", ErrStaleEpoch, epoch, m.state.epoch)
	}
	if m.state.ch == nil {
		m.state.Unlock()
		return ErrNotDeployed
	}
	old := m.state.ch
	oldWindowed := m.state.windowed
	m.state.reconfig = true
	q := make(chan struct{})
	m.state.quiesced = q
	already := m.state.quiescentSeen
	m.state.Unlock()

	// Quiesce: every node injects the trigger, scoped to the membership
	// Core knows to be alive, so the flush makes progress even if the
	// data channel's own coordinator died. The channel may already be
	// quiescent if another node's flush outran this node's Prepare.
	if !already {
		trigger := &group.TriggerFlush{Hold: true, Members: append([]appia.NodeID(nil), members...)}
		if err := old.Insert(trigger, appia.Down); err != nil && !errors.Is(err, appia.ErrChannelClosed) {
			m.cfg.logf("stack[%d]: trigger flush: %v", m.cfg.Self, err)
		}
		if !m.cfg.clock().WaitTimeout(q, m.cfg.quiesceTimeout()) {
			m.cfg.logf("stack[%d]: quiescence timeout at epoch %d; force-closing", m.cfg.Self, epoch)
		}
	}
	if err := old.Close(); err != nil {
		m.cfg.logf("stack[%d]: close old channel: %v", m.cfg.Self, err)
	}
	// Rescue casts the old channel's GMS was still holding: a send that
	// raced a *remotely initiated* flush lands in the GMS pending buffer
	// (blocked) before this node's Core has even set the manager to
	// buffering mode, and would otherwise die with the channel. They never
	// reached the reliable layer (so the teardown release above did not
	// cover their credits — they keep them through the buffer), and
	// resubmitting them on the new stack is lossless and duplicate-free.
	// Prepended: they predate everything buffered after the Prepare
	// arrived.
	if rescued := pendingPayloads(old); len(rescued) > 0 {
		held := make([]heldSend, len(rescued))
		for i, p := range rescued {
			held[i] = heldSend{payload: p, credit: oldWindowed && m.win != nil}
			if oldWindowed && m.winB != nil {
				// The byte cost is a pure function of the payload, so the
				// rescued cast re-derives exactly what submit charged.
				held[i].bytes = m.winB.Clamp(m.cfg.SendCost.Cost("data", len(p)))
			}
		}
		m.state.Lock()
		m.state.buffered = append(held, m.state.buffered...)
		m.state.Unlock()
	}
	// Fold the dead epoch's retention high-water marks into the running
	// aggregate (reading the closed channel's session is safe, as above).
	m.mergeNakStats(old)

	ch, err := m.build(doc, epoch, members)
	if err != nil {
		m.finishReconfig(nil, nil, "", epoch, nil)
		return err
	}
	if err := ch.Start(); err != nil {
		m.finishReconfig(nil, nil, "", epoch, nil)
		return err
	}
	ch.WaitReady(m.cfg.quiesceTimeout())
	m.finishReconfig(ch, doc, configName, epoch, members)
	return nil
}

// finishReconfig installs the new channel and flushes buffered sends.
func (m *Manager) finishReconfig(ch *appia.Channel, doc *appiaxml.Document, configName string, epoch uint64, members []appia.NodeID) {
	m.state.Lock()
	if m.state.closed {
		// Raced with Close: the group is gone — do not install (that would
		// re-bind its ports); discard the freshly built channel instead.
		// Buffered credits are surrendered with it (the window is closed,
		// the release is bookkeeping only).
		m.state.reconfig = false
		m.state.quiesced = nil
		discarded := m.state.buffered
		m.state.buffered = nil
		m.state.Unlock()
		m.releaseHeld(discarded)
		if ch != nil {
			_ = ch.Close()
		}
		return
	}
	if ch == nil {
		// Rebuild failed with the old channel already gone. Keep the
		// buffered sends (including any rescued GMS-pending casts, and
		// their window credits) for the next epoch's attempt rather than
		// dropping them silently, and remember the channel is trivially
		// quiescent so that attempt does not stall on a flush of a closed
		// channel.
		held := len(m.state.buffered)
		m.state.reconfig = false
		m.state.quiesced = nil
		m.state.quiescentSeen = true
		m.state.Unlock()
		m.cfg.logf("stack[%d]: epoch %d rebuild failed; holding %d buffered sends for the next deployment",
			m.cfg.Self, epoch, held)
		return
	}
	windowed := m.channelWindowed(ch)
	m.state.ch = ch
	m.state.configName = configName
	m.state.epoch = epoch
	m.state.members = append([]appia.NodeID(nil), members...)
	m.state.viewMembers = nil // fresh epoch: live set = deploy list until a view installs
	m.state.doc = doc
	m.state.windowed = windowed
	m.state.reconfig = false
	m.state.quiesced = nil
	m.state.quiescentSeen = false // fresh channel, fresh lifecycle
	buffered := m.state.buffered
	m.state.buffered = nil
	m.state.Unlock()

	for _, hs := range buffered {
		ev := &group.CastEvent{}
		ev.Msg = appia.NewMessage(hs.payload)
		// Credits held through the buffer transfer to the new stack's
		// reliable layer; on an unwindowed stack they return here.
		ev.Windowed = (hs.credit || hs.bytes > 0) && windowed
		if ev.Windowed {
			ev.WindowBytes = hs.bytes
		}
		if err := ch.Insert(ev, appia.Down); err != nil {
			m.cfg.logf("stack[%d]: resubmit buffered send: %v", m.cfg.Self, err)
			m.releaseOne(hs)
			continue
		}
		if (hs.credit || hs.bytes > 0) && !windowed {
			m.releaseOne(hs)
		}
	}
}

// releaseOne returns one buffered send's credits.
func (m *Manager) releaseOne(hs heldSend) {
	if hs.credit {
		m.win.Release(1)
	}
	if hs.bytes > 0 {
		m.winB.Release(hs.bytes)
	}
}

// releaseHeld returns the credits of discarded buffered sends.
func (m *Manager) releaseHeld(held []heldSend) {
	n, b := 0, 0
	for _, hs := range held {
		if hs.credit {
			n++
		}
		b += hs.bytes
	}
	m.win.Release(n)
	if b > 0 {
		m.winB.Release(b)
	}
}

// pendingPayloads extracts application casts stranded in a closed
// channel's GMS pending buffer. Only pure CastEvents are rescued: control
// subtypes (ordering batches, flush traffic) are stale the moment the
// epoch changes and are regenerated by the new stack. Reading the session
// is safe here because Close has completed — the closed-channel handoff
// orders this read after the scheduler's last touch.
func pendingPayloads(ch *appia.Channel) [][]byte {
	type pender interface{ Pending() []appia.Event }
	gs, ok := ch.SessionFor("group.gms").(pender)
	if !ok {
		return nil
	}
	var out [][]byte
	for _, ev := range gs.Pending() {
		ce, ok := ev.(*group.CastEvent)
		if !ok || ce.Dest != appia.NoNode || ce.Msg == nil {
			continue
		}
		out = append(out, append([]byte(nil), ce.Msg.Bytes()...))
	}
	return out
}

// Close tears down the current channel and marks the manager closed: an
// in-flight reconfiguration that completes afterwards discards its new
// channel instead of installing it. Sends blocked on the window or
// submitted afterwards fail with ErrGroupClosed.
func (m *Manager) Close() error {
	m.state.Lock()
	ch := m.state.ch
	m.state.ch = nil
	m.state.closed = true
	discarded := m.state.buffered
	m.state.buffered = nil
	m.state.Unlock()
	var err error
	if ch != nil {
		err = ch.Close()
		m.mergeNakStats(ch)
	}
	m.releaseHeld(discarded)
	m.win.Close()
	m.winB.Close()
	return err
}

// nakStatser is the stats surface of the reliable layer's session.
type nakStatser interface{ Stats() group.NakStats }

// mergeNakStats folds a (closed) channel's retention marks into the
// running aggregate, exactly once per channel.
func (m *Manager) mergeNakStats(ch *appia.Channel) {
	ns, ok := ch.SessionFor("group.nak").(nakStatser)
	if !ok {
		return
	}
	st := ns.Stats()
	m.state.Lock()
	if m.state.nakMerged != ch {
		m.state.nakBase = m.state.nakBase.Merge(st)
		m.state.nakMerged = ch
	}
	m.state.Unlock()
}

// FlowStats is the manager's flow-control observability surface: the send
// window's credit counters, the group scheduler's mailbox depth marks,
// and the reliable layer's retention high-water marks aggregated across
// configuration epochs. Under a virtual clock every field is a
// deterministic function of the run.
type FlowStats struct {
	Window flowctl.Stats
	// WindowBytes is the byte-denominated window's counters (zero value
	// when byte windowing is disabled).
	WindowBytes      flowctl.Stats
	MailboxDepth     int
	MailboxHighWater int
	Nak              group.NakStats
	// BufferedSends is the resubmit buffer's current length (each entry
	// holds a window credit on windowed stacks).
	BufferedSends int
}

// FlowStats snapshots the group's flow-control state (any goroutine).
func (m *Manager) FlowStats() FlowStats {
	fs := FlowStats{
		Window:           m.win.Stats(),
		WindowBytes:      m.winB.Stats(),
		MailboxDepth:     m.cfg.Scheduler.MailboxDepth(),
		MailboxHighWater: m.cfg.Scheduler.MailboxHighWater(),
	}
	m.state.Lock()
	ch := m.state.ch
	merged := m.state.nakMerged
	fs.Nak = m.state.nakBase
	fs.BufferedSends = len(m.state.buffered)
	m.state.Unlock()
	// During a reconfiguration (and after a failed rebuild) state.ch still
	// points at the torn-down channel whose marks are already folded into
	// nakBase — merging it again would double-count Evicted.
	if ch != nil && ch != merged {
		if ns, ok := ch.SessionFor("group.nak").(nakStatser); ok {
			fs.Nak = fs.Nak.Merge(ns.Stats())
		}
	}
	return fs
}
