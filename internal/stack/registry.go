// Package stack wires the protocol packages into the appiaxml layer
// registry and provides the StackManager: the local module of the Core
// sub-system (paper §3.3) that deploys a new configuration of the
// communication protocols on its node — tearing down the quiesced data
// channel and rebuilding it from the XML description shipped by the
// coordinator.
package stack

import (
	"fmt"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/epidemic"
	"morpheus/internal/fec"
	"morpheus/internal/group"
	"morpheus/internal/mecho"
	"morpheus/internal/netio"
	"morpheus/internal/transport"
)

// NewStandardRegistry returns a layer registry with every protocol of this
// repository registered under its canonical name:
//
//	transport.ptp, transport.nativemcast, group.fanout, group.nak,
//	group.gms, group.causal, group.total, mecho, epidemic, fec
//
// Factories draw identity, membership and network attachment from the
// appiaxml.Env, so one XML document serves every node: parameters that must
// differ per node (such as Mecho's operational mode) support an "auto"
// value resolved locally.
func NewStandardRegistry() *appiaxml.LayerRegistry {
	reg := appiaxml.NewLayerRegistry()

	reg.MustRegister("transport.ptp", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		return transport.NewPTPLayer(transport.Config{
			Node:     env.Node,
			Port:     env.Port,
			Registry: env.Registry,
			Logf:     env.Logf,
		}), nil
	})

	reg.MustRegister("transport.nativemcast", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		seg, ok := p.Get("segment")
		if !ok {
			return nil, fmt.Errorf("%w: transport.nativemcast needs segment", appiaxml.ErrMissingParam)
		}
		return transport.NewNativeMulticastLayer(transport.NativeMulticastConfig{
			Config: transport.Config{
				Node:     env.Node,
				Port:     env.Port,
				Registry: env.Registry,
				Logf:     env.Logf,
			},
			Segment: seg,
		}), nil
	})

	reg.MustRegister("group.fanout", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		return group.NewFanoutLayer(group.FanoutConfig{
			Self:           env.Self,
			InitialMembers: env.Members,
		}), nil
	})

	reg.MustRegister("group.nak", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		nackDelay, err := p.Duration("nack-delay", 0)
		if err != nil {
			return nil, err
		}
		stable, err := p.Duration("stable-interval", 0)
		if err != nil {
			return nil, err
		}
		stableEvery, err := p.Int("stable-every", 0)
		if err != nil {
			return nil, err
		}
		unbounded, err := p.Bool("unbounded-buffers", false)
		if err != nil {
			return nil, err
		}
		maxRetained, err := p.Int("max-retained", 0)
		if err != nil {
			return nil, err
		}
		if maxRetained == 0 && env.SendWindow > 0 {
			maxRetained = RetainedCap(env.SendWindow)
		}
		cfg := group.NakConfig{
			Self:             env.Self,
			Group:            env.Group,
			InitialMembers:   env.Members,
			NackDelay:        nackDelay,
			StableInterval:   stable,
			StableEvery:      stableEvery,
			UnboundedBuffers: unbounded,
			Window:           env.Window,
			BytesWindow:      env.BytesWindow,
			MaxRetained:      maxRetained,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return group.NewNakLayer(cfg), nil
	})

	reg.MustRegister("group.gms", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		fd, err := p.Bool("enable-fd", false)
		if err != nil {
			return nil, err
		}
		hb, err := p.Duration("heartbeat", 0)
		if err != nil {
			return nil, err
		}
		suspect, err := p.Duration("suspect-after", 0)
		if err != nil {
			return nil, err
		}
		return group.NewGMSLayer(group.GMSConfig{
			Self:              env.Self,
			InitialMembers:    env.Members,
			EnableFD:          fd,
			HeartbeatInterval: hb,
			SuspectAfter:      suspect,
			Clock:             env.Clock,
		}), nil
	})

	reg.MustRegister("group.causal", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		return group.NewCausalLayer(group.CausalConfig{Self: env.Self}), nil
	})

	reg.MustRegister("group.total", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		return group.NewTotalLayer(group.TotalConfig{Self: env.Self}), nil
	})

	reg.MustRegister("mecho", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		relay, err := p.NodeID("relay", appia.NoNode)
		if err != nil {
			return nil, err
		}
		mode, err := resolveMechoMode(p.Str("mode", "auto"), env, relay)
		if err != nil {
			return nil, err
		}
		return mecho.NewLayer(mecho.Config{
			Self:           env.Self,
			Mode:           mode,
			Relay:          relay,
			InitialMembers: env.Members,
		})
	})

	reg.MustRegister("epidemic", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		fanout, err := p.Int("fanout", 0)
		if err != nil {
			return nil, err
		}
		rounds, err := p.Int("rounds", 0)
		if err != nil {
			return nil, err
		}
		return epidemic.NewLayer(epidemic.Config{
			Self:           env.Self,
			InitialMembers: env.Members,
			Fanout:         fanout,
			Rounds:         rounds,
		}), nil
	})

	reg.MustRegister("fec", func(p appiaxml.Params, env *appiaxml.Env) (appia.Layer, error) {
		k, err := p.Int("k", 0)
		if err != nil {
			return nil, err
		}
		m, err := p.Int("m", 0)
		if err != nil {
			return nil, err
		}
		flush, err := p.Duration("flush-after", 0)
		if err != nil {
			return nil, err
		}
		return fec.NewLayer(fec.LayerConfig{
			Self:       env.Self,
			K:          k,
			M:          m,
			FlushAfter: flush,
			Registry:   env.Registry,
		}), nil
	})

	return reg
}

// resolveMechoMode maps the "mode" parameter to a concrete algorithm. The
// "auto" value lets one document serve the whole heterogeneous group: the
// relay always echoes (wired algorithm); other mobiles run the wireless
// algorithm; fixed nodes run the wired one.
func resolveMechoMode(mode string, env *appiaxml.Env, relay appia.NodeID) (mecho.Mode, error) {
	switch mode {
	case "wireless":
		return mecho.Wireless, nil
	case "wired":
		return mecho.Wired, nil
	case "auto", "":
		if env.Self == relay {
			return mecho.Wired, nil
		}
		if env.Node != nil && env.Node.Kind() == netio.Mobile {
			return mecho.Wireless, nil
		}
		return mecho.Wired, nil
	default:
		return 0, fmt.Errorf("%w: mecho mode %q", appiaxml.ErrInvalidParam, mode)
	}
}

// RegisterAllWireEvents registers every wire event kind used by the
// standard layers (idempotent).
func RegisterAllWireEvents(reg *appia.EventKindRegistry) {
	group.RegisterWireEvents(reg)
	fec.RegisterWireEvents(reg)
}

// defaultQuiesceTimeout bounds how long a reconfiguration waits for view
// synchrony before force-closing the old channel.
const defaultQuiesceTimeout = 5 * time.Second

// RetainedCap derives the reliable layer's per-map retention cap from a
// send-window size: with credits bounding each member to `window`
// unstable casts, no retention map should exceed the window plus the
// control casts interleaved with it — 2× is the safety margin before the
// cap starts evicting (see group.NakConfig.MaxRetained).
func RetainedCap(window int) int { return 2 * window }

// MailboxBounds derives scheduler admission watermarks from a send-window
// size: one cast fans into a handful of intra-stack hops, so the gate
// closes at 8× the window and reopens (hysteresis) at 2×. The bound is on
// external ingress only — see appia.Scheduler.SetMailboxBounds.
func MailboxBounds(window int) (high, low int) { return 8 * window, 2 * window }
