package stack

import (
	"context"
	"errors"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/netio"
	"morpheus/internal/netio/loopnet"
)

// TestSendContextHonoursCtxAtMailboxGate pins the SendContext contract at
// the bounded-mailbox admission gate (not just at the window): a send
// blocked on a saturated scheduler mailbox returns ctx.Err() when the
// context expires, and returns its window credit.
func TestSendContextHonoursCtxAtMailboxGate(t *testing.T) {
	nw := loopnet.New()
	t.Cleanup(func() { _ = nw.Close() })
	ep, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed, Segments: []string{"lan"}})
	if err != nil {
		t.Fatal(err)
	}
	sched := appia.NewScheduler()
	t.Cleanup(sched.Close)
	m := NewManager(ManagerConfig{
		Node:      ep,
		Self:      1,
		Scheduler: sched,
	})
	t.Cleanup(func() { _ = m.Close() })
	plain := &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: "data",
		QoS:  "plain",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "group.fanout"},
			{Layer: "group.nak"},
			{Layer: "group.gms"},
		},
	}}}
	if err := m.Deploy(plain, "plain", 1, []appia.NodeID{1}); err != nil {
		t.Fatal(err)
	}

	// Saturate the mailbox: wedge the scheduler goroutine on a task, then
	// stack enough posts behind it to trip a tiny admission bound.
	sched.SetMailboxBounds(2, 0)
	unblock := make(chan struct{})
	if err := sched.Do(func() { <-unblock }); err != nil {
		t.Fatal(err)
	}
	defer close(unblock)
	for i := 0; i < 3; i++ {
		if err := sched.Do(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if sched.AdmitExternal() == nil {
		t.Fatal("mailbox gate never closed at depth above the high watermark")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.SendContext(ctx, []byte("gated"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SendContext at saturated mailbox = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("SendContext honoured ctx only after %v", took)
	}
	if got := m.FlowStats().Window.InUse; got != 0 {
		t.Fatalf("window credit leaked by the cancelled send: in use = %d", got)
	}
}
