package stack

import (
	"sync/atomic"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/netio"
	"morpheus/internal/netio/loopnet"
)

// plainSingleDoc is the one-member plain stack used by the pool stats test.
func plainSingleDoc() *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: "data",
		QoS:  "plain",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "group.fanout"},
			{Layer: "group.nak"},
			{Layer: "group.gms"},
		},
	}}}
}

// TestPooledManagerFlowStatsPerGroup pins the observability contract of
// FlowStats under the shared scheduler pool: MailboxDepth/MailboxHighWater
// are per-group (the group's own scheduler), never per-worker aggregates —
// and a group whose drain migrates to a stealing worker is counted exactly
// once, not once per worker that touched it.
func TestPooledManagerFlowStatsPerGroup(t *testing.T) {
	nw := loopnet.New()
	t.Cleanup(func() { _ = nw.Close() })
	pool := appia.NewPool(2, nil)
	t.Cleanup(pool.Close)

	// Two hog schedulers to wedge both workers, then one scheduler per
	// manager. Cleanups run LIFO, so schedulers close before the pool.
	hog1 := pool.NewScheduler()
	t.Cleanup(hog1.Close)
	hog2 := pool.NewScheduler()
	t.Cleanup(hog2.Close)

	newMgr := func(id appia.NodeID) (*Manager, *appia.Scheduler) {
		ep, err := nw.Attach(netio.EndpointConfig{ID: netio.NodeID(id), Kind: netio.Fixed, Segments: []string{"lan"}})
		if err != nil {
			t.Fatal(err)
		}
		sched := pool.NewScheduler()
		t.Cleanup(sched.Close)
		m := NewManager(ManagerConfig{Node: ep, Self: id, Scheduler: sched})
		t.Cleanup(func() { _ = m.Close() })
		if err := m.Deploy(plainSingleDoc(), "plain", 1, []appia.NodeID{id}); err != nil {
			t.Fatal(err)
		}
		return m, sched
	}
	mA, schedA := newMgr(1)
	mB, schedB := newMgr(2)

	// Let the deploys drain completely so the backlogs below are exact.
	waitZero := func(m *Manager, label string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for m.FlowStats().MailboxDepth != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s mailbox never drained after deploy", label)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitZero(mA, "A")
	waitZero(mB, "B")
	hwA0 := mA.FlowStats().MailboxHighWater
	hwB0 := mB.FlowStats().MailboxHighWater

	// wedge posts a blocking task on h and waits until a worker is stuck
	// in it; the returned channel releases that worker.
	wedge := func(h *appia.Scheduler) chan struct{} {
		t.Helper()
		started, unblock := make(chan struct{}), make(chan struct{})
		if err := h.Do(func() { close(started); <-unblock }); err != nil {
			t.Fatal(err)
		}
		<-started
		return unblock
	}

	// round stacks asymmetric backlogs (wantA on A's group, wantB on B's)
	// while both workers are wedged, asserts each manager reports exactly
	// its own backlog, then releases one worker and reports whether the
	// lone free worker had to steal a group to finish both drains.
	const wantA, wantB = 32, 2
	var ranA, ranB atomic.Int64
	round := func(release chan struct{}) bool {
		t.Helper()
		baseA, baseB := ranA.Load(), ranB.Load()
		for i := 0; i < wantA; i++ {
			if err := schedA.Do(func() { ranA.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < wantB; i++ {
			if err := schedB.Do(func() { ranB.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
		// Per-group, not per-worker: each manager reports exactly its own
		// backlog even though the schedulers share the pool's two workers.
		if d := mA.FlowStats().MailboxDepth; d != wantA {
			t.Fatalf("A MailboxDepth = %d, want its own backlog %d", d, wantA)
		}
		if d := mB.FlowStats().MailboxDepth; d != wantB {
			t.Fatalf("B MailboxDepth = %d, want its own backlog %d", d, wantB)
		}
		steals0 := pool.Stats().Steals
		close(release)
		deadline := time.Now().Add(10 * time.Second)
		for ranA.Load() != baseA+wantA || ranB.Load() != baseB+wantB {
			if time.Now().After(deadline) {
				t.Fatalf("backlogs incomplete: A %d/%d, B %d/%d",
					ranA.Load()-baseA, wantA, ranB.Load()-baseB, wantB)
			}
			time.Sleep(time.Millisecond)
		}
		return pool.Stats().Steals > steals0
	}

	// Wedge both workers, then free exactly one. If it drained both groups
	// without stealing, both schedulers happened to share its affinity — so
	// wedge IT (the only free worker necessarily takes the new hog task),
	// free the other, and re-run: now the backlogs provably sit on the
	// wedged worker's queue and the free one must migrate them via steals.
	unblock1 := wedge(hog1)
	unblock2 := wedge(hog2)
	migrated := round(unblock1)
	if !migrated {
		unblock3 := wedge(hog1)
		migrated = round(unblock2) // closes unblock2
		unblock2 = unblock3
	}
	defer close(unblock2)
	if !migrated {
		t.Fatal("no steal observed: the groups never migrated between workers")
	}

	// Exactly-once across the migration: every task ran once (checked
	// above), the drained depths return to zero, and each group's high
	// water reflects only its own backlog — B's must not have absorbed A's.
	waitZero(mA, "A")
	waitZero(mB, "B")
	if hw := mA.FlowStats().MailboxHighWater; hw < wantA {
		t.Fatalf("A MailboxHighWater = %d, want >= %d (its own backlog)", hw, wantA)
	}
	if hw := mB.FlowStats().MailboxHighWater; hw >= wantA && hw > hwB0+wantB {
		t.Fatalf("B MailboxHighWater = %d (baseline %d, own backlog %d): counted another group's tasks",
			hw, hwB0, wantB)
	}
	if hwA0 > mA.FlowStats().MailboxHighWater {
		t.Fatalf("A MailboxHighWater regressed below its deploy baseline %d", hwA0)
	}
}
