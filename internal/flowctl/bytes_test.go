package flowctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestTryAcquireNBackpressure pins the N-credit variant used by the byte
// window: credits are taken and released in arbitrary denominations and
// the capacity bound holds for the sum, not the count.
func TestTryAcquireNBackpressure(t *testing.T) {
	w := New(100, nil)
	if err := w.TryAcquireN(60); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireN(40); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireN(1); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("err = %v, want ErrWindowFull at exact capacity", err)
	}
	w.Release(60)
	if err := w.TryAcquireN(60); err != nil {
		t.Fatalf("after release: %v", err)
	}
	st := w.Stats()
	if st.InUse != 100 || st.HighWater != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAcquireNBlocksUntilBytesFree pins that a large request waits for
// enough bytes, not merely for any release.
func TestAcquireNBlocksUntilBytesFree(t *testing.T) {
	w := New(100, nil)
	if err := w.AcquireN(80); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- w.AcquireN(50) }()
	// 20 bytes free, 50 wanted: releasing 10 (30 free) must not wake it.
	w.Release(10)
	select {
	case err := <-got:
		t.Fatalf("AcquireN(50) returned with only 30 bytes free: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Release(30)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AcquireN never woke once enough bytes freed")
	}
}

// TestAcquireContextN pins cancellation and close on the N-credit path.
func TestAcquireContextN(t *testing.T) {
	w := New(10, nil)
	if err := w.AcquireContextN(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := w.AcquireContextN(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	w.Close()
	if err := w.AcquireContextN(context.Background(), 5); !errors.Is(err, ErrWindowClosed) {
		t.Fatalf("err after close = %v, want ErrWindowClosed", err)
	}
}

// TestClamp pins the cost clamp that keeps a single oversized message
// admissible: costs are floored at one credit and capped at the window
// capacity so acquire(N) can always eventually succeed.
func TestClamp(t *testing.T) {
	w := New(100, nil)
	for _, tc := range []struct{ in, want int }{
		{-5, 1}, {0, 1}, {1, 1}, {50, 50}, {100, 100}, {101, 100}, {1 << 20, 100},
	} {
		if got := w.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	var nilW *Window
	if got := nilW.Clamp(42); got != 42 {
		t.Errorf("nil Clamp(42) = %d, want passthrough 42", got)
	}
	// An over-capacity message must be admissible on an empty window.
	if err := w.TryAcquireN(w.Clamp(1 << 20)); err != nil {
		t.Fatalf("clamped oversize acquire: %v", err)
	}
}

// TestCostModel pins the per-class wire-cost function.
func TestCostModel(t *testing.T) {
	var nilModel *CostModel
	if got := nilModel.Cost("data", 100); got != 100 {
		t.Errorf("nil model Cost = %d, want size passthrough 100", got)
	}
	if got := nilModel.Cost("data", 0); got != 1 {
		t.Errorf("nil model Cost(0) = %d, want floor 1", got)
	}
	m := &CostModel{PerByte: 2, ClassWeights: map[string]int{"control": 4}}
	if got := m.Cost("data", 10); got != 20 {
		t.Errorf("Cost(data,10) = %d, want 20 (2/byte, weight 1)", got)
	}
	if got := m.Cost("control", 10); got != 80 {
		t.Errorf("Cost(control,10) = %d, want 80 (2/byte × weight 4)", got)
	}
	if got := m.Cost("control", 0); got != 1 {
		t.Errorf("Cost(control,0) = %d, want floor 1", got)
	}
}
