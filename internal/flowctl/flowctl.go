// Package flowctl is the credit plane of the bounded-memory runtime: a
// clock-aware counting semaphore (Window) that puts a protocol-enforced
// bound on the number of application casts a group may have in flight.
// Credits are denominated by the caller: the runtime's message window
// charges one credit per cast, and its byte window charges credits per
// payload byte (priced by CostModel, clamped by Clamp), so backpressure
// can bound retained bytes as well as retained messages.
//
// The paper's habitat is resource-constrained (mobile nodes, radio-cost
// budgets), yet a fire-and-forget Send gives the runtime three unbounded
// queues: the scheduler mailbox, the NAK retransmission buffers, and the
// GMS/stack-manager resubmit buffers. The Window closes the loop that
// bounds all three: a credit is consumed when a payload is accepted by
// Send and released only when the reliable layer's stability gossip
// proves every peer has delivered it (or when the cast's channel is torn
// down, at which point the view-synchronous flush has equalised
// deliveries). Everything the runtime retains for a cast — its mailbox
// hops, its retransmission clone, its resubmit-buffer copy — therefore
// lives between one acquire and one release, and total retention is
// bounded by the window size.
//
// Blocking waits go through the configured clock, so under the virtual
// time plane (internal/clock) a sender stalled on a full window is an
// ordinary parked actor: the stall, the stability gossip that releases
// it, and the resulting wakeup order are all part of the deterministic
// timeline the golden-replay suite pins.
package flowctl

import (
	"context"
	"errors"
	"sync"

	"morpheus/internal/clock"
)

// Window errors.
var (
	// ErrWindowFull is returned by TrySend-style non-blocking acquires
	// when every credit is in flight.
	ErrWindowFull = errors.New("flowctl: send window full")
	// ErrWindowClosed reports an acquire on (or a blocked acquire woken
	// by) a closed window — the group has been left or its node closed.
	ErrWindowClosed = errors.New("flowctl: send window closed")
)

// Window is a counting semaphore over in-flight send credits. All methods
// are safe for concurrent use. A nil *Window is a valid "windowing
// disabled" instance: acquires succeed immediately and releases are
// no-ops, so callers need no branching.
type Window struct {
	mu     sync.Mutex
	clk    clock.Clock
	cap    int
	used   int
	closed bool
	// gate is non-nil while at least one acquirer waits; it is closed
	// (and replaced lazily) whenever credits are released or the window
	// closes, waking every waiter to recheck.
	gate chan struct{}

	// Monotone statistics; deterministic under a virtual clock.
	highWater int
	acquired  uint64
	released  uint64
	rejected  uint64
}

// New returns a window with the given credit capacity on the given clock
// (nil means wall). A non-positive capacity returns nil — the disabled
// window.
func New(capacity int, clk clock.Clock) *Window {
	if capacity <= 0 {
		return nil
	}
	return &Window{clk: clock.Or(clk), cap: capacity}
}

// tryAcquireNLocked takes n credits atomically if available. Must hold
// w.mu; n must already be clamped to the capacity.
func (w *Window) tryAcquireNLocked(n int) bool {
	if w.used+n > w.cap {
		return false
	}
	w.used += n
	w.acquired += uint64(n)
	if w.used > w.highWater {
		w.highWater = w.used
	}
	return true
}

// tryAcquire takes one credit if available. Must hold w.mu.
func (w *Window) tryAcquireLocked() bool {
	return w.tryAcquireNLocked(1)
}

// Clamp bounds an acquisition cost to the window capacity, so a single
// item costing more than the whole window charges exactly the whole
// window instead of deadlocking forever; it also floors the cost at one
// credit, since anything metered occupies at least a slot. Returns n
// unchanged on the disabled window.
func (w *Window) Clamp(n int) int {
	if w == nil {
		return n
	}
	if n < 1 {
		n = 1
	}
	if n > w.cap { // cap is immutable after New: no lock needed
		n = w.cap
	}
	return n
}

// waitChLocked returns the channel the next release will close. Must hold
// w.mu.
func (w *Window) waitChLocked() chan struct{} {
	if w.gate == nil {
		w.gate = make(chan struct{})
	}
	return w.gate
}

// wakeLocked wakes every waiting acquirer. Must hold w.mu.
func (w *Window) wakeLocked() {
	if w.gate != nil {
		close(w.gate)
		w.gate = nil
	}
}

// TryAcquire takes one credit without blocking; it returns ErrWindowFull
// when none is free and ErrWindowClosed after Close.
func (w *Window) TryAcquire() error { return w.TryAcquireN(1) }

// TryAcquireN takes n credits atomically without blocking (n is clamped
// as by Clamp); it returns ErrWindowFull when they are not all free and
// ErrWindowClosed after Close.
func (w *Window) TryAcquireN(n int) error {
	if w == nil {
		return nil
	}
	n = w.Clamp(n)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWindowClosed
	}
	if !w.tryAcquireNLocked(n) {
		w.rejected++
		return ErrWindowFull
	}
	return nil
}

// Acquire takes one credit, blocking through the clock until one frees.
// Under a virtual clock the caller must be an actor (the clock's creator,
// a scheduler, or a clock.Go goroutine).
func (w *Window) Acquire() error { return w.AcquireN(1) }

// AcquireN takes n credits atomically (clamped as by Clamp), blocking
// through the clock until they are all free.
func (w *Window) AcquireN(n int) error {
	if w == nil {
		return nil
	}
	n = w.Clamp(n)
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrWindowClosed
		}
		if w.tryAcquireNLocked(n) {
			w.mu.Unlock()
			return nil
		}
		gate := w.waitChLocked()
		w.mu.Unlock()
		w.clk.Wait(gate)
	}
}

// AcquireContext is Acquire bounded by ctx. A nil ctx behaves like
// Acquire. Cancellation is checked between credit wakeups; under a wall
// clock the wait itself also unblocks on ctx expiry. (Under a virtual
// clock a context deadline is wall time and therefore foreign to the
// deterministic timeline: prefer Acquire or TryAcquire there.)
func (w *Window) AcquireContext(ctx context.Context) error {
	return w.AcquireContextN(ctx, 1)
}

// AcquireContextN is AcquireN bounded by ctx.
func (w *Window) AcquireContextN(ctx context.Context, n int) error {
	if w == nil {
		return nil
	}
	if ctx == nil {
		return w.AcquireN(n)
	}
	n = w.Clamp(n)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrWindowClosed
		}
		if w.tryAcquireNLocked(n) {
			w.mu.Unlock()
			return nil
		}
		gate := w.waitChLocked()
		w.mu.Unlock()
		WaitGate(w.clk, gate, ctx)
	}
}

// WaitGate blocks through clk until gate closes or ctx is done (a nil ctx
// waits on the gate alone). Ctx cancellation is merged into one channel
// the clock can wait on; the merge goroutine touches no simulation state,
// so it is exempt from the virtual clock's actor regime. Shared by
// Window.AcquireContext and the stack manager's mailbox-admission wait.
func WaitGate(clk clock.Clock, gate <-chan struct{}, ctx context.Context) {
	clk = clock.Or(clk)
	if ctx == nil {
		clk.Wait(gate)
		return
	}
	if clk == clock.Wall() {
		// Wall-clock Wait is a plain receive: select directly instead of
		// paying a merge goroutine per wakeup of a contended gate.
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return
	}
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}()
	clk.Wait(merged)
}

// Release returns n credits. Releasing more than is in use clamps to
// zero — that would indicate an accounting bug upstream, and the clamp
// keeps the window usable while the released counter exposes the
// discrepancy (released > acquired) to tests.
func (w *Window) Release(n int) {
	if w == nil || n <= 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.released += uint64(n)
	if n > w.used {
		n = w.used
	}
	w.used -= n
	w.wakeLocked()
}

// Close fails every pending and future acquire with ErrWindowClosed.
// Credits still in flight are abandoned (the group they metered is gone).
func (w *Window) Close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	w.wakeLocked()
}

// Capacity returns the credit capacity (0 for the disabled window).
func (w *Window) Capacity() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cap
}

// InUse returns the credits currently held.
func (w *Window) InUse() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.used
}

// Stats is a snapshot of the window's monotone counters.
type Stats struct {
	// Capacity is the configured credit capacity.
	Capacity int
	// InUse is the credits held at snapshot time.
	InUse int
	// HighWater is the maximum simultaneous credits ever held.
	HighWater int
	// Acquired and Released count credit movements; at quiescence
	// Acquired == Released and InUse == 0.
	Acquired, Released uint64
	// Rejected counts TryAcquire calls that returned ErrWindowFull.
	Rejected uint64
}

// CostModel prices a payload in byte-window credits. The zero value (and
// a nil model) charges one credit per payload byte, floored at one credit
// so empty payloads still occupy a slot. Weights let deployments price
// traffic classes asymmetrically — control gossip cheaper than bulk data,
// say — without a second window.
type CostModel struct {
	// PerByte is the credits charged per payload byte; 0 means 1.
	PerByte int
	// ClassWeights multiplies the cost for specific accounting classes;
	// absent or non-positive entries mean weight 1.
	ClassWeights map[string]int
}

// Cost prices size payload bytes of the given class. Always >= 1.
func (m *CostModel) Cost(class string, size int) int {
	per, wt := 1, 1
	if m != nil {
		if m.PerByte > 0 {
			per = m.PerByte
		}
		if w, ok := m.ClassWeights[class]; ok && w > 0 {
			wt = w
		}
	}
	c := size * per * wt
	if c < 1 {
		c = 1
	}
	return c
}

// Stats snapshots the window counters.
func (w *Window) Stats() Stats {
	if w == nil {
		return Stats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Capacity:  w.cap,
		InUse:     w.used,
		HighWater: w.highWater,
		Acquired:  w.acquired,
		Released:  w.released,
		Rejected:  w.rejected,
	}
}
