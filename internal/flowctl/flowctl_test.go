package flowctl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morpheus/internal/clock"
)

func TestNilWindowIsDisabled(t *testing.T) {
	var w *Window
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	w.Release(3)
	w.Close()
	if w.Capacity() != 0 || w.InUse() != 0 {
		t.Fatal("nil window must report zeroes")
	}
	if got := New(0, nil); got != nil {
		t.Fatalf("New(0) = %v, want nil (disabled)", got)
	}
	if got := New(-5, nil); got != nil {
		t.Fatalf("New(-5) = %v, want nil (disabled)", got)
	}
}

func TestTryAcquireBackpressure(t *testing.T) {
	w := New(2, nil)
	if err := w.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquire(); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("err = %v, want ErrWindowFull", err)
	}
	st := w.Stats()
	if st.InUse != 2 || st.HighWater != 2 || st.Rejected != 1 || st.Acquired != 2 {
		t.Fatalf("stats = %+v", st)
	}
	w.Release(1)
	if err := w.TryAcquire(); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	w := New(1, nil)
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- w.Acquire() }()
	select {
	case err := <-got:
		t.Fatalf("second Acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Release(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire never woke after Release")
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	w := New(1, nil)
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- w.Acquire() }()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrWindowClosed) {
			t.Fatalf("err = %v, want ErrWindowClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire never woke after Close")
	}
	if err := w.TryAcquire(); !errors.Is(err, ErrWindowClosed) {
		t.Fatalf("TryAcquire after Close = %v", err)
	}
}

func TestAcquireContextCancellation(t *testing.T) {
	w := New(1, nil)
	if err := w.AcquireContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := w.AcquireContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// A fresh context succeeds once a credit frees.
	w.Release(1)
	if err := w.AcquireContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAccounting is the -race credit accounting check at the
// semaphore level: hammered acquire/release from many goroutines loses and
// double-frees nothing.
func TestConcurrentAccounting(t *testing.T) {
	const (
		capacity = 8
		workers  = 16
		rounds   = 500
	)
	w := New(capacity, nil)
	var inFlight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				if err := w.Acquire(); err != nil {
					t.Error(err)
					return
				}
				if cur := inFlight.Add(1); cur > capacity {
					t.Errorf("capacity violated: %d in flight", cur)
				}
				inFlight.Add(-1)
				w.Release(1)
			}
		}()
	}
	wg.Wait()
	st := w.Stats()
	if st.InUse != 0 {
		t.Fatalf("in use at quiescence: %d", st.InUse)
	}
	if st.Acquired != st.Released || st.Acquired != workers*rounds {
		t.Fatalf("accounting: acquired %d released %d want %d", st.Acquired, st.Released, workers*rounds)
	}
	if st.HighWater > capacity {
		t.Fatalf("high water %d exceeds capacity %d", st.HighWater, capacity)
	}
}

// TestOverRelease documents the defensive clamp: releasing more than is
// held keeps the window usable and surfaces the discrepancy in Stats.
func TestOverRelease(t *testing.T) {
	w := New(2, nil)
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	w.Release(5)
	if got := w.InUse(); got != 0 {
		t.Fatalf("in use = %d", got)
	}
	st := w.Stats()
	if st.Released <= st.Acquired {
		t.Fatalf("over-release must be visible: %+v", st)
	}
	if err := w.TryAcquire(); err != nil {
		t.Fatal("window unusable after clamped over-release")
	}
}

// TestVirtualClockBlockedAcquire: a sender actor blocked on the window is
// an ordinary parked actor of the virtual clock — released deterministically
// by another actor's Release.
func TestVirtualClockBlockedAcquire(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := New(1, clk)
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		if err := w.Acquire(); err != nil {
			t.Error(err)
			return
		}
		order <- "acquired"
	})
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		order <- "released"
		w.Release(1)
	})
	clk.Wait(done)
	if first := <-order; first != "released" {
		t.Fatalf("blocked acquire completed before the release (%q first)", first)
	}
}
