// Package fec implements forward error correction for the communication
// stack: the "mask the errors" alternative to detect-and-retransmit that
// the paper's motivation (§2, citing RFC 3452) calls for at high error
// rates. It provides a systematic Reed–Solomon block codec over GF(2⁸) and
// an Appia layer that groups outgoing casts into blocks of k data shards
// plus m parity shards; any k of the k+m shards reconstruct the block, so
// up to m losses per block cost no round trips.
package fec

import (
	"errors"
	"fmt"

	"morpheus/internal/gf256"
)

// Codec errors.
var (
	ErrBadParams      = errors.New("fec: k and m must be positive and k+m <= 255")
	ErrShardSize      = errors.New("fec: shards must be non-empty and equally sized")
	ErrNotEnough      = errors.New("fec: not enough shards to reconstruct")
	ErrSingularMatrix = errors.New("fec: reconstruction matrix is singular")
)

// Codec is a systematic Reed–Solomon erasure codec: Encode produces m
// parity shards from k data shards; Reconstruct recovers all data shards
// from any k survivors.
type Codec struct {
	k, m   int
	parity *gf256.Matrix // m×k parity generator rows
}

// NewCodec builds a codec for k data and m parity shards.
func NewCodec(k, m int) (*Codec, error) {
	if k <= 0 || m <= 0 || k+m > 255 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrBadParams, k, m)
	}
	// Systematic construction: right-multiplying the (k+m)×k Vandermonde
	// matrix by the inverse of its top k×k block turns the top into the
	// identity while preserving the MDS property (any k rows of the
	// result remain invertible). The bottom m rows are the parity
	// generator.
	v := gf256.Vandermonde(k+m, k)
	top := v.SubMatrix(0, k, 0, k)
	topInv, ok := top.Invert()
	if !ok {
		// Unreachable: a Vandermonde matrix with distinct points is
		// always invertible.
		return nil, ErrSingularMatrix
	}
	sys, err := v.Mul(topInv)
	if err != nil {
		return nil, err
	}
	parity := sys.SubMatrix(k, k+m, 0, k)
	return &Codec{k: k, m: m, parity: parity}, nil
}

// K returns the number of data shards per block.
func (c *Codec) K() int { return c.k }

// M returns the number of parity shards per block.
func (c *Codec) M() int { return c.m }

// Encode returns the m parity shards for the k equally-sized data shards.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if err := c.checkShards(data, c.k); err != nil {
		return nil, err
	}
	return c.parity.MulVec(data, len(data[0])), nil
}

// Reconstruct rebuilds the k data shards from any k survivors. The input
// slice must have length k+m with nil entries for missing shards (indices
// 0..k-1 are data, k..k+m-1 parity). It returns the complete data shards.
func (c *Codec) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("%w: got %d slots, want %d", ErrShardSize, len(shards), c.k+c.m)
	}
	var shardLen int
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == 0 {
			shardLen = len(s)
		}
		if len(s) != shardLen || shardLen == 0 {
			return nil, ErrShardSize
		}
		present++
	}
	if present < c.k {
		return nil, fmt.Errorf("%w: %d of %d", ErrNotEnough, present, c.k)
	}
	// Fast path: all data shards intact.
	intact := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			intact = false
			break
		}
	}
	if intact {
		return shards[:c.k], nil
	}
	// Build the k×k decode matrix from the first k available shards'
	// generator rows (identity rows for data, parity rows otherwise).
	dec := gf256.NewMatrix(c.k, c.k)
	input := make([][]byte, 0, c.k)
	row := 0
	for idx := 0; idx < c.k+c.m && row < c.k; idx++ {
		if shards[idx] == nil {
			continue
		}
		if idx < c.k {
			dec.Set(row, idx, 1)
		} else {
			for col := 0; col < c.k; col++ {
				dec.Set(row, col, c.parity.At(idx-c.k, col))
			}
		}
		input = append(input, shards[idx])
		row++
	}
	inv, ok := dec.Invert()
	if !ok {
		return nil, ErrSingularMatrix
	}
	out := inv.MulVec(input, shardLen)
	return out, nil
}

// checkShards validates a shard group.
func (c *Codec) checkShards(shards [][]byte, want int) error {
	if len(shards) != want {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), want)
	}
	n := len(shards[0])
	if n == 0 {
		return ErrShardSize
	}
	for _, s := range shards {
		if len(s) != n {
			return ErrShardSize
		}
	}
	return nil
}
