package fec

import (
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/group"
)

// Shard is the wire event carrying one FEC shard. Headers: origin, block,
// index, kUsed (data shards in the block), parity flag.
type Shard struct {
	appia.SendableEvent
}

// RegisterWireEvents registers the fec wire kinds (idempotent; nil means
// the default registry).
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("fec.shard", func() appia.Sendable { return &Shard{} })
}

// LayerConfig configures the FEC layer.
type LayerConfig struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// K is the number of data casts per block (default 8).
	K int
	// M is the number of parity shards per block (default 2).
	M int
	// FlushAfter closes a partial block if no new casts arrive within
	// this window, so tail messages get parity protection too
	// (default 50ms).
	FlushAfter time.Duration
	// Registry resolves event kinds for shard payload framing; nil means
	// the process default.
	Registry *appia.EventKindRegistry
}

func (c *LayerConfig) k() int {
	if c.K <= 0 {
		return 8
	}
	return c.K
}

func (c *LayerConfig) m() int {
	if c.M <= 0 {
		return 2
	}
	return c.M
}

func (c *LayerConfig) flushAfter() time.Duration {
	if c.FlushAfter <= 0 {
		return 50 * time.Millisecond
	}
	return c.FlushAfter
}

func (c *LayerConfig) registry() *appia.EventKindRegistry {
	if c.Registry == nil {
		return appia.DefaultRegistry()
	}
	return c.Registry
}

// Layer is the error-masking alternative to the NAK layer (§2: "for larger
// error rates it is preferable to mask the errors"). Outgoing casts are
// sent immediately (the code is systematic) and grouped into blocks; when a
// block closes, parity shards follow. Receivers reconstruct missing casts
// from any K of the K+M shards with zero additional round trips.
type Layer struct {
	appia.BaseLayer
	cfg LayerConfig
}

// NewLayer returns a FEC layer; place it above the best-effort bottom.
func NewLayer(cfg LayerConfig) *Layer {
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "fec",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.TIface[group.Caster](),
					appia.T[*Shard](),
					appia.T[*fecFlushTick](),
				},
				Provides: []appia.EventType{appia.T[*Shard]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	return &fecSession{
		cfg:    l.cfg,
		blocks: make(map[appia.NodeID]map[uint64]*rxBlock),
	}
}

// fecFlushTick is the private partial-block flush timer.
type fecFlushTick struct {
	appia.EventBase
	block uint64
}

// rxBlock accumulates shards of one (origin, block).
type rxBlock struct {
	kUsed     int
	shardLen  int // length of padded shards, learned from parity
	data      map[int][]byte
	parity    map[int][]byte
	delivered map[int]bool
	done      bool
}

type fecSession struct {
	cfg LayerConfig

	// Sender state.
	block      uint64
	pending    [][]byte // serialized casts of the open block
	flushTimer func()

	// Receiver state: origin -> block id -> assembly.
	blocks map[appia.NodeID]map[uint64]*rxBlock
}

var _ appia.Session = (*fecSession)(nil)

// Handle implements appia.Session.
func (s *fecSession) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *Shard:
		if e.Dir() == appia.Up {
			s.receiveShard(ch, e)
			return
		}
		ch.Forward(ev)
	case *fecFlushTick:
		if e.block == s.block && len(s.pending) > 0 {
			s.closeBlock(ch)
		}
	default:
		if c, ok := ev.(group.Caster); ok {
			cb := c.CastBase()
			if cb.Dir() == appia.Down && cb.Dest == appia.NoNode {
				s.sendCast(ch, c)
				return
			}
		}
		ch.Forward(ev)
	}
}

// sendCast emits the cast immediately as a data shard and adds it to the
// open block.
func (s *fecSession) sendCast(ch *appia.Channel, c group.Caster) {
	payload, err := encodeCast(s.cfg.registry(), c)
	if err != nil {
		return
	}
	idx := len(s.pending)
	s.pending = append(s.pending, payload)

	sh := &Shard{}
	sh.Class = c.CastBase().Class
	if sh.Class == "" {
		sh.Class = appia.ClassData
	}
	sh.Msg = appia.NewMessage(payload)
	pushShardHeader(sh.Msg, s.cfg.Self, s.block, idx, 0, false)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, sh, appia.Down)

	if len(s.pending) >= s.cfg.k() {
		s.closeBlock(ch)
		return
	}
	s.armFlush(ch)
}

// armFlush (re)schedules the partial-block flush.
func (s *fecSession) armFlush(ch *appia.Channel) {
	if s.flushTimer != nil {
		s.flushTimer()
	}
	sess := appia.Session(s)
	s.flushTimer = ch.DeliverAfter(s.cfg.flushAfter(), sess, &fecFlushTick{block: s.block})
}

// closeBlock computes and transmits the parity shards, then opens the next
// block.
func (s *fecSession) closeBlock(ch *appia.Channel) {
	kUsed := len(s.pending)
	if kUsed == 0 {
		return
	}
	if s.flushTimer != nil {
		s.flushTimer()
		s.flushTimer = nil
	}
	padded, shardLen := padShards(s.pending)
	codec, err := NewCodec(kUsed, s.cfg.m())
	if err == nil {
		parity, perr := codec.Encode(padded)
		if perr == nil {
			sess := appia.Session(s)
			for i, p := range parity {
				sh := &Shard{}
				sh.Class = appia.ClassControl // parity is overhead, not payload
				sh.Msg = appia.NewMessage(p)
				pushShardHeader(sh.Msg, s.cfg.Self, s.block, i, kUsed, true)
				_ = ch.SendFrom(sess, sh, appia.Down)
			}
		}
	}
	_ = shardLen
	s.block++
	s.pending = nil
}

// receiveShard assembles and, when possible, reconstructs.
func (s *fecSession) receiveShard(ch *appia.Channel, e *Shard) {
	m := e.EnsureMsg()
	origin, block, idx, kUsed, isParity, err := popShardHeader(m)
	if err != nil {
		return
	}
	byOrigin, ok := s.blocks[origin]
	if !ok {
		byOrigin = make(map[uint64]*rxBlock)
		s.blocks[origin] = byOrigin
	}
	b, ok := byOrigin[block]
	if !ok {
		b = &rxBlock{
			data:      make(map[int][]byte),
			parity:    make(map[int][]byte),
			delivered: make(map[int]bool),
		}
		byOrigin[block] = b
		// Bounded memory: forget blocks older than a window.
		if block >= 64 {
			delete(byOrigin, block-64)
		}
	}
	payload := append([]byte(nil), m.Bytes()...)
	if isParity {
		b.kUsed = kUsed
		b.shardLen = len(payload)
		if _, dup := b.parity[idx]; !dup {
			b.parity[idx] = payload
		}
	} else {
		if _, dup := b.data[idx]; dup {
			return
		}
		b.data[idx] = payload
		// Systematic: deliver data shards immediately.
		if !b.delivered[idx] {
			b.delivered[idx] = true
			s.deliverPayload(ch, payload)
		}
	}
	s.tryReconstruct(ch, b)
}

// tryReconstruct recovers missing data shards once k survivors exist.
func (s *fecSession) tryReconstruct(ch *appia.Channel, b *rxBlock) {
	if b.done || b.kUsed == 0 {
		return // no parity seen yet: cannot know the block geometry
	}
	missing := 0
	for i := 0; i < b.kUsed; i++ {
		if _, ok := b.data[i]; !ok {
			missing++
		}
	}
	if missing == 0 {
		b.done = true
		return
	}
	if len(b.data)+len(b.parity) < b.kUsed {
		return
	}
	codec, err := NewCodec(b.kUsed, s.cfg.m())
	if err != nil {
		return
	}
	shards := make([][]byte, b.kUsed+s.cfg.m())
	for i, d := range b.data {
		if i < b.kUsed {
			shards[i] = padTo(d, b.shardLen)
		}
	}
	for i, p := range b.parity {
		if b.kUsed+i < len(shards) {
			shards[b.kUsed+i] = p
		}
	}
	out, err := codec.Reconstruct(shards)
	if err != nil {
		return
	}
	b.done = true
	for i := 0; i < b.kUsed; i++ {
		if b.delivered[i] {
			continue
		}
		b.delivered[i] = true
		s.deliverPayload(ch, unpad(out[i]))
	}
}

// deliverPayload decodes a serialized cast and forwards it upward.
func (s *fecSession) deliverPayload(ch *appia.Channel, payload []byte) {
	ev, err := decodeCast(s.cfg.registry(), payload)
	if err != nil {
		return
	}
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, ev, appia.Up)
}

// encodeCast frames an event as kind + message bytes, with a leading true
// length so padding strips cleanly.
func encodeCast(reg *appia.EventKindRegistry, c group.Caster) ([]byte, error) {
	kind, err := reg.KindOf(c)
	if err != nil {
		return nil, err
	}
	cb := c.CastBase()
	m := cb.EnsureMsg()
	m.PushString(kind)
	wire := append([]byte(nil), m.Bytes()...)
	if _, err := m.PopString(); err != nil {
		return nil, err
	}
	// Frame as uvarint(total) + wire so zero-padding strips cleanly.
	fm := appia.NewMessage(wire)
	fm.PushUvarint(uint64(len(wire)))
	return append([]byte(nil), fm.Bytes()...), nil
}

// decodeCast reverses encodeCast, ignoring padding beyond the true length.
func decodeCast(reg *appia.EventKindRegistry, payload []byte) (appia.Sendable, error) {
	m := appia.FromWire(payload)
	total, err := m.PopUvarint()
	if err != nil {
		return nil, err
	}
	body := m.Bytes()
	if uint64(len(body)) > total {
		body = body[:total]
	}
	bm := appia.FromWire(body)
	kind, err := bm.PopString()
	if err != nil {
		return nil, err
	}
	ev, err := reg.New(kind)
	if err != nil {
		return nil, err
	}
	ev.SendableBase().Msg = bm
	return ev, nil
}

// padShards pads byte slices to a common length.
func padShards(in [][]byte) ([][]byte, int) {
	max := 0
	for _, s := range in {
		if len(s) > max {
			max = len(s)
		}
	}
	out := make([][]byte, len(in))
	for i, s := range in {
		out[i] = padTo(s, max)
	}
	return out, max
}

// padTo zero-pads a copy of s to length n.
func padTo(s []byte, n int) []byte {
	if len(s) >= n {
		return s
	}
	cp := make([]byte, n)
	copy(cp, s)
	return cp
}

// unpad is a no-op: the true length prefix inside the payload handles it.
func unpad(s []byte) []byte { return s }

// pushShardHeader frames a shard: [origin][block][idx][kUsed][parity].
func pushShardHeader(m *appia.Message, origin appia.NodeID, block uint64, idx, kUsed int, parity bool) {
	m.PushBool(parity)
	m.PushUvarint(uint64(kUsed))
	m.PushUvarint(uint64(idx))
	m.PushUvarint(block)
	m.PushUvarint(uint64(uint32(origin)))
}

// popShardHeader removes the frame.
func popShardHeader(m *appia.Message) (origin appia.NodeID, block uint64, idx, kUsed int, parity bool, err error) {
	o, err := m.PopUvarint()
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	b, err := m.PopUvarint()
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	i, err := m.PopUvarint()
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	k, err := m.PopUvarint()
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	p, err := m.PopBool()
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	return appia.NodeID(uint32(o)), b, int(i), int(k), p, nil
}
