package fec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecParams(t *testing.T) {
	if _, err := NewCodec(0, 1); !errors.Is(err, ErrBadParams) {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCodec(1, 0); !errors.Is(err, ErrBadParams) {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewCodec(200, 56); !errors.Is(err, ErrBadParams) {
		t.Fatal("k+m>255 accepted")
	}
	c, err := NewCodec(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 4 || c.M() != 2 {
		t.Fatal("accessors")
	}
}

func mkShards(k, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	const k, m, size = 5, 3, 64
	codec, err := NewCodec(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := mkShards(k, size, 42)
	parity, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parity) != m {
		t.Fatalf("parity count = %d", len(parity))
	}

	// Try every pattern of up to m erasures.
	total := k + m
	for mask := 0; mask < 1<<total; mask++ {
		erased := 0
		for i := 0; i < total; i++ {
			if mask&(1<<i) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > m {
			continue
		}
		shards := make([][]byte, total)
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				shards[i] = data[i]
			}
		}
		for i := 0; i < m; i++ {
			if mask&(1<<(k+i)) == 0 {
				shards[k+i] = parity[i]
			}
		}
		out, err := codec.Reconstruct(shards)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(out[i], data[i]) {
				t.Fatalf("mask %b: shard %d corrupted", mask, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	codec, err := NewCodec(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := mkShards(3, 16, 1)
	parity, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 5)
	shards[0] = data[0]
	shards[3] = parity[0]
	if _, err := codec.Reconstruct(shards); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
}

func TestReconstructSizeMismatch(t *testing.T) {
	codec, err := NewCodec(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{{1, 2}, {3}, nil}
	if _, err := codec.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	codec, err := NewCodec(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Encode([][]byte{{1}}); !errors.Is(err, ErrShardSize) {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := codec.Encode([][]byte{{1}, {2, 3}}); !errors.Is(err, ErrShardSize) {
		t.Fatal("unequal shards accepted")
	}
}

// Property: random (k, m, erasure pattern with <= m losses) always
// reconstructs exactly.
func TestReconstructProperty(t *testing.T) {
	f := func(kSeed, mSeed uint8, seed int64) bool {
		k := int(kSeed%10) + 1
		m := int(mSeed%5) + 1
		codec, err := NewCodec(k, m)
		if err != nil {
			return false
		}
		data := mkShards(k, 32, seed)
		parity, err := codec.Encode(data)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			shards[i] = data[i]
		}
		for i := 0; i < m; i++ {
			shards[k+i] = parity[i]
		}
		// Erase up to m random shards.
		erase := rng.Intn(m + 1)
		for n := 0; n < erase; n++ {
			shards[rng.Intn(k+m)] = nil
		}
		out, err := codec.Reconstruct(shards)
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(out[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode8x2(b *testing.B) {
	codec, err := NewCodec(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := mkShards(8, 1024, 3)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct8x2(b *testing.B) {
	codec, err := NewCodec(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := mkShards(8, 1024, 3)
	parity, err := codec.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 10)
		for j := 2; j < 8; j++ {
			shards[j] = data[j]
		}
		shards[8], shards[9] = parity[0], parity[1]
		if _, err := codec.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
