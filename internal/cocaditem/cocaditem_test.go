package cocaditem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/group"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// ctxNode runs a minimal control stack: ptp → fanout → nak → gms → cocaditem.
type ctxNode struct {
	id    appia.NodeID
	node  *vnet.Node
	sched *appia.Scheduler
	ch    *appia.Channel
	sess  *Session
}

func buildCtxCluster(t *testing.T, n int, mkRetrievers func(id appia.NodeID, vn *vnet.Node) []Retriever, interval time.Duration, onChange bool) []*ctxNode {
	t.Helper()
	w := vnet.NewWorld(4)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	group.RegisterWireEvents(nil)
	RegisterWireEvents(nil)

	members := make([]appia.NodeID, n)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	var nodes []*ctxNode
	for _, id := range members {
		kind, seg := vnet.Fixed, "lan"
		if id == members[n-1] && n > 1 {
			kind, seg = vnet.Mobile, "wlan"
		}
		vn, err := w.AddNode(id, kind, seg)
		if err != nil {
			t.Fatal(err)
		}
		cn := &ctxNode{id: id, node: vn, sched: appia.NewScheduler()}
		t.Cleanup(cn.sched.Close)
		q, err := appia.NewQoS("ctl",
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "ctl", Logf: t.Logf}),
			group.NewFanoutLayer(group.FanoutConfig{Self: id, InitialMembers: members}),
			group.NewNakLayer(group.NakConfig{Self: id, InitialMembers: members, NackDelay: 10 * time.Millisecond, StableInterval: 40 * time.Millisecond}),
			group.NewGMSLayer(group.GMSConfig{Self: id, InitialMembers: members}),
			NewLayer(Config{
				Self:            id,
				Interval:        interval,
				Retrievers:      mkRetrievers(id, vn),
				PublishOnChange: onChange,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		cn.ch = q.CreateChannel("ctl", cn.sched)
		if err := cn.ch.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, cn)
	}
	for _, cn := range nodes {
		if !cn.ch.WaitReady(2 * time.Second) {
			t.Fatal("stack never ready")
		}
		s, ok := cn.ch.SessionFor("cocaditem").(*Session)
		if !ok {
			t.Fatal("cocaditem session missing")
		}
		cn.sess = s
	}
	return nodes
}

func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestDisseminatesToAllNodes(t *testing.T) {
	nodes := buildCtxCluster(t, 3, func(id appia.NodeID, vn *vnet.Node) []Retriever {
		return []Retriever{DeviceClassRetriever(vn)}
	}, 20*time.Millisecond, false)

	// Every node must learn every other node's device class.
	for _, cn := range nodes {
		cn := cn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d sees all classes", cn.id), func() bool {
			for _, other := range nodes {
				if _, ok := cn.sess.Latest(TopicDeviceClass, other.id); !ok {
					return false
				}
			}
			return true
		})
	}
	// Node 3 is the mobile one in this cluster layout.
	sm, ok := nodes[0].sess.Latest(TopicDeviceClass, 3)
	if !ok || sm.Str != "mobile" {
		t.Fatalf("node1's view of node3 = %+v (ok=%v)", sm, ok)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	nodes := buildCtxCluster(t, 2, func(id appia.NodeID, vn *vnet.Node) []Retriever {
		return []Retriever{BatteryRetriever(vn)}
	}, 20*time.Millisecond, false)
	eventually(t, 5*time.Second, "battery known", func() bool {
		snap := nodes[0].sess.Snapshot()
		return len(snap[TopicBattery]) == 2
	})
	snap := nodes[0].sess.Snapshot()
	// Mutating the snapshot must not affect the store.
	delete(snap[TopicBattery], 1)
	if _, ok := nodes[0].sess.Latest(TopicBattery, 1); !ok {
		t.Fatal("snapshot mutation leaked into the store")
	}
}

func TestSubscribersNotified(t *testing.T) {
	nodes := buildCtxCluster(t, 2, func(id appia.NodeID, vn *vnet.Node) []Retriever {
		return []Retriever{DeviceClassRetriever(vn)}
	}, 15*time.Millisecond, false)
	got := make(chan Sample, 16)
	nodes[0].sess.Subscribe(TopicDeviceClass, func(s Sample) {
		select {
		case got <- s:
		default:
		}
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never notified")
	}
	// Wildcard subscription.
	all := make(chan Sample, 16)
	nodes[0].sess.Subscribe("", func(s Sample) {
		select {
		case all <- s:
		default:
		}
	})
	select {
	case <-all:
	case <-time.After(5 * time.Second):
		t.Fatal("wildcard subscriber never notified")
	}
}

func TestPublishOnChangeSuppressesSteadyState(t *testing.T) {
	val := 0.5
	var mu sync.Mutex
	nodes := buildCtxCluster(t, 2, func(id appia.NodeID, vn *vnet.Node) []Retriever {
		return []Retriever{FuncRetriever{TopicName: "x", Fn: func() (float64, string) {
			mu.Lock()
			defer mu.Unlock()
			return val, ""
		}}}
	}, 10*time.Millisecond, true)

	eventually(t, 5*time.Second, "initial publish", func() bool {
		_, ok := nodes[1].sess.Latest("x", 1)
		return ok
	})
	// Count publishes over a quiet window: only keepalives may appear
	// (every 10th tick), far fewer than every tick.
	before := nodes[0].node.Counters().Tx["control"].Msgs
	time.Sleep(200 * time.Millisecond)
	after := nodes[0].node.Counters().Tx["control"].Msgs
	// 200ms at 10ms interval = 20 ticks. Unsuppressed would publish ~20
	// messages for this topic alone (plus stability); with suppression we
	// expect roughly 2 keepalives + stability gossip.
	if after-before > 15 {
		t.Fatalf("steady-state control traffic too high: %d msgs in 200ms", after-before)
	}
	// A change must propagate promptly.
	mu.Lock()
	val = 0.9
	mu.Unlock()
	eventually(t, 5*time.Second, "change propagates", func() bool {
		sm, ok := nodes[1].sess.Latest("x", 1)
		return ok && sm.Num > 0.8
	})
}

func TestBuiltinRetrievers(t *testing.T) {
	w := vnet.NewWorld(9)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	vn, err := w.AddNode(1, vnet.Mobile, "wlan")
	if err != nil {
		t.Fatal(err)
	}
	vn.SetEnergy(vnet.EnergyConfig{CapacityJ: 10, TxPerMsgJ: 1})

	if num, str := DeviceClassRetriever(vn).Retrieve(); num != 1 || str != "mobile" {
		t.Fatalf("device class = %v %q", num, str)
	}
	if num, _ := BatteryRetriever(vn).Retrieve(); num != 1 {
		t.Fatalf("full battery = %v", num)
	}
	if _, err := w.AddNode(2, vnet.Fixed, "wlan"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := vn.Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if num, _ := BatteryRetriever(vn).Retrieve(); num != 0.5 {
		t.Fatalf("half battery = %v", num)
	}
}
