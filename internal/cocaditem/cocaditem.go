// Package cocaditem implements the paper's Context Capture and
// Dissemination System (§3.2): a set of per-node context retrievers plus a
// topic-based publish/subscribe component that spreads the collected
// information to interested parties over the group communication control
// channel. The control component (internal/core) subscribes to the topics
// its reconfiguration policies need.
package cocaditem

import (
	"math"
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/group"
	"morpheus/internal/netio"
)

// Well-known topics published by the built-in retrievers.
const (
	TopicBattery     = "battery"      // Num: remaining fraction [0,1]
	TopicDeviceClass = "device-class" // Str: "fixed" | "mobile"; Num: 1 if mobile
	TopicLinkLoss    = "link-loss"    // Num: observed loss probability [0,1]
	TopicBandwidth   = "bandwidth"    // Num: available bandwidth (relative units)
)

// Sample is one context observation.
type Sample struct {
	Topic string
	Node  appia.NodeID
	Num   float64
	Str   string
	When  time.Time
}

// Retriever produces local context observations. Implementations are
// invoked on the scheduler goroutine at every sampling tick and must not
// block.
type Retriever interface {
	// Topic names the published topic.
	Topic() string
	// Retrieve reads the current local value.
	Retrieve() (num float64, str string)
}

// FuncRetriever adapts a function to the Retriever interface.
type FuncRetriever struct {
	TopicName string
	Fn        func() (float64, string)
}

// Topic implements Retriever.
func (f FuncRetriever) Topic() string { return f.TopicName }

// Retrieve implements Retriever.
func (f FuncRetriever) Retrieve() (float64, string) { return f.Fn() }

// BatteryRetriever publishes the endpoint's remaining battery fraction
// (1 on substrates without an energy model — a mains-powered device).
func BatteryRetriever(ep netio.Endpoint) Retriever {
	return FuncRetriever{TopicName: TopicBattery, Fn: func() (float64, string) {
		return netio.BatteryFraction(ep), ""
	}}
}

// DeviceClassRetriever publishes whether the device is fixed or mobile —
// the context bit Figure 2's hybrid configuration hinges on.
func DeviceClassRetriever(ep netio.Endpoint) Retriever {
	return FuncRetriever{TopicName: TopicDeviceClass, Fn: func() (float64, string) {
		if ep.Kind() == netio.Mobile {
			return 1, "mobile"
		}
		return 0, "fixed"
	}}
}

// LinkLossRetriever publishes the loss rate of the node's segment, reading
// whatever error source the substrate exposes (the simulated NIC's
// counters on vnet; a driver-statistics reader on a real substrate).
func LinkLossRetriever(src netio.LossSource, segment string) Retriever {
	return FuncRetriever{TopicName: TopicLinkLoss, Fn: func() (float64, string) {
		loss, err := src.SegmentLoss(segment)
		if err != nil {
			return 0, ""
		}
		return loss, ""
	}}
}

// PublishEvent carries one sample on the control channel. It embeds
// CastEvent, inheriting the reliable multicast guarantees.
type PublishEvent struct {
	group.CastEvent
	Sample Sample
}

// RegisterWireEvents registers cocaditem's wire kinds (idempotent).
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("ctx.publish", func() appia.Sendable { return &PublishEvent{} })
}

// Config configures the Cocaditem layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Interval is the sampling/publication period (default 100ms).
	Interval time.Duration
	// Retrievers are the local context sources.
	Retrievers []Retriever
	// PublishOnChange, when true, republishes only when a value moved by
	// more than Epsilon (plus a keepalive every 10 intervals); this keeps
	// the control traffic modest, matching the paper's note that the
	// adaptive version adds only a small control overhead.
	PublishOnChange bool
	// Epsilon is the change threshold for PublishOnChange (default 0.01).
	Epsilon float64
	// Clock stamps samples (Sample.When). Nil means wall clock; the
	// sampling tick itself runs on the channel scheduler's clock.
	Clock clock.Clock
}

func (c *Config) clock() clock.Clock { return clock.Or(c.Clock) }

func (c *Config) interval() time.Duration {
	if c.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return c.Interval
}

func (c *Config) epsilon() float64 {
	if c.Epsilon <= 0 {
		return 0.01
	}
	return c.Epsilon
}

// Layer is the Cocaditem session factory; place it above group.gms on the
// control channel.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a Cocaditem layer.
func NewLayer(cfg Config) *Layer {
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "cocaditem",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*PublishEvent](),
					appia.T[*ctxTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{appia.T[*PublishEvent]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	return &Session{
		cfg:   l.cfg,
		store: make(map[string]map[appia.NodeID]Sample),
		last:  make(map[string]Sample),
	}
}

// ctxTick is the private sampling timer event.
type ctxTick struct {
	appia.EventBase
}

// Subscriber receives samples for a subscribed topic. Called on the
// scheduler goroutine of the subscribing node's stack.
type Subscriber func(s Sample)

// Session is the per-node Cocaditem instance. The query methods (Snapshot,
// Latest) are safe from any goroutine; Subscribe may be called at any time.
type Session struct {
	cfg      Config
	stopTick func()
	ticks    uint64

	mu    sync.Mutex
	store map[string]map[appia.NodeID]Sample
	last  map[string]Sample // last published local value per topic
	subs  []subscription
}

type subscription struct {
	topic string
	fn    Subscriber
}

var _ appia.Session = (*Session)(nil)

// Handle implements appia.Session.
func (s *Session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		sess := appia.Session(s)
		s.stopTick = ch.DeliverEvery(s.cfg.interval(), sess, func() appia.Event { return &ctxTick{} })
		ch.Forward(ev)
	case *appia.ChannelClose:
		if s.stopTick != nil {
			s.stopTick()
		}
		ch.Forward(ev)
	case *ctxTick:
		s.sample(ch)
	case *PublishEvent:
		s.onPublish(ch, e)
	default:
		ch.Forward(ev)
	}
}

// sample reads every retriever and publishes.
func (s *Session) sample(ch *appia.Channel) {
	s.ticks++
	keepalive := s.ticks%10 == 0
	for _, r := range s.cfg.Retrievers {
		num, str := r.Retrieve()
		sm := Sample{Topic: r.Topic(), Node: s.cfg.Self, Num: num, Str: str, When: s.cfg.clock().Now()}
		if s.cfg.PublishOnChange && !keepalive {
			s.mu.Lock()
			prev, seen := s.last[r.Topic()]
			s.mu.Unlock()
			if seen && prev.Str == str && math.Abs(prev.Num-num) <= s.cfg.epsilon() {
				continue
			}
		}
		s.mu.Lock()
		s.last[r.Topic()] = sm
		s.mu.Unlock()
		s.publish(ch, sm)
		// Local samples go straight into the store too: the paper's
		// adaptation depends on both local and remote context.
		s.record(sm)
	}
}

// publish multicasts a sample on the control channel.
func (s *Session) publish(ch *appia.Channel, sm Sample) {
	ev := &PublishEvent{Sample: sm}
	ev.Class = appia.ClassControl
	m := ev.EnsureMsg()
	m.PushString(sm.Str)
	m.PushUint64(math.Float64bits(sm.Num))
	m.PushUvarint(uint64(uint32(sm.Node)))
	m.PushString(sm.Topic)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, ev, appia.Down)
}

// onPublish decodes and records a remote (or self-delivered) sample.
func (s *Session) onPublish(ch *appia.Channel, e *PublishEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	topic, err := m.PopString()
	if err != nil {
		return
	}
	nodeU, err := m.PopUvarint()
	if err != nil {
		return
	}
	bits, err := m.PopUint64()
	if err != nil {
		return
	}
	str, err := m.PopString()
	if err != nil {
		return
	}
	sm := Sample{
		Topic: topic,
		Node:  appia.NodeID(uint32(nodeU)),
		Num:   math.Float64frombits(bits),
		Str:   str,
		When:  s.cfg.clock().Now(),
	}
	if sm.Node == s.cfg.Self {
		return // self-delivered copy: already recorded at sampling time
	}
	e.Sample = sm
	s.record(sm)
}

// record stores a sample and notifies subscribers.
func (s *Session) record(sm Sample) {
	s.mu.Lock()
	byNode, ok := s.store[sm.Topic]
	if !ok {
		byNode = make(map[appia.NodeID]Sample)
		s.store[sm.Topic] = byNode
	}
	byNode[sm.Node] = sm
	var notify []Subscriber
	for _, sub := range s.subs {
		if sub.topic == sm.Topic || sub.topic == "" {
			notify = append(notify, sub.fn)
		}
	}
	s.mu.Unlock()
	for _, fn := range notify {
		fn(sm)
	}
}

// Inject records a sample directly into the local store, bypassing the
// network. Used by tests and by components that compute derived context
// locally.
func (s *Session) Inject(sm Sample) { s.record(sm) }

// Subscribe registers interest in a topic ("" means all topics), following
// the prototype's topic-based publish-subscribe interface.
func (s *Session) Subscribe(topic string, fn Subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, subscription{topic: topic, fn: fn})
}

// Snapshot returns a deep copy of the context store.
func (s *Session) Snapshot() map[string]map[appia.NodeID]Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[appia.NodeID]Sample, len(s.store))
	for topic, byNode := range s.store {
		cp := make(map[appia.NodeID]Sample, len(byNode))
		for n, sm := range byNode {
			cp[n] = sm
		}
		out[topic] = cp
	}
	return out
}

// Latest returns the most recent sample for (topic, node).
func (s *Session) Latest(topic string, node appia.NodeID) (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byNode, ok := s.store[topic]
	if !ok {
		return Sample{}, false
	}
	sm, ok := byNode[node]
	return sm, ok
}
