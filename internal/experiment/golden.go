package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// Golden replay: every experiment that runs on the virtual clock plane is
// required to be bit-reproducible — two runs at the same seed must produce
// byte-identical counter matrices. Each GoldenRunner below executes one
// experiment at a fixed, reduced scale and serializes its complete output
// (every counter of every row) into a canonical matrix string; the suite in
// golden_replay_test.go replays each runner several times, asserts the
// matrices are hash-identical, and pins the hashes in testdata so any
// nondeterminism (or silent behavior change) fails tier-1.

// GoldenResult is one deterministic experiment run: its canonical counter
// matrix and the matrix's SHA-256.
type GoldenResult struct {
	Name   string
	Matrix string
	Hash   string
}

// GoldenRunner executes one experiment of the golden suite.
type GoldenRunner struct {
	Name string
	Run  func(seed int64) (string, error)
}

// finish wraps a matrix into a GoldenResult.
func finish(name, matrix string) GoldenResult {
	sum := sha256.Sum256([]byte(matrix))
	return GoldenResult{Name: name, Matrix: matrix, Hash: hex.EncodeToString(sum[:])}
}

// RunGolden executes the named runner at the given seed.
func RunGolden(r GoldenRunner, seed int64) (GoldenResult, error) {
	matrix, err := r.Run(seed)
	if err != nil {
		return GoldenResult{}, err
	}
	return finish(r.Name, matrix), nil
}

// GoldenRunners returns the golden suite: the experiment families the
// virtual clock plane fully virtualizes (figure3, E5 strategies, E6 energy
// lifetime, E9 multi-group, E10 overload). Scales are reduced so three
// consecutive replays fit a tier-1 test budget; the quantities are still
// the ones the paper plots (and, for E10, the bounded-memory marks).
func GoldenRunners() []GoldenRunner {
	return []GoldenRunner{
		{Name: "figure3", Run: goldenFigure3},
		{Name: "figure3-paper", Run: goldenFigure3Paper},
		{Name: "e5-strategies", Run: goldenStrategies},
		{Name: "e6-energy", Run: goldenEnergy},
		{Name: "e9-multigroup", Run: goldenMultiGroup},
		{Name: "e10-overload", Run: goldenOverload},
		{Name: "e11-manygroups", Run: goldenManyGroups},
	}
}

func goldenFigure3(seed int64) (string, error) {
	rows, err := RunFigure3(Figure3Config{
		Sizes:    []int{2, 3, 6},
		Messages: 150,
		Timeout:  60 * time.Second,
		Seed:     seed,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "n=%d opt=%d notopt=%d optdata=%d optctl=%d relaydata=%d notoptdata=%d\n",
			r.Nodes, r.Optimized, r.NotOptimized, r.OptimizedData, r.OptimizedControl,
			r.RelayData, r.NotOptimizedData)
	}
	return b.String(), nil
}

// goldenFigure3Paper pins Figure 3 at the paper's full scale — 40 000
// messages across all four published group sizes. Under the virtual clock
// the whole sweep runs in seconds, so the exact matrix the paper plots is
// cheap enough to hold as a tier-1 golden rather than a reduced proxy.
func goldenFigure3Paper(seed int64) (string, error) {
	rows, err := RunFigure3(Figure3Config{
		Sizes:    []int{2, 3, 6, 9},
		Messages: 40000,
		Timeout:  10 * time.Minute,
		Seed:     seed,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "n=%d opt=%d notopt=%d optdata=%d optctl=%d relaydata=%d notoptdata=%d\n",
			r.Nodes, r.Optimized, r.NotOptimized, r.OptimizedData, r.OptimizedControl,
			r.RelayData, r.NotOptimizedData)
	}
	return b.String(), nil
}

func goldenStrategies(seed int64) (string, error) {
	rows, err := RunMulticastStrategies(StrategyConfig{
		Sizes:    []int{8, 16},
		Messages: 80,
		Loss:     0.05, // exercise the loss draws and the epidemic TTL paths
		Timeout:  30 * time.Second,
		Seed:     seed,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "n=%d strat=%s sender=%d maxnode=%d total=%d delivery=%.6f\n",
			r.Nodes, r.Strategy, r.SenderTx, r.MaxNodeTx, r.TotalTx, r.DeliveryRatio)
	}
	return b.String(), nil
}

func goldenEnergy(seed int64) (string, error) {
	rows, err := RunEnergyLifetime(EnergyConfig{
		Nodes:    4,
		Capacity: 0.3,
		Timeout:  30 * time.Second,
		Seed:     seed,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "mode=%s casts=%d firstdead=%d reconfigs=%d\n",
			r.Mode, r.CastsBeforeDeath, r.FirstDead, r.ReconfigurationsN)
	}
	return b.String(), nil
}

// goldenOverloadConfig is the reduced E10 scale shared by the golden
// runner and the shape test: large enough that the flood is still running
// when Mecho settles and the victim partitions, small enough for three
// tier-1 replays.
func goldenOverloadConfig(seed int64) OverloadConfig {
	return OverloadConfig{
		Messages:   450,
		SendWindow: 64,
		Timeout:    120 * time.Second,
		Seed:       seed,
	}
}

func goldenOverload(seed int64) (string, error) {
	rows, err := RunOverload(goldenOverloadConfig(seed))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "node=%d sent=%d rejected=%d delivered=%d winhw=%d inuse=%d acq=%d rel=%d mbox=%d naksent=%d nakhist=%d nakbuf=%d evicted=%d epoch=%d cfg=%s\n",
			r.Node, r.Sent, r.Rejected, r.Delivered, r.WindowHighWater, r.WindowInUse,
			r.Acquired, r.Released, r.MailboxHighWater,
			r.NakSentHW, r.NakHistoryHW, r.NakBufferHW, r.NakEvicted, r.Epoch, r.Config)
	}
	return b.String(), nil
}

// goldenManyGroups pins E11 at its full 256-group scale: the hash is the
// statement that pooled dispatch at any worker count reproduces dedicated
// mode byte-for-byte across hundreds of concurrently hosted stacks.
func goldenManyGroups(seed int64) (string, error) {
	rows, err := RunManyGroups(ManyGroupsConfig{Seed: seed})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "group=%s config=%s epoch=%d fixed=%d mobile=%d leaked=%d winhw=%d acq=%d violations=%d\n",
			r.Group, r.Config, r.Epoch, r.DeliveredFixed, r.DeliveredMobile,
			r.Leaked, r.WindowHighWater, r.Acquired, r.Violations)
	}
	return b.String(), nil
}

func goldenMultiGroup(seed int64) (string, error) {
	rows, err := RunMultiGroup(MultiGroupConfig{
		StressMessages: 25,
		Messages:       60,
		Timeout:        60 * time.Second,
		Seed:           seed,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "group=%s config=%s epoch=%d mobiledata=%d single=%d delivered=%d leaked=%d\n",
			r.Group, r.Config, r.Epoch, r.MobileDataTx, r.SingleRunDataTx, r.Delivered, r.Leaked)
	}
	return b.String(), nil
}
