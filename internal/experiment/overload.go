package experiment

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/chaos/invariants"
	"morpheus/internal/clock"
	"morpheus/internal/core"
)

// --- E10: bounded-memory overload ------------------------------------------
//
// E10 is the runtime's bounded-memory proof: flooding senders, a
// mid-flood plain→Mecho reconfiguration, and a peer partitioned while the
// flood is still running. Without flow control this is exactly the
// scenario that grows the scheduler mailbox, the NAK retransmission
// buffers and the resubmit buffers without bound (the partitioned peer
// stops stability gossip cold). With per-group send windows the run must
// show: every retention high-water mark bounded by a SendWindow-derived
// cap (never by the flood length), senders stalling while the partition
// holds and resuming the moment the failure detector's eviction flushes
// the dead peer out, zero cap evictions, and exact credit accounting —
// all pinned bit-for-bit by the golden-replay suite.

// OverloadRow reports one participant of the E10 scenario.
type OverloadRow struct {
	Node appia.NodeID
	// Sent is how many payloads the node's sender accepted (blocking
	// senders always reach Messages; the TrySend sender also reports
	// Rejected, its ErrWindowFull backpressure signals).
	Sent     int
	Rejected uint64
	// Delivered counts payload deliveries at this node (own included).
	Delivered int
	// Window occupancy: high-water mark, in-use at harvest (must be 0 at
	// quiescence), and total credits acquired/released (must balance).
	WindowHighWater    int
	WindowInUse        int
	Acquired, Released uint64
	// MailboxHighWater is the group scheduler's deepest mailbox.
	MailboxHighWater int
	// NAK retention high-water marks (aggregated across epochs) and cap
	// evictions (want 0: the windows keep retention under the caps).
	NakSentHW, NakHistoryHW, NakBufferHW int
	NakEvicted                           int
	// Epoch/Config are the group's final deployment.
	Epoch  uint64
	Config string
}

// OverloadConfig parameterises E10.
type OverloadConfig struct {
	// Messages are sent per flooding sender (default 500), paced at 1ms
	// of virtual time so the flood spans the reconfiguration and the
	// partition.
	Messages int
	// SendWindow is the per-group window under test (default 64).
	SendWindow int
	// Timeout bounds the run (virtual time).
	Timeout time.Duration
	// Seed drives the virtual network.
	Seed int64
	// Logf, when set, receives every node's control-plane diagnostics.
	Logf func(format string, args ...any)
}

func (c *OverloadConfig) defaults() {
	if c.Messages == 0 {
		c.Messages = 500
	}
	if c.SendWindow == 0 {
		c.SendWindow = 64
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 29
	}
}

// victimID is the partitioned peer: a pure receiver whose silence stalls
// stability gossip group-wide.
const victimID appia.NodeID = 4

// e10Payload marks a payload with its sender.
func e10Payload(id appia.NodeID, i int) []byte {
	return []byte(fmt.Sprintf("e10;n=%d;i=%06d", id, i))
}

// RunOverload is E10. Topology: fixed nodes 1 (relay/coordinator), 2, 3
// (blocking flooders), 4 (victim) on the LAN plus the mobile PDA (TrySend
// flooder) on the WLAN, all under the hybrid Mecho policy and a
// SendWindow-bounded default group. Phases, all mid-flood:
//
//  1. the flood starts on the plain stack; the policy reconfigures to
//     Mecho underneath it (resubmit buffers and credits cross epochs);
//  2. once Mecho settles, node 4 is partitioned: stability gossip stalls,
//     windows fill, blocking senders park and the TrySend sender sees
//     ErrWindowFull;
//  3. the control failure detector evicts node 4; the membership-repair
//     redeployment flushes it out of the data channel, which releases the
//     stalled credits wholesale, and the flood drains to completion.
func RunOverload(cfg OverloadConfig) ([]OverloadRow, error) {
	cfg.defaults()
	members := []appia.NodeID{1, 2, 3, victimID, MobileID}
	senders := []appia.NodeID{2, 3, MobileID}

	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed, clk)
	defer w.Close()

	type tally struct {
		mu        sync.Mutex
		delivered int
	}
	tallies := make(map[appia.NodeID]*tally, len(members))
	nodes := make(map[appia.NodeID]*morpheus.Node, len(members))
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		id := id
		kind, seg := morpheus.Fixed, "lan"
		if id == MobileID {
			kind, seg = morpheus.Mobile, "wlan"
		}
		tl := &tally{}
		tallies[id] = tl
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
			SendWindow:      cfg.SendWindow,
			Logf:            cfg.Logf,
			OnMessage: func(from morpheus.NodeID, payload []byte) {
				tl.mu.Lock()
				tl.delivered++
				tl.mu.Unlock()
			},
		})
		if err != nil {
			return nil, err
		}
		nodes[id] = nd
	}
	delivered := func(id appia.NodeID) int {
		tl := tallies[id]
		tl.mu.Lock()
		defer tl.mu.Unlock()
		return tl.delivered
	}

	// Flood: one paced sender actor per flooding member. The fixed nodes
	// use the blocking Send; the mobile uses TrySend and counts the
	// window-full rejections it rides out.
	sent := make(map[appia.NodeID]*atomic.Int64, len(senders))
	rejected := make(map[appia.NodeID]*atomic.Uint64, len(senders))
	var sendErr error
	var sendErrMu sync.Mutex
	fail := func(err error) {
		sendErrMu.Lock()
		if sendErr == nil {
			sendErr = err
		}
		sendErrMu.Unlock()
	}
	dones := make([]chan struct{}, 0, len(senders))
	for _, id := range senders {
		id := id
		n := new(atomic.Int64)
		rej := new(atomic.Uint64)
		sent[id], rejected[id] = n, rej
		d := make(chan struct{})
		dones = append(dones, d)
		g := nodes[id].Group(morpheus.DefaultGroup)
		clk.Go(func() {
			defer close(d)
			for int(n.Load()) < cfg.Messages {
				payload := e10Payload(id, int(n.Load()))
				var err error
				if id == MobileID {
					err = g.TrySend(payload)
					if errors.Is(err, morpheus.ErrWindowFull) {
						rej.Add(1)
						clk.Sleep(time.Millisecond)
						continue
					}
				} else {
					err = g.Send(payload)
				}
				if err != nil {
					fail(fmt.Errorf("sender %d after %d sends: %w", id, n.Load(), err))
					return
				}
				n.Add(1)
				clk.Sleep(time.Millisecond)
			}
		})
	}

	// Mid-flood reconfiguration: the hybrid policy deploys Mecho while the
	// flood runs. Wait for it to settle everywhere, then partition the
	// victim while the senders are still flooding.
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, nd := range nodes {
			if nd.ConfigName() != core.MechoConfigName(1) {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("e10: mecho never settled mid-flood")
	}
	nodes[victimID].VNode().SetDown(true)

	for i, d := range dones {
		if !clk.WaitTimeout(d, cfg.Timeout) {
			return nil, fmt.Errorf("e10: sender %d never finished (%s)", senders[i], flowDebug(nodes, senders, sent))
		}
	}
	if sendErr != nil {
		return nil, sendErr
	}

	// Completion: every survivor delivers the full flood (the repair
	// flush has evicted the victim), and every credit returns.
	survivors := []appia.NodeID{1, 2, 3, MobileID}
	total := len(senders) * cfg.Messages
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, id := range survivors {
			if delivered(id) < total {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("e10: deliveries incomplete after partition recovery")
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, id := range survivors {
			nd := nodes[id]
			fs := nd.Group(morpheus.DefaultGroup).FlowStats()
			if fs.Window.InUse != 0 || fs.BufferedSends != 0 {
				return false
			}
			for _, m := range nd.Manager().Members() {
				if m == victimID {
					return false
				}
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("e10: windows never drained (or victim never evicted)")
	}
	// Let the tail of control traffic settle at a fixed virtual instant so
	// the harvested marks are stable.
	clk.Sleep(500 * time.Millisecond)

	rows := make([]OverloadRow, 0, len(survivors))
	for _, id := range survivors {
		nd := nodes[id]
		g := nd.Group(morpheus.DefaultGroup)
		fs := g.FlowStats()
		row := OverloadRow{
			Node:             id,
			Delivered:        delivered(id),
			WindowHighWater:  fs.Window.HighWater,
			WindowInUse:      fs.Window.InUse,
			Acquired:         fs.Window.Acquired,
			Released:         fs.Window.Released,
			MailboxHighWater: fs.MailboxHighWater,
			NakSentHW:        fs.Nak.SentHighWater,
			NakHistoryHW:     fs.Nak.HistoryHighWater,
			NakBufferHW:      fs.Nak.BufferHighWater,
			NakEvicted:       fs.Nak.Evicted,
			Epoch:            g.Epoch(),
			Config:           g.ConfigName(),
		}
		if n, ok := sent[id]; ok {
			row.Sent = int(n.Load())
		}
		if r, ok := rejected[id]; ok {
			row.Rejected = r.Load()
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	return rows, nil
}

// flowDebug renders every node's flow state for timeout diagnostics.
func flowDebug(nodes map[appia.NodeID]*morpheus.Node, senders []appia.NodeID, sent map[appia.NodeID]*atomic.Int64) string {
	ids := make([]appia.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b []byte
	for _, id := range ids {
		fs := nodes[id].Group(morpheus.DefaultGroup).FlowStats()
		b = fmt.Appendf(b, "[%d inuse=%d acq=%d rel=%d buffered=%d naksentHW=%d epoch=%d cfg=%s members=%v",
			id, fs.Window.InUse, fs.Window.Acquired, fs.Window.Released,
			fs.BufferedSends, fs.Nak.SentHighWater, nodes[id].Epoch(), nodes[id].ConfigName(), nodes[id].Manager().Members())
		if n, ok := sent[id]; ok {
			b = fmt.Appendf(b, " sent=%d", n.Load())
		}
		b = fmt.Appendf(b, "] ")
	}
	return string(b)
}

// OverloadCaps are the SendWindow-derived bounds E10 asserts: retention
// and occupancy must scale with the window, never with the flood length.
// They are the chaos plane's shared invariant checker — E10 was the first
// consumer; the fault-schedule fuzzer (internal/chaos) applies the same
// bounds to every generated schedule.
type OverloadCaps = invariants.Caps

// CapsFor derives the E10 bounds from a window size and the number of
// concurrently flooding senders.
func CapsFor(window, senders int) OverloadCaps {
	return invariants.CapsFor(window, senders)
}

// Flow projects the row's flow-control columns into the shared invariant
// checker's shape. BufferedSends is not part of OverloadRow (E10's harvest
// barrier drains them before snapshotting), so it reports zero.
func (r OverloadRow) Flow() invariants.FlowRow {
	return invariants.FlowRow{
		Label:            fmt.Sprintf("node %d", r.Node),
		WindowHighWater:  r.WindowHighWater,
		WindowInUse:      r.WindowInUse,
		Acquired:         r.Acquired,
		Released:         r.Released,
		MailboxHighWater: r.MailboxHighWater,
		NakSentHW:        r.NakSentHW,
		NakHistoryHW:     r.NakHistoryHW,
		NakBufferHW:      r.NakBufferHW,
		NakEvicted:       r.NakEvicted,
	}
}
