package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/chaos/invariants"
	"morpheus/internal/clock"
	"morpheus/internal/core"
)

// --- E11: many-group hosting at pool scale -----------------------------------
//
// E11 is the scheduler pool's scale proof: one node set hosts hundreds of
// groups over a single shared endpoint, control plane and scheduler worker
// pool, with a mixed plain/Mecho stack population and a quarter of the
// groups reconfiguring plain→Mecho *while* the mobile floods every group.
// The run then checks the full shared invariant suite per group — bounded
// windows with exact credit accounting, exactly-once gap-free complete
// delivery at every receiver, zero cross-group leaks — and emits one
// canonical row per group. Under the virtual clock the whole matrix is
// bit-reproducible at any pool size (and in dedicated mode): the golden
// hash is the theorem "pooled dispatch does not change the execution"
// stated over ~800 concurrently hosted stacks.

// ManyGroupsRow reports one hosted group of the E11 scenario.
type ManyGroupsRow struct {
	Group  string
	Config string // final configuration
	Epoch  uint64
	// DeliveredFixed / DeliveredMobile count measured payload deliveries
	// at the fixed observer (node 1) and at the mobile itself.
	DeliveredFixed  int
	DeliveredMobile int
	// Leaked counts deliveries that crossed a group boundary (want 0).
	Leaked int
	// WindowHighWater / Acquired are the mobile sender's window marks.
	WindowHighWater int
	Acquired        uint64
	// Violations is the group's invariant-violation count (want 0).
	Violations int
}

// ManyGroupsConfig parameterises E11.
type ManyGroupsConfig struct {
	// Groups is how many groups the node set hosts (default 256).
	Groups int
	// Messages are sent per group by the mobile, concurrently across
	// groups, starting before the adaptive quarter reconfigures (default 3).
	Messages int
	// Senders is how many concurrent sender actors partition the group
	// space (default 8).
	Senders int
	// SendWindow bounds each group's in-flight casts (default 16).
	SendWindow int
	// Timeout bounds the run (virtual time).
	Timeout time.Duration
	// Seed drives the virtual network.
	Seed int64
}

func (c *ManyGroupsConfig) defaults() {
	if c.Groups == 0 {
		c.Groups = 256
	}
	if c.Messages == 0 {
		c.Messages = 6
	}
	if c.Senders == 0 {
		c.Senders = 8
	}
	if c.SendWindow == 0 {
		c.SendWindow = 16
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
}

// mgxName names group i ("g000"…): fixed width keeps rows sortable.
func mgxName(i int) string { return fmt.Sprintf("g%03d", i) }

// mgxSettled returns group i's expected final configuration: every fourth
// group adapts plain→Mecho under load, the next quarter is pinned Mecho
// from the start, and the rest stay plain.
func mgxSettled(i int) string {
	switch i % 4 {
	case 0, 1:
		return core.MechoConfigName(1)
	default:
		return core.PlainConfigName
	}
}

// mgxSpec builds group i's GroupConfig pieces.
func mgxSpec(i int) (policies []morpheus.Policy, initial *morpheus.Document, initialName string) {
	switch i % 4 {
	case 0: // adaptive: reconfigures while the flood runs
		return []morpheus.Policy{core.HybridMechoPolicy{}}, nil, ""
	case 1: // pinned Mecho
		return nil, core.MechoConfig(1), core.MechoConfigName(1)
	default: // pinned plain
		return nil, nil, ""
	}
}

// mgxObserver tallies one group's deliveries at one node, in delivery
// order, for the exactly-once/gap-free checker.
type mgxObserver struct {
	group  string
	mu     sync.Mutex
	seq    []invariants.Delivery
	leaked int
}

func (o *mgxObserver) onCast(ev *morpheus.CastEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	body := string(ev.Msg.Bytes())
	var idx int
	if ev.Group != o.group || !strings.HasPrefix(body, "g="+o.group+";") ||
		parseMgxIndex(body, &idx) != nil {
		o.leaked++
		return
	}
	o.seq = append(o.seq, invariants.Delivery{Origin: ev.Origin, Stream: o.group, Index: idx})
}

func (o *mgxObserver) snapshot() ([]invariants.Delivery, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]invariants.Delivery(nil), o.seq...), o.leaked
}

// mgxPayload marks a payload with its group and send index.
func mgxPayload(group string, i int) []byte {
	return []byte(fmt.Sprintf("g=%s;i=%06d", group, i))
}

func parseMgxIndex(body string, idx *int) error {
	at := strings.LastIndexByte(body, '=')
	_, err := fmt.Sscanf(body[at+1:], "%d", idx)
	return err
}

// RunManyGroups is E11. Topology: two fixed nodes (1: relay + observer, 2:
// receiver) on the LAN and the mobile PDA on the WLAN, all hosting every
// group. The mobile floods all groups from Senders concurrent actors while
// the adaptive quarter reconfigures plain→Mecho underneath; at quiescence
// every group is checked against the shared invariant suite.
func RunManyGroups(cfg ManyGroupsConfig) ([]ManyGroupsRow, error) {
	cfg.defaults()
	members := []appia.NodeID{1, 2, MobileID}

	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed, clk)
	defer w.Close()

	nodes := make(map[appia.NodeID]*morpheus.Node, len(members))
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	// underLoad counts reconfigurations that commit while the flood is
	// still running — the "concurrent reconfigs under load" witness.
	// Deterministic under the virtual clock (the commit order and the
	// flood's progress are both functions of virtual time).
	var underLoad atomic.Int64
	var floodActive atomic.Bool
	// obs[nodeID][group] — node 1 (fixed observer) and the mobile.
	obs := map[appia.NodeID]map[string]*mgxObserver{
		1:        make(map[string]*mgxObserver, cfg.Groups),
		MobileID: make(map[string]*mgxObserver, cfg.Groups),
	}
	groups := make(map[appia.NodeID]map[string]*morpheus.Group, len(members))
	for _, id := range members {
		kind, seg := morpheus.Fixed, "lan"
		if id == MobileID {
			kind, seg = morpheus.Mobile, "wlan"
		}
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
		})
		if err != nil {
			return nil, err
		}
		nodes[id] = nd
		groups[id] = make(map[string]*morpheus.Group, cfg.Groups)
		for i := 0; i < cfg.Groups; i++ {
			name := mgxName(i)
			policies, initial, initialName := mgxSpec(i)
			gc := morpheus.GroupConfig{
				Members:           members,
				Policies:          policies,
				InitialConfig:     initial,
				InitialConfigName: initialName,
				SendWindow:        cfg.SendWindow,
				OnReconfigured: func(epoch uint64, _ string, _ time.Duration) {
					if epoch > 1 && floodActive.Load() {
						underLoad.Add(1)
					}
				},
			}
			if perNode := obs[id]; perNode != nil {
				o := &mgxObserver{group: name}
				perNode[name] = o
				gc.OnCast = o.onCast
			}
			g, err := nd.Join(name, gc)
			if err != nil {
				return nil, fmt.Errorf("node %d join %s: %w", id, name, err)
			}
			groups[id][name] = g
		}
	}

	// Flood every group from the mobile, Senders actors each owning a
	// contiguous slice of the group space — concurrent with the adaptive
	// quarter's reconfigurations. Each actor paces with virtual sleeps so
	// the cross-group interleaving exercises the pool's run queues.
	var sendErr error
	var sendErrMu sync.Mutex
	floodActive.Store(true)
	done := make([]chan struct{}, cfg.Senders)
	for a := 0; a < cfg.Senders; a++ {
		a := a
		d := make(chan struct{})
		done[a] = d
		clk.Go(func() {
			defer close(d)
			for i := 0; i < cfg.Messages; i++ {
				for gi := a; gi < cfg.Groups; gi += cfg.Senders {
					name := mgxName(gi)
					if err := groups[MobileID][name].Send(mgxPayload(name, i)); err != nil {
						sendErrMu.Lock()
						if sendErr == nil {
							sendErr = fmt.Errorf("send %s: %w", name, err)
						}
						sendErrMu.Unlock()
						return
					}
				}
				// Pace the rounds so the flood spans the adaptive quarter's
				// context-dissemination + policy-evaluation window: the
				// reconfigurations must run under live traffic (resubmit
				// buffers and credits crossing epochs), not after it.
				clk.Sleep(30 * time.Millisecond)
			}
		})
	}
	for _, d := range done {
		clk.Wait(d)
	}
	if sendErr != nil {
		return nil, sendErr
	}
	floodActive.Store(false)
	// "Under load" must be literal: reconfigurations have to commit while
	// the flood is still running, so epoch transitions exercise live
	// credits and resubmit buffers. A standing property of the scenario,
	// not a flaky timing assertion — the witness count is deterministic.
	if underLoad.Load() == 0 {
		return nil, fmt.Errorf("no reconfiguration committed while the flood ran: not under load")
	}

	// Every group settles on its expected configuration on every node…
	if !waitFor(clk, cfg.Timeout, func() bool {
		for i := 0; i < cfg.Groups; i++ {
			name, want := mgxName(i), mgxSettled(i)
			for _, id := range members {
				if groups[id][name].ConfigName() != want {
					return false
				}
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("groups never settled on their expected configurations")
	}
	// …and delivers the complete flood at both observers.
	want := cfg.Messages
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, perNode := range obs {
			for _, o := range perNode {
				if seq, _ := o.snapshot(); len(seq) < want {
					return false
				}
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("flood deliveries incomplete")
	}

	// …and stability gossip returns every window credit (quiescence).
	if !waitFor(clk, cfg.Timeout, func() bool {
		for i := 0; i < cfg.Groups; i++ {
			fs := groups[MobileID][mgxName(i)].FlowStats()
			if fs.Window.InUse != 0 || fs.BufferedSends != 0 {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("window credits never drained")
	}

	// Harvest: per-group rows plus the shared invariant suite.
	caps := invariants.CapsFor(cfg.SendWindow, 1)
	rows := make([]ManyGroupsRow, 0, cfg.Groups)
	for i := 0; i < cfg.Groups; i++ {
		name := mgxName(i)
		g := groups[MobileID][name]
		fs := g.FlowStats()
		var bad []string
		accepted := map[invariants.StreamKey]int{
			{Origin: MobileID, Stream: name}: cfg.Messages,
		}
		var row ManyGroupsRow
		row.Group = name
		row.Config = g.ConfigName()
		row.Epoch = g.Epoch()
		for _, id := range []appia.NodeID{1, MobileID} {
			o := obs[id][name]
			seq, leaked := o.snapshot()
			label := fmt.Sprintf("node %d/%s", id, name)
			bad = append(bad, invariants.CheckDeliveries(label, seq, accepted)...)
			bad = append(bad, invariants.CheckNoLeak(label, leaked)...)
			if id == 1 {
				row.DeliveredFixed = len(seq)
			} else {
				row.DeliveredMobile = len(seq)
			}
			row.Leaked += leaked
		}
		bad = append(bad, caps.CheckBounded(invariants.FlowRow{
			Label:            fmt.Sprintf("mobile/%s", name),
			WindowHighWater:  fs.Window.HighWater,
			WindowInUse:      fs.Window.InUse,
			Acquired:         fs.Window.Acquired,
			Released:         fs.Window.Released,
			MailboxHighWater: fs.MailboxHighWater,
			NakSentHW:        fs.Nak.SentHighWater,
			NakHistoryHW:     fs.Nak.HistoryHighWater,
			NakBufferHW:      fs.Nak.BufferHighWater,
			NakEvicted:       fs.Nak.Evicted,
			BufferedSends:    fs.BufferedSends,
		})...)
		if len(bad) > 0 {
			sort.Strings(bad)
			return nil, fmt.Errorf("group %s invariant violations:\n  %s",
				name, strings.Join(bad, "\n  "))
		}
		row.WindowHighWater = fs.Window.HighWater
		row.Acquired = fs.Window.Acquired
		rows = append(rows, row)
	}
	return rows, nil
}
