package experiment

import (
	"fmt"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/core"
	"morpheus/internal/epidemic"
	"morpheus/internal/group"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// --- E4: reconfiguration latency ------------------------------------------

// ReconfigRow reports the cost of one group-wide reconfiguration.
type ReconfigRow struct {
	Nodes   int
	Latency time.Duration
}

// RunReconfigLatency measures, per group size, the wall time from the
// coordinator's decision to the last member's deployment acknowledgement —
// the cost of the §3.3 procedure (trigger view change, flush to
// quiescence, ship XML, rebuild, resume).
func RunReconfigLatency(sizes []int, timeout time.Duration, seed int64) ([]ReconfigRow, error) {
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	rows := make([]ReconfigRow, 0, len(sizes))
	for _, n := range sizes {
		w := hybridWorld(seed+int64(n), nil)
		members := hybridMembers(n)
		tookCh := make(chan time.Duration, 4)
		var nodes []*morpheus.Node
		for _, id := range members {
			kind, seg := vnet.Fixed, "lan"
			if id == MobileID {
				kind, seg = vnet.Mobile, "wlan"
			}
			nd, err := morpheus.Start(morpheus.Config{
				World: w, ID: id, Kind: kind, Segments: []string{seg},
				Members:         members,
				Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
				ContextInterval: 30 * time.Millisecond,
				EvalInterval:    50 * time.Millisecond,
				PublishOnChange: true,
				OnReconfigured: func(epoch uint64, name string, took time.Duration) {
					select {
					case tookCh <- took:
					default:
					}
				},
			})
			if err != nil {
				w.Close()
				return nil, err
			}
			nodes = append(nodes, nd)
		}
		var took time.Duration
		select {
		case took = <-tookCh:
		case <-clock.Wall().After(timeout):
			for _, nd := range nodes {
				_ = nd.Close()
			}
			w.Close()
			return nil, fmt.Errorf("reconfig latency n=%d: never completed", n)
		}
		for _, nd := range nodes {
			_ = nd.Close()
		}
		w.Close()
		rows = append(rows, ReconfigRow{Nodes: n, Latency: took})
	}
	return rows, nil
}

// --- E5: multicast strategies at scale -------------------------------------

// StrategyRow compares dissemination strategies for one group size.
type StrategyRow struct {
	Nodes         int
	Strategy      string
	SenderTx      uint64  // transmissions by the multicast source
	MaxNodeTx     uint64  // worst per-node transmission load
	TotalTx       uint64  // network-wide transmissions
	DeliveryRatio float64 // delivered / (messages × (n−1))
}

// StrategyConfig parameterises the sweep.
type StrategyConfig struct {
	Sizes    []int
	Messages int
	Loss     float64
	Fanout   int
	Rounds   int
	Timeout  time.Duration
	Seed     int64
}

func (c *StrategyConfig) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{8, 16, 32}
	}
	if c.Messages == 0 {
		c.Messages = 200
	}
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// RunMulticastStrategies compares the three best-effort bottoms the paper's
// introduction discusses — point-to-point fan-out, native multicast, and
// epidemic dissemination — on per-node load and raw (unrepaired) coverage.
func RunMulticastStrategies(cfg StrategyConfig) ([]StrategyRow, error) {
	cfg.defaults()
	var rows []StrategyRow
	for _, n := range cfg.Sizes {
		for _, strat := range []string{"fanout", "nativemcast", "epidemic"} {
			row, err := runStrategy(n, strat, cfg)
			if err != nil {
				return nil, fmt.Errorf("strategy %s n=%d: %w", strat, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// bebNode is a node running only transport + one best-effort bottom.
type bebNode struct {
	id        appia.NodeID
	vn        *vnet.Node
	sched     *appia.Scheduler
	ch        *appia.Channel
	delivered counter
}

func runStrategy(n int, strat string, cfg StrategyConfig) (StrategyRow, error) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := vnet.NewWorldWithClock(cfg.Seed+int64(n), clk)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true, Loss: cfg.Loss})
	group.RegisterWireEvents(nil)

	members := make([]appia.NodeID, n)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	var nodes []*bebNode
	defer func() {
		for _, nd := range nodes {
			_ = nd.ch.Close()
			nd.sched.Close()
		}
	}()
	for _, id := range members {
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			return StrategyRow{}, err
		}
		nd := &bebNode{id: id, vn: vn, sched: appia.NewSchedulerWithClock(clk)}
		var beb appia.Layer
		switch strat {
		case "fanout":
			beb = group.NewFanoutLayer(group.FanoutConfig{Self: id, InitialMembers: members})
		case "nativemcast":
			beb = transport.NewNativeMulticastLayer(transport.NativeMulticastConfig{
				Config:  transport.Config{Node: vn, Port: "beb", Logf: func(string, ...any) {}},
				Segment: "lan",
			})
		case "epidemic":
			beb = epidemic.NewLayer(epidemic.Config{
				Self: id, InitialMembers: members,
				Fanout: cfg.Fanout, Rounds: cfg.Rounds, Seed: cfg.Seed + int64(id),
			})
		default:
			return StrategyRow{}, fmt.Errorf("unknown strategy %q", strat)
		}
		q, err := appia.NewQoS(strat,
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "beb", Logf: func(string, ...any) {}}),
			beb,
		)
		if err != nil {
			return StrategyRow{}, err
		}
		nd.ch = q.CreateChannel("data", nd.sched, appia.WithDeliver(func(ev appia.Event) {
			if _, ok := ev.(*group.CastEvent); ok {
				nd.delivered.add()
			}
		}))
		if err := nd.ch.Start(); err != nil {
			return StrategyRow{}, err
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		if !nd.ch.WaitReady(5 * time.Second) {
			return StrategyRow{}, fmt.Errorf("node %d never ready", nd.id)
		}
	}

	sender := nodes[0]
	for i := 0; i < cfg.Messages; i++ {
		ev := &group.CastEvent{}
		ev.Msg = appia.NewMessage(mkPayload(i))
		if err := sender.ch.Insert(ev, appia.Down); err != nil {
			return StrategyRow{}, err
		}
	}
	// Best-effort: wait until delivery counts stop moving.
	waitStable(clk, cfg.Timeout, func() int {
		total := 0
		for _, nd := range nodes {
			total += nd.delivered.get()
		}
		return total
	})

	row := StrategyRow{Nodes: n, Strategy: strat}
	expected := float64(cfg.Messages) * float64(n-1)
	var deliveredTotal int
	for _, nd := range nodes {
		c := nd.vn.Counters()
		tx := c.TotalTx()
		row.TotalTx += tx
		if tx > row.MaxNodeTx {
			row.MaxNodeTx = tx
		}
		if nd == sender {
			row.SenderTx = tx
		} else {
			deliveredTotal += nd.delivered.get()
		}
	}
	row.DeliveryRatio = float64(deliveredTotal) / expected
	return row, nil
}

// waitStable polls a monotone counter until it stops increasing for a few
// consecutive checks (or the timeout passes).
func waitStable(clk clock.Clock, timeout time.Duration, read func() int) {
	deadline := clk.Now().Add(timeout)
	last, quiet := -1, 0
	for clk.Now().Before(deadline) {
		cur := read()
		if cur == last {
			quiet++
			if quiet >= 10 {
				return
			}
		} else {
			quiet = 0
			last = cur
		}
		clk.Sleep(10 * time.Millisecond)
	}
}

// --- E6: battery-aware relay rotation ---------------------------------------

// EnergyRow reports network lifetime with and without battery-aware
// adaptation.
type EnergyRow struct {
	Mode              string // "static" | "adaptive"
	CastsBeforeDeath  int
	FirstDead         appia.NodeID
	ReconfigurationsN int
}

// EnergyConfig parameterises the lifetime experiment.
type EnergyConfig struct {
	Nodes    int
	Capacity float64
	Timeout  time.Duration
	Seed     int64
}

func (c *EnergyConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Capacity == 0 {
		c.Capacity = 0.4
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
}

// RunEnergyLifetime compares a static relay choice against the EnergyPolicy
// rotation in an all-mobile cell: each member multicasts in turn until the
// first battery dies. Rotation spreads the echo burden, so the adaptive
// mode sustains more casts (paper §1, [20]).
func RunEnergyLifetime(cfg EnergyConfig) ([]EnergyRow, error) {
	cfg.defaults()
	var rows []EnergyRow
	for _, mode := range []string{"static", "adaptive"} {
		row, err := runEnergyMode(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("energy %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runEnergyMode(mode string, cfg EnergyConfig) (EnergyRow, error) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := vnet.NewWorldWithClock(cfg.Seed, clk)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})

	members := make([]appia.NodeID, cfg.Nodes)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	energy := vnet.EnergyConfig{
		CapacityJ:  cfg.Capacity,
		TxPerMsgJ:  0.001,
		RxPerMsgJ:  0.0002,
		TxPerByteJ: 0, RxPerByteJ: 0,
	}

	var reconfigs counter
	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	var policies []morpheus.Policy
	if mode == "adaptive" {
		policies = []morpheus.Policy{core.EnergyPolicy{Hysteresis: 0.2}}
	}
	initial := core.MechoConfig(members[0])
	initialName := core.MechoConfigName(members[0])
	for _, id := range members {
		e := energy
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: vnet.Mobile, Segments: []string{"wlan"},
			Members:           members,
			Energy:            &e,
			InitialConfig:     initial,
			InitialConfigName: initialName,
			Policies:          policies,
			ContextInterval:   40 * time.Millisecond,
			EvalInterval:      60 * time.Millisecond,
			PublishOnChange:   true,
			OnReconfigured: func(uint64, string, time.Duration) {
				reconfigs.add()
			},
		})
		if err != nil {
			return EnergyRow{}, err
		}
		nodes = append(nodes, nd)
	}

	// Let context dissemination settle so the policy sees every battery.
	clk.Sleep(200 * time.Millisecond)

	casts := 0
	deadline := clk.Now().Add(cfg.Timeout)
	row := EnergyRow{Mode: mode}
	for clk.Now().Before(deadline) {
		dead := appia.NoNode
		for _, nd := range nodes {
			if !nd.VNode().Alive() {
				dead = nd.ID()
				break
			}
		}
		if dead != appia.NoNode {
			row.FirstDead = dead
			break
		}
		sender := nodes[casts%len(nodes)]
		if err := sender.Send(mkPayload(casts)); err == nil {
			casts++
		}
		// Pace the workload so battery context keeps flowing and the
		// adaptation loop (sample → disseminate → evaluate → reconfigure)
		// can act between drains, as it would at chat-like rates.
		clk.Sleep(2 * time.Millisecond)
	}
	row.CastsBeforeDeath = casts
	row.ReconfigurationsN = reconfigs.get()
	return row, nil
}

// --- E7: error recovery strategies ------------------------------------------

// ErrorRecoveryRow compares ARQ and FEC at one loss rate.
type ErrorRecoveryRow struct {
	Loss          float64
	Strategy      string // "arq" | "fec"
	DeliveryRatio float64
	TotalTx       uint64
	TxPerDelivery float64
	Elapsed       time.Duration
}

// ErrorRecoveryConfig parameterises the sweep.
type ErrorRecoveryConfig struct {
	LossRates []float64
	Nodes     int
	Messages  int
	K, M      int
	Timeout   time.Duration
	Seed      int64
}

func (c *ErrorRecoveryConfig) defaults() {
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0.001, 0.01, 0.05, 0.10, 0.20}
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Messages == 0 {
		c.Messages = 400
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.M == 0 {
		c.M = 2
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 13
	}
}

// RunErrorRecovery reproduces the §2 trade-off: detect-and-retransmit (the
// NAK layer) versus masking (Reed–Solomon FEC) across loss rates. ARQ
// reaches full delivery but its repair traffic grows with loss; FEC keeps
// traffic flat but its coverage decays once losses exceed the parity
// budget. The crossover motivates run-time adaptation.
func RunErrorRecovery(cfg ErrorRecoveryConfig) ([]ErrorRecoveryRow, error) {
	cfg.defaults()
	var rows []ErrorRecoveryRow
	for _, p := range cfg.LossRates {
		for _, strat := range []string{"arq", "fec"} {
			row, err := runErrorRecovery(strat, p, cfg)
			if err != nil {
				return nil, fmt.Errorf("error recovery %s p=%g: %w", strat, p, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runErrorRecovery(strat string, loss float64, cfg ErrorRecoveryConfig) (ErrorRecoveryRow, error) {
	w := vnet.NewWorld(cfg.Seed)
	defer w.Close()
	w.AddSegment(vnet.SegmentConfig{Name: "lan", Loss: loss})

	members := make([]appia.NodeID, cfg.Nodes)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	var doc *morpheus.Document
	var name string
	if strat == "arq" {
		doc, name = core.ArqConfig(), core.ArqConfigName
	} else {
		doc, name = core.FecConfig(cfg.K, cfg.M), core.FecConfigName
	}
	var nodes []*rawNode
	defer func() {
		for _, nd := range nodes {
			nd.close()
		}
	}()
	for _, id := range members {
		nd, err := startRawNode(w, id, vnet.Fixed, "lan", members, doc, name)
		if err != nil {
			return ErrorRecoveryRow{}, err
		}
		nodes = append(nodes, nd)
	}

	start := clock.Wall().Now()
	sender := nodes[0]
	for i := 0; i < cfg.Messages; i++ {
		if err := sender.send(mkPayload(i)); err != nil {
			return ErrorRecoveryRow{}, err
		}
	}
	// ARQ converges to full delivery; FEC plateaus. Wait for stability.
	expected := cfg.Messages * (cfg.Nodes - 1)
	if strat == "arq" {
		waitFor(clock.Wall(), cfg.Timeout, func() bool {
			return receiversDelivered(nodes, sender) >= expected
		})
	} else {
		waitStable(clock.Wall(), cfg.Timeout, func() int { return receiversDelivered(nodes, sender) })
	}
	elapsed := clock.Wall().Since(start)

	row := ErrorRecoveryRow{Loss: loss, Strategy: strat, Elapsed: elapsed}
	for _, nd := range nodes {
		row.TotalTx += nd.vn.Counters().TotalTx()
	}
	delivered := receiversDelivered(nodes, sender)
	row.DeliveryRatio = float64(delivered) / float64(expected)
	if delivered > 0 {
		row.TxPerDelivery = float64(row.TotalTx) / float64(delivered)
	}
	return row, nil
}

// receiversDelivered sums deliveries across everyone but the sender (whose
// self-deliveries are local and free).
func receiversDelivered(nodes []*rawNode, sender *rawNode) int {
	total := 0
	for _, nd := range nodes {
		if nd != sender {
			total += nd.delivered.get()
		}
	}
	return total
}

// --- E8: view-synchronous flush ablation ------------------------------------

// FlushAblationRow reports message continuity across a reconfiguration.
type FlushAblationRow struct {
	Mode      string // "flush" | "force"
	Sent      int
	MinGotAll int // smallest delivery count across members
	Lost      int // Sent − MinGotAll
	Reconfigs int
}

// RunFlushAblation quantifies what the §3.3 quiescence step buys: messages
// are sent continuously while the group reconfigures from plain to Mecho.
// With the view-synchronous flush nothing is lost; when the flush is
// skipped (quiescence timeout forced to ~zero) the tear-down races in-flight
// traffic and messages disappear.
func RunFlushAblation(messages int, seed int64) ([]FlushAblationRow, error) {
	if messages == 0 {
		messages = 300
	}
	var rows []FlushAblationRow
	for _, mode := range []string{"flush", "force"} {
		row, err := runFlushMode(mode, messages, seed)
		if err != nil {
			return nil, fmt.Errorf("flush ablation %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runFlushMode(mode string, messages int, seed int64) (FlushAblationRow, error) {
	w := hybridWorld(seed, nil)
	defer w.Close()
	members := hybridMembers(3)

	quiesce := 10 * time.Second
	if mode == "force" {
		quiesce = time.Millisecond
	}
	var reconfigs counter
	counters := make(map[appia.NodeID]*counter)
	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		kind, seg := vnet.Fixed, "lan"
		if id == MobileID {
			kind, seg = vnet.Mobile, "wlan"
		}
		c := &counter{}
		counters[id] = c
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 30 * time.Millisecond,
			EvalInterval:    40 * time.Millisecond,
			PublishOnChange: true,
			QuiesceTimeout:  quiesce,
			OnMessage:       func(from morpheus.NodeID, payload []byte) { c.add() },
			OnReconfigured:  func(uint64, string, time.Duration) { reconfigs.add() },
		})
		if err != nil {
			return FlushAblationRow{}, err
		}
		nodes = append(nodes, nd)
	}
	// Send continuously across the adaptation window from node 1.
	sender := nodes[0]
	for i := 0; i < messages; i++ {
		if err := sender.Send(mkPayload(i)); err != nil {
			return FlushAblationRow{}, err
		}
		clock.Wall().Sleep(time.Millisecond)
	}
	// Allow late repairs to finish.
	waitStable(clock.Wall(), 20*time.Second, func() int {
		total := 0
		for _, c := range counters {
			total += c.get()
		}
		return total
	})
	row := FlushAblationRow{Mode: mode, Sent: messages, MinGotAll: messages, Reconfigs: reconfigs.get()}
	for _, c := range counters {
		if got := c.get(); got < row.MinGotAll {
			row.MinGotAll = got
		}
	}
	row.Lost = row.Sent - row.MinGotAll
	return row, nil
}

// guard against unused imports during refactors.
var _ sync.Mutex
