package experiment

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/core"
)

// --- E9: multi-group hosting -------------------------------------------------

// MultiGroupRow reports one hosted group of the E9 scenario: its final
// configuration, the mobile's per-group data transmissions in the measured
// phase, and the same quantity from an identically seeded single-group run
// of the same stack — the two must match, proving that co-hosting N groups
// on one node costs each group nothing and leaks nothing.
type MultiGroupRow struct {
	Group  string
	Config string
	Epoch  uint64
	// MobileDataTx is the mobile's data-class transmissions attributed to
	// this group during the measured phase of the multi-group run.
	MobileDataTx uint64
	// SingleRunDataTx is the same workload measured in a dedicated
	// single-group run at the same seed.
	SingleRunDataTx uint64
	// Delivered is how many measured-phase payloads the observer node
	// delivered in this group (want: Messages).
	Delivered int
	// Leaked counts deliveries that crossed a group boundary (want: 0).
	Leaked int
}

// MultiGroupConfig parameterises the E9 scenario.
type MultiGroupConfig struct {
	// StressMessages are sent per group by the mobile while two groups
	// reconfigure underneath the traffic (default 40).
	StressMessages int
	// Messages are sent per group in the measured phase, after the
	// reconfigurations settle (default 150).
	Messages int
	// Timeout bounds the run.
	Timeout time.Duration
	// Seed drives the virtual network (multi-group and single-group runs
	// use the same seed).
	Seed int64
}

func (c *MultiGroupConfig) defaults() {
	if c.StressMessages == 0 {
		c.StressMessages = 40
	}
	if c.Messages == 0 {
		c.Messages = 150
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
}

// mgGroupSpec describes one hosted group of the scenario.
type mgGroupSpec struct {
	name        string
	policies    []morpheus.Policy
	initial     *morpheus.Document
	initialName string
	// settled is the configuration the group must reach before the
	// measured phase.
	settled string
}

// mgSpecs is the paper-flavoured group mix: two groups that adapt
// plain→Mecho concurrently under load, one pinned to plain, one pinned to
// Mecho from the start.
func mgSpecs() []mgGroupSpec {
	return []mgGroupSpec{
		{name: "alpha", policies: []morpheus.Policy{core.HybridMechoPolicy{}}, settled: core.MechoConfigName(1)},
		{name: "beta", policies: []morpheus.Policy{core.HybridMechoPolicy{}}, settled: core.MechoConfigName(1)},
		{name: "gamma", settled: core.PlainConfigName},
		{name: "delta", initial: core.MechoConfig(1), initialName: core.MechoConfigName(1), settled: core.MechoConfigName(1)},
	}
}

// mgCollector tallies one group's deliveries at one node and counts
// cross-group leaks via the group tag and the payload marker.
type mgCollector struct {
	group  string
	mu     sync.Mutex
	got    int
	leaked int
}

func (c *mgCollector) config(members []appia.NodeID, spec mgGroupSpec) morpheus.GroupConfig {
	return morpheus.GroupConfig{
		Members:           members,
		Policies:          spec.policies,
		InitialConfig:     spec.initial,
		InitialConfigName: spec.initialName,
		OnCast: func(ev *morpheus.CastEvent) {
			c.mu.Lock()
			defer c.mu.Unlock()
			if ev.Group != c.group || !strings.HasPrefix(string(ev.Msg.Bytes()), "g="+c.group+";") {
				c.leaked++
				return
			}
			c.got++
		},
	}
}

func (c *mgCollector) counts() (got, leaked int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got, c.leaked
}

// mgPayload marks a payload with its group so leaks are detectable.
func mgPayload(group string, i int) []byte {
	return []byte(fmt.Sprintf("g=%s;line %06d from the pda", group, i))
}

// RunMultiGroup is E9: one node set (three fixed, one mobile PDA) hosts
// four groups with mixed plain/Mecho configurations over a single shared
// endpoint and control plane. Phase 1 stresses the runtime — the mobile
// multicasts in every group concurrently while alpha and beta reconfigure
// plain→Mecho at the same time. Phase 2 measures the mobile's per-group
// Figure-3-style transmission cost and replays the identical workload in
// four dedicated single-group runs at the same seed: per-group counters
// must match, and nothing may cross group boundaries.
func RunMultiGroup(cfg MultiGroupConfig) ([]MultiGroupRow, error) {
	cfg.defaults()
	specs := mgSpecs()
	members := []appia.NodeID{1, 2, 3, MobileID}

	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed, clk)
	defer w.Close()

	nodes := make(map[appia.NodeID]*morpheus.Node, len(members))
	groups := make(map[appia.NodeID]map[string]*morpheus.Group)
	// observer deliveries are tallied at node 1 (the relay: it sees every
	// configuration's traffic) per group.
	obs := make(map[string]*mgCollector, len(specs))
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range members {
		kind, seg := morpheus.Fixed, "lan"
		if id == MobileID {
			kind, seg = morpheus.Mobile, "wlan"
		}
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
		})
		if err != nil {
			return nil, err
		}
		nodes[id] = nd
		groups[id] = make(map[string]*morpheus.Group)
		for _, spec := range specs {
			col := &mgCollector{group: spec.name}
			if id == 1 {
				obs[spec.name] = col
			}
			g, err := nd.Join(spec.name, col.config(members, spec))
			if err != nil {
				return nil, fmt.Errorf("node %d join %s: %w", id, spec.name, err)
			}
			groups[id][spec.name] = g
		}
	}
	// Phase 1 — stress: concurrent sends in every group while alpha and
	// beta reconfigure underneath. The senders are clock actors: they join
	// the virtual clock's run-token rotation and pace themselves with
	// virtual sleeps, so the cross-group interleaving is deterministic.
	var sendErr error
	var sendErrMu sync.Mutex
	done := make([]chan struct{}, len(specs))
	for si, spec := range specs {
		d := make(chan struct{})
		done[si] = d
		name := spec.name
		clk.Go(func() {
			defer close(d)
			g := groups[MobileID][name]
			for i := 0; i < cfg.StressMessages; i++ {
				if err := g.Send(mgPayload(name, i)); err != nil {
					sendErrMu.Lock()
					if sendErr == nil {
						sendErr = fmt.Errorf("stress send %s: %w", name, err)
					}
					sendErrMu.Unlock()
					return
				}
				clk.Sleep(time.Millisecond)
			}
		})
	}
	for _, d := range done {
		clk.Wait(d)
	}
	if sendErr != nil {
		return nil, sendErr
	}
	// Every group must settle on its expected configuration on every node.
	for _, spec := range specs {
		spec := spec
		if !waitFor(clk, cfg.Timeout, func() bool {
			for _, id := range members {
				if groups[id][spec.name].ConfigName() != spec.settled {
					return false
				}
			}
			return true
		}) {
			return nil, fmt.Errorf("group %s never settled on %s", spec.name, spec.settled)
		}
	}
	// ... and deliver the complete stress workload at the observer.
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, spec := range specs {
			if got, _ := obs[spec.name].counts(); got < cfg.StressMessages {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("stress deliveries incomplete")
	}

	// Phase 2 — measured: interleave Messages casts per group round-robin
	// and attribute the mobile's transmissions per group.
	baseline := make(map[string]int, len(specs))
	for _, spec := range specs {
		got, _ := obs[spec.name].counts()
		baseline[spec.name] = got
		groups[MobileID][spec.name].ResetCounters()
	}
	for i := 0; i < cfg.Messages; i++ {
		for _, spec := range specs {
			if err := groups[MobileID][spec.name].Send(mgPayload(spec.name, cfg.StressMessages+i)); err != nil {
				return nil, fmt.Errorf("measured send %s: %w", spec.name, err)
			}
		}
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, spec := range specs {
			if got, _ := obs[spec.name].counts(); got < baseline[spec.name]+cfg.Messages {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("measured deliveries incomplete")
	}

	rows := make([]MultiGroupRow, 0, len(specs))
	for _, spec := range specs {
		g := groups[MobileID][spec.name]
		got, leaked := obs[spec.name].counts()
		single, err := runSingleGroupEquivalent(spec, cfg, members)
		if err != nil {
			return nil, fmt.Errorf("single-group equivalent %s: %w", spec.name, err)
		}
		rows = append(rows, MultiGroupRow{
			Group:           spec.name,
			Config:          g.ConfigName(),
			Epoch:           g.Epoch(),
			MobileDataTx:    g.Counters().Tx[appia.ClassData].Msgs,
			SingleRunDataTx: single,
			Delivered:       got - baseline[spec.name],
			Leaked:          leaked,
		})
	}
	return rows, nil
}

// runSingleGroupEquivalent replays one group's measured-phase workload in a
// dedicated single-group deployment at the same seed and returns the
// mobile's data transmissions.
func runSingleGroupEquivalent(spec mgGroupSpec, cfg MultiGroupConfig, members []appia.NodeID) (uint64, error) {
	// A nested simulation on its own virtual clock: the outer run's clock
	// simply does not advance while the driver is in here.
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed, clk)
	defer w.Close()
	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	obs := &mgCollector{group: spec.name}
	for _, id := range members {
		kind, seg := morpheus.Fixed, "lan"
		if id == MobileID {
			kind, seg = morpheus.Mobile, "wlan"
		}
		ndCfg := morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			ContextInterval: 40 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
		}
		nd, err := morpheus.Start(ndCfg)
		if err != nil {
			return 0, err
		}
		nodes = append(nodes, nd)
		gc := obs.config(members, spec)
		if id != 1 {
			gc.OnCast = nil // only node 1 observes
		}
		if _, err := nd.Join(spec.name, gc); err != nil {
			return 0, err
		}
	}
	var mobile *morpheus.Node
	for _, nd := range nodes {
		if nd.ID() == MobileID {
			mobile = nd
		}
	}
	g := mobile.Group(spec.name)
	// Same settle condition as the multi-group run. Adaptive groups need a
	// little traffic-free time for context dissemination either way.
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, nd := range nodes {
			if nd.Group(spec.name).ConfigName() != spec.settled {
				return false
			}
		}
		return true
	}) {
		return 0, fmt.Errorf("never settled on %s", spec.settled)
	}
	g.ResetCounters()
	for i := 0; i < cfg.Messages; i++ {
		if err := g.Send(mgPayload(spec.name, cfg.StressMessages+i)); err != nil {
			return 0, err
		}
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		got, _ := obs.counts()
		return got >= cfg.Messages
	}) {
		return 0, fmt.Errorf("deliveries incomplete")
	}
	return g.Counters().Tx[appia.ClassData].Msgs, nil
}
