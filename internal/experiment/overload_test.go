package experiment

import (
	"testing"
	"time"
)

// TestOverloadBounded is E10 at the golden scale: flooding senders, a
// mid-flood reconfiguration and a mid-flood partition, with every
// retention mark bounded by SendWindow-derived caps and credit accounting
// exact.
func TestOverloadBounded(t *testing.T) {
	cfg := goldenOverloadConfig(29)
	rows, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := CapsFor(cfg.SendWindow, 3)
	total := 3 * cfg.Messages
	var rejected uint64
	for _, r := range rows {
		t.Logf("node=%d sent=%d rejected=%d delivered=%d winHW=%d mboxHW=%d nak(sent/hist/buf)=%d/%d/%d evicted=%d epoch=%d cfg=%s",
			r.Node, r.Sent, r.Rejected, r.Delivered, r.WindowHighWater, r.MailboxHighWater,
			r.NakSentHW, r.NakHistoryHW, r.NakBufferHW, r.NakEvicted, r.Epoch, r.Config)
		for _, v := range caps.CheckBounded(r.Flow()) {
			t.Error(v)
		}
		if r.Delivered < total {
			t.Errorf("node %d delivered %d, want >= %d", r.Node, r.Delivered, total)
		}
		rejected += r.Rejected
		if r.Config != "mecho:relay=1" {
			t.Errorf("node %d final config %q", r.Node, r.Config)
		}
		// The partition forces at least two epochs: plain->mecho plus the
		// membership repair that evicts the victim.
		if r.Epoch < 3 {
			t.Errorf("node %d final epoch %d, want >= 3 (reconfig + membership repair)", r.Node, r.Epoch)
		}
	}
	if rejected == 0 {
		t.Error("TrySend sender saw no ErrWindowFull: the partition stall never exercised backpressure")
	}
}

// TestOverloadSoak is the slow-consumer soak of the bounded-memory claim:
// a ~10k-message flood against a partitioned peer. The retention marks
// must match the SendWindow-derived caps of the short run — bounded by
// the window, not by the flood length.
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is tier-1 only")
	}
	cfg := OverloadConfig{
		Messages:   3400, // ~10.2k casts across the three flooding senders
		SendWindow: 64,
		Timeout:    300 * time.Second,
		Seed:       31,
	}
	rows, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := CapsFor(cfg.SendWindow, 3)
	for _, r := range rows {
		t.Logf("node=%d sent=%d delivered=%d winHW=%d mboxHW=%d nak(sent/hist/buf)=%d/%d/%d evicted=%d",
			r.Node, r.Sent, r.Delivered, r.WindowHighWater, r.MailboxHighWater,
			r.NakSentHW, r.NakHistoryHW, r.NakBufferHW, r.NakEvicted)
		for _, v := range caps.CheckBounded(r.Flow()) {
			t.Error(v)
		}
		if r.Delivered < 3*cfg.Messages {
			t.Errorf("node %d delivered %d, want >= %d", r.Node, r.Delivered, 3*cfg.Messages)
		}
	}
}
