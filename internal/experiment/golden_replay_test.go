package experiment

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-replay suite is the executable form of the virtual clock
// plane's determinism guarantee: each experiment family runs three times at
// the same seed and must produce byte-identical counter matrices, and the
// matrix hashes must match the pinned values in testdata/golden.json.
//
// Regenerate the pins after an intentional protocol/behavior change with:
//
//	go test ./internal/experiment -run TestGoldenReplay -update-golden
//
// On failure, set GOLDEN_OUT=<dir> to dump the observed matrices (the CI
// determinism job uploads them as artifacts).

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json with the observed hashes")

const goldenSeed = 42

// goldenReplays is how many consecutive equal-seed runs must agree.
const goldenReplays = 3

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath(t))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatalf("read golden pins: %v", err)
	}
	pins := make(map[string]string)
	if err := json.Unmarshal(data, &pins); err != nil {
		t.Fatalf("parse golden pins: %v", err)
	}
	return pins
}

// dumpMatrix writes an observed matrix for artifact collection when
// GOLDEN_OUT is set.
func dumpMatrix(t *testing.T, name string, run int, res GoldenResult) {
	dir := os.Getenv("GOLDEN_OUT")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("golden dump: %v", err)
		return
	}
	payload := fmt.Sprintf("hash=%s\n%s", res.Hash, res.Matrix)
	file := filepath.Join(dir, fmt.Sprintf("%s-run%d.txt", name, run))
	if err := os.WriteFile(file, []byte(payload), 0o644); err != nil {
		t.Logf("golden dump: %v", err)
	}
}

func TestGoldenReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is tier-1 only (full runs under -race are slow)")
	}
	pins := loadGolden(t)
	observed := make(map[string]string)
	for _, runner := range GoldenRunners() {
		runner := runner
		t.Run(runner.Name, func(t *testing.T) {
			var first GoldenResult
			for i := 0; i < goldenReplays; i++ {
				res, err := RunGolden(runner, goldenSeed)
				if err != nil {
					t.Fatalf("run %d: %v", i+1, err)
				}
				dumpMatrix(t, runner.Name, i+1, res)
				if i == 0 {
					first = res
					continue
				}
				if res.Hash != first.Hash {
					t.Fatalf("nondeterministic: run %d hash %s != run 1 hash %s\nrun 1 matrix:\n%s\nrun %d matrix:\n%s",
						i+1, res.Hash, first.Hash, first.Matrix, i+1, res.Matrix)
				}
			}
			observed[runner.Name] = first.Hash
			if *updateGolden {
				return // pins rewritten below
			}
			pin, ok := pins[runner.Name]
			if !ok {
				t.Fatalf("no pinned hash for %q; run with -update-golden to record it", runner.Name)
			}
			if first.Hash != pin {
				t.Fatalf("matrix hash %s does not match pinned %s — a behavior change or a determinism regression; "+
					"matrix:\n%s\nif the change is intentional, regenerate with -update-golden",
					first.Hash, pin, first.Matrix)
			}
		})
	}
	if *updateGolden {
		if len(observed) != len(GoldenRunners()) {
			t.Fatalf("refusing to write partial pins (%d/%d experiments ran)", len(observed), len(GoldenRunners()))
		}
		data, err := json.MarshalIndent(observed, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d golden hashes to %s", len(observed), goldenPath(t))
	}
}
