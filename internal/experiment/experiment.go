// Package experiment contains the scenario builders and runners that
// regenerate the paper's evaluation (Figure 3) and the extension
// experiments catalogued in DESIGN.md. Each runner returns typed rows;
// cmd/morpheus-bench prints them as tables and bench_test.go wraps them as
// Go benchmarks at reduced scale.
package experiment

import (
	"fmt"
	"sync"
	"time"

	"morpheus"
	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/core"
	"morpheus/internal/group"
	"morpheus/internal/stack"
	"morpheus/internal/vnet"
)

// MobileID is the identifier the hybrid scenarios give the PDA. It is the
// highest ID so a fixed node always coordinates, as in the paper's testbed
// where the fixed infrastructure hosts the control roles.
const MobileID appia.NodeID = 100

// counter tracks per-node deliveries.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// waitFor polls cond until true or timeout; reports success. On a virtual
// clock each poll happens at a quiescent point of the simulation, so the
// value of cond — and therefore the driver's next action — is a
// deterministic function of virtual time.
func waitFor(clk clock.Clock, timeout time.Duration, cond func() bool) bool {
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if cond() {
			return true
		}
		clk.Sleep(2 * time.Millisecond)
	}
	return false
}

// hybridWorld builds the paper's two-segment testbed on the given clock.
func hybridWorld(seed int64, clk clock.Clock) *vnet.World {
	w := vnet.NewWorldWithClock(seed, clk)
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})
	return w
}

// hybridMembers returns n participants: fixed 1..n-1 plus the mobile.
func hybridMembers(n int) []appia.NodeID {
	ms := make([]appia.NodeID, 0, n)
	for i := 1; i < n; i++ {
		ms = append(ms, appia.NodeID(i))
	}
	return append(ms, MobileID)
}

// rawNode is a participant running a statically configured stack with no
// Morpheus control plane — the paper's "non-adaptive implementation".
type rawNode struct {
	id        appia.NodeID
	vn        *vnet.Node
	sched     *appia.Scheduler
	mgr       *stack.Manager
	delivered counter
}

// startRawNode deploys doc on a fresh node, on the world's clock.
func startRawNode(w *vnet.World, id appia.NodeID, kind vnet.Kind, seg string, members []appia.NodeID, doc *morpheus.Document, name string) (*rawNode, error) {
	vn, err := w.AddNode(id, kind, seg)
	if err != nil {
		return nil, err
	}
	stack.RegisterAllWireEvents(nil)
	n := &rawNode{id: id, vn: vn, sched: appia.NewSchedulerWithClock(w.Clock())}
	n.mgr = stack.NewManager(stack.ManagerConfig{
		Node:      vn,
		Self:      id,
		Scheduler: n.sched,
		Clock:     w.Clock(),
		OnDeliver: func(ev *group.CastEvent) { n.delivered.add() },
		Logf:      func(string, ...any) {},
	})
	if err := n.mgr.Deploy(doc, name, 1, members); err != nil {
		n.sched.Close()
		return nil, err
	}
	return n, nil
}

func (n *rawNode) close() {
	_ = n.mgr.Close()
	n.sched.Close()
}

// send multicasts an anonymous payload.
func (n *rawNode) send(payload []byte) error { return n.mgr.Send(payload) }

// Figure3Row is one point of the paper's Figure 3, plus the companion
// quantities used by the E2 (relay load) and E3 (control overhead)
// experiments.
type Figure3Row struct {
	Nodes int
	// Optimized is the total messages transmitted by the mobile device
	// with the adapted (Mecho) stack — the "optimized" series.
	Optimized uint64
	// NotOptimized is the same count with the plain fan-out stack.
	NotOptimized uint64
	// Breakdown for the optimized run.
	OptimizedData    uint64
	OptimizedControl uint64
	// RelayData is the data traffic the fixed relay absorbed (E2).
	RelayData uint64
	// NotOptimizedData is the data traffic in the baseline.
	NotOptimizedData uint64
}

// Figure3Config parameterises the reproduction.
type Figure3Config struct {
	// Sizes are the group sizes; the paper used 2, 3, 6 and 9.
	Sizes []int
	// Messages per run; the paper used 40 000.
	Messages int
	// Timeout bounds each run.
	Timeout time.Duration
	// Seed drives the virtual network.
	Seed int64
}

func (c *Figure3Config) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 6, 9}
	}
	if c.Messages == 0 {
		c.Messages = 40000
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunFigure3 reproduces the paper's experiment: a hybrid chat group where
// the mobile device sends Messages multicasts, counting every transmission
// the mobile's radio makes (data and control), with and without the Mecho
// adaptation. Each run executes on its own virtual clock, so the full
// counter matrix — control plane included — is bit-reproducible at equal
// seeds; timeouts are virtual time.
func RunFigure3(cfg Figure3Config) ([]Figure3Row, error) {
	cfg.defaults()
	rows := make([]Figure3Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		opt, err := runFigure3Optimized(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure3 optimized n=%d: %w", n, err)
		}
		base, err := runFigure3Baseline(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure3 baseline n=%d: %w", n, err)
		}
		opt.NotOptimized = base.NotOptimized
		opt.NotOptimizedData = base.NotOptimizedData
		rows = append(rows, opt)
	}
	return rows, nil
}

// runFigure3Optimized runs the adapted version: full Morpheus nodes with
// the hybrid policy; measurement starts once Mecho is deployed everywhere.
func runFigure3Optimized(n int, cfg Figure3Config) (Figure3Row, error) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed, clk)
	defer w.Close()
	members := hybridMembers(n)

	var nodes []*morpheus.Node
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	counters := make(map[appia.NodeID]*counter, n)
	for _, id := range members {
		id := id
		kind, seg := vnet.Fixed, "lan"
		if id == MobileID {
			kind, seg = vnet.Mobile, "wlan"
		}
		c := &counter{}
		counters[id] = c
		nd, err := morpheus.Start(morpheus.Config{
			World: w, ID: id, Kind: kind, Segments: []string{seg},
			Members:         members,
			Policies:        []morpheus.Policy{core.HybridMechoPolicy{}},
			ContextInterval: 50 * time.Millisecond,
			EvalInterval:    50 * time.Millisecond,
			PublishOnChange: true,
			OnMessage:       func(from morpheus.NodeID, payload []byte) { c.add() },
		})
		if err != nil {
			return Figure3Row{}, err
		}
		nodes = append(nodes, nd)
	}
	// Wait for the adaptation to Mecho (relay = node 1) on all nodes.
	wantCfg := core.MechoConfigName(1)
	if n == 2 {
		// Two nodes: one fixed + one mobile is still hybrid; the policy
		// deploys Mecho with the single fixed node as relay.
		wantCfg = core.MechoConfigName(1)
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, nd := range nodes {
			if nd.ConfigName() != wantCfg {
				return false
			}
		}
		return true
	}) {
		return Figure3Row{}, fmt.Errorf("mecho never deployed on all %d nodes", n)
	}

	var mobile *morpheus.Node
	var relay *morpheus.Node
	for _, nd := range nodes {
		if nd.ID() == MobileID {
			mobile = nd
		}
		if nd.ID() == 1 {
			relay = nd
		}
	}
	mobile.Endpoint().ResetCounters()
	relay.Endpoint().ResetCounters()

	for i := 0; i < cfg.Messages; i++ {
		if err := mobile.Send(mkPayload(i)); err != nil {
			return Figure3Row{}, err
		}
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		for id, c := range counters {
			_ = id
			if c.get() < cfg.Messages {
				return false
			}
		}
		return true
	}) {
		return Figure3Row{}, fmt.Errorf("optimized n=%d: deliveries incomplete", n)
	}
	mc := mobile.Endpoint().Counters()
	rc := relay.Endpoint().Counters()
	return Figure3Row{
		Nodes:            n,
		Optimized:        mc.TotalTx(),
		OptimizedData:    mc.Tx[appia.ClassData].Msgs,
		OptimizedControl: mc.Tx[appia.ClassControl].Msgs,
		RelayData:        rc.Tx[appia.ClassData].Msgs,
	}, nil
}

// runFigure3Baseline runs the non-adaptive version: the plain stack with no
// Morpheus control plane at all.
func runFigure3Baseline(n int, cfg Figure3Config) (Figure3Row, error) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := hybridWorld(cfg.Seed+1000, clk)
	defer w.Close()
	members := hybridMembers(n)

	var nodes []*rawNode
	defer func() {
		for _, nd := range nodes {
			nd.close()
		}
	}()
	for _, id := range members {
		kind, seg := vnet.Fixed, "lan"
		if id == MobileID {
			kind, seg = vnet.Mobile, "wlan"
		}
		nd, err := startRawNode(w, id, kind, seg, members, core.PlainConfig(), core.PlainConfigName)
		if err != nil {
			return Figure3Row{}, err
		}
		nodes = append(nodes, nd)
	}
	var mobile *rawNode
	for _, nd := range nodes {
		if nd.id == MobileID {
			mobile = nd
		}
	}
	mobile.vn.ResetCounters()
	for i := 0; i < cfg.Messages; i++ {
		if err := mobile.send(mkPayload(i)); err != nil {
			return Figure3Row{}, err
		}
	}
	if !waitFor(clk, cfg.Timeout, func() bool {
		for _, nd := range nodes {
			if nd.delivered.get() < cfg.Messages {
				return false
			}
		}
		return true
	}) {
		return Figure3Row{}, fmt.Errorf("baseline n=%d: deliveries incomplete", n)
	}
	mc := mobile.vn.Counters()
	return Figure3Row{
		Nodes:            n,
		NotOptimized:     mc.TotalTx(),
		NotOptimizedData: mc.Tx[appia.ClassData].Msgs,
	}, nil
}

// mkPayload builds a chat-sized payload (the paper's chat lines).
func mkPayload(i int) []byte {
	return []byte(fmt.Sprintf("chat line %06d from the pda", i))
}
