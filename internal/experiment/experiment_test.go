package experiment

import (
	"testing"
	"time"
)

// TestFigure3ShapeSmall runs the Figure 3 reproduction at reduced scale and
// asserts the paper's qualitative result: the optimized (Mecho) mobile load
// stays flat while the non-optimized load grows with the group size.
func TestFigure3ShapeSmall(t *testing.T) {
	rows, err := RunFigure3(Figure3Config{
		Sizes:    []int{2, 3, 6},
		Messages: 300,
		Timeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("n=%d optimized=%d (data %d, control %d) notOptimized=%d (data %d) relay=%d",
			r.Nodes, r.Optimized, r.OptimizedData, r.OptimizedControl,
			r.NotOptimized, r.NotOptimizedData, r.RelayData)
		// The adapted mobile sends exactly one data message per cast.
		if r.OptimizedData != 300 {
			t.Errorf("n=%d: optimized data tx = %d, want 300", r.Nodes, r.OptimizedData)
		}
		// The baseline mobile fans out to n−1 peers per cast.
		wantBase := uint64(300 * (r.Nodes - 1))
		if r.NotOptimizedData != wantBase {
			t.Errorf("n=%d: baseline data tx = %d, want %d", r.Nodes, r.NotOptimizedData, wantBase)
		}
	}
	// Equal at n=2 (both are a single point-to-point message per cast, as
	// the paper notes); divergence beyond.
	if rows[0].OptimizedData != rows[0].NotOptimizedData {
		t.Errorf("n=2: data loads must match: %d vs %d", rows[0].OptimizedData, rows[0].NotOptimizedData)
	}
	if rows[2].NotOptimized <= rows[2].Optimized {
		t.Errorf("n=6: baseline (%d) must exceed optimized (%d)", rows[2].NotOptimized, rows[2].Optimized)
	}
	// E2: the relay absorbs the echo load in the optimized runs.
	if rows[2].RelayData == 0 {
		t.Error("n=6: relay transmitted nothing; echo not happening")
	}
}

func TestReconfigLatencySmall(t *testing.T) {
	rows, err := RunReconfigLatency([]int{2, 4}, 30*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("n=%d reconfig latency=%v", r.Nodes, r.Latency)
		if r.Latency <= 0 || r.Latency > 20*time.Second {
			t.Errorf("implausible latency %v", r.Latency)
		}
	}
}

func TestMulticastStrategiesSmall(t *testing.T) {
	rows, err := RunMulticastStrategies(StrategyConfig{
		Sizes:    []int{8, 16},
		Messages: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]StrategyRow)
	for _, r := range rows {
		t.Logf("n=%d %-12s senderTx=%d maxNodeTx=%d totalTx=%d delivery=%.2f",
			r.Nodes, r.Strategy, r.SenderTx, r.MaxNodeTx, r.TotalTx, r.DeliveryRatio)
		byKey[key(r.Nodes, r.Strategy)] = r
	}
	// Native multicast: one transmission per cast regardless of n.
	if got := byKey[key(16, "nativemcast")].SenderTx; got != 50 {
		t.Errorf("nativemcast sender tx = %d, want 50", got)
	}
	// Fan-out: n−1 per cast.
	if got := byKey[key(16, "fanout")].SenderTx; got != 50*15 {
		t.Errorf("fanout sender tx = %d, want %d", got, 50*15)
	}
	// Epidemic: the worst node's load must be far below the fan-out
	// sender's load at n=16 — that is the paper's scalability argument.
	if ep, fo := byKey[key(16, "epidemic")].MaxNodeTx, byKey[key(16, "fanout")].SenderTx; ep >= fo {
		t.Errorf("epidemic max per-node load %d not below fanout sender load %d", ep, fo)
	}
	// Lossless coverage: fan-out and native multicast are complete;
	// epidemic must cover nearly everyone.
	for _, strat := range []string{"fanout", "nativemcast"} {
		if got := byKey[key(16, strat)].DeliveryRatio; got < 0.999 {
			t.Errorf("%s delivery = %.3f, want 1.0", strat, got)
		}
	}
	if got := byKey[key(16, "epidemic")].DeliveryRatio; got < 0.90 {
		t.Errorf("epidemic delivery = %.3f, want >= 0.90", got)
	}
}

func key(n int, s string) string { return s + ":" + string(rune('0'+n)) }

func TestErrorRecoveryShape(t *testing.T) {
	rows, err := RunErrorRecovery(ErrorRecoveryConfig{
		LossRates: []float64{0.01, 0.20},
		Nodes:     3,
		Messages:  120,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(strat string, loss float64) ErrorRecoveryRow {
		for _, r := range rows {
			if r.Strategy == strat && r.Loss == loss {
				return r
			}
		}
		t.Fatalf("row %s %g missing", strat, loss)
		return ErrorRecoveryRow{}
	}
	for _, r := range rows {
		t.Logf("p=%.2f %-4s delivery=%.3f totalTx=%d tx/delivery=%.2f elapsed=%v",
			r.Loss, r.Strategy, r.DeliveryRatio, r.TotalTx, r.TxPerDelivery, r.Elapsed)
	}
	// ARQ always converges to full delivery.
	if got := get("arq", 0.20).DeliveryRatio; got < 0.999 {
		t.Errorf("arq@20%% delivery = %.3f", got)
	}
	// FEC at low loss masks essentially everything without retransmission.
	if got := get("fec", 0.01).DeliveryRatio; got < 0.99 {
		t.Errorf("fec@1%% delivery = %.3f", got)
	}
	// The ARQ repair traffic at high loss must exceed its low-loss
	// traffic — that growth is what motivates switching to FEC.
	if lo, hi := get("arq", 0.01).TotalTx, get("arq", 0.20).TotalTx; hi <= lo {
		t.Errorf("arq traffic did not grow with loss: %d -> %d", lo, hi)
	}
}

func TestEnergyLifetime(t *testing.T) {
	rows, err := RunEnergyLifetime(EnergyConfig{Nodes: 4, Capacity: 0.25, Timeout: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var static, adaptive EnergyRow
	for _, r := range rows {
		t.Logf("%-8s casts=%d firstDead=%d reconfigs=%d", r.Mode, r.CastsBeforeDeath, r.FirstDead, r.ReconfigurationsN)
		if r.Mode == "static" {
			static = r
		} else {
			adaptive = r
		}
	}
	if adaptive.CastsBeforeDeath <= static.CastsBeforeDeath {
		t.Errorf("adaptive relay rotation (%d casts) did not outlive static relay (%d casts)",
			adaptive.CastsBeforeDeath, static.CastsBeforeDeath)
	}
}

// TestMultiGroupHosting is E9 at reduced scale: four concurrently hosted
// groups on one node set, two reconfiguring under load, with per-group
// counters matching their dedicated single-group equivalents at equal
// seeds and zero cross-group leakage.
func TestMultiGroupHosting(t *testing.T) {
	rows, err := RunMultiGroup(MultiGroupConfig{StressMessages: 30, Messages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-6s config=%-14s epoch=%d mobileDataTx=%d singleRunDataTx=%d delivered=%d leaked=%d",
			r.Group, r.Config, r.Epoch, r.MobileDataTx, r.SingleRunDataTx, r.Delivered, r.Leaked)
		if r.Leaked != 0 {
			t.Errorf("group %s: %d cross-group leaks", r.Group, r.Leaked)
		}
		if r.Delivered != 60 {
			t.Errorf("group %s: delivered %d, want 60", r.Group, r.Delivered)
		}
		if r.MobileDataTx != r.SingleRunDataTx {
			t.Errorf("group %s: multi-group data tx %d != single-group %d",
				r.Group, r.MobileDataTx, r.SingleRunDataTx)
		}
		switch r.Group {
		case "alpha", "beta":
			if r.Config != "mecho:relay=1" || r.Epoch < 2 {
				t.Errorf("group %s did not reconfigure: config=%s epoch=%d", r.Group, r.Config, r.Epoch)
			}
			if r.MobileDataTx != 60 {
				t.Errorf("group %s: mecho cost %d, want 60 (one unicast per cast)", r.Group, r.MobileDataTx)
			}
		case "gamma":
			if r.Epoch != 1 {
				t.Errorf("gamma reconfigured to epoch %d", r.Epoch)
			}
			if r.MobileDataTx != 60*3 {
				t.Errorf("gamma: plain fan-out cost %d, want %d", r.MobileDataTx, 60*3)
			}
		case "delta":
			if r.MobileDataTx != 60 {
				t.Errorf("delta: mecho cost %d, want 60", r.MobileDataTx)
			}
		}
	}
}

func TestFlushAblation(t *testing.T) {
	rows, err := RunFlushAblation(200, 9)
	if err != nil {
		t.Fatal(err)
	}
	var flush, force FlushAblationRow
	for _, r := range rows {
		t.Logf("%-6s sent=%d minDelivered=%d lost=%d reconfigs=%d", r.Mode, r.Sent, r.MinGotAll, r.Lost, r.Reconfigs)
		if r.Mode == "flush" {
			flush = r
		} else {
			force = r
		}
	}
	if flush.Lost != 0 {
		t.Errorf("view-synchronous reconfiguration lost %d messages", flush.Lost)
	}
	_ = force // the force mode may or may not lose messages on a fast LAN; it must at least complete
}
