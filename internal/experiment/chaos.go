package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"morpheus/internal/chaos"
)

// --- E12: deterministic chaos sweep -----------------------------------------
//
// E12 is the robustness experiment: N seeded fault schedules (crash-stop,
// transient partitions, loss/latency spikes, churn waves, overload bursts,
// forced reconfigurations) executed against the multi-group runtime on
// virtual time, each checked against the full invariant suite
// (internal/chaos/invariants). Schedules and executions are functions of
// the seed alone, so a failing row is reproduced bit-identically with
//
//	go run ./cmd/morpheus-bench -run chaos -replay <seed>

// ChaosRow summarises one seed's run.
type ChaosRow struct {
	Seed      int64
	Events    int
	Crashed   int
	Delivered int
	Rejected  uint64
	// Hash is the run's canonical trace hash (the replay artifact).
	Hash string
	// Violations is empty when every invariant held.
	Violations []string
}

// ChaosConfig parameterises E12.
type ChaosConfig struct {
	// Seeds is how many consecutive seeds to sweep (default 50).
	Seeds int
	// Base is the first seed (default 1).
	Base int64
	// Workers bounds the parallel runs; each run owns its virtual clock
	// and world, so runs are independent (default NumCPU).
	Workers int
	// ExtraGroups hosts that many additional quiet groups per node in
	// every run — the scheduler-pool scale smoke (default 0).
	ExtraGroups int
	// GracefulChurns adds that many late-join/graceful-leave waves per
	// schedule (chaos.Profile.GracefulChurns): each wave bootstraps a fresh
	// group without one member, folds it in late via JoinVia state
	// transfer, floods, and leaves gracefully. Default 0 — off, so the
	// standard E12 traces are unchanged.
	GracefulChurns int
	// Logf receives per-node diagnostics of failing runs; nil discards.
	Logf func(format string, args ...any)
}

func (c *ChaosConfig) defaults() {
	if c.Seeds == 0 {
		c.Seeds = 50
	}
	if c.Base == 0 {
		c.Base = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers > c.Seeds {
		c.Workers = c.Seeds
	}
}

// RunChaos is E12: sweep cfg.Seeds seeded fault schedules and report one
// row per seed, in seed order. The error reports harness failures only;
// invariant failures land in the rows.
func RunChaos(cfg ChaosConfig) ([]ChaosRow, error) {
	cfg.defaults()
	rows := make([]ChaosRow, cfg.Seeds)
	errs := make([]error, cfg.Seeds)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				seed := cfg.Base + int64(i)
				res, err := chaos.Run(seed, chaos.Options{
					Profile:     chaos.Profile{GracefulChurns: cfg.GracefulChurns},
					Logf:        cfg.Logf,
					ExtraGroups: cfg.ExtraGroups,
				})
				if err != nil {
					errs[i] = fmt.Errorf("seed %d: %w", seed, err)
					continue
				}
				rows[i] = ChaosRow{
					Seed:       seed,
					Events:     len(res.Schedule.Events),
					Crashed:    len(res.Crashed),
					Delivered:  res.Delivered,
					Rejected:   res.Rejected,
					Hash:       res.Hash,
					Violations: res.Violations,
				}
			}
		}()
	}
	for i := 0; i < cfg.Seeds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
