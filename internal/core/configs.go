package core

import (
	"fmt"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
)

// Configuration document builders. These are what policies ship to the
// participants; the names double as identity for "is a change needed"
// comparisons, so anything that must trigger a redeployment (such as the
// relay choice) is baked into the name.

// dataChannel is the channel name every data configuration uses.
const dataChannel = "data"

// stableEvery is the delivery-count-driven stability gossip period baked
// into the standard configurations: gossiping every N delivered casts makes
// the control traffic of a loaded channel a pure function of the delivery
// sequence and bounds retransmission-buffer growth between idle ticks. The
// interval timer survives only as an idle-channel keepalive, and since the
// clock plane (internal/clock) it runs on the node's configured clock —
// deterministic under the virtual clock the experiments use, wall time on
// live substrates — so it no longer perturbs measured counters either way.
//
// Since PR 5 this gossip also drives the send-window credit plane: a
// group's in-flight casts release their credits when the stability
// watermarks cover them, so under sustained load credits return in
// batches of up to stableEvery. stack.DefaultSendWindow (256) is sized as
// a small multiple of this period; configurations that lower the window
// below ~2× stableEvery trade throughput (senders idle between gossip
// batches) for a tighter memory bound.
const stableEvery = "64"

// nakSession is the reliable-layer session spec shared by the standard
// configurations.
func nakSession() appiaxml.SessionSpec {
	return appiaxml.SessionSpec{Layer: "group.nak", Params: []appiaxml.ParamSpec{
		{Name: "stable-every", Value: stableEvery},
	}}
}

// PlainConfig is the non-optimized stack of Figure 2(a): point-to-point
// fan-out best-effort multicast under the reliable group suite.
func PlainConfig() *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: dataChannel,
		QoS:  "plain",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "group.fanout"},
			nakSession(),
			{Layer: "group.gms"},
		},
	}}}
}

// PlainConfigName names the plain configuration.
const PlainConfigName = "plain"

// MechoConfig is the hybrid stack of Figure 2(b): Mecho replaces the
// fan-out, with the given fixed node relaying for the wireless devices.
// The "auto" mode resolves per node: the relay echoes, other mobiles send
// a single unicast to it, fixed nodes fan out.
func MechoConfig(relay appia.NodeID) *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: dataChannel,
		QoS:  "mecho",
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "mecho", Params: []appiaxml.ParamSpec{
				{Name: "relay", Value: fmt.Sprintf("%d", relay)},
				{Name: "mode", Value: "auto"},
			}},
			nakSession(),
			{Layer: "group.gms"},
		},
	}}}
}

// MechoConfigName names a Mecho configuration with its relay baked in, so
// relay changes are configuration changes.
func MechoConfigName(relay appia.NodeID) string {
	return fmt.Sprintf("mecho:relay=%d", relay)
}

// ArqConfigName names the retransmission-based error recovery stack.
const ArqConfigName = "arq"

// ArqConfig is the detect-and-retransmit error recovery stack (identical
// composition to plain; the name communicates the intent in the
// error-recovery policy's state machine).
func ArqConfig() *appiaxml.Document {
	d := PlainConfig()
	d.Channels[0].QoS = ArqConfigName
	return d
}

// FecConfigName names the masking error recovery stack.
const FecConfigName = "fec"

// FecConfig is the masking error recovery stack of §2: forward error
// correction over the best-effort fan-out, with no retransmissions.
func FecConfig(k, m int) *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: dataChannel,
		QoS:  FecConfigName,
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "group.fanout"},
			{Layer: "fec", Params: []appiaxml.ParamSpec{
				{Name: "k", Value: fmt.Sprintf("%d", k)},
				{Name: "m", Value: fmt.Sprintf("%d", m)},
			}},
		},
	}}}
}

// EpidemicConfigName names the gossip dissemination stack.
const EpidemicConfigName = "epidemic"

// EpidemicConfig is the large-group dissemination stack motivated in §1:
// gossip under the reliable suite.
func EpidemicConfig(fanout, rounds int) *appiaxml.Document {
	return &appiaxml.Document{Channels: []appiaxml.ChannelSpec{{
		Name: dataChannel,
		QoS:  EpidemicConfigName,
		Sessions: []appiaxml.SessionSpec{
			{Layer: "transport.ptp"},
			{Layer: "epidemic", Params: []appiaxml.ParamSpec{
				{Name: "fanout", Value: fmt.Sprintf("%d", fanout)},
				{Name: "rounds", Value: fmt.Sprintf("%d", rounds)},
			}},
			nakSession(),
			{Layer: "group.gms"},
		},
	}}}
}
