// Package core implements the paper's Control and Reconfiguration
// sub-system (§3.3): a distributed component whose coordinator —
// deterministically elected as the lowest-identifier member of the control
// group — monitors the disseminated context, decides when adaptation is
// required by evaluating global policies, and drives the reconfiguration
// procedure; a local module on every node (stack.Manager) deploys the new
// XML-described protocol stack once the data channel is quiescent.
//
// The layer is a group-hosting control plane: one control channel (one
// membership service, one failure detector, one context dissemination
// plane) serves any number of concurrently hosted data groups. Each group
// registers a GroupRuntime — its stack manager, its adaptation policies,
// its configured membership — and gets an independent policy evaluator,
// epoch counter and reconfiguration pipeline; Prepare/Ack events carry the
// group name so concurrent per-group reconfigurations never interfere.
package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/clock"
	"morpheus/internal/cocaditem"
	"morpheus/internal/group"
	"morpheus/internal/stack"
)

// DefaultGroup names the group a single-group node hosts implicitly.
const DefaultGroup = "data"

// Registration errors.
var (
	ErrEmptyGroupName = errors.New("core: empty group name")
	ErrNoManager      = errors.New("core: group runtime needs a manager")
	ErrDuplicateGroup = errors.New("core: group already registered")
	// ErrNotReady reports a wire operation before the control channel is up
	// (or after it closed).
	ErrNotReady = errors.New("core: control channel not ready")
)

// PrepareEvent instructs every participant to deploy a new configuration
// for one hosted group. Reliable (embeds CastEvent). Headers: group, epoch,
// config name, members, XML.
type PrepareEvent struct {
	group.CastEvent
	TargetGroup string
	Epoch       uint64
	ConfigName  string
	Members     []appia.NodeID
	XML         string
}

// AckEvent reports a completed local deployment for one group. It is a
// reliable cast so the whole control group (and in particular the
// coordinator) learns the deployment status even over lossy links.
type AckEvent struct {
	group.CastEvent
	TargetGroup string
	Epoch       uint64
}

// GroupQueryEvent asks one control-group member (the late joiner's seed)
// for a hosted group's current deployment. Unreliable point-to-point: the
// joiner retries until a GroupInfoEvent answers. Header: group name.
type GroupQueryEvent struct {
	appia.SendableEvent
	TargetGroup string
}

// GroupInfoEvent answers a GroupQueryEvent with the group's deployment
// snapshot — enough for a late joiner to build the same stack at the same
// epoch and request admission into the running view. Headers mirror
// PrepareEvent's discipline: group, epoch, config name, members, XML.
type GroupInfoEvent struct {
	appia.SendableEvent
	TargetGroup string
	Epoch       uint64
	ConfigName  string
	Members     []appia.NodeID
	XML         string
}

// GroupJoinEvent announces — reliably, to the whole control group — that
// Member is entering TargetGroup: every hosting node widens the group's
// configured membership so future reconfigurations and the effective view
// include the joiner. Headers: group, member.
type GroupJoinEvent struct {
	group.CastEvent
	TargetGroup string
	Member      appia.NodeID
}

// GroupLeaveEvent announces a *voluntary* departure of Member from
// TargetGroup, distinct from a failure: survivors narrow the configured
// membership and run a non-holding view change on the group's data channel
// immediately, so stability watermarks exclude the leaver within one flush
// round instead of holding casts and send credits until FD eviction.
// Headers: group, member.
type GroupLeaveEvent struct {
	group.CastEvent
	TargetGroup string
	Member      appia.NodeID
}

// RegisterWireEvents registers core's wire kinds (idempotent).
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("core.prepare", func() appia.Sendable { return &PrepareEvent{} })
	reg.Register("core.ack", func() appia.Sendable { return &AckEvent{} })
	reg.Register("core.groupquery", func() appia.Sendable { return &GroupQueryEvent{} })
	reg.Register("core.groupinfo", func() appia.Sendable { return &GroupInfoEvent{} })
	reg.Register("core.groupjoin", func() appia.Sendable { return &GroupJoinEvent{} })
	reg.Register("core.groupleave", func() appia.Sendable { return &GroupLeaveEvent{} })
}

// GroupInfo is a cached deployment snapshot received via GroupInfoEvent.
type GroupInfo struct {
	Group      string
	Epoch      uint64
	ConfigName string
	Members    []appia.NodeID
	XML        string
}

// Contains reports whether id is one of the recorded data members.
func (gi GroupInfo) Contains(id appia.NodeID) bool {
	for _, m := range gi.Members {
		if m == id {
			return true
		}
	}
	return false
}

// PolicyInput is what a policy sees: the group's effective view (the
// configured group membership restricted to control-group-live nodes), the
// shared context store, the currently deployed configuration, and the name
// of the group under evaluation.
type PolicyInput struct {
	View    group.View
	Context *cocaditem.Session
	Current string
	Group   string
}

// Decision is a policy's verdict: deploy Doc under ConfigName for Members.
type Decision struct {
	ConfigName string
	Doc        *appiaxml.Document
	Members    []appia.NodeID
	Reason     string
}

// Policy evaluates context into configuration decisions. Policies are
// global: they see the whole distributed context and decide for the whole
// group, which is precisely what entangling adaptation code inside each
// protocol cannot do (paper §2).
type Policy interface {
	// Name identifies the policy in logs.
	Name() string
	// Evaluate returns nil when no change is warranted.
	Evaluate(in PolicyInput) *Decision
}

// GroupRuntime wires one hosted group into the control plane: the local
// deployment module, the adaptation policies evaluated for the group, and
// the group's configured membership.
type GroupRuntime struct {
	// Group names the group; it must be unique on the node and match the
	// name every other member registers.
	Group string
	// Manager is the group's local deployment module.
	Manager *stack.Manager
	// Policies are evaluated in order at the group's coordinator; the
	// first decision wins. Empty means a non-adaptive group.
	Policies []Policy
	// Members is the group's configured membership. The group's effective
	// view — what policies evaluate and reconfigurations target — is this
	// set restricted to control-group-live nodes. Empty means the whole
	// control group.
	Members []appia.NodeID
	// OnReconfigured, when set, is called at the group's coordinator once
	// every member has acknowledged an epoch, with the wall time the
	// procedure took.
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
}

// Config configures the Core layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Groups are the groups hosted from startup; more can be added (and
	// removed) at run time via Session.Register / Session.Unregister.
	Groups []GroupRuntime
	// EvalInterval is the policy evaluation period (default 200ms).
	EvalInterval time.Duration
	// Clock times reconfiguration latencies and spawns the per-deployment
	// goroutines. Nil means wall clock; under a *clock.Virtual, deployments
	// join the clock's actor rotation so reconfigurations are part of the
	// deterministic timeline.
	Clock clock.Clock
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) clock() clock.Clock { return clock.Or(c.Clock) }

func (c *Config) evalInterval() time.Duration {
	if c.EvalInterval <= 0 {
		return 200 * time.Millisecond
	}
	return c.EvalInterval
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Layer is the Core control layer; place it at the top of the control
// channel, above cocaditem.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a Core layer.
func NewLayer(cfg Config) *Layer {
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "core",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
					appia.T[*GroupQueryEvent](),
					appia.T[*GroupInfoEvent](),
					appia.T[*GroupJoinEvent](),
					appia.T[*GroupLeaveEvent](),
					appia.T[*group.ViewInstall](),
					appia.T[*evalTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
					appia.T[*GroupQueryEvent](),
					appia.T[*GroupInfoEvent](),
					appia.T[*GroupJoinEvent](),
					appia.T[*GroupLeaveEvent](),
				},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	s := &Session{cfg: l.cfg, groups: make(map[string]*groupState)}
	for _, rt := range l.cfg.Groups {
		if err := s.Register(rt); err != nil {
			l.cfg.logf("core[%d]: register group %q: %v", l.cfg.Self, rt.Group, err)
		}
	}
	return s
}

// evalTick is the private policy evaluation timer.
type evalTick struct {
	appia.EventBase
}

// groupState is one hosted group's control-plane state. Everything except
// deployedEpoch is only touched on the control scheduler goroutine (after
// the registration happens-before edge); deployedEpoch is written by deploy
// goroutines and is therefore atomic.
type groupState struct {
	rt      GroupRuntime
	epoch   uint64
	current string

	// Coordinator reconfiguration-in-flight state.
	inFlight      bool
	acks          map[appia.NodeID]bool
	decidedAt     time.Time
	flightName    string
	flightMembers []appia.NodeID

	// deployedEpoch tracks what the local manager finished deploying.
	deployedEpoch atomic.Uint64
}

// Session is the per-node Core instance: the shared control plane plus one
// evaluator per hosted group.
type Session struct {
	cfg      Config
	ctx      *cocaditem.Session
	stopTick func()

	view group.View // control-group view; scheduler goroutine only

	mu     sync.Mutex // guards the groups registry
	groups map[string]*groupState

	// wireMu guards the channel handle and the group-info cache: both are
	// written on the scheduler goroutine and read by the facade's join
	// machinery from arbitrary goroutines.
	wireMu sync.Mutex
	wireCh *appia.Channel
	infos  map[string]GroupInfo
}

var _ appia.Session = (*Session)(nil)

// Register adds a hosted group to the control plane. The group's manager
// must already hold its initial deployment. Safe from any goroutine.
func (s *Session) Register(rt GroupRuntime) error {
	if rt.Group == "" {
		return ErrEmptyGroupName
	}
	if rt.Manager == nil {
		return ErrNoManager
	}
	// The group view and its coordinator election assume a sorted,
	// deduplicated membership (View.Members is documented ascending).
	rt.Members = group.NormalizeMembers(append([]appia.NodeID(nil), rt.Members...))
	gs := &groupState{
		rt:      rt,
		epoch:   rt.Manager.Epoch(),
		current: rt.Manager.ConfigName(),
	}
	gs.deployedEpoch.Store(gs.epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.groups[rt.Group]; dup {
		return ErrDuplicateGroup
	}
	s.groups[rt.Group] = gs
	return nil
}

// Unregister removes a hosted group; in-flight deployments finish but no
// further adaptation happens for it. Safe from any goroutine.
func (s *Session) Unregister(name string) {
	s.mu.Lock()
	delete(s.groups, name)
	s.mu.Unlock()
}

// Groups returns the names of the hosted groups, sorted.
func (s *Session) Groups() []string {
	states := s.snapshot()
	out := make([]string, len(states))
	for i, gs := range states {
		out[i] = gs.rt.Group
	}
	return out
}

// lookup resolves a hosted group.
func (s *Session) lookup(name string) *groupState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[name]
}

// snapshot returns the hosted groups in deterministic order.
func (s *Session) snapshot() []*groupState {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.groups))
	for name := range s.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*groupState, 0, len(names))
	for _, name := range names {
		out = append(out, s.groups[name])
	}
	return out
}

// Handle implements appia.Session.
func (s *Session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		if sess, ok := ch.SessionFor("cocaditem").(*cocaditem.Session); ok {
			s.ctx = sess
		}
		s.wireMu.Lock()
		s.wireCh = ch
		s.wireMu.Unlock()
		self := appia.Session(s)
		s.stopTick = ch.DeliverEvery(s.cfg.evalInterval(), self, func() appia.Event { return &evalTick{} })
		ch.Forward(ev)
	case *appia.ChannelClose:
		if s.stopTick != nil {
			s.stopTick()
		}
		s.wireMu.Lock()
		s.wireCh = nil
		s.wireMu.Unlock()
		ch.Forward(ev)
	case *group.ViewInstall:
		if e.Dir() == appia.Up {
			s.view = e.View
		}
		ch.Forward(ev)
	case *evalTick:
		s.evaluate(ch)
	case *PrepareEvent:
		s.onPrepare(ch, e)
	case *AckEvent:
		s.onAck(ch, e)
	case *GroupQueryEvent:
		s.onGroupQuery(ch, e)
	case *GroupInfoEvent:
		s.onGroupInfo(ch, e)
	case *GroupJoinEvent:
		s.onGroupJoin(ch, e)
	case *GroupLeaveEvent:
		s.onGroupLeave(ch, e)
	default:
		ch.Forward(ev)
	}
}

// groupView computes a group's effective view: the configured membership
// restricted to control-group-live nodes (or the whole control view for
// groups without a configured membership). This is how the single shared
// failure detector feeds liveness into every hosted group.
func (s *Session) groupView(gs *groupState) group.View {
	if len(gs.rt.Members) == 0 {
		return s.view.Clone()
	}
	v := group.View{ID: s.view.ID}
	for _, m := range gs.rt.Members {
		if s.view.Contains(m) {
			v.Members = append(v.Members, m)
		}
	}
	return v
}

// evaluate runs every hosted group's policies at that group's coordinator.
// Groups evaluate independently: one group's in-flight reconfiguration
// never blocks another's.
func (s *Session) evaluate(ch *appia.Channel) {
	if len(s.view.Members) == 0 {
		return
	}
	for _, gs := range s.snapshot() {
		s.evaluateGroup(ch, gs)
	}
}

func (s *Session) evaluateGroup(ch *appia.Channel, gs *groupState) {
	if gs.inFlight && s.cfg.clock().Since(gs.decidedAt) > 30*time.Second {
		// Safety valve: a member died mid-deployment and its ack will
		// never come; the control view change will resolve membership,
		// and adaptation must not stay wedged meanwhile.
		s.cfg.logf("core[%d]: group %q epoch %d acks incomplete after 30s; unblocking",
			s.cfg.Self, gs.rt.Group, gs.epoch)
		gs.inFlight = false
	}
	gv := s.groupView(gs)
	if len(gv.Members) == 0 || gv.Coordinator() != s.cfg.Self {
		return
	}
	if gs.inFlight {
		return
	}
	if s.ctx != nil {
		in := PolicyInput{View: gv, Context: s.ctx, Current: gs.current, Group: gs.rt.Group}
		for _, p := range gs.rt.Policies {
			d := p.Evaluate(in)
			if d == nil {
				continue
			}
			if d.ConfigName == gs.current {
				continue
			}
			s.initiate(ch, gs, gv, p, d)
			return
		}
	}
	// No policy wants a different configuration; repair runs for adaptive
	// and non-adaptive groups alike.
	s.repairMembership(ch, gs, gv)
}

// repairPolicy labels membership-repair redeployments in logs.
type repairPolicy struct{}

func (repairPolicy) Name() string                   { return "membership-repair" }
func (repairPolicy) Evaluate(PolicyInput) *Decision { return nil }

// repairMembership redeploys the CURRENT configuration with a narrowed
// membership when a deployed member is no longer control-group-live. No
// policy asks for this (the config name does not change), but without it a
// dead or partitioned peer stays in the data channel's reliable-layer
// member set forever: stability gossip can never cover it, retransmission
// buffers stop pruning, and — with send windows — every sender eventually
// blocks on credits the dead peer will never release. The repair flush
// evicts the peer, which both re-bounds retention and releases the stalled
// credits (see group.nak's view-install release).
func (s *Session) repairMembership(ch *appia.Channel, gs *groupState, gv group.View) {
	// The repair examines the union of the epoch's deploy list and the
	// channel's live view: mid-epoch views only ever shrink the deploy list
	// except for late-join admissions, and an admitted joiner that dies
	// before the next reconfiguration exists only in the view — it must
	// trigger the same eviction a deployed member's death does.
	deployed := gs.rt.Manager.Members()
	if len(deployed) == 0 || len(gv.Members) == 0 {
		return
	}
	check := deployed
	for _, m := range gs.rt.Manager.ViewMembers() {
		found := false
		for _, d := range deployed {
			if d == m {
				found = true
				break
			}
		}
		if !found {
			check = append(check, m)
		}
	}
	// Eviction keys off the raw control-group view, not gv: a member can be
	// missing from gv merely because its join announcement has not been
	// delivered yet — the gms admits through the data channel while the
	// announcement rides the control channel, and there is no cross-channel
	// ordering. Such a member is a live late joiner mid-admission; evicting
	// it would redeploy the group around a node stranded in a view only it
	// committed (chaos churn seed 28). Only a member the failure detector
	// actually removed from the control group is dead to repair.
	shrunk := false
	for _, m := range check {
		if !s.view.Contains(m) {
			shrunk = true
			break
		}
	}
	if !shrunk {
		return
	}
	doc := gs.rt.Manager.CurrentDocument()
	if doc == nil {
		return
	}
	// The repaired membership keeps every control-live member from both
	// sides: gv (the announced membership) plus any admitted-but-
	// unannounced joiner that so far exists only in the data view.
	members := append([]appia.NodeID(nil), gv.Members...)
	for _, m := range check {
		if s.view.Contains(m) && !gv.Contains(m) {
			members = append(members, m)
		}
	}
	s.initiate(ch, gs, gv, repairPolicy{}, &Decision{
		ConfigName: gs.current,
		Doc:        doc,
		Members:    group.NormalizeMembers(members),
		Reason:     "deployed membership lost a control-live member",
	})
}

// initiate starts a reconfiguration of one group: ship the XML to everybody
// (§3.3: "the coordinator sends to each participant the configuration that
// should be deployed at that node"). Non-members of the group receive and
// ignore the Prepare — the control channel is shared, the deployment is
// not.
func (s *Session) initiate(ch *appia.Channel, gs *groupState, gv group.View, p Policy, d *Decision) {
	xml, err := d.Doc.Marshal()
	if err != nil {
		s.cfg.logf("core[%d]: group %q: marshal config %q: %v", s.cfg.Self, gs.rt.Group, d.ConfigName, err)
		return
	}
	members := d.Members
	if len(members) == 0 {
		members = gv.Members
	}
	gs.epoch++
	gs.inFlight = true
	gs.acks = make(map[appia.NodeID]bool)
	gs.decidedAt = s.cfg.clock().Now()
	gs.flightName = d.ConfigName
	gs.flightMembers = append([]appia.NodeID(nil), members...)
	s.cfg.logf("core[%d]: group %q: policy %q: %s -> %s (epoch %d): %s",
		s.cfg.Self, gs.rt.Group, p.Name(), gs.current, d.ConfigName, gs.epoch, d.Reason)
	gs.current = d.ConfigName

	ev := &PrepareEvent{
		TargetGroup: gs.rt.Group,
		Epoch:       gs.epoch,
		ConfigName:  d.ConfigName,
		Members:     append([]appia.NodeID(nil), members...),
		XML:         xml,
	}
	ev.Class = appia.ClassControl
	m := ev.EnsureMsg()
	m.PushString(ev.XML)
	ids := make([]uint64, len(ev.Members))
	for i, id := range ev.Members {
		ids[i] = uint64(uint32(id))
	}
	m.PushUvarintSlice(ids)
	m.PushString(ev.ConfigName)
	m.PushUvarint(ev.Epoch)
	m.PushString(ev.TargetGroup)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, ev, appia.Down)
}

// onPrepare deploys the new configuration locally (every group member,
// including the coordinator, through the reliable self-delivery).
func (s *Session) onPrepare(ch *appia.Channel, e *PrepareEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	name, err := m.PopString()
	if err != nil {
		return
	}
	ids, err := m.PopUvarintSlice()
	if err != nil {
		return
	}
	xml, err := m.PopString()
	if err != nil {
		return
	}
	members := make([]appia.NodeID, len(ids))
	for i, u := range ids {
		members[i] = appia.NodeID(uint32(u))
	}
	e.TargetGroup, e.Epoch, e.ConfigName, e.Members, e.XML = groupName, epoch, name, members, xml

	gs := s.lookup(groupName)
	if gs == nil {
		return // we do not host this group: not our deployment
	}
	if epoch < gs.epoch {
		// Out-of-order Prepare from a deposed coordinator (the control
		// channel is FIFO per origin only): the deployment would be
		// rejected as stale anyway, and adopting its config name would
		// desynchronize this node's believed configuration — at a
		// coordinator, that triggers a pointless group-wide redeployment.
		return
	}
	doc, err := appiaxml.ParseString(xml)
	if err != nil {
		s.cfg.logf("core[%d]: group %q: bad config XML for epoch %d: %v", s.cfg.Self, groupName, epoch, err)
		return
	}
	gs.epoch = epoch
	gs.current = name

	// The deployment blocks on view-synchronous quiescence, so it runs off
	// the scheduler goroutine; the Ack is inserted thread-safely after.
	// Deployments of different groups run concurrently by construction.
	// Spawned through the clock: under the virtual clock plane the
	// deployment goroutine is an actor, queued for the run token in this
	// (deterministic) program order.
	s.cfg.clock().Go(func() {
		if err := gs.rt.Manager.Reconfigure(doc, name, epoch, members); err != nil {
			s.cfg.logf("core[%d]: group %q: reconfigure epoch %d: %v", s.cfg.Self, groupName, epoch, err)
			return
		}
		for {
			cur := gs.deployedEpoch.Load()
			if epoch <= cur || gs.deployedEpoch.CompareAndSwap(cur, epoch) {
				break
			}
		}
		ack := &AckEvent{TargetGroup: groupName, Epoch: epoch}
		ack.Class = appia.ClassControl
		am := ack.EnsureMsg()
		am.PushUvarint(epoch)
		am.PushString(groupName)
		if err := ch.Insert(ack, appia.Down); err != nil {
			s.cfg.logf("core[%d]: group %q: ack epoch %d: %v", s.cfg.Self, groupName, epoch, err)
		}
	})
}

// onAck tallies deployment acknowledgements at the group's coordinator.
func (s *Session) onAck(ch *appia.Channel, e *AckEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	e.TargetGroup, e.Epoch = groupName, epoch
	gs := s.lookup(groupName)
	if gs == nil {
		return
	}
	if !gs.inFlight || epoch != gs.epoch || gs.acks == nil {
		return
	}
	// Origin (set by the reliable layer) identifies the deployer; the
	// substrate-level Source may be a relay.
	gs.acks[e.Origin] = true
	for _, mbr := range gs.flightMembers {
		if mbr == s.cfg.Self {
			continue // our own deployment is tracked via deployedEpoch
		}
		if !s.view.Contains(mbr) {
			continue // died mid-flight; the view change excused it
		}
		if !gs.acks[mbr] {
			return
		}
	}
	// All remote members acked; require the local deployment too.
	if gs.deployedEpoch.Load() < epoch {
		// Re-check on the next ack: the local goroutine's ack-to-self
		// closes the loop below.
		return
	}
	gs.inFlight = false
	took := s.cfg.clock().Since(gs.decidedAt)
	if gs.rt.OnReconfigured != nil {
		gs.rt.OnReconfigured(epoch, gs.flightName, took)
	}
	s.cfg.logf("core[%d]: group %q: epoch %d (%s) deployed group-wide in %v",
		s.cfg.Self, gs.rt.Group, epoch, gs.flightName, took)
}

// onGroupQuery answers a late joiner's discovery query from the local
// deployment state, point-to-point and unreliably (the joiner retries).
// Nodes that do not host the group stay silent.
func (s *Session) onGroupQuery(ch *appia.Channel, e *GroupQueryEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	groupName, err := e.EnsureMsg().PopString()
	if err != nil {
		return
	}
	e.TargetGroup = groupName
	gs := s.lookup(groupName)
	if gs == nil {
		return
	}
	doc := gs.rt.Manager.CurrentDocument()
	if doc == nil {
		return
	}
	xml, err := doc.Marshal()
	if err != nil {
		s.cfg.logf("core[%d]: group %q: marshal for group info: %v", s.cfg.Self, groupName, err)
		return
	}
	info := &GroupInfoEvent{
		TargetGroup: groupName,
		Epoch:       gs.rt.Manager.Epoch(),
		ConfigName:  gs.rt.Manager.ConfigName(),
		// The live view, not the epoch's bootstrap list: the joiner must
		// aim its data-channel JoinReq at members that still exist.
		Members: gs.rt.Manager.ViewMembers(),
		XML:     xml,
	}
	info.Dest = e.Source
	info.Class = appia.ClassControl
	m := info.EnsureMsg()
	m.PushString(info.XML)
	ids := make([]uint64, len(info.Members))
	for i, id := range info.Members {
		ids[i] = uint64(uint32(id))
	}
	m.PushUvarintSlice(ids)
	m.PushString(info.ConfigName)
	m.PushUvarint(info.Epoch)
	m.PushString(info.TargetGroup)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, info, appia.Down)
}

// onGroupInfo caches a discovery answer for LastGroupInfo.
func (s *Session) onGroupInfo(ch *appia.Channel, e *GroupInfoEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	name, err := m.PopString()
	if err != nil {
		return
	}
	ids, err := m.PopUvarintSlice()
	if err != nil {
		return
	}
	xml, err := m.PopString()
	if err != nil {
		return
	}
	members := make([]appia.NodeID, len(ids))
	for i, u := range ids {
		members[i] = appia.NodeID(uint32(u))
	}
	e.TargetGroup, e.Epoch, e.ConfigName, e.Members, e.XML = groupName, epoch, name, members, xml
	s.wireMu.Lock()
	if s.infos == nil {
		s.infos = make(map[string]GroupInfo)
	}
	if cur, ok := s.infos[groupName]; !ok || epoch >= cur.Epoch {
		s.infos[groupName] = GroupInfo{
			Group: groupName, Epoch: epoch, ConfigName: name,
			Members: members, XML: xml,
		}
	}
	s.wireMu.Unlock()
}

// onGroupJoin widens a hosted group's configured membership with an
// announced joiner, so the effective view (and every future
// reconfiguration) includes it. The joiner's own data-channel admission
// runs separately through the group's GMS.
func (s *Session) onGroupJoin(ch *appia.Channel, e *GroupJoinEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	u, err := m.PopUvarint()
	if err != nil {
		return
	}
	member := appia.NodeID(uint32(u))
	e.TargetGroup, e.Member = groupName, member
	if member == s.cfg.Self {
		return // our own announcement echoing back
	}
	gs := s.lookup(groupName)
	if gs == nil || len(gs.rt.Members) == 0 {
		// Not hosting, or membership slaved to the whole control group —
		// which tracks the joiner by construction.
		return
	}
	for _, mbr := range gs.rt.Members {
		if mbr == member {
			return
		}
	}
	gs.rt.Members = group.NormalizeMembers(append(gs.rt.Members, member))
}

// onGroupLeave narrows a hosted group's configured membership after a
// voluntary departure and runs a non-holding view change on the data
// channel so survivors' stability watermarks exclude the leaver now —
// releasing its held casts and send-window credits within one flush round
// instead of wedging until FD eviction (the leaver stays control-live on
// its node, so the failure detector never excuses it).
func (s *Session) onGroupLeave(ch *appia.Channel, e *GroupLeaveEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	u, err := m.PopUvarint()
	if err != nil {
		return
	}
	member := appia.NodeID(uint32(u))
	e.TargetGroup, e.Member = groupName, member
	gs := s.lookup(groupName)
	if gs == nil {
		return // not hosting (or we are the leaver: Leave unregisters first)
	}
	if len(gs.rt.Members) == 0 {
		// Whole-control-group membership: materialize it minus the leaver —
		// the leaver stays control-live, so restriction alone cannot excuse
		// it.
		gs.rt.Members = append([]appia.NodeID(nil), s.view.Members...)
	}
	kept := gs.rt.Members[:0]
	for _, mbr := range gs.rt.Members {
		if mbr != member {
			kept = append(kept, mbr)
		}
	}
	gs.rt.Members = kept
	// Evict the leaver from the running data view. Scoped to the surviving
	// view members so the lowest survivor coordinates even when the leaver
	// was the data channel's coordinator.
	vm := gs.rt.Manager.ViewMembers()
	inView := false
	survivors := make([]appia.NodeID, 0, len(vm))
	for _, mbr := range vm {
		if mbr == member {
			inView = true
			continue
		}
		survivors = append(survivors, mbr)
	}
	if !inView || len(survivors) == 0 {
		return // already excluded (a repair or eviction got there first)
	}
	selfIn := false
	for _, mbr := range survivors {
		if mbr == s.cfg.Self {
			selfIn = true
			break
		}
	}
	if !selfIn {
		return
	}
	dch := gs.rt.Manager.Channel()
	if dch == nil {
		return
	}
	trigger := &group.TriggerFlush{Hold: false, Members: survivors}
	if err := dch.Insert(trigger, appia.Down); err != nil {
		// A reconfiguration is tearing the channel down: the next epoch
		// bootstraps from the already-narrowed membership.
		s.cfg.logf("core[%d]: group %q: leave flush for %d: %v", s.cfg.Self, groupName, member, err)
	}
}

// --- Facade wire APIs (safe from any goroutine) -----------------------------

func (s *Session) channel() *appia.Channel {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	return s.wireCh
}

// RequestGroupInfo asks seed for a hosted group's deployment snapshot; the
// answer lands in LastGroupInfo. Unreliable — callers retry.
func (s *Session) RequestGroupInfo(seed appia.NodeID, groupName string) error {
	ch := s.channel()
	if ch == nil {
		return ErrNotReady
	}
	q := &GroupQueryEvent{TargetGroup: groupName}
	q.Dest = seed
	q.Class = appia.ClassControl
	q.EnsureMsg().PushString(groupName)
	return ch.Insert(q, appia.Down)
}

// LastGroupInfo returns the most recent discovery answer for a group.
func (s *Session) LastGroupInfo(groupName string) (GroupInfo, bool) {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	info, ok := s.infos[groupName]
	return info, ok
}

// ForgetGroupInfo drops a cached discovery answer (before re-querying).
func (s *Session) ForgetGroupInfo(groupName string) {
	s.wireMu.Lock()
	delete(s.infos, groupName)
	s.wireMu.Unlock()
}

// AnnounceJoin reliably announces to the control group that member is
// entering groupName (see GroupJoinEvent).
func (s *Session) AnnounceJoin(groupName string, member appia.NodeID) error {
	return s.announceMembership(groupName, member, true)
}

// AnnounceLeave reliably announces member's voluntary departure from
// groupName (see GroupLeaveEvent).
func (s *Session) AnnounceLeave(groupName string, member appia.NodeID) error {
	return s.announceMembership(groupName, member, false)
}

func (s *Session) announceMembership(groupName string, member appia.NodeID, join bool) error {
	ch := s.channel()
	if ch == nil {
		return ErrNotReady
	}
	var ev appia.Sendable
	var base *group.CastEvent
	if join {
		je := &GroupJoinEvent{TargetGroup: groupName, Member: member}
		ev, base = je, &je.CastEvent
	} else {
		le := &GroupLeaveEvent{TargetGroup: groupName, Member: member}
		ev, base = le, &le.CastEvent
	}
	base.Class = appia.ClassControl
	m := base.EnsureMsg()
	m.PushUvarint(uint64(uint32(member)))
	m.PushString(groupName)
	return ch.Insert(ev, appia.Down)
}

// DeployedEpoch reports the last epoch the named group's local manager
// finished (safe from any goroutine; 0 for unknown groups).
func (s *Session) DeployedEpoch(groupName string) uint64 {
	gs := s.lookup(groupName)
	if gs == nil {
		return 0
	}
	return gs.deployedEpoch.Load()
}

// CurrentConfig returns the configuration name this node believes active
// for the named group. Scheduler-goroutine safety: reads a field written on
// the scheduler; for test/diagnostic use only.
func (s *Session) CurrentConfig(groupName string) string {
	gs := s.lookup(groupName)
	if gs == nil {
		return ""
	}
	return gs.current
}
