// Package core implements the paper's Control and Reconfiguration
// sub-system (§3.3): a distributed component whose coordinator —
// deterministically elected as the lowest-identifier member of the control
// group — monitors the disseminated context, decides when adaptation is
// required by evaluating global policies, and drives the reconfiguration
// procedure; a local module on every node (stack.Manager) deploys the new
// XML-described protocol stack once the data channel is quiescent.
package core

import (
	"sync"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/cocaditem"
	"morpheus/internal/group"
	"morpheus/internal/stack"
)

// PrepareEvent instructs every participant to deploy a new configuration.
// Reliable (embeds CastEvent). Headers: epoch, config name, members, XML.
type PrepareEvent struct {
	group.CastEvent
	Epoch      uint64
	ConfigName string
	Members    []appia.NodeID
	XML        string
}

// AckEvent reports a completed local deployment. It is a reliable cast so
// the whole control group (and in particular the coordinator) learns the
// deployment status even over lossy links.
type AckEvent struct {
	group.CastEvent
	Epoch uint64
}

// RegisterWireEvents registers core's wire kinds (idempotent).
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("core.prepare", func() appia.Sendable { return &PrepareEvent{} })
	reg.Register("core.ack", func() appia.Sendable { return &AckEvent{} })
}

// PolicyInput is what a policy sees: the current control-group view, the
// context store, and the currently deployed configuration.
type PolicyInput struct {
	View    group.View
	Context *cocaditem.Session
	Current string
}

// Decision is a policy's verdict: deploy Doc under ConfigName for Members.
type Decision struct {
	ConfigName string
	Doc        *appiaxml.Document
	Members    []appia.NodeID
	Reason     string
}

// Policy evaluates context into configuration decisions. Policies are
// global: they see the whole distributed context and decide for the whole
// group, which is precisely what entangling adaptation code inside each
// protocol cannot do (paper §2).
type Policy interface {
	// Name identifies the policy in logs.
	Name() string
	// Evaluate returns nil when no change is warranted.
	Evaluate(in PolicyInput) *Decision
}

// Config configures the Core layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Manager is the local deployment module.
	Manager *stack.Manager
	// Policies are evaluated in order at the coordinator; the first
	// decision wins.
	Policies []Policy
	// EvalInterval is the policy evaluation period (default 200ms).
	EvalInterval time.Duration
	// OnReconfigured, when set, is called at the coordinator once every
	// member has acknowledged an epoch, with the wall time the procedure
	// took. Used by the reconfiguration-latency experiment.
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) evalInterval() time.Duration {
	if c.EvalInterval <= 0 {
		return 200 * time.Millisecond
	}
	return c.EvalInterval
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Layer is the Core control layer; place it at the top of the control
// channel, above cocaditem.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a Core layer.
func NewLayer(cfg Config) *Layer {
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "core",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
					appia.T[*group.ViewInstall](),
					appia.T[*evalTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
				},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	return &Session{cfg: l.cfg}
}

// evalTick is the private policy evaluation timer.
type evalTick struct {
	appia.EventBase
}

// Session is the per-node Core instance.
type Session struct {
	cfg      Config
	ctx      *cocaditem.Session
	stopTick func()

	view    group.View
	epoch   uint64
	current string

	// Coordinator reconfiguration-in-flight state.
	inFlight   bool
	acks       map[appia.NodeID]bool
	decidedAt  time.Time
	flightName string

	mu sync.Mutex // guards the fields below, written from deploy goroutines
	// deployedEpoch tracks what the local manager finished deploying.
	deployedEpoch uint64
}

var _ appia.Session = (*Session)(nil)

// Handle implements appia.Session.
func (s *Session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		if sess, ok := ch.SessionFor("cocaditem").(*cocaditem.Session); ok {
			s.ctx = sess
		}
		self := appia.Session(s)
		s.stopTick = ch.DeliverEvery(s.cfg.evalInterval(), self, func() appia.Event { return &evalTick{} })
		s.current = s.cfg.Manager.ConfigName()
		s.epoch = s.cfg.Manager.Epoch()
		ch.Forward(ev)
	case *appia.ChannelClose:
		if s.stopTick != nil {
			s.stopTick()
		}
		ch.Forward(ev)
	case *group.ViewInstall:
		if e.Dir() == appia.Up {
			s.view = e.View
		}
		ch.Forward(ev)
	case *evalTick:
		s.evaluate(ch)
	case *PrepareEvent:
		s.onPrepare(ch, e)
	case *AckEvent:
		s.onAck(ch, e)
	default:
		ch.Forward(ev)
	}
}

// coordinator reports whether this node currently coordinates adaptation.
func (s *Session) coordinator() bool {
	return len(s.view.Members) > 0 && s.view.Coordinator() == s.cfg.Self
}

// evaluate runs the policies at the coordinator.
func (s *Session) evaluate(ch *appia.Channel) {
	if s.inFlight && time.Since(s.decidedAt) > 30*time.Second {
		// Safety valve: a member died mid-deployment and its ack will
		// never come; the control view change will resolve membership,
		// and adaptation must not stay wedged meanwhile.
		s.cfg.logf("core[%d]: epoch %d acks incomplete after 30s; unblocking", s.cfg.Self, s.epoch)
		s.inFlight = false
	}
	if !s.coordinator() || s.inFlight || s.ctx == nil || len(s.cfg.Policies) == 0 {
		return
	}
	in := PolicyInput{View: s.view.Clone(), Context: s.ctx, Current: s.current}
	for _, p := range s.cfg.Policies {
		d := p.Evaluate(in)
		if d == nil {
			continue
		}
		if d.ConfigName == s.current {
			continue
		}
		s.initiate(ch, p, d)
		return
	}
}

// initiate starts a reconfiguration: ship the XML to everybody (§3.3: "the
// coordinator sends to each participant the configuration that should be
// deployed at that node").
func (s *Session) initiate(ch *appia.Channel, p Policy, d *Decision) {
	xml, err := d.Doc.Marshal()
	if err != nil {
		s.cfg.logf("core[%d]: marshal config %q: %v", s.cfg.Self, d.ConfigName, err)
		return
	}
	s.epoch++
	s.inFlight = true
	s.acks = make(map[appia.NodeID]bool)
	s.decidedAt = time.Now()
	s.flightName = d.ConfigName
	s.cfg.logf("core[%d]: policy %q: %s -> %s (epoch %d): %s",
		s.cfg.Self, p.Name(), s.current, d.ConfigName, s.epoch, d.Reason)
	s.current = d.ConfigName

	members := d.Members
	if len(members) == 0 {
		members = s.view.Members
	}
	ev := &PrepareEvent{
		Epoch:      s.epoch,
		ConfigName: d.ConfigName,
		Members:    append([]appia.NodeID(nil), members...),
		XML:        xml,
	}
	ev.Class = appia.ClassControl
	m := ev.EnsureMsg()
	m.PushString(ev.XML)
	ids := make([]uint64, len(ev.Members))
	for i, id := range ev.Members {
		ids[i] = uint64(uint32(id))
	}
	m.PushUvarintSlice(ids)
	m.PushString(ev.ConfigName)
	m.PushUvarint(ev.Epoch)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, ev, appia.Down)
}

// onPrepare deploys the new configuration locally (every member, including
// the coordinator, through the reliable self-delivery).
func (s *Session) onPrepare(ch *appia.Channel, e *PrepareEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	name, err := m.PopString()
	if err != nil {
		return
	}
	ids, err := m.PopUvarintSlice()
	if err != nil {
		return
	}
	xml, err := m.PopString()
	if err != nil {
		return
	}
	members := make([]appia.NodeID, len(ids))
	for i, u := range ids {
		members[i] = appia.NodeID(uint32(u))
	}
	e.Epoch, e.ConfigName, e.Members, e.XML = epoch, name, members, xml

	doc, err := appiaxml.ParseString(xml)
	if err != nil {
		s.cfg.logf("core[%d]: bad config XML for epoch %d: %v", s.cfg.Self, epoch, err)
		return
	}
	if epoch > s.epoch {
		s.epoch = epoch
	}
	s.current = name

	// The deployment blocks on view-synchronous quiescence, so it runs off
	// the scheduler goroutine; the Ack is inserted thread-safely after.
	go func() {
		if err := s.cfg.Manager.Reconfigure(doc, name, epoch, members); err != nil {
			s.cfg.logf("core[%d]: reconfigure epoch %d: %v", s.cfg.Self, epoch, err)
			return
		}
		s.mu.Lock()
		if epoch > s.deployedEpoch {
			s.deployedEpoch = epoch
		}
		s.mu.Unlock()
		ack := &AckEvent{Epoch: epoch}
		ack.Class = appia.ClassControl
		ack.EnsureMsg().PushUvarint(epoch)
		if err := ch.Insert(ack, appia.Down); err != nil {
			s.cfg.logf("core[%d]: ack epoch %d: %v", s.cfg.Self, epoch, err)
		}
	}()
}

// onAck tallies deployment acknowledgements at the coordinator.
func (s *Session) onAck(ch *appia.Channel, e *AckEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	epoch, err := e.EnsureMsg().PopUvarint()
	if err != nil {
		return
	}
	if !s.inFlight || epoch != s.epoch || s.acks == nil {
		return
	}
	// Origin (set by the reliable layer) identifies the deployer; the
	// vnet-level Source may be a relay.
	s.acks[e.Origin] = true
	for _, m := range s.view.Members {
		if m == s.cfg.Self {
			continue // our own deployment is tracked via deployedEpoch
		}
		if !s.acks[m] {
			return
		}
	}
	// All remote members acked; require the local deployment too.
	s.mu.Lock()
	localDone := s.deployedEpoch >= epoch
	s.mu.Unlock()
	if !localDone {
		// Re-check on the next ack or tick; cheap approach: leave
		// inFlight set, the eval tick will not fire policies, and the
		// local goroutine's ack-to-self closes the loop below.
		return
	}
	s.inFlight = false
	took := time.Since(s.decidedAt)
	if s.cfg.OnReconfigured != nil {
		s.cfg.OnReconfigured(epoch, s.flightName, took)
	}
	s.cfg.logf("core[%d]: epoch %d (%s) deployed group-wide in %v", s.cfg.Self, epoch, s.flightName, took)
}

// DeployedEpoch reports the last epoch the local manager finished (safe
// from any goroutine).
func (s *Session) DeployedEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deployedEpoch
}

// CurrentConfig returns the configuration name this node believes active.
// Scheduler-goroutine safety: reads a field written on the scheduler; for
// test/diagnostic use only.
func (s *Session) CurrentConfig() string { return s.current }
