// Package core implements the paper's Control and Reconfiguration
// sub-system (§3.3): a distributed component whose coordinator —
// deterministically elected as the lowest-identifier member of the control
// group — monitors the disseminated context, decides when adaptation is
// required by evaluating global policies, and drives the reconfiguration
// procedure; a local module on every node (stack.Manager) deploys the new
// XML-described protocol stack once the data channel is quiescent.
//
// The layer is a group-hosting control plane: one control channel (one
// membership service, one failure detector, one context dissemination
// plane) serves any number of concurrently hosted data groups. Each group
// registers a GroupRuntime — its stack manager, its adaptation policies,
// its configured membership — and gets an independent policy evaluator,
// epoch counter and reconfiguration pipeline; Prepare/Ack events carry the
// group name so concurrent per-group reconfigurations never interfere.
package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/clock"
	"morpheus/internal/cocaditem"
	"morpheus/internal/group"
	"morpheus/internal/stack"
)

// DefaultGroup names the group a single-group node hosts implicitly.
const DefaultGroup = "data"

// Registration errors.
var (
	ErrEmptyGroupName = errors.New("core: empty group name")
	ErrNoManager      = errors.New("core: group runtime needs a manager")
	ErrDuplicateGroup = errors.New("core: group already registered")
)

// PrepareEvent instructs every participant to deploy a new configuration
// for one hosted group. Reliable (embeds CastEvent). Headers: group, epoch,
// config name, members, XML.
type PrepareEvent struct {
	group.CastEvent
	TargetGroup string
	Epoch       uint64
	ConfigName  string
	Members     []appia.NodeID
	XML         string
}

// AckEvent reports a completed local deployment for one group. It is a
// reliable cast so the whole control group (and in particular the
// coordinator) learns the deployment status even over lossy links.
type AckEvent struct {
	group.CastEvent
	TargetGroup string
	Epoch       uint64
}

// RegisterWireEvents registers core's wire kinds (idempotent).
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("core.prepare", func() appia.Sendable { return &PrepareEvent{} })
	reg.Register("core.ack", func() appia.Sendable { return &AckEvent{} })
}

// PolicyInput is what a policy sees: the group's effective view (the
// configured group membership restricted to control-group-live nodes), the
// shared context store, the currently deployed configuration, and the name
// of the group under evaluation.
type PolicyInput struct {
	View    group.View
	Context *cocaditem.Session
	Current string
	Group   string
}

// Decision is a policy's verdict: deploy Doc under ConfigName for Members.
type Decision struct {
	ConfigName string
	Doc        *appiaxml.Document
	Members    []appia.NodeID
	Reason     string
}

// Policy evaluates context into configuration decisions. Policies are
// global: they see the whole distributed context and decide for the whole
// group, which is precisely what entangling adaptation code inside each
// protocol cannot do (paper §2).
type Policy interface {
	// Name identifies the policy in logs.
	Name() string
	// Evaluate returns nil when no change is warranted.
	Evaluate(in PolicyInput) *Decision
}

// GroupRuntime wires one hosted group into the control plane: the local
// deployment module, the adaptation policies evaluated for the group, and
// the group's configured membership.
type GroupRuntime struct {
	// Group names the group; it must be unique on the node and match the
	// name every other member registers.
	Group string
	// Manager is the group's local deployment module.
	Manager *stack.Manager
	// Policies are evaluated in order at the group's coordinator; the
	// first decision wins. Empty means a non-adaptive group.
	Policies []Policy
	// Members is the group's configured membership. The group's effective
	// view — what policies evaluate and reconfigurations target — is this
	// set restricted to control-group-live nodes. Empty means the whole
	// control group.
	Members []appia.NodeID
	// OnReconfigured, when set, is called at the group's coordinator once
	// every member has acknowledged an epoch, with the wall time the
	// procedure took.
	OnReconfigured func(epoch uint64, configName string, took time.Duration)
}

// Config configures the Core layer.
type Config struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Groups are the groups hosted from startup; more can be added (and
	// removed) at run time via Session.Register / Session.Unregister.
	Groups []GroupRuntime
	// EvalInterval is the policy evaluation period (default 200ms).
	EvalInterval time.Duration
	// Clock times reconfiguration latencies and spawns the per-deployment
	// goroutines. Nil means wall clock; under a *clock.Virtual, deployments
	// join the clock's actor rotation so reconfigurations are part of the
	// deterministic timeline.
	Clock clock.Clock
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) clock() clock.Clock { return clock.Or(c.Clock) }

func (c *Config) evalInterval() time.Duration {
	if c.EvalInterval <= 0 {
		return 200 * time.Millisecond
	}
	return c.EvalInterval
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Layer is the Core control layer; place it at the top of the control
// channel, above cocaditem.
type Layer struct {
	appia.BaseLayer
	cfg Config
}

// NewLayer returns a Core layer.
func NewLayer(cfg Config) *Layer {
	return &Layer{
		BaseLayer: appia.BaseLayer{
			LayerName: "core",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
					appia.T[*group.ViewInstall](),
					appia.T[*evalTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{
					appia.T[*PrepareEvent](),
					appia.T[*AckEvent](),
				},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *Layer) NewSession() appia.Session {
	s := &Session{cfg: l.cfg, groups: make(map[string]*groupState)}
	for _, rt := range l.cfg.Groups {
		if err := s.Register(rt); err != nil {
			l.cfg.logf("core[%d]: register group %q: %v", l.cfg.Self, rt.Group, err)
		}
	}
	return s
}

// evalTick is the private policy evaluation timer.
type evalTick struct {
	appia.EventBase
}

// groupState is one hosted group's control-plane state. Everything except
// deployedEpoch is only touched on the control scheduler goroutine (after
// the registration happens-before edge); deployedEpoch is written by deploy
// goroutines and is therefore atomic.
type groupState struct {
	rt      GroupRuntime
	epoch   uint64
	current string

	// Coordinator reconfiguration-in-flight state.
	inFlight      bool
	acks          map[appia.NodeID]bool
	decidedAt     time.Time
	flightName    string
	flightMembers []appia.NodeID

	// deployedEpoch tracks what the local manager finished deploying.
	deployedEpoch atomic.Uint64
}

// Session is the per-node Core instance: the shared control plane plus one
// evaluator per hosted group.
type Session struct {
	cfg      Config
	ctx      *cocaditem.Session
	stopTick func()

	view group.View // control-group view; scheduler goroutine only

	mu     sync.Mutex // guards the groups registry
	groups map[string]*groupState
}

var _ appia.Session = (*Session)(nil)

// Register adds a hosted group to the control plane. The group's manager
// must already hold its initial deployment. Safe from any goroutine.
func (s *Session) Register(rt GroupRuntime) error {
	if rt.Group == "" {
		return ErrEmptyGroupName
	}
	if rt.Manager == nil {
		return ErrNoManager
	}
	// The group view and its coordinator election assume a sorted,
	// deduplicated membership (View.Members is documented ascending).
	rt.Members = group.NormalizeMembers(append([]appia.NodeID(nil), rt.Members...))
	gs := &groupState{
		rt:      rt,
		epoch:   rt.Manager.Epoch(),
		current: rt.Manager.ConfigName(),
	}
	gs.deployedEpoch.Store(gs.epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.groups[rt.Group]; dup {
		return ErrDuplicateGroup
	}
	s.groups[rt.Group] = gs
	return nil
}

// Unregister removes a hosted group; in-flight deployments finish but no
// further adaptation happens for it. Safe from any goroutine.
func (s *Session) Unregister(name string) {
	s.mu.Lock()
	delete(s.groups, name)
	s.mu.Unlock()
}

// Groups returns the names of the hosted groups, sorted.
func (s *Session) Groups() []string {
	states := s.snapshot()
	out := make([]string, len(states))
	for i, gs := range states {
		out[i] = gs.rt.Group
	}
	return out
}

// lookup resolves a hosted group.
func (s *Session) lookup(name string) *groupState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[name]
}

// snapshot returns the hosted groups in deterministic order.
func (s *Session) snapshot() []*groupState {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.groups))
	for name := range s.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*groupState, 0, len(names))
	for _, name := range names {
		out = append(out, s.groups[name])
	}
	return out
}

// Handle implements appia.Session.
func (s *Session) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		if sess, ok := ch.SessionFor("cocaditem").(*cocaditem.Session); ok {
			s.ctx = sess
		}
		self := appia.Session(s)
		s.stopTick = ch.DeliverEvery(s.cfg.evalInterval(), self, func() appia.Event { return &evalTick{} })
		ch.Forward(ev)
	case *appia.ChannelClose:
		if s.stopTick != nil {
			s.stopTick()
		}
		ch.Forward(ev)
	case *group.ViewInstall:
		if e.Dir() == appia.Up {
			s.view = e.View
		}
		ch.Forward(ev)
	case *evalTick:
		s.evaluate(ch)
	case *PrepareEvent:
		s.onPrepare(ch, e)
	case *AckEvent:
		s.onAck(ch, e)
	default:
		ch.Forward(ev)
	}
}

// groupView computes a group's effective view: the configured membership
// restricted to control-group-live nodes (or the whole control view for
// groups without a configured membership). This is how the single shared
// failure detector feeds liveness into every hosted group.
func (s *Session) groupView(gs *groupState) group.View {
	if len(gs.rt.Members) == 0 {
		return s.view.Clone()
	}
	v := group.View{ID: s.view.ID}
	for _, m := range gs.rt.Members {
		if s.view.Contains(m) {
			v.Members = append(v.Members, m)
		}
	}
	return v
}

// evaluate runs every hosted group's policies at that group's coordinator.
// Groups evaluate independently: one group's in-flight reconfiguration
// never blocks another's.
func (s *Session) evaluate(ch *appia.Channel) {
	if len(s.view.Members) == 0 {
		return
	}
	for _, gs := range s.snapshot() {
		s.evaluateGroup(ch, gs)
	}
}

func (s *Session) evaluateGroup(ch *appia.Channel, gs *groupState) {
	if gs.inFlight && s.cfg.clock().Since(gs.decidedAt) > 30*time.Second {
		// Safety valve: a member died mid-deployment and its ack will
		// never come; the control view change will resolve membership,
		// and adaptation must not stay wedged meanwhile.
		s.cfg.logf("core[%d]: group %q epoch %d acks incomplete after 30s; unblocking",
			s.cfg.Self, gs.rt.Group, gs.epoch)
		gs.inFlight = false
	}
	gv := s.groupView(gs)
	if len(gv.Members) == 0 || gv.Coordinator() != s.cfg.Self {
		return
	}
	if gs.inFlight {
		return
	}
	if s.ctx != nil {
		in := PolicyInput{View: gv, Context: s.ctx, Current: gs.current, Group: gs.rt.Group}
		for _, p := range gs.rt.Policies {
			d := p.Evaluate(in)
			if d == nil {
				continue
			}
			if d.ConfigName == gs.current {
				continue
			}
			s.initiate(ch, gs, gv, p, d)
			return
		}
	}
	// No policy wants a different configuration; repair runs for adaptive
	// and non-adaptive groups alike.
	s.repairMembership(ch, gs, gv)
}

// repairPolicy labels membership-repair redeployments in logs.
type repairPolicy struct{}

func (repairPolicy) Name() string                   { return "membership-repair" }
func (repairPolicy) Evaluate(PolicyInput) *Decision { return nil }

// repairMembership redeploys the CURRENT configuration with a narrowed
// membership when a deployed member is no longer control-group-live. No
// policy asks for this (the config name does not change), but without it a
// dead or partitioned peer stays in the data channel's reliable-layer
// member set forever: stability gossip can never cover it, retransmission
// buffers stop pruning, and — with send windows — every sender eventually
// blocks on credits the dead peer will never release. The repair flush
// evicts the peer, which both re-bounds retention and releases the stalled
// credits (see group.nak's view-install release).
func (s *Session) repairMembership(ch *appia.Channel, gs *groupState, gv group.View) {
	deployed := gs.rt.Manager.Members()
	if len(deployed) == 0 || len(gv.Members) == 0 {
		return
	}
	shrunk := false
	for _, m := range deployed {
		if !gv.Contains(m) {
			shrunk = true
			break
		}
	}
	if !shrunk {
		return
	}
	doc := gs.rt.Manager.CurrentDocument()
	if doc == nil {
		return
	}
	s.initiate(ch, gs, gv, repairPolicy{}, &Decision{
		ConfigName: gs.current,
		Doc:        doc,
		Members:    append([]appia.NodeID(nil), gv.Members...),
		Reason:     "deployed membership lost a control-live member",
	})
}

// initiate starts a reconfiguration of one group: ship the XML to everybody
// (§3.3: "the coordinator sends to each participant the configuration that
// should be deployed at that node"). Non-members of the group receive and
// ignore the Prepare — the control channel is shared, the deployment is
// not.
func (s *Session) initiate(ch *appia.Channel, gs *groupState, gv group.View, p Policy, d *Decision) {
	xml, err := d.Doc.Marshal()
	if err != nil {
		s.cfg.logf("core[%d]: group %q: marshal config %q: %v", s.cfg.Self, gs.rt.Group, d.ConfigName, err)
		return
	}
	members := d.Members
	if len(members) == 0 {
		members = gv.Members
	}
	gs.epoch++
	gs.inFlight = true
	gs.acks = make(map[appia.NodeID]bool)
	gs.decidedAt = s.cfg.clock().Now()
	gs.flightName = d.ConfigName
	gs.flightMembers = append([]appia.NodeID(nil), members...)
	s.cfg.logf("core[%d]: group %q: policy %q: %s -> %s (epoch %d): %s",
		s.cfg.Self, gs.rt.Group, p.Name(), gs.current, d.ConfigName, gs.epoch, d.Reason)
	gs.current = d.ConfigName

	ev := &PrepareEvent{
		TargetGroup: gs.rt.Group,
		Epoch:       gs.epoch,
		ConfigName:  d.ConfigName,
		Members:     append([]appia.NodeID(nil), members...),
		XML:         xml,
	}
	ev.Class = appia.ClassControl
	m := ev.EnsureMsg()
	m.PushString(ev.XML)
	ids := make([]uint64, len(ev.Members))
	for i, id := range ev.Members {
		ids[i] = uint64(uint32(id))
	}
	m.PushUvarintSlice(ids)
	m.PushString(ev.ConfigName)
	m.PushUvarint(ev.Epoch)
	m.PushString(ev.TargetGroup)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, ev, appia.Down)
}

// onPrepare deploys the new configuration locally (every group member,
// including the coordinator, through the reliable self-delivery).
func (s *Session) onPrepare(ch *appia.Channel, e *PrepareEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	name, err := m.PopString()
	if err != nil {
		return
	}
	ids, err := m.PopUvarintSlice()
	if err != nil {
		return
	}
	xml, err := m.PopString()
	if err != nil {
		return
	}
	members := make([]appia.NodeID, len(ids))
	for i, u := range ids {
		members[i] = appia.NodeID(uint32(u))
	}
	e.TargetGroup, e.Epoch, e.ConfigName, e.Members, e.XML = groupName, epoch, name, members, xml

	gs := s.lookup(groupName)
	if gs == nil {
		return // we do not host this group: not our deployment
	}
	if epoch < gs.epoch {
		// Out-of-order Prepare from a deposed coordinator (the control
		// channel is FIFO per origin only): the deployment would be
		// rejected as stale anyway, and adopting its config name would
		// desynchronize this node's believed configuration — at a
		// coordinator, that triggers a pointless group-wide redeployment.
		return
	}
	doc, err := appiaxml.ParseString(xml)
	if err != nil {
		s.cfg.logf("core[%d]: group %q: bad config XML for epoch %d: %v", s.cfg.Self, groupName, epoch, err)
		return
	}
	gs.epoch = epoch
	gs.current = name

	// The deployment blocks on view-synchronous quiescence, so it runs off
	// the scheduler goroutine; the Ack is inserted thread-safely after.
	// Deployments of different groups run concurrently by construction.
	// Spawned through the clock: under the virtual clock plane the
	// deployment goroutine is an actor, queued for the run token in this
	// (deterministic) program order.
	s.cfg.clock().Go(func() {
		if err := gs.rt.Manager.Reconfigure(doc, name, epoch, members); err != nil {
			s.cfg.logf("core[%d]: group %q: reconfigure epoch %d: %v", s.cfg.Self, groupName, epoch, err)
			return
		}
		for {
			cur := gs.deployedEpoch.Load()
			if epoch <= cur || gs.deployedEpoch.CompareAndSwap(cur, epoch) {
				break
			}
		}
		ack := &AckEvent{TargetGroup: groupName, Epoch: epoch}
		ack.Class = appia.ClassControl
		am := ack.EnsureMsg()
		am.PushUvarint(epoch)
		am.PushString(groupName)
		if err := ch.Insert(ack, appia.Down); err != nil {
			s.cfg.logf("core[%d]: group %q: ack epoch %d: %v", s.cfg.Self, groupName, epoch, err)
		}
	})
}

// onAck tallies deployment acknowledgements at the group's coordinator.
func (s *Session) onAck(ch *appia.Channel, e *AckEvent) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	groupName, err := m.PopString()
	if err != nil {
		return
	}
	epoch, err := m.PopUvarint()
	if err != nil {
		return
	}
	e.TargetGroup, e.Epoch = groupName, epoch
	gs := s.lookup(groupName)
	if gs == nil {
		return
	}
	if !gs.inFlight || epoch != gs.epoch || gs.acks == nil {
		return
	}
	// Origin (set by the reliable layer) identifies the deployer; the
	// substrate-level Source may be a relay.
	gs.acks[e.Origin] = true
	for _, mbr := range gs.flightMembers {
		if mbr == s.cfg.Self {
			continue // our own deployment is tracked via deployedEpoch
		}
		if !s.view.Contains(mbr) {
			continue // died mid-flight; the view change excused it
		}
		if !gs.acks[mbr] {
			return
		}
	}
	// All remote members acked; require the local deployment too.
	if gs.deployedEpoch.Load() < epoch {
		// Re-check on the next ack: the local goroutine's ack-to-self
		// closes the loop below.
		return
	}
	gs.inFlight = false
	took := s.cfg.clock().Since(gs.decidedAt)
	if gs.rt.OnReconfigured != nil {
		gs.rt.OnReconfigured(epoch, gs.flightName, took)
	}
	s.cfg.logf("core[%d]: group %q: epoch %d (%s) deployed group-wide in %v",
		s.cfg.Self, gs.rt.Group, epoch, gs.flightName, took)
}

// DeployedEpoch reports the last epoch the named group's local manager
// finished (safe from any goroutine; 0 for unknown groups).
func (s *Session) DeployedEpoch(groupName string) uint64 {
	gs := s.lookup(groupName)
	if gs == nil {
		return 0
	}
	return gs.deployedEpoch.Load()
}

// CurrentConfig returns the configuration name this node believes active
// for the named group. Scheduler-goroutine safety: reads a field written on
// the scheduler; for test/diagnostic use only.
func (s *Session) CurrentConfig(groupName string) string {
	gs := s.lookup(groupName)
	if gs == nil {
		return ""
	}
	return gs.current
}
