package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/appia/appiaxml"
	"morpheus/internal/cocaditem"
	"morpheus/internal/group"
	"morpheus/internal/stack"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// --- Config document tests ---------------------------------------------------

func TestConfigDocumentsParse(t *testing.T) {
	docs := map[string]*appiaxml.Document{
		"plain":    PlainConfig(),
		"mecho":    MechoConfig(3),
		"arq":      ArqConfig(),
		"fec":      FecConfig(8, 2),
		"epidemic": EpidemicConfig(3, 4),
	}
	for name, d := range docs {
		xml, err := d.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := appiaxml.ParseString(xml)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := back.Channel("data"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestConfigDocumentsBuildable(t *testing.T) {
	w := vnet.NewWorld(1)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	vn, err := w.AddNode(1, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	sched := appia.NewScheduler()
	t.Cleanup(sched.Close)
	reg := stack.NewStandardRegistry()
	stack.RegisterAllWireEvents(nil)

	docs := []*appiaxml.Document{
		PlainConfig(), MechoConfig(1), ArqConfig(), FecConfig(4, 2), EpidemicConfig(3, 4),
	}
	for i, d := range docs {
		spec, err := d.Channel("data")
		if err != nil {
			t.Fatal(err)
		}
		env := &appiaxml.Env{
			Node: vn, Self: 1, Members: []appia.NodeID{1, 2},
			Port: "p", Scheduler: sched, Logf: t.Logf,
		}
		ch, err := appiaxml.BuildChannel(spec, reg, env)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if err := ch.Start(); err != nil {
			t.Fatal(err)
		}
		if !ch.WaitReady(2 * time.Second) {
			t.Fatalf("doc %d never ready", i)
		}
		if err := ch.Close(); err != nil {
			t.Fatal(err)
		}
		vn.Handle("p", nil) // release the port for the next build
	}
}

func TestMechoConfigName(t *testing.T) {
	if MechoConfigName(7) != "mecho:relay=7" {
		t.Fatal(MechoConfigName(7))
	}
}

// --- Policy tests -------------------------------------------------------------

// ctxWith builds a cocaditem session pre-loaded with samples, using the
// exported record path via a private constructor substitute: we drive the
// real session through its public Handle with fabricated publish events
// would be heavy; instead we use a real session and its record method via
// samples injected through Latest's backing store using the public API
// surface (Subscribe/Snapshot are read-only), so we go through an actual
// layer instance fed by direct struct construction.
func ctxWith(t *testing.T, samples []cocaditem.Sample) *cocaditem.Session {
	t.Helper()
	layer := cocaditem.NewLayer(cocaditem.Config{Self: 1})
	sess, ok := layer.NewSession().(*cocaditem.Session)
	if !ok {
		t.Fatal("unexpected session type")
	}
	for _, sm := range samples {
		sess.Inject(sm)
	}
	return sess
}

func dev(node appia.NodeID, class string) cocaditem.Sample {
	num := 0.0
	if class == "mobile" {
		num = 1
	}
	return cocaditem.Sample{Topic: cocaditem.TopicDeviceClass, Node: node, Num: num, Str: class, When: time.Now()}
}

func batt(node appia.NodeID, level float64) cocaditem.Sample {
	return cocaditem.Sample{Topic: cocaditem.TopicBattery, Node: node, Num: level, When: time.Now()}
}

func loss(node appia.NodeID, p float64) cocaditem.Sample {
	return cocaditem.Sample{Topic: cocaditem.TopicLinkLoss, Node: node, Num: p, When: time.Now()}
}

func view(members ...appia.NodeID) group.View {
	return group.View{ID: 1, Members: members}
}

func TestHybridMechoPolicy(t *testing.T) {
	p := HybridMechoPolicy{}

	// Incomplete context: no decision.
	in := PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{dev(1, "fixed")}), Current: PlainConfigName}
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("decided on incomplete context: %+v", d)
	}

	// Homogeneous fixed group on plain: no change.
	in = PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{dev(1, "fixed"), dev(2, "fixed")}), Current: PlainConfigName}
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("changed a settled homogeneous group: %+v", d)
	}

	// Hybrid group: deploy Mecho with the fixed relay.
	in = PolicyInput{View: view(1, 10), Context: ctxWith(t, []cocaditem.Sample{dev(1, "fixed"), dev(10, "mobile")}), Current: PlainConfigName}
	d := p.Evaluate(in)
	if d == nil || d.ConfigName != MechoConfigName(1) {
		t.Fatalf("decision = %+v", d)
	}

	// Hybrid with bandwidth context: best-bandwidth fixed node relays.
	in = PolicyInput{
		View: view(1, 2, 10),
		Context: ctxWith(t, []cocaditem.Sample{
			dev(1, "fixed"), dev(2, "fixed"), dev(10, "mobile"),
			{Topic: cocaditem.TopicBandwidth, Node: 1, Num: 10},
			{Topic: cocaditem.TopicBandwidth, Node: 2, Num: 100},
		}),
		Current: PlainConfigName,
	}
	d = p.Evaluate(in)
	if d == nil || d.ConfigName != MechoConfigName(2) {
		t.Fatalf("bandwidth-aware relay decision = %+v", d)
	}

	// Back to homogeneous (mobile left): restore plain.
	in = PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{dev(1, "fixed"), dev(2, "fixed")}), Current: MechoConfigName(1)}
	d = p.Evaluate(in)
	if d == nil || d.ConfigName != PlainConfigName {
		t.Fatalf("homogeneous restore = %+v", d)
	}
}

func TestEnergyPolicy(t *testing.T) {
	p := EnergyPolicy{Hysteresis: 0.2}

	// Current relay close to the best: hold steady.
	in := PolicyInput{
		View:    view(1, 2, 3),
		Context: ctxWith(t, []cocaditem.Sample{batt(1, 0.8), batt(2, 0.9), batt(3, 0.7)}),
		Current: MechoConfigName(1),
	}
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("rotated within hysteresis: %+v", d)
	}

	// Current relay drained: rotate to the best.
	in = PolicyInput{
		View:    view(1, 2, 3),
		Context: ctxWith(t, []cocaditem.Sample{batt(1, 0.3), batt(2, 0.9), batt(3, 0.7)}),
		Current: MechoConfigName(1),
	}
	d := p.Evaluate(in)
	if d == nil || d.ConfigName != MechoConfigName(2) {
		t.Fatalf("rotation decision = %+v", d)
	}

	// Incomplete battery context: wait.
	in = PolicyInput{
		View:    view(1, 2),
		Context: ctxWith(t, []cocaditem.Sample{batt(1, 0.5)}),
		Current: MechoConfigName(1),
	}
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("decided on missing battery data: %+v", d)
	}
}

func TestErrorRecoveryPolicy(t *testing.T) {
	p := ErrorRecoveryPolicy{}

	// No loss reports: no decision.
	in := PolicyInput{View: view(1, 2), Context: ctxWith(t, nil), Current: ArqConfigName}
	if d := p.Evaluate(in); d != nil {
		t.Fatal("decided without loss data")
	}

	// High loss: switch to FEC.
	in = PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{loss(1, 0.12)}), Current: ArqConfigName}
	d := p.Evaluate(in)
	if d == nil || d.ConfigName != FecConfigName {
		t.Fatalf("high loss decision = %+v", d)
	}

	// Mid-band loss: hysteresis holds the current config either way.
	in = PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{loss(1, 0.05)}), Current: FecConfigName}
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("hysteresis band violated: %+v", d)
	}
	in.Current = ArqConfigName
	if d := p.Evaluate(in); d != nil {
		t.Fatalf("hysteresis band violated (arq): %+v", d)
	}

	// Loss subsides from FEC: back to ARQ.
	in = PolicyInput{View: view(1, 2), Context: ctxWith(t, []cocaditem.Sample{loss(1, 0.01)}), Current: FecConfigName}
	d = p.Evaluate(in)
	if d == nil || d.ConfigName != ArqConfigName {
		t.Fatalf("recovery decision = %+v", d)
	}
}

func TestStaticPolicy(t *testing.T) {
	p := StaticPolicy{Config: "plain", Make: func() Decision {
		return Decision{ConfigName: "plain", Doc: PlainConfig()}
	}}
	in := PolicyInput{View: view(1, 2), Current: "other"}
	d := p.Evaluate(in)
	if d == nil || d.ConfigName != "plain" || len(d.Members) != 2 {
		t.Fatalf("static decision = %+v", d)
	}
	in.Current = "plain"
	if d := p.Evaluate(in); d != nil {
		t.Fatal("static policy re-decided")
	}
	if !strings.HasPrefix(p.Name(), "static:") {
		t.Fatal(p.Name())
	}
}

// --- Full control-loop test ---------------------------------------------------

// TestCoreControlLoop drives a 2-node control channel with a static policy
// and verifies the prepare/deploy/ack cycle completes.
func TestCoreControlLoop(t *testing.T) {
	w := vnet.NewWorld(3)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	stack.RegisterAllWireEvents(nil)
	cocaditem.RegisterWireEvents(nil)
	RegisterWireEvents(nil)

	members := []appia.NodeID{1, 2}
	done := make(chan uint64, 2)
	var closers []func()
	t.Cleanup(func() {
		for _, c := range closers {
			c()
		}
	})
	var managers []*stack.Manager
	for _, id := range members {
		id := id
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		sched := appia.NewScheduler()
		mgr := stack.NewManager(stack.ManagerConfig{
			Node: vn, Self: id, Scheduler: sched,
			Logf: func(string, ...any) {},
		})
		if err := mgr.Deploy(PlainConfig(), PlainConfigName, 1, members); err != nil {
			t.Fatal(err)
		}
		managers = append(managers, mgr)
		q, err := appia.NewQoS("ctl",
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "ctl", Logf: t.Logf}),
			group.NewFanoutLayer(group.FanoutConfig{Self: id, InitialMembers: members}),
			group.NewNakLayer(group.NakConfig{Self: id, InitialMembers: members, NackDelay: 10 * time.Millisecond, StableInterval: 40 * time.Millisecond}),
			group.NewGMSLayer(group.GMSConfig{Self: id, InitialMembers: members}),
			cocaditem.NewLayer(cocaditem.Config{Self: id, Interval: 20 * time.Millisecond, Retrievers: []cocaditem.Retriever{cocaditem.DeviceClassRetriever(vn)}}),
			NewLayer(Config{
				Self: id,
				Groups: []GroupRuntime{{
					Group:   DefaultGroup,
					Manager: mgr,
					Members: members,
					Policies: []Policy{StaticPolicy{Config: MechoConfigName(1), Make: func() Decision {
						return Decision{ConfigName: MechoConfigName(1), Doc: MechoConfig(1)}
					}}},
					OnReconfigured: func(epoch uint64, name string, took time.Duration) {
						done <- epoch
					},
				}},
				EvalInterval: 30 * time.Millisecond,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		ch := q.CreateChannel("ctl", sched)
		if err := ch.Start(); err != nil {
			t.Fatal(err)
		}
		closers = append(closers, func() {
			_ = ch.Close()
			_ = mgr.Close()
			sched.Close()
		})
	}

	select {
	case epoch := <-done:
		if epoch != 2 {
			t.Fatalf("epoch = %d", epoch)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("control loop never completed a reconfiguration")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if managers[0].ConfigName() == MechoConfigName(1) && managers[1].ConfigName() == MechoConfigName(1) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("managers = %q, %q", managers[0].ConfigName(), managers[1].ConfigName())
}

var _ sync.Mutex // keep sync imported if assertions above change
