package core

import (
	"fmt"

	"morpheus/internal/appia"
	"morpheus/internal/cocaditem"
)

// HybridMechoPolicy reproduces the paper's headline adaptation (§3.4): when
// the group mixes mobile and fixed devices, deploy Mecho with a fixed node
// as relay; when the group is homogeneous, deploy the plain stack. The
// relay is the fixed node with the best advertised bandwidth (falling back
// to the lowest identifier), demonstrating a *global* optimisation
// criterion no individual protocol could apply on its own.
type HybridMechoPolicy struct{}

var _ Policy = HybridMechoPolicy{}

// Name implements Policy.
func (HybridMechoPolicy) Name() string { return "hybrid-mecho" }

// Evaluate implements Policy.
func (HybridMechoPolicy) Evaluate(in PolicyInput) *Decision {
	var mobiles, fixed []appia.NodeID
	for _, m := range in.View.Members {
		sm, ok := in.Context.Latest(cocaditem.TopicDeviceClass, m)
		if !ok {
			return nil // incomplete context: wait for dissemination
		}
		if sm.Str == "mobile" {
			mobiles = append(mobiles, m)
		} else {
			fixed = append(fixed, m)
		}
	}
	if len(mobiles) == 0 || len(fixed) == 0 {
		// Homogeneous: Figure 2(a).
		if in.Current == PlainConfigName {
			return nil
		}
		return &Decision{
			ConfigName: PlainConfigName,
			Doc:        PlainConfig(),
			Members:    in.View.Members,
			Reason:     fmt.Sprintf("homogeneous group (%d mobile, %d fixed)", len(mobiles), len(fixed)),
		}
	}
	// Hybrid: Figure 2(b). Pick the best-bandwidth fixed relay.
	relay := fixed[0]
	best := -1.0
	for _, f := range fixed {
		bw := 0.0
		if sm, ok := in.Context.Latest(cocaditem.TopicBandwidth, f); ok {
			bw = sm.Num
		}
		if bw > best {
			best = bw
			relay = f
		}
	}
	name := MechoConfigName(relay)
	if in.Current == name {
		return nil
	}
	return &Decision{
		ConfigName: name,
		Doc:        MechoConfig(relay),
		Members:    in.View.Members,
		Reason:     fmt.Sprintf("hybrid group (%d mobile, %d fixed), relay %d", len(mobiles), len(fixed), relay),
	}
}

// EnergyPolicy implements the §1 motivation of using battery information to
// increase network lifetime: in an all-mobile group the relay role rotates
// to the member with the most remaining battery, with hysteresis so the
// group does not thrash. (Compare [20]'s session-based energy-aware
// broadcasting.)
type EnergyPolicy struct {
	// Hysteresis is how much better (in battery fraction) a candidate
	// must be before the relay moves (default 0.15).
	Hysteresis float64
}

var _ Policy = EnergyPolicy{}

// Name implements Policy.
func (EnergyPolicy) Name() string { return "energy-relay" }

func (p EnergyPolicy) hysteresis() float64 {
	if p.Hysteresis <= 0 {
		return 0.15
	}
	return p.Hysteresis
}

// Evaluate implements Policy.
func (p EnergyPolicy) Evaluate(in PolicyInput) *Decision {
	var best appia.NodeID
	bestLevel := -1.0
	levels := make(map[appia.NodeID]float64, len(in.View.Members))
	for _, m := range in.View.Members {
		sm, ok := in.Context.Latest(cocaditem.TopicBattery, m)
		if !ok {
			return nil // incomplete context
		}
		levels[m] = sm.Num
		if sm.Num > bestLevel {
			bestLevel = sm.Num
			best = m
		}
	}
	var currentRelay appia.NodeID
	if _, err := fmt.Sscanf(in.Current, "mecho:relay=%d", &currentRelay); err == nil {
		if lvl, ok := levels[currentRelay]; ok && bestLevel-lvl < p.hysteresis() {
			return nil // current relay still close enough to the best
		}
	}
	name := MechoConfigName(best)
	if name == in.Current {
		return nil
	}
	return &Decision{
		ConfigName: name,
		Doc:        MechoConfig(best),
		Members:    in.View.Members,
		Reason:     fmt.Sprintf("relay -> %d (battery %.2f)", best, bestLevel),
	}
}

// ErrorRecoveryPolicy implements the §2 motivation: "for small error rates
// it is preferable to detect and recover (using retransmissions) while for
// larger error rates it is preferable to mask the errors (using forward
// error recovery techniques)". It watches the link-loss topic and switches
// between the ARQ and FEC stacks with a hysteresis band.
type ErrorRecoveryPolicy struct {
	// High is the loss rate above which FEC is deployed (default 0.08).
	High float64
	// Low is the loss rate below which ARQ is restored (default 0.03).
	Low float64
	// K and M are the FEC block geometry (defaults 8 and 2).
	K, M int
}

var _ Policy = ErrorRecoveryPolicy{}

// Name implements Policy.
func (ErrorRecoveryPolicy) Name() string { return "error-recovery" }

func (p ErrorRecoveryPolicy) high() float64 {
	if p.High <= 0 {
		return 0.08
	}
	return p.High
}

func (p ErrorRecoveryPolicy) low() float64 {
	if p.Low <= 0 {
		return 0.03
	}
	return p.Low
}

func (p ErrorRecoveryPolicy) k() int {
	if p.K <= 0 {
		return 8
	}
	return p.K
}

func (p ErrorRecoveryPolicy) m() int {
	if p.M <= 0 {
		return 2
	}
	return p.M
}

// Evaluate implements Policy.
func (p ErrorRecoveryPolicy) Evaluate(in PolicyInput) *Decision {
	worst := -1.0
	for _, m := range in.View.Members {
		sm, ok := in.Context.Latest(cocaditem.TopicLinkLoss, m)
		if !ok {
			continue // loss is only reported by nodes that measure it
		}
		if sm.Num > worst {
			worst = sm.Num
		}
	}
	if worst < 0 {
		return nil // nobody reports loss yet
	}
	switch {
	case worst > p.high() && in.Current != FecConfigName:
		return &Decision{
			ConfigName: FecConfigName,
			Doc:        FecConfig(p.k(), p.m()),
			Members:    in.View.Members,
			Reason:     fmt.Sprintf("loss %.1f%% > %.1f%%: mask errors", worst*100, p.high()*100),
		}
	case worst >= 0 && worst < p.low() && in.Current == FecConfigName:
		return &Decision{
			ConfigName: ArqConfigName,
			Doc:        ArqConfig(),
			Members:    in.View.Members,
			Reason:     fmt.Sprintf("loss %.1f%% < %.1f%%: detect and recover", worst*100, p.low()*100),
		}
	default:
		return nil
	}
}

// StaticPolicy always wants one fixed configuration; useful as a baseline
// and in tests.
type StaticPolicy struct {
	Config string
	Make   func() Decision
}

var _ Policy = StaticPolicy{}

// Name implements Policy.
func (p StaticPolicy) Name() string { return "static:" + p.Config }

// Evaluate implements Policy.
func (p StaticPolicy) Evaluate(in PolicyInput) *Decision {
	if in.Current == p.Config {
		return nil
	}
	d := p.Make()
	if len(d.Members) == 0 {
		d.Members = in.View.Members
	}
	return &d
}
