// Package gf256 implements arithmetic over GF(2⁸) with the AES polynomial
// x⁸+x⁴+x³+x+1 (0x11b), as needed by the Reed–Solomon forward error
// correction codec in the fec package.
package gf256

// tables holds the exp/log lookup tables for the field.
type tables struct {
	exp [512]byte // doubled to avoid modular reduction in Mul
	log [256]byte
}

// _t is computed once at package initialisation from a pure function.
var _t = buildTables()

func buildTables() *tables {
	var t tables
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.log[x] = byte(i)
		// Multiply x by the generator 0x03 (a primitive element).
		x = mulSlow(x, 3)
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return &t
}

// mulSlow is carry-less multiplication with reduction, used only to build
// the tables.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// Add returns a+b (= a-b) in GF(2⁸).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b in GF(2⁸).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _t.exp[int(_t.log[a])+int(_t.log[b])]
}

// Div returns a/b in GF(2⁸); division by zero panics, as it would for
// integers.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _t.exp[int(_t.log[a])+255-int(_t.log[b])]
}

// Inv returns the multiplicative inverse of a; Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return _t.exp[255-int(_t.log[a])]
}

// Exp returns the generator raised to the n-th power.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return _t.exp[n]
}

// MulSlice computes dst[i] ^= c·src[i] for all i; it is the inner loop of
// the Reed–Solomon matrix application.
func MulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(_t.log[c])
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		if s := src[i]; s != 0 {
			dst[i] ^= _t.exp[logC+int(_t.log[s])]
		}
	}
}

// Matrix is a dense GF(2⁸) matrix.
type Matrix struct {
	Rows, Cols int
	Data       []byte // row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.Rows, m.Cols)
	copy(cp.Data, m.Data)
	return cp
}

// Vandermonde builds the rows×cols matrix with entry g^(r·c), whose every
// square submatrix is invertible — the property Reed–Solomon relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c))
		}
	}
	return m
}

// Invert returns the inverse of a square matrix using Gauss–Jordan
// elimination, or false if it is singular.
func (m *Matrix) Invert() (*Matrix, bool) {
	if m.Rows != m.Cols {
		return nil, false
	}
	n := m.Rows
	a := m.Clone()
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row to 1.
		p := a.At(col, col)
		scale := Inv(p)
		scaleRow(a, col, scale)
		scaleRow(inv, col, scale)
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(a, r, col, f)
			addScaledRow(inv, r, col, f)
		}
	}
	return inv, true
}

func swapRows(m *Matrix, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Matrix, r int, c byte) {
	row := m.Data[r*m.Cols : (r+1)*m.Cols]
	for i := range row {
		row[i] = Mul(row[i], c)
	}
}

// addScaledRow does row[dst] ^= f · row[src].
func addScaledRow(m *Matrix, dst, src int, f byte) {
	rd := m.Data[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.Data[src*m.Cols : (src+1)*m.Cols]
	for i := range rd {
		rd[i] ^= Mul(f, rs[i])
	}
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, &DimensionError{ARows: m.Rows, ACols: m.Cols, BRows: other.Rows, BCols: other.Cols}
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			f := m.At(r, k)
			if f == 0 {
				continue
			}
			for c := 0; c < other.Cols; c++ {
				out.Data[r*out.Cols+c] ^= Mul(f, other.At(k, c))
			}
		}
	}
	return out, nil
}

// DimensionError reports incompatible matrix shapes.
type DimensionError struct {
	ARows, ACols, BRows, BCols int
}

// Error implements error.
func (e *DimensionError) Error() string {
	return "gf256: incompatible matrix dimensions"
}

// SubMatrix extracts rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			out.Set(r-r0, c-c0, m.At(r, c))
		}
	}
	return out
}

// MulVec computes y = M·x where x is a vector of byte slices (one per
// column) and y has one slice per row; all slices share the same length.
// It is the block-coding workhorse: each "element" is a whole shard.
func (m *Matrix) MulVec(x [][]byte, shardLen int) [][]byte {
	y := make([][]byte, m.Rows)
	for r := range y {
		y[r] = make([]byte, shardLen)
		for c := 0; c < m.Cols; c++ {
			MulSlice(m.At(r, c), x[c], y[r])
		}
	}
	return y
}
