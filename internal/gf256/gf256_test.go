package gf256

import (
	"testing"
	"testing/quick"
)

func TestMulAgainstSlow(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := mulSlow(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and associativity of multiplication.
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity over addition (xor).
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%d) = %d is not inverse", a, inv)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,%d) != Inv(%d)", a, a)
		}
	}
}

func TestDivMulRoundtrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("Inv(0)", func() { Inv(0) })
	assertPanics("Div(1,0)", func() { Div(1, 0) })
}

func TestExpPeriodicity(t *testing.T) {
	if Exp(0) != 1 || Exp(255) != 1 {
		t.Fatal("generator order must be 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("negative exponents must wrap")
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("identity not invertible")
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if inv.At(r, c) != want {
				t.Fatalf("inv(I) != I at (%d,%d)", r, c)
			}
		}
	}
}

func TestMatrixInvertRoundtrip(t *testing.T) {
	// Vandermonde square blocks are invertible; inv(M)·M must be I.
	for n := 1; n <= 8; n++ {
		m := Vandermonde(n, n)
		inv, ok := m.Invert()
		if !ok {
			t.Fatalf("Vandermonde %d×%d not invertible", n, n)
		}
		prod, err := inv.Mul(m)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.At(r, c) != want {
					t.Fatalf("n=%d: inv·M != I at (%d,%d): %d", n, r, c, prod.At(r, c))
				}
			}
		}
	}
}

func TestSingularMatrix(t *testing.T) {
	m := NewMatrix(2, 2) // zero matrix
	if _, ok := m.Invert(); ok {
		t.Fatal("zero matrix inverted")
	}
	r := NewMatrix(2, 3)
	if _, ok := r.Invert(); ok {
		t.Fatal("non-square matrix inverted")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	src := []byte{0, 1, 2, 50, 255}
	dst := make([]byte, len(src))
	MulSlice(7, src, dst)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	// c=0 leaves dst untouched.
	dst2 := []byte{9, 9}
	MulSlice(0, []byte{1, 2}, dst2)
	if dst2[0] != 9 || dst2[1] != 9 {
		t.Fatal("MulSlice with zero coefficient wrote")
	}
}

func BenchmarkMulSlice(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(byte(i)|1, src, dst)
	}
}
