package group

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"morpheus/internal/appia"
)

// ErrUnboundedNak reports a NakConfig whose negative StableInterval
// disables stability gossip — the only mechanism bounding the
// retransmission buffers — without the explicit UnboundedBuffers opt-in.
var ErrUnboundedNak = errors.New(
	"group: negative StableInterval disables stability gossip and lets retransmission buffers grow without bound; set UnboundedBuffers to opt in")

// CreditReleaser receives send-window credits back as the reliable layer
// observes stability (internal/flowctl.Window implements it; the interface
// keeps this package substrate- and window-implementation-blind).
type CreditReleaser interface {
	Release(n int)
}

// NakConfig configures the reliable FIFO multicast layer.
type NakConfig struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// Group names the group this layer serves on a multi-group node; it is
	// stamped onto delivered casts so cross-group leakage is observable.
	// Empty for single-group (or control) channels.
	Group string
	// InitialMembers seeds the stability peer set until the first view.
	InitialMembers []appia.NodeID
	// NackDelay is how long a gap may stand before a retransmission
	// request is sent to the origin. Zero means 20ms.
	NackDelay time.Duration
	// StableInterval is the period of delivered-vector gossip used to
	// garbage-collect retransmission buffers. Zero means 250ms; negative
	// disables stability gossip (buffers then grow without bound — only
	// for short-lived test channels).
	StableInterval time.Duration
	// StableEvery, when positive, additionally gossips the delivered
	// vector after every StableEvery-th delivered cast, re-arming the
	// keepalive timer each time. Under sustained traffic the gossip
	// schedule then depends only on the (deterministic) delivery sequence;
	// the timer survives only as a keepalive for idle channels. The timer
	// runs on the channel scheduler's clock, so under the virtual clock
	// plane (internal/clock) even the idle keepalive is deterministic —
	// its former wall-clock ±1-tick measurement residual is gone, and
	// StableEvery is kept purely to bound buffer growth between idle
	// ticks under sustained load.
	StableEvery int
	// UnboundedBuffers acknowledges a negative StableInterval: without
	// stability gossip the sent/history buffers grow without bound, which
	// is acceptable only for short-lived test channels. Validate rejects
	// the combination unless this is set.
	UnboundedBuffers bool
	// Window, when non-nil, receives one credit back for every windowed
	// cast (CastEvent.Windowed) this session originated, once stability
	// gossip shows every peer delivered it — and for every windowed cast
	// still unconfirmed at channel teardown, where the view-synchronous
	// flush has already equalised deliveries. This wires the NAK
	// DeliveredVector watermarks into the per-group send window.
	Window CreditReleaser
	// BytesWindow, when non-nil, receives CastEvent.WindowBytes byte
	// credits back on exactly the same watermarks as Window: stability
	// confirmation, view install, and channel teardown. It wires the
	// byte-denominated send window (flowctl credits per payload byte)
	// through the reliable layer.
	BytesWindow CreditReleaser
	// MaxRetained hard-caps each retention map (own-cast retransmission
	// buffer, per-origin history, per-origin reorder buffer) at this many
	// entries. 0 means uncapped. With send windows active the caps are a
	// defensive backstop — the slowest-peer stability watermark already
	// bounds retention to the members' window sizes — so an eviction
	// (counted in Stats) indicates an accounting bug or an unwindowed
	// flooder. Evicted entries degrade repair (a peer that still needs
	// them must recover via flush or rejoin, exactly as for entries
	// garbage-collected by stability) but never FIFO correctness.
	MaxRetained int
}

// Validate rejects configurations that silently disable the only
// mechanism bounding retransmission-buffer growth.
func (c *NakConfig) Validate() error {
	if c.StableInterval < 0 && !c.UnboundedBuffers {
		return ErrUnboundedNak
	}
	return nil
}

func (c *NakConfig) nackDelay() time.Duration {
	if c.NackDelay == 0 {
		return 20 * time.Millisecond
	}
	return c.NackDelay
}

func (c *NakConfig) stableInterval() time.Duration {
	if c.StableInterval == 0 {
		return 250 * time.Millisecond
	}
	return c.StableInterval
}

// NakLayer provides reliable, per-origin FIFO multicast on top of any
// best-effort multicast bottom. Losses are detected as sequence gaps and
// repaired with point-to-point NACK retransmissions; delivered-vector
// gossip ("stability") bounds the retransmission buffers. This is the
// "detect and recover" error handling style of paper §2, appropriate at
// small error rates; the fec package provides the masking alternative.
type NakLayer struct {
	appia.BaseLayer
	cfg NakConfig
}

// NewNakLayer returns a reliable FIFO multicast layer.
func NewNakLayer(cfg NakConfig) *NakLayer {
	cfg.InitialMembers = NormalizeMembers(append([]appia.NodeID(nil), cfg.InitialMembers...))
	return &NakLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "group.nak",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*CastEvent](),
					appia.T[*Nack](),
					appia.T[*Stable](),
					appia.T[*VectorQuery](),
					appia.T[*ViewInstall](),
					appia.T[*StateTransfer](),
					appia.T[*nackTimeout](),
					appia.T[*stableTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{
					appia.T[*Nack](),
					appia.T[*Stable](),
					appia.T[*CastEvent](),
				},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *NakLayer) NewSession() appia.Session {
	return &nakSession{
		cfg:      l.cfg,
		members:  l.cfg.InitialMembers,
		recv:     make(map[appia.NodeID]*originState),
		sent:     make(map[uint64]appia.Sendable),
		peerVec:  make(map[appia.NodeID]DeliveredVector),
		windowed: make(map[uint64]int),
		nextSeq:  1,
	}
}

// NakStats are the reliable layer's retention high-water marks: the
// maximum entries ever held in the own-cast retransmission buffer, in the
// per-origin delivered-cast histories (summed over origins), and in the
// per-origin reorder buffers (summed), plus how many entries MaxRetained
// evicted. The marks are monotone and, under a virtual clock, a
// deterministic function of the run. Safe to read from any goroutine.
type NakStats struct {
	SentHighWater    int
	HistoryHighWater int
	BufferHighWater  int
	Evicted          int
}

// Merge returns the pointwise maximum (Evicted sums), for aggregating the
// marks of successive configuration epochs.
func (s NakStats) Merge(o NakStats) NakStats {
	return NakStats{
		SentHighWater:    max(s.SentHighWater, o.SentHighWater),
		HistoryHighWater: max(s.HistoryHighWater, o.HistoryHighWater),
		BufferHighWater:  max(s.BufferHighWater, o.BufferHighWater),
		Evicted:          s.Evicted + o.Evicted,
	}
}

// originState tracks reception from one origin.
type originState struct {
	next      uint64 // next sequence number to deliver
	known     uint64 // highest sequence known to exist (buffered or gossiped)
	buffer    map[uint64]*CastEvent
	events    map[uint64]appia.Event    // full events for re-forwarding
	history   map[uint64]appia.Sendable // delivered casts kept for peers
	nackArmed bool
	nackTries int
	cancel    func()
}

// missing reports whether this origin has sequence numbers we still lack.
func (st *originState) missing() bool {
	return len(st.buffer) > 0 || st.known >= st.next
}

type nakSession struct {
	cfg     NakConfig
	members []appia.NodeID

	nextSeq uint64                    // next sequence number for own casts
	sent    map[uint64]appia.Sendable // retransmission buffer (own casts)
	recv    map[appia.NodeID]*originState
	peerVec map[appia.NodeID]DeliveredVector // last stability vector per peer

	// windowed tracks which of our own seqs hold send-window credits,
	// independently of the sent map (an evicted sent entry must still
	// release its credits when its stability watermark arrives). The value
	// is the cast's byte-window cost (0 with byte windowing disabled);
	// membership alone marks the message credit.
	windowed map[uint64]int

	// Retention accounting: live totals (scheduler goroutine only) and
	// atomic high-water marks readable from any goroutine.
	cntHistory int
	cntBuffer  int
	hwSent     atomic.Int64
	hwHistory  atomic.Int64
	hwBuffer   atomic.Int64
	evicted    atomic.Int64

	stopStable  func()
	sinceGossip int // deliveries since the last stability gossip
}

// Stats snapshots the retention high-water marks (any goroutine).
func (s *nakSession) Stats() NakStats {
	return NakStats{
		SentHighWater:    int(s.hwSent.Load()),
		HistoryHighWater: int(s.hwHistory.Load()),
		BufferHighWater:  int(s.hwBuffer.Load()),
		Evicted:          int(s.evicted.Load()),
	}
}

// bumpHW raises a high-water mark to at least v. Stores race-free because
// only the scheduler goroutine writes them.
func bumpHW(hw *atomic.Int64, v int) {
	if int64(v) > hw.Load() {
		hw.Store(int64(v))
	}
}

var _ appia.Session = (*nakSession)(nil)

// Handle implements appia.Session.
func (s *nakSession) Handle(ch *appia.Channel, ev appia.Event) {
	// Events embedding CastEvent (Propose, Install, OrderEv, application
	// subtypes...) must take the cast path regardless of concrete type; a
	// type switch alone cannot express that.
	if c, ok := ev.(Caster); ok {
		s.processCast(ch, c.CastBase(), ev)
		return
	}
	switch e := ev.(type) {
	case *appia.ChannelInit:
		s.armStable(ch)
		ch.Forward(ev)
	case *appia.ChannelClose:
		if s.stopStable != nil {
			s.stopStable()
		}
		for _, st := range s.recv {
			if st.cancel != nil {
				st.cancel()
			}
		}
		// Teardown releases every credit this channel still holds: the
		// view-synchronous flush that precedes a reconfiguration has
		// equalised deliveries (and a force-closed channel's casts are
		// gone either way — holding their credits would leak the
		// window). Casts still buffered above in the GMS keep their
		// credits: the stack manager rescues and resubmits them.
		s.releaseAllWindowed()
		ch.Forward(ev)
	case *Nack:
		s.handleNack(ch, e)
	case *Stable:
		s.handleStable(ch, e)
	case *VectorQuery:
		e.Vector = s.deliveredVector()
		ch.Bounce(ev)
	case *ViewInstall:
		s.handleView(ch, e)
	case *StateTransfer:
		s.handleStateTransfer(ch, e)
	case *nackTimeout:
		s.fireNack(ch, e.origin)
	case *stableTick:
		s.gossipStable(ch)
		s.armStable(ch)
	default:
		ch.Forward(ev)
	}
}

func (s *nakSession) processCast(ch *appia.Channel, base *CastEvent, ev appia.Event) {
	if base.Dir() == appia.Down {
		s.sendCast(ch, base, ev)
		return
	}
	s.receiveCast(ch, base, ev)
}

// sendCast stamps, stores, self-delivers and spreads an outgoing cast.
func (s *nakSession) sendCast(ch *appia.Channel, base *CastEvent, ev appia.Event) {
	if base.Dest != appia.NoNode {
		// Addressed cast (a retransmission we produced below, or targeted
		// control): pass through untouched.
		ch.Forward(ev)
		return
	}
	if ch.State() == appia.ChannelClosed {
		// Teardown debris: a cast that raced Close into the mailbox (the
		// GMS forwards instead of pending these once stopped). The epoch
		// is dead — transmitting, buffering or self-delivering it would
		// all be wasted — so drop it here and return its credits, the one
		// thing that must not die with the channel.
		if base.Windowed {
			s.releaseCredits(1, base.WindowBytes)
		}
		return
	}
	seq := s.nextSeq
	s.nextSeq++
	m := base.EnsureMsg()
	m.PushUvarint(seq)
	m.PushUvarint(uint64(uint32(s.cfg.Self)))

	sendable, ok := ev.(appia.Sendable)
	if !ok {
		// Unreachable: anything embedding CastEvent is Sendable.
		return
	}
	// Retransmission buffer keeps a full clone, preserving the concrete
	// type so a retransmitted Propose still decodes as a Propose.
	s.sent[seq] = appia.CloneSendable(sendable)
	if base.Windowed && (s.cfg.Window != nil || s.cfg.BytesWindow != nil) {
		s.windowed[seq] = base.WindowBytes
	}
	bumpHW(&s.hwSent, len(s.sent))
	if cap := s.cfg.MaxRetained; cap > 0 && len(s.sent) > cap {
		// Evict the oldest entry: it is the closest to its stability
		// watermark, and handleNack already treats a missing entry as
		// "garbage collected — recover via flush".
		s.evictLowest(s.sent)
	}

	// Self-delivery: our own casts are in-order by construction, so they
	// skip the gap machinery and go straight up, looking exactly like a
	// delivered remote cast (headers popped, Origin/Seq set).
	st := s.origin(s.cfg.Self)
	if st.next == seq {
		st.next++
	}
	selfCopy := appia.CloneSendable(sendable)
	scb := selfCopy.SendableBase()
	scb.Source = s.cfg.Self
	sm := scb.Msg
	if _, err := sm.PopUvarint(); err != nil { // origin
		return
	}
	if _, err := sm.PopUvarint(); err != nil { // seq
		return
	}
	if c, ok := selfCopy.(Caster); ok {
		cb := c.CastBase()
		cb.Origin = s.cfg.Self
		cb.Seq = seq
		cb.Group = s.cfg.Group
	}
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, selfCopy, appia.Up)
	s.countDelivery(ch)

	ch.Forward(ev)
}

// receiveCast handles an incoming (or self-copied) cast: pop headers,
// dedupe, deliver in per-origin order.
func (s *nakSession) receiveCast(ch *appia.Channel, base *CastEvent, ev appia.Event) {
	m := base.EnsureMsg()
	o, err := m.PopUvarint()
	if err != nil {
		return // corrupt: drop
	}
	seq, err := m.PopUvarint()
	if err != nil {
		return
	}
	origin := appia.NodeID(uint32(o))
	base.Origin = origin
	base.Seq = seq
	base.Group = s.cfg.Group

	st := s.origin(origin)
	if seq > st.known {
		st.known = seq
	}
	switch {
	case seq < st.next:
		return // duplicate
	case seq == st.next:
		st.next++
		s.storeHistory(st, origin, seq, ev)
		ch.Forward(ev)
		s.countDelivery(ch)
		s.drain(ch, origin, st)
	default:
		if _, dup := st.buffer[seq]; !dup {
			// Buffer the event itself; we re-forward it when the gap
			// closes. Keep only the base pointer: forwarding needs the
			// original ev, so store via map of event.
			st.buffer[seq] = base
			s.bufferEv(st, seq, ev)
			s.cntBuffer++
			bumpHW(&s.hwBuffer, s.cntBuffer)
			if cap := s.cfg.MaxRetained; cap > 0 && len(st.buffer) > cap {
				// Evict the HIGHEST buffered seq: the lowest entries are
				// what closes the gap, and st.known already records the
				// evicted seq's existence, so the NACK rotation will
				// re-request it once the gap in front has drained.
				var high uint64
				for q := range st.buffer {
					if q > high {
						high = q
					}
				}
				delete(st.buffer, high)
				delete(st.events, high)
				s.cntBuffer--
				s.evicted.Add(1)
			}
		}
		s.armNack(ch, origin, st)
	}
}

// bufferedEvs maps the buffered base cast to the full event for
// re-forwarding. To avoid a second map we piggyback on originState.
func (s *nakSession) bufferEv(st *originState, seq uint64, ev appia.Event) {
	if st.events == nil {
		st.events = make(map[uint64]appia.Event)
	}
	st.events[seq] = ev
}

// drain delivers any buffered casts that are now in order.
func (s *nakSession) drain(ch *appia.Channel, origin appia.NodeID, st *originState) {
	for {
		ev, ok := st.events[st.next]
		if !ok {
			break
		}
		seq := st.next
		delete(st.events, seq)
		delete(st.buffer, seq)
		s.cntBuffer--
		st.next++
		s.storeHistory(st, origin, seq, ev)
		ch.Forward(ev)
		s.countDelivery(ch)
	}
	if !st.missing() {
		if st.cancel != nil {
			st.cancel()
			st.cancel = nil
		}
		st.nackArmed = false
		st.nackTries = 0
	}
}

// storeHistory keeps a wire-shaped clone of a delivered cast so this node
// can retransmit on behalf of a crashed or partitioned origin. The clone
// re-acquires the origin/seq headers popped during reception. History is
// pruned by the same stability watermarks as the send buffer.
func (s *nakSession) storeHistory(st *originState, origin appia.NodeID, seq uint64, ev appia.Event) {
	sendable, ok := ev.(appia.Sendable)
	if !ok {
		return
	}
	cp := appia.CloneSendable(sendable)
	m := cp.SendableBase().EnsureMsg()
	m.PushUvarint(seq)
	m.PushUvarint(uint64(uint32(origin)))
	if st.history == nil {
		st.history = make(map[uint64]appia.Sendable)
	}
	if _, dup := st.history[seq]; !dup {
		s.cntHistory++
	}
	st.history[seq] = cp
	bumpHW(&s.hwHistory, s.cntHistory)
	if cap := s.cfg.MaxRetained; cap > 0 && len(st.history) > cap {
		s.evictLowest(st.history)
		s.cntHistory--
	}
}

// evictLowest drops the lowest-sequence entry of a retention map and
// counts the eviction.
func (s *nakSession) evictLowest(m map[uint64]appia.Sendable) {
	var low uint64
	first := true
	for seq := range m {
		if first || seq < low {
			low, first = seq, false
		}
	}
	if !first {
		delete(m, low)
		s.evicted.Add(1)
	}
}

// armNack schedules a retransmission request for the lowest gap.
func (s *nakSession) armNack(ch *appia.Channel, origin appia.NodeID, st *originState) {
	if st.nackArmed {
		return
	}
	if len(s.members) == 1 && s.members[0] == s.cfg.Self && origin != s.cfg.Self {
		// Pre-admission singleton (a JoinVia bootstrap whose state transfer
		// has not landed yet): a remote cast racing ahead of the transfer
		// looks like a giant gap from sequence 1, but the frontier the
		// transfer carries is about to close it wholesale — NACKing now
		// would demand a history replay the join protocol exists to avoid.
		return
	}
	st.nackArmed = true
	sess := appia.Session(s)
	st.cancel = ch.DeliverAfter(s.cfg.nackDelay(), sess, &nackTimeout{origin: origin})
}

// fireNack sends the NACK for the current gap, if any, and rearms. The
// first requests go to the origin; if it stays silent (crashed,
// partitioned), subsequent requests rotate through the other members,
// which keep a retransmission history for exactly this purpose.
func (s *nakSession) fireNack(ch *appia.Channel, origin appia.NodeID) {
	st := s.origin(origin)
	st.nackArmed = false
	st.cancel = nil
	if !st.missing() {
		return // gap closed meanwhile
	}
	// Request up to the first buffered message, or — when nothing is
	// buffered and the gap is known only from stability gossip — up to the
	// gossiped high-water mark.
	to := st.known
	for seq := range st.buffer {
		if seq-1 < to {
			to = seq - 1
		}
	}
	if to < st.next {
		// Everything below the buffer is here; the buffer itself cannot
		// drain yet only if a middle gap exists, which the loop above
		// would have found. Nothing to request.
		s.armNack(ch, origin, st)
		return
	}
	target := s.nackTarget(origin, st.nackTries)
	st.nackTries++
	n := &Nack{Origin: origin, From: st.next, To: to}
	n.Dest = target
	n.Class = appia.ClassControl
	m := n.EnsureMsg()
	m.PushUvarint(n.To)
	m.PushUvarint(n.From)
	m.PushUvarint(uint64(uint32(origin)))
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, n, appia.Down)
	// Rearm in case the retransmission is itself lost.
	s.armNack(ch, origin, st)
}

// nackTarget picks whom to ask on the given retry round: the origin first
// (twice, since it is the most likely holder), then a rotation over every
// member including the origin, so requests keep reaching it even when
// intermediate peers cannot help.
func (s *nakSession) nackTarget(origin appia.NodeID, tries int) appia.NodeID {
	if tries < 2 {
		return origin
	}
	candidates := []appia.NodeID{origin}
	for _, m := range s.members {
		if m != s.cfg.Self && m != origin {
			candidates = append(candidates, m)
		}
	}
	return candidates[(tries-2)%len(candidates)]
}

// handleNack answers a retransmission request from our buffer.
func (s *nakSession) handleNack(ch *appia.Channel, e *Nack) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	o, err1 := m.PopUvarint()
	from, err2 := m.PopUvarint()
	to, err3 := m.PopUvarint()
	if err1 != nil || err2 != nil || err3 != nil {
		return
	}
	origin := appia.NodeID(uint32(o))
	requester := e.SendableBase().Source
	sess := appia.Session(s)
	lookup := func(seq uint64) (appia.Sendable, bool) {
		if origin == s.cfg.Self {
			st, ok := s.sent[seq]
			return st, ok
		}
		ost, ok := s.recv[origin]
		if !ok || ost.history == nil {
			return nil, false
		}
		st, ok := ost.history[seq]
		return st, ok
	}
	for seq := from; seq <= to; seq++ {
		stored, ok := lookup(seq)
		if !ok {
			continue // already garbage collected: peer must rejoin via flush
		}
		cp := appia.CloneSendable(stored)
		cb := cp.SendableBase()
		cb.Dest = requester
		cb.Class = appia.ClassControl
		_ = ch.SendFrom(sess, cp, appia.Down)
	}
}

// armStable (re-)schedules the stability keepalive on the scheduler's
// clock (virtual under the deterministic time plane, wall otherwise). A
// negative StableInterval disables stability gossip entirely.
func (s *nakSession) armStable(ch *appia.Channel) {
	if s.cfg.StableInterval < 0 {
		return
	}
	if s.stopStable != nil {
		s.stopStable()
	}
	sess := appia.Session(s)
	s.stopStable = ch.DeliverAfter(s.cfg.stableInterval(), sess, &stableTick{})
}

// countDelivery advances the delivery-driven gossip schedule: with
// StableEvery set, every StableEvery-th delivered cast gossips immediately
// and pushes the idle keepalive back, so under load the gossip points
// are a pure function of the delivery sequence.
func (s *nakSession) countDelivery(ch *appia.Channel) {
	if s.cfg.StableEvery <= 0 || s.cfg.StableInterval < 0 {
		return
	}
	s.sinceGossip++
	if s.sinceGossip >= s.cfg.StableEvery {
		s.gossipStable(ch)
		s.armStable(ch)
	}
}

// gossipStable multicasts our delivered vector. The gossiper's identity
// travels as a message header rather than relying on the substrate-level
// Source: relaying bottoms (Mecho's echo, epidemic forwarding) re-stamp
// Source with the forwarder, which used to file a relayed peer's vector
// under the relay's key — so on relayed stacks the stability view never
// covered every member and the retransmission buffers never pruned (the
// silent unbounded-memory leak this PR's flow-control plane surfaced as a
// hard credit stall).
func (s *nakSession) gossipStable(ch *appia.Channel) {
	s.sinceGossip = 0
	st := &Stable{Vector: s.deliveredVector()}
	st.Class = appia.ClassControl
	m := st.EnsureMsg()
	st.Vector.push(m)
	m.PushUvarint(uint64(uint32(s.cfg.Self)))
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, st, appia.Down)
	// Gossip points double as local prune points: our own vector just
	// advanced, and for a single-member group (no peers to ever gossip
	// back) this is the only trigger that retires sent entries and their
	// send-window credits.
	s.prune()
}

// handleStable records a peer vector and prunes the send buffer.
func (s *nakSession) handleStable(ch *appia.Channel, e *Stable) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	o, err := m.PopUvarint()
	if err != nil {
		return
	}
	vec, err := popVector(m)
	if err != nil {
		return
	}
	gossiper := appia.NodeID(uint32(o))
	s.peerVec[gossiper] = vec
	// Stability gossip doubles as loss advertisement: a peer that has
	// delivered seq k from some origin proves k exists, so if we are
	// behind we can request a repair — this is the only way to recover a
	// lost *final* message, which no subsequent gap would ever reveal.
	// Iterate in sorted origin order: armNack registers timers, and under
	// the virtual clock same-deadline timers fire in registration order —
	// map-order iteration here would be the run's only nondeterminism.
	for _, origin := range vec.SortedOrigins() {
		if origin == s.cfg.Self {
			continue
		}
		high := vec[origin]
		st := s.origin(origin)
		if high > st.known {
			st.known = high
		}
		if st.missing() {
			s.armNack(ch, origin, st)
		}
	}
	s.prune()
}

// releaseCredits returns n message credits and b byte credits to their
// respective windows (either may be absent).
func (s *nakSession) releaseCredits(n, b int) {
	if n > 0 && s.cfg.Window != nil {
		s.cfg.Window.Release(n)
	}
	if b > 0 && s.cfg.BytesWindow != nil {
		s.cfg.BytesWindow.Release(b)
	}
}

// releaseAllWindowed returns every credit the session still holds (channel
// teardown, view install).
func (s *nakSession) releaseAllWindowed() {
	if len(s.windowed) == 0 {
		return
	}
	bytes := 0
	for _, b := range s.windowed {
		bytes += b
	}
	s.releaseCredits(len(s.windowed), bytes)
	s.windowed = make(map[uint64]int)
}

// prune drops send-buffer and history entries that every member has
// delivered.
func (s *nakSession) prune() {
	mine := s.deliveredVector()
	stableFor := func(origin appia.NodeID) (uint64, bool) {
		min := mine[origin]
		for _, m := range s.members {
			if m == s.cfg.Self {
				continue
			}
			vec, ok := s.peerVec[m]
			if !ok {
				return 0, false // unknown peer state: keep everything
			}
			if vec[origin] < min {
				min = vec[origin]
			}
		}
		return min, true
	}
	if len(s.sent) > 0 || len(s.windowed) > 0 {
		if min, ok := stableFor(s.cfg.Self); ok {
			for seq := range s.sent {
				if seq <= min {
					delete(s.sent, seq)
				}
			}
			// Credits return on the same watermark that prunes the send
			// buffer: a windowed cast every member has delivered no longer
			// occupies the group's send window. The windowed set survives
			// MaxRetained evictions of sent entries, so a credit is never
			// lost to the cap.
			released, releasedBytes := 0, 0
			for seq, bytes := range s.windowed {
				if seq <= min {
					delete(s.windowed, seq)
					released++
					releasedBytes += bytes
				}
			}
			if released > 0 {
				s.releaseCredits(released, releasedBytes)
			}
		}
	}
	for origin, st := range s.recv {
		if len(st.history) == 0 {
			continue
		}
		min, ok := stableFor(origin)
		if !ok {
			continue
		}
		for seq := range st.history {
			if seq <= min {
				delete(st.history, seq)
				s.cntHistory--
			}
		}
	}
}

// handleView adopts a new membership: forget excluded origins and their
// pending gaps (the flush protocol has already equalised deliveries among
// survivors).
func (s *nakSession) handleView(ch *appia.Channel, e *ViewInstall) {
	if e.Dir() != appia.Down {
		ch.Forward(e)
		return
	}
	s.members = e.View.Members
	for origin, st := range s.recv {
		if !e.View.Contains(origin) {
			if st.cancel != nil {
				st.cancel()
			}
			s.cntHistory -= len(st.history)
			s.cntBuffer -= len(st.buffer)
			delete(s.recv, origin)
		}
	}
	for peer := range s.peerVec {
		if !e.View.Contains(peer) {
			delete(s.peerVec, peer)
		}
	}
	// A view installs only after the flush reports converged: every
	// surviving member has delivered every cast we originated (our own
	// report pins origin=self at nextSeq−1, and convergence makes all
	// reports equal). Windowed application casts cannot slip in after
	// the report snapshot — the GMS blocks them — so every held credit
	// is provably stable and returns here wholesale. This is also what
	// promptly unblocks senders stalled on a partitioned peer: the
	// eviction's view change is the release. (The sent/history maps
	// keep stability-based pruning: control casts issued mid-flush,
	// such as the Install itself, may still need retransmitting.)
	s.releaseAllWindowed()
	ch.Forward(e) // the best-effort bottom needs it too
}

// handleStateTransfer bootstraps reception state on a joiner.
func (s *nakSession) handleStateTransfer(ch *appia.Channel, e *StateTransfer) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	// Headers: view, vector (pushed by GMS on the coordinator).
	m := e.EnsureMsg()
	v, err := popView(m)
	if err != nil {
		return
	}
	vec, err := popVector(m)
	if err != nil {
		return
	}
	e.NewView = v
	e.Vector = vec
	// Adopt the membership before arming any repair: until the GMS above
	// commits the view and its ViewInstall travels back down, the session
	// still looks like a pre-admission singleton, which armNack refuses.
	s.members = append([]appia.NodeID(nil), v.Members...)
	for _, origin := range vec.SortedOrigins() {
		next := vec[origin]
		if origin == s.cfg.Self {
			// Sequence-space continuity on rejoin: if the group has already
			// delivered casts under our identifier (a previous incarnation
			// that left and came back), never reuse those numbers — peers
			// would drop the fresh casts as duplicates.
			if s.nextSeq < next+1 {
				s.nextSeq = next + 1
			}
			continue
		}
		st := s.origin(origin)
		if st.next < next+1 {
			st.next = next + 1
		}
		// Casts below the frontier were delivered (and stabilised) by the
		// running group before we existed: they are not gaps to repair.
		// Casts at or above it may already sit in the reorder buffer — a
		// multicast can race ahead of the point-to-point transfer — so
		// drain what is now in order and arm repair for what is not.
		for seq := range st.buffer {
			if seq < st.next {
				delete(st.buffer, seq)
				delete(st.events, seq)
				s.cntBuffer--
			}
		}
		s.drain(ch, origin, st)
		if st.missing() {
			s.armNack(ch, origin, st)
		}
	}
	ch.Forward(e) // GMS above also consumes it
}

// origin returns (allocating) the reception state for an origin.
func (s *nakSession) origin(id appia.NodeID) *originState {
	st, ok := s.recv[id]
	if !ok {
		st = &originState{next: 1, buffer: make(map[uint64]*CastEvent)}
		s.recv[id] = st
	}
	return st
}

// deliveredVector snapshots the per-origin contiguous delivery watermark.
func (s *nakSession) deliveredVector() DeliveredVector {
	dv := make(DeliveredVector, len(s.recv)+1)
	for origin, st := range s.recv {
		if st.next > 1 {
			dv[origin] = st.next - 1
		}
	}
	// Our own casts count as delivered up to nextSeq-1 (self-delivery is
	// immediate).
	if s.nextSeq > 1 {
		if cur, ok := dv[s.cfg.Self]; !ok || cur < s.nextSeq-1 {
			dv[s.cfg.Self] = s.nextSeq - 1
		}
	}
	return dv
}

// sortedGaps returns buffered-but-undeliverable seqs per origin (tests).
func (s *nakSession) sortedGaps(origin appia.NodeID) []uint64 {
	st, ok := s.recv[origin]
	if !ok {
		return nil
	}
	out := make([]uint64, 0, len(st.buffer))
	for seq := range st.buffer {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
