package group

import (
	"morpheus/internal/appia"
)

// FanoutConfig configures the point-to-point fan-out best-effort multicast.
type FanoutConfig struct {
	// Self is this node's identifier; it is excluded from the fan-out.
	Self appia.NodeID
	// InitialMembers seeds the destination set until the first
	// ViewInstall arrives from the membership layer.
	InitialMembers []appia.NodeID
}

// FanoutLayer is the paper's "straightforward design of a multicast
// protocol": a sequence of point-to-point messages, one per participant
// (§1). It is the non-optimized baseline of Figure 3 and the default
// best-effort bottom in homogeneous fixed-network scenarios without native
// multicast.
type FanoutLayer struct {
	appia.BaseLayer
	cfg FanoutConfig
}

// NewFanoutLayer returns a fan-out best-effort multicast layer.
func NewFanoutLayer(cfg FanoutConfig) *FanoutLayer {
	cfg.InitialMembers = NormalizeMembers(append([]appia.NodeID(nil), cfg.InitialMembers...))
	return &FanoutLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "group.fanout",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.TIface[appia.Sendable](),
					appia.T[*ViewInstall](),
				},
				Provides: []appia.EventType{appia.TIface[appia.Sendable]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *FanoutLayer) NewSession() appia.Session {
	return &fanoutSession{cfg: l.cfg, members: l.cfg.InitialMembers}
}

type fanoutSession struct {
	cfg     FanoutConfig
	members []appia.NodeID
}

var _ appia.Session = (*fanoutSession)(nil)

// Handle implements appia.Session. Downward unaddressed Sendables are
// cloned once per remote member; everything else passes through.
func (s *fanoutSession) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *ViewInstall:
		if e.Dir() == appia.Down {
			s.members = e.View.Members
			return // consumed: nothing below needs it
		}
		ch.Forward(ev)
	case appia.Sendable:
		sb := e.SendableBase()
		if sb.Dir() == appia.Down && sb.Dest == appia.NoNode {
			s.spread(ch, e)
			return // consumed: replaced by the per-member copies
		}
		ch.Forward(ev)
	default:
		ch.Forward(ev)
	}
}

// spread unicasts one copy per remote member.
func (s *fanoutSession) spread(ch *appia.Channel, e appia.Sendable) {
	sess := appia.Session(s)
	for _, m := range s.members {
		if m == s.cfg.Self {
			continue
		}
		cp := appia.CloneSendable(e)
		cp.SendableBase().Dest = m
		if err := ch.SendFrom(sess, cp, appia.Down); err != nil {
			return // channel tearing down
		}
	}
}
