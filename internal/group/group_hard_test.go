package group

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// TestSenderCrashMidStream: a sender crashes after its messages reached
// only some members. View synchrony demands that the survivors converge on
// the same delivered set — the peer-retransmission history makes that
// possible even though the origin is gone.
func TestSenderCrashMidStream(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{
		enableFD: true,
		gms: GMSConfig{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      120 * time.Millisecond,
		},
	})
	// Node 3 sends a stream, then crashes abruptly.
	const k = 20
	for i := 0; i < k; i++ {
		nodes[2].cast(t, fmt.Sprintf("s%02d", i))
	}
	// Give the stream a moment to spread partially, then kill.
	time.Sleep(10 * time.Millisecond)
	nodes[2].node.SetDown(true)

	// Survivors must install a 2-member view...
	for _, tn := range nodes[:2] {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d evicts crashed sender", tn.id), func() bool {
			vs := tn.viewList()
			last := vs[len(vs)-1]
			return len(last.Members) == 2
		})
	}
	// ...and agree exactly on what was delivered from the dead sender.
	eventually(t, 10*time.Second, "survivors converge", func() bool {
		a := nodes[0].deliveredList()
		b := nodes[1].deliveredList()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	})
}

// TestJoinAfterTraffic: a node joins an active group via JoinReq; the
// state transfer must let it participate without replaying history.
func TestJoinAfterTraffic(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	const pre = 10
	for i := 0; i < pre; i++ {
		nodes[0].cast(t, fmt.Sprintf("old%02d", i))
	}
	eventually(t, 5*time.Second, "pre-join traffic settles", func() bool {
		for _, tn := range nodes {
			if len(tn.deliveredList()) != pre {
				return false
			}
		}
		return true
	})

	// Build a fourth node attached to the same world and stack shape but
	// bootstrapped with only itself; it joins through node 1.
	joiner := addJoiner(t, nodes, 4)
	gsess, ok := joiner.ch.SessionFor("group.gms").(*gmsSession)
	if !ok {
		t.Fatal("gms session missing")
	}
	done := make(chan struct{})
	if err := joiner.sched.Do(func() {
		defer close(done)
		gsess.RequestJoin(joiner.ch, 1)
	}); err != nil {
		t.Fatal(err)
	}
	<-done

	// Everyone, including the joiner, must install a 4-member view.
	all := append(append([]*testNode(nil), nodes...), joiner)
	for _, tn := range all {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d installs 4-member view", tn.id), func() bool {
			vs := tn.viewList()
			if len(vs) == 0 {
				return false
			}
			return len(vs[len(vs)-1].Members) == 4
		})
	}
	// Fresh traffic reaches the joiner; history does not replay.
	preJoiner := len(joiner.deliveredList())
	nodes[1].cast(t, "fresh")
	for _, tn := range all {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d gets post-join cast", tn.id), func() bool {
			got := tn.deliveredList()
			return len(got) > 0 && got[len(got)-1] == "fresh"
		})
	}
	if got := len(joiner.deliveredList()); got != preJoiner+1 {
		t.Fatalf("joiner delivered %d new messages, want 1 (no history replay)", got-preJoiner)
	}
}

// addJoiner creates one more stack member bootstrapped as a singleton.
func addJoiner(t *testing.T, cluster []*testNode, id appia.NodeID) *testNode {
	t.Helper()
	w := cluster[0].node.World()
	vn, err := w.AddNode(id, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNode{id: id, node: vn, sched: appia.NewScheduler()}
	t.Cleanup(tn.sched.Close)
	members := []appia.NodeID{id} // knows only itself; learns the rest on join
	q, err := appia.NewQoS("join",
		transport.NewPTPLayer(transport.Config{Node: vn, Port: "grp", Logf: t.Logf}),
		NewFanoutLayer(FanoutConfig{Self: id, InitialMembers: members}),
		NewNakLayer(NakConfig{Self: id, InitialMembers: members, NackDelay: 10 * time.Millisecond, StableInterval: 50 * time.Millisecond}),
		NewGMSLayer(GMSConfig{Self: id, InitialMembers: members}),
	)
	if err != nil {
		t.Fatal(err)
	}
	tn.ch = q.CreateChannel("data", tn.sched, appia.WithDeliver(func(ev appia.Event) {
		tn.mu.Lock()
		defer tn.mu.Unlock()
		tn.events = append(tn.events, ev)
		switch e := ev.(type) {
		case *CastEvent:
			tn.delivered = append(tn.delivered, string(e.Msg.Bytes()))
		case *ViewInstall:
			tn.views = append(tn.views, e.View)
		}
	}))
	if err := tn.ch.Start(); err != nil {
		t.Fatal(err)
	}
	if !tn.ch.WaitReady(2 * time.Second) {
		t.Fatal("joiner never ready")
	}
	return tn
}

// TestTotalOrderSurvivesSequencerCrash: the coordinator (sequencer) dies;
// the new coordinator must deterministically order whatever was left
// unordered, and total order must hold throughout.
func TestTotalOrderSurvivesSequencerCrash(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{
		total:    true,
		enableFD: true,
		gms: GMSConfig{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      120 * time.Millisecond,
		},
	})
	const k = 15
	for i := 0; i < k; i++ {
		nodes[i%3].cast(t, fmt.Sprintf("t%02d-%d", i, i%3))
	}
	time.Sleep(5 * time.Millisecond)
	nodes[0].node.SetDown(true) // kill the sequencer

	// Survivors continue; new casts still get ordered by node 2.
	for i := 0; i < 5; i++ {
		nodes[1].cast(t, fmt.Sprintf("post%d", i))
	}
	eventually(t, 15*time.Second, "survivors deliver all surviving casts in agreement", func() bool {
		a, b := nodes[1].deliveredList(), nodes[2].deliveredList()
		if len(a) < 5 || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// The post-crash messages must be in there.
		seen := 0
		for _, m := range a {
			if len(m) >= 4 && m[:4] == "post" {
				seen++
			}
		}
		return seen == 5
	})
}

// TestConcurrentSendersUnderLossConverge is a stress: three senders, 20%
// loss, everyone must deliver everyone's full FIFO stream.
func TestConcurrentSendersUnderLossConverge(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{loss: 0.2, seed: 17})
	const k = 25
	for i := 0; i < k; i++ {
		for _, tn := range nodes {
			tn.cast(t, fmt.Sprintf("n%d-%02d", tn.id, i))
		}
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 20*time.Second, fmt.Sprintf("node %d delivers all %d", tn.id, 3*k), func() bool {
			return len(tn.deliveredList()) == 3*k
		})
		// Per-sender FIFO must hold.
		got := tn.deliveredList()
		next := map[byte]int{}
		for _, m := range got {
			sender := m[1]
			var idx int
			if _, err := fmt.Sscanf(m[3:], "%02d", &idx); err != nil {
				t.Fatalf("bad payload %q", m)
			}
			if idx != next[sender] {
				t.Fatalf("node %d: FIFO violation for sender %c: got %d want %d", tn.id, sender, idx, next[sender])
			}
			next[sender]++
		}
	}
}

// Property: DeliveredVector.Equal is reflexive, symmetric, and treats
// zero entries as absent.
func TestDeliveredVectorEqualProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		dv := DeliveredVector{}
		for i, k := range keys {
			if i < len(vals) && vals[i] > 0 {
				dv[appia.NodeID(k)] = uint64(vals[i])
			}
		}
		if !dv.Equal(dv) {
			return false
		}
		cp := dv.Clone()
		if !dv.Equal(cp) || !cp.Equal(dv) {
			return false
		}
		cp[999] = 0 // explicit zero equals absent
		return dv.Equal(cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: view encode/decode round-trips for any member set.
func TestViewEncodingProperty(t *testing.T) {
	f := func(id uint64, raw []uint16) bool {
		ms := make([]appia.NodeID, len(raw))
		for i, r := range raw {
			ms[i] = appia.NodeID(r)
		}
		in := View{ID: id, Members: NormalizeMembers(ms)}
		var m appia.Message
		pushView(&m, in)
		out, err := popView(&m)
		if err != nil || out.ID != in.ID || len(out.Members) != len(in.Members) {
			return false
		}
		for i := range in.Members {
			if out.Members[i] != in.Members[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
