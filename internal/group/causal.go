package group

import (
	"sort"

	"morpheus/internal/appia"
)

// CausalConfig configures the causal order layer.
type CausalConfig struct {
	Self appia.NodeID
}

// CausalLayer delays upward casts until they are causally ready, using
// piggybacked vector clocks. It sits above the reliable layer, which
// already provides per-origin FIFO and loss recovery, so only cross-origin
// reordering remains to be fixed.
type CausalLayer struct {
	appia.BaseLayer
	cfg CausalConfig
}

// NewCausalLayer returns a causal order layer.
func NewCausalLayer(cfg CausalConfig) *CausalLayer {
	return &CausalLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "group.causal",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*CastEvent](),
					appia.T[*ViewInstall](),
				},
				Requires: []appia.EventType{appia.T[*ViewInstall]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *CausalLayer) NewSession() appia.Session {
	return &causalSession{
		cfg:   l.cfg,
		clock: make(map[appia.NodeID]uint64),
	}
}

type causalSession struct {
	cfg     CausalConfig
	clock   map[appia.NodeID]uint64 // messages delivered per origin
	pending []*pendingCast
}

type pendingCast struct {
	ev     appia.Event
	origin appia.NodeID
	vc     map[appia.NodeID]uint64
}

var _ appia.Session = (*causalSession)(nil)

// Handle implements appia.Session.
func (s *causalSession) Handle(ch *appia.Channel, ev appia.Event) {
	if c, ok := ev.(Caster); ok {
		s.handleCast(ch, c.CastBase(), ev)
		return
	}
	if vi, ok := ev.(*ViewInstall); ok && vi.Dir() == appia.Up {
		// New view: the flush protocol has equalised deliveries, so
		// whatever is still pending is deliverable in any deterministic
		// order; release it sorted by (origin, seq) and reset the clock.
		s.releaseAll(ch)
		s.clock = make(map[appia.NodeID]uint64)
		ch.Forward(ev)
		return
	}
	ch.Forward(ev)
}

func (s *causalSession) handleCast(ch *appia.Channel, base *CastEvent, ev appia.Event) {
	if base.Dir() == appia.Down {
		if base.Dest != appia.NoNode {
			ch.Forward(ev) // addressed retransmissions bypass ordering
			return
		}
		// Stamp: the vector clock counts deliveries; our own send will be
		// delivered back to us by the reliable layer, so the stamp is the
		// clock as-is (the delivery condition below accounts for it).
		pushClock(base.EnsureMsg(), s.clock, s.cfg.Self)
		ch.Forward(ev)
		return
	}
	// Upward: pop the stamp and test deliverability.
	vc, origin, err := popClock(base.EnsureMsg())
	if err != nil {
		return
	}
	_ = origin
	s.pending = append(s.pending, &pendingCast{ev: ev, origin: base.Origin, vc: vc})
	s.deliverReady(ch)
}

// ready reports whether a cast is causally deliverable: we must have
// delivered everything its sender had delivered when it sent.
func (s *causalSession) ready(p *pendingCast) bool {
	for origin, need := range p.vc {
		if origin == p.origin {
			// Sender's own prior messages: FIFO from the reliable layer
			// guarantees them, but check anyway for defence in depth.
			if s.clock[origin] < need {
				return false
			}
			continue
		}
		if s.clock[origin] < need {
			return false
		}
	}
	return true
}

// deliverReady repeatedly releases deliverable casts.
func (s *causalSession) deliverReady(ch *appia.Channel) {
	for {
		progress := false
		for i := 0; i < len(s.pending); i++ {
			p := s.pending[i]
			if !s.ready(p) {
				continue
			}
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			i--
			s.clock[p.origin]++
			ch.Forward(p.ev)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// releaseAll flushes pending casts at a view change.
func (s *causalSession) releaseAll(ch *appia.Channel) {
	// Deliver in causal order where possible, then the rest FIFO.
	s.deliverReady(ch)
	for _, p := range s.pending {
		s.clock[p.origin]++
		ch.Forward(p.ev)
	}
	s.pending = nil
}

// pushClock encodes the sender's delivery clock. Origins are emitted in
// sorted order so the wire bytes of a given clock are canonical: encoding
// in map order made frame contents vary run to run, which any
// byte-hashing trace or dedup downstream would observe as nondeterminism
// (the decode side is order-insensitive, so only the bytes change).
func pushClock(m *appia.Message, clock map[appia.NodeID]uint64, self appia.NodeID) {
	origins := make([]appia.NodeID, 0, len(clock))
	for origin, n := range clock {
		if n == 0 {
			continue
		}
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	flat := make([]uint64, 0, len(origins)*2)
	for _, origin := range origins {
		flat = append(flat, uint64(uint32(origin)), clock[origin])
	}
	m.PushUvarintSlice(flat)
	m.PushUvarint(uint64(uint32(self)))
}

// popClock decodes a delivery clock stamp.
func popClock(m *appia.Message) (map[appia.NodeID]uint64, appia.NodeID, error) {
	selfU, err := m.PopUvarint()
	if err != nil {
		return nil, 0, err
	}
	flat, err := m.PopUvarintSlice()
	if err != nil {
		return nil, 0, err
	}
	vc := make(map[appia.NodeID]uint64, len(flat)/2)
	for i := 0; i+1 < len(flat); i += 2 {
		vc[appia.NodeID(uint32(flat[i]))] = flat[i+1]
	}
	return vc, appia.NodeID(uint32(selfU)), nil
}
