package group

import (
	"fmt"
	"testing"
	"time"

	"morpheus/internal/appia"
)

// TestCausalChainAcrossThreeNodes builds a three-link causal chain
// a→b→c across distinct senders and checks no member ever sees an effect
// before its cause.
func TestCausalChainAcrossThreeNodes(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{causal: true})
	nodes[0].cast(t, "a")
	eventually(t, 5*time.Second, "node2 saw a", func() bool {
		g := nodes[1].deliveredList()
		return len(g) >= 1 && g[len(g)-1] == "a"
	})
	nodes[1].cast(t, "b")
	eventually(t, 5*time.Second, "node3 saw b", func() bool {
		g := nodes[2].deliveredList()
		return len(g) >= 1 && g[len(g)-1] == "b"
	})
	nodes[2].cast(t, "c")
	for _, tn := range nodes {
		tn := tn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d has the chain", tn.id), func() bool {
			return len(tn.deliveredList()) == 3
		})
		got := tn.deliveredList()
		pos := map[string]int{}
		for i, m := range got {
			pos[m] = i
		}
		if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
			t.Fatalf("node %d: causal order violated: %v", tn.id, got)
		}
	}
}

// TestCausalConcurrentMessagesAllDelivered: concurrent (causally unrelated)
// messages may deliver in any relative order but must all arrive.
func TestCausalConcurrentMessagesAllDelivered(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{causal: true, loss: 0.1, seed: 23})
	const k = 15
	for i := 0; i < k; i++ {
		for _, tn := range nodes {
			tn.cast(t, fmt.Sprintf("c%d-%02d", tn.id, i))
		}
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 15*time.Second, fmt.Sprintf("node %d delivers all %d", tn.id, 3*k), func() bool {
			return len(tn.deliveredList()) == 3*k
		})
	}
}

// TestHoldFlushEmitsQuiescent drives the reconfiguration quiescence path
// directly at the GMS level: TriggerFlush{Hold} must block the channel,
// equalise deliveries, and surface a Quiescent event.
func TestHoldFlushEmitsQuiescent(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	for i := 0; i < 10; i++ {
		nodes[i%3].cast(t, fmt.Sprintf("pre%02d", i))
	}
	if err := nodes[0].ch.Insert(&TriggerFlush{Hold: true}, appia.Down); err != nil {
		t.Fatal(err)
	}
	// Every member must observe quiescence.
	for _, tn := range nodes {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d quiescent", tn.id), func() bool {
			tn.mu.Lock()
			defer tn.mu.Unlock()
			for _, ev := range tn.events {
				if _, ok := ev.(*Quiescent); ok {
					return true
				}
			}
			return false
		})
	}
	// At quiescence all members have identical delivered sets.
	base := sortedCopy(nodes[0].deliveredList())
	if len(base) != 10 {
		t.Fatalf("coordinator delivered %d of 10 before quiescence", len(base))
	}
	for _, tn := range nodes[1:] {
		got := sortedCopy(tn.deliveredList())
		if len(got) != len(base) {
			t.Fatalf("node %d delivered %d, coordinator %d", tn.id, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("node %d: delivered sets differ at %d", tn.id, i)
			}
		}
	}
	// Sends issued while held must buffer, not flow.
	nodes[1].cast(t, "held-back")
	time.Sleep(100 * time.Millisecond)
	for _, tn := range nodes {
		for _, m := range tn.deliveredList() {
			if m == "held-back" {
				t.Fatal("channel leaked a message while held quiescent")
			}
		}
	}
}

// TestStabilityPrunesBuffers verifies the stability machinery actually
// bounds memory: after gossip rounds, the senders' retransmission buffers
// shrink to (near) zero.
func TestStabilityPrunesBuffers(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	const k = 50
	for i := 0; i < k; i++ {
		nodes[0].cast(t, fmt.Sprintf("p%02d", i))
	}
	eventually(t, 5*time.Second, "all deliver", func() bool {
		for _, tn := range nodes {
			if len(tn.deliveredList()) != k {
				return false
			}
		}
		return true
	})
	sess, ok := nodes[0].ch.SessionFor("group.nak").(*nakSession)
	if !ok {
		t.Fatal("nak session missing")
	}
	eventually(t, 5*time.Second, "send buffer pruned", func() bool {
		var n int
		done := make(chan struct{})
		if err := nodes[0].sched.Do(func() {
			n = len(sess.sent)
			close(done)
		}); err != nil {
			return false
		}
		<-done
		return n == 0
	})
}
