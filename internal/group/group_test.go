package group

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

// testNode bundles one simulated group member.
type testNode struct {
	id    appia.NodeID
	node  *vnet.Node
	sched *appia.Scheduler
	ch    *appia.Channel

	mu        sync.Mutex
	delivered []string // payloads of delivered data casts
	views     []View
	events    []appia.Event
}

func (tn *testNode) deliveredList() []string {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	cp := make([]string, len(tn.delivered))
	copy(cp, tn.delivered)
	return cp
}

func (tn *testNode) viewList() []View {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	cp := make([]View, len(tn.views))
	copy(cp, tn.views)
	return cp
}

// stackOpts controls which optional layers the test stack includes.
type stackOpts struct {
	causal   bool
	total    bool
	enableFD bool
	nak      NakConfig
	gms      GMSConfig
	loss     float64
	seed     int64
}

// buildCluster creates n nodes (IDs 1..n) on one lossless LAN running the
// full group stack, started and ready.
func buildCluster(t *testing.T, n int, opts stackOpts) []*testNode {
	t.Helper()
	seed := opts.seed
	if seed == 0 {
		seed = 1
	}
	w := vnet.NewWorld(seed)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", Loss: opts.loss})
	RegisterWireEvents(nil)

	members := make([]appia.NodeID, n)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		id := appia.NodeID(i + 1)
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		tn := &testNode{id: id, node: vn, sched: appia.NewScheduler()}
		t.Cleanup(tn.sched.Close)

		nak := opts.nak
		nak.Self = id
		nak.InitialMembers = members
		if nak.NackDelay == 0 {
			nak.NackDelay = 10 * time.Millisecond
		}
		if nak.StableInterval == 0 {
			nak.StableInterval = 50 * time.Millisecond
		}
		gms := opts.gms
		gms.Self = id
		gms.InitialMembers = members
		gms.EnableFD = opts.enableFD

		layers := []appia.Layer{
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "grp", Logf: t.Logf}),
			NewFanoutLayer(FanoutConfig{Self: id, InitialMembers: members}),
			NewNakLayer(nak),
			NewGMSLayer(gms),
		}
		if opts.causal {
			layers = append(layers, NewCausalLayer(CausalConfig{Self: id}))
		}
		if opts.total {
			layers = append(layers, NewTotalLayer(TotalConfig{Self: id}))
		}
		q, err := appia.NewQoS("test", layers...)
		if err != nil {
			t.Fatal(err)
		}
		tn.ch = q.CreateChannel("data", tn.sched, appia.WithDeliver(func(ev appia.Event) {
			tn.mu.Lock()
			defer tn.mu.Unlock()
			tn.events = append(tn.events, ev)
			switch e := ev.(type) {
			case *CastEvent:
				tn.delivered = append(tn.delivered, string(e.Msg.Bytes()))
			case *ViewInstall:
				tn.views = append(tn.views, e.View)
			}
		}))
		nodes[i] = tn
	}
	for _, tn := range nodes {
		if err := tn.ch.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for every stack to come up (initial view announced) before
	// handing the cluster to the test; otherwise early frames race the
	// port binding and only the stability repair path would save them.
	for _, tn := range nodes {
		tn := tn
		eventually(t, 2*time.Second, "stack up", func() bool {
			return len(tn.viewList()) >= 1
		})
	}
	return nodes
}

// cast multicasts a payload from the node.
func (tn *testNode) cast(t *testing.T, payload string) {
	t.Helper()
	ev := &CastEvent{}
	ev.Msg = appia.NewMessage([]byte(payload))
	if err := tn.ch.Insert(ev, appia.Down); err != nil {
		t.Fatalf("node %d cast: %v", tn.id, err)
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestReliableMulticastAllDeliver(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	nodes[0].cast(t, "hello")
	nodes[1].cast(t, "world")
	for _, tn := range nodes {
		tn := tn
		eventually(t, 3*time.Second, fmt.Sprintf("node %d delivers 2", tn.id), func() bool {
			return len(tn.deliveredList()) == 2
		})
	}
}

func TestSenderSelfDelivery(t *testing.T) {
	nodes := buildCluster(t, 2, stackOpts{})
	nodes[0].cast(t, "mine")
	eventually(t, 3*time.Second, "sender self-delivers", func() bool {
		got := nodes[0].deliveredList()
		return len(got) == 1 && got[0] == "mine"
	})
}

func TestFIFOPerSender(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	const k = 50
	for i := 0; i < k; i++ {
		nodes[0].cast(t, fmt.Sprintf("m%03d", i))
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d delivers %d", tn.id, k), func() bool {
			return len(tn.deliveredList()) == k
		})
		got := tn.deliveredList()
		for i := 0; i < k; i++ {
			want := fmt.Sprintf("m%03d", i)
			if got[i] != want {
				t.Fatalf("node %d: position %d = %q, want %q (FIFO violated)", tn.id, i, got[i], want)
			}
		}
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{loss: 0.25, seed: 7})
	const k = 40
	for i := 0; i < k; i++ {
		nodes[0].cast(t, fmt.Sprintf("x%03d", i))
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d recovers all under 25%% loss", tn.id), func() bool {
			return len(tn.deliveredList()) == k
		})
	}
}

func TestInitialViewInstalled(t *testing.T) {
	nodes := buildCluster(t, 4, stackOpts{})
	for _, tn := range nodes {
		tn := tn
		eventually(t, 2*time.Second, "initial view", func() bool {
			vs := tn.viewList()
			return len(vs) >= 1 && len(vs[0].Members) == 4 && vs[0].Coordinator() == 1
		})
	}
}

func TestTriggerFlushInstallsNewView(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	// Let the initial view settle.
	eventually(t, 2*time.Second, "initial views", func() bool {
		for _, tn := range nodes {
			if len(tn.viewList()) < 1 {
				return false
			}
		}
		return true
	})
	// Trigger a flush at the coordinator (node 1).
	if err := nodes[0].ch.Insert(&TriggerFlush{}, appia.Down); err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d installs view 2", tn.id), func() bool {
			vs := tn.viewList()
			return len(vs) >= 2 && vs[len(vs)-1].ID == 2
		})
	}
}

func TestViewSynchronyUnderTraffic(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{loss: 0.1, seed: 3})
	const k = 30
	for i := 0; i < k; i++ {
		nodes[i%3].cast(t, fmt.Sprintf("t%03d", i))
	}
	if err := nodes[0].ch.Insert(&TriggerFlush{}, appia.Down); err != nil {
		t.Fatal(err)
	}
	// After the flush everyone must have delivered the same set.
	for _, tn := range nodes {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d view 2", tn.id), func() bool {
			vs := tn.viewList()
			return len(vs) >= 2
		})
	}
	eventually(t, 10*time.Second, "all deliver everything", func() bool {
		for _, tn := range nodes {
			if len(tn.deliveredList()) != k {
				return false
			}
		}
		return true
	})
	// Same multiset (per-sender FIFO implies same sequences; compare as
	// sorted copies).
	base := sortedCopy(nodes[0].deliveredList())
	for _, tn := range nodes[1:] {
		got := sortedCopy(tn.deliveredList())
		if len(got) != len(base) {
			t.Fatalf("delivery sets differ in size")
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("delivery sets differ: %v vs %v", base[i], got[i])
			}
		}
	}
}

func TestCrashedMemberEvicted(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{
		enableFD: true,
		gms: GMSConfig{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      100 * time.Millisecond,
		},
	})
	eventually(t, 2*time.Second, "initial views", func() bool {
		for _, tn := range nodes {
			if len(tn.viewList()) < 1 {
				return false
			}
		}
		return true
	})
	nodes[2].node.SetDown(true)
	for _, tn := range nodes[:2] {
		tn := tn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d evicts node 3", tn.id), func() bool {
			vs := tn.viewList()
			last := vs[len(vs)-1]
			return len(last.Members) == 2 && !last.Contains(3)
		})
	}
	// Traffic keeps flowing in the new view.
	nodes[0].cast(t, "after-eviction")
	for _, tn := range nodes[:2] {
		tn := tn
		eventually(t, 3*time.Second, "post-eviction delivery", func() bool {
			got := tn.deliveredList()
			return len(got) >= 1 && got[len(got)-1] == "after-eviction"
		})
	}
}

func TestCoordinatorCrashPromotesNext(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{
		enableFD: true,
		gms: GMSConfig{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      100 * time.Millisecond,
		},
	})
	eventually(t, 2*time.Second, "initial views", func() bool {
		for _, tn := range nodes {
			if len(tn.viewList()) < 1 {
				return false
			}
		}
		return true
	})
	nodes[0].node.SetDown(true) // kill the coordinator
	for _, tn := range nodes[1:] {
		tn := tn
		eventually(t, 5*time.Second, fmt.Sprintf("node %d installs coordinator 2", tn.id), func() bool {
			vs := tn.viewList()
			last := vs[len(vs)-1]
			return last.Coordinator() == 2 && !last.Contains(1)
		})
	}
}

func sortedCopy(ss []string) []string {
	cp := make([]string, len(ss))
	copy(cp, ss)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp
}

func TestTotalOrderAgreement(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{total: true, loss: 0.1, seed: 5})
	const k = 20
	for i := 0; i < k; i++ {
		nodes[i%3].cast(t, fmt.Sprintf("z%03d-%d", i, i%3))
	}
	for _, tn := range nodes {
		tn := tn
		eventually(t, 10*time.Second, fmt.Sprintf("node %d delivers %d ordered", tn.id, k), func() bool {
			return len(tn.deliveredList()) == k
		})
	}
	base := nodes[0].deliveredList()
	for _, tn := range nodes[1:] {
		got := tn.deliveredList()
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("total order violated at %d: node1=%q node%d=%q", i, base[i], tn.id, got[i])
			}
		}
	}
}

func TestCausalOrderRespected(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{causal: true})
	// Node 1 sends a; node 2 replies b after seeing a. Every member must
	// deliver a before b.
	nodes[0].cast(t, "a")
	eventually(t, 3*time.Second, "node2 sees a", func() bool {
		got := nodes[1].deliveredList()
		return len(got) == 1 && got[0] == "a"
	})
	nodes[1].cast(t, "b")
	for _, tn := range nodes {
		tn := tn
		eventually(t, 3*time.Second, "causal pair delivered", func() bool {
			return len(tn.deliveredList()) == 2
		})
		got := tn.deliveredList()
		if got[0] != "a" || got[1] != "b" {
			t.Fatalf("node %d: causal order violated: %v", tn.id, got)
		}
	}
}

func TestViewEncoding(t *testing.T) {
	var m appia.Message
	in := View{ID: 42, Members: []appia.NodeID{1, 5, 9}}
	pushView(&m, in)
	out, err := popView(&m)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || len(out.Members) != 3 || out.Members[2] != 9 {
		t.Fatalf("roundtrip = %+v", out)
	}
}

func TestDeliveredVectorEncoding(t *testing.T) {
	var m appia.Message
	in := DeliveredVector{1: 10, 3: 7}
	in.push(&m)
	out, err := popVector(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Fatalf("roundtrip = %v, want %v", out, in)
	}
	if in.Equal(DeliveredVector{1: 10}) {
		t.Fatal("Equal ignored missing key")
	}
	if !(DeliveredVector{1: 0}).Equal(DeliveredVector{}) {
		t.Fatal("zero entries must equal absent entries")
	}
}

func TestNormalizeMembers(t *testing.T) {
	got := NormalizeMembers([]appia.NodeID{5, 1, 3, 1, 5})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("NormalizeMembers = %v", got)
	}
}

func TestViewCoordinatorEmpty(t *testing.T) {
	if (View{}).Coordinator() != appia.NoNode {
		t.Fatal("empty view coordinator must be NoNode")
	}
}
