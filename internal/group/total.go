package group

import (
	"sort"

	"morpheus/internal/appia"
)

// TotalConfig configures the sequencer-based total order layer.
type TotalConfig struct {
	Self appia.NodeID
}

// TotalLayer delivers casts in the same total order at every member, using
// the view coordinator as a fixed sequencer. Each cast delivered by the
// reliable layer is held until the sequencer's ordering decision (an
// OrderEv, itself a reliable cast) assigns it a global sequence number.
// When a view change replaces the sequencer, the flush protocol has already
// equalised every member's held set, so the new sequencer deterministically
// orders the leftovers.
type TotalLayer struct {
	appia.BaseLayer
	cfg TotalConfig
}

// NewTotalLayer returns a total order layer.
func NewTotalLayer(cfg TotalConfig) *TotalLayer {
	return &TotalLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "group.total",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*CastEvent](),
					appia.T[*OrderEv](),
					appia.T[*ViewInstall](),
				},
				Provides: []appia.EventType{appia.T[*OrderEv]()},
				Requires: []appia.EventType{appia.T[*ViewInstall]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *TotalLayer) NewSession() appia.Session {
	return &totalSession{
		cfg:    l.cfg,
		held:   make(map[castKey]appia.Event),
		orders: make(map[uint64]castKey),
		keyed:  make(map[castKey]uint64),
		gseq:   1,
		next:   1,
	}
}

type castKey struct {
	origin appia.NodeID
	seq    uint64
}

type totalSession struct {
	cfg       TotalConfig
	view      View
	sequencer appia.NodeID

	held   map[castKey]appia.Event
	orders map[uint64]castKey // gseq -> cast
	keyed  map[castKey]uint64 // cast -> gseq (dedup of ordering decisions)
	gseq   uint64             // next gseq to assign (sequencer)
	next   uint64             // next gseq to deliver
}

var _ appia.Session = (*totalSession)(nil)

// Handle implements appia.Session.
func (s *totalSession) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *OrderEv:
		s.onOrder(ch, e)
		return
	case *ViewInstall:
		if e.Dir() == appia.Up {
			s.onView(ch, e)
			ch.Forward(ev)
			return
		}
		ch.Forward(ev)
		return
	}
	if c, ok := ev.(Caster); ok {
		s.onCast(ch, c.CastBase(), ev)
		return
	}
	ch.Forward(ev)
}

// onCast holds upward casts until ordered; downward casts pass through.
func (s *totalSession) onCast(ch *appia.Channel, base *CastEvent, ev appia.Event) {
	if base.Dir() == appia.Down {
		ch.Forward(ev)
		return
	}
	key := castKey{origin: base.Origin, seq: base.Seq}
	s.held[key] = ev
	if s.cfg.Self == s.sequencer {
		s.assign(ch, []castKey{key})
	}
	s.deliverInOrder(ch)
}

// assign allocates global sequence numbers and multicasts the decision.
func (s *totalSession) assign(ch *appia.Channel, keys []castKey) {
	entries := make([]OrderEntry, 0, len(keys))
	for _, k := range keys {
		if _, done := s.keyed[k]; done {
			continue
		}
		g := s.gseq
		s.gseq++
		s.keyed[k] = g
		s.orders[g] = k
		entries = append(entries, OrderEntry{Origin: k.origin, Seq: k.seq, Gseq: g})
	}
	if len(entries) == 0 {
		return
	}
	oe := &OrderEv{Orders: entries}
	oe.Class = appia.ClassControl
	m := oe.EnsureMsg()
	flat := make([]uint64, 0, len(entries)*3)
	for _, en := range entries {
		flat = append(flat, uint64(uint32(en.Origin)), en.Seq, en.Gseq)
	}
	m.PushUvarintSlice(flat)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, oe, appia.Down)
}

// onOrder records ordering decisions (including our own, self-delivered).
func (s *totalSession) onOrder(ch *appia.Channel, e *OrderEv) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	flat, err := e.EnsureMsg().PopUvarintSlice()
	if err != nil || len(flat)%3 != 0 {
		return
	}
	for i := 0; i+2 < len(flat); i += 3 {
		k := castKey{origin: appia.NodeID(uint32(flat[i])), seq: flat[i+1]}
		g := flat[i+2]
		if _, dup := s.orders[g]; dup {
			continue
		}
		s.orders[g] = k
		s.keyed[k] = g
		if g >= s.gseq {
			s.gseq = g + 1
		}
	}
	s.deliverInOrder(ch)
}

// deliverInOrder releases held casts in global sequence order.
func (s *totalSession) deliverInOrder(ch *appia.Channel) {
	for {
		key, ok := s.orders[s.next]
		if !ok {
			return
		}
		ev, have := s.held[key]
		if !have {
			return // decision arrived before the cast: wait for it
		}
		delete(s.held, key)
		delete(s.orders, s.next)
		s.next++
		ch.Forward(ev)
	}
}

// onView adopts the new sequencer; if that is us, deterministically order
// any held casts the old sequencer never got to.
func (s *totalSession) onView(ch *appia.Channel, e *ViewInstall) {
	s.view = e.View
	s.sequencer = e.View.Coordinator()
	if s.cfg.Self != s.sequencer {
		return
	}
	var leftovers []castKey
	for k := range s.held {
		if _, done := s.keyed[k]; !done {
			leftovers = append(leftovers, k)
		}
	}
	sort.Slice(leftovers, func(i, j int) bool {
		if leftovers[i].origin != leftovers[j].origin {
			return leftovers[i].origin < leftovers[j].origin
		}
		return leftovers[i].seq < leftovers[j].seq
	})
	s.assign(ch, leftovers)
	s.deliverInOrder(ch)
}
