package group

import (
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
)

// GMSConfig configures the group membership / view synchrony layer.
type GMSConfig struct {
	// Self is this node's identifier.
	Self appia.NodeID
	// InitialMembers is the bootstrap membership (view 1). Every founding
	// member must be configured with the same list.
	InitialMembers []appia.NodeID
	// EnableFD turns on heartbeating and failure detection. Data channels
	// whose membership is slaved to the control channel run with it off;
	// the control channel runs with it on.
	EnableFD bool
	// HeartbeatInterval is the beacon period (default 50ms).
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence threshold after which a member is
	// suspected (default 4 heartbeat intervals).
	SuspectAfter time.Duration
	// FlushRetry is the re-propose period while a flush has not converged
	// (default 30ms).
	FlushRetry time.Duration
	// JoinRetry is the re-request period while a JoinVia admission is
	// outstanding (default 200ms). The join request and its state-transfer
	// answer are both unreliable point-to-point sends — the joiner sits
	// outside the group's repair path until a view admits it — so the
	// session re-drives the request on this period.
	JoinRetry time.Duration
	// OnView, when set, is called (on the scheduler goroutine) after each
	// view installation. Used by Core and by tests.
	OnView func(v View)
	// Clock supplies the failure detector's notion of "now" (last-seen
	// stamps and suspicion arithmetic). Nil means wall clock; under a
	// virtual clock the whole detector becomes deterministic. The tick
	// timers themselves are armed on the channel's scheduler, which has its
	// own clock — configure both from the same source.
	Clock clock.Clock
}

func (c *GMSConfig) hbInterval() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return 50 * time.Millisecond
	}
	return c.HeartbeatInterval
}

func (c *GMSConfig) suspectAfter() time.Duration {
	if c.SuspectAfter <= 0 {
		return 4 * c.hbInterval()
	}
	return c.SuspectAfter
}

func (c *GMSConfig) flushRetry() time.Duration {
	if c.FlushRetry <= 0 {
		return 30 * time.Millisecond
	}
	return c.FlushRetry
}

func (c *GMSConfig) joinRetry() time.Duration {
	if c.JoinRetry <= 0 {
		return 200 * time.Millisecond
	}
	return c.JoinRetry
}

// GMSLayer provides group membership with view synchrony. The member with
// the lowest identifier coordinates: it detects failures (when EnableFD),
// admits joiners, and drives the flush protocol that guarantees all
// surviving members deliver the same set of messages before a new view is
// installed. Core reuses the same machinery, via TriggerFlush with Hold, to
// reach the quiescent state required for reconfiguration (paper §3.3).
type GMSLayer struct {
	appia.BaseLayer
	cfg GMSConfig
}

// NewGMSLayer returns a membership layer.
func NewGMSLayer(cfg GMSConfig) *GMSLayer {
	cfg.InitialMembers = NormalizeMembers(append([]appia.NodeID(nil), cfg.InitialMembers...))
	return &GMSLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "group.gms",
			LayerSpec: appia.LayerSpec{
				Accepts: []appia.EventType{
					appia.T[*CastEvent](), // all reliable casts pass here
					appia.T[*Heartbeat](),
					appia.T[*FlushReport](),
					appia.T[*JoinReq](),
					appia.T[*StateTransfer](),
					appia.T[*TriggerFlush](),
					appia.T[*JoinVia](),
					appia.T[*VectorQuery](),
					appia.T[*hbTick](),
					appia.T[*fdTick](),
					appia.T[*flushRetryTick](),
					appia.T[*joinRetryTick](),
					appia.T[*appia.ChannelInit](),
				},
				Provides: []appia.EventType{
					appia.T[*ViewInstall](),
					appia.T[*BlockOk](),
					appia.T[*Quiescent](),
					appia.T[*Propose](),
					appia.T[*Install](),
					appia.T[*Heartbeat](),
					appia.T[*FlushReport](),
					appia.T[*VectorQuery](),
				},
				Requires: []appia.EventType{appia.T[*CastEvent]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *GMSLayer) NewSession() appia.Session {
	return &gmsSession{
		cfg:      l.cfg,
		clk:      clock.Or(l.cfg.Clock),
		lastSeen: make(map[appia.NodeID]time.Time),
	}
}

// gmsPhase is the session's protocol phase.
type gmsPhase int

const (
	phaseNormal gmsPhase = iota + 1
	phaseFlushing
)

type gmsSession struct {
	cfg GMSConfig
	clk clock.Clock

	view     View
	phase    gmsPhase
	blocked  bool
	pending  []appia.Event // app casts buffered while blocked
	lastSeen map[appia.NodeID]time.Time

	// Flush coordination state (coordinator only).
	proposed    View
	curRound    uint64
	hold        bool
	reports     map[appia.NodeID]DeliveredVector
	retryCancel func()

	// Member-side flush state.
	memberProposed View
	memberHold     bool

	// Late-join state (joiner side): the seed a JoinVia is being driven
	// through (NoNode when no join is outstanding) and its retry timer.
	joinSeed        appia.NodeID
	joinRetryCancel func()

	// pendingTrigger queues one non-holding TriggerFlush that arrived while
	// a flush was already running (a leave announcement racing a failure
	// flush, say): it replays after the in-progress view commits instead of
	// being dropped. Holding triggers keep the historical drop — Core
	// re-drives reconfiguration itself.
	pendingTrigger *TriggerFlush

	// stopped marks the session past ChannelClose: late casts (posted in
	// the Insert/Close race window, dispatched after teardown) must NOT
	// enter the pending buffer — the stack manager has already harvested
	// it (Pending), so a late pend would be silently lost AND leak its
	// send-window credit. Forwarding them down instead lets the reliable
	// layer's closed-channel path return the credit.
	stopped bool

	joiners []appia.NodeID

	stopHB func()
	stopFD func()
}

var _ appia.Session = (*gmsSession)(nil)

// Handle implements appia.Session.
func (s *gmsSession) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		s.onInit(ch)
		ch.Forward(ev)
	case *appia.ChannelClose:
		s.onClose()
		ch.Forward(ev)
	case *Propose:
		s.onPropose(ch, e)
	case *Install:
		s.onInstall(ch, e)
	case *Heartbeat:
		s.onHeartbeat(ch, e)
	case *FlushReport:
		s.onFlushReport(ch, e)
	case *JoinReq:
		s.onJoinReq(ch, e)
	case *StateTransfer:
		s.onStateTransfer(ch, e)
	case *TriggerFlush:
		s.onTriggerFlush(ch, e)
	case *JoinVia:
		s.onJoinVia(ch, e)
	case *joinRetryTick:
		s.onJoinRetry(ch)
	case *VectorQuery:
		// Bounced back from the reliable layer mid-flush.
		s.onVector(ch, e)
	case *hbTick:
		s.beat(ch)
	case *fdTick:
		s.checkFailures(ch)
	case *flushRetryTick:
		s.onFlushRetry(ch, e)
	default:
		s.onOther(ch, ev)
	}
}

// onOther handles the catch-all: data casts and unknown events.
func (s *gmsSession) onOther(ch *appia.Channel, ev appia.Event) {
	if c, ok := ev.(Caster); ok {
		cb := c.CastBase()
		if cb.Dir() == appia.Down {
			if s.blocked && !s.stopped {
				s.pending = append(s.pending, ev)
				return
			}
		}
	}
	ch.Forward(ev)
}

// onInit installs the bootstrap view and arms timers.
func (s *gmsSession) onInit(ch *appia.Channel) {
	s.phase = phaseNormal
	s.view = View{ID: 1, Members: s.cfg.InitialMembers}
	now := s.clk.Now()
	for _, m := range s.view.Members {
		s.lastSeen[m] = now
	}
	s.announceView(ch)
	if s.cfg.EnableFD {
		sess := appia.Session(s)
		s.stopHB = ch.DeliverEvery(s.cfg.hbInterval(), sess, func() appia.Event { return &hbTick{} })
		s.stopFD = ch.DeliverEvery(s.cfg.hbInterval(), sess, func() appia.Event { return &fdTick{} })
	}
}

func (s *gmsSession) onClose() {
	s.stopped = true
	if s.stopHB != nil {
		s.stopHB()
	}
	if s.stopFD != nil {
		s.stopFD()
	}
	if s.retryCancel != nil {
		s.retryCancel()
	}
	if s.joinRetryCancel != nil {
		s.joinRetryCancel()
	}
}

// announceView emits ViewInstall both up (application, ordering layers) and
// down (reliable layer, best-effort bottoms) and invokes the callback.
func (s *gmsSession) announceView(ch *appia.Channel) {
	sess := appia.Session(s)
	up := &ViewInstall{View: s.view.Clone()}
	down := &ViewInstall{View: s.view.Clone()}
	_ = ch.SendFrom(sess, up, appia.Up)
	_ = ch.SendFrom(sess, down, appia.Down)
	if s.cfg.OnView != nil {
		s.cfg.OnView(s.view.Clone())
	}
}

// beat multicasts a heartbeat.
func (s *gmsSession) beat(ch *appia.Channel) {
	hb := &Heartbeat{ViewID: s.view.ID}
	hb.Class = appia.ClassControl
	hb.EnsureMsg().PushUvarint(hb.ViewID)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, hb, appia.Down)
}

// onHeartbeat refreshes the failure detector.
func (s *gmsSession) onHeartbeat(ch *appia.Channel, e *Heartbeat) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	if _, err := e.EnsureMsg().PopUvarint(); err != nil {
		return
	}
	s.lastSeen[e.Source] = s.clk.Now()
}

// checkFailures runs at the coordinator (or at the member that becomes
// coordinator when the current one is dead) and starts a flush when the
// membership must change.
func (s *gmsSession) checkFailures(ch *appia.Channel) {
	if s.phase != phaseNormal && s.phase != phaseFlushing {
		return
	}
	now := s.clk.Now()
	var alive, dead []appia.NodeID
	for _, m := range s.view.Members {
		if m == s.cfg.Self {
			alive = append(alive, m)
			continue
		}
		if now.Sub(s.lastSeen[m]) > s.cfg.suspectAfter() {
			dead = append(dead, m)
		} else {
			alive = append(alive, m)
		}
	}
	// Am I the lowest live member? Only the acting coordinator drives
	// view changes.
	if len(alive) == 0 || alive[0] != s.cfg.Self {
		return
	}
	if len(dead) == 0 && len(s.joiners) == 0 {
		return
	}
	if s.phase == phaseFlushing {
		// A flush is already running; membership changes fold into the
		// next round via restartFlush.
		s.restartFlush(ch, alive)
		return
	}
	next := append(append([]appia.NodeID(nil), alive...), s.joiners...)
	s.startFlush(ch, NormalizeMembers(next), false)
}

// onTriggerFlush starts a reconfiguration flush if we coordinate. Core
// triggers on every node; exactly one acts.
func (s *gmsSession) onTriggerFlush(ch *appia.Channel, e *TriggerFlush) {
	target := s.view.Clone().Members
	actor := s.view.Coordinator()
	if len(e.Members) > 0 {
		// Scoped flush: propose exactly the supplied (live) membership;
		// the lowest supplied member that belongs to the current view
		// coordinates in place of a possibly-dead view coordinator.
		target = NormalizeMembers(append([]appia.NodeID(nil), e.Members...))
		actor = appia.NoNode
		for _, m := range target {
			if s.view.Contains(m) {
				actor = m
				break
			}
		}
	}
	if s.phase == phaseFlushing {
		if !e.Hold {
			// A membership trigger (leave announcement) racing an already
			// running flush must not vanish: replay it once the in-progress
			// view commits, on every member so the re-election then picks
			// whoever actually survived. Holding triggers keep the
			// historical drop — Core re-drives reconfiguration on its own
			// schedule.
			s.pendingTrigger = e
		}
		return
	}
	if actor != s.cfg.Self {
		return
	}
	s.startFlush(ch, target, e.Hold)
}

// startFlush begins coordinating a new view.
func (s *gmsSession) startFlush(ch *appia.Channel, members []appia.NodeID, hold bool) {
	s.phase = phaseFlushing
	s.proposed = View{ID: s.view.ID + 1, Members: members}
	s.hold = hold
	s.reports = make(map[appia.NodeID]DeliveredVector)
	s.joiners = nil
	s.sendPropose(ch)
	s.armFlushRetry(ch)
}

// restartFlush narrows an in-progress flush after further failures.
func (s *gmsSession) restartFlush(ch *appia.Channel, alive []appia.NodeID) {
	if s.reports == nil {
		return // we are not the flush coordinator
	}
	members := make([]appia.NodeID, 0, len(alive))
	for _, m := range s.proposed.Members {
		for _, a := range alive {
			if m == a {
				members = append(members, m)
				break
			}
		}
	}
	if len(members) == len(s.proposed.Members) {
		return // nothing changed
	}
	s.proposed.Members = members
	s.sendPropose(ch) // opens a new round, voiding collected reports
}

// sendPropose multicasts the current proposal (reliably). Every send —
// initial, narrowed restart, or convergence retry — gets a fresh round
// number, echoed back in the members' FlushReports so the coordinator only
// ever compares vectors snapshot at the same proposal round. Each Propose
// is itself a reliable cast that bumps the coordinator's own delivered
// vector, so comparing reports across rounds can chase that moving target
// forever: a transient latency skew once phase-shifted the coordinator's
// report one round ahead of its peers', and each mismatch then discarded
// the freshest report and re-proposed, sustaining the skew as a livelock
// (chaos seed 278).
func (s *gmsSession) sendPropose(ch *appia.Channel) {
	s.curRound++
	if s.reports != nil {
		// A new round voids any reports collected for the previous one:
		// a leftover stale report would otherwise sit in the set until
		// the next comparison and fail it against the fresh vectors —
		// and since each retry re-creates the same skew, fail every
		// following comparison too. Clear before the propose goes out:
		// our own report arrives via immediate self-delivery.
		s.reports = make(map[appia.NodeID]DeliveredVector)
	}
	p := &Propose{Proposed: s.proposed.Clone(), Hold: s.hold, Round: s.curRound}
	p.Class = appia.ClassControl
	m := p.EnsureMsg()
	m.PushUvarint(p.Round)
	m.PushBool(p.Hold)
	pushView(m, p.Proposed)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, p, appia.Down)
}

// armFlushRetry schedules convergence retries.
func (s *gmsSession) armFlushRetry(ch *appia.Channel) {
	if s.retryCancel != nil {
		s.retryCancel()
	}
	sess := appia.Session(s)
	s.retryCancel = ch.DeliverAfter(s.cfg.flushRetry(), sess, &flushRetryTick{viewID: s.proposed.ID})
}

// onFlushRetry re-proposes if the flush still has not converged.
func (s *gmsSession) onFlushRetry(ch *appia.Channel, e *flushRetryTick) {
	s.retryCancel = nil
	if s.phase != phaseFlushing || s.reports == nil || s.proposed.ID != e.viewID {
		return
	}
	s.sendPropose(ch)
	s.armFlushRetry(ch)
}

// onPropose is the member side: block, snapshot the delivered vector, and
// report it to the coordinator.
func (s *gmsSession) onPropose(ch *appia.Channel, e *Propose) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	v, err := popView(m)
	if err != nil {
		return
	}
	hold, err := m.PopBool()
	if err != nil {
		return
	}
	round, err := m.PopUvarint()
	if err != nil {
		return
	}
	e.Proposed, e.Hold, e.Round = v, hold, round
	if v.ID <= s.view.ID {
		return // stale proposal from a superseded view change
	}
	s.phase = phaseFlushing
	s.memberProposed = v
	s.memberHold = hold
	if !s.blocked {
		s.blocked = true
		sess := appia.Session(s)
		_ = ch.SendFrom(sess, &BlockOk{ViewID: v.ID}, appia.Up)
	}
	// Snapshot the reliable layer's delivered vector; the answer bounces
	// back as an upward VectorQuery carrying this proposal round.
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, &VectorQuery{Round: round}, appia.Down)
}

// onVector completes the member-side report.
func (s *gmsSession) onVector(ch *appia.Channel, e *VectorQuery) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	if s.phase != phaseFlushing {
		return
	}
	fr := &FlushReport{ViewID: s.memberProposed.ID, Vector: e.Vector, Round: e.Round}
	fr.Dest = s.memberProposed.Coordinator()
	fr.Class = appia.ClassControl
	m := fr.EnsureMsg()
	m.PushUvarint(fr.Round)
	fr.Vector.push(m)
	m.PushUvarint(fr.ViewID)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, fr, appia.Down)
}

// onFlushReport gathers vectors at the coordinator and installs the view
// once they all agree.
func (s *gmsSession) onFlushReport(ch *appia.Channel, e *FlushReport) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	if s.phase != phaseFlushing || s.reports == nil {
		return
	}
	m := e.EnsureMsg()
	id, err := m.PopUvarint()
	if err != nil {
		return
	}
	vec, err := popVector(m)
	if err != nil {
		return
	}
	round, err := m.PopUvarint()
	if err != nil {
		return
	}
	if id != s.proposed.ID {
		return
	}
	if round != s.curRound {
		return // report for a superseded proposal round
	}
	s.reports[e.Source] = vec

	// Only members of the *current* view flush: joiners have no state to
	// reconcile and cannot receive the proposal in the first place.
	var reporters []appia.NodeID
	for _, mbr := range s.proposed.Members {
		if s.view.Contains(mbr) {
			reporters = append(reporters, mbr)
		}
	}
	if len(s.reports) < len(reporters) {
		return
	}
	var ref DeliveredVector
	for _, mbr := range reporters {
		v, ok := s.reports[mbr]
		if !ok {
			return
		}
		if ref == nil {
			ref = v
			continue
		}
		if !ref.Equal(v) {
			// Not converged: clear and wait for the retry tick; the
			// reliable layer's NACKs are filling the gaps meanwhile.
			s.reports = make(map[appia.NodeID]DeliveredVector)
			return
		}
	}
	// Converged: commit.
	inst := &Install{Installed: s.proposed.Clone(), Hold: s.hold}
	inst.Class = appia.ClassControl
	im := inst.EnsureMsg()
	im.PushBool(inst.Hold)
	pushView(im, inst.Installed)
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, inst, appia.Down)

	// Bootstrap joiners that were not part of the old view: they cannot
	// receive the reliable Install, so they get a point-to-point state
	// transfer instead.
	for _, mbr := range s.proposed.Members {
		if s.view.Contains(mbr) || mbr == s.cfg.Self {
			continue
		}
		st := &StateTransfer{}
		st.Dest = mbr
		st.Class = appia.ClassControl
		stm := st.EnsureMsg()
		ref.Clone().push(stm)
		pushView(stm, s.proposed)
		_ = ch.SendFrom(sess, st, appia.Down)
	}
	if s.retryCancel != nil {
		s.retryCancel()
		s.retryCancel = nil
	}
	s.reports = nil
}

// onInstall commits the new view on every member.
func (s *gmsSession) onInstall(ch *appia.Channel, e *Install) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	m := e.EnsureMsg()
	v, err := popView(m)
	if err != nil {
		return
	}
	hold, err := m.PopBool()
	if err != nil {
		return
	}
	e.Installed, e.Hold = v, hold
	if v.ID <= s.view.ID {
		return // duplicate of an already installed view
	}
	s.commitView(ch, v, hold)
}

// onStateTransfer is the joiner's bootstrap path.
func (s *gmsSession) onStateTransfer(ch *appia.Channel, e *StateTransfer) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	// Headers were already popped by the reliable layer below, which
	// filled the struct fields.
	if e.NewView.ID <= s.view.ID {
		return
	}
	s.commitView(ch, e.NewView, false)
}

// commitView finalises a view change.
func (s *gmsSession) commitView(ch *appia.Channel, v View, hold bool) {
	s.view = v
	s.phase = phaseNormal
	s.memberProposed = View{}
	now := s.clk.Now()
	for _, mbr := range v.Members {
		s.lastSeen[mbr] = now
	}
	for seen := range s.lastSeen {
		if !v.Contains(seen) {
			delete(s.lastSeen, seen)
		}
	}
	if s.joinSeed != appia.NoNode && v.Contains(s.cfg.Self) && v.Contains(s.joinSeed) {
		// The JoinVia admission landed: stop re-requesting.
		s.joinSeed = appia.NoNode
		if s.joinRetryCancel != nil {
			s.joinRetryCancel()
			s.joinRetryCancel = nil
		}
	}
	s.announceView(ch)
	if hold {
		// Reconfiguration quiescence: stay blocked; Core tears the
		// channel down and rebuilds it, so buffered sends are surfaced to
		// the stack manager via the Quiescent event. A queued membership
		// trigger dies with the epoch: the rebuild bootstraps from Core's
		// already-updated member list.
		s.pendingTrigger = nil
		sess := appia.Session(s)
		q := &Quiescent{View: v.Clone()}
		_ = ch.SendFrom(sess, q, appia.Up)
		return
	}
	s.blocked = false
	pend := s.pending
	s.pending = nil
	for _, ev := range pend {
		// Re-enter the normal downward path.
		s.onOther(ch, ev)
	}
	if !s.cfg.EnableFD && len(s.joiners) > 0 && s.view.Coordinator() == s.cfg.Self &&
		s.phase == phaseNormal {
		// FD-less coordinators have no fdTick to fold in joiners whose
		// requests arrived mid-flush: admit them now.
		next := append(s.view.Clone().Members, s.joiners...)
		s.startFlush(ch, NormalizeMembers(next), false)
		return
	}
	if t := s.pendingTrigger; t != nil {
		s.pendingTrigger = nil
		s.onTriggerFlush(ch, t)
	}
}

// onJoinReq admits a joiner (coordinator) or forwards the request there.
func (s *gmsSession) onJoinReq(ch *appia.Channel, e *JoinReq) {
	if e.Dir() == appia.Down {
		ch.Forward(e)
		return
	}
	if s.view.Coordinator() != s.cfg.Self {
		fwd := &JoinReq{}
		fwd.Dest = s.view.Coordinator()
		fwd.Class = appia.ClassControl
		fwd.EnsureMsg().PushUvarint(uint64(uint32(e.Source)))
		sess := appia.Session(s)
		_ = ch.SendFrom(sess, fwd, appia.Down)
		return
	}
	joiner := e.Source
	// A relayed JoinReq carries the true joiner in a header.
	if jm := e.Msg; jm != nil && jm.Len() > 0 {
		if u, err := jm.PopUvarint(); err == nil {
			joiner = appia.NodeID(uint32(u))
		}
	}
	if s.view.Contains(joiner) {
		return
	}
	known := false
	for _, j := range s.joiners {
		if j == joiner {
			known = true
			break
		}
	}
	if !known {
		s.joiners = append(s.joiners, joiner)
	}
	// The flush check runs for re-requests too (not only first sightings):
	// a request recorded mid-flush used to strand its joiner forever on
	// FD-less channels — the dedup returned early on every retry, and no
	// fdTick ever re-examined the joiner list.
	if !s.cfg.EnableFD && s.phase == phaseNormal {
		// Without an FD tick, admit immediately.
		next := append(s.view.Clone().Members, s.joiners...)
		s.startFlush(ch, NormalizeMembers(next), false)
	}
}

// Pending returns buffered events surrendered at teardown (StackManager
// re-submits them on the replacement channel). Must be called on the
// scheduler goroutine.
func (s *gmsSession) Pending() []appia.Event {
	p := s.pending
	s.pending = nil
	return p
}

// CurrentView returns the session's view (scheduler goroutine only).
func (s *gmsSession) CurrentView() View { return s.view.Clone() }

// RequestJoin emits a join request towards a seed member. Called via
// scheduler.Do by the joining node's stack manager.
func (s *gmsSession) RequestJoin(ch *appia.Channel, seed appia.NodeID) {
	jr := &JoinReq{}
	jr.Dest = seed
	jr.Class = appia.ClassControl
	sess := appia.Session(s)
	_ = ch.SendFrom(sess, jr, appia.Down)
}

// onJoinVia drives a late join through the seed: request now, then keep
// retrying until a view admits us alongside it (commitView clears the
// state). Injected by the facade on a singleton-bootstrapped channel.
func (s *gmsSession) onJoinVia(ch *appia.Channel, e *JoinVia) {
	if e.Seed == appia.NoNode || e.Seed == s.cfg.Self {
		return
	}
	if s.view.Contains(s.cfg.Self) && s.view.Contains(e.Seed) {
		return // already in a view with the seed
	}
	s.joinSeed = e.Seed
	s.RequestJoin(ch, e.Seed)
	s.armJoinRetry(ch)
}

// armJoinRetry (re-)schedules the join re-request timer.
func (s *gmsSession) armJoinRetry(ch *appia.Channel) {
	if s.joinRetryCancel != nil {
		s.joinRetryCancel()
	}
	sess := appia.Session(s)
	s.joinRetryCancel = ch.DeliverAfter(s.cfg.joinRetry(), sess, &joinRetryTick{})
}

// onJoinRetry re-sends an outstanding join request.
func (s *gmsSession) onJoinRetry(ch *appia.Channel) {
	s.joinRetryCancel = nil
	if s.stopped || s.joinSeed == appia.NoNode {
		return
	}
	if s.view.Contains(s.cfg.Self) && s.view.Contains(s.joinSeed) {
		s.joinSeed = appia.NoNode
		return
	}
	s.RequestJoin(ch, s.joinSeed)
	s.armJoinRetry(ch)
}
