package group

import (
	"testing"
	"time"

	"morpheus/internal/appia"
)

// TestDebugRemoteDelivery traces the wire path of one cast between two
// members, dumping vnet counters when it fails.
func TestDebugRemoteDelivery(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{})
	nodes[0].cast(t, "probe")
	nodes[1].cast(t, "probe2")

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[1].deliveredList()) == 2 && len(nodes[2].deliveredList()) == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, tn := range nodes {
		t.Logf("node%d delivered: %v", i+1, tn.deliveredList())
	}
	c0 := nodes[0].node.Counters()
	c1 := nodes[1].node.Counters()
	t.Logf("node1 tx=%v rx=%v", c0.Tx, c0.Rx)
	t.Logf("node2 tx=%v rx=%v", c1.Tx, c1.Rx)
	nodes[1].mu.Lock()
	for _, ev := range nodes[1].events {
		t.Logf("node2 top delivery: %T dir=%v", ev, ev.(interface{ Dir() appia.Direction }).Dir())
	}
	nodes[1].mu.Unlock()
	t.Fatal("probe never delivered at node 2")
}

// TestDebugLossRecovery inspects the nak session state when recovery under
// loss stalls.
func TestDebugLossRecovery(t *testing.T) {
	nodes := buildCluster(t, 3, stackOpts{loss: 0.25, seed: 7})
	const k = 40
	for i := 0; i < k; i++ {
		nodes[0].cast(t, "x")
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, tn := range nodes {
			if len(tn.deliveredList()) != k {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, tn := range nodes {
		t.Logf("node%d delivered=%d", i+1, len(tn.deliveredList()))
		sess := tn.ch.SessionFor("group.nak").(*nakSession)
		done := make(chan struct{})
		if err := tn.sched.Do(func() {
			defer close(done)
			t.Logf("  nextSeq=%d sent=%d", sess.nextSeq, len(sess.sent))
			for o, st := range sess.recv {
				t.Logf("  origin %d: next=%d known=%d buffered=%d armed=%v tries=%d",
					o, st.next, st.known, len(st.buffer), st.nackArmed, st.nackTries)
			}
		}); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	t.Fatal("recovery stalled")
}
