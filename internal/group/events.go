// Package group implements the reliable group communication protocol suite
// the Morpheus prototype builds on (paper §3.1): best-effort multicast
// bottoms (point-to-point fan-out; native multicast lives in the transport
// package; Mecho and epidemic variants in their own packages), a NACK-based
// reliable FIFO multicast with stability tracking, a membership service
// with failure detection and view-synchronous flush, and causal and total
// ordering layers.
//
// Layer stack (bottom to top) of a typical data channel:
//
//	transport.ptp → group.fanout (or mecho/…) → group.nak → group.gms → [group.causal] → [group.total]
package group

import (
	"fmt"
	"sort"

	"morpheus/internal/appia"
)

// View is an agreed membership epoch.
type View struct {
	ID      uint64
	Members []appia.NodeID // sorted ascending
}

// Coordinator returns the deterministically elected coordinator: the member
// with the lowest identifier, as in the paper's Core sub-system (§3.3).
func (v View) Coordinator() appia.NodeID {
	if len(v.Members) == 0 {
		return appia.NoNode
	}
	return v.Members[0]
}

// Contains reports membership of id.
func (v View) Contains(id appia.NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (v View) Clone() View {
	cp := View{ID: v.ID, Members: make([]appia.NodeID, len(v.Members))}
	copy(cp.Members, v.Members)
	return cp
}

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("view#%d%v", v.ID, v.Members)
}

// NormalizeMembers sorts and deduplicates a member list in place and
// returns it.
func NormalizeMembers(ms []appia.NodeID) []appia.NodeID {
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	out := ms[:0]
	var last appia.NodeID = -1
	for _, m := range ms {
		if m != last {
			out = append(out, m)
			last = m
		}
	}
	return out
}

// pushView / popView encode a view into a message header stack.
func pushView(m *appia.Message, v View) {
	ids := make([]uint64, len(v.Members))
	for i, n := range v.Members {
		ids[i] = uint64(uint32(n))
	}
	m.PushUvarintSlice(ids)
	m.PushUvarint(v.ID)
}

func popView(m *appia.Message) (View, error) {
	id, err := m.PopUvarint()
	if err != nil {
		return View{}, err
	}
	ids, err := m.PopUvarintSlice()
	if err != nil {
		return View{}, err
	}
	v := View{ID: id, Members: make([]appia.NodeID, len(ids))}
	for i, u := range ids {
		v.Members[i] = appia.NodeID(uint32(u))
	}
	return v, nil
}

// DeliveredVector maps each origin to the highest contiguously delivered
// sequence number from it. It is the unit of agreement of the flush
// protocol: a view may be installed only when every surviving member
// reports the same vector.
type DeliveredVector map[appia.NodeID]uint64

// Clone returns a deep copy.
func (dv DeliveredVector) Clone() DeliveredVector {
	cp := make(DeliveredVector, len(dv))
	for k, v := range dv {
		cp[k] = v
	}
	return cp
}

// SortedOrigins returns the vector's origins in ascending order, for
// callers whose iteration has side effects (timer arming, sends) and must
// therefore be deterministic.
func (dv DeliveredVector) SortedOrigins() []appia.NodeID {
	keys := make([]appia.NodeID, 0, len(dv))
	for k := range dv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Equal reports whether two vectors are identical (absent keys equal zero).
func (dv DeliveredVector) Equal(other DeliveredVector) bool {
	for k, v := range dv {
		if other[k] != v {
			return false
		}
	}
	for k, v := range other {
		if dv[k] != v {
			return false
		}
	}
	return true
}

// push / pop encode the vector as a flattened (origin, seq) pair list.
func (dv DeliveredVector) push(m *appia.Message) {
	flat := make([]uint64, 0, len(dv)*2)
	// Deterministic encoding order.
	keys := make([]appia.NodeID, 0, len(dv))
	for k := range dv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		flat = append(flat, uint64(uint32(k)), dv[k])
	}
	m.PushUvarintSlice(flat)
}

func popVector(m *appia.Message) (DeliveredVector, error) {
	flat, err := m.PopUvarintSlice()
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("group: odd vector encoding length %d", len(flat))
	}
	dv := make(DeliveredVector, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		dv[appia.NodeID(uint32(flat[i]))] = flat[i+1]
	}
	return dv, nil
}

// --- Wire events -----------------------------------------------------------

// CastEvent is a group data multicast. Events that embed CastEvent inherit
// the reliability, FIFO and ordering guarantees of the layers that accept
// it; the GMS control events below exploit this.
//
// Origin and Seq are local metadata filled in by the reliable layer on
// delivery (the wire carries them as message headers). Group is local
// metadata too: on a node hosting several groups, the delivering stack
// stamps the event with the name of the group it belongs to, so
// applications (and the multi-group isolation tests) can assert that
// traffic never crossed group boundaries. It never travels on the wire —
// group isolation is structural (per-group port namespaces and sequence
// spaces), the tag only makes it observable.
type CastEvent struct {
	appia.SendableEvent
	Origin appia.NodeID
	Seq    uint64
	Group  string
	// Windowed is local metadata (never on the wire, not copied by
	// CloneSendable): the stack manager sets it on application casts that
	// hold a send-window credit, and the reliable layer releases that
	// credit back once stability gossip confirms every peer delivered the
	// cast (or at channel teardown, when the flush has equalised
	// deliveries). Control casts and unwindowed configurations leave it
	// false.
	Windowed bool
	// WindowBytes is the byte-window cost this cast holds (local metadata,
	// like Windowed): the stack manager charges it against the group's
	// byte-denominated send window on submission, and the reliable layer
	// releases exactly this many byte credits on the same stability
	// watermark that returns the message credit. Zero when byte windowing
	// is disabled.
	WindowBytes int
}

// CastBase implements Caster.
func (c *CastEvent) CastBase() *CastEvent { return c }

// Caster is implemented by every event embedding CastEvent; layers use it
// to reach the shared cast metadata regardless of the concrete type.
type Caster interface {
	appia.Sendable
	CastBase() *CastEvent
}

var _ Caster = (*CastEvent)(nil)

// Heartbeat is the unreliable failure-detector beacon. It embeds
// SendableEvent directly, bypassing the reliable layer.
type Heartbeat struct {
	appia.SendableEvent
	// ViewID travels as a header.
	ViewID uint64
}

// Propose starts (or retries) a flush round for a new view. Reliable
// (embeds CastEvent). Headers: hold flag, proposed view.
type Propose struct {
	CastEvent
	Proposed View
	Hold     bool
	// Round numbers the coordinator's proposal sends (initial, restarts,
	// retries) so FlushReports are only compared within one round.
	Round uint64
}

// FlushReport carries a member's delivered vector to the flush coordinator,
// point-to-point and unreliable (the coordinator retries the Propose until
// reports converge). Headers: view id, vector.
type FlushReport struct {
	appia.SendableEvent
	ViewID uint64
	Vector DeliveredVector
	// Round echoes the Propose round this vector was snapshot for.
	Round uint64
}

// Install commits a proposed view. Reliable (embeds CastEvent).
type Install struct {
	CastEvent
	Installed View
	Hold      bool
}

// JoinReq asks the coordinator to admit the source node into the group.
type JoinReq struct {
	appia.SendableEvent
}

// StateTransfer bootstraps a joiner: the current view plus the sequence
// vector it should start expecting from. Point-to-point.
type StateTransfer struct {
	appia.SendableEvent
	NewView View
	Vector  DeliveredVector
}

// Nack requests retransmission of origin's sequence range [From, To],
// point-to-point to the origin.
type Nack struct {
	appia.SendableEvent
	Origin   appia.NodeID
	From, To uint64
}

// Stable disseminates a member's delivered vector for garbage collection
// of retransmission buffers.
type Stable struct {
	appia.SendableEvent
	Vector DeliveredVector
}

// OrderEv carries sequencer ordering decisions: a batch of
// (origin, seq, global seq) triples. Reliable (embeds CastEvent).
type OrderEv struct {
	CastEvent
	Orders []OrderEntry
}

// OrderEntry maps one cast to its global sequence number.
type OrderEntry struct {
	Origin appia.NodeID
	Seq    uint64
	Gseq   uint64
}

// --- Local (non-wire) events ------------------------------------------------

// ViewInstall announces an installed view to the rest of the stack. The GMS
// emits one copy upward (for the application and ordering layers) and one
// downward (so the best-effort bottoms and the reliable layer track
// membership).
type ViewInstall struct {
	appia.EventBase
	View View
}

// BlockOk is emitted upward when the GMS blocks the channel at the start of
// a flush; applications may use it to pause optimistic sending. Sends
// issued while blocked are buffered and released at install time.
type BlockOk struct {
	appia.EventBase
	ViewID uint64
}

// Quiescent is emitted upward after a flush that was triggered with
// Hold: the channel is drained, every surviving member has delivered the
// same messages, and no new traffic will flow until the channel is rebuilt
// (this is the reconfiguration window of paper §3.3).
type Quiescent struct {
	appia.EventBase
	View View
}

// TriggerFlush asks the GMS to run a view change now. Core injects it to
// reach quiescence before reconfiguring; Hold keeps the channel blocked
// after the flush completes.
//
// Members, when non-empty, scopes the flush to that set (typically the
// control group's live membership): the lowest listed member that is also
// in the current data view coordinates, and only listed members must
// report. This is how a reconfiguration makes progress even when the data
// channel's own coordinator has crashed — the data channel may run without
// a failure detector precisely because Core supplies this liveness
// knowledge.
type TriggerFlush struct {
	appia.EventBase
	Hold    bool
	Members []appia.NodeID
}

// JoinVia asks the GMS to enter a *running* group through one seed
// member: the facade injects it on a late joiner's channel (bootstrapped
// as a singleton view) and the session keeps re-sending the JoinReq until
// a view containing both itself and the seed installs — the request, the
// flush it folds into, or the state-transfer answer can all be lost while
// the joiner still sits outside the reliable repair path.
type JoinVia struct {
	appia.EventBase
	Seed appia.NodeID
}

// VectorQuery is bounced off the reliable layer to snapshot its delivered
// vector.
type VectorQuery struct {
	appia.EventBase
	Vector DeliveredVector
	// Round is the proposal round this snapshot answers. It rides in the
	// event so the FlushReport's round is bound when the query is issued:
	// stamping the report from session state at bounce time instead let a
	// backlogged member (draining several repaired Proposes in one
	// cascade) attach a fresh round to a stale vector, which then poisons
	// the coordinator's same-round comparison every retry.
	Round uint64
}

// nackTimeout is the reliable layer's private retransmission timer event.
type nackTimeout struct {
	appia.EventBase
	origin appia.NodeID
}

// stableTick is the reliable layer's private stability gossip timer.
type stableTick struct {
	appia.EventBase
}

// hbTick and fdTick are the GMS's private timers.
type hbTick struct {
	appia.EventBase
}

type fdTick struct {
	appia.EventBase
}

// flushRetryTick re-drives an unconverged flush round.
type flushRetryTick struct {
	appia.EventBase
	viewID uint64
}

// joinRetryTick re-drives an unanswered join request.
type joinRetryTick struct {
	appia.EventBase
}

// RegisterWireEvents registers the suite's wire event kinds in the given
// registry (nil means the process-wide default). Idempotent.
func RegisterWireEvents(reg *appia.EventKindRegistry) {
	if reg == nil {
		reg = appia.DefaultRegistry()
	}
	reg.Register("group.cast", func() appia.Sendable { return &CastEvent{} })
	reg.Register("group.hb", func() appia.Sendable { return &Heartbeat{} })
	reg.Register("group.propose", func() appia.Sendable { return &Propose{} })
	reg.Register("group.flushreport", func() appia.Sendable { return &FlushReport{} })
	reg.Register("group.install", func() appia.Sendable { return &Install{} })
	reg.Register("group.joinreq", func() appia.Sendable { return &JoinReq{} })
	reg.Register("group.statetransfer", func() appia.Sendable { return &StateTransfer{} })
	reg.Register("group.nack", func() appia.Sendable { return &Nack{} })
	reg.Register("group.stable", func() appia.Sendable { return &Stable{} })
	reg.Register("group.order", func() appia.Sendable { return &OrderEv{} })
}
