// Package netio defines the network-substrate abstraction the Morpheus
// protocol layers run on. The paper evaluates Morpheus on a real hybrid
// fixed-LAN/wireless-PDA testbed; this reproduction began welded to the
// in-memory simulator (internal/vnet). netio is the seam that separates
// the two concerns: protocol layers (transport, group suite, Mecho,
// Cocaditem, Core) speak to an Endpoint — a port-scoped frame interface
// with unicast and native-multicast sends, handler registration, identity
// and traffic accounting — while substrates implement it:
//
//   - internal/vnet: the deterministic simulator (latency, jitter, loss,
//     energy metering) used by the experiment harness;
//   - internal/netio/loopnet: a zero-configuration in-process loopback for
//     tests;
//   - internal/netio/udpnet: real UDP sockets with port-demultiplexed
//     frames and IP-multicast segments, for live multi-process runs.
//
// A substrate's Network value is the endpoint factory; the conformance
// suite (internal/netio/conformancetest) pins the semantics every backend
// must share.
package netio

import (
	"errors"

	"morpheus/internal/appia"
)

// NodeID aliases the kernel's node identifier.
type NodeID = appia.NodeID

// Kind classifies a device, mirroring the paper's fixed/mobile split.
type Kind int

// Device kinds.
const (
	Fixed Kind = iota + 1
	Mobile
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Mobile:
		return "mobile"
	default:
		return "kind?"
	}
}

// Handler receives a payload delivered to an endpoint port. It is invoked
// on a substrate delivery goroutine; implementations must be quick and
// thread-safe (typically they just post into an appia scheduler mailbox).
// The payload slice is borrowed — the sender's scratch buffer or the
// substrate's receive buffer — and is only valid for the duration of the
// call: handlers must not modify it, and handlers that retain it must copy.
type Handler func(src NodeID, port string, payload []byte)

// Substrate-independent error conditions. Backends wrap these with their
// own prefix (e.g. "vnet: unknown node"), so callers match with errors.Is.
var (
	// ErrClosed reports an operation on a closed endpoint or network.
	ErrClosed = errors.New("closed")
	// ErrUnknownNode reports a send to an identifier the substrate cannot
	// resolve to an attachment point.
	ErrUnknownNode = errors.New("unknown node")
	// ErrUnknownSegment reports a reference to an undeclared segment.
	ErrUnknownSegment = errors.New("unknown segment")
	// ErrNotAttached reports a segment operation by a non-member endpoint.
	ErrNotAttached = errors.New("not attached to segment")
	// ErrNoMulticast reports a native multicast on a segment that does not
	// support one-transmission fan-out.
	ErrNoMulticast = errors.New("segment does not support native multicast")
	// ErrFrameTooLarge reports a Send or Multicast whose payload exceeds
	// MaxPayload, the substrate-independent frame budget. Every backend
	// rejects such payloads at the call site (pinned by the conformance
	// suite) instead of failing later at marshal time — or, worse,
	// accepting on one substrate what another would drop.
	ErrFrameTooLarge = errors.New("payload exceeds frame budget")
)

// MaxPayload is the largest payload Send/Multicast accepts on any
// substrate: the 64 KiB UDP datagram ceiling minus generous room for the
// wire header (source, port, class, container framing). Simulated
// substrates enforce the same budget so a protocol stack that works on
// vnet cannot silently exceed what the live wire can carry.
const MaxPayload = 63 << 10

// Endpoint is one node's attachment to a network substrate. All methods
// are safe for concurrent use.
//
// Ports isolate channels and configuration epochs: traffic addressed to an
// unregistered port is silently dropped, which is exactly what happens to
// stale pre-reconfiguration frames. Transmission accounting happens here,
// at the lowest level, so no protocol layer can forget to count its
// traffic — the quantity the paper's Figure 3 measures.
type Endpoint interface {
	// ID returns the node identifier.
	ID() NodeID
	// Kind returns the device class.
	Kind() Kind
	// Handle registers (or, with a nil handler, removes) the receiver for
	// a port.
	Handle(port string, h Handler)
	// Send transmits payload point-to-point to dst's port, accounted under
	// class. Sends to self are delivered locally without accounting (they
	// never touch the NIC). Loss is silent: a nil error only means the
	// frame was handed to the substrate.
	Send(dst NodeID, port, class string, payload []byte) error
	// Multicast performs a native multicast on the named segment: one
	// accounted transmission, delivered to every other attached endpoint.
	Multicast(segment, port, class string, payload []byte) error
	// Counters snapshots the endpoint's traffic, keyed by class.
	Counters() Counters
	// ResetCounters zeroes the traffic counters (between experiment
	// phases).
	ResetCounters()
	// Close detaches the endpoint: reception stops and subsequent sends
	// fail. Close is idempotent and safe to race with sends.
	Close() error
}

// EnergyConfig is the battery model of a mobile node, loosely following
// the session-based broadcast energy models the paper cites ([20]): a
// fixed per-message cost plus a per-byte cost, with reception cheaper than
// transmission. Substrates without an energy model ignore it.
type EnergyConfig struct {
	CapacityJ  float64
	TxPerMsgJ  float64
	TxPerByteJ float64
	RxPerMsgJ  float64
	RxPerByteJ float64
}

// EndpointConfig describes one endpoint attachment.
type EndpointConfig struct {
	// ID is the node identifier; it must be unique within the network.
	ID NodeID
	// Kind is the device class (Fixed or Mobile).
	Kind Kind
	// Segments lists the segments to attach to; the first is the primary
	// segment, whose characteristics govern transmissions on substrates
	// that model them.
	Segments []string
	// Energy, when non-nil, installs a battery model on substrates that
	// meter energy.
	Energy *EnergyConfig
}

// Network creates endpoints on one substrate instance.
type Network interface {
	// Attach creates the endpoint described by cfg.
	Attach(cfg EndpointConfig) (Endpoint, error)
	// Close tears the substrate down, closing every endpoint.
	Close() error
}

// BatteryMeter is implemented by endpoints that meter (or measure) their
// energy budget.
type BatteryMeter interface {
	// BatteryFraction returns the remaining charge as a fraction of
	// capacity.
	BatteryFraction() float64
}

// BatteryFraction reads an endpoint's remaining battery fraction, or 1 for
// endpoints that are not metered (mains-powered, or a substrate without an
// energy model).
func BatteryFraction(ep Endpoint) float64 {
	if m, ok := ep.(BatteryMeter); ok {
		return m.BatteryFraction()
	}
	return 1
}

// LossSource reports an observed loss probability for a named segment —
// the stand-in for the error counters a real NIC driver exposes, feeding
// the link-loss context retriever.
type LossSource interface {
	SegmentLoss(segment string) (float64, error)
}

// Logf is the diagnostic logger shared by the substrate and protocol
// packages. Library code never writes to the process-global logger: a nil
// Logf discards.
type Logf func(format string, args ...any)

// Or returns l, or a no-op logger when l is nil, so callers can invoke it
// unconditionally.
func (l Logf) Or() Logf {
	if l == nil {
		return func(string, ...any) {}
	}
	return l
}
