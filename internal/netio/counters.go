package netio

import "sync/atomic"

// Class is the small traffic-class enum the per-endpoint atomic counters
// are indexed by. Accounting strings map onto it via classOf; anything that
// is not "data" or "control" lands in ClassOther.
type Class uint8

// Traffic classes.
const (
	ClassData Class = iota
	ClassControl
	ClassOther
	numClasses
)

// classOf maps an accounting string to its counter index.
func classOf(class string) Class {
	switch class {
	case "data":
		return ClassData
	case "control":
		return ClassControl
	default:
		return ClassOther
	}
}

// String implements fmt.Stringer; it is also the snapshot map key.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassControl:
		return "control"
	default:
		return "other"
	}
}

// ClassCount accumulates message and byte counts for one traffic class.
type ClassCount struct {
	Msgs  uint64
	Bytes uint64
}

// Counters is a snapshot of an endpoint's traffic, keyed by class ("data",
// "control", or "other" for anything else).
//
// Tx/Rx count frames and payload bytes — the protocol-level quantities the
// paper's Figure 3 measures, independent of how the substrate packs them.
// The Wire fields count what actually crossed the substrate boundary:
// datagrams, on-wire bytes (headers included) and syscalls. On a batching
// substrate (udpnet with coalescing) TxDatagrams < Tx frame count and the
// ratio is the packing efficiency; simulated substrates report one
// datagram (and one nominal syscall) per frame so the fields stay
// comparable across backends.
type Counters struct {
	Tx map[string]ClassCount
	Rx map[string]ClassCount
	// TxDatagrams / RxDatagrams count substrate transmission units
	// (datagrams on udpnet, frames elsewhere).
	TxDatagrams, RxDatagrams uint64
	// TxWireBytes / RxWireBytes count on-wire bytes including frame and
	// container headers (payload bytes only, on substrates with no wire
	// encoding).
	TxWireBytes, RxWireBytes uint64
	// TxSyscalls / RxSyscalls count kernel crossings; with vectored I/O
	// one syscall covers many datagrams.
	TxSyscalls, RxSyscalls uint64
}

// TotalTx sums transmitted messages across classes.
func (c Counters) TotalTx() uint64 {
	var n uint64
	for _, cc := range c.Tx {
		n += cc.Msgs
	}
	return n
}

// TotalRx sums received messages across classes.
func (c Counters) TotalRx() uint64 {
	var n uint64
	for _, cc := range c.Rx {
		n += cc.Msgs
	}
	return n
}

// classCounter is one lock-free traffic counter.
type classCounter struct {
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// CounterSet is the lock-free per-endpoint traffic accounting every
// substrate shares: atomic counter arrays indexed by the Class enum. The
// zero value is ready to use.
//
// The counters are independent atomics, so a snapshot (or reset) taken
// while traffic is in flight can be off by the frame being accounted; take
// them at phase boundaries, as the experiments do, for exact values.
type CounterSet struct {
	tx, rx [numClasses]classCounter

	txDatagrams, rxDatagrams atomic.Uint64
	txWireBytes, rxWireBytes atomic.Uint64
	txSyscalls, rxSyscalls   atomic.Uint64
}

// AddTx counts one transmission of size bytes under class.
func (s *CounterSet) AddTx(class string, size int) {
	c := &s.tx[classOf(class)]
	c.msgs.Add(1)
	c.bytes.Add(uint64(size))
}

// AddRx counts one reception of size bytes under class.
func (s *CounterSet) AddRx(class string, size int) {
	c := &s.rx[classOf(class)]
	c.msgs.Add(1)
	c.bytes.Add(uint64(size))
}

// AddTxDatagram counts one transmitted datagram of wireBytes on-wire
// bytes (headers included).
func (s *CounterSet) AddTxDatagram(wireBytes int) {
	s.txDatagrams.Add(1)
	s.txWireBytes.Add(uint64(wireBytes))
}

// AddRxDatagram counts one received datagram of wireBytes on-wire bytes.
func (s *CounterSet) AddRxDatagram(wireBytes int) {
	s.rxDatagrams.Add(1)
	s.rxWireBytes.Add(uint64(wireBytes))
}

// AddTxSyscall counts one send-side kernel crossing (covering any number
// of datagrams under vectored I/O).
func (s *CounterSet) AddTxSyscall() { s.txSyscalls.Add(1) }

// AddRxSyscall counts one receive-side kernel crossing.
func (s *CounterSet) AddRxSyscall() { s.rxSyscalls.Add(1) }

// Snapshot returns the current counts. Classes with no traffic are
// omitted.
func (s *CounterSet) Snapshot() Counters {
	c := Counters{
		Tx:          make(map[string]ClassCount, int(numClasses)),
		Rx:          make(map[string]ClassCount, int(numClasses)),
		TxDatagrams: s.txDatagrams.Load(),
		RxDatagrams: s.rxDatagrams.Load(),
		TxWireBytes: s.txWireBytes.Load(),
		RxWireBytes: s.rxWireBytes.Load(),
		TxSyscalls:  s.txSyscalls.Load(),
		RxSyscalls:  s.rxSyscalls.Load(),
	}
	for cl := Class(0); cl < numClasses; cl++ {
		if m := s.tx[cl].msgs.Load(); m != 0 {
			c.Tx[cl.String()] = ClassCount{Msgs: m, Bytes: s.tx[cl].bytes.Load()}
		}
		if m := s.rx[cl].msgs.Load(); m != 0 {
			c.Rx[cl.String()] = ClassCount{Msgs: m, Bytes: s.rx[cl].bytes.Load()}
		}
	}
	return c
}

// Reset zeroes every counter.
func (s *CounterSet) Reset() {
	for cl := Class(0); cl < numClasses; cl++ {
		s.tx[cl].msgs.Store(0)
		s.tx[cl].bytes.Store(0)
		s.rx[cl].msgs.Store(0)
		s.rx[cl].bytes.Store(0)
	}
	s.txDatagrams.Store(0)
	s.rxDatagrams.Store(0)
	s.txWireBytes.Store(0)
	s.rxWireBytes.Store(0)
	s.txSyscalls.Store(0)
	s.rxSyscalls.Store(0)
}
