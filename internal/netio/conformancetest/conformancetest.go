// Package conformancetest is the executable specification of the netio
// substrate contract. Every backend — the deterministic simulator
// (internal/vnet), the in-process loopback (internal/netio/loopnet) and
// the real-socket substrate (internal/netio/udpnet) — runs the same suite,
// so the protocol layers above can switch substrates without changing
// behaviour: unicast addressing, native multicast fan-out, port isolation
// across reconfiguration epochs, traffic accounting, self-send loopback
// and close semantics are all pinned here.
package conformancetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/netio"
)

// Harness adapts one backend to the suite.
type Harness struct {
	// New builds a fresh network for one subtest. The network must accept
	// Attach for node IDs 1..9 on Segment.
	New func(t *testing.T) netio.Network
	// Segment names a segment every endpoint attaches to.
	Segment string
	// Multicast reports whether Segment supports native multicast in this
	// environment; when false the fan-out subtest is skipped (e.g. a
	// sandbox without multicast routing).
	Multicast bool
	// Synchronous reports that deliveries complete before Send returns;
	// asynchronous backends get a settle window instead.
	Synchronous bool
}

// recorder collects deliveries on one endpoint port.
type recorder struct {
	mu   sync.Mutex
	got  []recorded
	wake chan struct{}
}

type recorded struct {
	src     netio.NodeID
	port    string
	payload string
}

func newRecorder() *recorder {
	return &recorder{wake: make(chan struct{}, 1)}
}

func (r *recorder) handler(src netio.NodeID, port string, payload []byte) {
	r.mu.Lock()
	r.got = append(r.got, recorded{src: src, port: port, payload: string(payload)})
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *recorder) snapshot() []recorded {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recorded(nil), r.got...)
}

// waitCount blocks until the recorder holds at least n deliveries.
func (r *recorder) waitCount(t *testing.T, n int) []recorded {
	t.Helper()
	deadline := time.After(5 * time.Second) //lint:wallclock-ok real-socket substrates need wall timeouts
	for {
		if got := r.snapshot(); len(got) >= n {
			return got
		}
		select {
		case <-r.wake:
		case <-deadline:
			t.Fatalf("timed out waiting for %d deliveries, have %d", n, len(r.snapshot()))
		}
	}
}

// settle gives asynchronous substrates time to deliver (or not deliver)
// in-flight frames before a negative assertion.
func (h Harness) settle() {
	if !h.Synchronous {
		time.Sleep(50 * time.Millisecond) //lint:wallclock-ok settle wait for asynchronous real-socket delivery
	}
}

// attach adds an endpoint on the harness segment.
func attach(t *testing.T, nw netio.Network, h Harness, id netio.NodeID) netio.Endpoint {
	t.Helper()
	ep, err := nw.Attach(netio.EndpointConfig{ID: id, Kind: netio.Fixed, Segments: []string{h.Segment}})
	if err != nil {
		t.Fatalf("attach %d: %v", id, err)
	}
	return ep
}

// Run executes the conformance suite against one backend.
func Run(t *testing.T, h Harness) {
	t.Run("Unicast", func(t *testing.T) { testUnicast(t, h) })
	t.Run("UnknownDestination", func(t *testing.T) { testUnknownDestination(t, h) })
	t.Run("SelfSendLoopback", func(t *testing.T) { testSelfSend(t, h) })
	t.Run("MulticastFanout", func(t *testing.T) { testMulticastFanout(t, h) })
	t.Run("MulticastNotAttached", func(t *testing.T) { testMulticastNotAttached(t, h) })
	t.Run("PortIsolationAcrossEpochs", func(t *testing.T) { testPortIsolation(t, h) })
	t.Run("CrossGroupIsolation", func(t *testing.T) { testCrossGroupIsolation(t, h) })
	t.Run("CountersReset", func(t *testing.T) { testCountersReset(t, h) })
	t.Run("FrameTooLarge", func(t *testing.T) { testFrameTooLarge(t, h) })
	t.Run("OrderedBurst", func(t *testing.T) { testOrderedBurst(t, h) })
	t.Run("WireAccounting", func(t *testing.T) { testWireAccounting(t, h) })
	t.Run("ConcurrentClose", func(t *testing.T) { testConcurrentClose(t, h) })
	t.Run("AttachAfterNetworkClose", func(t *testing.T) { testAttachAfterClose(t, h) })
}

func testAttachAfterClose(t *testing.T, h Harness) {
	nw := h.New(t)
	attach(t, nw, h, 1)
	if err := nw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed, Segments: []string{h.Segment}})
	if !errors.Is(err, netio.ErrClosed) {
		t.Fatalf("attach after network close: err = %v, want netio.ErrClosed", err)
	}
}

func testUnicast(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	if a.ID() != 1 || a.Kind() != netio.Fixed {
		t.Fatalf("identity: ID=%d Kind=%v", a.ID(), a.Kind())
	}
	rec := newRecorder()
	b.Handle("p", rec.handler)
	if err := a.Send(2, "p", "data", []byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	got := rec.waitCount(t, 1)
	if got[0].src != 1 || got[0].port != "p" || got[0].payload != "hello" {
		t.Fatalf("delivered %+v", got[0])
	}
	ac, bc := a.Counters(), b.Counters()
	if ac.Tx["data"].Msgs != 1 || ac.Tx["data"].Bytes != 5 {
		t.Fatalf("sender tx counters = %+v", ac.Tx)
	}
	if bc.Rx["data"].Msgs != 1 || bc.Rx["data"].Bytes != 5 {
		t.Fatalf("receiver rx counters = %+v", bc.Rx)
	}
}

func testUnknownDestination(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a := attach(t, nw, h, 1)
	err := a.Send(99, "p", "data", []byte("x"))
	if !errors.Is(err, netio.ErrUnknownNode) {
		t.Fatalf("err = %v, want netio.ErrUnknownNode", err)
	}
}

func testSelfSend(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a := attach(t, nw, h, 1)
	rec := newRecorder()
	a.Handle("p", rec.handler)
	if err := a.Send(1, "p", "data", []byte("me")); err != nil {
		t.Fatalf("self send: %v", err)
	}
	got := rec.waitCount(t, 1)
	if got[0].src != 1 || got[0].payload != "me" {
		t.Fatalf("delivered %+v", got[0])
	}
	// Loopback never touches the NIC: not accounted.
	c := a.Counters()
	if c.TotalTx() != 0 || c.TotalRx() != 0 {
		t.Fatalf("self send was accounted: %+v", c)
	}
}

func testMulticastFanout(t *testing.T, h Harness) {
	if !h.Multicast {
		t.Skipf("native multicast unavailable on this backend/environment")
	}
	nw := h.New(t)
	defer nw.Close()
	sender := attach(t, nw, h, 1)
	recs := make(map[netio.NodeID]*recorder)
	senderRec := newRecorder()
	sender.Handle("m", senderRec.handler)
	for id := netio.NodeID(2); id <= 4; id++ {
		ep := attach(t, nw, h, id)
		rec := newRecorder()
		ep.Handle("m", rec.handler)
		recs[id] = rec
	}
	if err := sender.Multicast(h.Segment, "m", "data", []byte("fan")); err != nil {
		t.Fatalf("multicast: %v", err)
	}
	for id, rec := range recs {
		got := rec.waitCount(t, 1)
		if got[0].src != 1 || got[0].payload != "fan" {
			t.Fatalf("node %d delivered %+v", id, got[0])
		}
	}
	h.settle()
	for id, rec := range recs {
		if n := len(rec.snapshot()); n != 1 {
			t.Fatalf("node %d received %d copies, want exactly 1", id, n)
		}
	}
	// One's own multicast is not received, and it costs one transmission.
	if n := len(senderRec.snapshot()); n != 0 {
		t.Fatalf("sender received its own multicast %d times", n)
	}
	if tx := sender.Counters().Tx["data"].Msgs; tx != 1 {
		t.Fatalf("multicast counted as %d transmissions, want 1", tx)
	}
}

func testMulticastNotAttached(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a := attach(t, nw, h, 1)
	// Not attached to this (possibly nonexistent) segment: the multicast
	// must fail with ErrNotAttached or ErrUnknownSegment, never fan out.
	err := a.Multicast("conformance-other-segment", "m", "data", []byte("x"))
	if !errors.Is(err, netio.ErrNotAttached) && !errors.Is(err, netio.ErrUnknownSegment) {
		t.Fatalf("err = %v, want ErrNotAttached or ErrUnknownSegment", err)
	}
}

// testPortIsolation models a reconfiguration: epoch ports ("data@1",
// "data@2") are independent; traffic to an unregistered port vanishes
// silently, which is what kills stale pre-reconfiguration frames.
func testPortIsolation(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)

	epoch1, epoch2 := newRecorder(), newRecorder()
	b.Handle("data@1", epoch1.handler)
	if err := a.Send(2, "data@1", "data", []byte("old-epoch")); err != nil {
		t.Fatalf("send: %v", err)
	}
	epoch1.waitCount(t, 1)

	// Reconfigure: epoch 1 port unbinds, epoch 2 binds.
	b.Handle("data@1", nil)
	b.Handle("data@2", epoch2.handler)
	if err := a.Send(2, "data@1", "data", []byte("stale")); err != nil {
		t.Fatalf("stale send: %v", err)
	}
	if err := a.Send(2, "data@2", "data", []byte("new-epoch")); err != nil {
		t.Fatalf("send: %v", err)
	}
	got := epoch2.waitCount(t, 1)
	if got[0].payload != "new-epoch" || got[0].port != "data@2" {
		t.Fatalf("epoch 2 delivered %+v", got[0])
	}
	h.settle()
	if n := len(epoch1.snapshot()); n != 1 {
		t.Fatalf("stale frame reached the old epoch: %d deliveries on data@1, want 1", n)
	}
	if n := len(epoch2.snapshot()); n != 1 {
		t.Fatalf("epoch 2 got %d deliveries, want 1", n)
	}
}

// testCrossGroupIsolation models a multi-group node: two hosted groups use
// group-namespaced ports that share the same port leaf ("alpha/data@1",
// "beta/data@1" — same base and epoch). Frames addressed to one group's
// port must never surface on the other's handler: group isolation is the
// port namespace, so the substrate's exact-port demux is what enforces it.
func testCrossGroupIsolation(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)

	const (
		alphaPort = "alpha/data@1"
		betaPort  = "beta/data@1"
	)
	alpha, beta := newRecorder(), newRecorder()
	b.Handle(alphaPort, alpha.handler)
	b.Handle(betaPort, beta.handler)

	if err := a.Send(2, alphaPort, "data", []byte("for-alpha")); err != nil {
		t.Fatalf("send alpha: %v", err)
	}
	if err := a.Send(2, betaPort, "data", []byte("for-beta")); err != nil {
		t.Fatalf("send beta: %v", err)
	}
	gotA := alpha.waitCount(t, 1)
	gotB := beta.waitCount(t, 1)
	if gotA[0].payload != "for-alpha" || gotA[0].port != alphaPort {
		t.Fatalf("alpha delivered %+v", gotA[0])
	}
	if gotB[0].payload != "for-beta" || gotB[0].port != betaPort {
		t.Fatalf("beta delivered %+v", gotB[0])
	}
	h.settle()
	if n := len(alpha.snapshot()); n != 1 {
		t.Fatalf("alpha got %d deliveries, want exactly 1 (cross-group leak)", n)
	}
	if n := len(beta.snapshot()); n != 1 {
		t.Fatalf("beta got %d deliveries, want exactly 1 (cross-group leak)", n)
	}

	// One group leaving (port unbound) must not disturb the other, and the
	// leaver's traffic must vanish rather than leak.
	b.Handle(alphaPort, nil)
	if err := a.Send(2, alphaPort, "data", []byte("after-leave")); err != nil {
		t.Fatalf("send after leave: %v", err)
	}
	if err := a.Send(2, betaPort, "data", []byte("beta-still-up")); err != nil {
		t.Fatalf("send beta 2: %v", err)
	}
	beta.waitCount(t, 2)
	h.settle()
	if n := len(alpha.snapshot()); n != 1 {
		t.Fatalf("left group still received frames: %d", n)
	}
}

func testCountersReset(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	rec := newRecorder()
	b.Handle("p", rec.handler)
	for i := 0; i < 3; i++ {
		if err := a.Send(2, "p", "control", []byte("c")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	rec.waitCount(t, 3)
	if tx := a.Counters().Tx["control"].Msgs; tx != 3 {
		t.Fatalf("tx control = %d, want 3", tx)
	}
	a.ResetCounters()
	b.ResetCounters()
	if c := a.Counters(); c.TotalTx() != 0 {
		t.Fatalf("reset left tx counters %+v", c.Tx)
	}
	if c := b.Counters(); c.TotalRx() != 0 {
		t.Fatalf("reset left rx counters %+v", c.Rx)
	}
}

// testFrameTooLarge pins the payload ceiling as part of the substrate
// contract: every backend accepts exactly netio.MaxPayload bytes and
// rejects one byte more with the typed sentinel, so layers can size
// fragmentation against a single constant.
func testFrameTooLarge(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	rec := newRecorder()
	b.Handle("p", rec.handler)

	if err := a.Send(2, "p", "data", make([]byte, netio.MaxPayload+1)); !errors.Is(err, netio.ErrFrameTooLarge) {
		t.Fatalf("send over MaxPayload: err = %v, want netio.ErrFrameTooLarge", err)
	}
	if err := a.Multicast(h.Segment, "m", "data", make([]byte, netio.MaxPayload+1)); !errors.Is(err, netio.ErrFrameTooLarge) {
		t.Fatalf("multicast over MaxPayload: err = %v, want netio.ErrFrameTooLarge", err)
	}
	// The rejected frames must not have been accounted or delivered.
	if tx := a.Counters().TotalTx(); tx != 0 {
		t.Fatalf("rejected frames were accounted: TotalTx = %d", tx)
	}
	if err := a.Send(2, "p", "data", make([]byte, netio.MaxPayload)); err != nil {
		t.Fatalf("send at exactly MaxPayload: %v", err)
	}
	got := rec.waitCount(t, 1)
	if len(got[0].payload) != netio.MaxPayload {
		t.Fatalf("delivered %d bytes, want %d", len(got[0].payload), netio.MaxPayload)
	}
}

// flusher is implemented by endpoints that coalesce frames (udpnet with
// batching enabled); backends without a wire plane deliver eagerly and
// need no flush.
type flusher interface{ Flush() }

// testOrderedBurst pins per-destination FIFO through whatever batching
// the backend applies: a burst of frames to one peer — small enough to
// share a coalesced datagram and numerous enough to span several — must
// surface at the receiver in send order, within and across datagrams.
func testOrderedBurst(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	rec := newRecorder()
	b.Handle("p", rec.handler)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(2, "p", "data", []byte(fmt.Sprintf("seq-%04d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if f, ok := a.(flusher); ok {
		f.Flush()
	}
	got := rec.waitCount(t, n)
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("seq-%04d", i); got[i].payload != want {
			t.Fatalf("delivery %d = %q, want %q (order broken across coalesced datagrams)", i, got[i].payload, want)
		}
	}
}

// testWireAccounting pins the datagram/syscall counter contract: frame
// accounting (Tx/Rx) is packing-independent, while TxDatagrams,
// TxWireBytes and TxSyscalls describe what actually hit the wire —
// never more datagrams than frames, never more syscalls than datagrams,
// and wire bytes at least the payload bytes carried.
func testWireAccounting(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	rec := newRecorder()
	b.Handle("p", rec.handler)

	const n, size = 32, 64
	for i := 0; i < n; i++ {
		if err := a.Send(2, "p", "data", make([]byte, size)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if f, ok := a.(flusher); ok {
		f.Flush()
	}
	rec.waitCount(t, n)

	ac, bc := a.Counters(), b.Counters()
	if got := ac.Tx["data"]; got.Msgs != n || got.Bytes != n*size {
		t.Fatalf("frame accounting = %+v, want %d msgs / %d bytes regardless of packing", got, n, n*size)
	}
	if ac.TxDatagrams < 1 || ac.TxDatagrams > n {
		t.Fatalf("TxDatagrams = %d, want 1..%d", ac.TxDatagrams, n)
	}
	if ac.TxSyscalls < 1 || ac.TxSyscalls > ac.TxDatagrams {
		t.Fatalf("TxSyscalls = %d, want 1..%d (one vectored syscall may cover several datagrams)", ac.TxSyscalls, ac.TxDatagrams)
	}
	if ac.TxWireBytes < n*size {
		t.Fatalf("TxWireBytes = %d, want >= %d (payload cannot exceed wire bytes)", ac.TxWireBytes, n*size)
	}
	if bc.RxDatagrams < 1 || bc.RxDatagrams > n {
		t.Fatalf("RxDatagrams = %d, want 1..%d", bc.RxDatagrams, n)
	}
	if bc.RxSyscalls < 1 || bc.RxSyscalls > bc.RxDatagrams {
		t.Fatalf("RxSyscalls = %d, want 1..%d", bc.RxSyscalls, bc.RxDatagrams)
	}
	a.ResetCounters()
	if c := a.Counters(); c.TxDatagrams != 0 || c.TxWireBytes != 0 || c.TxSyscalls != 0 {
		t.Fatalf("ResetCounters left wire counters: %+v", c)
	}
}

// testConcurrentClose hammers Send from several goroutines while the
// endpoint closes: no panic, no deadlock, Close idempotent, and sends
// observed strictly after Close fail.
func testConcurrentClose(t *testing.T, h Harness) {
	nw := h.New(t)
	defer nw.Close()
	a, b := attach(t, nw, h, 1), attach(t, nw, h, 2)
	b.Handle("p", func(netio.NodeID, string, []byte) {})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("burst-%d", g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.Send(2, "p", "data", payload) // errors near close are fine
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond) //lint:wallclock-ok lets in-flight frames land on real sockets before close
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := a.Send(2, "p", "data", []byte("after")); !errors.Is(err, netio.ErrClosed) {
		t.Fatalf("send after close: err = %v, want netio.ErrClosed", err)
	}
	if err := a.Multicast(h.Segment, "p", "data", []byte("after")); !errors.Is(err, netio.ErrClosed) {
		t.Fatalf("multicast after close: err = %v, want netio.ErrClosed", err)
	}
}
