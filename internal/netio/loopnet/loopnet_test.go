package loopnet_test

import (
	"testing"

	"morpheus/internal/netio"
	"morpheus/internal/netio/conformancetest"
	"morpheus/internal/netio/loopnet"
)

// TestNetioConformance runs the substrate conformance suite against the
// in-process loopback.
func TestNetioConformance(t *testing.T) {
	conformancetest.Run(t, conformancetest.Harness{
		New:         func(t *testing.T) netio.Network { return loopnet.New() },
		Segment:     "conf",
		Multicast:   true,
		Synchronous: true,
	})
}
