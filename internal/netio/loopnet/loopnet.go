// Package loopnet is the zero-configuration in-process netio backend: a
// loopback network whose deliveries happen synchronously on the sender's
// goroutine. It models nothing — no latency, no loss, no energy — which
// makes it the fastest substrate for protocol tests and the reference
// point the conformance suite calibrates against.
//
// Segments are implicit: they spring into existence on first reference and
// every segment supports native multicast (fan-out in ascending ID order).
package loopnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"morpheus/internal/netio"
)

// Network is an in-process loopback substrate.
type Network struct {
	mu       sync.RWMutex
	nodes    map[netio.NodeID]*Endpoint
	segments map[string]*segment
	closed   bool
}

// segment is one implicit broadcast domain.
type segment struct {
	// members is re-sorted on every attach; multicast fan-out iterates it
	// in ascending ID order, mirroring vnet's reproducible receiver order.
	members []*Endpoint
}

// New returns an empty loopback network.
func New() *Network {
	return &Network{
		nodes:    make(map[netio.NodeID]*Endpoint),
		segments: make(map[string]*segment),
	}
}

// Attach implements netio.Network.
func (nw *Network) Attach(cfg netio.EndpointConfig) (netio.Endpoint, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.closed {
		return nil, fmt.Errorf("loopnet: network %w", netio.ErrClosed)
	}
	if _, dup := nw.nodes[cfg.ID]; dup {
		return nil, fmt.Errorf("loopnet: node %d already attached", cfg.ID)
	}
	ep := &Endpoint{
		net:      nw,
		id:       cfg.ID,
		kind:     cfg.Kind,
		segments: append([]string(nil), cfg.Segments...),
	}
	for _, name := range cfg.Segments {
		s := nw.segments[name]
		if s == nil {
			s = &segment{}
			nw.segments[name] = s
		}
		// Build a fresh slice: Multicast iterates snapshots lock-free.
		members := make([]*Endpoint, 0, len(s.members)+1)
		members = append(append(members, s.members...), ep)
		sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
		s.members = members
	}
	nw.nodes[cfg.ID] = ep
	return ep, nil
}

// Close implements netio.Network: it closes every endpoint.
func (nw *Network) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	eps := make([]*Endpoint, 0, len(nw.nodes))
	for _, ep := range nw.nodes {
		eps = append(eps, ep)
	}
	nw.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// detach removes a closed endpoint from the topology.
func (nw *Network) detach(ep *Endpoint) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	delete(nw.nodes, ep.id)
	for _, name := range ep.segments {
		s := nw.segments[name]
		if s == nil {
			continue
		}
		members := make([]*Endpoint, 0, len(s.members))
		for _, m := range s.members {
			if m != ep {
				members = append(members, m)
			}
		}
		s.members = members
	}
}

// Endpoint is one loopback attachment; it implements netio.Endpoint.
type Endpoint struct {
	net      *Network
	id       netio.NodeID
	kind     netio.Kind
	segments []string

	closed   atomic.Bool
	ports    netio.PortMux
	counters netio.CounterSet
}

var _ netio.Endpoint = (*Endpoint)(nil)

// ID implements netio.Endpoint.
func (e *Endpoint) ID() netio.NodeID { return e.id }

// Kind implements netio.Endpoint.
func (e *Endpoint) Kind() netio.Kind { return e.kind }

// Handle implements netio.Endpoint.
func (e *Endpoint) Handle(port string, h netio.Handler) { e.ports.Set(port, h) }

// Counters implements netio.Endpoint.
func (e *Endpoint) Counters() netio.Counters { return e.counters.Snapshot() }

// ResetCounters implements netio.Endpoint.
func (e *Endpoint) ResetCounters() { e.counters.Reset() }

// Close implements netio.Endpoint.
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.net.detach(e)
	return nil
}

// Send implements netio.Endpoint: synchronous delivery on this goroutine.
func (e *Endpoint) Send(dst netio.NodeID, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("loopnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("loopnet: %w: %d > %d bytes", netio.ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	if dst == e.id {
		// Loopback to self: delivered but never counted, like vnet.
		e.deliverLocal(e.id, port, payload)
		return nil
	}
	e.net.mu.RLock()
	dn := e.net.nodes[dst]
	e.net.mu.RUnlock()
	if dn == nil {
		return fmt.Errorf("loopnet: %w: %d", netio.ErrUnknownNode, dst)
	}
	e.counters.AddTx(class, len(payload))
	e.counters.AddTxDatagram(len(payload))
	e.counters.AddTxSyscall()
	dn.receive(e.id, port, class, payload)
	return nil
}

// Multicast implements netio.Endpoint: one accounted transmission fanned
// out to every other member of the segment, in ascending ID order.
func (e *Endpoint) Multicast(segName, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("loopnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("loopnet: %w: %d > %d bytes", netio.ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	e.net.mu.RLock()
	s := e.net.segments[segName]
	var receivers []*Endpoint
	attached := false
	if s != nil {
		receivers = s.members // re-sliced on detach, never mutated in place
		for _, m := range receivers {
			if m == e {
				attached = true
				break
			}
		}
	}
	e.net.mu.RUnlock()
	if s == nil {
		return fmt.Errorf("loopnet: %w: %q", netio.ErrUnknownSegment, segName)
	}
	if !attached {
		return fmt.Errorf("loopnet: node %d %w %q", e.id, netio.ErrNotAttached, segName)
	}
	e.counters.AddTx(class, len(payload))
	e.counters.AddTxDatagram(len(payload))
	e.counters.AddTxSyscall()
	for _, m := range receivers {
		if m == e {
			continue // one's own multicast is not received
		}
		m.receive(e.id, port, class, payload)
	}
	return nil
}

// receive accounts and delivers one frame.
func (e *Endpoint) receive(src netio.NodeID, port, class string, payload []byte) {
	if e.closed.Load() {
		return
	}
	e.counters.AddRx(class, len(payload))
	e.counters.AddRxDatagram(len(payload))
	e.counters.AddRxSyscall()
	e.deliverLocal(src, port, payload)
}

// deliverLocal hands the payload to the port handler, if any.
func (e *Endpoint) deliverLocal(src netio.NodeID, port string, payload []byte) {
	if h, ok := e.ports.Get(port); ok && h != nil {
		h(src, port, payload)
	}
}
