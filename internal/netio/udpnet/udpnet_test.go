package udpnet_test

import (
	"errors"
	"net"
	"strconv"
	"testing"
	"time"

	"morpheus/internal/netio"
	"morpheus/internal/netio/conformancetest"
	"morpheus/internal/netio/udpnet"
)

// newHarnessNetwork builds a udpnet on 127.0.0.1 with ephemeral unicast
// ports for node IDs 1..9 and (when groupAddr is non-empty) one multicast
// segment.
func newHarnessNetwork(t *testing.T, groupAddr string) netio.Network {
	t.Helper()
	peers := make(map[netio.NodeID]string)
	for id := netio.NodeID(1); id <= 9; id++ {
		peers[id] = "127.0.0.1:0"
	}
	groups := map[string]string{}
	if groupAddr != "" {
		groups["conf"] = groupAddr
	}
	nw, err := udpnet.New(udpnet.Config{Peers: peers, Groups: groups, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// freeUDPPort reserves an ephemeral port number for a multicast group.
func freeUDPPort(t *testing.T) int {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := c.LocalAddr().(*net.UDPAddr).Port
	c.Close()
	return port
}

// probeMulticast reports whether IP multicast loopback actually works in
// this environment (containers and CI sandboxes often lack a multicast
// route), by joining a scratch group and echoing one datagram through it.
func probeMulticast(t *testing.T, groupAddr string) bool {
	t.Helper()
	gaddr, err := net.ResolveUDPAddr("udp4", groupAddr)
	if err != nil {
		return false
	}
	rc, err := net.ListenMulticastUDP("udp4", nil, gaddr)
	if err != nil {
		return false
	}
	defer rc.Close()
	sc, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4zero})
	if err != nil {
		return false
	}
	defer sc.Close()
	if _, err := sc.WriteToUDP([]byte("probe"), gaddr); err != nil {
		return false
	}
	_ = rc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 16)
	n, _, err := rc.ReadFromUDP(buf)
	return err == nil && string(buf[:n]) == "probe"
}

// TestNetioConformance runs the substrate conformance suite over real UDP
// sockets on 127.0.0.1.
func TestNetioConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	groupAddr := net.JoinHostPort("239.77.9.7", strconv.Itoa(freeUDPPort(t)))
	mcast := probeMulticast(t, groupAddr)
	conformancetest.Run(t, conformancetest.Harness{
		New:       func(t *testing.T) netio.Network { return newHarnessNetwork(t, groupAddr) },
		Segment:   "conf",
		Multicast: mcast,
	})
}

// TestEphemeralPeerLifecycle pins the port-0 peer semantics: a peer that
// has not attached is unreachable (not a port-0 blackhole), a detached
// peer's directory entry rolls back, and re-attach works.
func TestEphemeralPeerLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	nw, err := udpnet.New(udpnet.Config{Peers: map[netio.NodeID]string{
		1: "127.0.0.1:0",
		2: "127.0.0.1:0",
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	a, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 is configured but not attached: its directory entry is still
	// port 0, which must read as unreachable, not as UDP port 0.
	if err := a.Send(2, "p", "data", []byte("x")); !errors.Is(err, netio.ErrUnknownNode) {
		t.Fatalf("send to unattached ephemeral peer: err = %v, want netio.ErrUnknownNode", err)
	}
	// Attach, close, re-attach: the rollback in detach makes the second
	// ephemeral bind legal.
	b, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed})
	if err != nil {
		t.Fatalf("re-attach after close: %v", err)
	}
	got := make(chan netio.NodeID, 1)
	b2.Handle("p", func(src netio.NodeID, _ string, _ []byte) { got <- src })
	if err := a.Send(2, "p", "data", []byte("again")); err != nil {
		t.Fatalf("send after re-attach: %v", err)
	}
	select {
	case src := <-got:
		if src != 1 {
			t.Fatalf("src = %d", src)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never arrived after re-attach")
	}
}

// TestFrameRoundTrip exercises the wire format edge cases without sockets,
// so it runs even in -short mode.
func TestFrameRoundTrip(t *testing.T) {
	nw, err := udpnet.New(udpnet.Config{Peers: map[netio.NodeID]string{
		1: "127.0.0.1:0",
		2: "127.0.0.1:0",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	defer nw.Close()
	a, err := nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind() != netio.Mobile {
		t.Fatalf("kind = %v", a.Kind())
	}
	type got struct {
		src     netio.NodeID
		payload string
	}
	ch := make(chan got, 1)
	b.Handle("a-port-with-a-long-name@7", func(src netio.NodeID, port string, payload []byte) {
		ch <- got{src, string(payload)}
	})
	// Empty payload, non-trivial port and class names.
	if err := a.Send(2, "a-port-with-a-long-name@7", "bulk-sync", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-ch:
		if g.src != 1 || g.payload != "" {
			t.Fatalf("got %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never arrived")
	}
	// Unknown class strings land in the "other" accounting bucket.
	if c := a.Counters(); c.Tx["other"].Msgs != 1 {
		t.Fatalf("tx = %+v, want 1 other-class msg", c.Tx)
	}
	// Oversized frames are refused at send time.
	if err := a.Send(2, "p", "data", make([]byte, 70<<10)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
