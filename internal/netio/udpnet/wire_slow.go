package udpnet

import (
	"errors"
	"net"
)

// sendSlow transmits sealed datagrams one WriteToUDP at a time: the
// portable build's whole send path, and the vectored build's escape hatch
// for sends the raw syscall path cannot express. Write errors are logged,
// not returned — the frames were already accounted as transmitted when
// they were coalesced, and UDP gives the sender nothing better than
// "handed to the kernel" anyway.
func (e *Endpoint) sendSlow(batch []*dgram) {
	for _, d := range batch {
		e.counters.AddTxDatagram(len(*d.bp))
		e.counters.AddTxSyscall()
		if _, err := d.dest.conn.WriteToUDP(*d.bp, d.dest.addr); err != nil && !e.closed.Load() {
			e.logf("udpnet[%d]: write to %v: %v", e.id, d.dest.addr, err)
		}
	}
}

// readLoopPortable drains one socket with per-datagram reads; the
// vectored receive loop also lands here when raw access is unavailable.
// Does not own the WaitGroup slot — its caller does.
func (e *Endpoint) readLoopPortable(conn *net.UDPConn) {
	buf := make([]byte, maxFrame)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if e.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			e.logf("udpnet[%d]: read: %v", e.id, err)
			continue
		}
		e.counters.AddRxSyscall()
		if e.closed.Load() {
			return
		}
		e.handleDatagram(buf[:n])
	}
}
