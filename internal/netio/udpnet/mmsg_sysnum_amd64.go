//go:build linux && amd64 && !morpheus_portable

package udpnet

// Vectored UDP syscall numbers. linux/amd64's syscall package predates
// sendmmsg, so its number is pinned here; both values are ABI-frozen.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
