//go:build !linux || (!amd64 && !arm64) || morpheus_portable

// Portable wire I/O: every datagram is its own sendto/recvfrom. Frame
// coalescing still happens — many frames per datagram — only the
// syscall-per-datagram amortization of the vectored path is lost. The
// morpheus_portable build tag forces this path on Linux too, which is how
// CI proves fallback parity.
package udpnet

import "net"

// batchState carries no platform scratch on the portable path.
type batchState struct{}

// sendBatch transmits a drain sweep one datagram at a time.
func (e *Endpoint) sendBatch(batch []*dgram) { e.sendSlow(batch) }

// readLoop drains one socket with per-datagram reads.
func (e *Endpoint) readLoop(conn *net.UDPConn) {
	defer e.wg.Done()
	e.readLoopPortable(conn)
}
