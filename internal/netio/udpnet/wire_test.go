package udpnet_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
	"morpheus/internal/netio/udpnet"
)

// wirePair builds a two-node udpnet with the given wire-plane knobs and
// returns the endpoints plus a recorder of everything node 2 receives on
// port "p".
func wirePair(t *testing.T, cfg udpnet.Config) (a, b netio.Endpoint, rec *recorder) {
	t.Helper()
	cfg.Peers = map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	nw, err := udpnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nw.Close() })
	a, err = nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed})
	if err != nil {
		t.Fatal(err)
	}
	b, err = nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed})
	if err != nil {
		t.Fatal(err)
	}
	rec = &recorder{}
	b.Handle("p", rec.handle)
	return a, b, rec
}

// recorder captures delivered payloads in arrival order.
type recorder struct {
	mu   sync.Mutex
	msgs []string
}

func (r *recorder) handle(_ netio.NodeID, _ string, payload []byte) {
	r.mu.Lock()
	r.msgs = append(r.msgs, string(payload))
	r.mu.Unlock()
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}

// waitMsgs polls until the recorder holds want messages (order-preserving
// UDP loopback makes the contents deterministic once the count matches).
func waitMsgs(t *testing.T, rec *recorder, want int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := rec.snapshot()
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: received %d/%d messages: %v", len(got), want, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWirePackingAtMTUBoundary pins the size-based seal: with MTU 128,
// port "p" and class "data", a 20-byte payload costs exactly 28 container
// bytes (1 length prefix + 1+1 port + 1+4 class + 20 payload), so 4
// frames fill a datagram to 8+4×28 = 120 bytes and the 5th must seal it.
// Eight casts therefore cross the wire as exactly 2 datagrams.
func TestWirePackingAtMTUBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	a, _, rec := wirePair(t, udpnet.Config{WireMTU: 128, WireFlushDelay: time.Hour})
	var want []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("msg-%02d-%013d", i, i)[:20]
		want = append(want, p)
		if err := a.Send(2, "p", "data", []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	type flusher interface{ Flush() }
	a.(flusher).Flush()
	got := waitMsgs(t, rec, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d: got %q want %q\nall: %v", i, got[i], want[i], got)
		}
	}
	c := a.Counters()
	if c.TxDatagrams != 2 {
		t.Fatalf("TxDatagrams = %d, want 2 (8 frames packed 4-per-datagram)", c.TxDatagrams)
	}
	if c.TxWireBytes != 240 {
		t.Fatalf("TxWireBytes = %d, want 240 (2 × (8-byte header + 4×28))", c.TxWireBytes)
	}
	if c.TxSyscalls == 0 || c.TxSyscalls > c.TxDatagrams {
		t.Fatalf("TxSyscalls = %d, want 1..%d", c.TxSyscalls, c.TxDatagrams)
	}
	if got := c.Tx["data"].Msgs; got != 8 {
		t.Fatalf("Tx frames = %d, want 8 (frame accounting is packing-independent)", got)
	}
}

// TestWireDelayFlushOnVirtualClock pins the delay bound deterministically:
// with the flush timer on a virtual clock, coalesced frames stay queued
// while virtual time stands still and go to the wire exactly when the
// clock passes WireFlushDelay.
func TestWireDelayFlushOnVirtualClock(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	clk := clock.NewVirtual()
	defer clk.Stop()
	a, _, rec := wirePair(t, udpnet.Config{
		WireMTU:        1400,
		WireFlushDelay: time.Millisecond,
		Clock:          clk,
	})
	for i := 0; i < 3; i++ {
		if err := a.Send(2, "p", "data", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Virtual time has not advanced, so the delay bound cannot have fired:
	// nothing may be on the wire no matter how much wall time passes.
	time.Sleep(50 * time.Millisecond)
	if c := a.Counters(); c.TxDatagrams != 0 {
		t.Fatalf("TxDatagrams = %d before the virtual flush delay elapsed, want 0", c.TxDatagrams)
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("received %v before the virtual flush delay elapsed", got)
	}
	// Crossing the delay fires the timer (on the clock goroutine) and the
	// three frames leave as one datagram.
	clk.Sleep(2 * time.Millisecond)
	waitMsgs(t, rec, 3)
	if c := a.Counters(); c.TxDatagrams != 1 {
		t.Fatalf("TxDatagrams = %d after flush, want 1", c.TxDatagrams)
	}
}

// TestWireOversizeBypass pins the bypass path: a frame too large for the
// MTU travels alone as a v1 datagram, and doing so does not reorder it
// against the coalesced frames around it.
func TestWireOversizeBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	a, _, rec := wirePair(t, udpnet.Config{WireMTU: 128, WireFlushDelay: time.Hour})
	big := make([]byte, 200) // body 207 > MTU budget: must bypass
	for i := range big {
		big[i] = 'B'
	}
	if err := a.Send(2, "p", "data", []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "p", "data", big); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "p", "data", []byte("after")); err != nil {
		t.Fatal(err)
	}
	type flusher interface{ Flush() }
	a.(flusher).Flush()
	got := waitMsgs(t, rec, 3)
	if got[0] != "before" || got[1] != string(big) || got[2] != "after" {
		t.Fatalf("order broken around oversize bypass: lengths %d,%d,%d", len(got[0]), len(got[1]), len(got[2]))
	}
	// "before" seals when the bypass arrives, the bypass is its own v1
	// datagram, "after" flushes explicitly: 3 datagrams.
	if c := a.Counters(); c.TxDatagrams != 3 {
		t.Fatalf("TxDatagrams = %d, want 3", c.TxDatagrams)
	}
}

// TestWireUnbatchedMode pins the WireMTU<0 legacy path: one frame, one
// datagram, one syscall — the benchmark baseline.
func TestWireUnbatchedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	a, _, rec := wirePair(t, udpnet.Config{WireMTU: -1})
	for i := 0; i < 5; i++ {
		if err := a.Send(2, "p", "data", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitMsgs(t, rec, 5)
	c := a.Counters()
	if c.TxDatagrams != 5 || c.TxSyscalls != 5 {
		t.Fatalf("TxDatagrams = %d, TxSyscalls = %d, want 5 each on the unbatched path", c.TxDatagrams, c.TxSyscalls)
	}
}

// TestWireCloseFlushes pins graceful shutdown: frames still waiting on
// the delay bound reach the wire before the endpoint's sockets close.
func TestWireCloseFlushes(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	a, _, rec := wirePair(t, udpnet.Config{WireMTU: 1400, WireFlushDelay: time.Hour})
	for i := 0; i < 4; i++ {
		if err := a.Send(2, "p", "data", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got := waitMsgs(t, rec, 4)
	if got[0] != "a" || got[3] != "d" {
		t.Fatalf("got %v", got)
	}
}

// TestWireFrameTooLarge pins the typed oversize error on both send paths.
func TestWireFrameTooLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("udpnet socket tests skipped in -short mode")
	}
	a, _, _ := wirePair(t, udpnet.Config{})
	if err := a.Send(2, "p", "data", make([]byte, netio.MaxPayload+1)); !errors.Is(err, netio.ErrFrameTooLarge) {
		t.Fatalf("Send oversize: err = %v, want netio.ErrFrameTooLarge", err)
	}
	if err := a.Send(2, "p", "data", make([]byte, netio.MaxPayload)); err != nil {
		t.Fatalf("Send at MaxPayload: %v", err)
	}
}
