// Package udpnet is the real-socket netio backend: each endpoint owns one
// UDP socket, Morpheus ports are demultiplexed from a small frame header,
// and segments with a configured group address do native multicast through
// IP multicast. It is the substrate cmd/morpheus-node and examples/live
// run on — three OS processes on localhost forming a live Morpheus group.
//
// Addressing is static: the configuration maps every node identifier to a
// UDP listen address, as a deployment descriptor would. A peer registered
// with port 0 has its actual bound address published back into the
// network's table on Attach, which is what lets in-process tests run on
// ephemeral ports.
//
// The wire plane batches: frames bound for the same destination (peer or
// multicast group) are coalesced into container datagrams under an MTU
// budget (Config.WireMTU) and flushed by size, by an explicit Flush, or by
// a clock-armed delay bound (Config.WireFlushDelay); sealed datagrams are
// drained with vectored sendmmsg/recvmmsg syscalls where the platform has
// them (see wire.go and the mmsg_* files). Two wire formats coexist:
//
//	v1 single frame (legacy, and the oversize bypass):
//	  magic 'M' | version 1 | src NodeID (int32, big endian) |
//	  uvarint len + port | uvarint len + class | payload
//
//	v2 container (the coalesced path):
//	  magic 'M' | version 2 | src NodeID (int32, big endian) |
//	  count (uint16, big endian) | count × { uvarint body len |
//	  uvarint len + port | uvarint len + class | payload }
//
// Frames whose header does not parse — or whose source is the receiving
// endpoint itself, which is how multicast loopback copies of one's own
// transmissions are suppressed — are dropped.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// Frame header constants.
const (
	frameMagic       = 'M'
	frameVersion     = 1
	containerVersion = 2
	// containerHdrLen is magic + version + src (4) + count (2).
	containerHdrLen = 8
	// maxFrame bounds a datagram: 64 KiB covers the largest UDP payload.
	maxFrame = 64 << 10
)

// Wire-plane defaults.
const (
	// DefaultWireMTU is the datagram payload budget coalescing packs
	// under: conservatively below the common 1500-byte Ethernet MTU so a
	// container datagram never fragments on a LAN.
	DefaultWireMTU = 1400
	// DefaultWireFlushDelay bounds how long a coalesced frame may wait
	// for companions before the clock flushes it.
	DefaultWireFlushDelay = 200 * time.Microsecond
)

// Config describes a UDP substrate deployment.
type Config struct {
	// Peers maps every node identifier to its unicast UDP listen address
	// ("127.0.0.1:9001"). Port 0 binds an ephemeral port and publishes it
	// (in-process use only: other processes cannot observe the rebind).
	Peers map[netio.NodeID]string
	// Groups maps segment names to IP multicast group addresses
	// ("239.77.7.1:9700"). Segments without an entry are unicast-only:
	// Multicast on them fails with netio.ErrNoMulticast.
	Groups map[string]string
	// WireMTU is the coalescing budget: frames bound for one destination
	// are packed into container datagrams of at most this many bytes.
	// 0 means DefaultWireMTU; negative disables coalescing entirely and
	// restores the one-frame-per-datagram, one-syscall-per-frame legacy
	// path (the benchmark baseline). Positive values below 128 are
	// rejected — no frame would fit.
	WireMTU int
	// WireFlushDelay bounds the latency coalescing may add: the first
	// frame into an empty coalescer arms a timer, and whatever has packed
	// by the time it fires is flushed. 0 means DefaultWireFlushDelay;
	// negative flushes every Send immediately (no added latency, packing
	// only across the frames already queued by concurrent senders).
	WireFlushDelay time.Duration
	// Clock arms the flush-delay timer. Nil means wall clock; tests drive
	// a virtual clock through it so delay-bound flushes are deterministic.
	Clock clock.Clock
	// Logf receives diagnostics (undecodable frames, read and batched
	// write errors); nil discards them.
	Logf netio.Logf
}

// Network is a UDP substrate instance; it implements netio.Network.
type Network struct {
	logf  netio.Logf
	mtu   int
	delay time.Duration
	clk   clock.Clock

	// basePeers and groupAddrs are the resolved configuration, immutable
	// after New.
	basePeers  map[netio.NodeID]*net.UDPAddr
	groupAddrs map[string]*net.UDPAddr

	mu     sync.RWMutex
	peers  map[netio.NodeID]*net.UDPAddr // live directory (port-0 rebinds published here)
	eps    map[netio.NodeID]*Endpoint
	closed bool
}

// New validates the configuration and resolves the peer directory and
// group addresses once.
func New(cfg Config) (*Network, error) {
	mtu := cfg.WireMTU
	switch {
	case mtu == 0:
		mtu = DefaultWireMTU
	case mtu < 0:
		mtu = 0 // coalescing disabled
	case mtu < 128:
		return nil, fmt.Errorf("udpnet: WireMTU %d below the 128-byte minimum", cfg.WireMTU)
	case mtu > maxFrame:
		return nil, fmt.Errorf("udpnet: WireMTU %d exceeds the %d-byte datagram ceiling", cfg.WireMTU, maxFrame)
	}
	delay := cfg.WireFlushDelay
	if delay == 0 {
		delay = DefaultWireFlushDelay
	}
	nw := &Network{
		logf:       cfg.Logf.Or(),
		mtu:        mtu,
		delay:      delay,
		clk:        clock.Or(cfg.Clock),
		basePeers:  make(map[netio.NodeID]*net.UDPAddr, len(cfg.Peers)),
		groupAddrs: make(map[string]*net.UDPAddr, len(cfg.Groups)),
		peers:      make(map[netio.NodeID]*net.UDPAddr, len(cfg.Peers)),
		eps:        make(map[netio.NodeID]*Endpoint),
	}
	for id, addr := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udpnet: peer %d address %q: %w", id, addr, err)
		}
		nw.basePeers[id] = ua
		nw.peers[id] = ua
	}
	for seg, addr := range cfg.Groups {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udpnet: segment %q group %q: %w", seg, addr, err)
		}
		if !ua.IP.IsMulticast() {
			return nil, fmt.Errorf("udpnet: segment %q group %q is not a multicast address", seg, addr)
		}
		nw.groupAddrs[seg] = ua
	}
	return nw, nil
}

// peer resolves a node's unicast address. A port-0 entry means the peer
// was configured ephemeral and has not attached yet: it is unreachable,
// not a destination.
func (nw *Network) peer(id netio.NodeID) *net.UDPAddr {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	addr := nw.peers[id]
	if addr == nil || addr.Port == 0 {
		return nil
	}
	return addr
}

// Attach implements netio.Network: it binds the endpoint's unicast socket,
// joins the multicast group of every attached segment that has one, and
// starts the receive loops. The whole operation runs under the network
// lock — socket setup is a handful of fast syscalls, and holding the lock
// closes the window where a duplicate Attach or a concurrent Network.Close
// could race the registration.
func (nw *Network) Attach(cfg netio.EndpointConfig) (netio.Endpoint, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.closed {
		return nil, fmt.Errorf("udpnet: network %w", netio.ErrClosed)
	}
	if _, dup := nw.eps[cfg.ID]; dup {
		return nil, fmt.Errorf("udpnet: node %d already attached", cfg.ID)
	}
	laddr := nw.basePeers[cfg.ID]
	if laddr == nil {
		return nil, fmt.Errorf("udpnet: %w: %d has no configured address", netio.ErrUnknownNode, cfg.ID)
	}

	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: node %d listen %v: %w", cfg.ID, laddr, err)
	}
	// Generous socket buffers: a vectored drain can put dozens of
	// datagrams on the wire between two receiver wakeups, and on loopback
	// the default buffers overrun long before the receiver is actually
	// slow. Best effort — some environments cap the values.
	_ = conn.SetReadBuffer(1 << 21)
	_ = conn.SetWriteBuffer(1 << 21)
	ep := &Endpoint{
		net:      nw,
		id:       cfg.ID,
		kind:     cfg.Kind,
		segments: append([]string(nil), cfg.Segments...),
		conn:     conn,
		groups:   make(map[string]*net.UDPAddr, len(cfg.Segments)),
		logf:     nw.logf,
	}
	// Join segment multicast groups. Each joined group gets its own
	// listening socket (ListenMulticastUDP sets SO_REUSEADDR, so several
	// in-process endpoints can share one group).
	for _, seg := range cfg.Segments {
		gaddr, ok := nw.groupAddrs[seg]
		if !ok {
			continue // unicast-only segment
		}
		gconn, err := net.ListenMulticastUDP("udp4", nil, gaddr)
		if err != nil {
			_ = ep.closeSockets()
			return nil, fmt.Errorf("udpnet: node %d join %q (%v): %w", cfg.ID, seg, gaddr, err)
		}
		_ = gconn.SetReadBuffer(1 << 21)
		ep.groups[seg] = gaddr
		ep.gconns = append(ep.gconns, gconn)
	}
	// Group sends leave through a wildcard-bound socket: a socket bound to
	// a concrete unicast address (127.0.0.1 in the localhost demos) pins
	// multicast egress to that address's interface, which has no group
	// members; the wildcard socket lets the kernel route and loop the
	// datagram back to local joiners.
	if len(ep.groups) > 0 {
		mconn, err := net.ListenUDP("udp4", &net.UDPAddr{})
		if err != nil {
			_ = ep.closeSockets()
			return nil, fmt.Errorf("udpnet: node %d multicast send socket: %w", cfg.ID, err)
		}
		_ = mconn.SetWriteBuffer(1 << 21)
		ep.mconn = mconn
	}
	if nw.mtu > 0 {
		ep.wire = newCoalescer(ep, nw.mtu, nw.delay, nw.clk)
	}

	nw.eps[cfg.ID] = ep
	// Publish the actual bound address so ephemeral-port peers (":0") are
	// reachable from this process.
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		nw.peers[cfg.ID] = la
	}

	// The receive loops are registered with the WaitGroup before the lock
	// drops, so a Network.Close that observes this endpoint always waits
	// for them.
	ep.wg.Add(1 + len(ep.gconns))
	go ep.readLoop(ep.conn)
	for _, gc := range ep.gconns {
		go ep.readLoop(gc)
	}
	return ep, nil
}

// Close implements netio.Network: it closes every endpoint and waits for
// their receive loops to drain.
func (nw *Network) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	eps := make([]*Endpoint, 0, len(nw.eps))
	for _, ep := range nw.eps {
		eps = append(eps, ep)
	}
	nw.mu.Unlock()
	var firstErr error
	for _, ep := range eps {
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// detach removes a closed endpoint and restores the configured peer
// address, so an ephemeral-port peer can attach again.
func (nw *Network) detach(ep *Endpoint) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.eps[ep.id] == ep {
		delete(nw.eps, ep.id)
		nw.peers[ep.id] = nw.basePeers[ep.id]
	}
}

// Endpoint is one UDP socket attachment; it implements netio.Endpoint.
type Endpoint struct {
	net      *Network
	id       netio.NodeID
	kind     netio.Kind
	segments []string

	conn   *net.UDPConn            // unicast socket (also the unicast send socket)
	mconn  *net.UDPConn            // multicast send socket (wildcard-bound); nil without groups
	groups map[string]*net.UDPAddr // segment -> group address
	gconns []*net.UDPConn          // joined group listening sockets

	// wire is the coalescing send plane; nil when WireMTU is negative
	// (the legacy one-frame-per-datagram path).
	wire *coalescer
	// batch is the platform send state (cached raw connections, scratch
	// iovec arrays); only the single active drainer touches it.
	batch batchState

	closed   atomic.Bool
	wg       sync.WaitGroup
	ports    netio.PortMux
	counters netio.CounterSet
	logf     netio.Logf
}

var _ netio.Endpoint = (*Endpoint)(nil)

// ID implements netio.Endpoint.
func (e *Endpoint) ID() netio.NodeID { return e.id }

// Kind implements netio.Endpoint.
func (e *Endpoint) Kind() netio.Kind { return e.kind }

// Handle implements netio.Endpoint.
func (e *Endpoint) Handle(port string, h netio.Handler) { e.ports.Set(port, h) }

// Counters implements netio.Endpoint.
func (e *Endpoint) Counters() netio.Counters { return e.counters.Snapshot() }

// ResetCounters implements netio.Endpoint.
func (e *Endpoint) ResetCounters() { e.counters.Reset() }

// LocalAddr returns the bound unicast address (useful with port-0 peers).
func (e *Endpoint) LocalAddr() *net.UDPAddr {
	la, _ := e.conn.LocalAddr().(*net.UDPAddr)
	return la
}

// Flush seals and transmits every coalesced frame still waiting for the
// delay-bound timer. A nil error only means the datagrams were handed to
// the kernel. No-op on an unbatched endpoint.
func (e *Endpoint) Flush() {
	if e.wire != nil {
		e.wire.Flush()
	}
}

// Close implements netio.Endpoint: graceful shutdown — pending coalesced
// frames flush, the sockets close, the receive loops drain, and only then
// does Close return.
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	if e.wire != nil {
		e.wire.close()
	}
	err := e.closeSockets()
	e.wg.Wait()
	e.net.detach(e)
	return err
}

// closeSockets tears the sockets down (also the Attach failure path, when
// the receive loops never started).
func (e *Endpoint) closeSockets() error {
	err := e.conn.Close()
	if e.mconn != nil {
		if cerr := e.mconn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, gc := range e.gconns {
		if cerr := gc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// frame pool: marshal and container buffers shared across endpoints.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// appendFrameBody appends the port/class/payload body shared by the v1
// frame format and the v2 container entries.
func appendFrameBody(b []byte, port, class string, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(port)))
	b = append(b, port...)
	b = binary.AppendUvarint(b, uint64(len(class)))
	b = append(b, class...)
	b = append(b, payload...)
	return b
}

// frameBodyLen sizes appendFrameBody's output.
func frameBodyLen(port, class string, payload []byte) int {
	return uvarintLen(uint64(len(port))) + len(port) +
		uvarintLen(uint64(len(class))) + len(class) + len(payload)
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// marshalFrame encodes a v1 single-frame datagram into a pooled buffer.
func marshalFrame(src netio.NodeID, port, class string, payload []byte) (*[]byte, error) {
	need := 2 + 4 + 2*binary.MaxVarintLen64 + len(port) + len(class) + len(payload)
	if need > maxFrame {
		return nil, fmt.Errorf("udpnet: frame of %d bytes exceeds %d: %w", need, maxFrame, netio.ErrFrameTooLarge)
	}
	bp := framePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, frameMagic, frameVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(src))
	b = appendFrameBody(b, port, class, payload)
	*bp = b
	return bp, nil
}

// errBadFrame reports an undecodable datagram.
var errBadFrame = errors.New("udpnet: undecodable frame")

// parseBody decodes one port/class/payload body in place; the returned
// strings and payload alias b.
func parseBody(b []byte) (port, class string, payload []byte, err error) {
	take := func() ([]byte, bool) {
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b)-w) {
			return nil, false
		}
		s := b[w : w+int(n)]
		b = b[w+int(n):]
		return s, true
	}
	p, ok := take()
	if !ok {
		return "", "", nil, errBadFrame
	}
	c, ok := take()
	if !ok {
		return "", "", nil, errBadFrame
	}
	return string(p), string(c), b, nil
}

// parseFrame decodes a v1 datagram in place; port, class and payload
// alias b.
func parseFrame(b []byte) (src netio.NodeID, port, class string, payload []byte, err error) {
	if len(b) < 6 || b[0] != frameMagic || b[1] != frameVersion {
		return 0, "", "", nil, errBadFrame
	}
	src = netio.NodeID(int32(binary.BigEndian.Uint32(b[2:6])))
	port, class, payload, err = parseBody(b[6:])
	return src, port, class, payload, err
}

// Send implements netio.Endpoint: the frame is coalesced toward dst (or,
// unbatched, transmitted point-to-point immediately).
func (e *Endpoint) Send(dst netio.NodeID, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("udpnet: %w: %d > %d bytes", netio.ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	if dst == e.id {
		// Loopback: stays in the host, never touches the NIC, so it is
		// not counted — matching every other substrate.
		if h, ok := e.ports.Get(port); ok && h != nil {
			h(e.id, port, payload)
		}
		return nil
	}
	addr := e.net.peer(dst)
	if addr == nil {
		return fmt.Errorf("udpnet: %w: %d", netio.ErrUnknownNode, dst)
	}
	if e.wire != nil {
		return e.wire.enqueue(wireDest{conn: e.conn, addr: addr}, port, class, payload)
	}
	return e.writeVia(e.conn, addr, port, class, payload)
}

// Multicast implements netio.Endpoint: one datagram (possibly carrying
// other coalesced frames for the group) to the segment's IP multicast
// group.
func (e *Endpoint) Multicast(seg, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("udpnet: %w: %d > %d bytes", netio.ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	attached := false
	for _, s := range e.segments {
		if s == seg {
			attached = true
			break
		}
	}
	if !attached {
		return fmt.Errorf("udpnet: node %d %w %q", e.id, netio.ErrNotAttached, seg)
	}
	gaddr := e.groups[seg]
	if gaddr == nil {
		return fmt.Errorf("udpnet: %w: %q", netio.ErrNoMulticast, seg)
	}
	if e.wire != nil {
		return e.wire.enqueue(wireDest{conn: e.mconn, addr: gaddr}, port, class, payload)
	}
	return e.writeVia(e.mconn, gaddr, port, class, payload)
}

// writeVia marshals and transmits one v1 frame through conn, counting the
// transmission (the unbatched path).
func (e *Endpoint) writeVia(conn *net.UDPConn, addr *net.UDPAddr, port, class string, payload []byte) error {
	bp, err := marshalFrame(e.id, port, class, payload)
	if err != nil {
		return err
	}
	// Count before the write, like a radio counts what it keys up, even
	// when the datagram is subsequently dropped.
	e.counters.AddTx(class, len(payload))
	e.counters.AddTxDatagram(len(*bp))
	e.counters.AddTxSyscall()
	_, werr := conn.WriteToUDP(*bp, addr)
	framePool.Put(bp)
	if werr != nil {
		if e.closed.Load() {
			return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
		}
		return fmt.Errorf("udpnet: node %d write to %v: %w", e.id, addr, werr)
	}
	return nil
}

// handleDatagram demultiplexes one received datagram — a v1 single frame
// or a v2 container — to port handlers. Payload slices lent to handlers
// alias the read buffer, honouring the netio.Handler borrowed-payload
// contract; nothing is copied on this path.
func (e *Endpoint) handleDatagram(b []byte) {
	if len(b) >= containerHdrLen && b[0] == frameMagic && b[1] == containerVersion {
		src := netio.NodeID(int32(binary.BigEndian.Uint32(b[2:6])))
		if src == e.id {
			return // multicast loopback of our own transmission
		}
		count := int(binary.BigEndian.Uint16(b[6:8]))
		e.counters.AddRxDatagram(len(b))
		rest := b[containerHdrLen:]
		for i := 0; i < count; i++ {
			n, w := binary.Uvarint(rest)
			if w <= 0 || n > uint64(len(rest)-w) {
				e.logf("udpnet[%d]: drop container tail: frame %d/%d undecodable", e.id, i+1, count)
				return
			}
			body := rest[w : w+int(n)]
			rest = rest[w+int(n):]
			port, class, payload, err := parseBody(body)
			if err != nil {
				e.logf("udpnet[%d]: drop container frame %d/%d: %v", e.id, i+1, count, err)
				continue
			}
			if e.closed.Load() {
				return
			}
			e.counters.AddRx(class, len(payload))
			if h, ok := e.ports.Get(port); ok && h != nil {
				h(src, port, payload)
			}
		}
		return
	}
	src, port, class, payload, err := parseFrame(b)
	if err != nil {
		e.logf("udpnet[%d]: drop %d-byte datagram: %v", e.id, len(b), err)
		return
	}
	if src == e.id {
		return // multicast loopback of our own transmission
	}
	if e.closed.Load() {
		return
	}
	e.counters.AddRxDatagram(len(b))
	e.counters.AddRx(class, len(payload))
	if h, ok := e.ports.Get(port); ok && h != nil {
		h(src, port, payload)
	}
}
