// Package udpnet is the real-socket netio backend: each endpoint owns one
// UDP socket, Morpheus ports are demultiplexed from a small frame header,
// and segments with a configured group address do native multicast through
// IP multicast. It is the substrate cmd/morpheus-node and examples/live
// run on — three OS processes on localhost forming a live Morpheus group.
//
// Addressing is static: the configuration maps every node identifier to a
// UDP listen address, as a deployment descriptor would. A peer registered
// with port 0 has its actual bound address published back into the
// network's table on Attach, which is what lets in-process tests run on
// ephemeral ports.
//
// The wire format per datagram is
//
//	magic 'M' | version 1 | src NodeID (int32, big endian) |
//	uvarint len + port | uvarint len + class | payload
//
// Frames whose header does not parse — or whose source is the receiving
// endpoint itself, which is how multicast loopback copies of one's own
// transmissions are suppressed — are dropped.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"morpheus/internal/netio"
)

// Frame header constants.
const (
	frameMagic   = 'M'
	frameVersion = 1
	// maxFrame bounds a datagram: 64 KiB covers the largest UDP payload.
	maxFrame = 64 << 10
)

// Config describes a UDP substrate deployment.
type Config struct {
	// Peers maps every node identifier to its unicast UDP listen address
	// ("127.0.0.1:9001"). Port 0 binds an ephemeral port and publishes it
	// (in-process use only: other processes cannot observe the rebind).
	Peers map[netio.NodeID]string
	// Groups maps segment names to IP multicast group addresses
	// ("239.77.7.1:9700"). Segments without an entry are unicast-only:
	// Multicast on them fails with netio.ErrNoMulticast.
	Groups map[string]string
	// Logf receives diagnostics (undecodable frames, read errors); nil
	// discards them.
	Logf netio.Logf
}

// Network is a UDP substrate instance; it implements netio.Network.
type Network struct {
	logf netio.Logf

	// basePeers and groupAddrs are the resolved configuration, immutable
	// after New.
	basePeers  map[netio.NodeID]*net.UDPAddr
	groupAddrs map[string]*net.UDPAddr

	mu     sync.RWMutex
	peers  map[netio.NodeID]*net.UDPAddr // live directory (port-0 rebinds published here)
	eps    map[netio.NodeID]*Endpoint
	closed bool
}

// New validates the configuration and resolves the peer directory and
// group addresses once.
func New(cfg Config) (*Network, error) {
	nw := &Network{
		logf:       cfg.Logf.Or(),
		basePeers:  make(map[netio.NodeID]*net.UDPAddr, len(cfg.Peers)),
		groupAddrs: make(map[string]*net.UDPAddr, len(cfg.Groups)),
		peers:      make(map[netio.NodeID]*net.UDPAddr, len(cfg.Peers)),
		eps:        make(map[netio.NodeID]*Endpoint),
	}
	for id, addr := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udpnet: peer %d address %q: %w", id, addr, err)
		}
		nw.basePeers[id] = ua
		nw.peers[id] = ua
	}
	for seg, addr := range cfg.Groups {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udpnet: segment %q group %q: %w", seg, addr, err)
		}
		if !ua.IP.IsMulticast() {
			return nil, fmt.Errorf("udpnet: segment %q group %q is not a multicast address", seg, addr)
		}
		nw.groupAddrs[seg] = ua
	}
	return nw, nil
}

// peer resolves a node's unicast address. A port-0 entry means the peer
// was configured ephemeral and has not attached yet: it is unreachable,
// not a destination.
func (nw *Network) peer(id netio.NodeID) *net.UDPAddr {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	addr := nw.peers[id]
	if addr == nil || addr.Port == 0 {
		return nil
	}
	return addr
}

// Attach implements netio.Network: it binds the endpoint's unicast socket,
// joins the multicast group of every attached segment that has one, and
// starts the receive loops. The whole operation runs under the network
// lock — socket setup is a handful of fast syscalls, and holding the lock
// closes the window where a duplicate Attach or a concurrent Network.Close
// could race the registration.
func (nw *Network) Attach(cfg netio.EndpointConfig) (netio.Endpoint, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.closed {
		return nil, fmt.Errorf("udpnet: network %w", netio.ErrClosed)
	}
	if _, dup := nw.eps[cfg.ID]; dup {
		return nil, fmt.Errorf("udpnet: node %d already attached", cfg.ID)
	}
	laddr := nw.basePeers[cfg.ID]
	if laddr == nil {
		return nil, fmt.Errorf("udpnet: %w: %d has no configured address", netio.ErrUnknownNode, cfg.ID)
	}

	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: node %d listen %v: %w", cfg.ID, laddr, err)
	}
	ep := &Endpoint{
		net:      nw,
		id:       cfg.ID,
		kind:     cfg.Kind,
		segments: append([]string(nil), cfg.Segments...),
		conn:     conn,
		groups:   make(map[string]*net.UDPAddr, len(cfg.Segments)),
		logf:     nw.logf,
	}
	// Join segment multicast groups. Each joined group gets its own
	// listening socket (ListenMulticastUDP sets SO_REUSEADDR, so several
	// in-process endpoints can share one group).
	for _, seg := range cfg.Segments {
		gaddr, ok := nw.groupAddrs[seg]
		if !ok {
			continue // unicast-only segment
		}
		gconn, err := net.ListenMulticastUDP("udp4", nil, gaddr)
		if err != nil {
			_ = ep.closeSockets()
			return nil, fmt.Errorf("udpnet: node %d join %q (%v): %w", cfg.ID, seg, gaddr, err)
		}
		ep.groups[seg] = gaddr
		ep.gconns = append(ep.gconns, gconn)
	}
	// Group sends leave through a wildcard-bound socket: a socket bound to
	// a concrete unicast address (127.0.0.1 in the localhost demos) pins
	// multicast egress to that address's interface, which has no group
	// members; the wildcard socket lets the kernel route and loop the
	// datagram back to local joiners.
	if len(ep.groups) > 0 {
		mconn, err := net.ListenUDP("udp4", &net.UDPAddr{})
		if err != nil {
			_ = ep.closeSockets()
			return nil, fmt.Errorf("udpnet: node %d multicast send socket: %w", cfg.ID, err)
		}
		ep.mconn = mconn
	}

	nw.eps[cfg.ID] = ep
	// Publish the actual bound address so ephemeral-port peers (":0") are
	// reachable from this process.
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		nw.peers[cfg.ID] = la
	}

	// The receive loops are registered with the WaitGroup before the lock
	// drops, so a Network.Close that observes this endpoint always waits
	// for them.
	ep.wg.Add(1 + len(ep.gconns))
	go ep.readLoop(ep.conn)
	for _, gc := range ep.gconns {
		go ep.readLoop(gc)
	}
	return ep, nil
}

// Close implements netio.Network: it closes every endpoint and waits for
// their receive loops to drain.
func (nw *Network) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	eps := make([]*Endpoint, 0, len(nw.eps))
	for _, ep := range nw.eps {
		eps = append(eps, ep)
	}
	nw.mu.Unlock()
	var firstErr error
	for _, ep := range eps {
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// detach removes a closed endpoint and restores the configured peer
// address, so an ephemeral-port peer can attach again.
func (nw *Network) detach(ep *Endpoint) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.eps[ep.id] == ep {
		delete(nw.eps, ep.id)
		nw.peers[ep.id] = nw.basePeers[ep.id]
	}
}

// Endpoint is one UDP socket attachment; it implements netio.Endpoint.
type Endpoint struct {
	net      *Network
	id       netio.NodeID
	kind     netio.Kind
	segments []string

	conn   *net.UDPConn            // unicast socket (also the unicast send socket)
	mconn  *net.UDPConn            // multicast send socket (wildcard-bound); nil without groups
	groups map[string]*net.UDPAddr // segment -> group address
	gconns []*net.UDPConn          // joined group listening sockets

	closed   atomic.Bool
	wg       sync.WaitGroup
	ports    netio.PortMux
	counters netio.CounterSet
	logf     netio.Logf
}

var _ netio.Endpoint = (*Endpoint)(nil)

// ID implements netio.Endpoint.
func (e *Endpoint) ID() netio.NodeID { return e.id }

// Kind implements netio.Endpoint.
func (e *Endpoint) Kind() netio.Kind { return e.kind }

// Handle implements netio.Endpoint.
func (e *Endpoint) Handle(port string, h netio.Handler) { e.ports.Set(port, h) }

// Counters implements netio.Endpoint.
func (e *Endpoint) Counters() netio.Counters { return e.counters.Snapshot() }

// ResetCounters implements netio.Endpoint.
func (e *Endpoint) ResetCounters() { e.counters.Reset() }

// LocalAddr returns the bound unicast address (useful with port-0 peers).
func (e *Endpoint) LocalAddr() *net.UDPAddr {
	la, _ := e.conn.LocalAddr().(*net.UDPAddr)
	return la
}

// Close implements netio.Endpoint: graceful shutdown — the sockets close,
// the receive loops drain, and only then does Close return.
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	err := e.closeSockets()
	e.wg.Wait()
	e.net.detach(e)
	return err
}

// closeSockets tears the sockets down (also the Attach failure path, when
// the receive loops never started).
func (e *Endpoint) closeSockets() error {
	err := e.conn.Close()
	if e.mconn != nil {
		if cerr := e.mconn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, gc := range e.gconns {
		if cerr := gc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// frame pool: marshal scratch buffers shared across endpoints.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// marshalFrame encodes the header and payload into a pooled buffer.
func marshalFrame(src netio.NodeID, port, class string, payload []byte) (*[]byte, error) {
	need := 2 + 4 + 2*binary.MaxVarintLen64 + len(port) + len(class) + len(payload)
	if need > maxFrame {
		return nil, fmt.Errorf("udpnet: frame of %d bytes exceeds %d", need, maxFrame)
	}
	bp := framePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, frameMagic, frameVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(src))
	b = binary.AppendUvarint(b, uint64(len(port)))
	b = append(b, port...)
	b = binary.AppendUvarint(b, uint64(len(class)))
	b = append(b, class...)
	b = append(b, payload...)
	*bp = b
	return bp, nil
}

// errBadFrame reports an undecodable datagram.
var errBadFrame = errors.New("udpnet: undecodable frame")

// parseFrame decodes a datagram in place; port, class and payload alias b.
func parseFrame(b []byte) (src netio.NodeID, port, class string, payload []byte, err error) {
	if len(b) < 6 || b[0] != frameMagic || b[1] != frameVersion {
		return 0, "", "", nil, errBadFrame
	}
	src = netio.NodeID(int32(binary.BigEndian.Uint32(b[2:6])))
	rest := b[6:]
	take := func() ([]byte, bool) {
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			return nil, false
		}
		s := rest[w : w+int(n)]
		rest = rest[w+int(n):]
		return s, true
	}
	p, ok := take()
	if !ok {
		return 0, "", "", nil, errBadFrame
	}
	c, ok := take()
	if !ok {
		return 0, "", "", nil, errBadFrame
	}
	return src, string(p), string(c), rest, nil
}

// Send implements netio.Endpoint: point-to-point datagram to dst.
func (e *Endpoint) Send(dst netio.NodeID, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	if dst == e.id {
		// Loopback: stays in the host, never touches the NIC, so it is
		// not counted — matching every other substrate.
		if h, ok := e.ports.Get(port); ok && h != nil {
			h(e.id, port, payload)
		}
		return nil
	}
	addr := e.net.peer(dst)
	if addr == nil {
		return fmt.Errorf("udpnet: %w: %d", netio.ErrUnknownNode, dst)
	}
	return e.write(addr, port, class, payload)
}

// Multicast implements netio.Endpoint: one datagram to the segment's IP
// multicast group.
func (e *Endpoint) Multicast(seg, port, class string, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
	}
	attached := false
	for _, s := range e.segments {
		if s == seg {
			attached = true
			break
		}
	}
	if !attached {
		return fmt.Errorf("udpnet: node %d %w %q", e.id, netio.ErrNotAttached, seg)
	}
	gaddr := e.groups[seg]
	if gaddr == nil {
		return fmt.Errorf("udpnet: %w: %q", netio.ErrNoMulticast, seg)
	}
	return e.writeVia(e.mconn, gaddr, port, class, payload)
}

// write marshals and transmits one unicast frame.
func (e *Endpoint) write(addr *net.UDPAddr, port, class string, payload []byte) error {
	return e.writeVia(e.conn, addr, port, class, payload)
}

// writeVia transmits one frame through conn, counting the transmission.
func (e *Endpoint) writeVia(conn *net.UDPConn, addr *net.UDPAddr, port, class string, payload []byte) error {
	bp, err := marshalFrame(e.id, port, class, payload)
	if err != nil {
		return err
	}
	// Count before the write, like a radio counts what it keys up, even
	// when the datagram is subsequently dropped.
	e.counters.AddTx(class, len(payload))
	_, werr := conn.WriteToUDP(*bp, addr)
	framePool.Put(bp)
	if werr != nil {
		if e.closed.Load() {
			return fmt.Errorf("udpnet: endpoint %d %w", e.id, netio.ErrClosed)
		}
		return fmt.Errorf("udpnet: node %d write to %v: %w", e.id, addr, werr)
	}
	return nil
}

// readLoop drains one socket until it closes, demultiplexing frames to
// port handlers. The payload slice lent to the handler aliases the read
// buffer, honouring the netio.Handler borrowed-payload contract.
func (e *Endpoint) readLoop(conn *net.UDPConn) {
	defer e.wg.Done()
	buf := make([]byte, maxFrame)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if e.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			e.logf("udpnet[%d]: read: %v", e.id, err)
			continue
		}
		src, port, class, payload, err := parseFrame(buf[:n])
		if err != nil {
			e.logf("udpnet[%d]: drop %d-byte datagram: %v", e.id, n, err)
			continue
		}
		if src == e.id {
			continue // multicast loopback of our own transmission
		}
		if e.closed.Load() {
			return
		}
		e.counters.AddRx(class, len(payload))
		if h, ok := e.ports.Get(port); ok && h != nil {
			h(src, port, payload)
		}
	}
}
