package udpnet_test

// Wire-plane benchmarks: the batched (coalescing + vectored syscall) hot
// path against the one-datagram-per-frame baseline, on real loopback
// sockets. Sub-benchmark variants pair via
//
//	go run ./tools/benchjson -variants "unbatched,batched"
//
// Custom metrics carry the wire-level quantities the acceptance criteria
// name: datagrams and syscalls per cast (the ≥4x reduction) on top of
// ns/op (the ≥2x throughput) and allocs/op (0 on the batched send path).

import (
	"testing"
	"time"

	"morpheus/internal/netio"
	"morpheus/internal/netio/udpnet"
)

// benchNet builds a two-node network; mtu < 0 is the unbatched baseline.
func benchNet(b *testing.B, mtu int) (a, peer netio.Endpoint) {
	b.Helper()
	nw, err := udpnet.New(udpnet.Config{
		Peers:   map[netio.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"},
		WireMTU: mtu,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nw.Close() })
	a, err = nw.Attach(netio.EndpointConfig{ID: 1, Kind: netio.Fixed})
	if err != nil {
		b.Fatal(err)
	}
	peer, err = nw.Attach(netio.EndpointConfig{ID: 2, Kind: netio.Fixed})
	if err != nil {
		b.Fatal(err)
	}
	return a, peer
}

type flushEndpoint interface{ Flush() }

// BenchmarkUdpnetThroughput measures the send-path cost of a sustained
// stream of small casts — the reliable layer's data pattern — and reports
// how many datagrams and syscalls each cast actually cost.
func BenchmarkUdpnetThroughput(b *testing.B) {
	for _, mode := range []struct {
		name string
		mtu  int
	}{
		{"unbatched", -1},
		{"batched", 0}, // DefaultWireMTU
	} {
		b.Run(mode.name, func(b *testing.B) {
			a, peer := benchNet(b, mode.mtu)
			peer.Handle("p", func(netio.NodeID, string, []byte) {})
			payload := make([]byte, 128)
			a.ResetCounters()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Send(2, "p", "data", payload); err != nil {
					b.Fatal(err)
				}
			}
			if f, ok := a.(flushEndpoint); ok {
				f.Flush()
			}
			b.StopTimer()
			c := a.Counters()
			b.ReportMetric(float64(c.TxDatagrams)/float64(b.N), "datagrams/op")
			b.ReportMetric(float64(c.TxSyscalls)/float64(b.N), "syscalls/op")
		})
	}
}

// BenchmarkUdpnetLatency measures a full request/response round trip with
// explicit flushes, pinning what coalescing costs when a single cast is
// on the critical path (the answer must be: one Flush call, not the
// 200µs delay bound).
func BenchmarkUdpnetLatency(b *testing.B) {
	for _, mode := range []struct {
		name string
		mtu  int
	}{
		{"unbatched", -1},
		{"batched", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			a, peer := benchNet(b, mode.mtu)
			done := make(chan struct{}, 1)
			peer.Handle("req", func(src netio.NodeID, _ string, payload []byte) {
				if err := peer.Send(src, "resp", "data", payload); err != nil {
					return
				}
				if f, ok := peer.(flushEndpoint); ok {
					f.Flush()
				}
			})
			a.Handle("resp", func(netio.NodeID, string, []byte) {
				select {
				case done <- struct{}{}:
				default:
				}
			})
			payload := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Send(2, "req", "data", payload); err != nil {
					b.Fatal(err)
				}
				if f, ok := a.(flushEndpoint); ok {
					f.Flush()
				}
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					b.Fatal("round trip lost")
				}
			}
		})
	}
}
