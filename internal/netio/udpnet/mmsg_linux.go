//go:build linux && (amd64 || arm64) && !morpheus_portable

// Vectored wire I/O: sealed datagrams leave through sendmmsg (one kernel
// crossing for a whole drain sweep) and the receive loops pull bursts
// with recvmmsg into a ring of pooled buffers. Anything the raw path
// cannot express — an address family the socket rejects, a failed
// SyscallConn — falls back to the portable per-datagram code in
// mmsg_portable_impl.go, so batching degrades, never breaks.
package udpnet

import (
	"net"
	"syscall"
	"unsafe"
)

// batchMax bounds one sendmmsg call; a drain sweep larger than this is
// split into several syscalls.
const batchMax = 32

// recvRing is the number of datagrams one recvmmsg can return. Each slot
// holds a full maxFrame buffer so no datagram is ever truncated.
const recvRing = 8

// mmsghdr mirrors the kernel's struct mmsghdr (msg_hdr + msg_len, padded
// to 8-byte alignment on 64-bit).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// rawSock caches a socket's RawConn and address family.
type rawSock struct {
	rc  syscall.RawConn
	is6 bool
}

// batchState is the per-endpoint vectored-send scratch: cached raw
// connections and preallocated header/iovec/sockaddr arrays. Only the
// single active drainer touches it (the coalescer's draining flag is the
// mutual exclusion), so nothing here is locked.
type batchState struct {
	raw  map[*net.UDPConn]rawSock
	hdrs [batchMax]mmsghdr
	iovs [batchMax]syscall.Iovec
	sa4  [batchMax]syscall.RawSockaddrInet4
	sa6  [batchMax]syscall.RawSockaddrInet6
}

// rawFor resolves (and caches) the raw connection for a send socket.
func (e *Endpoint) rawFor(conn *net.UDPConn) (syscall.RawConn, bool, bool) {
	bs := &e.batch
	if bs.raw == nil {
		bs.raw = make(map[*net.UDPConn]rawSock, 2)
	}
	if rs, ok := bs.raw[conn]; ok {
		return rs.rc, rs.is6, rs.rc != nil
	}
	rs := rawSock{}
	if rc, err := conn.SyscallConn(); err == nil {
		rs.rc = rc
	}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		// A socket bound to an address with no 4-byte form (including the
		// "::" dual-stack wildcard) takes 16-byte sockaddrs; v4 peers are
		// reached through their v4-mapped form.
		rs.is6 = la.IP.To4() == nil
	}
	bs.raw[conn] = rs
	return rs.rc, rs.is6, rs.rc != nil
}

// htons converts a port to network byte order for the raw sockaddr
// structs (linux/amd64 and linux/arm64 are both little-endian).
func htons(p uint16) uint16 { return p<<8 | p>>8 }

// sockaddr fills slot k's scratch sockaddr for addr and returns the
// kernel pointer/length pair; ok is false when the address does not fit
// the socket's family.
func (bs *batchState) sockaddr(k int, addr *net.UDPAddr, is6 bool) (*byte, uint32, bool) {
	if is6 {
		ip := addr.IP.To16()
		if ip == nil {
			return nil, 0, false
		}
		sa := &bs.sa6[k]
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: htons(uint16(addr.Port))}
		copy(sa.Addr[:], ip)
		return (*byte)(unsafe.Pointer(sa)), syscall.SizeofSockaddrInet6, true
	}
	ip4 := addr.IP.To4()
	if ip4 == nil {
		return nil, 0, false
	}
	sa := &bs.sa4[k]
	*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: htons(uint16(addr.Port))}
	copy(sa.Addr[:], ip4)
	return (*byte)(unsafe.Pointer(sa)), syscall.SizeofSockaddrInet4, true
}

// sendBatch transmits a drain sweep: consecutive datagrams on the same
// socket become one sendmmsg run (destination addresses may differ — the
// kernel takes one per message).
func (e *Endpoint) sendBatch(batch []*dgram) {
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].dest.conn == batch[i].dest.conn && j-i < batchMax {
			j++
		}
		e.sendRun(batch[i].dest.conn, batch[i:j])
		i = j
	}
}

// sendRun pushes one same-socket run through sendmmsg, retrying partial
// sends from the first unsent message.
func (e *Endpoint) sendRun(conn *net.UDPConn, run []*dgram) {
	rc, is6, ok := e.rawFor(conn)
	if !ok {
		e.sendSlow(run)
		return
	}
	bs := &e.batch
	n := len(run)
	for k, d := range run {
		buf := *d.bp
		bs.iovs[k] = syscall.Iovec{Base: &buf[0], Len: uint64(len(buf))}
		name, nlen, ok := bs.sockaddr(k, d.dest.addr, is6)
		if !ok {
			e.sendSlow(run)
			return
		}
		bs.hdrs[k].hdr = syscall.Msghdr{Name: name, Namelen: nlen, Iov: &bs.iovs[k], Iovlen: 1}
		bs.hdrs[k].len = 0
	}
	sent := 0
	for sent < n {
		var nsent int
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			r1, _, en := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&bs.hdrs[sent])), uintptr(n-sent), 0, 0, 0)
			nsent, errno = int(r1), en
			return en != syscall.EAGAIN // false parks until writable
		})
		if werr != nil {
			// Socket closed under us (endpoint shutdown); remaining
			// datagrams are dropped like any unacknowledged UDP write.
			if !e.closed.Load() {
				e.logf("udpnet[%d]: sendmmsg: %v", e.id, werr)
			}
			return
		}
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			// The raw path cannot express this send (family mismatch,
			// odd socket state): degrade to per-datagram writes.
			e.sendSlow(run[sent:])
			return
		}
		e.counters.AddTxSyscall()
		for k := sent; k < sent+nsent; k++ {
			e.counters.AddTxDatagram(len(*run[k].bp))
		}
		if nsent <= 0 {
			e.sendSlow(run[sent:])
			return
		}
		sent += nsent
	}
}

// readLoop drains one socket with recvmmsg bursts; datagram sources are
// identified by the frame header, so no msg_name storage is needed.
func (e *Endpoint) readLoop(conn *net.UDPConn) {
	defer e.wg.Done()
	rc, err := conn.SyscallConn()
	if err != nil {
		e.readLoopPortable(conn)
		return
	}
	var (
		bufs [recvRing][]byte
		hdrs [recvRing]mmsghdr
		iovs [recvRing]syscall.Iovec
	)
	for i := range bufs {
		bufs[i] = make([]byte, maxFrame)
	}
	for {
		// Re-prime every slot: the kernel clobbers len (and may scribble
		// on header fields) on each call.
		for i := range hdrs {
			iovs[i] = syscall.Iovec{Base: &bufs[i][0], Len: maxFrame}
			hdrs[i].hdr = syscall.Msghdr{Iov: &iovs[i], Iovlen: 1}
			hdrs[i].len = 0
		}
		var n int
		var errno syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			r1, _, en := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvRing, 0, 0, 0)
			n, errno = int(r1), en
			return en != syscall.EAGAIN // false parks until readable
		})
		if rerr != nil {
			return // socket closed
		}
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			if e.closed.Load() {
				return
			}
			e.logf("udpnet[%d]: recvmmsg: %v (portable reads from here)", e.id, errno)
			e.readLoopPortable(conn)
			return
		}
		if n <= 0 {
			continue
		}
		e.counters.AddRxSyscall()
		for i := 0; i < n; i++ {
			if e.closed.Load() {
				return
			}
			e.handleDatagram(bufs[i][:hdrs[i].len])
		}
	}
}
