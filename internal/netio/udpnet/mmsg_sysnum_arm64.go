//go:build linux && arm64 && !morpheus_portable

package udpnet

// Vectored UDP syscall numbers for linux/arm64 (ABI-frozen).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
