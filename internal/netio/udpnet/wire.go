package udpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// wireDest identifies one coalescing destination: a send socket and the
// remote address the datagram goes to. The address pointers come from the
// network's resolved directory (or the endpoint's group table), so they
// are stable and usable as map keys.
type wireDest struct {
	conn *net.UDPConn
	addr *net.UDPAddr
}

// dgram is one wire datagram being packed (open) or awaiting transmission
// (sealed). The backing buffer is pooled; frames counts the entries so the
// container header's count field can be patched at seal time.
type dgram struct {
	dest   wireDest
	bp     *[]byte
	frames int
}

// dgramPool recycles dgram headers so the batched send path stays
// allocation-free.
var dgramPool = sync.Pool{New: func() any { return new(dgram) }}

// coalescer packs frames bound for the same destination into container
// datagrams under an MTU budget. Sealed datagrams queue in FIFO order and
// are drained by exactly one goroutine at a time (the sender that sealed
// them, the flush timer, or a Flush caller), which both preserves
// per-destination ordering and amortizes the vectored send syscalls:
// while one drainer is in the kernel, concurrent senders keep packing, and
// their datagrams leave in the drainer's next sweep.
//
// Flush policy, in priority order:
//   - size: an entry that would overflow the open datagram seals it;
//   - delay: the first frame into an idle coalescer arms a clock timer
//     (the delay bound on added latency) that seals everything open;
//   - explicit: Flush seals everything open and waits for the wire.
type coalescer struct {
	ep    *Endpoint
	mtu   int
	delay time.Duration
	clk   clock.Clock

	mu       sync.Mutex
	cond     sync.Cond
	open     map[wireDest]*dgram
	order    []wireDest // seal order for sealAllLocked; may hold stale entries
	ready    []*dgram   // sealed, FIFO
	spare    []*dgram   // recycled backing array for ready
	timer    clock.Timer
	armed    bool
	draining bool
	closed   bool
}

func newCoalescer(ep *Endpoint, mtu int, delay time.Duration, clk clock.Clock) *coalescer {
	c := &coalescer{
		ep:    ep,
		mtu:   mtu,
		delay: delay,
		clk:   clk,
		open:  make(map[wireDest]*dgram),
	}
	c.cond.L = &c.mu
	return c
}

// enqueue coalesces one frame toward dest. The frame is accounted as
// transmitted here — once enqueued it will reach the wire (flush on size,
// timer, Flush, or Close), and a nil return means exactly what the
// unbatched path's nil means: handed to the substrate, not acknowledged.
func (c *coalescer) enqueue(dest wireDest, port, class string, payload []byte) error {
	body := frameBodyLen(port, class, payload)
	entry := uvarintLen(uint64(body)) + body

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("udpnet: endpoint %d %w", c.ep.id, netio.ErrClosed)
	}
	c.ep.counters.AddTx(class, len(payload))
	drain := false
	if containerHdrLen+entry > c.mtu {
		// Oversize bypass: the frame travels alone as a v1 datagram. It is
		// routed through the same sealed FIFO as everything else, behind a
		// seal of its destination's open datagram, so per-destination order
		// survives the detour.
		c.sealLocked(dest)
		bp, err := marshalFrame(c.ep.id, port, class, payload)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		d := dgramPool.Get().(*dgram)
		d.dest, d.bp, d.frames = dest, bp, 1
		c.ready = append(c.ready, d)
		drain = true
	} else {
		d := c.open[dest]
		if d != nil && len(*d.bp)+entry > c.mtu {
			c.sealLocked(dest)
			d = nil
			drain = true
		}
		if d == nil {
			d = dgramPool.Get().(*dgram)
			bp := framePool.Get().(*[]byte)
			b := (*bp)[:0]
			b = append(b, frameMagic, containerVersion)
			b = binary.BigEndian.AppendUint32(b, uint32(c.ep.id))
			b = append(b, 0, 0) // count, patched at seal
			*bp = b
			d.dest, d.bp, d.frames = dest, bp, 0
			c.open[dest] = d
			c.order = append(c.order, dest)
			if !c.armed && c.delay > 0 {
				c.armed = true
				if c.timer == nil {
					c.timer = c.clk.AfterFunc(c.delay, c.flushTimer)
				} else {
					c.timer.Reset(c.delay)
				}
			}
		}
		b := *d.bp
		b = binary.AppendUvarint(b, uint64(body))
		b = appendFrameBody(b, port, class, payload)
		*d.bp = b
		d.frames++
		if c.delay <= 0 {
			// No delay budget: seal immediately. Packing still happens when
			// concurrent senders queue behind an active drainer.
			c.sealLocked(dest)
			drain = true
		}
	}
	if len(c.ready) > 0 {
		drain = drain || !c.draining
	}
	c.mu.Unlock()
	if drain {
		c.drain(false)
	}
	return nil
}

// sealLocked moves dest's open datagram (if any) to the ready FIFO,
// patching the container frame count.
func (c *coalescer) sealLocked(dest wireDest) {
	d := c.open[dest]
	if d == nil {
		return
	}
	delete(c.open, dest)
	binary.BigEndian.PutUint16((*d.bp)[6:8], uint16(d.frames))
	c.ready = append(c.ready, d)
}

// sealAllLocked seals every open datagram in arrival order and disarms
// the flush timer.
func (c *coalescer) sealAllLocked() {
	if c.armed {
		c.armed = false
		c.timer.Stop()
	}
	for _, dest := range c.order {
		c.sealLocked(dest) // no-op for stale entries already sealed by size
	}
	c.order = c.order[:0]
}

// flushTimer is the delay-bound flush: whatever packed while the timer
// ran goes to the wire now.
func (c *coalescer) flushTimer() {
	c.mu.Lock()
	c.armed = false
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.sealAllLocked()
	c.mu.Unlock()
	c.drain(true)
}

// Flush seals everything open and does not return until every datagram
// sealed so far has been handed to the kernel.
func (c *coalescer) Flush() {
	c.mu.Lock()
	c.sealAllLocked()
	c.mu.Unlock()
	c.drain(true)
}

// close seals and drains outstanding datagrams, then refuses further
// frames. Called by Endpoint.Close before the sockets shut.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.sealAllLocked()
	c.mu.Unlock()
	c.drain(true)
}

// drain transmits sealed datagrams. At most one goroutine drains at a
// time; if another drainer is active, drain returns immediately unless
// wait is set, in which case it blocks until the FIFO is empty and no
// drainer is running (the Flush/Close/timer contract).
func (c *coalescer) drain(wait bool) {
	c.mu.Lock()
	for {
		if len(c.ready) == 0 && !c.draining {
			break
		}
		if c.draining {
			if !wait {
				break
			}
			c.cond.Wait()
			continue
		}
		c.draining = true
		batch := c.ready
		c.ready = c.spare
		c.spare = nil
		c.mu.Unlock()

		c.ep.sendBatch(batch)
		for i, d := range batch {
			framePool.Put(d.bp)
			d.bp = nil
			d.dest = wireDest{}
			dgramPool.Put(d)
			batch[i] = nil
		}

		c.mu.Lock()
		c.draining = false
		c.spare = batch[:0]
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}
