package netio

import (
	"sync"
	"sync/atomic"
)

// PortMux is the port-to-handler table every substrate shares. Writers
// (Handle, during channel setup and reconfiguration) serialise on a mutex
// and republish a read-only snapshot; the per-frame lookup on the delivery
// hot path is a lock-free atomic load. The zero value is ready to use.
type PortMux struct {
	mu   sync.Mutex
	m    map[string]Handler
	view atomic.Pointer[map[string]Handler]
}

// Set registers (or, with a nil handler, removes) the receiver for a port.
func (p *PortMux) Set(port string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[string]Handler)
	}
	if h == nil {
		delete(p.m, port)
	} else {
		p.m[port] = h
	}
	view := make(map[string]Handler, len(p.m))
	for k, v := range p.m {
		view[k] = v
	}
	p.view.Store(&view)
}

// Get looks up the receiver for a port without locking.
func (p *PortMux) Get(port string) (Handler, bool) {
	view := p.view.Load()
	if view == nil {
		return nil, false
	}
	h, ok := (*view)[port]
	return h, ok
}
