package vnet

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w := NewWorld(42)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(SegmentConfig{Name: "lan", NativeMulticast: true})
	w.AddSegment(SegmentConfig{Name: "wlan", Wireless: true})
	return w
}

type inbox struct {
	mu   sync.Mutex
	msgs []string
}

func (ib *inbox) handler() Handler {
	return func(src NodeID, port string, payload []byte) {
		ib.mu.Lock()
		defer ib.mu.Unlock()
		ib.msgs = append(ib.msgs, string(payload))
	}
}

func (ib *inbox) list() []string {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	cp := make([]string, len(ib.msgs))
	copy(cp, ib.msgs)
	return cp
}

func TestSendDeliversAndCounts(t *testing.T) {
	w := newTestWorld(t)
	a, err := w.AddNode(1, Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddNode(2, Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	var ib inbox
	b.Handle("p", ib.handler())

	if err := a.Send(2, "p", "data", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := ib.list()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered = %v", got)
	}
	ca, cb := a.Counters(), b.Counters()
	if ca.Tx["data"].Msgs != 1 || ca.Tx["data"].Bytes != 5 {
		t.Fatalf("sender counters = %+v", ca.Tx)
	}
	if cb.Rx["data"].Msgs != 1 {
		t.Fatalf("receiver counters = %+v", cb.Rx)
	}
}

func TestSendToUnknownPortIsDropped(t *testing.T) {
	w := newTestWorld(t)
	a, _ := w.AddNode(1, Fixed, "lan")
	if _, err := w.AddNode(2, Fixed, "lan"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "ghost", "data", []byte("x")); err != nil {
		t.Fatal(err) // drop is silent, like UDP
	}
}

func TestSendUnknownNode(t *testing.T) {
	w := newTestWorld(t)
	a, _ := w.AddNode(1, Fixed, "lan")
	if err := a.Send(99, "p", "data", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestNativeMulticastSingleTransmission(t *testing.T) {
	w := newTestWorld(t)
	sender, _ := w.AddNode(1, Fixed, "lan")
	var boxes [3]inbox
	for i := 0; i < 3; i++ {
		n, err := w.AddNode(NodeID(2+i), Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		n.Handle("p", boxes[i].handler())
	}
	if err := sender.Multicast("lan", "p", "data", []byte("m")); err != nil {
		t.Fatal(err)
	}
	for i := range boxes {
		if got := boxes[i].list(); len(got) != 1 {
			t.Fatalf("receiver %d got %v", i, got)
		}
	}
	if c := sender.Counters(); c.Tx["data"].Msgs != 1 {
		t.Fatalf("multicast counted as %d transmissions, want 1", c.Tx["data"].Msgs)
	}
}

func TestMulticastRequiresCapability(t *testing.T) {
	w := newTestWorld(t)
	m, _ := w.AddNode(1, Mobile, "wlan")
	if err := m.Multicast("wlan", "p", "data", nil); !errors.Is(err, ErrNoMulticast) {
		t.Fatalf("err = %v, want ErrNoMulticast", err)
	}
	if err := m.Multicast("lan", "p", "data", nil); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("err = %v, want ErrNotAttached", err)
	}
}

func TestLossDropsButCountsTx(t *testing.T) {
	w := NewWorld(7)
	defer w.Close()
	w.AddSegment(SegmentConfig{Name: "lossy", Loss: 1.0})
	a, _ := w.AddNode(1, Fixed, "lossy")
	b, _ := w.AddNode(2, Fixed, "lossy")
	var ib inbox
	b.Handle("p", ib.handler())
	for i := 0; i < 10; i++ {
		if err := a.Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := ib.list(); len(got) != 0 {
		t.Fatalf("lossy link delivered %v", got)
	}
	if c := a.Counters(); c.Tx["data"].Msgs != 10 {
		t.Fatalf("tx count = %d, want 10 (radio transmits even when frames are lost)", c.Tx["data"].Msgs)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	w := NewWorld(1)
	defer w.Close()
	w.AddSegment(SegmentConfig{Name: "flaky", Loss: 0.5})
	a, _ := w.AddNode(1, Fixed, "flaky")
	b, _ := w.AddNode(2, Fixed, "flaky")
	var ib inbox
	b.Handle("p", ib.handler())
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := len(ib.list())
	if got < total/3 || got > total*2/3 {
		t.Fatalf("50%% loss delivered %d of %d", got, total)
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	w := newTestWorld(t)
	a, _ := w.AddNode(1, Fixed, "lan")
	b, _ := w.AddNode(2, Fixed, "lan")
	var ib inbox
	b.Handle("p", ib.handler())

	b.SetDown(true)
	if err := a.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(ib.list()) != 0 {
		t.Fatal("crashed node received traffic")
	}
	a.SetDown(true)
	if err := a.Send(2, "p", "data", []byte("x")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send from crashed node: %v", err)
	}
	a.SetDown(false)
	b.SetDown(false)
	if err := a.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(ib.list()) != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestBatteryDrainAndDeath(t *testing.T) {
	w := newTestWorld(t)
	m, _ := w.AddNode(1, Mobile, "wlan")
	f, _ := w.AddNode(2, Fixed, "lan")
	_ = f
	m.SetEnergy(EnergyConfig{CapacityJ: 0.01, TxPerMsgJ: 0.004})

	for i := 0; i < 2; i++ {
		if err := m.Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	j, metered := m.BatteryJ()
	if !metered {
		t.Fatal("battery not metered")
	}
	if j >= 0.01 {
		t.Fatalf("battery did not drain: %v", j)
	}
	// Third send exhausts; subsequent sends fail.
	_ = m.Send(2, "p", "data", []byte("x"))
	if err := m.Send(2, "p", "data", []byte("x")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("dead battery send: %v", err)
	}
	if m.Alive() {
		t.Fatal("node alive with dead battery")
	}
	if m.BatteryFraction() != 0 {
		t.Fatalf("fraction = %v, want 0", m.BatteryFraction())
	}
}

func TestFixedNodeUnmetered(t *testing.T) {
	w := newTestWorld(t)
	f, _ := w.AddNode(1, Fixed, "lan")
	if _, err := w.AddNode(2, Fixed, "lan"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := f.Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if f.BatteryFraction() != 1 {
		t.Fatal("fixed node drained a battery it does not have")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	w.AddSegment(SegmentConfig{Name: "slow", Latency: 30 * time.Millisecond})
	a, _ := w.AddNode(1, Fixed, "slow")
	b, _ := w.AddNode(2, Fixed, "slow")
	done := make(chan time.Time, 1)
	b.Handle("p", func(src NodeID, port string, payload []byte) {
		done <- time.Now()
	})
	start := time.Now()
	if err := a.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-done:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~30ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never delivered")
	}
}

func TestCrossSegmentUnicast(t *testing.T) {
	w := newTestWorld(t)
	m, _ := w.AddNode(1, Mobile, "wlan")
	f, _ := w.AddNode(2, Fixed, "lan")
	var ib inbox
	f.Handle("p", ib.handler())
	if err := m.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(ib.list()) != 1 {
		t.Fatal("cross-segment unicast failed")
	}
}

func TestWorldCloseStopsDeliveries(t *testing.T) {
	w := NewWorld(9)
	w.AddSegment(SegmentConfig{Name: "slow", Latency: 50 * time.Millisecond})
	a, _ := w.AddNode(1, Fixed, "slow")
	b, _ := w.AddNode(2, Fixed, "slow")
	var ib inbox
	b.Handle("p", ib.handler())
	if err := a.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	time.Sleep(80 * time.Millisecond)
	if len(ib.list()) != 0 {
		t.Fatal("delivery happened after Close")
	}
	if err := a.Send(2, "p", "data", []byte("x")); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestResetCounters(t *testing.T) {
	w := newTestWorld(t)
	a, _ := w.AddNode(1, Fixed, "lan")
	if _, err := w.AddNode(2, Fixed, "lan"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	a.ResetCounters()
	if a.Counters().TotalTx() != 0 {
		t.Fatal("counters not reset")
	}
}

// Property: for loss-free segments, every sent message is delivered exactly
// once and tx/rx counters agree, for any interleaving of sends.
func TestConservationProperty(t *testing.T) {
	f := func(sends []uint8) bool {
		w := NewWorld(11)
		defer w.Close()
		w.AddSegment(SegmentConfig{Name: "lan", NativeMulticast: true})
		n1, _ := w.AddNode(1, Fixed, "lan")
		n2, _ := w.AddNode(2, Fixed, "lan")
		var ib1, ib2 inbox
		n1.Handle("p", ib1.handler())
		n2.Handle("p", ib2.handler())
		want1, want2 := 0, 0
		for _, s := range sends {
			if s%2 == 0 {
				if err := n1.Send(2, "p", "data", []byte{s}); err != nil {
					return false
				}
				want2++
			} else {
				if err := n2.Send(1, "p", "data", []byte{s}); err != nil {
					return false
				}
				want1++
			}
		}
		return len(ib1.list()) == want1 && len(ib2.list()) == want2 &&
			n1.Counters().TotalTx() == uint64(want2) &&
			n2.Counters().TotalRx() == uint64(want2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
