package vnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// chaosWorld builds a two-segment world with a few nodes and a delivery
// recorder, on a virtual clock so arrival instants are observable.
func chaosWorld(t *testing.T, seed int64) (*World, *clock.Virtual, map[NodeID]*Node, func(NodeID) int) {
	t.Helper()
	clk := clock.NewVirtual()
	t.Cleanup(clk.Stop)
	w := NewWorldWithClock(seed, clk)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(SegmentConfig{Name: "lan", NativeMulticast: true})

	var mu sync.Mutex
	rx := make(map[NodeID]int)
	nodes := make(map[NodeID]*Node)
	for i := 1; i <= 4; i++ {
		id := NodeID(i)
		n, err := w.AddNode(id, Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		n.Handle("p", func(src NodeID, port string, payload []byte) {
			mu.Lock()
			rx[id]++
			mu.Unlock()
		})
		nodes[id] = n
	}
	got := func(id NodeID) int {
		mu.Lock()
		defer mu.Unlock()
		return rx[id]
	}
	return w, clk, nodes, got
}

// TestLinkLossOverride pins the per-link override semantics: an override
// replaces the segment loss on exactly that directed link, and clearing it
// restores the segment default.
func TestLinkLossOverride(t *testing.T) {
	w, clk, nodes, got := chaosWorld(t, 5)

	// Segment is lossless; cut 1→2 completely, leave 1→3 alone.
	w.SetLinkLoss(1, 2, 1.0)
	for i := 0; i < 10; i++ {
		if err := nodes[1].Send(2, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Send(3, "p", "data", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	clk.Sleep(10 * time.Millisecond)
	if got(2) != 0 {
		t.Fatalf("node 2 received %d frames through a loss=1 link", got(2))
	}
	if got(3) != 10 {
		t.Fatalf("node 3 received %d frames, want 10 (override must not bleed across links)", got(3))
	}

	// The reverse direction 2→1 is unaffected (overrides are directed).
	if err := nodes[2].Send(1, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(10 * time.Millisecond)
	if got(1) != 1 {
		t.Fatalf("node 1 received %d, want 1 (reverse direction must stay clean)", got(1))
	}

	// Clearing (negative loss) restores the segment default.
	w.SetLinkLoss(1, 2, -1)
	if err := nodes[1].Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(10 * time.Millisecond)
	if got(2) != 1 {
		t.Fatalf("node 2 received %d after clear, want 1", got(2))
	}
}

// TestLinkLatencyOverride pins that a latency override replaces the
// segment latency for that link, observable as a shifted arrival instant
// on the virtual timeline, and that multicast honours it per receiver.
func TestLinkLatencyOverride(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := NewWorldWithClock(9, clk)
	defer w.Close()
	w.AddSegment(SegmentConfig{Name: "lan", Latency: time.Millisecond, NativeMulticast: true})

	var mu sync.Mutex
	arrivals := make(map[NodeID]time.Time)
	nodes := make(map[NodeID]*Node)
	for i := 1; i <= 3; i++ {
		id := NodeID(i)
		n, err := w.AddNode(id, Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		n.Handle("p", func(src NodeID, port string, payload []byte) {
			mu.Lock()
			arrivals[id] = clk.Now()
			mu.Unlock()
		})
		nodes[id] = n
	}

	w.SetLinkLatency(1, 2, 50*time.Millisecond)
	start := clk.Now()
	if err := nodes[1].Multicast("lan", "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(100 * time.Millisecond)
	mu.Lock()
	slow, fast := arrivals[2], arrivals[3]
	mu.Unlock()
	if d := slow.Sub(start); d != 50*time.Millisecond {
		t.Fatalf("overridden link delivered after %v, want 50ms", d)
	}
	if d := fast.Sub(start); d != time.Millisecond {
		t.Fatalf("untouched link delivered after %v, want 1ms", d)
	}
}

// TestPartitionHeal pins the cell semantics: cross-cell frames (unicast
// and native multicast) vanish while same-cell frames flow, transmissions
// are still counted at the sender, and Heal restores full connectivity.
func TestPartitionHeal(t *testing.T) {
	w, clk, nodes, got := chaosWorld(t, 7)

	w.Partition([]NodeID{1, 2}, []NodeID{3, 4})
	if err := nodes[1].Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err) // same cell
	}
	if err := nodes[1].Send(3, "p", "data", []byte("x")); err != nil {
		t.Fatal(err) // cross cell: silently lost, as with loss
	}
	txBefore := nodes[1].Counters().TotalTx()
	if txBefore != 2 {
		t.Fatalf("sender counted %d transmissions, want 2 (the radio transmits either way)", txBefore)
	}
	if err := nodes[3].Multicast("lan", "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(10 * time.Millisecond)
	if got(2) != 1 {
		t.Fatalf("node 2 got %d, want 1 (same-cell unicast)", got(2))
	}
	if got(3) != 0 {
		t.Fatalf("node 3 got %d, want 0 (cross-cell unicast cut)", got(3))
	}
	if got(4) != 1 {
		t.Fatalf("node 4 got %d, want 1 (same-cell multicast)", got(4))
	}
	if got(1) != 0 {
		t.Fatalf("node 1 got %d, want 0 (cross-cell multicast cut)", got(1))
	}

	w.Heal()
	if err := nodes[1].Send(3, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(10 * time.Millisecond)
	if got(3) != 1 {
		t.Fatalf("node 3 got %d after heal, want 1", got(3))
	}
}

// TestDetachCrashStop pins Detach against the substrate-uniform Close
// contract that internal/netio/conformancetest enforces on vnet, loopnet
// and udpnet alike: after a crash-stop, the node's sends fail with an
// error matching netio.ErrClosed (exactly as a send on a closed udpnet
// socket does), inbound frames are dropped without a trace, and the node's
// counters stay readable. This is the cross-substrate pin that makes vnet
// crash-stops a faithful stand-in for killing a process on a live UDP
// deployment.
func TestDetachCrashStop(t *testing.T) {
	w, clk, nodes, got := chaosWorld(t, 11)

	if err := w.Detach(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Detach(99); err == nil || !errors.Is(err, netio.ErrUnknownNode) {
		t.Fatalf("detach of unknown node: err = %v, want ErrUnknownNode", err)
	}

	// The crashed node's sends fail exactly like a closed socket's.
	if err := nodes[2].Send(1, "p", "data", []byte("x")); !errors.Is(err, netio.ErrClosed) {
		t.Fatalf("send from detached node: err = %v, want netio.ErrClosed", err)
	}
	if err := nodes[2].Multicast("lan", "p", "data", []byte("x")); !errors.Is(err, netio.ErrClosed) {
		t.Fatalf("multicast from detached node: err = %v, want netio.ErrClosed", err)
	}

	// Inbound traffic is silently dropped; the sender cannot tell.
	if err := nodes[1].Send(2, "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Multicast("lan", "p", "data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(10 * time.Millisecond)
	if got(2) != 0 {
		t.Fatalf("detached node received %d frames", got(2))
	}
	if got(3) != 1 || got(4) != 1 {
		t.Fatalf("live receivers got %d/%d, want 1/1", got(3), got(4))
	}

	// Counters remain readable (the world keeps the node in its topology).
	if tx := nodes[2].Counters().TotalTx(); tx != 0 {
		t.Fatalf("detached node counted %d transmissions", tx)
	}

	// Detach is idempotent, like Close.
	if err := w.Detach(2); err != nil {
		t.Fatalf("second detach: %v", err)
	}
}
