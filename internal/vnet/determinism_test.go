package vnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// runDeterministicScenario drives a fixed op sequence — unicast and native
// multicast over lossy, jittery segments — and returns the per-node counter
// snapshots once all deliveries have settled. With virtual set, the world
// runs on a virtual clock and the settle wait is virtual time.
func runDeterministicScenario(t *testing.T, seed int64, virtual bool) map[NodeID]Counters {
	t.Helper()
	var clk clock.Clock
	if virtual {
		v := clock.NewVirtual()
		defer v.Stop()
		clk = v
	} else {
		clk = clock.Wall()
	}
	w := NewWorldWithClock(seed, clk)
	defer w.Close()
	w.AddSegment(SegmentConfig{
		Name:            "lan",
		Latency:         100 * time.Microsecond,
		Jitter:          50 * time.Microsecond,
		Loss:            0.2,
		NativeMulticast: true,
	})

	const nNodes = 5
	nodes := make([]*Node, 0, nNodes)
	var mu sync.Mutex
	rxSeen := 0
	for i := 1; i <= nNodes; i++ {
		n, err := w.AddNode(NodeID(i), Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		n.Handle("p", func(src NodeID, port string, payload []byte) {
			mu.Lock()
			rxSeen++
			mu.Unlock()
		})
		nodes = append(nodes, n)
	}

	payload := []byte("deterministic-frame")
	for round := 0; round < 40; round++ {
		src := nodes[round%nNodes]
		dst := NodeID(1 + (round+1)%nNodes)
		if err := src.Send(dst, "p", "data", payload); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			if err := src.Multicast("lan", "p", "control", payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wait for the latency scheduler to drain (loss means we cannot know
	// the exact rx count, so settle on quiescence).
	deadline := clk.Now().Add(5 * time.Second)
	last, stable := -1, 0
	for clk.Now().Before(deadline) {
		mu.Lock()
		cur := rxSeen
		mu.Unlock()
		if cur == last {
			stable++
			if stable > 20 {
				break
			}
		} else {
			last, stable = cur, 0
		}
		clk.Sleep(2 * time.Millisecond)
	}

	out := make(map[NodeID]Counters, nNodes)
	for _, n := range nodes {
		out[n.ID()] = n.Counters()
	}
	return out
}

// TestWorldDeterministicReplay locks in the sharding work's replay
// guarantee: identical seeds must produce identical loss/jitter draws and
// therefore identical traffic counters, even though the RNG now sits behind
// its own lock and multicast fan-out iterates a map.
func TestWorldDeterministicReplay(t *testing.T) {
	a := runDeterministicScenario(t, 7, false)
	b := runDeterministicScenario(t, 7, false)
	compareCounterMaps(t, a, b)

	// A different seed must (for this scenario) draw differently somewhere;
	// this guards against the RNG silently not being consulted at all.
	c := runDeterministicScenario(t, 8, false)
	same := true
	for id, ca := range a {
		if c[id].TotalRx() != ca.TotalRx() {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: seeds 7 and 8 produced identical rx totals; loss draws may not be exercised")
	}
}

// TestWorldDeterministicReplayVirtual runs the same lossy, jittery scenario
// on a virtual clock: delayed frames go through the clock's timer heap
// instead of the wall-clock engine, and the replay guarantee must hold
// there too — including the rx side, which under virtual time is exact
// because the settle point is a deterministic virtual instant.
func TestWorldDeterministicReplayVirtual(t *testing.T) {
	a := runDeterministicScenario(t, 7, true)
	b := runDeterministicScenario(t, 7, true)
	compareCounterMaps(t, a, b)
}

// runChaosDeterministicScenario is the fault-overlay variant: the same
// lossy, jittery traffic with partition/heal cycles, per-link loss and
// latency overrides, and a crash-stop injected at fixed rounds. Under a
// virtual clock the entire run — fault windows included — must replay
// counter-identically at equal seeds, which is what lets the chaos plane
// (internal/chaos) treat a seed as a complete failure reproduction.
func runChaosDeterministicScenario(t *testing.T, seed int64) map[NodeID]Counters {
	t.Helper()
	clk := clock.NewVirtual()
	defer clk.Stop()
	w := NewWorldWithClock(seed, clk)
	defer w.Close()
	w.AddSegment(SegmentConfig{
		Name:            "lan",
		Latency:         100 * time.Microsecond,
		Jitter:          50 * time.Microsecond,
		Loss:            0.1,
		NativeMulticast: true,
	})

	const nNodes = 5
	nodes := make([]*Node, 0, nNodes)
	var mu sync.Mutex
	rxSeen := 0
	for i := 1; i <= nNodes; i++ {
		n, err := w.AddNode(NodeID(i), Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		n.Handle("p", func(src NodeID, port string, payload []byte) {
			mu.Lock()
			rxSeen++
			mu.Unlock()
		})
		nodes = append(nodes, n)
	}

	payload := []byte("chaos-frame")
	for round := 0; round < 60; round++ {
		switch round {
		case 10:
			w.Partition([]NodeID{1, 2}, []NodeID{3, 4, 5})
		case 20:
			w.Heal()
			w.SetLinkLoss(2, 3, 0.8)
			w.SetLinkLatency(1, 4, 3*time.Millisecond)
		case 35:
			w.ClearLinkFaults()
		case 45:
			if err := w.Detach(5); err != nil {
				t.Fatal(err)
			}
		}
		src := nodes[round%nNodes]
		dst := NodeID(1 + (round+1)%nNodes)
		if err := src.Send(dst, "p", "data", payload); err != nil && !errorsIsClosed(err) {
			t.Fatal(err)
		}
		if round%3 == 0 {
			if err := src.Multicast("lan", "p", "control", payload); err != nil && !errorsIsClosed(err) {
				t.Fatal(err)
			}
		}
		clk.Sleep(200 * time.Microsecond)
	}

	clk.Sleep(20 * time.Millisecond) // drain the latency scheduler
	out := make(map[NodeID]Counters, nNodes)
	for _, n := range nodes {
		out[n.ID()] = n.Counters()
	}
	return out
}

// errorsIsClosed matches the post-Detach send error (the detached node
// keeps its place in the round-robin send pattern).
func errorsIsClosed(err error) bool { return errors.Is(err, netio.ErrClosed) }

// TestChaosOverlayDeterministicReplay pins the replay guarantee of the
// fault overlay: equal seeds and equal fault timings produce identical
// counters, and the overlay visibly changes the run relative to the
// fault-free scenario (guarding against the overlay silently not being
// consulted).
func TestChaosOverlayDeterministicReplay(t *testing.T) {
	a := runChaosDeterministicScenario(t, 7)
	b := runChaosDeterministicScenario(t, 7)
	compareCounterMaps(t, a, b)
	if rx := a[5].TotalRx(); rx == 0 {
		t.Fatal("node 5 received nothing before its crash-stop; scenario too weak")
	}
}

func compareCounterMaps(t *testing.T, a, b map[NodeID]Counters) {
	t.Helper()
	for id, ca := range a {
		cb := b[id]
		for class, cc := range ca.Tx {
			if cb.Tx[class] != cc {
				t.Fatalf("node %d tx[%s] = %+v vs %+v across identical seeds", id, class, cc, cb.Tx[class])
			}
		}
		for class, cc := range ca.Rx {
			if cb.Rx[class] != cc {
				t.Fatalf("node %d rx[%s] = %+v vs %+v across identical seeds", id, class, cc, cb.Rx[class])
			}
		}
	}
}
