// Package vnet is an in-memory virtual network used as the testbed
// substrate for the Morpheus reproduction. It models the paper's two device
// populations — fixed PCs on a wired LAN and PDAs on an 802.11b cell — as
// segments with configurable latency, jitter, loss, native-multicast
// capability and (for wireless segments) a per-node energy budget.
//
// The quantity the paper measures (messages transmitted per node, split
// into data and control classes) is counted here, at the lowest level, so
// no protocol layer can forget to account for its traffic.
//
// The delivery engine is built for throughput: topology is behind a
// read-write lock, per-node traffic counters are lock-free atomics indexed
// by a small traffic-class enum, the deterministic RNG sits behind its own
// narrow lock, and latency-delayed frames go through a single timer-heap
// goroutine instead of one runtime timer per packet.
package vnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// NodeID aliases the kernel's node identifier.
type NodeID = appia.NodeID

// Kind aliases the substrate device classification (fixed/mobile).
type Kind = netio.Kind

// Device kinds.
const (
	Fixed  = netio.Fixed
	Mobile = netio.Mobile
)

// Errors returned by network operations. Where a substrate-independent
// condition exists the error wraps the netio sentinel, so both
// errors.Is(err, vnet.ErrUnknownNode) and errors.Is(err, netio.ErrUnknownNode)
// match.
var (
	ErrUnknownNode    = fmt.Errorf("vnet: %w", netio.ErrUnknownNode)
	ErrNodeDown       = errors.New("vnet: node is down")
	ErrNoMulticast    = fmt.Errorf("vnet: %w", netio.ErrNoMulticast)
	ErrNotAttached    = fmt.Errorf("vnet: node %w", netio.ErrNotAttached)
	ErrWorldClosed    = fmt.Errorf("vnet: world %w", netio.ErrClosed)
	ErrUnknownSegment = fmt.Errorf("vnet: %w", netio.ErrUnknownSegment)
	ErrFrameTooLarge  = fmt.Errorf("vnet: %w", netio.ErrFrameTooLarge)
)

// Handler aliases the substrate frame receiver; see netio.Handler for the
// borrowed-payload contract.
type Handler = netio.Handler

// SegmentConfig describes one network segment.
type SegmentConfig struct {
	// Name identifies the segment ("lan", "wlan", ...).
	Name string
	// Latency is the one-way propagation delay contributed by this
	// segment; zero means synchronous in-process delivery.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) component to Latency.
	Jitter time.Duration
	// Loss is the independent per-transmission drop probability
	// contributed by this segment, in [0,1].
	Loss float64
	// NativeMulticast enables one-transmission delivery to every node
	// attached to the segment (IP multicast on a LAN).
	NativeMulticast bool
	// Wireless marks the segment as energy-metered: transmissions and
	// receptions by nodes whose primary segment is this one drain their
	// battery.
	Wireless bool
}

// EnergyConfig aliases the substrate battery model; see netio.EnergyConfig.
type EnergyConfig = netio.EnergyConfig

// DefaultMobileEnergy returns a plausible PDA radio budget. Absolute values
// are arbitrary; experiments compare relative lifetimes.
func DefaultMobileEnergy() EnergyConfig {
	return EnergyConfig{
		CapacityJ:  50,
		TxPerMsgJ:  0.002,
		TxPerByteJ: 0.0000020,
		RxPerMsgJ:  0.001,
		RxPerByteJ: 0.0000010,
	}
}

// Traffic accounting aliases; the counter machinery lives in netio so
// every substrate accounts identically.
type (
	// Class is the traffic-class enum counters are indexed by.
	Class = netio.Class
	// ClassCount accumulates message and byte counts for one class.
	ClassCount = netio.ClassCount
	// Counters is a snapshot of a node's traffic, keyed by class.
	Counters = netio.Counters
)

// Traffic classes.
const (
	ClassData    = netio.ClassData
	ClassControl = netio.ClassControl
	ClassOther   = netio.ClassOther
)

// Segment is a broadcast domain.
type Segment struct {
	cfg   SegmentConfig
	nodes map[NodeID]*Node
	// sorted caches the attached nodes in ascending ID order, maintained
	// by AddNode, so the multicast fan-out neither allocates nor sorts
	// per frame — and consumes the deterministic RNG in a reproducible
	// receiver order.
	sorted []*Node
}

// delivery is one latency-delayed frame waiting in the timer heap. seq
// breaks deadline ties in submission order, keeping delivery deterministic.
type delivery struct {
	when  time.Time
	seq   uint64
	src   NodeID
	dst   *Node
	port  string
	class string
	pb    *payloadBuf
	size  int
}

// payloadBuf is a pooled frame buffer. Frames are copied into one at the
// sender, lent to the receiving handler, and recycled when it returns.
type payloadBuf struct {
	b []byte
}

// maxPooledPayload keeps jumbo frames out of the pool.
const maxPooledPayload = 64 << 10

var payloadPool = sync.Pool{New: func() any { return new(payloadBuf) }}

// copyPayload fills a pooled buffer with an owned copy of p.
func copyPayload(p []byte) *payloadBuf {
	pb := payloadPool.Get().(*payloadBuf)
	if cap(pb.b) < len(p) {
		pb.b = make([]byte, len(p))
	}
	copy(pb.b[:len(p)], p)
	return pb
}

// recyclePayload returns a buffer to the pool.
func recyclePayload(pb *payloadBuf) {
	if cap(pb.b) <= maxPooledPayload {
		payloadPool.Put(pb)
	}
}

// World is the simulated network: nodes, segments and the delivery engine.
//
// Locking is sharded so the data plane never funnels through one mutex:
// topology (nodes, segments) is behind an RWMutex that the hot path only
// read-locks; the RNG has its own lock; the timer heap has its own lock.
type World struct {
	mu       sync.RWMutex // topology: nodes and segments
	nodes    map[NodeID]*Node
	segments map[string]*Segment
	// nodesView is a read-only snapshot of nodes, republished on every
	// AddNode, so the per-frame destination lookup is lock-free.
	nodesView atomic.Pointer[map[NodeID]*Node]

	closed atomic.Bool

	// faults is the chaos overlay (chaos.go): per-link loss/latency
	// overrides and partition cells. nil — the overwhelmingly common case —
	// means no fault is installed and the data plane takes the exact
	// pre-overlay path, RNG draw sequence included.
	faults  atomic.Pointer[faultState]
	faultMu sync.Mutex // serializes overlay copy-on-write mutations

	// clk is the world's time plane. With the default wall clock, delayed
	// frames run through the world's own timer-heap engine; with a
	// deterministic *clock.Virtual they become entries of the clock's heap
	// instead, so frame deliveries interleave with protocol timers in one
	// reproducible (deadline, registration) order.
	clk  clock.Clock
	vclk *clock.Virtual

	rngMu sync.Mutex // deterministic RNG; narrow, never held with others
	rng   *rand.Rand

	dmu      sync.Mutex // timer heap state
	heap     []delivery
	seq      uint64
	engineOn bool
	wake     chan struct{}
	inflight sync.WaitGroup
}

// NewWorld creates an empty world with a deterministic RNG, timed by the
// wall clock.
func NewWorld(seed int64) *World { return NewWorldWithClock(seed, nil) }

// NewWorldWithClock creates a world timed by clk (nil means wall clock).
// Passing a *clock.Virtual makes the whole world — frame latencies
// included — part of that clock's deterministic timeline; nodes started on
// the world inherit the clock, so their control planes virtualize too.
func NewWorldWithClock(seed int64, clk clock.Clock) *World {
	w := &World{
		nodes:    make(map[NodeID]*Node),
		segments: make(map[string]*Segment),
		clk:      clock.Or(clk),
		rng:      rand.New(rand.NewSource(seed)),
		wake:     make(chan struct{}, 1),
	}
	w.vclk, _ = w.clk.(*clock.Virtual)
	return w
}

// Clock returns the world's time plane.
func (w *World) Clock() clock.Clock { return w.clk }

// AddSegment registers a segment. Re-adding a name replaces its config but
// keeps attachments.
func (w *World) AddSegment(cfg SegmentConfig) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.segments[cfg.Name]; ok {
		s.cfg = cfg
		return
	}
	w.segments[cfg.Name] = &Segment{cfg: cfg, nodes: make(map[NodeID]*Node)}
}

// SetSegmentLoss changes the loss rate of a segment at run time; this is
// how experiments inject the §2 "network error rate" context change.
func (w *World) SetSegmentLoss(name string, loss float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.segments[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSegment, name)
	}
	s.cfg.Loss = loss
	return nil
}

// SegmentLoss reports a segment's current loss rate. Context retrievers use
// it as a stand-in for the error counters a real NIC driver exposes.
func (w *World) SegmentLoss(name string) (float64, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.segments[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownSegment, name)
	}
	return s.cfg.Loss, nil
}

// Attach implements netio.Network: it creates a node on the listed
// segments and installs the battery model when one is configured. A
// closed world refuses attachments, as every substrate does.
func (w *World) Attach(cfg netio.EndpointConfig) (netio.Endpoint, error) {
	if w.closed.Load() {
		return nil, ErrWorldClosed
	}
	n, err := w.AddNode(cfg.ID, cfg.Kind, cfg.Segments...)
	if err != nil {
		return nil, err
	}
	if cfg.Energy != nil {
		n.SetEnergy(*cfg.Energy)
	}
	return n, nil
}

// AddNode creates a node attached to the listed segments (first one is its
// primary segment, whose characteristics govern its transmissions).
func (w *World) AddNode(id NodeID, kind Kind, segments ...string) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.nodes[id]; dup {
		return nil, fmt.Errorf("vnet: node %d already exists", id)
	}
	n := &Node{
		id:    id,
		kind:  kind,
		world: w,
	}
	for _, segName := range segments {
		s, ok := w.segments[segName]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSegment, segName)
		}
		s.nodes[id] = n
		// Build a fresh slice: Multicast iterates the old one lock-free.
		sorted := make([]*Node, 0, len(s.sorted)+1)
		sorted = append(append(sorted, s.sorted...), n)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
		s.sorted = sorted
		n.segments = append(n.segments, s)
	}
	w.nodes[id] = n
	view := make(map[NodeID]*Node, len(w.nodes))
	for k, v := range w.nodes {
		view[k] = v
	}
	w.nodesView.Store(&view)
	return n, nil
}

// lookupNode resolves a destination without taking the topology lock.
func (w *World) lookupNode(id NodeID) (*Node, bool) {
	view := w.nodesView.Load()
	if view == nil {
		return nil, false
	}
	n, ok := (*view)[id]
	return n, ok
}

// Close stops all pending deliveries and waits for in-flight handlers. It
// implements netio.Network and always returns nil.
func (w *World) Close() error {
	w.dmu.Lock()
	already := w.closed.Swap(true)
	if !already {
		// Drop every queued delivery; each still holds an inflight slot.
		for i := range w.heap {
			recyclePayload(w.heap[i].pb)
			w.inflight.Done()
		}
		w.heap = nil
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	w.dmu.Unlock()
	w.inflight.Wait()
	return nil
}

// Interface conformance: the world is a netio.Network, nodes are
// netio.Endpoints, and the world doubles as the link-loss source for the
// context retrievers.
var (
	_ netio.Network    = (*World)(nil)
	_ netio.Endpoint   = (*Node)(nil)
	_ netio.LossSource = (*World)(nil)
)

// draw returns a deterministic uniform sample in [0,1).
func (w *World) draw() float64 {
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return w.rng.Float64()
}

// drawJitter returns a uniform duration in [0,j).
func (w *World) drawJitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return time.Duration(w.rng.Int63n(int64(j)))
}

// schedule queues a frame for delivery after d; the frame's payload copy
// is made here when one is needed. Zero delay delivers synchronously on
// the caller's goroutine, lending the caller's payload straight to the
// handler; anything else copies into a pooled buffer and goes through the
// timer heap and its single delivery goroutine.
func (w *World) schedule(d time.Duration, payload []byte, dl delivery) {
	if d <= 0 {
		h, ok := dl.dst.accountRx(dl.class, len(payload), dl.port)
		if ok && h != nil {
			h(dl.src, dl.port, payload)
		}
		return
	}
	if w.vclk != nil {
		// Virtual time: the clock's heap is the delivery engine. The fire
		// runs on the clock goroutine at a quiescent point, so same-instant
		// frames deliver in registration order — exactly the (when, seq)
		// rule of the wall engine, now shared with every protocol timer.
		dl.pb, dl.size = copyPayload(payload), len(payload)
		w.vclk.AfterFunc(d, func() {
			if w.closed.Load() {
				recyclePayload(dl.pb)
				return
			}
			w.deliver(dl)
		})
		return
	}
	dl.pb, dl.size = copyPayload(payload), len(payload)
	dl.when = time.Now().Add(d) //lint:wallclock-ok wall-mode delivery path; virtual-clock worlds take the vclk branch above
	w.dmu.Lock()
	if w.closed.Load() {
		w.dmu.Unlock()
		recyclePayload(dl.pb)
		return
	}
	w.inflight.Add(1)
	w.seq++
	dl.seq = w.seq
	w.heapPush(dl)
	// Only wake the engine when this frame became the new minimum (which
	// includes the empty-heap case): later deadlines are already covered by
	// the timer the engine armed, so the common in-order stream of frames
	// costs no goroutine wakeups at all.
	newMin := w.heap[0].seq == dl.seq
	if !w.engineOn {
		w.engineOn = true
		go w.runDeliveries() //lint:goactor-ok the wall-mode delivery engine runs below the clock seam by design
	}
	w.dmu.Unlock()
	if newMin {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// deliver hands one frame to its destination's handler and recycles the
// frame buffer.
func (w *World) deliver(dl delivery) {
	h, ok := dl.dst.accountRx(dl.class, dl.size, dl.port)
	if ok && h != nil {
		h(dl.src, dl.port, dl.pb.b[:dl.size])
	}
	recyclePayload(dl.pb)
}

// runDeliveries is the delivery engine: a single goroutine draining the
// timer heap in deadline order (submission order on ties). It replaces a
// time.AfterFunc — and therefore a runtime timer and a wakeup goroutine —
// per in-flight packet.
func (w *World) runDeliveries() {
	timer := time.NewTimer(time.Hour) //lint:wallclock-ok single wall timer backing the real-time delivery engine
	defer timer.Stop()
	for {
		w.dmu.Lock()
		if len(w.heap) == 0 {
			closed := w.closed.Load()
			w.dmu.Unlock()
			if closed {
				return
			}
			<-w.wake
			continue
		}
		next := w.heap[0].when
		if d := time.Until(next); d > 0 {
			w.dmu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-w.wake:
			}
			continue
		}
		dl := w.heapPop()
		w.dmu.Unlock()
		if !w.closed.Load() {
			w.deliver(dl)
		} else {
			recyclePayload(dl.pb)
		}
		w.inflight.Done()
	}
}

// heapPush inserts into the min-heap ordered by (when, seq). Hand-rolled
// instead of container/heap so entries are not boxed through an interface.
func (w *World) heapPush(dl delivery) {
	h := append(w.heap, dl)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	w.heap = h
}

// heapPop removes and returns the minimum entry.
func (w *World) heapPop() delivery {
	h := w.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = delivery{} // release payload for the GC
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].less(h[small]) {
			small = l
		}
		if r < len(h) && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	w.heap = h
	return top
}

func (d delivery) less(o delivery) bool {
	if d.when.Equal(o.when) {
		return d.seq < o.seq
	}
	return d.when.Before(o.when)
}
