// Package vnet is an in-memory virtual network used as the testbed
// substrate for the Morpheus reproduction. It models the paper's two device
// populations — fixed PCs on a wired LAN and PDAs on an 802.11b cell — as
// segments with configurable latency, jitter, loss, native-multicast
// capability and (for wireless segments) a per-node energy budget.
//
// The quantity the paper measures (messages transmitted per node, split
// into data and control classes) is counted here, at the lowest level, so
// no protocol layer can forget to account for its traffic.
//
// The delivery engine is built for throughput: topology is behind a
// read-write lock, per-node traffic counters are lock-free atomics indexed
// by a small traffic-class enum, the deterministic RNG sits behind its own
// narrow lock, and latency-delayed frames go through a single timer-heap
// goroutine instead of one runtime timer per packet.
package vnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/appia"
)

// NodeID aliases the kernel's node identifier.
type NodeID = appia.NodeID

// Kind classifies a device, mirroring the paper's fixed/mobile split.
type Kind int

// Device kinds.
const (
	Fixed Kind = iota + 1
	Mobile
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Mobile:
		return "mobile"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by network operations.
var (
	ErrUnknownNode    = errors.New("vnet: unknown node")
	ErrNodeDown       = errors.New("vnet: node is down")
	ErrNoMulticast    = errors.New("vnet: segment does not support native multicast")
	ErrNotAttached    = errors.New("vnet: node not attached to segment")
	ErrWorldClosed    = errors.New("vnet: world closed")
	ErrBatteryDead    = errors.New("vnet: battery exhausted")
	ErrUnknownSegment = errors.New("vnet: unknown segment")
)

// ErrUnknownSegGap is the old name of ErrUnknownSegment.
//
// Deprecated: use ErrUnknownSegment.
var ErrUnknownSegGap = ErrUnknownSegment

// Handler receives a payload delivered to a node port. It is invoked on a
// delivery goroutine; implementations must be quick and thread-safe
// (typically they just post into an appia scheduler mailbox). The payload
// slice is borrowed — the sender's scratch buffer or the delivery engine's
// buffer pool — and is only valid for the duration of the call: handlers
// must not modify it, and handlers that retain it must copy.
type Handler func(src NodeID, port string, payload []byte)

// SegmentConfig describes one network segment.
type SegmentConfig struct {
	// Name identifies the segment ("lan", "wlan", ...).
	Name string
	// Latency is the one-way propagation delay contributed by this
	// segment; zero means synchronous in-process delivery.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) component to Latency.
	Jitter time.Duration
	// Loss is the independent per-transmission drop probability
	// contributed by this segment, in [0,1].
	Loss float64
	// NativeMulticast enables one-transmission delivery to every node
	// attached to the segment (IP multicast on a LAN).
	NativeMulticast bool
	// Wireless marks the segment as energy-metered: transmissions and
	// receptions by nodes whose primary segment is this one drain their
	// battery.
	Wireless bool
}

// EnergyConfig is the battery model of a mobile node, loosely following the
// session-based broadcast energy models the paper cites ([20]): a fixed
// per-message cost plus a per-byte cost, with reception cheaper than
// transmission.
type EnergyConfig struct {
	CapacityJ  float64
	TxPerMsgJ  float64
	TxPerByteJ float64
	RxPerMsgJ  float64
	RxPerByteJ float64
}

// DefaultMobileEnergy returns a plausible PDA radio budget. Absolute values
// are arbitrary; experiments compare relative lifetimes.
func DefaultMobileEnergy() EnergyConfig {
	return EnergyConfig{
		CapacityJ:  50,
		TxPerMsgJ:  0.002,
		TxPerByteJ: 0.0000020,
		RxPerMsgJ:  0.001,
		RxPerByteJ: 0.0000010,
	}
}

// Class is the small traffic-class enum the per-node atomic counters are
// indexed by. Accounting strings map onto it via classOf; anything that is
// not "data" or "control" lands in ClassOther.
type Class uint8

// Traffic classes.
const (
	ClassData Class = iota
	ClassControl
	ClassOther
	numClasses
)

// classOf maps an accounting string to its counter index.
func classOf(class string) Class {
	switch class {
	case "data":
		return ClassData
	case "control":
		return ClassControl
	default:
		return ClassOther
	}
}

// String implements fmt.Stringer; it is also the snapshot map key.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassControl:
		return "control"
	default:
		return "other"
	}
}

// ClassCount accumulates message and byte counts for one traffic class.
type ClassCount struct {
	Msgs  uint64
	Bytes uint64
}

// Counters is a snapshot of a node's traffic, keyed by class ("data",
// "control", or "other" for anything else).
type Counters struct {
	Tx map[string]ClassCount
	Rx map[string]ClassCount
}

// TotalTx sums transmitted messages across classes.
func (c Counters) TotalTx() uint64 {
	var n uint64
	for _, cc := range c.Tx {
		n += cc.Msgs
	}
	return n
}

// TotalRx sums received messages across classes.
func (c Counters) TotalRx() uint64 {
	var n uint64
	for _, cc := range c.Rx {
		n += cc.Msgs
	}
	return n
}

// Segment is a broadcast domain.
type Segment struct {
	cfg   SegmentConfig
	nodes map[NodeID]*Node
	// sorted caches the attached nodes in ascending ID order, maintained
	// by AddNode, so the multicast fan-out neither allocates nor sorts
	// per frame — and consumes the deterministic RNG in a reproducible
	// receiver order.
	sorted []*Node
}

// delivery is one latency-delayed frame waiting in the timer heap. seq
// breaks deadline ties in submission order, keeping delivery deterministic.
type delivery struct {
	when  time.Time
	seq   uint64
	src   NodeID
	dst   *Node
	port  string
	class string
	pb    *payloadBuf
	size  int
}

// payloadBuf is a pooled frame buffer. Frames are copied into one at the
// sender, lent to the receiving handler, and recycled when it returns.
type payloadBuf struct {
	b []byte
}

// maxPooledPayload keeps jumbo frames out of the pool.
const maxPooledPayload = 64 << 10

var payloadPool = sync.Pool{New: func() any { return new(payloadBuf) }}

// copyPayload fills a pooled buffer with an owned copy of p.
func copyPayload(p []byte) *payloadBuf {
	pb := payloadPool.Get().(*payloadBuf)
	if cap(pb.b) < len(p) {
		pb.b = make([]byte, len(p))
	}
	copy(pb.b[:len(p)], p)
	return pb
}

// recyclePayload returns a buffer to the pool.
func recyclePayload(pb *payloadBuf) {
	if cap(pb.b) <= maxPooledPayload {
		payloadPool.Put(pb)
	}
}

// World is the simulated network: nodes, segments and the delivery engine.
//
// Locking is sharded so the data plane never funnels through one mutex:
// topology (nodes, segments) is behind an RWMutex that the hot path only
// read-locks; the RNG has its own lock; the timer heap has its own lock.
type World struct {
	mu       sync.RWMutex // topology: nodes and segments
	nodes    map[NodeID]*Node
	segments map[string]*Segment
	// nodesView is a read-only snapshot of nodes, republished on every
	// AddNode, so the per-frame destination lookup is lock-free.
	nodesView atomic.Pointer[map[NodeID]*Node]

	closed atomic.Bool

	rngMu sync.Mutex // deterministic RNG; narrow, never held with others
	rng   *rand.Rand

	dmu      sync.Mutex // timer heap state
	heap     []delivery
	seq      uint64
	engineOn bool
	wake     chan struct{}
	inflight sync.WaitGroup
}

// NewWorld creates an empty world with a deterministic RNG.
func NewWorld(seed int64) *World {
	return &World{
		nodes:    make(map[NodeID]*Node),
		segments: make(map[string]*Segment),
		rng:      rand.New(rand.NewSource(seed)),
		wake:     make(chan struct{}, 1),
	}
}

// AddSegment registers a segment. Re-adding a name replaces its config but
// keeps attachments.
func (w *World) AddSegment(cfg SegmentConfig) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.segments[cfg.Name]; ok {
		s.cfg = cfg
		return
	}
	w.segments[cfg.Name] = &Segment{cfg: cfg, nodes: make(map[NodeID]*Node)}
}

// SetSegmentLoss changes the loss rate of a segment at run time; this is
// how experiments inject the §2 "network error rate" context change.
func (w *World) SetSegmentLoss(name string, loss float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.segments[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSegment, name)
	}
	s.cfg.Loss = loss
	return nil
}

// SegmentLoss reports a segment's current loss rate. Context retrievers use
// it as a stand-in for the error counters a real NIC driver exposes.
func (w *World) SegmentLoss(name string) (float64, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.segments[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownSegment, name)
	}
	return s.cfg.Loss, nil
}

// AddNode creates a node attached to the listed segments (first one is its
// primary segment, whose characteristics govern its transmissions).
func (w *World) AddNode(id NodeID, kind Kind, segments ...string) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.nodes[id]; dup {
		return nil, fmt.Errorf("vnet: node %d already exists", id)
	}
	n := &Node{
		id:       id,
		kind:     kind,
		world:    w,
		handlers: make(map[string]Handler),
	}
	for _, segName := range segments {
		s, ok := w.segments[segName]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSegment, segName)
		}
		s.nodes[id] = n
		// Build a fresh slice: Multicast iterates the old one lock-free.
		sorted := make([]*Node, 0, len(s.sorted)+1)
		sorted = append(append(sorted, s.sorted...), n)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
		s.sorted = sorted
		n.segments = append(n.segments, s)
	}
	w.nodes[id] = n
	view := make(map[NodeID]*Node, len(w.nodes))
	for k, v := range w.nodes {
		view[k] = v
	}
	w.nodesView.Store(&view)
	return n, nil
}

// lookupNode resolves a destination without taking the topology lock.
func (w *World) lookupNode(id NodeID) (*Node, bool) {
	view := w.nodesView.Load()
	if view == nil {
		return nil, false
	}
	n, ok := (*view)[id]
	return n, ok
}

// Node returns a node by ID.
func (w *World) Node(id NodeID) (*Node, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n, ok := w.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n, nil
}

// NodeIDs returns all node IDs in ascending order.
func (w *World) NodeIDs() []NodeID {
	w.mu.RLock()
	defer w.mu.RUnlock()
	ids := make([]NodeID, 0, len(w.nodes))
	for id := range w.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Close stops all pending deliveries and waits for in-flight handlers.
func (w *World) Close() {
	w.dmu.Lock()
	already := w.closed.Swap(true)
	if !already {
		// Drop every queued delivery; each still holds an inflight slot.
		for i := range w.heap {
			recyclePayload(w.heap[i].pb)
			w.inflight.Done()
		}
		w.heap = nil
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	w.dmu.Unlock()
	w.inflight.Wait()
}

// draw returns a deterministic uniform sample in [0,1).
func (w *World) draw() float64 {
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return w.rng.Float64()
}

// drawJitter returns a uniform duration in [0,j).
func (w *World) drawJitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return time.Duration(w.rng.Int63n(int64(j)))
}

// schedule queues a frame for delivery after d; the frame's payload copy
// is made here when one is needed. Zero delay delivers synchronously on
// the caller's goroutine, lending the caller's payload straight to the
// handler; anything else copies into a pooled buffer and goes through the
// timer heap and its single delivery goroutine.
func (w *World) schedule(d time.Duration, payload []byte, dl delivery) {
	if d <= 0 {
		h, ok := dl.dst.accountRx(dl.class, len(payload), dl.port)
		if ok && h != nil {
			h(dl.src, dl.port, payload)
		}
		return
	}
	dl.pb, dl.size = copyPayload(payload), len(payload)
	dl.when = time.Now().Add(d)
	w.dmu.Lock()
	if w.closed.Load() {
		w.dmu.Unlock()
		recyclePayload(dl.pb)
		return
	}
	w.inflight.Add(1)
	w.seq++
	dl.seq = w.seq
	w.heapPush(dl)
	// Only wake the engine when this frame became the new minimum (which
	// includes the empty-heap case): later deadlines are already covered by
	// the timer the engine armed, so the common in-order stream of frames
	// costs no goroutine wakeups at all.
	newMin := w.heap[0].seq == dl.seq
	if !w.engineOn {
		w.engineOn = true
		go w.runDeliveries()
	}
	w.dmu.Unlock()
	if newMin {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// deliver hands one frame to its destination's handler and recycles the
// frame buffer.
func (w *World) deliver(dl delivery) {
	h, ok := dl.dst.accountRx(dl.class, dl.size, dl.port)
	if ok && h != nil {
		h(dl.src, dl.port, dl.pb.b[:dl.size])
	}
	recyclePayload(dl.pb)
}

// runDeliveries is the delivery engine: a single goroutine draining the
// timer heap in deadline order (submission order on ties). It replaces a
// time.AfterFunc — and therefore a runtime timer and a wakeup goroutine —
// per in-flight packet.
func (w *World) runDeliveries() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.dmu.Lock()
		if len(w.heap) == 0 {
			closed := w.closed.Load()
			w.dmu.Unlock()
			if closed {
				return
			}
			<-w.wake
			continue
		}
		next := w.heap[0].when
		if d := time.Until(next); d > 0 {
			w.dmu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-w.wake:
			}
			continue
		}
		dl := w.heapPop()
		w.dmu.Unlock()
		if !w.closed.Load() {
			w.deliver(dl)
		} else {
			recyclePayload(dl.pb)
		}
		w.inflight.Done()
	}
}

// heapPush inserts into the min-heap ordered by (when, seq). Hand-rolled
// instead of container/heap so entries are not boxed through an interface.
func (w *World) heapPush(dl delivery) {
	h := append(w.heap, dl)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	w.heap = h
}

// heapPop removes and returns the minimum entry.
func (w *World) heapPop() delivery {
	h := w.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = delivery{} // release payload for the GC
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].less(h[small]) {
			small = l
		}
		if r < len(h) && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	w.heap = h
	return top
}

func (d delivery) less(o delivery) bool {
	if d.when.Equal(o.when) {
		return d.seq < o.seq
	}
	return d.when.Before(o.when)
}
