// Package vnet is an in-memory virtual network used as the testbed
// substrate for the Morpheus reproduction. It models the paper's two device
// populations — fixed PCs on a wired LAN and PDAs on an 802.11b cell — as
// segments with configurable latency, jitter, loss, native-multicast
// capability and (for wireless segments) a per-node energy budget.
//
// The quantity the paper measures (messages transmitted per node, split
// into data and control classes) is counted here, at the lowest level, so
// no protocol layer can forget to account for its traffic.
package vnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"morpheus/internal/appia"
)

// NodeID aliases the kernel's node identifier.
type NodeID = appia.NodeID

// Kind classifies a device, mirroring the paper's fixed/mobile split.
type Kind int

// Device kinds.
const (
	Fixed Kind = iota + 1
	Mobile
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Mobile:
		return "mobile"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by network operations.
var (
	ErrUnknownNode   = errors.New("vnet: unknown node")
	ErrNodeDown      = errors.New("vnet: node is down")
	ErrNoMulticast   = errors.New("vnet: segment does not support native multicast")
	ErrNotAttached   = errors.New("vnet: node not attached to segment")
	ErrWorldClosed   = errors.New("vnet: world closed")
	ErrBatteryDead   = errors.New("vnet: battery exhausted")
	ErrUnknownSegGap = errors.New("vnet: unknown segment")
)

// Handler receives a payload delivered to a node port. It is invoked on a
// delivery goroutine; implementations must be quick and thread-safe
// (typically they just post into an appia scheduler mailbox).
type Handler func(src NodeID, port string, payload []byte)

// SegmentConfig describes one network segment.
type SegmentConfig struct {
	// Name identifies the segment ("lan", "wlan", ...).
	Name string
	// Latency is the one-way propagation delay contributed by this
	// segment; zero means synchronous in-process delivery.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) component to Latency.
	Jitter time.Duration
	// Loss is the independent per-transmission drop probability
	// contributed by this segment, in [0,1].
	Loss float64
	// NativeMulticast enables one-transmission delivery to every node
	// attached to the segment (IP multicast on a LAN).
	NativeMulticast bool
	// Wireless marks the segment as energy-metered: transmissions and
	// receptions by nodes whose primary segment is this one drain their
	// battery.
	Wireless bool
}

// EnergyConfig is the battery model of a mobile node, loosely following the
// session-based broadcast energy models the paper cites ([20]): a fixed
// per-message cost plus a per-byte cost, with reception cheaper than
// transmission.
type EnergyConfig struct {
	CapacityJ  float64
	TxPerMsgJ  float64
	TxPerByteJ float64
	RxPerMsgJ  float64
	RxPerByteJ float64
}

// DefaultMobileEnergy returns a plausible PDA radio budget. Absolute values
// are arbitrary; experiments compare relative lifetimes.
func DefaultMobileEnergy() EnergyConfig {
	return EnergyConfig{
		CapacityJ:  50,
		TxPerMsgJ:  0.002,
		TxPerByteJ: 0.0000020,
		RxPerMsgJ:  0.001,
		RxPerByteJ: 0.0000010,
	}
}

// ClassCount accumulates message and byte counts for one traffic class.
type ClassCount struct {
	Msgs  uint64
	Bytes uint64
}

// Counters is a snapshot of a node's traffic, keyed by class ("data",
// "control", ...).
type Counters struct {
	Tx map[string]ClassCount
	Rx map[string]ClassCount
}

// TotalTx sums transmitted messages across classes.
func (c Counters) TotalTx() uint64 {
	var n uint64
	for _, cc := range c.Tx {
		n += cc.Msgs
	}
	return n
}

// TotalRx sums received messages across classes.
func (c Counters) TotalRx() uint64 {
	var n uint64
	for _, cc := range c.Rx {
		n += cc.Msgs
	}
	return n
}

// Segment is a broadcast domain.
type Segment struct {
	cfg   SegmentConfig
	nodes map[NodeID]*Node
}

// World is the simulated network: nodes, segments and the delivery engine.
type World struct {
	mu       sync.Mutex
	nodes    map[NodeID]*Node
	segments map[string]*Segment
	rng      *rand.Rand
	closed   bool
	timers   map[*time.Timer]struct{}
	inflight sync.WaitGroup
}

// NewWorld creates an empty world with a deterministic RNG.
func NewWorld(seed int64) *World {
	return &World{
		nodes:    make(map[NodeID]*Node),
		segments: make(map[string]*Segment),
		rng:      rand.New(rand.NewSource(seed)),
		timers:   make(map[*time.Timer]struct{}),
	}
}

// AddSegment registers a segment. Re-adding a name replaces its config but
// keeps attachments.
func (w *World) AddSegment(cfg SegmentConfig) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.segments[cfg.Name]; ok {
		s.cfg = cfg
		return
	}
	w.segments[cfg.Name] = &Segment{cfg: cfg, nodes: make(map[NodeID]*Node)}
}

// SetSegmentLoss changes the loss rate of a segment at run time; this is
// how experiments inject the §2 "network error rate" context change.
func (w *World) SetSegmentLoss(name string, loss float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.segments[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSegGap, name)
	}
	s.cfg.Loss = loss
	return nil
}

// SegmentLoss reports a segment's current loss rate. Context retrievers use
// it as a stand-in for the error counters a real NIC driver exposes.
func (w *World) SegmentLoss(name string) (float64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.segments[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownSegGap, name)
	}
	return s.cfg.Loss, nil
}

// AddNode creates a node attached to the listed segments (first one is its
// primary segment, whose characteristics govern its transmissions).
func (w *World) AddNode(id NodeID, kind Kind, segments ...string) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.nodes[id]; dup {
		return nil, fmt.Errorf("vnet: node %d already exists", id)
	}
	n := &Node{
		id:       id,
		kind:     kind,
		world:    w,
		handlers: make(map[string]Handler),
		tx:       make(map[string]ClassCount),
		rx:       make(map[string]ClassCount),
	}
	for _, segName := range segments {
		s, ok := w.segments[segName]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSegGap, segName)
		}
		s.nodes[id] = n
		n.segments = append(n.segments, s)
	}
	w.nodes[id] = n
	return n, nil
}

// Node returns a node by ID.
func (w *World) Node(id NodeID) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, ok := w.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n, nil
}

// NodeIDs returns all node IDs in ascending order.
func (w *World) NodeIDs() []NodeID {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]NodeID, 0, len(w.nodes))
	for id := range w.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Close stops all pending deliveries and waits for in-flight handlers.
func (w *World) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.inflight.Wait()
		return
	}
	w.closed = true
	for t := range w.timers {
		if t.Stop() {
			// The callback will never run; release its in-flight slot.
			w.inflight.Done()
		}
	}
	w.timers = make(map[*time.Timer]struct{})
	w.mu.Unlock()
	w.inflight.Wait()
}

// draw returns a deterministic uniform sample in [0,1).
func (w *World) draw() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rng.Float64()
}

// drawJitter returns a uniform duration in [0,j).
func (w *World) drawJitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Duration(w.rng.Int63n(int64(j)))
}

// schedule runs fn after d, tracking the timer for Close. Zero delay runs
// fn synchronously on the caller's goroutine.
func (w *World) schedule(d time.Duration, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.inflight.Add(1)
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		defer w.inflight.Done()
		w.mu.Lock()
		delete(w.timers, t)
		closed := w.closed
		w.mu.Unlock()
		if !closed {
			fn()
		}
	})
	w.timers[t] = struct{}{}
	w.mu.Unlock()
}
