package vnet_test

import (
	"testing"

	"morpheus/internal/netio"
	"morpheus/internal/netio/conformancetest"
	"morpheus/internal/vnet"
)

// TestNetioConformance runs the substrate conformance suite against the
// simulator with a lossless, zero-latency segment (deliveries synchronous).
func TestNetioConformance(t *testing.T) {
	conformancetest.Run(t, conformancetest.Harness{
		New: func(t *testing.T) netio.Network {
			w := vnet.NewWorld(1)
			w.AddSegment(vnet.SegmentConfig{Name: "conf", NativeMulticast: true})
			return w
		},
		Segment:     "conf",
		Multicast:   true,
		Synchronous: true,
	})
}
