package vnet

import (
	"sync/atomic"
	"testing"
	"time"
)

// benchWorld builds a two-node wired world with the given segment latency.
func benchWorld(b *testing.B, latency time.Duration) (*World, *Node, *atomic.Uint64) {
	b.Helper()
	w := NewWorld(1)
	w.AddSegment(SegmentConfig{Name: "lan", Latency: latency})
	a, err := w.AddNode(1, Fixed, "lan")
	if err != nil {
		b.Fatal(err)
	}
	recv, err := w.AddNode(2, Fixed, "lan")
	if err != nil {
		b.Fatal(err)
	}
	var got atomic.Uint64
	recv.Handle("p", func(src NodeID, port string, payload []byte) {
		got.Add(1)
	})
	return w, a, &got
}

// BenchmarkVnetDelivery measures the frame delivery engine: the "sync" case
// is the zero-latency in-process path (pure lock and accounting overhead);
// the "timed" case pushes every frame through the latency scheduler, which
// is where per-packet time.AfterFunc vs a single timer heap shows up.
func BenchmarkVnetDelivery(b *testing.B) {
	b.Run("sync", func(b *testing.B) {
		w, a, got := benchWorld(b, 0)
		defer w.Close()
		payload := make([]byte, 128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(2, "p", "data", payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if int(got.Load()) != b.N {
			b.Fatalf("delivered %d, want %d", got.Load(), b.N)
		}
	})
	b.Run("timed", func(b *testing.B) {
		w, a, got := benchWorld(b, 200*time.Microsecond)
		defer w.Close()
		payload := make([]byte, 128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(2, "p", "data", payload); err != nil {
				b.Fatal(err)
			}
		}
		for int(got.Load()) != b.N {
			time.Sleep(50 * time.Microsecond)
		}
	})
}
