package vnet

import (
	"fmt"
	"sync"
	"time"
)

// Node is one simulated device.
type Node struct {
	id    NodeID
	kind  Kind
	world *World

	mu       sync.Mutex
	segments []*Segment // first is the primary segment
	handlers map[string]Handler
	tx       map[string]ClassCount
	rx       map[string]ClassCount
	down     bool
	energy   *EnergyConfig // nil: unmetered
	chargeJ  float64       // remaining battery
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// World returns the world this node belongs to.
func (n *Node) World() *World { return n.world }

// Kind returns the device kind.
func (n *Node) Kind() Kind { return n.kind }

// SetEnergy installs a battery model (typically only for mobile nodes).
func (n *Node) SetEnergy(cfg EnergyConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := cfg
	n.energy = &c
	n.chargeJ = cfg.CapacityJ
}

// BatteryJ returns the remaining charge in joules; +Inf semantics are
// represented by (level, false) when no battery model is installed.
func (n *Node) BatteryJ() (joules float64, metered bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.energy == nil {
		return 0, false
	}
	return n.chargeJ, true
}

// BatteryFraction returns remaining charge as a fraction of capacity, or 1
// if unmetered.
func (n *Node) BatteryFraction() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.energy == nil || n.energy.CapacityJ <= 0 {
		return 1
	}
	f := n.chargeJ / n.energy.CapacityJ
	if f < 0 {
		return 0
	}
	return f
}

// Alive reports whether the node is up and, if metered, has charge left.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.aliveLocked()
}

func (n *Node) aliveLocked() bool {
	if n.down {
		return false
	}
	if n.energy != nil && n.chargeJ <= 0 {
		return false
	}
	return true
}

// SetDown crashes (true) or revives (false) the node. A crashed node
// neither sends nor receives; the failure detectors above will evict it.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Handle registers (or, with a nil handler, removes) the receiver for a
// port. Ports isolate channels and configuration epochs: traffic addressed
// to an unregistered port is silently dropped, which is exactly what
// happens to stale pre-reconfiguration packets.
func (n *Node) Handle(port string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, port)
		return
	}
	n.handlers[port] = h
}

// Counters returns a snapshot of the node's traffic counters.
func (n *Node) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := Counters{Tx: make(map[string]ClassCount, len(n.tx)), Rx: make(map[string]ClassCount, len(n.rx))}
	for k, v := range n.tx {
		c.Tx[k] = v
	}
	for k, v := range n.rx {
		c.Rx[k] = v
	}
	return c
}

// ResetCounters zeroes the traffic counters (between experiment phases).
func (n *Node) ResetCounters() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tx = make(map[string]ClassCount)
	n.rx = make(map[string]ClassCount)
}

// primary returns the node's primary segment, or nil if detached.
func (n *Node) primary() *Segment {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.segments) == 0 {
		return nil
	}
	return n.segments[0]
}

// accountTx counts one transmission and drains the battery; it reports
// whether the node was able to transmit.
func (n *Node) accountTx(class string, size int, wireless bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.aliveLocked() {
		return false
	}
	cc := n.tx[class]
	cc.Msgs++
	cc.Bytes += uint64(size)
	n.tx[class] = cc
	if wireless && n.energy != nil {
		n.chargeJ -= n.energy.TxPerMsgJ + n.energy.TxPerByteJ*float64(size)
	}
	return true
}

// accountRx counts one reception and drains the battery; it reports whether
// the node accepted the frame and returns the handler for the port.
func (n *Node) accountRx(class string, size int, port string) (Handler, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.aliveLocked() {
		return nil, false
	}
	cc := n.rx[class]
	cc.Msgs++
	cc.Bytes += uint64(size)
	n.rx[class] = cc
	wireless := len(n.segments) > 0 && n.segments[0].cfg.Wireless
	if wireless && n.energy != nil {
		n.chargeJ -= n.energy.RxPerMsgJ + n.energy.RxPerByteJ*float64(size)
	}
	h, ok := n.handlers[port]
	return h, ok
}

// Send transmits payload point-to-point to dst's port. The transmission is
// counted (and battery drained) even if the frame is subsequently lost,
// which matches how a radio behaves. Loss and latency combine the sender's
// and receiver's primary segments.
func (n *Node) Send(dst NodeID, port, class string, payload []byte) error {
	w := n.world
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWorldClosed
	}
	dn, ok := w.nodes[dst]
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}

	if dst == n.id {
		// Loopback: stays in the host, never touches the NIC, so it is
		// neither counted nor energy-metered.
		if !n.Alive() {
			return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
		}
		n.deliverLoopback(dn, port, payload)
		return nil
	}
	sseg := n.primary()
	if sseg == nil {
		return fmt.Errorf("%w: node %d", ErrNotAttached, n.id)
	}
	if !n.accountTx(class, len(payload), sseg.cfg.Wireless) {
		return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
	}

	dseg := dn.primary()
	loss := sseg.cfg.Loss
	lat := sseg.cfg.Latency + w.drawJitter(sseg.cfg.Jitter)
	if dseg != nil && dseg != sseg {
		loss = 1 - (1-loss)*(1-dseg.cfg.Loss)
		lat += dseg.cfg.Latency + w.drawJitter(dseg.cfg.Jitter)
	}
	if loss > 0 && w.draw() < loss {
		return nil // lost in transit; sender cannot tell
	}
	n.deliverCopy(n.id, dn, port, class, payload, lat)
	return nil
}

// Multicast performs a native multicast on the named segment: one counted
// transmission, delivered to every other attached node (subject to
// per-receiver loss). Returns ErrNoMulticast if the segment does not
// support it.
func (n *Node) Multicast(segment, port, class string, payload []byte) error {
	w := n.world
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWorldClosed
	}
	seg, ok := w.segments[segment]
	if !ok {
		w.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSegGap, segment)
	}
	if _, attached := seg.nodes[n.id]; !attached {
		w.mu.Unlock()
		return fmt.Errorf("%w: node %d not on %q", ErrNotAttached, n.id, segment)
	}
	if !seg.cfg.NativeMulticast {
		w.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoMulticast, segment)
	}
	receivers := make([]*Node, 0, len(seg.nodes))
	for id, rn := range seg.nodes {
		if id != n.id {
			receivers = append(receivers, rn)
		}
	}
	cfg := seg.cfg
	w.mu.Unlock()

	if !n.accountTx(class, len(payload), cfg.Wireless) {
		return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
	}
	for _, rn := range receivers {
		if cfg.Loss > 0 && w.draw() < cfg.Loss {
			continue
		}
		lat := cfg.Latency + w.drawJitter(cfg.Jitter)
		n.deliverCopy(n.id, rn, port, class, payload, lat)
	}
	return nil
}

// deliverLoopback hands a copy straight to the local handler, bypassing
// accounting.
func (n *Node) deliverLoopback(dst *Node, port string, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	dst.mu.Lock()
	h, ok := dst.handlers[port]
	dst.mu.Unlock()
	if !ok || h == nil {
		return
	}
	h(n.id, port, cp)
}

// deliverCopy schedules delivery of an owned copy of payload after the
// given latency (zero means synchronous delivery on this goroutine).
func (n *Node) deliverCopy(src NodeID, dst *Node, port, class string, payload []byte, after time.Duration) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.world.schedule(after, func() {
		h, ok := dst.accountRx(class, len(cp), port)
		if !ok || h == nil {
			return // dead node or unregistered port: frame dropped
		}
		h(src, port, cp)
	})
}
