package vnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"morpheus/internal/clock"
	"morpheus/internal/netio"
)

// Node is one simulated device; it implements netio.Endpoint.
//
// The accounting hot path is lock-free: liveness flags are atomics and the
// per-class counters are atomic arrays indexed by the Class enum (the
// shared netio.CounterSet). The energy model (only consulted when a
// battery is installed) and the port handler table have their own narrow
// locks.
type Node struct {
	id    NodeID
	kind  Kind
	world *World

	// segments is set once by AddNode, before the node is visible to any
	// other goroutine, and never mutated afterwards.
	segments []*Segment // first is the primary segment

	down    atomic.Bool
	closed  atomic.Bool // set by Close; sends then fail with netio.ErrClosed
	metered atomic.Bool // true once SetEnergy installs a battery model

	counters netio.CounterSet
	ports    netio.PortMux

	mu      sync.Mutex    // battery state
	energy  *EnergyConfig // nil: unmetered
	chargeJ float64       // remaining battery
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// World returns the world this node belongs to.
func (n *Node) World() *World { return n.world }

// Clock returns the world's time plane. The morpheus facade uses it to
// default a node's clock to its substrate's, so nodes attached to a
// virtual-clock world virtualize their control planes automatically.
func (n *Node) Clock() clock.Clock { return n.world.clk }

// Kind returns the device kind.
func (n *Node) Kind() Kind { return n.kind }

// SetEnergy installs a battery model (typically only for mobile nodes).
func (n *Node) SetEnergy(cfg EnergyConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := cfg
	n.energy = &c
	n.chargeJ = cfg.CapacityJ
	n.metered.Store(true)
}

// BatteryJ returns the remaining charge in joules; +Inf semantics are
// represented by (level, false) when no battery model is installed.
func (n *Node) BatteryJ() (joules float64, metered bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.energy == nil {
		return 0, false
	}
	return n.chargeJ, true
}

// BatteryFraction returns remaining charge as a fraction of capacity, or 1
// if unmetered.
func (n *Node) BatteryFraction() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.energy == nil || n.energy.CapacityJ <= 0 {
		return 1
	}
	f := n.chargeJ / n.energy.CapacityJ
	if f < 0 {
		return 0
	}
	return f
}

// Alive reports whether the node is up and, if metered, has charge left.
func (n *Node) Alive() bool {
	if n.down.Load() {
		return false
	}
	if n.metered.Load() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.energy != nil && n.chargeJ <= 0 {
			return false
		}
	}
	return true
}

// SetDown crashes (true) or revives (false) the node. A crashed node
// neither sends nor receives; the failure detectors above will evict it.
func (n *Node) SetDown(down bool) {
	n.down.Store(down)
}

// Close implements netio.Endpoint: it takes the node down for good (it
// stops sending and receiving, as an unplugged device would). The node
// stays in the world's topology so its traffic counters remain readable.
// Close is idempotent and safe to race with sends, which subsequently
// fail with an error matching netio.ErrClosed, as on every substrate.
func (n *Node) Close() error {
	n.closed.Store(true)
	n.down.Store(true)
	return nil
}

// errIfClosed returns the substrate-uniform post-Close send error.
func (n *Node) errIfClosed() error {
	if n.closed.Load() {
		return fmt.Errorf("vnet: node %d %w", n.id, netio.ErrClosed)
	}
	return nil
}

// Handle registers (or, with a nil handler, removes) the receiver for a
// port. Ports isolate channels and configuration epochs: traffic addressed
// to an unregistered port is silently dropped, which is exactly what
// happens to stale pre-reconfiguration packets.
func (n *Node) Handle(port string, h Handler) {
	n.ports.Set(port, h)
}

// Counters returns a snapshot of the node's traffic counters. Classes other
// than "data" and "control" are aggregated under "other". The counters are
// independent atomics, so a snapshot (or reset) taken while traffic is in
// flight can be off by the frame being accounted; take them at phase
// boundaries, as the experiments do, for exact values.
func (n *Node) Counters() Counters {
	return n.counters.Snapshot()
}

// ResetCounters zeroes the traffic counters (between experiment phases).
func (n *Node) ResetCounters() {
	n.counters.Reset()
}

// primary returns the node's primary segment, or nil if detached. segments
// is immutable after construction, so no lock is needed.
func (n *Node) primary() *Segment {
	if len(n.segments) == 0 {
		return nil
	}
	return n.segments[0]
}

// drainBattery charges the battery for one frame if the node is metered;
// it reports false when the battery was already exhausted. With no battery
// installed it is a single atomic load.
func (n *Node) drainBattery(tx bool, size int, wireless bool) bool {
	if !n.metered.Load() {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.energy == nil {
		return true
	}
	if n.chargeJ <= 0 {
		return false
	}
	if wireless {
		if tx {
			n.chargeJ -= n.energy.TxPerMsgJ + n.energy.TxPerByteJ*float64(size)
		} else {
			n.chargeJ -= n.energy.RxPerMsgJ + n.energy.RxPerByteJ*float64(size)
		}
	}
	return true
}

// accountTx counts one transmission and drains the battery; it reports
// whether the node was able to transmit.
func (n *Node) accountTx(class string, size int, wireless bool) bool {
	if n.down.Load() {
		return false
	}
	if !n.drainBattery(true, size, wireless) {
		return false
	}
	n.counters.AddTx(class, size)
	// One simulated frame is one datagram and one nominal syscall, so the
	// wire-level counters stay comparable with the batching substrate.
	n.counters.AddTxDatagram(size)
	n.counters.AddTxSyscall()
	return true
}

// accountRx counts one reception and drains the battery; it reports whether
// the node accepted the frame and returns the handler for the port.
func (n *Node) accountRx(class string, size int, port string) (Handler, bool) {
	if n.down.Load() {
		return nil, false
	}
	wireless := len(n.segments) > 0 && n.segments[0].cfg.Wireless
	if !n.drainBattery(false, size, wireless) {
		return nil, false
	}
	n.counters.AddRx(class, size)
	n.counters.AddRxDatagram(size)
	n.counters.AddRxSyscall()
	return n.ports.Get(port)
}

// Send transmits payload point-to-point to dst's port. The transmission is
// counted (and battery drained) even if the frame is subsequently lost,
// which matches how a radio behaves. Loss and latency combine the sender's
// and receiver's primary segments.
func (n *Node) Send(dst NodeID, port, class string, payload []byte) error {
	w := n.world
	if w.closed.Load() {
		return ErrWorldClosed
	}
	if err := n.errIfClosed(); err != nil {
		return err
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	dn, ok := w.lookupNode(dst)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}

	if dst == n.id {
		// Loopback: stays in the host, never touches the NIC, so it is
		// neither counted nor energy-metered.
		if !n.Alive() {
			return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
		}
		n.deliverLoopback(dn, port, payload)
		return nil
	}
	sseg := n.primary()
	if sseg == nil {
		return fmt.Errorf("%w: node %d", ErrNotAttached, n.id)
	}
	if !n.accountTx(class, len(payload), sseg.cfg.Wireless) {
		return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
	}

	fs := w.faults.Load()
	if fs != nil && fs.cut(n.id, dst) {
		return nil // partitioned: transmitted into a medium that cannot reach dst
	}
	dseg := dn.primary()
	loss := sseg.cfg.Loss
	lat := sseg.cfg.Latency + w.drawJitter(sseg.cfg.Jitter)
	if dseg != nil && dseg != sseg {
		loss = 1 - (1-loss)*(1-dseg.cfg.Loss)
		lat += dseg.cfg.Latency + w.drawJitter(dseg.cfg.Jitter)
	}
	if fs != nil {
		loss, lat = fs.override(n.id, dst, loss, lat)
	}
	if loss > 0 && w.draw() < loss {
		return nil // lost in transit; sender cannot tell
	}
	n.deliverCopy(n.id, dn, port, class, payload, lat)
	return nil
}

// Multicast performs a native multicast on the named segment: one counted
// transmission, delivered to every other attached node (subject to
// per-receiver loss). Returns ErrNoMulticast if the segment does not
// support it.
func (n *Node) Multicast(segment, port, class string, payload []byte) error {
	w := n.world
	if w.closed.Load() {
		return ErrWorldClosed
	}
	if err := n.errIfClosed(); err != nil {
		return err
	}
	if len(payload) > netio.MaxPayload {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), netio.MaxPayload)
	}
	w.mu.RLock()
	seg, ok := w.segments[segment]
	if !ok {
		w.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrUnknownSegment, segment)
	}
	if _, attached := seg.nodes[n.id]; !attached {
		w.mu.RUnlock()
		return fmt.Errorf("%w: node %d not on %q", ErrNotAttached, n.id, segment)
	}
	if !seg.cfg.NativeMulticast {
		w.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrNoMulticast, segment)
	}
	receivers := seg.sorted // immutable snapshot: AddNode replaces, never mutates
	cfg := seg.cfg
	w.mu.RUnlock()

	if !n.accountTx(class, len(payload), cfg.Wireless) {
		return fmt.Errorf("node %d: %w", n.id, ErrNodeDown)
	}
	fs := w.faults.Load()
	for _, rn := range receivers {
		if rn.id == n.id {
			continue // one's own multicast is not received
		}
		loss, base := cfg.Loss, cfg.Latency
		if fs != nil {
			if fs.cut(n.id, rn.id) {
				continue // partitioned receiver: the frame never reaches it
			}
			loss, base = fs.override(n.id, rn.id, loss, base)
		}
		if loss > 0 && w.draw() < loss {
			continue
		}
		lat := base + w.drawJitter(cfg.Jitter)
		n.deliverCopy(n.id, rn, port, class, payload, lat)
	}
	return nil
}

// deliverLoopback lends the payload straight to the local handler,
// bypassing accounting (the Handler contract forbids retention).
func (n *Node) deliverLoopback(dst *Node, port string, payload []byte) {
	h, ok := dst.ports.Get(port)
	if !ok || h == nil {
		return
	}
	h(n.id, port, payload)
}

// deliverCopy schedules delivery of payload after the given latency. Zero
// latency lends the payload synchronously on this goroutine; otherwise the
// world copies it into a pooled buffer for the timer heap.
func (n *Node) deliverCopy(src NodeID, dst *Node, port, class string, payload []byte, after time.Duration) {
	n.world.schedule(after, payload, delivery{
		src:   src,
		dst:   dst,
		port:  port,
		class: class,
	})
}
