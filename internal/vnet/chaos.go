package vnet

import (
	"fmt"
	"time"
)

// Fault-injection overlay. The chaos plane (internal/chaos) drives a world
// through adverse conditions at run time: per-link loss and latency
// overrides, partition cells, and crash-stop detachment. The overlay is an
// immutable snapshot behind an atomic pointer — the data plane loads it
// once per transmission, and when no fault is installed the pointer is nil,
// so the default path costs one atomic load and, critically, consumes
// exactly the same deterministic RNG draw sequence as before the overlay
// existed (the golden-replay hashes pin this).

// linkKey identifies one directed link (src transmits, dst receives).
type linkKey struct{ src, dst NodeID }

// faultState is the immutable fault overlay. Mutators copy, modify and
// republish; the data plane only ever reads a snapshot.
type faultState struct {
	// loss maps a directed link to an override that REPLACES the combined
	// segment loss for frames on that link.
	loss map[linkKey]float64
	// lat maps a directed link to an override that REPLACES the segment
	// latency (jitter excluded) for frames on that link.
	lat map[linkKey]time.Duration
	// cell assigns partitioned nodes to cells; nodes not listed share the
	// implicit cell -1. Frames cross only within a cell.
	cell  map[NodeID]int
	split bool
}

// empty reports whether the overlay carries no fault at all.
func (f *faultState) empty() bool {
	return len(f.loss) == 0 && len(f.lat) == 0 && !f.split
}

// clone deep-copies the overlay (nil yields a fresh empty state).
func (f *faultState) clone() *faultState {
	n := &faultState{
		loss: make(map[linkKey]float64),
		lat:  make(map[linkKey]time.Duration),
		cell: make(map[NodeID]int),
	}
	if f == nil {
		return n
	}
	for k, v := range f.loss {
		n.loss[k] = v
	}
	for k, v := range f.lat {
		n.lat[k] = v
	}
	for k, v := range f.cell {
		n.cell[k] = v
	}
	n.split = f.split
	return n
}

// cellOf returns a node's partition cell (-1 for unlisted nodes).
func (f *faultState) cellOf(id NodeID) int {
	if c, ok := f.cell[id]; ok {
		return c
	}
	return -1
}

// cut reports whether the active partition separates src from dst.
func (f *faultState) cut(src, dst NodeID) bool {
	if !f.split {
		return false
	}
	return f.cellOf(src) != f.cellOf(dst)
}

// override applies any per-link loss/latency overrides for src→dst to the
// segment-derived values.
func (f *faultState) override(src, dst NodeID, loss float64, lat time.Duration) (float64, time.Duration) {
	k := linkKey{src, dst}
	if l, ok := f.loss[k]; ok {
		loss = l
	}
	if d, ok := f.lat[k]; ok {
		lat = d
	}
	return loss, lat
}

// mutateFaults republishes the overlay after applying fn to a private copy.
// A resulting empty overlay stores nil, restoring the zero-cost hot path.
func (w *World) mutateFaults(fn func(*faultState)) {
	w.faultMu.Lock()
	defer w.faultMu.Unlock()
	next := w.faults.Load().clone()
	fn(next)
	if next.empty() {
		w.faults.Store(nil)
		return
	}
	w.faults.Store(next)
}

// SetLinkLoss installs a loss override on the directed link src→dst that
// replaces the combined segment loss for frames on that link. A negative
// loss clears the override. Overrides affect unicast and native-multicast
// transmissions alike.
func (w *World) SetLinkLoss(src, dst NodeID, loss float64) {
	w.mutateFaults(func(f *faultState) {
		if loss < 0 {
			delete(f.loss, linkKey{src, dst})
			return
		}
		if loss > 1 {
			loss = 1
		}
		f.loss[linkKey{src, dst}] = loss
	})
}

// SetLinkLatency installs a latency override on the directed link src→dst
// that replaces the segment latency (jitter excluded) for frames on that
// link. A negative duration clears the override. Frames already in flight
// keep the latency they were scheduled with, so a cleared spike can deliver
// out of order — exactly what the reliable layers must absorb.
func (w *World) SetLinkLatency(src, dst NodeID, d time.Duration) {
	w.mutateFaults(func(f *faultState) {
		if d < 0 {
			delete(f.lat, linkKey{src, dst})
			return
		}
		f.lat[linkKey{src, dst}] = d
	})
}

// ClearLinkFaults removes every per-link loss and latency override,
// keeping any active partition.
func (w *World) ClearLinkFaults() {
	w.mutateFaults(func(f *faultState) {
		f.loss = make(map[linkKey]float64)
		f.lat = make(map[linkKey]time.Duration)
	})
}

// Partition splits the world into cells: frames (unicast and multicast)
// are delivered only between nodes of the same cell. Nodes not listed in
// any set share one implicit cell. The transmission is still counted and
// the battery still drained — the radio transmits into a medium that no
// longer reaches the other side. Calling Partition again replaces the
// previous cell assignment; Heal removes it.
func (w *World) Partition(sets ...[]NodeID) {
	w.mutateFaults(func(f *faultState) {
		f.cell = make(map[NodeID]int)
		for i, set := range sets {
			for _, id := range set {
				f.cell[id] = i
			}
		}
		f.split = true
	})
}

// Heal removes the active partition (link overrides stay).
func (w *World) Heal() {
	w.mutateFaults(func(f *faultState) {
		f.cell = make(map[NodeID]int)
		f.split = false
	})
}

// Detach crash-stops a node: it closes the node's endpoint, so subsequent
// sends fail with an error wrapping netio.ErrClosed and inbound frames are
// silently dropped, while the node stays in the topology with its traffic
// counters readable. This is the same observable contract as a socket
// close on the udpnet substrate (pinned for every substrate by
// internal/netio/conformancetest), which is what makes vnet crash-stops a
// faithful stand-in for a process kill on a live deployment. Crash-stop is
// permanent — there is no reattach, matching the paper's crash-stop model.
func (w *World) Detach(id NodeID) error {
	n, ok := w.lookupNode(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n.Close()
}
