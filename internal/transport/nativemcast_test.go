package transport

import (
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/vnet"
)

// buildMcastTrio wires three nodes with ptp + native multicast stacks on a
// multicast-capable segment.
func buildMcastTrio(t *testing.T) (chans []*appia.Channel, nodes []*vnet.Node, got *[3][]string, mu *sync.Mutex) {
	t.Helper()
	r := reg(t)
	w := vnet.NewWorld(8)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})

	mu = &sync.Mutex{}
	got = &[3][]string{}
	for i := 0; i < 3; i++ {
		i := i
		vn, err := w.AddNode(vnet.NodeID(i+1), vnet.Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, vn)
		q, err := appia.NewQoS("m",
			NewPTPLayer(Config{Node: vn, Port: "m", Registry: r, Logf: t.Logf}),
			NewNativeMulticastLayer(NativeMulticastConfig{
				Config:  Config{Node: vn, Port: "m", Registry: r, Logf: t.Logf},
				Segment: "lan",
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		sched := appia.NewScheduler()
		t.Cleanup(sched.Close)
		ch := q.CreateChannel("data", sched, appia.WithDeliver(func(ev appia.Event) {
			if p, ok := ev.(*pingEv); ok {
				mu.Lock()
				got[i] = append(got[i], string(p.Msg.Bytes()))
				mu.Unlock()
			}
		}))
		if err := ch.Start(); err != nil {
			t.Fatal(err)
		}
		if !ch.WaitReady(2 * time.Second) {
			t.Fatal("not ready")
		}
		chans = append(chans, ch)
	}
	return chans, nodes, got, mu
}

func TestNativeMulticastDelivery(t *testing.T) {
	chans, nodes, got, mu := buildMcastTrio(t)
	ev := &pingEv{}
	ev.Msg = appia.NewMessage([]byte("to-all"))
	if err := chans[0].Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got[1]) == 1 && len(got[2]) == 1
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[1]) != 1 || len(got[2]) != 1 {
		t.Fatalf("deliveries: %v / %v", got[1], got[2])
	}
	// One transmission, not n−1.
	if tx := nodes[0].Counters().TotalTx(); tx != 1 {
		t.Fatalf("sender transmitted %d frames, want 1", tx)
	}
}

func TestNativeMulticastPassesAddressedTraffic(t *testing.T) {
	chans, nodes, got, mu := buildMcastTrio(t)
	ev := &pingEv{}
	ev.Dest = 3
	ev.Msg = appia.NewMessage([]byte("direct"))
	if err := chans[0].Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got[2]) == 1
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[2]) != 1 {
		t.Fatal("addressed frame never delivered")
	}
	if len(got[1]) != 0 {
		t.Fatal("unicast leaked to a third party")
	}
	if tx := nodes[0].Counters().TotalTx(); tx != 1 {
		t.Fatalf("tx = %d", tx)
	}
}
