package transport

import (
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/vnet"
)

// pingEv is a registered wire event for tests.
type pingEv struct{ appia.SendableEvent }

func reg(t *testing.T) *appia.EventKindRegistry {
	t.Helper()
	r := appia.NewEventKindRegistry()
	r.Register("test.ping", func() appia.Sendable { return &pingEv{} })
	return r
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	r := reg(t)
	ev := &pingEv{}
	ev.Msg = appia.NewMessage([]byte("payload"))
	ev.Msg.PushUvarint(77)

	wire, err := Marshal(r, "chan-x", ev)
	if err != nil {
		t.Fatal(err)
	}
	// The original message must be restored after marshalling.
	if v, err := ev.Msg.PopUvarint(); err != nil || v != 77 {
		t.Fatalf("original message corrupted: %d, %v", v, err)
	}

	chName, out, err := Unmarshal(r, wire)
	if err != nil {
		t.Fatal(err)
	}
	if chName != "chan-x" {
		t.Fatalf("channel = %q", chName)
	}
	p, ok := out.(*pingEv)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if v, err := p.Msg.PopUvarint(); err != nil || v != 77 {
		t.Fatalf("header = %d, %v", v, err)
	}
	if string(p.Msg.Bytes()) != "payload" {
		t.Fatalf("payload = %q", p.Msg.Bytes())
	}
}

func TestMarshalUnregistered(t *testing.T) {
	r := appia.NewEventKindRegistry()
	ev := &pingEv{}
	if _, err := Marshal(r, "c", ev); err == nil {
		t.Fatal("marshal of unregistered type succeeded")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	r := reg(t)
	if _, _, err := Unmarshal(r, []byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage decoded")
	}
}

// buildPair wires two single-layer (ptp only) channels over a vnet LAN.
func buildPair(t *testing.T) (a, b *appia.Channel, deliveredB *[]appia.Event, mu *sync.Mutex) {
	t.Helper()
	r := reg(t)
	w := vnet.NewWorld(2)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	na, err := w.AddNode(1, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := w.AddNode(2, vnet.Fixed, "lan")
	if err != nil {
		t.Fatal(err)
	}

	mu = &sync.Mutex{}
	deliveredB = &[]appia.Event{}

	mkChan := func(n *vnet.Node, sink bool) *appia.Channel {
		q, err := appia.NewQoS("q", NewPTPLayer(Config{Node: n, Port: "t", Registry: r, Logf: t.Logf}))
		if err != nil {
			t.Fatal(err)
		}
		sched := appia.NewScheduler()
		t.Cleanup(sched.Close)
		var opts []appia.ChannelOption
		if sink {
			opts = append(opts, appia.WithDeliver(func(ev appia.Event) {
				mu.Lock()
				defer mu.Unlock()
				*deliveredB = append(*deliveredB, ev)
			}))
		}
		ch := q.CreateChannel("data", sched, opts...)
		if err := ch.Start(); err != nil {
			t.Fatal(err)
		}
		if !ch.WaitReady(2 * time.Second) {
			t.Fatal("channel never became ready")
		}
		return ch
	}
	a = mkChan(na, false)
	b = mkChan(nb, true)
	return a, b, deliveredB, mu
}

func TestPTPSendsAndDelivers(t *testing.T) {
	a, _, deliveredB, mu := buildPair(t)
	ev := &pingEv{}
	ev.Dest = 2
	ev.Msg = appia.NewMessage([]byte("hi"))
	if err := a.Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(*deliveredB)
		mu.Unlock()
		if n == 1 {
			mu.Lock()
			defer mu.Unlock()
			got, ok := (*deliveredB)[0].(*pingEv)
			if !ok {
				t.Fatalf("delivered %T", (*deliveredB)[0])
			}
			if got.SendableBase().Source != 1 {
				t.Fatalf("source = %d", got.SendableBase().Source)
			}
			if string(got.Msg.Bytes()) != "hi" {
				t.Fatalf("payload = %q", got.Msg.Bytes())
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("never delivered")
}

func TestPTPDropsUnaddressed(t *testing.T) {
	a, _, deliveredB, mu := buildPair(t)
	ev := &pingEv{}
	ev.Msg = appia.NewMessage([]byte("nowhere"))
	if err := a.Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(*deliveredB) != 0 {
		t.Fatal("unaddressed event was transmitted")
	}
}
