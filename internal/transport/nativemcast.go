package transport

import (
	"morpheus/internal/appia"
)

// NativeMulticastConfig configures the native multicast bottom.
type NativeMulticastConfig struct {
	Config
	// Segment is the substrate segment whose native multicast is used
	// (a vnet segment, or a udpnet IP-multicast group).
	Segment string
}

// NativeMulticastLayer transmits unaddressed downward events as a single
// native multicast on a segment (IP multicast on a LAN, in the paper's
// terms: "when available, it may also use native multicast"). Addressed
// traffic passes through to the point-to-point layer below. Reception needs
// no work here: frames arrive through the shared PTP port binding.
type NativeMulticastLayer struct {
	appia.BaseLayer
	cfg NativeMulticastConfig
}

// NewNativeMulticastLayer returns a native multicast bottom layer; place it
// directly above transport.ptp.
func NewNativeMulticastLayer(cfg NativeMulticastConfig) *NativeMulticastLayer {
	return &NativeMulticastLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "transport.nativemcast",
			LayerSpec: appia.LayerSpec{
				Accepts:  []appia.EventType{appia.TIface[appia.Sendable]()},
				Provides: []appia.EventType{appia.TIface[appia.Sendable]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *NativeMulticastLayer) NewSession() appia.Session {
	return &nmcastSession{cfg: l.cfg}
}

type nmcastSession struct {
	cfg NativeMulticastConfig

	// scratch is the reusable wire buffer; see ptpSession.scratch.
	scratch []byte
}

var _ appia.Session = (*nmcastSession)(nil)

// Handle implements appia.Session.
func (s *nmcastSession) Handle(ch *appia.Channel, ev appia.Event) {
	e, ok := ev.(appia.Sendable)
	if !ok {
		ch.Forward(ev)
		return
	}
	sb := e.SendableBase()
	if sb.Dir() != appia.Down || sb.Dest != appia.NoNode {
		ch.Forward(ev)
		return
	}
	wire, err := MarshalAppend(s.scratch[:0], s.cfg.registry(), ch.Name(), e)
	if err != nil {
		s.cfg.logf("transport.nativemcast[%d]: marshal %T: %v", s.cfg.Node.ID(), e, err)
		return
	}
	s.scratch = wire[:0]
	class := sb.Class
	if class == "" {
		class = appia.ClassData
	}
	if err := s.cfg.Node.Multicast(s.cfg.Segment, s.cfg.Port, class, wire); err != nil {
		s.cfg.logf("transport.nativemcast[%d]: %v", s.cfg.Node.ID(), err)
	}
}
