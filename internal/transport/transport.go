// Package transport provides the bottom-most Appia layers: they bind a
// channel to a network endpoint (any netio substrate — the vnet simulator,
// the in-process loopback, or real UDP sockets), serialising outgoing
// Sendable events (event kind name + message header stack) and
// reconstructing incoming ones through the event kind registry.
//
// Two layers are provided:
//
//   - PTP: point-to-point. Downward events with a Dest are unicast;
//     events with Dest == NoNode are handed to whatever sits directly above
//     (usually a best-effort-multicast layer) — PTP itself never fans out.
//   - Fanout helpers live in the group package; native multicast binding is
//     in this package because it talks to the substrate segment directly.
package transport

import (
	"fmt"
	"sync"

	"morpheus/internal/appia"
	"morpheus/internal/netio"
)

// Config configures a transport layer instance.
type Config struct {
	// Node is the network attachment point.
	Node netio.Endpoint
	// Port isolates this channel's traffic; reconfiguration epochs use
	// distinct ports so stale traffic is dropped by the network.
	Port string
	// Registry resolves event kinds; nil means appia.DefaultRegistry().
	Registry *appia.EventKindRegistry
	// Logf, when set, receives diagnostics about undecodable frames; nil
	// discards them (library code never writes to the global logger).
	Logf netio.Logf
}

func (c *Config) registry() *appia.EventKindRegistry {
	if c.Registry == nil {
		return appia.DefaultRegistry()
	}
	return c.Registry
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// PTPLayer is the point-to-point transport layer.
type PTPLayer struct {
	appia.BaseLayer
	cfg Config
}

// NewPTPLayer returns a point-to-point transport layer.
func NewPTPLayer(cfg Config) *PTPLayer {
	return &PTPLayer{
		BaseLayer: appia.BaseLayer{
			LayerName: "transport.ptp",
			LayerSpec: appia.LayerSpec{
				Accepts:  []appia.EventType{appia.TIface[appia.Sendable]()},
				Provides: []appia.EventType{appia.TIface[appia.Sendable]()},
			},
		},
		cfg: cfg,
	}
}

// NewSession implements appia.Layer.
func (l *PTPLayer) NewSession() appia.Session {
	return &ptpSession{cfg: l.cfg}
}

// ptpSession binds one or more channels to the node port. When shared
// between channels (the usual arrangement for control+data), incoming
// frames are delivered to the channel named in the frame.
type ptpSession struct {
	cfg Config

	// scratch is the reusable wire buffer for outgoing frames. transmit
	// only runs on the channel's scheduler goroutine and the vnet copies
	// the payload before Send returns, so one buffer per session suffices.
	scratch []byte

	mu       sync.Mutex
	channels map[string]*appia.Channel // channel name -> channel
	bound    bool
}

var _ appia.Session = (*ptpSession)(nil)

// Handle implements appia.Session.
func (s *ptpSession) Handle(ch *appia.Channel, ev appia.Event) {
	switch e := ev.(type) {
	case *appia.ChannelInit:
		s.onInit(ch)
		ch.Forward(ev)
	case *appia.ChannelClose:
		s.onClose(ch)
		ch.Forward(ev)
	case appia.Sendable:
		if e.SendableBase().Dir() == appia.Down {
			s.transmit(ch, e)
			return // consumed: the frame left through the network
		}
		ch.Forward(ev)
	default:
		ch.Forward(ev)
	}
}

func (s *ptpSession) onInit(ch *appia.Channel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.channels == nil {
		s.channels = make(map[string]*appia.Channel)
	}
	s.channels[ch.Name()] = ch
	if s.bound {
		return
	}
	s.bound = true
	s.cfg.Node.Handle(s.cfg.Port, s.receive)
}

func (s *ptpSession) onClose(ch *appia.Channel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.channels, ch.Name())
	if len(s.channels) == 0 && s.bound {
		s.bound = false
		s.cfg.Node.Handle(s.cfg.Port, nil)
	}
}

// transmit marshals and unicasts a downward event.
func (s *ptpSession) transmit(ch *appia.Channel, e appia.Sendable) {
	sb := e.SendableBase()
	if sb.Dest == appia.NoNode {
		// Nothing above chose a destination: a composition bug. Drop
		// loudly rather than guessing.
		s.cfg.logf("transport.ptp[%d]: dropping %T with no destination", s.cfg.Node.ID(), e)
		return
	}
	wire, err := MarshalAppend(s.scratch[:0], s.cfg.registry(), ch.Name(), e)
	if err != nil {
		s.cfg.logf("transport.ptp[%d]: marshal %T: %v", s.cfg.Node.ID(), e, err)
		return
	}
	s.scratch = wire[:0]
	class := sb.Class
	if class == "" {
		class = appia.ClassData
	}
	if err := s.cfg.Node.Send(sb.Dest, s.cfg.Port, class, wire); err != nil {
		// Unreachable destinations and dead batteries are normal-course
		// distributed-systems weather; upper layers recover via their own
		// timeouts.
		return
	}
}

// receive reconstructs a frame and inserts it into the addressed channel.
func (s *ptpSession) receive(src netio.NodeID, port string, payload []byte) {
	chName, ev, err := Unmarshal(s.cfg.registry(), payload)
	if err != nil {
		s.cfg.logf("transport.ptp[%d]: undecodable frame from %d: %v", s.cfg.Node.ID(), src, err)
		return
	}
	sb := ev.SendableBase()
	sb.Source = src
	sb.Dest = s.cfg.Node.ID()
	s.mu.Lock()
	ch := s.channels[chName]
	s.mu.Unlock()
	if ch == nil {
		return // channel gone (reconfiguration race): drop
	}
	_ = ch.Insert(ev, appia.Up)
}

// Marshal encodes an event for the wire: channel name, kind name, then the
// message bytes.
func Marshal(reg *appia.EventKindRegistry, channelName string, e appia.Sendable) ([]byte, error) {
	return MarshalAppend(nil, reg, channelName, e)
}

// MarshalAppend encodes like Marshal but appends to dst, so per-frame
// senders can reuse one scratch buffer instead of allocating. Substrates
// copy (or finish transmitting) payloads before Send/Multicast return,
// which is what makes the reuse safe.
func MarshalAppend(dst []byte, reg *appia.EventKindRegistry, channelName string, e appia.Sendable) ([]byte, error) {
	kind, err := reg.KindOf(e)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	sb := e.SendableBase()
	m := sb.EnsureMsg()
	m.PushString(kind)
	m.PushString(channelName)
	wire := append(dst, m.Bytes()...)
	// Restore the message so the event could be retransmitted.
	if _, err := m.PopString(); err != nil {
		return nil, err
	}
	if _, err := m.PopString(); err != nil {
		return nil, err
	}
	return wire, nil
}

// Unmarshal decodes a wire frame into a fresh event of the encoded kind.
func Unmarshal(reg *appia.EventKindRegistry, payload []byte) (string, appia.Sendable, error) {
	m := appia.FromWire(payload)
	chName, err := m.PopString()
	if err != nil {
		return "", nil, fmt.Errorf("transport: channel name: %w", err)
	}
	kind, err := m.PopString()
	if err != nil {
		return "", nil, fmt.Errorf("transport: kind: %w", err)
	}
	ev, err := reg.New(kind)
	if err != nil {
		return "", nil, err
	}
	ev.SendableBase().Msg = m
	return chName, ev, nil
}
