package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"morpheus/internal/chaos/invariants"
)

// TestGenerateDeterministic pins that equal seeds generate equal schedules
// and that the generator respects its safety constraints across a seed
// sweep: the anchor is never crashed, crash-stops stay under MaxCrashes,
// every partition and spike heals, and loss spikes stay under 0.45.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		a, b := Generate(seed, Profile{}), Generate(seed, Profile{})
		if a.String() != b.String() {
			t.Fatalf("seed %d generated two different schedules:\n%s\nvs\n%s", seed, a, b)
		}
		crashes, opens := 0, 0
		for _, e := range a.Events {
			switch e.Kind {
			case KindCrash:
				crashes++
				if e.Node == 1 {
					t.Fatalf("seed %d crashes the anchor:\n%s", seed, a)
				}
			case KindPartition:
				opens++
				for _, p := range e.Peers {
					if p == 1 {
						t.Fatalf("seed %d isolates the anchor:\n%s", seed, a)
					}
				}
			case KindHeal:
				opens--
			case KindLossSpike:
				if e.Loss > 0.45 {
					t.Fatalf("seed %d draws loss %.2f > 0.45:\n%s", seed, e.Loss, a)
				}
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d draws %d crashes:\n%s", seed, crashes, a)
		}
		if opens != 0 {
			t.Fatalf("seed %d leaves %d partitions unhealed:\n%s", seed, opens, a)
		}
	}
}

// replaySeed is the seed the replay tests pin; any seed works, this one's
// schedule happens to exercise several fault kinds.
const replaySeed = 3

// TestChaosReplayBitIdentical is the tentpole guarantee: two executions of
// the same seed produce byte-identical traces (schedule, injection log,
// delivery digests, flow marks, violations) and therefore equal hashes.
func TestChaosReplayBitIdentical(t *testing.T) {
	a, err := Run(replaySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("seed %d violated invariants:\n%s", replaySeed, a.Trace)
	}
	b, err := Run(replaySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("replay diverged: %s vs %s\n--- first\n%s\n--- second\n%s", a.Hash, b.Hash, a.Trace, b.Trace)
	}
	if a.Delivered == 0 {
		t.Fatal("run delivered nothing; scenario too weak to check anything")
	}
}

// TestChaosBrokenInvariantReplaysBitIdentical proves the failure path: a
// deliberately broken invariant (caps tightened below the real high-water
// marks) must produce violations, and the violating run must replay
// bit-identically from its seed — a failing seed is a complete, portable
// failure artifact.
func TestChaosBrokenInvariantReplaysBitIdentical(t *testing.T) {
	broken := Options{Caps: &invariants.Caps{Window: 1, NakSent: 1, NakPeer: 1, Mailbox: 1}}
	a, err := Run(replaySeed, broken)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) == 0 {
		t.Fatal("tightened caps produced no violations; the checker is not looking at the run")
	}
	b, err := Run(replaySeed, broken)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("violating run did not replay: %s vs %s", a.Hash, b.Hash)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation lists diverged: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			t.Fatalf("violation %d diverged:\n%s\nvs\n%s", i, a.Violations[i], b.Violations[i])
		}
	}
}

// TestGracefulChurnKnob pins the membership-lifecycle knob's contract.
// Off (the default), the generator's draw sequence is untouched: stripping
// the graceful-churn events from a knob-on schedule yields exactly the
// knob-off schedule, which is what keeps the corpus hashes pinned. On, the
// run exercises JoinVia state transfer and a graceful mid-run leave, holds
// every invariant, drains the survivors' windows after the leave, and
// replays bit-identically.
func TestGracefulChurnKnob(t *testing.T) {
	on := Generate(replaySeed, Profile{GracefulChurns: 1})
	off := Generate(replaySeed, Profile{})
	var stripped []Event
	waves := 0
	for _, e := range on.Events {
		if e.Kind == KindGracefulChurn {
			waves++
			if e.Node == 1 {
				t.Fatalf("wave targets the anchor:\n%s", on)
			}
			continue
		}
		stripped = append(stripped, e)
	}
	if waves != 1 {
		t.Fatalf("knob-on schedule drew %d graceful-churn waves, want 1:\n%s", waves, on)
	}
	if got, want := (Schedule{Seed: replaySeed, Events: stripped}).String(), off.String(); got != want {
		t.Fatalf("knob perturbed the base draw sequence:\n%s\nvs\n%s", got, want)
	}

	opts := Options{Profile: Profile{GracefulChurns: 1}}
	a, err := Run(replaySeed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("graceful-churn run violated invariants:\n%s", a.Trace)
	}
	if !strings.Contains(a.Trace, "graceful-churn") {
		t.Fatalf("trace never reached the graceful-churn wave:\n%s", a.Trace)
	}
	if !strings.Contains(a.Trace, "survivors drained after leave: true") {
		t.Fatalf("survivors never drained after the graceful leave:\n%s", a.Trace)
	}
	b, err := Run(replaySeed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("graceful-churn run did not replay: %s vs %s\n--- first\n%s\n--- second\n%s", a.Hash, b.Hash, a.Trace, b.Trace)
	}
}

// corpusEntry is one pinned seed in testdata/corpus.json.
type corpusEntry struct {
	Seed int64  `json:"seed"`
	Hash string `json:"hash"`
}

// TestChaosCorpus replays the pinned seed corpus — seeds that once found
// bugs or cover interesting schedules — and requires every one to pass its
// invariants and reproduce its pinned trace hash. Runs under -short: this
// is the tier-1 regression net. Regenerate with
//
//	go run ./cmd/morpheus-bench -run chaos -replay <seed>
//
// and update the hash if a deliberate behavior change shifted the trace.
func TestChaosCorpus(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	var corpus []corpusEntry
	if err := json.Unmarshal(raw, &corpus); err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty corpus")
	}
	for _, c := range corpus {
		res, err := Run(c.Seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("corpus seed %d violated invariants:\n%s", c.Seed, res.Trace)
		}
		if res.Hash != c.Hash {
			t.Errorf("corpus seed %d hash = %s, pinned %s (trace drifted)\n%s", c.Seed, res.Hash, c.Hash, res.Trace)
		}
	}
}

// TestChaosNoGoroutineLeak runs one full chaos run and requires the
// process goroutine count to return to baseline — the teardown invariant,
// checked sequentially because the count is process-global.
func TestChaosNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	if _, err := Run(replaySeed, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, v := range invariants.NoLeakedGoroutines(baseline, 3, 5e9) {
		t.Error(v)
	}
}
