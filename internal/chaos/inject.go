package chaos

import (
	"errors"
	"fmt"
	"time"

	"morpheus"
)

// arm registers every schedule event as a clock-heap entry. Callbacks run
// on the clock goroutine and must not block: fault primitives are pure
// state flips on the vnet overlay, and the two long-running faults (burst,
// churn) fork clock actors. Armed before any virtual time passes, so the
// heap order — and with it the injection log — is a function of the
// schedule alone.
func (r *runner) arm() {
	for i, ev := range r.sched.Events {
		i, ev := i, ev
		r.clk.AfterFunc(ev.At, func() { r.apply(i, ev) })
	}
}

// apply fires one scheduled fault.
func (r *runner) apply(idx int, ev Event) {
	switch ev.Kind {
	case KindCrash:
		r.logf("crash node=%d", ev.Node)
		r.crashed[ev.Node].Store(true)
		_ = r.world.Detach(ev.Node)

	case KindPartition:
		majority := make([]NodeID, 0, len(r.members))
		for _, m := range r.members {
			inMinority := false
			for _, p := range ev.Peers {
				if p == m {
					inMinority = true
					break
				}
			}
			if !inMinority {
				majority = append(majority, m)
			}
		}
		r.logf("partition cells=%v|%v", ev.Peers, majority)
		r.world.Partition(ev.Peers, majority)

	case KindHeal:
		r.logf("heal")
		r.world.Heal()

	case KindLossSpike:
		r.logf("loss-spike node=%d loss=%.2f", ev.Node, ev.Loss)
		r.eachPeer(ev.Node, func(o NodeID) {
			r.world.SetLinkLoss(ev.Node, o, ev.Loss)
			r.world.SetLinkLoss(o, ev.Node, ev.Loss)
		})

	case KindLossClear:
		r.logf("loss-clear node=%d", ev.Node)
		r.eachPeer(ev.Node, func(o NodeID) {
			r.world.SetLinkLoss(ev.Node, o, -1)
			r.world.SetLinkLoss(o, ev.Node, -1)
		})

	case KindLatencySpike:
		r.logf("latency-spike node=%d delay=%s", ev.Node, ev.Delay)
		r.eachPeer(ev.Node, func(o NodeID) {
			r.world.SetLinkLatency(ev.Node, o, ev.Delay)
			r.world.SetLinkLatency(o, ev.Node, ev.Delay)
		})

	case KindLatencyClear:
		r.logf("latency-clear node=%d", ev.Node)
		r.eachPeer(ev.Node, func(o NodeID) {
			r.world.SetLinkLatency(ev.Node, o, -1)
			r.world.SetLinkLatency(o, ev.Node, -1)
		})

	case KindBurst:
		if r.isCrashed(ev.Node) {
			r.logf("burst node=%d skipped (crashed)", ev.Node)
			return
		}
		r.logf("burst node=%d n=%d", ev.Node, ev.N)
		r.fork(func() { r.burst(idx, ev) })

	case KindChurn:
		r.logf("churn wave n=%d", ev.N)
		r.fork(func() { r.churn(idx, ev) })

	case KindGracefulChurn:
		r.logf("graceful-churn wave joiner=%d n=%d", ev.Node, ev.N)
		r.fork(func() { r.gracefulChurn(idx, ev) })

	case KindReconfig:
		r.logf("reconfig target=%s", ev.Config)
		r.desired.Store(ev.Config)
	}
}

// eachPeer visits every member other than id.
func (r *runner) eachPeer(id NodeID, fn func(NodeID)) {
	for _, m := range r.members {
		if m != id {
			fn(m)
		}
	}
}

// fork spawns a clock actor whose completion the harvest barrier awaits
// (traces must be frozen before they are hashed).
func (r *runner) fork(fn func()) {
	done := make(chan struct{})
	r.mu.Lock()
	r.injDone = append(r.injDone, done)
	r.mu.Unlock()
	r.clk.Go(func() {
		defer close(done)
		fn()
	})
}

// snapshotInjDone returns the completion channels of every forked fault.
func (r *runner) snapshotInjDone() []<-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]<-chan struct{}(nil), r.injDone...)
}

// burst floods N extra casts from one node through the data group as fast
// as the window admits them, riding out ErrWindowFull — the overload
// fault. Stream identity is the event's schedule position, so replays name
// streams identically.
func (r *runner) burst(idx int, ev Event) {
	stream := fmt.Sprintf("b%d", idx)
	g := r.nodes[ev.Node].Group(morpheus.DefaultGroup)
	if g == nil {
		return
	}
	deadline := r.clk.Now().Add(15 * time.Second)
	for i := 0; i < ev.N; i++ {
		if r.isCrashed(ev.Node) {
			return
		}
		payload := encodePayload(morpheus.DefaultGroup, stream, i)
		for {
			err := g.TrySend(payload)
			if err == nil {
				break
			}
			if !errors.Is(err, morpheus.ErrWindowFull) {
				return
			}
			r.rejected.Add(1)
			if r.isCrashed(ev.Node) || !r.clk.Now().Before(deadline) {
				return
			}
			r.clk.Sleep(2 * time.Millisecond)
		}
		r.accept(morpheus.DefaultGroup, ev.Node, stream)
		r.clk.Sleep(time.Millisecond)
	}
}

// churn runs one join/leave wave: every live node joins a fresh group,
// floods it, the wave waits for the casts to land everywhere, and every
// member leaves again. A node that crashes mid-wave simply drops out of
// the rounds; its accepted prefix is checked like any crashed origin's.
func (r *runner) churn(idx int, ev Event) {
	name := fmt.Sprintf("churn%d", idx)
	live := make([]NodeID, 0, len(r.members))
	for _, m := range r.members {
		if !r.isCrashed(m) {
			live = append(live, m)
		}
	}
	if len(live) < 2 {
		r.logf("churn %s skipped (%d live)", name, len(live))
		return
	}

	groups := make(map[NodeID]*morpheus.Group, len(live))
	joined := make([]NodeID, 0, len(live))
	for _, id := range live {
		g, err := r.nodes[id].Join(name, morpheus.GroupConfig{
			Members:    live,
			OnCast:     r.recorder(id, name),
			SendWindow: r.opts.SendWindow,
		})
		if err != nil {
			r.logf("churn %s: node %d join failed: %v", name, id, err)
			continue
		}
		groups[id], joined = g, append(joined, id)
	}
	r.logf("churn %s joined members=%v", name, joined)

	// Flood round-robin. A member whose send fails terminally is dropped
	// from later rounds so its accepted stream stays a contiguous prefix.
	dropped := make(map[NodeID]bool)
	deadline := r.clk.Now().Add(10 * time.Second)
	for i := 0; i < ev.N; i++ {
		for _, id := range joined {
			if dropped[id] || r.isCrashed(id) {
				dropped[id] = true
				continue
			}
			payload := encodePayload(name, "m", i)
			for {
				err := groups[id].TrySend(payload)
				if err == nil {
					r.accept(name, id, "m")
					break
				}
				if !errors.Is(err, morpheus.ErrWindowFull) {
					dropped[id] = true
					break
				}
				r.rejected.Add(1)
				if r.isCrashed(id) || !r.clk.Now().Before(deadline) {
					dropped[id] = true
					break
				}
				r.clk.Sleep(2 * time.Millisecond)
			}
			r.clk.Sleep(5 * time.Millisecond)
		}
	}

	// Wait for the wave to land on every live member, then leave
	// everywhere (a partial leave would wedge stability for the rest).
	r.waitFor(10*time.Second, func() bool {
		for _, id := range joined {
			if r.isCrashed(id) {
				continue
			}
			for k, n := range r.acceptedFor(id, name) {
				if r.isCrashed(k.Origin) {
					continue
				}
				if r.deliveredCount(traceKey{node: id, group: name}, k) < n {
					return false
				}
			}
		}
		return true
	})
	for _, id := range joined {
		if err := groups[id].Leave(); err != nil {
			r.logf("churn %s: node %d leave failed: %v", name, id, err)
		}
	}
	r.logf("churn %s left", name)
}

// gracefulChurn runs one late-join/graceful-leave wave through the full
// membership lifecycle: the live members minus the designated late joiner
// bootstrap a fresh group, the late joiner then enters the *running* group
// through the anchor seed via state transfer (JoinVia — no epoch-0
// bootstrap, no history replay), everyone floods, and once the wave has
// landed the late joiner leaves gracefully. The announced departure must
// release the survivors' send-window state within a stability round — the
// wedge the membership-lifecycle PR fixed — long before the failure
// detector could react.
func (r *runner) gracefulChurn(idx int, ev Event) {
	name := fmt.Sprintf("late%d", idx)
	late := ev.Node
	anchor := r.opts.Profile.Anchor
	if r.isCrashed(late) {
		r.logf("graceful-churn %s skipped (late joiner %d crashed)", name, late)
		return
	}
	boot := make([]NodeID, 0, len(r.members))
	for _, m := range r.members {
		if m != late && !r.isCrashed(m) {
			boot = append(boot, m)
		}
	}
	if len(boot) < 2 {
		r.logf("graceful-churn %s skipped (%d bootstrap members)", name, len(boot))
		return
	}

	groups := make(map[NodeID]*morpheus.Group, len(boot)+1)
	joined := make([]NodeID, 0, len(boot)+1)
	for _, id := range boot {
		g, err := r.nodes[id].Join(name, morpheus.GroupConfig{
			Members:    boot,
			OnCast:     r.recorder(id, name),
			SendWindow: r.opts.SendWindow,
		})
		if err != nil {
			r.logf("graceful-churn %s: node %d join failed: %v", name, id, err)
			continue
		}
		groups[id], joined = g, append(joined, id)
	}

	// The late join under test. It happens before any wave cast is
	// accepted, so the joiner's recorded trace is checkable against the
	// full accepted set like every bootstrap member's.
	lateJoined := false
	if g, err := r.nodes[late].JoinVia(name, anchor, morpheus.GroupConfig{
		OnCast:     r.recorder(late, name),
		SendWindow: r.opts.SendWindow,
	}); err != nil {
		r.logf("graceful-churn %s: node %d join via %d failed: %v", name, late, anchor, err)
	} else {
		groups[late], joined, lateJoined = g, append(joined, late), true
	}
	r.logf("graceful-churn %s joined members=%v late-joined=%v", name, joined, lateJoined)

	// Flood round-robin, exactly like a churn wave.
	dropped := make(map[NodeID]bool)
	deadline := r.clk.Now().Add(10 * time.Second)
	for i := 0; i < ev.N; i++ {
		for _, id := range joined {
			if dropped[id] || r.isCrashed(id) {
				dropped[id] = true
				continue
			}
			payload := encodePayload(name, "m", i)
			for {
				err := groups[id].TrySend(payload)
				if err == nil {
					r.accept(name, id, "m")
					break
				}
				if !errors.Is(err, morpheus.ErrWindowFull) {
					dropped[id] = true
					break
				}
				r.rejected.Add(1)
				if r.isCrashed(id) || !r.clk.Now().Before(deadline) {
					dropped[id] = true
					break
				}
				r.clk.Sleep(2 * time.Millisecond)
			}
			r.clk.Sleep(5 * time.Millisecond)
		}
	}

	// Wait for the wave to land on every live member before anyone leaves.
	r.waitFor(10*time.Second, func() bool {
		for _, id := range joined {
			if r.isCrashed(id) {
				continue
			}
			for k, n := range r.acceptedFor(id, name) {
				if r.isCrashed(k.Origin) {
					continue
				}
				if r.deliveredCount(traceKey{node: id, group: name}, k) < n {
					return false
				}
			}
		}
		return true
	})

	// The graceful departure under test: the late joiner leaves first, and
	// its announcement must drain every survivor's send window on the wave
	// group promptly (the drained line is part of the hashed trace, so a
	// regression here breaks replay pins loudly).
	if lateJoined {
		if err := groups[late].Leave(); err != nil {
			r.logf("graceful-churn %s: node %d leave failed: %v", name, late, err)
		} else {
			drained := r.waitFor(10*time.Second, func() bool {
				for _, id := range boot {
					if r.isCrashed(id) || groups[id] == nil {
						continue
					}
					fs := groups[id].FlowStats()
					if fs.Window.InUse != 0 || fs.BufferedSends != 0 {
						return false
					}
				}
				return true
			})
			r.logf("graceful-churn %s: survivors drained after leave: %v", name, drained)
		}
	}
	for _, id := range boot {
		if groups[id] == nil {
			continue
		}
		if err := groups[id].Leave(); err != nil {
			r.logf("graceful-churn %s: node %d leave failed: %v", name, id, err)
		}
	}
	r.logf("graceful-churn %s left", name)
}
