package invariants

import (
	"strings"
	"testing"

	"morpheus/internal/appia"
)

func TestCheckBounded(t *testing.T) {
	caps := CapsFor(64, 3)
	good := FlowRow{
		Label:            "node 1",
		WindowHighWater:  64,
		Acquired:         100,
		Released:         100,
		NakSentHW:        caps.NakSent,
		NakHistoryHW:     caps.NakPeer,
		NakBufferHW:      caps.NakPeer,
		MailboxHighWater: caps.Mailbox,
	}
	if bad := caps.CheckBounded(good); len(bad) != 0 {
		t.Fatalf("bounded row flagged: %v", bad)
	}
	worst := FlowRow{
		Label:           "node 2",
		WindowHighWater: 65,
		WindowInUse:     1,
		Acquired:        100,
		Released:        99,
		NakEvicted:      1,
		BufferedSends:   2,
	}
	bad := caps.CheckBounded(worst)
	for _, want := range []string{"window-high-water", "credits still in use", "accounting off", "cap evictions", "still buffered"} {
		found := false
		for _, v := range bad {
			if strings.Contains(v, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("violation %q not reported in %v", want, bad)
		}
	}
}

func TestCheckDeliveries(t *testing.T) {
	seq := []Delivery{
		{Origin: 1, Stream: "m", Index: 0},
		{Origin: 1, Stream: "m", Index: 1},
		{Origin: 2, Stream: "m", Index: 0},
	}
	accepted := map[StreamKey]int{
		{Origin: 1, Stream: "m"}: 2,
		{Origin: 2, Stream: "m"}: 1,
	}
	if bad := CheckDeliveries("n", seq, accepted); len(bad) != 0 {
		t.Fatalf("clean sequence flagged: %v", bad)
	}

	dup := append(append([]Delivery(nil), seq...), Delivery{Origin: 1, Stream: "m", Index: 1})
	if bad := CheckDeliveries("n", dup, nil); len(bad) != 1 || !strings.Contains(bad[0], "duplicate") {
		t.Fatalf("duplicate not caught: %v", bad)
	}

	gap := []Delivery{{Origin: 1, Stream: "m", Index: 0}, {Origin: 1, Stream: "m", Index: 2}}
	if bad := CheckDeliveries("n", gap, nil); len(bad) != 1 || !strings.Contains(bad[0], "gap") {
		t.Fatalf("gap not caught: %v", bad)
	}

	short := seq[:2] // origin 2's accepted cast never delivered
	if bad := CheckDeliveries("n", short, accepted); len(bad) != 1 || !strings.Contains(bad[0], "delivered 0 casts, accepted 1") {
		t.Fatalf("incompleteness not caught: %v", bad)
	}

	ghost := append(append([]Delivery(nil), seq...), Delivery{Origin: 9, Stream: "m", Index: 0})
	if bad := CheckDeliveries("n", ghost, accepted); len(bad) != 1 || !strings.Contains(bad[0], "accepted nothing") {
		t.Fatalf("ghost stream not caught: %v", bad)
	}
}

func TestCheckView(t *testing.T) {
	if bad := CheckView("n", int64ID{3, 1, 2}.ids(), int64ID{1, 2, 3}.ids()); len(bad) != 0 {
		t.Fatalf("order must not matter: %v", bad)
	}
	if bad := CheckView("n", int64ID{1, 2}.ids(), int64ID{1, 2, 3}.ids()); len(bad) != 1 {
		t.Fatalf("divergent view not caught: %v", bad)
	}
}

// int64ID keeps the test table terse.
type int64ID []int

func (s int64ID) ids() []appia.NodeID {
	out := make([]appia.NodeID, len(s))
	for i, v := range s {
		out[i] = appia.NodeID(v)
	}
	return out
}
