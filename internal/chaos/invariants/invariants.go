// Package invariants is the shared runtime-invariant checker of the chaos
// plane. It collects, in one place, the standing guarantees the runtime
// claims across adverse conditions — guarantees that were previously
// asserted ad hoc inside the E9/E10 experiment tests:
//
//   - bounded memory: every retention high-water mark (send window,
//     scheduler mailbox, NAK retransmission/history/reorder buffers) stays
//     under its SendWindow-derived cap, with zero cap evictions;
//   - exact credit accounting: acquired == released and zero credits in
//     use at quiescence;
//   - exactly-once, per-stream FIFO, gap-free delivery; completeness
//     against the accepted-send counts of surviving senders;
//   - view convergence to the control-live membership;
//   - zero goroutine leaks after teardown.
//
// Every checker returns a list of violation strings (empty means the
// invariant holds) and is a pure function of its inputs, so under a
// virtual clock the violations of a run are as bit-reproducible as its
// counter matrices — which is what lets a failing chaos seed replay its
// exact violation list.
package invariants

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/stack"
)

// Caps are the SendWindow-derived bounds of the bounded-memory runtime:
// retention and occupancy must scale with the window, never with the flood
// length (E10's claim, asserted by the chaos plane on every schedule).
type Caps struct {
	Window  int // window occupancy: the window size itself
	NakSent int // own-cast retention: the per-map cap
	NakPeer int // summed per-origin retention: cap × flooding peers
	Mailbox int // mailbox depth: admission high watermark + in-flight amplification

	// RepairEvictions permits cap evictions (and the one-past-cap
	// high-water excursion the eviction instant records). A crash-stop's
	// membership-repair flush can retry view proposals against the dead
	// member until the quiesce timeout — unwindowed control casts whose
	// stability is stalled by the very member being flushed out, so they
	// are bounded by eviction AT the cap (the designed degradation path)
	// rather than below it by stability. Set it when the scenario
	// crash-stopped a group member; leave it unset for partition-only
	// scenarios like E10, where zero evictions is the quality bar.
	RepairEvictions bool
}

// CapsFor derives the bounds from a window size and the number of
// concurrently flooding senders.
func CapsFor(window, senders int) Caps {
	high, _ := stack.MailboxBounds(window)
	return Caps{
		Window:  window,
		NakSent: stack.RetainedCap(window),
		NakPeer: stack.RetainedCap(window) * senders,
		Mailbox: high + stack.RetainedCap(window)*senders,
	}
}

// FlowRow is one group's flow-control snapshot at quiescence, labelled for
// violation messages ("node 3" or "node 3/aux").
type FlowRow struct {
	Label              string
	WindowHighWater    int
	WindowInUse        int
	Acquired, Released uint64
	MailboxHighWater   int
	NakSentHW          int
	NakHistoryHW       int
	NakBufferHW        int
	NakEvicted         int
	BufferedSends      int
}

// CheckBounded verifies one flow snapshot against the caps — the
// high-water marks under their bounds, zero cap evictions, and exact
// credit accounting — returning the violations (empty means bounded).
func (c Caps) CheckBounded(r FlowRow) []string {
	var bad []string
	chk := func(name string, got, cap int) {
		if got > cap {
			bad = append(bad, fmt.Sprintf("%s: %s=%d exceeds cap %d", r.Label, name, got, cap))
		}
	}
	slack := 0
	if c.RepairEvictions {
		// The eviction instant is recorded before the entry leaves the
		// map, so a map bounded by eviction marks cap+1.
		slack = 1
	}
	chk("window-high-water", r.WindowHighWater, c.Window)
	chk("nak-sent-high-water", r.NakSentHW, c.NakSent+slack)
	chk("nak-history-high-water", r.NakHistoryHW, c.NakPeer+slack)
	chk("nak-buffer-high-water", r.NakBufferHW, c.NakPeer+slack)
	chk("mailbox-high-water", r.MailboxHighWater, c.Mailbox)
	if r.NakEvicted != 0 && !c.RepairEvictions {
		bad = append(bad, fmt.Sprintf("%s: %d cap evictions (caps must be slack, windows do the bounding)", r.Label, r.NakEvicted))
	}
	if r.WindowInUse != 0 {
		bad = append(bad, fmt.Sprintf("%s: %d credits still in use at quiescence", r.Label, r.WindowInUse))
	}
	if r.Acquired != r.Released {
		bad = append(bad, fmt.Sprintf("%s: credit accounting off: acquired %d != released %d", r.Label, r.Acquired, r.Released))
	}
	if r.BufferedSends != 0 {
		bad = append(bad, fmt.Sprintf("%s: %d sends still buffered at quiescence", r.Label, r.BufferedSends))
	}
	return bad
}

// StreamKey identifies one sender stream: casts from Origin tagged with
// Stream carry indexes 0,1,2,… in send order.
type StreamKey struct {
	Origin appia.NodeID
	Stream string
}

func (k StreamKey) String() string { return fmt.Sprintf("%d/%s", k.Origin, k.Stream) }

// Delivery is one delivered application cast as a node observed it, in
// delivery order.
type Delivery struct {
	Origin appia.NodeID
	Stream string
	Index  int
}

// CheckDeliveries verifies one node's delivery sequence for a group:
//
//   - exactly-once: no (origin, stream, index) delivered twice;
//   - FIFO, gap-free: per stream, indexes appear in increasing order and
//     form the contiguous prefix 0..k — the reliable layer may truncate a
//     crashed origin's tail but never reorders or skips within it;
//   - completeness (survivors only): when accepted is non-nil, every
//     stream listed must have been delivered exactly through index
//     accepted[stream]−1, no more and no less.
//
// Streams not listed in accepted (a crashed sender's casts, a group the
// checker has no ground truth for) still get the exactly-once and prefix
// checks.
func CheckDeliveries(label string, seq []Delivery, accepted map[StreamKey]int) []string {
	var bad []string
	next := make(map[StreamKey]int)
	for _, d := range seq {
		k := StreamKey{Origin: d.Origin, Stream: d.Stream}
		want := next[k]
		switch {
		case d.Index < want:
			bad = append(bad, fmt.Sprintf("%s: stream %s: duplicate delivery of index %d", label, k, d.Index))
			continue
		case d.Index > want:
			bad = append(bad, fmt.Sprintf("%s: stream %s: gap: delivered index %d, expected %d", label, k, d.Index, want))
		}
		next[k] = d.Index + 1
	}
	if accepted != nil {
		keys := make([]StreamKey, 0, len(accepted))
		for k := range accepted {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Origin != keys[j].Origin {
				return keys[i].Origin < keys[j].Origin
			}
			return keys[i].Stream < keys[j].Stream
		})
		for _, k := range keys {
			if got, want := next[k], accepted[k]; got != want {
				bad = append(bad, fmt.Sprintf("%s: stream %s: delivered %d casts, accepted %d", label, k, got, want))
			}
		}
		// Sorted like the accepted keys above: these strings end up in
		// the hashed chaos trace, and map-order iteration here would make
		// a failing seed's replay identity flap (the PR-6 trace bug class
		// — latent only because passing runs report zero violations).
		unexpected := make([]StreamKey, 0, len(next))
		for k := range next {
			if _, ok := accepted[k]; !ok && next[k] > 0 {
				unexpected = append(unexpected, k)
			}
		}
		sort.Slice(unexpected, func(i, j int) bool {
			if unexpected[i].Origin != unexpected[j].Origin {
				return unexpected[i].Origin < unexpected[j].Origin
			}
			return unexpected[i].Stream < unexpected[j].Stream
		})
		for _, k := range unexpected {
			bad = append(bad, fmt.Sprintf("%s: stream %s: %d deliveries from a stream that accepted nothing", label, k, next[k]))
		}
	}
	return bad
}

// CheckView verifies that a node's converged membership equals the
// expected control-live set.
func CheckView(label string, got, want []appia.NodeID) []string {
	g := append([]appia.NodeID(nil), got...)
	w := append([]appia.NodeID(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	equal := len(g) == len(w)
	if equal {
		for i := range g {
			if g[i] != w[i] {
				equal = false
				break
			}
		}
	}
	if !equal {
		return []string{fmt.Sprintf("%s: view %v did not converge to control-live members %v", label, g, w)}
	}
	return nil
}

// CheckNoLeak reports cross-group (or cross-run) leaked deliveries — the
// E9 isolation invariant: traffic never crosses group boundaries.
func CheckNoLeak(label string, leaked int) []string {
	if leaked != 0 {
		return []string{fmt.Sprintf("%s: %d leaked deliveries crossed a group boundary", label, leaked)}
	}
	return nil
}

// NoLeakedGoroutines polls (in wall time) until the process goroutine
// count returns to at most baseline+slack, or grace expires. Call it after
// full teardown, from a sequential test — the count is process-global, so
// it is meaningless while parallel runs are in flight; it is deliberately
// NOT part of a chaos run's deterministic violation list.
func NoLeakedGoroutines(baseline, slack int, grace time.Duration) []string {
	deadline := time.Now().Add(grace) //lint:wallclock-ok goroutine exits are not clock events; the leak poll is wall-only by contract
	n := runtime.NumGoroutine()
	for n > baseline+slack && time.Now().Before(deadline) { //lint:wallclock-ok wall deadline for the leak-poll grace
		time.Sleep(10 * time.Millisecond) //lint:wallclock-ok wall polling backoff
		n = runtime.NumGoroutine()
	}
	if n > baseline+slack {
		return []string{fmt.Sprintf("goroutine leak: %d alive after teardown, baseline %d (+%d slack)", n, baseline, slack)}
	}
	return nil
}
