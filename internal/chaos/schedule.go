// Package chaos is the deterministic fault-schedule plane (E12). A seeded
// generator emits a Schedule — virtual-time instants paired with faults
// drawn from the vocabulary the paper's adversity model implies (crash-stop,
// transient partition, loss and latency spikes on links, churn waves,
// overload bursts, forced reconfigurations) — and an injector arms each
// event as a clock-heap entry against a running multi-group topology.
// Because the schedule, the virtual network and every driver action are
// functions of the seed alone, a failing seed IS the failure artifact: the
// same seed replays the same schedule, the same execution and the same
// invariant violations bit-for-bit.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"morpheus/internal/appia"
)

// NodeID aliases the kernel's node identifier.
type NodeID = appia.NodeID

// Kind enumerates the fault vocabulary.
type Kind int

// Fault kinds. Partition/Heal, LossSpike/LossClear and LatencySpike/
// LatencyClear are generated as pairs so every schedule is self-healing:
// after the last event drains, only crash-stops remain in effect.
const (
	// KindCrash crash-stops a node (vnet Detach): sends fail like a closed
	// socket, inbound frames vanish, the failure detector evicts it.
	KindCrash Kind = iota
	// KindPartition splits the membership into two cells; held shorter
	// than the failure-detection threshold, so it models a transient
	// network blip the NAK layer must repair (the GMS has no
	// primary-partition rejoin path — see ROADMAP).
	KindPartition
	// KindHeal removes the active partition.
	KindHeal
	// KindLossSpike raises the loss of every link touching a node.
	KindLossSpike
	// KindLossClear restores the segment loss on those links.
	KindLossClear
	// KindLatencySpike pins the latency of every link touching a node.
	KindLatencySpike
	// KindLatencyClear restores the segment latency on those links.
	KindLatencyClear
	// KindBurst floods N extra casts from a node through the data group
	// as fast as the send window admits them (TrySend backpressure).
	KindBurst
	// KindChurn joins every live node to a fresh group, floods it, waits
	// for delivery and leaves it on every member — a join/leave wave.
	KindChurn
	// KindReconfig forces the data group to the named configuration
	// (plain↔mecho) through the normal policy/Prepare/Ack path.
	KindReconfig
	// KindGracefulChurn exercises the full membership lifecycle on a fresh
	// group: the live members minus one bootstrap it, the excluded node
	// then enters the *running* group through the anchor seed via state
	// transfer (JoinVia), everyone floods, and the late joiner leaves
	// gracefully — the announced departure must release the survivors'
	// send-window state within a stability round. Generated only when
	// Profile.GracefulChurns is set (default off).
	KindGracefulChurn
)

var kindNames = map[Kind]string{
	KindCrash:         "crash",
	KindPartition:     "partition",
	KindHeal:          "heal",
	KindLossSpike:     "loss-spike",
	KindLossClear:     "loss-clear",
	KindLatencySpike:  "latency-spike",
	KindLatencyClear:  "latency-clear",
	KindBurst:         "burst",
	KindChurn:         "churn",
	KindReconfig:      "reconfig",
	KindGracefulChurn: "graceful-churn",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual instant, as an offset from the scenario start.
	At   time.Duration
	Kind Kind
	// Node is the fault target (crash, spikes, burst).
	Node NodeID
	// Peers is the partition's minority cell.
	Peers []NodeID
	// Loss is the spike's per-transmission drop probability.
	Loss float64
	// Delay is the latency spike's pinned one-way delay.
	Delay time.Duration
	// N is the burst size or the churn wave's casts per sender.
	N int
	// Config is the reconfiguration target ("plain", "mecho:relay=1").
	Config string
}

// String renders the event for schedule dumps and injection logs.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-8s %s", e.At.Round(time.Millisecond), e.Kind)
	switch e.Kind {
	case KindCrash:
		fmt.Fprintf(&b, " node=%d", e.Node)
	case KindPartition:
		fmt.Fprintf(&b, " peers=%v", e.Peers)
	case KindLossSpike:
		fmt.Fprintf(&b, " node=%d loss=%.2f", e.Node, e.Loss)
	case KindLossClear, KindLatencyClear:
		fmt.Fprintf(&b, " node=%d", e.Node)
	case KindLatencySpike:
		fmt.Fprintf(&b, " node=%d delay=%s", e.Node, e.Delay)
	case KindBurst:
		fmt.Fprintf(&b, " node=%d n=%d", e.Node, e.N)
	case KindChurn:
		fmt.Fprintf(&b, " n=%d", e.N)
	case KindGracefulChurn:
		fmt.Fprintf(&b, " joiner=%d n=%d", e.Node, e.N)
	case KindReconfig:
		fmt.Fprintf(&b, " config=%s", e.Config)
	}
	return b.String()
}

// Schedule is a seeded fault schedule: the complete, explicit event list
// Generate derived from the seed.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the full schedule, one event per line.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d events=%d\n", s.Seed, len(s.Events))
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Profile bounds the generator. The defaults describe the standard chaos
// topology (four fixed nodes and the mobile PDA) and keep every transient
// fault short enough that the failure detector never evicts a live node:
// partitions and spikes are network weather the reliable layers must ride
// out, crash-stops are the only permanent failures.
type Profile struct {
	// Members is the full membership; Anchor must be among them.
	Members []NodeID
	// Anchor is never crashed and never in a partition minority: it hosts
	// the coordinator role and anchors the survivor set.
	Anchor NodeID
	// Mobile identifies the PDA (informational; spikes may target it).
	Mobile NodeID
	// Faults is how many faults to draw (paired heal/clear events come on
	// top). Default 6.
	Faults int
	// Start..Horizon is the window fault instants are drawn from.
	// Defaults 500ms..8s.
	Start, Horizon time.Duration
	// MaxCrashes bounds crash-stops per schedule (default 1; never more
	// than len(Members)-2, so at least two members survive).
	MaxCrashes int
	// MaxHold bounds partition hold times (default 700ms). Keep it,
	// together with spike durations, well under the failure-detection
	// threshold the runner configures, or transient faults turn into
	// spurious evictions.
	MaxHold time.Duration
	// GracefulChurns adds that many late-join/graceful-leave waves
	// (KindGracefulChurn) to the schedule. Default 0 — off, so the pinned
	// corpus hashes of the standard profile are untouched; the waves are
	// drawn after the main fault loop, which keeps the knob-off draw
	// sequence byte-identical either way.
	GracefulChurns int
}

func (p *Profile) defaults() {
	if len(p.Members) == 0 {
		p.Members = []NodeID{1, 2, 3, 4, 100}
		p.Anchor = 1
		p.Mobile = 100
	}
	if p.Anchor == 0 {
		p.Anchor = p.Members[0]
	}
	if p.Faults == 0 {
		p.Faults = 6
	}
	if p.Start == 0 {
		p.Start = 500 * time.Millisecond
	}
	if p.Horizon == 0 {
		p.Horizon = 8 * time.Second
	}
	if p.MaxCrashes == 0 {
		p.MaxCrashes = 1
	}
	if max := len(p.Members) - 2; p.MaxCrashes > max {
		p.MaxCrashes = max
	}
	if p.MaxHold == 0 {
		p.MaxHold = 700 * time.Millisecond
	}
}

// Generate derives a schedule from the seed. The draw sequence is a pure
// function of (seed, profile): equal inputs yield equal schedules, which
// is half of the replay guarantee (the runner supplies the other half by
// executing on a virtual clock seeded with the same value).
func Generate(seed int64, p Profile) Schedule {
	p.defaults()
	rng := rand.New(rand.NewSource(seed))

	nonAnchor := make([]NodeID, 0, len(p.Members)-1)
	for _, m := range p.Members {
		if m != p.Anchor {
			nonAnchor = append(nonAnchor, m)
		}
	}

	at := func() time.Duration {
		return p.Start + time.Duration(rng.Int63n(int64(p.Horizon-p.Start)))
	}
	dur := func(min, max time.Duration) time.Duration {
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}

	var events []Event
	crashes, churns := 0, 0

	// Partition windows already placed, padded so two holds can never run
	// back to back and accumulate silence past the detection threshold.
	type window struct{ from, to time.Duration }
	var partitions []window
	const partitionPad = 500 * time.Millisecond

	for i := 0; i < p.Faults; i++ {
		roll := rng.Intn(100)
		switch {
		case roll < 14 && crashes < p.MaxCrashes:
			victim := nonAnchor[rng.Intn(len(nonAnchor))]
			crashes++
			events = append(events, Event{At: at(), Kind: KindCrash, Node: victim})

		case roll < 32:
			// Transient partition: a minority of non-anchor nodes is cut
			// off and healed before the failure detector reacts.
			size := 1 + rng.Intn(2)
			if size > len(nonAnchor)-1 {
				size = len(nonAnchor) - 1
			}
			idx := rng.Perm(len(nonAnchor))[:size]
			minority := make([]NodeID, 0, size)
			for _, j := range idx {
				minority = append(minority, nonAnchor[j])
			}
			sort.Slice(minority, func(a, b int) bool { return minority[a] < minority[b] })
			hold := dur(150*time.Millisecond, p.MaxHold)
			var t time.Duration
			placed := false
			for attempt := 0; attempt < 10; attempt++ {
				t = at()
				clash := false
				for _, w := range partitions {
					if t < w.to+partitionPad && t+hold+partitionPad > w.from {
						clash = true
						break
					}
				}
				if !clash {
					placed = true
					break
				}
			}
			if !placed {
				continue // schedule already saturated with partitions
			}
			partitions = append(partitions, window{from: t, to: t + hold})
			events = append(events,
				Event{At: t, Kind: KindPartition, Peers: minority},
				Event{At: t + hold, Kind: KindHeal})

		case roll < 50:
			// Loss spike, capped at 0.45 so a heartbeat stream cannot
			// plausibly stay silent past the detection threshold.
			target := p.Members[rng.Intn(len(p.Members))]
			loss := 0.15 + 0.30*rng.Float64()
			t := at()
			hold := dur(300*time.Millisecond, time.Second)
			events = append(events,
				Event{At: t, Kind: KindLossSpike, Node: target, Loss: loss},
				Event{At: t + hold, Kind: KindLossClear, Node: target})

		case roll < 62:
			target := p.Members[rng.Intn(len(p.Members))]
			delay := dur(10*time.Millisecond, 120*time.Millisecond)
			t := at()
			hold := dur(300*time.Millisecond, time.Second)
			events = append(events,
				Event{At: t, Kind: KindLatencySpike, Node: target, Delay: delay},
				Event{At: t + hold, Kind: KindLatencyClear, Node: target})

		case roll < 78:
			target := p.Members[rng.Intn(len(p.Members))]
			events = append(events, Event{At: at(), Kind: KindBurst, Node: target, N: 20 + rng.Intn(41)})

		case roll < 90 && churns < 2:
			churns++
			events = append(events, Event{At: at(), Kind: KindChurn, N: 4 + rng.Intn(5)})

		default:
			// Toggle the data group's configuration; generation tracks the
			// flip parity so the schedule records explicit targets.
			target := "mecho:relay=" + fmt.Sprint(p.Anchor)
			if flips := countReconfigs(events); flips%2 == 1 {
				target = "plain"
			}
			events = append(events, Event{At: at(), Kind: KindReconfig, Config: target})
		}
	}

	// Graceful-churn waves (default off) are drawn after the main loop so
	// enabling the knob extends — never perturbs — the draw sequence the
	// pinned corpus hashes depend on. The late joiner is drawn from the
	// non-anchor set: the anchor is the wave's seed member and must be in
	// the bootstrap.
	for i := 0; i < p.GracefulChurns; i++ {
		target := nonAnchor[rng.Intn(len(nonAnchor))]
		events = append(events, Event{At: at(), Kind: KindGracefulChurn, Node: target, N: 3 + rng.Intn(4)})
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Schedule{Seed: seed, Events: events}
}

// countReconfigs counts reconfig events already drawn (flip parity).
func countReconfigs(events []Event) int {
	n := 0
	for _, e := range events {
		if e.Kind == KindReconfig {
			n++
		}
	}
	return n
}
