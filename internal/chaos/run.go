package chaos

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"morpheus"
	"morpheus/internal/chaos/invariants"
	"morpheus/internal/clock"
	"morpheus/internal/core"
	"morpheus/internal/vnet"
)

// Options parameterises a chaos run. The zero value is the standard E12
// configuration.
type Options struct {
	// Profile bounds the schedule generator (zero value: defaults).
	Profile Profile
	// SendWindow is every long-lived group's send window (default 32 —
	// small enough that bursts exercise TrySend backpressure).
	SendWindow int
	// Messages is the baseline flood length per member on the data group
	// (default 30, paced to span the fault horizon).
	Messages int
	// Caps, when non-nil, overrides the data group's derived bounds.
	// Tightening them below the real high-water marks is the sanctioned
	// way to prove the failure path: the run reports deterministic
	// violations, bit-identical on replay.
	Caps *invariants.Caps
	// ExtraGroups additionally hosts that many quiet groups on every node
	// (default 0 — the standard E12 traces are unchanged). The pool-scale
	// smoke: a large hosted population must not perturb the checked
	// groups' invariants, and crash-stop teardown then exercises pooled
	// scheduler Close at population scale.
	ExtraGroups int
	// Logf receives control-plane diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.SendWindow == 0 {
		o.SendWindow = 32
	}
	if o.Messages == 0 {
		o.Messages = 30
	}
}

// Result is one chaos run's harvest. Everything in it — the schedule, the
// injection log, the delivery digests, the flow snapshots and the
// violation list, all folded into Trace and Hash — is a pure function of
// the seed, so a failing seed replays its exact Result.
type Result struct {
	Seed     int64
	Schedule Schedule
	// Survivors is the control-live membership after the schedule drained
	// (everyone the schedule did not crash-stop).
	Survivors []NodeID
	// Crashed lists the crash-stopped nodes.
	Crashed []NodeID
	// Delivered is the total application casts delivered across survivors
	// on the long-lived groups.
	Delivered int
	// Rejected counts ErrWindowFull backpressure signals senders rode out.
	Rejected uint64
	// Violations is the flattened invariant-violation list (empty means
	// every invariant held).
	Violations []string
	// Trace is the canonical run transcript; Hash is its sha256 prefix.
	Trace string
	Hash  string
}

// auxGroup is the second long-lived group every run hosts (multi-group
// coverage: faults must not bleed invariants across groups).
const auxGroup = "aux"

// encodePayload tags a cast so deliveries are checkable: group for the
// isolation invariant, stream+index for exactly-once/FIFO/completeness
// (wire seqnums reset per epoch, so payload identity is the ground truth).
func encodePayload(group, stream string, idx int) []byte {
	return []byte(fmt.Sprintf("chaos|%s|%s|%d", group, stream, idx))
}

func decodePayload(p []byte) (group, stream string, idx int, ok bool) {
	parts := strings.Split(string(p), "|")
	if len(parts) != 4 || parts[0] != "chaos" {
		return "", "", 0, false
	}
	n, err := fmt.Sscanf(parts[3], "%d", &idx)
	if n != 1 || err != nil {
		return "", "", 0, false
	}
	return parts[1], parts[2], idx, true
}

// traceKey identifies one node's view of one group.
type traceKey struct {
	node  NodeID
	group string
}

// runner is the per-run state shared by the driver, the sender actors and
// the injector.
type runner struct {
	opts     Options
	sched    Schedule
	clk      *clock.Virtual
	world    *vnet.World
	start    time.Time
	members  []NodeID
	nodes    map[NodeID]*morpheus.Node
	crashed  map[NodeID]*atomic.Bool
	desired  atomic.Value // string: the flip policy's target config
	rejected atomic.Uint64

	mu       sync.Mutex
	traces   map[traceKey][]invariants.Delivery
	counts   map[traceKey]map[invariants.StreamKey]int
	accepted map[string]map[invariants.StreamKey]int // group → stream → casts
	leaked   int
	log      []string
	injDone  []<-chan struct{} // forked fault actors (bursts, churn waves)
}

func (r *runner) isCrashed(id NodeID) bool { return r.crashed[id].Load() }

func (r *runner) logf(format string, args ...any) {
	line := fmt.Sprintf("[+%-8s] %s", r.clk.Now().Sub(r.start).Round(time.Millisecond), fmt.Sprintf(format, args...))
	r.mu.Lock()
	r.log = append(r.log, line)
	r.mu.Unlock()
}

// recorder returns the OnCast hook for one node's membership of one group.
func (r *runner) recorder(node NodeID, groupName string) func(ev *morpheus.CastEvent) {
	key := traceKey{node: node, group: groupName}
	return func(ev *morpheus.CastEvent) {
		g, stream, idx, ok := decodePayload(ev.Msg.Bytes())
		r.mu.Lock()
		defer r.mu.Unlock()
		if !ok || g != groupName {
			r.leaked++
			return
		}
		d := invariants.Delivery{Origin: ev.Origin, Stream: stream, Index: idx}
		r.traces[key] = append(r.traces[key], d)
		m := r.counts[key]
		if m == nil {
			m = make(map[invariants.StreamKey]int)
			r.counts[key] = m
		}
		m[invariants.StreamKey{Origin: ev.Origin, Stream: stream}]++
	}
}

// recorderMsg is the recorder in OnMessage shape, for the default group
// (whose delivery hook is wired through Config at Start).
func (r *runner) recorderMsg(node NodeID, groupName string) func(from NodeID, payload []byte) {
	key := traceKey{node: node, group: groupName}
	return func(from NodeID, payload []byte) {
		g, stream, idx, ok := decodePayload(payload)
		r.mu.Lock()
		defer r.mu.Unlock()
		if !ok || g != groupName {
			r.leaked++
			return
		}
		d := invariants.Delivery{Origin: from, Stream: stream, Index: idx}
		r.traces[key] = append(r.traces[key], d)
		m := r.counts[key]
		if m == nil {
			m = make(map[invariants.StreamKey]int)
			r.counts[key] = m
		}
		m[invariants.StreamKey{Origin: from, Stream: stream}]++
	}
}

// accept records one accepted send.
func (r *runner) accept(group string, origin NodeID, stream string) {
	k := invariants.StreamKey{Origin: origin, Stream: stream}
	r.mu.Lock()
	m := r.accepted[group]
	if m == nil {
		m = make(map[invariants.StreamKey]int)
		r.accepted[group] = m
	}
	m[k]++
	r.mu.Unlock()
}

// deliveredCount reads one node's delivery count for a stream.
func (r *runner) deliveredCount(k traceKey, s invariants.StreamKey) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[k][s]
}

// acceptedFor builds the completeness ground truth for one node and group:
// surviving origins must be delivered exactly; a crashed origin's accepted
// count is unreachable (its tail may never have been transmitted), so the
// node's own delivered prefix stands in — the sequence scan still enforces
// exactly-once and gap-freedom over it.
func (r *runner) acceptedFor(node NodeID, group string) map[invariants.StreamKey]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[invariants.StreamKey]int, len(r.accepted[group]))
	for k, n := range r.accepted[group] {
		if r.crashed[k.Origin] != nil && r.crashed[k.Origin].Load() {
			out[k] = r.counts[traceKey{node: node, group: group}][k]
		} else {
			out[k] = n
		}
	}
	return out
}

// waitFor polls cond on the virtual timeline.
func (r *runner) waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := r.clk.Now().Add(timeout)
	for r.clk.Now().Before(deadline) {
		if cond() {
			return true
		}
		r.clk.Sleep(20 * time.Millisecond)
	}
	return false
}

// flipPolicy steers the data group toward the configuration the schedule
// last demanded, through the normal coordinator/Prepare/Ack path. All
// nodes share one desired pointer; only the coordinator's evaluation acts.
type flipPolicy struct {
	desired *atomic.Value
	relay   NodeID
}

func (flipPolicy) Name() string { return "chaos-flip" }

func (p flipPolicy) Evaluate(in core.PolicyInput) *core.Decision {
	want, _ := p.desired.Load().(string)
	if want == "" || want == in.Current {
		return nil
	}
	var doc *morpheus.Document
	if want == core.PlainConfigName {
		doc = core.PlainConfig()
	} else {
		doc = core.MechoConfig(p.relay)
	}
	return &core.Decision{ConfigName: want, Doc: doc, Members: in.View.Members, Reason: "chaos schedule"}
}

// Run executes one chaos run: generate the schedule from the seed, boot
// the multi-group topology on a virtual clock, arm every event on the
// clock heap, flood, drain, and check every runtime invariant. The
// returned error reports harness failures only (a node that failed to
// boot); invariant failures land in Result.Violations.
func Run(seed int64, opts Options) (Result, error) {
	opts.defaults()
	opts.Profile.defaults()
	sched := Generate(seed, opts.Profile)

	clk := clock.NewVirtual()
	defer clk.Stop()
	world := vnet.NewWorldWithClock(seed, clk)
	defer world.Close()
	world.AddSegment(vnet.SegmentConfig{Name: "lan", NativeMulticast: true})
	world.AddSegment(vnet.SegmentConfig{Name: "wlan", Wireless: true})

	r := &runner{
		opts:     opts,
		sched:    sched,
		clk:      clk,
		world:    world,
		members:  opts.Profile.Members,
		nodes:    make(map[NodeID]*morpheus.Node, len(opts.Profile.Members)),
		crashed:  make(map[NodeID]*atomic.Bool, len(opts.Profile.Members)),
		traces:   make(map[traceKey][]invariants.Delivery),
		counts:   make(map[traceKey]map[invariants.StreamKey]int),
		accepted: make(map[string]map[invariants.StreamKey]int),
	}
	r.desired.Store("")
	for _, id := range r.members {
		r.crashed[id] = new(atomic.Bool)
	}
	flip := flipPolicy{desired: &r.desired, relay: opts.Profile.Anchor}

	defer func() {
		for _, nd := range r.nodes {
			_ = nd.Close()
		}
	}()
	for _, id := range r.members {
		kind, seg := morpheus.Fixed, "lan"
		if id == opts.Profile.Mobile {
			kind, seg = morpheus.Mobile, "wlan"
		}
		nd, err := morpheus.Start(morpheus.Config{
			World: world, ID: id, Kind: kind, Segments: []string{seg},
			Members:  r.members,
			Policies: []morpheus.Policy{flip},
			// The transient-fault bounds in Profile assume this detection
			// threshold: partitions and loss spikes stay well under it, so
			// only crash-stops are ever evicted.
			Heartbeat:       50 * time.Millisecond,
			SuspectAfter:    2 * time.Second,
			ContextInterval: 80 * time.Millisecond,
			EvalInterval:    100 * time.Millisecond,
			PublishOnChange: true,
			SendWindow:      opts.SendWindow,
			Logf:            opts.Logf,
			OnMessage:       r.recorderMsg(id, morpheus.DefaultGroup),
		})
		if err != nil {
			return Result{}, fmt.Errorf("chaos: start node %d: %w", id, err)
		}
		r.nodes[id] = nd
	}

	return r.execute()
}

// execute drives the armed run to quiescence and harvests it.
func (r *runner) execute() (Result, error) {
	opts := r.opts
	clk := r.clk
	r.start = clk.Now()

	// aux: the second long-lived group, non-adaptive, same membership.
	for _, id := range r.members {
		if _, err := r.nodes[id].Join(auxGroup, morpheus.GroupConfig{
			Members:    r.members,
			OnCast:     r.recorder(id, auxGroup),
			SendWindow: opts.SendWindow,
		}); err != nil {
			return Result{}, fmt.Errorf("chaos: node %d join %s: %w", id, auxGroup, err)
		}
	}

	// The extra hosted population (pool-scale smoke): joined everywhere,
	// never sent to. Joined before the schedule arms so the added joins —
	// like everything else — are a deterministic function of the seed.
	for i := 0; i < opts.ExtraGroups; i++ {
		name := fmt.Sprintf("x%04d", i)
		for _, id := range r.members {
			if _, err := r.nodes[id].Join(name, morpheus.GroupConfig{
				Members:    r.members,
				SendWindow: opts.SendWindow,
			}); err != nil {
				return Result{}, fmt.Errorf("chaos: node %d join %s: %w", id, name, err)
			}
		}
	}

	// Arm the schedule on the clock heap before any time passes.
	r.arm()

	// Baseline floods. Data group: every member, stream "m". Aux group:
	// one fixed node and the mobile, lighter and slower.
	sendHorizon := opts.Profile.Horizon + 30*time.Second
	var dones []<-chan struct{}
	for _, id := range r.members {
		dones = append(dones, r.sender(id, morpheus.DefaultGroup, "m", opts.Messages, 250*time.Millisecond, sendHorizon))
	}
	auxSenders := []NodeID{r.members[1], opts.Profile.Mobile}
	for _, id := range auxSenders {
		dones = append(dones, r.sender(id, auxGroup, "m", opts.Messages/2, 400*time.Millisecond, sendHorizon))
	}

	var violations []string
	for _, d := range dones {
		if !clk.WaitTimeout(d, sendHorizon+30*time.Second) {
			violations = append(violations, "liveness: a baseline sender never finished")
		}
	}

	// Injector barrier: let the last clock-heap event fire, then wait for
	// every forked fault actor (bursts, churn waves) — traces must be
	// frozen before they are hashed.
	var maxAt time.Duration
	for _, e := range r.sched.Events {
		if e.At > maxAt {
			maxAt = e.At
		}
	}
	if rem := r.start.Add(maxAt + 10*time.Millisecond).Sub(clk.Now()); rem > 0 {
		clk.Sleep(rem)
	}
	for _, d := range r.snapshotInjDone() {
		if !clk.WaitTimeout(d, 60*time.Second) {
			violations = append(violations, "liveness: a fault actor (burst/churn) never finished")
		}
	}

	// Survivor set: everyone the schedule did not crash-stop.
	var survivors, crashed []NodeID
	for _, id := range r.members {
		if r.isCrashed(id) {
			crashed = append(crashed, id)
		} else {
			survivors = append(survivors, id)
		}
	}

	// Crashed nodes must be evicted everywhere before completeness can
	// converge (membership repair is what releases their stalled credits).
	if len(crashed) > 0 {
		if !r.waitFor(30*time.Second, func() bool {
			for _, id := range survivors {
				for _, m := range r.nodes[id].Manager().Members() {
					if r.isCrashed(m) {
						return false
					}
				}
			}
			return true
		}) {
			violations = append(violations, "liveness: crashed nodes never evicted from the data view")
		}
	}

	// Completeness: every survivor delivers every cast a surviving sender
	// accepted, on both long-lived groups.
	complete := func() bool {
		for _, id := range survivors {
			for _, g := range []string{morpheus.DefaultGroup, auxGroup} {
				want := r.acceptedFor(id, g)
				for k, n := range want {
					if r.isCrashed(k.Origin) {
						continue
					}
					if r.deliveredCount(traceKey{node: id, group: g}, k) < n {
						return false
					}
				}
			}
		}
		return true
	}
	if !r.waitFor(60*time.Second, complete) {
		violations = append(violations, "liveness: deliveries never completed on the long-lived groups")
	}

	// Windows must drain: all credits home, nothing buffered.
	if !r.waitFor(30*time.Second, func() bool {
		for _, id := range survivors {
			for _, g := range []string{morpheus.DefaultGroup, auxGroup} {
				fs := r.nodes[id].Group(g).FlowStats()
				if fs.Window.InUse != 0 || fs.BufferedSends != 0 {
					return false
				}
			}
		}
		return true
	}) {
		violations = append(violations, "liveness: send windows never drained")
	}

	// Settle at a fixed virtual instant so harvested marks are stable.
	clk.Sleep(500 * time.Millisecond)

	return r.harvest(survivors, crashed, violations), nil
}

// sender spawns one paced flooding actor; the returned channel closes when
// it finishes (all casts accepted, its node crashed, or the horizon hit).
func (r *runner) sender(id NodeID, groupName, stream string, msgs int, pace, horizon time.Duration) <-chan struct{} {
	done := make(chan struct{})
	g := r.nodes[id].Group(groupName)
	clk := r.clk
	deadline := clk.Now().Add(horizon)
	clk.Go(func() {
		defer close(done)
		for i := 0; i < msgs; i++ {
			if r.isCrashed(id) {
				return
			}
			payload := encodePayload(groupName, stream, i)
			for {
				err := g.TrySend(payload)
				if err == nil {
					break
				}
				if !errors.Is(err, morpheus.ErrWindowFull) {
					return // group closed under us: benign post-crash
				}
				r.rejected.Add(1)
				if r.isCrashed(id) || !clk.Now().Before(deadline) {
					return
				}
				clk.Sleep(2 * time.Millisecond)
			}
			r.accept(groupName, id, stream)
			clk.Sleep(pace)
		}
	})
	return done
}

// harvest snapshots the run and checks every invariant.
func (r *runner) harvest(survivors, crashed []NodeID, violations []string) Result {
	opts := r.opts

	// Caps count every member as a potential origin: besides the baseline
	// floods and bursts, a repair flush makes the coordinator originate
	// proposal casts on the data channel. With crash-stops in the schedule
	// the repair path may bound retention by cap-eviction instead of
	// stability (see invariants.Caps.RepairEvictions).
	dataCaps := invariants.CapsFor(opts.SendWindow, len(r.members))
	dataCaps.RepairEvictions = len(crashed) > 0
	if opts.Caps != nil {
		dataCaps = *opts.Caps
	}
	auxCaps := invariants.CapsFor(opts.SendWindow, len(r.members))
	auxCaps.RepairEvictions = len(crashed) > 0

	var flowLines []string
	for _, id := range survivors {
		for _, g := range []string{morpheus.DefaultGroup, auxGroup} {
			grp := r.nodes[id].Group(g)
			fs := grp.FlowStats()
			row := invariants.FlowRow{
				Label:            fmt.Sprintf("node %d/%s", id, g),
				WindowHighWater:  fs.Window.HighWater,
				WindowInUse:      fs.Window.InUse,
				Acquired:         fs.Window.Acquired,
				Released:         fs.Window.Released,
				MailboxHighWater: fs.MailboxHighWater,
				NakSentHW:        fs.Nak.SentHighWater,
				NakHistoryHW:     fs.Nak.HistoryHighWater,
				NakBufferHW:      fs.Nak.BufferHighWater,
				NakEvicted:       fs.Nak.Evicted,
				BufferedSends:    fs.BufferedSends,
			}
			caps := dataCaps
			if g == auxGroup {
				caps = auxCaps
			}
			violations = append(violations, caps.CheckBounded(row)...)
			flowLines = append(flowLines, fmt.Sprintf(
				"node=%d group=%s win-hw=%d/%d acq=%d rel=%d mbox-hw=%d nak-hw=%d/%d/%d evicted=%d epoch=%d cfg=%s",
				id, g, fs.Window.HighWater, caps.Window, fs.Window.Acquired, fs.Window.Released,
				fs.MailboxHighWater, fs.Nak.SentHighWater, fs.Nak.HistoryHighWater, fs.Nak.BufferHighWater,
				fs.Nak.Evicted, grp.Epoch(), grp.ConfigName()))
		}
	}

	// Delivery checks across every group a survivor recorded (long-lived
	// and churn groups alike), in deterministic order.
	r.mu.Lock()
	keys := make([]traceKey, 0, len(r.traces))
	for k := range r.traces {
		keys = append(keys, k)
	}
	leaked := r.leaked
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].group < keys[j].group
	})

	delivered := 0
	var deliveryLines []string
	for _, k := range keys {
		if r.crashed[k.node] != nil && r.crashed[k.node].Load() {
			continue // a crashed node's truncated view is not checkable
		}
		r.mu.Lock()
		seq := append([]invariants.Delivery(nil), r.traces[k]...)
		r.mu.Unlock()
		label := fmt.Sprintf("node %d/%s", k.node, k.group)
		violations = append(violations, invariants.CheckDeliveries(label, seq, r.acceptedFor(k.node, k.group))...)

		if k.group == morpheus.DefaultGroup || k.group == auxGroup {
			delivered += len(seq)
		}
		h := sha256.New()
		streams := make(map[invariants.StreamKey]int)
		for _, d := range seq {
			fmt.Fprintf(h, "%d/%s:%d;", d.Origin, d.Stream, d.Index)
			streams[invariants.StreamKey{Origin: d.Origin, Stream: d.Stream}]++
		}
		skeys := make([]invariants.StreamKey, 0, len(streams))
		for s := range streams {
			skeys = append(skeys, s)
		}
		sort.Slice(skeys, func(i, j int) bool {
			if skeys[i].Origin != skeys[j].Origin {
				return skeys[i].Origin < skeys[j].Origin
			}
			return skeys[i].Stream < skeys[j].Stream
		})
		var sb strings.Builder
		for _, s := range skeys {
			fmt.Fprintf(&sb, " %s:%d", s, streams[s])
		}
		deliveryLines = append(deliveryLines, fmt.Sprintf("node=%d group=%s total=%d digest=%x streams{%s }",
			k.node, k.group, len(seq), h.Sum(nil)[:6], sb.String()))
	}

	// Isolation and view convergence.
	violations = append(violations, invariants.CheckNoLeak("run", leaked)...)
	var viewLines []string
	for _, id := range survivors {
		got := r.nodes[id].Manager().Members()
		violations = append(violations, invariants.CheckView(fmt.Sprintf("node %d", id), got, survivors)...)
		viewLines = append(viewLines, fmt.Sprintf("node=%d view=%v", id, got))
	}

	// Canonical transcript → hash: the bit-identical replay artifact.
	var b strings.Builder
	b.WriteString("=== schedule\n")
	b.WriteString(r.sched.String())
	b.WriteString("=== log\n")
	r.mu.Lock()
	for _, l := range r.log {
		b.WriteString(l + "\n")
	}
	r.mu.Unlock()
	b.WriteString("=== deliveries\n")
	for _, l := range deliveryLines {
		b.WriteString(l + "\n")
	}
	b.WriteString("=== flows\n")
	for _, l := range flowLines {
		b.WriteString(l + "\n")
	}
	b.WriteString("=== views\n")
	for _, l := range viewLines {
		b.WriteString(l + "\n")
	}
	b.WriteString("=== violations\n")
	if len(violations) == 0 {
		b.WriteString("(none)\n")
	}
	for _, v := range violations {
		b.WriteString(v + "\n")
	}
	trace := b.String()
	sum := sha256.Sum256([]byte(trace))

	return Result{
		Seed:       r.sched.Seed,
		Schedule:   r.sched,
		Survivors:  survivors,
		Crashed:    crashed,
		Delivered:  delivered,
		Rejected:   r.rejected.Load(),
		Violations: violations,
		Trace:      trace,
		Hash:       fmt.Sprintf("%x", sum[:8]),
	}
}
