package epidemic

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"morpheus/internal/appia"
	"morpheus/internal/group"
	"morpheus/internal/transport"
	"morpheus/internal/vnet"
)

type gossipNode struct {
	id        appia.NodeID
	vn        *vnet.Node
	sched     *appia.Scheduler
	ch        *appia.Channel
	mu        sync.Mutex
	delivered []string
}

func (g *gossipNode) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.delivered)
}

// buildGossipCluster runs bare ptp → epidemic stacks (no reliability on
// top) so the raw gossip behaviour is observable.
func buildGossipCluster(t *testing.T, n, fanout, rounds int) []*gossipNode {
	t.Helper()
	w := vnet.NewWorld(6)
	t.Cleanup(func() { _ = w.Close() })
	w.AddSegment(vnet.SegmentConfig{Name: "lan"})
	group.RegisterWireEvents(nil)

	members := make([]appia.NodeID, n)
	for i := range members {
		members[i] = appia.NodeID(i + 1)
	}
	var nodes []*gossipNode
	for _, id := range members {
		vn, err := w.AddNode(id, vnet.Fixed, "lan")
		if err != nil {
			t.Fatal(err)
		}
		g := &gossipNode{id: id, vn: vn, sched: appia.NewScheduler()}
		t.Cleanup(g.sched.Close)
		q, err := appia.NewQoS("gossip",
			transport.NewPTPLayer(transport.Config{Node: vn, Port: "g", Logf: t.Logf}),
			NewLayer(Config{Self: id, InitialMembers: members, Fanout: fanout, Rounds: rounds, Seed: int64(id)}),
		)
		if err != nil {
			t.Fatal(err)
		}
		g.ch = q.CreateChannel("data", g.sched, appia.WithDeliver(func(ev appia.Event) {
			if c, ok := ev.(*group.CastEvent); ok {
				g.mu.Lock()
				g.delivered = append(g.delivered, string(c.Msg.Bytes()))
				g.mu.Unlock()
			}
		}))
		if err := g.ch.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, g)
	}
	for _, g := range nodes {
		if !g.ch.WaitReady(2 * time.Second) {
			t.Fatal("never ready")
		}
	}
	return nodes
}

func cast(t *testing.T, g *gossipNode, payload string) {
	t.Helper()
	ev := &group.CastEvent{}
	ev.Msg = appia.NewMessage([]byte(payload))
	if err := g.ch.Insert(ev, appia.Down); err != nil {
		t.Fatal(err)
	}
}

func TestGossipReachesEveryoneLossless(t *testing.T) {
	nodes := buildGossipCluster(t, 12, 3, 5)
	const k = 20
	for i := 0; i < k; i++ {
		cast(t, nodes[0], fmt.Sprintf("g%02d", i))
	}
	// Raw gossip may legitimately miss a straggler, so this wait is
	// bounded short and the assertion below tolerates one.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, g := range nodes[1:] {
			if g.count() < k {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	reached := 0
	for _, g := range nodes[1:] {
		if g.count() == k {
			reached++
		}
	}
	// With fanout 3 and 5 rounds in a 12-node lossless group, coverage
	// should be total or nearly so.
	if reached < len(nodes)-2 {
		t.Fatalf("only %d of %d receivers got all %d messages", reached, len(nodes)-1, k)
	}
}

func TestGossipDedupes(t *testing.T) {
	nodes := buildGossipCluster(t, 6, 5, 6) // dense gossip: many duplicates on the wire
	cast(t, nodes[0], "once")
	time.Sleep(200 * time.Millisecond)
	for _, g := range nodes[1:] {
		if g.count() > 1 {
			t.Fatalf("node %d delivered %d copies", g.id, g.count())
		}
	}
}

func TestGossipLoadIsBounded(t *testing.T) {
	nodes := buildGossipCluster(t, 16, 3, 4)
	const k = 30
	for i := 0; i < k; i++ {
		cast(t, nodes[0], fmt.Sprintf("m%02d", i))
	}
	time.Sleep(400 * time.Millisecond)
	// The sender's per-message cost is Fanout, not n−1.
	senderTx := nodes[0].vn.Counters().TotalTx()
	if senderTx > uint64(k*3) {
		t.Fatalf("sender transmitted %d (> fanout bound %d)", senderTx, k*3)
	}
	if senderTx == 0 {
		t.Fatal("sender transmitted nothing")
	}
}

func TestGossipTTLBoundsPropagation(t *testing.T) {
	// rounds=1: the message reaches at most the sender's fanout peers.
	nodes := buildGossipCluster(t, 12, 2, 1)
	cast(t, nodes[0], "short-lived")
	time.Sleep(200 * time.Millisecond)
	got := 0
	for _, g := range nodes[1:] {
		got += g.count()
	}
	if got > 2 {
		t.Fatalf("ttl=1 reached %d receivers, fanout is 2", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.fanout() != 3 || c.rounds() != 4 {
		t.Fatalf("defaults: fanout=%d rounds=%d", c.fanout(), c.rounds())
	}
}
